#include "model/possible_worlds.h"

#include <cmath>
#include <map>
#include <vector>

#include "gtest/gtest.h"
#include "test_util.h"
#include "util/rng.h"

namespace urank {
namespace {

using testing_util::PaperFig2;
using testing_util::PaperFig4;
using testing_util::RandomSmallAttr;
using testing_util::RandomSmallTuple;

TEST(AttrWorldsTest, Fig2WorldsMatchPaper) {
  // Paper Fig. 2 lists four worlds with probabilities .24/.16/.36/.24.
  std::map<std::vector<double>, double> worlds;
  ForEachAttrWorld(PaperFig2(),
                   [&](const std::vector<double>& scores, double prob) {
                     worlds[scores] += prob;
                   });
  ASSERT_EQ(worlds.size(), 4u);
  EXPECT_NEAR((worlds[{100, 92, 85}]), 0.24, 1e-12);
  EXPECT_NEAR((worlds[{100, 80, 85}]), 0.16, 1e-12);
  EXPECT_NEAR((worlds[{70, 92, 85}]), 0.36, 1e-12);
  EXPECT_NEAR((worlds[{70, 80, 85}]), 0.24, 1e-12);
}

TEST(AttrWorldsTest, ProbabilitiesSumToOne) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    AttrRelation rel = RandomSmallAttr(rng, 5, 3);
    double total = 0.0;
    ForEachAttrWorld(rel, [&](const std::vector<double>&, double prob) {
      total += prob;
    });
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(AttrWorldsTest, EmptyRelationHasOneWorld) {
  int calls = 0;
  ForEachAttrWorld(AttrRelation(),
                   [&](const std::vector<double>& scores, double prob) {
                     ++calls;
                     EXPECT_TRUE(scores.empty());
                     EXPECT_DOUBLE_EQ(prob, 1.0);
                   });
  EXPECT_EQ(calls, 1);
}

TEST(TupleWorldsTest, Fig4WorldsMatchPaper) {
  // Paper Fig. 4 lists four worlds: {t1,t2,t3} .2, {t1,t3,t4} .2,
  // {t2,t3} .3, {t3,t4} .3.
  std::map<std::vector<bool>, double> worlds;
  ForEachTupleWorld(PaperFig4(),
                    [&](const std::vector<bool>& present, double prob) {
                      worlds[present] += prob;
                    });
  ASSERT_EQ(worlds.size(), 4u);
  EXPECT_NEAR((worlds[{true, true, true, false}]), 0.2, 1e-12);
  EXPECT_NEAR((worlds[{true, false, true, true}]), 0.2, 1e-12);
  EXPECT_NEAR((worlds[{false, true, true, false}]), 0.3, 1e-12);
  EXPECT_NEAR((worlds[{false, false, true, true}]), 0.3, 1e-12);
}

TEST(TupleWorldsTest, ProbabilitiesSumToOne) {
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    TupleRelation rel = RandomSmallTuple(rng, 7);
    double total = 0.0;
    ForEachTupleWorld(rel, [&](const std::vector<bool>&, double prob) {
      total += prob;
    });
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(TupleWorldsTest, ExclusionRulesAreRespected) {
  TupleRelation rel = PaperFig4();
  ForEachTupleWorld(rel, [&](const std::vector<bool>& present, double) {
    EXPECT_FALSE(present[1] && present[3]);  // t2 and t4 are exclusive
    EXPECT_TRUE(present[2]);                 // p(t3) = 1
  });
}

TEST(RankInWorldTest, AttrStrictAndIndexPolicies) {
  const std::vector<double> scores = {5.0, 7.0, 5.0, 3.0};
  EXPECT_EQ(RankInAttrWorld(scores, 1, TiePolicy::kStrictGreater), 0);
  EXPECT_EQ(RankInAttrWorld(scores, 0, TiePolicy::kStrictGreater), 1);
  EXPECT_EQ(RankInAttrWorld(scores, 2, TiePolicy::kStrictGreater), 1);
  EXPECT_EQ(RankInAttrWorld(scores, 3, TiePolicy::kStrictGreater), 3);
  // By-index tie-break: index 0 outranks the tied index 2.
  EXPECT_EQ(RankInAttrWorld(scores, 0, TiePolicy::kBreakByIndex), 1);
  EXPECT_EQ(RankInAttrWorld(scores, 2, TiePolicy::kBreakByIndex), 2);
}

TEST(RankInWorldTest, TupleAbsentTupleRanksLast) {
  TupleRelation rel = PaperFig4();
  const std::vector<bool> present = {false, true, true, false};
  EXPECT_EQ(RankInTupleWorld(rel, present, 0, TiePolicy::kStrictGreater), 2);
  EXPECT_EQ(RankInTupleWorld(rel, present, 1, TiePolicy::kStrictGreater), 0);
  EXPECT_EQ(RankInTupleWorld(rel, present, 2, TiePolicy::kStrictGreater), 1);
  EXPECT_EQ(RankInTupleWorld(rel, present, 3, TiePolicy::kStrictGreater), 2);
}

TEST(RankDistByEnumerationTest, RowsSumToOne) {
  Rng rng(3);
  AttrRelation arel = RandomSmallAttr(rng, 5, 3);
  for (const auto& row :
       AttrRankDistributionsByEnumeration(arel, TiePolicy::kBreakByIndex)) {
    double sum = 0.0;
    for (double p : row) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  TupleRelation trel = RandomSmallTuple(rng, 6);
  for (const auto& row :
       TupleRankDistributionsByEnumeration(trel, TiePolicy::kBreakByIndex)) {
    double sum = 0.0;
    for (double p : row) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(RankDistByEnumerationTest, Fig2RankDistributionOfT1) {
  // Paper Section 7.1: rank(t1) = {(0, 0.4), (1, 0), (2, 0.6)}.
  const auto dists =
      AttrRankDistributionsByEnumeration(PaperFig2(), TiePolicy::kBreakByIndex);
  EXPECT_NEAR(dists[0][0], 0.4, 1e-12);
  EXPECT_NEAR(dists[0][1], 0.0, 1e-12);
  EXPECT_NEAR(dists[0][2], 0.6, 1e-12);
}

TEST(RankDistByEnumerationTest, Fig4RankDistributionOfT4) {
  // Paper Section 7.1: rank(t4) = {(0,0), (1,0.3), (2,0.5), (3,0.2)}.
  const auto dists = TupleRankDistributionsByEnumeration(
      PaperFig4(), TiePolicy::kBreakByIndex);
  EXPECT_NEAR(dists[3][0], 0.0, 1e-12);
  EXPECT_NEAR(dists[3][1], 0.3, 1e-12);
  EXPECT_NEAR(dists[3][2], 0.5, 1e-12);
  EXPECT_NEAR(dists[3][3], 0.2, 1e-12);
}

TEST(TopKSetProbabilitiesTest, AttrFig2MatchesPaper) {
  // U-Topk discussion: top-1 {t1} has probability 0.4; top-2 {t2,t3} 0.36.
  auto top1 = AttrTopKSetProbabilities(PaperFig2(), 1);
  EXPECT_NEAR((top1[{1}]), 0.4, 1e-12);
  EXPECT_NEAR((top1[{2}]), 0.36, 1e-12);
  EXPECT_NEAR((top1[{3}]), 0.24, 1e-12);
  auto top2 = AttrTopKSetProbabilities(PaperFig2(), 2);
  EXPECT_NEAR((top2[{2, 3}]), 0.36, 1e-12);
}

TEST(TopKSetProbabilitiesTest, SetProbabilitiesSumToOne) {
  Rng rng(4);
  TupleRelation rel = RandomSmallTuple(rng, 6);
  for (int k = 1; k <= 3; ++k) {
    double total = 0.0;
    for (const auto& [ids, prob] : TupleTopKSetProbabilities(rel, k)) {
      total += prob;
      EXPECT_LE(static_cast<int>(ids.size()), k);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(TopKSetProbabilitiesTest, SmallWorldsYieldSmallSets) {
  // Two mutually exclusive tuples: every world has at most one tuple, so
  // the top-2 "set" always has size <= 1.
  TupleRelation rel({{1, 10.0, 0.5}, {2, 20.0, 0.4}}, {{0, 1}});
  auto sets = TupleTopKSetProbabilities(rel, 2);
  EXPECT_NEAR((sets[{1}]), 0.5, 1e-12);
  EXPECT_NEAR((sets[{2}]), 0.4, 1e-12);
  EXPECT_NEAR((sets[{}]), 0.1, 1e-12);
}

}  // namespace
}  // namespace urank
