#include "model/model_bridge.h"

#include <map>
#include <vector>

#include "core/expected_rank_attr.h"
#include "core/expected_rank_tuple.h"
#include "gtest/gtest.h"
#include "model/possible_worlds.h"
#include "test_util.h"
#include "util/rng.h"

namespace urank {
namespace {

using testing_util::PaperFig2;
using testing_util::RandomSmallAttr;

TEST(ModelBridgeTest, StructureOfFig2Bridge) {
  const AttrToTupleBridge bridge = BridgeAttrToTuple(PaperFig2());
  EXPECT_EQ(bridge.relation.size(), 5);     // 2 + 2 + 1 alternatives
  EXPECT_EQ(bridge.relation.num_rules(), 3);
  EXPECT_DOUBLE_EQ(bridge.relation.ExpectedWorldSize(), 3.0);
  for (int r = 0; r < bridge.relation.num_rules(); ++r) {
    EXPECT_NEAR(bridge.relation.rule_prob_sum(r), 1.0, 1e-9);
  }
  // Source bookkeeping: alternative 0/1 come from t1, 2/3 from t2, 4 from
  // t3.
  EXPECT_EQ(bridge.source_id,
            (std::vector<int>{1, 1, 2, 2, 3}));
  EXPECT_DOUBLE_EQ(bridge.source_value[0], 100.0);
  EXPECT_DOUBLE_EQ(bridge.source_value[4], 85.0);
}

TEST(ModelBridgeTest, WorldsAreInProbabilityPreservingBijection) {
  Rng rng(1);
  for (int trial = 0; trial < 8; ++trial) {
    const AttrRelation rel = RandomSmallAttr(rng, 5, 3);
    const AttrToTupleBridge bridge = BridgeAttrToTuple(rel);
    // Key each world by the realized per-source-tuple value vector; the
    // two distributions over keys must be identical.
    std::map<std::vector<double>, double> attr_worlds;
    ForEachAttrWorld(rel, [&](const std::vector<double>& scores, double p) {
      attr_worlds[scores] += p;
    });
    std::map<std::vector<double>, double> bridged_worlds;
    ForEachTupleWorld(
        bridge.relation, [&](const std::vector<bool>& present, double p) {
          std::vector<double> scores(static_cast<size_t>(rel.size()), 0.0);
          for (int j = 0; j < bridge.relation.size(); ++j) {
            if (!present[static_cast<size_t>(j)]) continue;
            // source ids are 0..N-1 for RandomSmallAttr relations.
            scores[static_cast<size_t>(
                bridge.source_id[static_cast<size_t>(j)])] =
                bridge.source_value[static_cast<size_t>(j)];
          }
          bridged_worlds[scores] += p;
        });
    ASSERT_EQ(attr_worlds.size(), bridged_worlds.size());
    for (const auto& [key, prob] : attr_worlds) {
      auto it = bridged_worlds.find(key);
      ASSERT_NE(it, bridged_worlds.end());
      EXPECT_NEAR(it->second, prob, 1e-9);
    }
  }
}

TEST(ModelBridgeTest, EveryWorldHasExactlyNAlternatives) {
  Rng rng(2);
  const AttrRelation rel = RandomSmallAttr(rng, 4, 3);
  const AttrToTupleBridge bridge = BridgeAttrToTuple(rel);
  ForEachTupleWorld(bridge.relation,
                    [&](const std::vector<bool>& present, double) {
                      int count = 0;
                      for (bool b : present) count += b ? 1 : 0;
                      EXPECT_EQ(count, rel.size());
                    });
}

TEST(ModelBridgeTest, RankingDoesNotReduceAcrossTheBridge) {
  // The paper's warning made concrete: the expected rank of a source
  // tuple is NOT recoverable as the expected rank of its alternatives.
  // For Fig. 2's t1: attribute-level r(t1) = 1.2, but the bridged
  // alternative (100, 0.4) has r = 0.4*0 + 0.6*3 = 1.8 (when absent it
  // trails a full 3-tuple world).
  const AttrToTupleBridge bridge = BridgeAttrToTuple(PaperFig2());
  const std::vector<double> bridged = TupleExpectedRanks(bridge.relation);
  EXPECT_NEAR(bridged[0], 1.8, 1e-12);
  const std::vector<double> attr = AttrExpectedRanks(PaperFig2());
  EXPECT_NEAR(attr[0], 1.2, 1e-12);
  EXPECT_GT(bridged[0], attr[0] + 0.5);
}

TEST(ModelBridgeTest, EmptyRelation) {
  const AttrToTupleBridge bridge = BridgeAttrToTuple(AttrRelation());
  EXPECT_EQ(bridge.relation.size(), 0);
  EXPECT_TRUE(bridge.source_id.empty());
}

}  // namespace
}  // namespace urank
