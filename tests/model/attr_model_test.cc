#include "model/attr_model.h"

#include <limits>
#include <string>

#include "gtest/gtest.h"

namespace urank {
namespace {

AttrTuple SimpleTuple(int id) {
  return {id, {{10.0, 0.5}, {20.0, 0.5}}};
}

TEST(AttrTupleTest, ExpectedScore) {
  AttrTuple t{1, {{10.0, 0.25}, {20.0, 0.75}}};
  EXPECT_DOUBLE_EQ(t.ExpectedScore(), 17.5);
}

TEST(AttrTupleTest, TailProbabilities) {
  AttrTuple t{1, {{10.0, 0.2}, {20.0, 0.3}, {30.0, 0.5}}};
  EXPECT_DOUBLE_EQ(t.PrGreater(10.0), 0.8);
  EXPECT_DOUBLE_EQ(t.PrGreater(30.0), 0.0);
  EXPECT_DOUBLE_EQ(t.PrGreater(5.0), 1.0);
  EXPECT_DOUBLE_EQ(t.PrGreaterEqual(20.0), 0.8);
  EXPECT_DOUBLE_EQ(t.PrEqual(20.0), 0.3);
  EXPECT_DOUBLE_EQ(t.PrEqual(15.0), 0.0);
}

TEST(AttrRelationTest, BasicAccessors) {
  AttrRelation rel({SimpleTuple(1), SimpleTuple(2)});
  EXPECT_EQ(rel.size(), 2);
  EXPECT_EQ(rel.tuple(0).id, 1);
  EXPECT_EQ(rel.tuple(1).id, 2);
  EXPECT_EQ(rel.max_pdf_size(), 2);
  EXPECT_EQ(rel.NumWorlds(), 4);
}

TEST(AttrRelationTest, EmptyRelation) {
  AttrRelation rel;
  EXPECT_EQ(rel.size(), 0);
  EXPECT_EQ(rel.max_pdf_size(), 0);
  EXPECT_EQ(rel.NumWorlds(), 1);
}

TEST(AttrRelationTest, NumWorldsSaturates) {
  // 64 tuples with 2-point pdfs: 2^64 worlds overflows long long.
  std::vector<AttrTuple> tuples;
  for (int i = 0; i < 64; ++i) tuples.push_back(SimpleTuple(i));
  AttrRelation rel(std::move(tuples));
  EXPECT_EQ(rel.NumWorlds(), std::numeric_limits<long long>::max());
}

TEST(AttrRelationValidateTest, AcceptsValid) {
  std::string error;
  EXPECT_TRUE(AttrRelation::Validate({SimpleTuple(1)}, &error)) << error;
}

TEST(AttrRelationValidateTest, RejectsDuplicateIds) {
  std::string error;
  EXPECT_FALSE(
      AttrRelation::Validate({SimpleTuple(1), SimpleTuple(1)}, &error));
  EXPECT_NE(error.find("duplicate tuple id"), std::string::npos);
}

TEST(AttrRelationValidateTest, RejectsEmptyPdf) {
  std::string error;
  EXPECT_FALSE(AttrRelation::Validate({{1, {}}}, &error));
  EXPECT_NE(error.find("empty pdf"), std::string::npos);
}

TEST(AttrRelationValidateTest, RejectsBadProbability) {
  std::string error;
  EXPECT_FALSE(AttrRelation::Validate({{1, {{10.0, 0.0}, {20.0, 1.0}}}},
                                      &error));
  EXPECT_FALSE(
      AttrRelation::Validate({{1, {{10.0, -0.5}, {20.0, 1.5}}}}, &error));
}

TEST(AttrRelationValidateTest, RejectsProbabilitiesNotSummingToOne) {
  std::string error;
  EXPECT_FALSE(
      AttrRelation::Validate({{1, {{10.0, 0.5}, {20.0, 0.4}}}}, &error));
  EXPECT_NE(error.find("sum"), std::string::npos);
}

TEST(AttrRelationValidateTest, RejectsRepeatedValues) {
  std::string error;
  EXPECT_FALSE(
      AttrRelation::Validate({{1, {{10.0, 0.5}, {10.0, 0.5}}}}, &error));
  EXPECT_NE(error.find("repeats"), std::string::npos);
}

TEST(AttrRelationValidateTest, RejectsNonFiniteValue) {
  std::string error;
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(
      AttrRelation::Validate({{1, {{inf, 0.5}, {20.0, 0.5}}}}, &error));
  EXPECT_NE(error.find("non-finite"), std::string::npos);
}

TEST(AttrRelationValidateTest, ToleratesTinyRoundOff) {
  std::string error;
  EXPECT_TRUE(AttrRelation::Validate(
      {{1, {{10.0, 0.5 + 1e-13}, {20.0, 0.5}}}}, &error))
      << error;
}

TEST(AttrRelationDeathTest, ConstructorAbortsOnInvalid) {
  EXPECT_DEATH(AttrRelation({{1, {{10.0, 0.5}, {20.0, 0.4}}}}), "sum");
}

}  // namespace
}  // namespace urank
