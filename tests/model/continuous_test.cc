#include "model/continuous.h"

#include <cmath>
#include <string>

#include "core/expected_rank_attr.h"
#include "gtest/gtest.h"

namespace urank {
namespace {

TEST(UniformScorePdfTest, CdfQuantileMean) {
  UniformScorePdf pdf(10.0, 20.0);
  EXPECT_DOUBLE_EQ(pdf.Cdf(10.0), 0.0);
  EXPECT_DOUBLE_EQ(pdf.Cdf(15.0), 0.5);
  EXPECT_DOUBLE_EQ(pdf.Cdf(20.0), 1.0);
  EXPECT_DOUBLE_EQ(pdf.Cdf(5.0), 0.0);
  EXPECT_DOUBLE_EQ(pdf.Cdf(25.0), 1.0);
  EXPECT_DOUBLE_EQ(pdf.Quantile(0.25), 12.5);
  EXPECT_DOUBLE_EQ(pdf.Mean(), 15.0);
}

TEST(GaussianScorePdfTest, CdfIsStandardNormal) {
  GaussianScorePdf pdf(0.0, 1.0);
  EXPECT_NEAR(pdf.Cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(pdf.Cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(pdf.Cdf(-1.96), 0.025, 1e-3);
}

TEST(GaussianScorePdfTest, QuantileInvertsCdf) {
  GaussianScorePdf pdf(5.0, 2.0);
  for (double p : {0.01, 0.25, 0.5, 0.75, 0.99}) {
    EXPECT_NEAR(pdf.Cdf(pdf.Quantile(p)), p, 1e-9) << "p=" << p;
  }
  EXPECT_NEAR(pdf.Quantile(0.5), 5.0, 1e-9);
}

TEST(TriangularScorePdfTest, CdfQuantileMean) {
  TriangularScorePdf pdf(0.0, 2.0, 6.0);
  EXPECT_DOUBLE_EQ(pdf.Cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(pdf.Cdf(6.0), 1.0);
  EXPECT_NEAR(pdf.Cdf(2.0), 2.0 / 6.0, 1e-12);  // mass left of the mode
  for (double p : {0.1, 1.0 / 3.0, 0.5, 0.9}) {
    EXPECT_NEAR(pdf.Cdf(pdf.Quantile(p)), p, 1e-9) << "p=" << p;
  }
  EXPECT_NEAR(pdf.Mean(), (0.0 + 2.0 + 6.0) / 3.0, 1e-12);
}

TEST(TriangularScorePdfTest, DegenerateModeAtEndpoints) {
  TriangularScorePdf left(0.0, 0.0, 4.0);
  EXPECT_NEAR(left.Cdf(2.0), 1.0 - 4.0 / 16.0, 1e-12);
  TriangularScorePdf right(0.0, 4.0, 4.0);
  EXPECT_NEAR(right.Cdf(2.0), 4.0 / 16.0, 1e-12);
}

TEST(DiscretizeToTupleTest, ProducesValidTuple) {
  GaussianScorePdf pdf(50.0, 10.0);
  const AttrTuple t = DiscretizeToTuple(7, pdf, 8);
  EXPECT_EQ(t.id, 7);
  EXPECT_EQ(t.pdf.size(), 8u);
  std::string error;
  EXPECT_TRUE(AttrRelation::Validate({t}, &error)) << error;
}

TEST(DiscretizeToTupleTest, MeanConvergesToContinuousMean) {
  TriangularScorePdf pdf(0.0, 3.0, 10.0);
  double prev_err = 1e18;
  for (int buckets : {2, 8, 32, 128}) {
    const AttrTuple t = DiscretizeToTuple(0, pdf, buckets);
    const double err = std::fabs(t.ExpectedScore() - pdf.Mean());
    EXPECT_LT(err, prev_err + 1e-12) << "buckets=" << buckets;
    prev_err = err;
  }
  EXPECT_LT(prev_err, 0.01);
}

TEST(DiscretizeToTupleTest, QuantilesAreMonotone) {
  GaussianScorePdf pdf(0.0, 1.0);
  const AttrTuple t = DiscretizeToTuple(0, pdf, 16);
  for (size_t l = 1; l < t.pdf.size(); ++l) {
    EXPECT_GT(t.pdf[l].value, t.pdf[l - 1].value);
  }
}

TEST(DiscretizeToTupleTest, SingleBucketIsTheMedian) {
  UniformScorePdf pdf(0.0, 10.0);
  const AttrTuple t = DiscretizeToTuple(0, pdf, 1);
  ASSERT_EQ(t.pdf.size(), 1u);
  EXPECT_DOUBLE_EQ(t.pdf[0].value, 5.0);
  EXPECT_DOUBLE_EQ(t.pdf[0].prob, 1.0);
}

TEST(DiscretizeToTupleTest, StochasticOrderIsPreserved) {
  // Two Gaussians with different means: the discretized ranking must put
  // the larger-mean one first, at any resolution.
  for (int buckets : {1, 4, 16}) {
    AttrRelation rel({DiscretizeToTuple(0, GaussianScorePdf(60.0, 5.0), buckets),
                      DiscretizeToTuple(1, GaussianScorePdf(40.0, 5.0), buckets)});
    const auto top = AttrExpectedRankTopK(rel, 2);
    EXPECT_EQ(top[0].id, 0) << "buckets=" << buckets;
  }
}

TEST(DiscretizeToTupleTest, RankingConvergesWithResolution) {
  // Overlapping distributions ranked at coarse vs fine resolution: the
  // fine discretization's expected ranks approach a reference computed at
  // very high resolution.
  auto ranks_at = [&](int buckets) {
    AttrRelation rel({
        DiscretizeToTuple(0, GaussianScorePdf(50.0, 15.0), buckets),
        DiscretizeToTuple(1, TriangularScorePdf(30.0, 55.0, 70.0), buckets),
        DiscretizeToTuple(2, UniformScorePdf(20.0, 90.0), buckets),
    });
    return AttrExpectedRanks(rel);
  };
  const auto reference = ranks_at(512);
  const auto coarse = ranks_at(4);
  const auto fine = ranks_at(64);
  double coarse_err = 0.0, fine_err = 0.0;
  for (size_t i = 0; i < reference.size(); ++i) {
    coarse_err += std::fabs(coarse[i] - reference[i]);
    fine_err += std::fabs(fine[i] - reference[i]);
  }
  EXPECT_LT(fine_err, coarse_err);
  EXPECT_LT(fine_err, 0.05);
}

TEST(ContinuousDeathTest, RejectsBadParameters) {
  EXPECT_DEATH(UniformScorePdf(1.0, 1.0), "lo < hi");
  EXPECT_DEATH(GaussianScorePdf(0.0, 0.0), "stddev > 0");
  EXPECT_DEATH(TriangularScorePdf(0.0, 5.0, 4.0), "mode");
  UniformScorePdf pdf(0.0, 1.0);
  EXPECT_DEATH(pdf.Quantile(0.0), "p in");
  EXPECT_DEATH(pdf.Quantile(1.0), "p in");
  EXPECT_DEATH(DiscretizeToTuple(0, pdf, 0), "buckets");
}

}  // namespace
}  // namespace urank
