#include "model/tuple_model.h"

#include <limits>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace urank {
namespace {

std::vector<TLTuple> FourTuples() {
  return {{1, 100.0, 0.4}, {2, 90.0, 0.5}, {3, 80.0, 1.0}, {4, 70.0, 0.5}};
}

TEST(TupleRelationTest, BasicAccessors) {
  TupleRelation rel(FourTuples(), {{0}, {1, 3}, {2}});
  EXPECT_EQ(rel.size(), 4);
  EXPECT_EQ(rel.num_rules(), 3);
  EXPECT_EQ(rel.rule_of(0), 0);
  EXPECT_EQ(rel.rule_of(1), 1);
  EXPECT_EQ(rel.rule_of(3), 1);
  EXPECT_EQ(rel.rule_of(2), 2);
  EXPECT_DOUBLE_EQ(rel.rule_prob_sum(1), 1.0);
  EXPECT_DOUBLE_EQ(rel.ExpectedWorldSize(), 2.4);
}

TEST(TupleRelationTest, ImplicitSingletonRules) {
  // Tuples not covered by explicit rules get their own singleton rule.
  TupleRelation rel(FourTuples(), {{1, 3}});
  EXPECT_EQ(rel.num_rules(), 3);
  EXPECT_EQ(rel.rule(0), (std::vector<int>{1, 3}));
  EXPECT_NE(rel.rule_of(0), rel.rule_of(2));
  EXPECT_EQ(static_cast<int>(rel.rule(rel.rule_of(0)).size()), 1);
}

TEST(TupleRelationTest, IndependentFactory) {
  TupleRelation rel = TupleRelation::Independent(FourTuples());
  EXPECT_EQ(rel.num_rules(), 4);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(static_cast<int>(rel.rule(r).size()), 1);
  }
}

TEST(TupleRelationTest, NumWorldsCountsEmptyChoiceOnlyWhenPossible) {
  // Rule {t2,t4} has total probability 1, so "neither appears" is
  // impossible: choices are 2, not 3. Rule {t1} has p=0.4 < 1: 2 choices.
  // Rule {t3} has p=1: 1 choice.
  TupleRelation rel(FourTuples(), {{0}, {1, 3}, {2}});
  EXPECT_EQ(rel.NumWorlds(), 2 * 2 * 1);
}

TEST(TupleRelationTest, EmptyRelation) {
  TupleRelation rel = TupleRelation::Independent({});
  EXPECT_EQ(rel.size(), 0);
  EXPECT_EQ(rel.num_rules(), 0);
  EXPECT_EQ(rel.NumWorlds(), 1);
  EXPECT_DOUBLE_EQ(rel.ExpectedWorldSize(), 0.0);
}

TEST(TupleRelationValidateTest, AcceptsValid) {
  std::string error;
  EXPECT_TRUE(TupleRelation::Validate(FourTuples(), {{0}, {1, 3}, {2}},
                                      &error))
      << error;
}

TEST(TupleRelationValidateTest, RejectsDuplicateIds) {
  std::string error;
  EXPECT_FALSE(TupleRelation::Validate(
      {{1, 10.0, 0.5}, {1, 20.0, 0.5}}, {}, &error));
  EXPECT_NE(error.find("duplicate tuple id"), std::string::npos);
}

TEST(TupleRelationValidateTest, RejectsBadProbability) {
  std::string error;
  EXPECT_FALSE(TupleRelation::Validate({{1, 10.0, 0.0}}, {}, &error));
  EXPECT_FALSE(TupleRelation::Validate({{1, 10.0, 1.5}}, {}, &error));
  EXPECT_FALSE(TupleRelation::Validate({{1, 10.0, -0.2}}, {}, &error));
}

TEST(TupleRelationValidateTest, RejectsOverfullRule) {
  std::string error;
  EXPECT_FALSE(TupleRelation::Validate(
      {{1, 10.0, 0.7}, {2, 20.0, 0.7}}, {{0, 1}}, &error));
  EXPECT_NE(error.find("> 1"), std::string::npos);
}

TEST(TupleRelationValidateTest, RejectsEmptyRule) {
  std::string error;
  EXPECT_FALSE(TupleRelation::Validate({{1, 10.0, 0.5}}, {{}}, &error));
  EXPECT_NE(error.find("empty"), std::string::npos);
}

TEST(TupleRelationValidateTest, RejectsOutOfRangeRuleIndex) {
  std::string error;
  EXPECT_FALSE(TupleRelation::Validate({{1, 10.0, 0.5}}, {{1}}, &error));
  EXPECT_NE(error.find("out of range"), std::string::npos);
}

TEST(TupleRelationValidateTest, RejectsTupleInTwoRules) {
  std::string error;
  EXPECT_FALSE(TupleRelation::Validate(
      {{1, 10.0, 0.3}, {2, 20.0, 0.3}}, {{0, 1}, {0}}, &error));
  EXPECT_NE(error.find("more than one rule"), std::string::npos);
}

TEST(TupleRelationValidateTest, RejectsNonFiniteScore) {
  std::string error;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(TupleRelation::Validate({{1, nan, 0.5}}, {}, &error));
  EXPECT_NE(error.find("non-finite"), std::string::npos);
}

TEST(TupleRelationDeathTest, ConstructorAbortsOnInvalid) {
  EXPECT_DEATH(TupleRelation({{1, 10.0, 0.7}, {2, 20.0, 0.7}}, {{0, 1}}),
               "> 1");
}

}  // namespace
}  // namespace urank
