#include "common/scenario_gen.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"
#include "util/rng.h"

namespace urank {
namespace testgen {

namespace {

// Distinct descending-ish scores: a deterministic base spread plus a
// small uniform jitter that cannot create collisions (the base values
// are >= 1 apart).
std::vector<double> DistinctScores(int n, Rng& rng) {
  std::vector<double> scores(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    scores[static_cast<size_t>(i)] =
        static_cast<double>(n - i) * 2.0 + rng.Uniform(0.0, 0.5);
  }
  return scores;
}

}  // namespace

TupleRelation CorrelatedTupleRelation(int n, Correlation correlation,
                                      uint64_t seed) {
  URANK_CHECK_MSG(n >= 0, "n must be >= 0");
  Rng rng(seed);
  std::vector<double> scores = DistinctScores(n, rng);
  const std::vector<double> probs =
      GenerateProbabilities(scores, correlation, 0.1, 1.0, rng);
  std::vector<TLTuple> tuples;
  tuples.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    tuples.push_back(TLTuple{i, scores[static_cast<size_t>(i)],
                             probs[static_cast<size_t>(i)]});
  }
  return TupleRelation::Independent(std::move(tuples));
}

TupleRelation ClusteredScoreTupleRelation(int n, int clusters,
                                          uint64_t seed) {
  URANK_CHECK_MSG(n >= 0, "n must be >= 0");
  URANK_CHECK_MSG(clusters >= 1, "clusters must be >= 1");
  Rng rng(seed);
  std::vector<TLTuple> tuples;
  tuples.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    // Exact collision on the cluster centre: tuples i and i + clusters
    // tie, producing runs the rank order must break by index.
    const double centre =
        static_cast<double>(clusters - (i % clusters)) * 100.0;
    tuples.push_back(TLTuple{i, centre, rng.Uniform(0.1, 1.0)});
  }
  return TupleRelation::Independent(std::move(tuples));
}

AttrRelation ClusteredScoreAttrRelation(int n, int clusters, int pdf_size,
                                        uint64_t seed) {
  URANK_CHECK_MSG(n >= 0, "n must be >= 0");
  URANK_CHECK_MSG(clusters >= 1, "clusters must be >= 1");
  URANK_CHECK_MSG(pdf_size >= 1, "pdf_size must be >= 1");
  Rng rng(seed);
  std::vector<AttrTuple> tuples;
  tuples.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double centre =
        static_cast<double>(clusters - (i % clusters)) * 100.0;
    AttrTuple t;
    t.id = i;
    const std::vector<double> probs = rng.RandomSimplex(pdf_size, 1.0);
    t.pdf.reserve(static_cast<size_t>(pdf_size));
    for (int v = 0; v < pdf_size; ++v) {
      // Support values shared across every tuple of the cluster, so
      // distinct tuples collide on exact values (the tie-policy stress).
      t.pdf.push_back(ScoreValue{centre + static_cast<double>(v),
                                 probs[static_cast<size_t>(v)]});
    }
    tuples.push_back(std::move(t));
  }
  return AttrRelation(std::move(tuples));
}

TupleRelation AdversarialRuleTupleRelation(int n, int rules, uint64_t seed) {
  URANK_CHECK_MSG(n >= 0, "n must be >= 0");
  URANK_CHECK_MSG(rules >= 1 && rules <= std::max(n, 1),
                  "rules must be in [1, n]");
  Rng rng(seed);
  std::vector<double> scores = DistinctScores(n, rng);
  std::sort(scores.begin(), scores.end(), std::greater<double>());
  std::vector<TLTuple> tuples(static_cast<size_t>(n));
  std::vector<std::vector<int>> rule_members(static_cast<size_t>(rules));
  for (int i = 0; i < n; ++i) {
    // Tuple i holds the i-th largest score and belongs to rule i % rules:
    // every rule's members stripe across the whole score range.
    tuples[static_cast<size_t>(i)] =
        TLTuple{i, scores[static_cast<size_t>(i)], 0.0};
    rule_members[static_cast<size_t>(i % rules)].push_back(i);
  }
  for (int r = 0; r < rules; ++r) {
    const std::vector<int>& members = rule_members[static_cast<size_t>(r)];
    const std::vector<double> probs =
        rng.RandomSimplex(static_cast<int>(members.size()), 0.95);
    for (size_t j = 0; j < members.size(); ++j) {
      tuples[static_cast<size_t>(members[j])].prob = probs[j];
    }
  }
  return TupleRelation(std::move(tuples), std::move(rule_members));
}

TupleRelation WideRuleTupleRelation(int n, int rules, uint64_t seed) {
  URANK_CHECK_MSG(n >= 0, "n must be >= 0");
  URANK_CHECK_MSG(rules >= 1, "rules must be >= 1");
  Rng rng(seed);
  std::vector<TLTuple> tuples(static_cast<size_t>(n));
  const int covered = n / 2;
  std::vector<std::vector<int>> rule_members(
      static_cast<size_t>(std::min(rules, std::max(covered, 1))));
  const int m = static_cast<int>(rule_members.size());
  for (int i = 0; i < n; ++i) {
    const double score =
        static_cast<double>(n - i) * 2.0 + rng.Uniform(0.0, 0.5);
    double prob;
    if (i < covered) {
      rule_members[static_cast<size_t>(i % m)].push_back(i);
      // Wide-rule members share the rule's unit of mass: size-uniform
      // probabilities keep the rule sum at ~0.9 for any member count.
      prob = 0.9 / (static_cast<double>(covered / m) + 1.0);
    } else {
      prob = rng.Uniform(0.2, 1.0);
    }
    tuples[static_cast<size_t>(i)] = TLTuple{i, score, prob};
  }
  for (size_t r = 0; r < rule_members.size(); ++r) {
    if (rule_members[r].empty()) {
      rule_members.resize(r);
      break;
    }
  }
  return TupleRelation(std::move(tuples), std::move(rule_members));
}

TupleRelation BoundedSupportTupleRelation(int n, int rules, int singletons,
                                          uint64_t seed) {
  URANK_CHECK_MSG(n >= 0, "n must be >= 0");
  URANK_CHECK_MSG(rules >= 1, "rules must be >= 1");
  URANK_CHECK_MSG(singletons >= 0 && singletons <= n,
                  "singletons must be in [0, n]");
  Rng rng(seed);
  std::vector<TLTuple> tuples(static_cast<size_t>(n));
  std::vector<std::vector<int>> rule_members(static_cast<size_t>(rules));
  for (int i = 0; i < n; ++i) {
    TLTuple& t = tuples[static_cast<size_t>(i)];
    t.id = i;
    t.score = static_cast<double>((static_cast<long long>(i) * 7919) % 9973) +
              rng.Uniform(0.0, 0.5);
    if (i < singletons) {
      // Every 10th singleton is certain; the rest carry enough mass that
      // the certain-prefix bound accumulates quickly.
      t.prob = (i % 10 == 0) ? 1.0 : rng.Uniform(0.25, 0.95);
    } else {
      rule_members[static_cast<size_t>((i - singletons) % rules)].push_back(i);
      t.prob = 0.0;  // filled below once member counts are known
    }
  }
  for (std::vector<int>& members : rule_members) {
    if (members.empty()) continue;
    const double p = 0.95 / static_cast<double>(members.size());
    for (int i : members) tuples[static_cast<size_t>(i)].prob = p;
  }
  // n - singletons < rules leaves a trailing run of empty rules; trim it.
  for (size_t r = 0; r < rule_members.size(); ++r) {
    if (rule_members[r].empty()) {
      rule_members.resize(r);
      break;
    }
  }
  return TupleRelation(std::move(tuples), std::move(rule_members));
}

TupleBlocks SplitIntoBlocks(const TupleRelation& rel, int block) {
  URANK_CHECK_MSG(block >= 1, "block must be >= 1");
  TupleBlocks out;
  const int n = rel.size();
  for (int begin = 0; begin < n; begin += block) {
    const int end = std::min(begin + block, n);
    std::vector<TLTuple> tuples;
    std::vector<int> keys;
    tuples.reserve(static_cast<size_t>(end - begin));
    keys.reserve(static_cast<size_t>(end - begin));
    for (int i = begin; i < end; ++i) {
      tuples.push_back(rel.tuple(i));
      const int r = rel.rule_of(i);
      // Singletons travel as "independent" (-1); real rules keep their
      // index as the cross-block key.
      keys.push_back(rel.rule(r).size() > 1 ? r : -1);
    }
    out.tuples.push_back(std::move(tuples));
    out.rule_keys.push_back(std::move(keys));
  }
  return out;
}

}  // namespace testgen
}  // namespace urank
