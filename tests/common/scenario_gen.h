// Stress-scenario relation generators shared by the unit tests and the
// benchmark harnesses (linked as the urank_scenarios library, registered
// in the top-level CMakeLists so both subtrees see it).
//
// The gen/ library produces the paper's baseline synthetic workloads;
// the scenarios here target the structures that make pruning and blocked
// preparation interesting or hard:
//
//   * correlated / anti-correlated score-probability relations — the
//     regimes where expected-score order is most and least informative
//     about rank, i.e. the best and worst cases for the pruned kernels;
//   * clustered scores — a few tight score clusters with long exactly-
//     equal runs, stressing tie policies and run-aligned chunk/shard
//     boundaries;
//   * adversarial exclusion-rule graphs — a handful of wide rules whose
//     members are spread across the whole score range, so every sweep
//     chunk carries mass for every rule;
//   * wide-rule scale relations — the cheap deterministic construction
//     the N=1M benchmarks use: ~`rules` wide exclusion rules plus
//     independent tuples, buildable in O(N).
//
// All generators are deterministic functions of their arguments (fixed
// seed => fixed relation) and produce valid relations with ids 0..N-1.

#ifndef URANK_TESTS_COMMON_SCENARIO_GEN_H_
#define URANK_TESTS_COMMON_SCENARIO_GEN_H_

#include <cstdint>
#include <vector>

#include "gen/score_gen.h"
#include "model/attr_model.h"
#include "model/tuple_model.h"

namespace urank {
namespace testgen {

// Tuple-level relation whose existence probabilities follow `correlation`
// against the (uniform) scores. Positive correlation concentrates
// existence mass at the top of the stream (pruning fires early);
// negative correlation puts the likely tuples at the bottom (pruning
// must be provably conservative). Requires n >= 0.
TupleRelation CorrelatedTupleRelation(int n, Correlation correlation,
                                      uint64_t seed);

// Tuple-level relation whose scores collapse onto `clusters` exact
// values, producing runs of n/clusters tied tuples. Requires n >= 0,
// clusters >= 1.
TupleRelation ClusteredScoreTupleRelation(int n, int clusters,
                                          uint64_t seed);

// Attribute-level counterpart: pdf supports are drawn around `clusters`
// shared centres so distinct tuples collide on exact support values.
// Requires n >= 0, clusters >= 1, pdf_size >= 1.
AttrRelation ClusteredScoreAttrRelation(int n, int clusters, int pdf_size,
                                        uint64_t seed);

// Adversarial exclusion-rule graph: `rules` wide rules, each with
// members striped across the entire score range (member j of rule r has
// the (j * rules + r)-th largest score), so no prefix of the rank order
// localizes a rule. Per-rule probabilities sum to ~0.95. Requires
// n >= 0, 1 <= rules <= max(n, 1).
TupleRelation AdversarialRuleTupleRelation(int n, int rules, uint64_t seed);

// Scale scenario for the N=1M benchmarks: `rules` wide exclusion rules
// covering half the tuples (striped like the adversarial graph), the
// other half independent with probabilities in [0.2, 1]. O(N) build,
// distinct scores. Requires n >= 0, rules >= 1.
TupleRelation WideRuleTupleRelation(int n, int rules, uint64_t seed);

// Bounded Poisson-binomial support at any N: `rules` wide exclusion
// rules hold every tuple past a `singletons`-tuple prefix (which mixes
// certain tuples and high-probability independents), so the rank DP's
// support stays O(rules + singletons) while N scales to millions — the
// shape the unpruned-vs-pruned N=1M series needs to stay tractable.
// Scores are near-uniform over [0, 9973.5) with collisions only through
// the jitter (i.e. effectively distinct). Requires n >= 0, rules >= 1,
// 0 <= singletons <= n.
TupleRelation BoundedSupportTupleRelation(int n, int rules, int singletons,
                                          uint64_t seed);

// Splits `rel` into contiguous blocks of `block` tuples (the last one
// ragged) for feeding PreparedTupleRelationBuilder: returns per-block
// tuple vectors plus parallel rule-key vectors (rule index as the key,
// -1 for singletons) so cross-block rules reassemble exactly. Requires
// block >= 1.
struct TupleBlocks {
  std::vector<std::vector<TLTuple>> tuples;
  std::vector<std::vector<int>> rule_keys;
};
TupleBlocks SplitIntoBlocks(const TupleRelation& rel, int block);

}  // namespace testgen
}  // namespace urank

#endif  // URANK_TESTS_COMMON_SCENARIO_GEN_H_
