#include "io/csv.h"

#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>

#include "core/expected_rank_attr.h"
#include "core/expected_rank_tuple.h"
#include "gen/attr_gen.h"
#include "gen/tuple_gen.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace urank {
namespace {

using testing_util::PaperFig2;
using testing_util::PaperFig4;

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(AttrCsvTest, RoundTripThroughStreams) {
  const AttrRelation original = PaperFig2();
  std::stringstream buffer;
  WriteAttrRelation(original, buffer);
  AttrRelation loaded;
  std::string error;
  ASSERT_TRUE(ReadAttrRelation(buffer, &loaded, &error)) << error;
  ASSERT_EQ(loaded.size(), original.size());
  for (int i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded.tuple(i).id, original.tuple(i).id);
    EXPECT_EQ(loaded.tuple(i).pdf, original.tuple(i).pdf);
  }
}

TEST(AttrCsvTest, RoundTripPreservesQueryAnswers) {
  AttrGenConfig config;
  config.num_tuples = 200;
  config.seed = 3;
  const AttrRelation original = GenerateAttrRelation(config);
  std::stringstream buffer;
  WriteAttrRelation(original, buffer);
  AttrRelation loaded;
  std::string error;
  ASSERT_TRUE(ReadAttrRelation(buffer, &loaded, &error)) << error;
  EXPECT_EQ(IdsOf(AttrExpectedRankTopK(loaded, 10)),
            IdsOf(AttrExpectedRankTopK(original, 10)));
}

TEST(AttrCsvTest, ParsesHandWrittenInput) {
  std::stringstream in(
      "# comment line\n"
      "\n"
      "1, 100:0.4; 70:0.6\n"
      "2,92:0.6;80:0.4\n");
  AttrRelation rel;
  std::string error;
  ASSERT_TRUE(ReadAttrRelation(in, &rel, &error)) << error;
  EXPECT_EQ(rel.size(), 2);
  EXPECT_DOUBLE_EQ(rel.tuple(0).pdf[0].value, 100.0);
}

TEST(AttrCsvTest, RejectsMalformedInput) {
  std::string error;
  AttrRelation rel;
  {
    std::stringstream in("1\n");
    EXPECT_FALSE(ReadAttrRelation(in, &rel, &error));
    EXPECT_NE(error.find("line 1"), std::string::npos);
  }
  {
    std::stringstream in("x,1:1\n");
    EXPECT_FALSE(ReadAttrRelation(in, &rel, &error));
    EXPECT_NE(error.find("bad tuple id"), std::string::npos);
  }
  {
    std::stringstream in("1,10:0.5;20\n");
    EXPECT_FALSE(ReadAttrRelation(in, &rel, &error));
    EXPECT_NE(error.find("pdf entry"), std::string::npos);
  }
  {
    // Parses but fails model validation (probabilities sum to 0.9).
    std::stringstream in("1,10:0.5;20:0.4\n");
    EXPECT_FALSE(ReadAttrRelation(in, &rel, &error));
    EXPECT_NE(error.find("invalid relation"), std::string::npos);
  }
}

TEST(TupleCsvTest, RoundTripThroughStreams) {
  const TupleRelation original = PaperFig4();
  std::stringstream buffer;
  WriteTupleRelation(original, buffer);
  TupleRelation loaded;
  std::string error;
  ASSERT_TRUE(ReadTupleRelation(buffer, &loaded, &error)) << error;
  ASSERT_EQ(loaded.size(), original.size());
  for (int i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded.tuple(i), original.tuple(i));
  }
  // Rule structure survives: t2 and t4 are still exclusive.
  EXPECT_EQ(loaded.rule_of(1), loaded.rule_of(3));
  EXPECT_NE(loaded.rule_of(0), loaded.rule_of(1));
  // And the query answers match.
  EXPECT_EQ(IdsOf(TupleExpectedRankTopK(loaded, 4)),
            IdsOf(TupleExpectedRankTopK(original, 4)));
}

TEST(TupleCsvTest, RoundTripGeneratedRelation) {
  TupleGenConfig config;
  config.num_tuples = 300;
  config.multi_rule_fraction = 0.5;
  config.seed = 4;
  const TupleRelation original = GenerateTupleRelation(config);
  std::stringstream buffer;
  WriteTupleRelation(original, buffer);
  TupleRelation loaded;
  std::string error;
  ASSERT_TRUE(ReadTupleRelation(buffer, &loaded, &error)) << error;
  EXPECT_EQ(loaded.num_rules(), original.num_rules());
  EXPECT_EQ(IdsOf(TupleExpectedRankTopK(loaded, 20)),
            IdsOf(TupleExpectedRankTopK(original, 20)));
}

TEST(TupleCsvTest, ParsesRuleLabels) {
  std::stringstream in(
      "# id,score,prob,rule\n"
      "10,5.0,0.5,7\n"
      "11,4.0,0.4,7\n"
      "12,3.0,0.9,-1\n");
  TupleRelation rel;
  std::string error;
  ASSERT_TRUE(ReadTupleRelation(in, &rel, &error)) << error;
  EXPECT_EQ(rel.size(), 3);
  EXPECT_EQ(rel.rule_of(0), rel.rule_of(1));
  EXPECT_NE(rel.rule_of(0), rel.rule_of(2));
}

TEST(TupleCsvTest, RejectsMalformedInput) {
  std::string error;
  TupleRelation rel;
  {
    std::stringstream in("1,2.0,0.5\n");
    EXPECT_FALSE(ReadTupleRelation(in, &rel, &error));
    EXPECT_NE(error.find("expected"), std::string::npos);
  }
  {
    std::stringstream in("1,2.0,high,0\n");
    EXPECT_FALSE(ReadTupleRelation(in, &rel, &error));
    EXPECT_NE(error.find("unparsable"), std::string::npos);
  }
  {
    // Over-full rule caught by model validation.
    std::stringstream in("1,2.0,0.7,3\n2,1.0,0.7,3\n");
    EXPECT_FALSE(ReadTupleRelation(in, &rel, &error));
    EXPECT_NE(error.find("invalid relation"), std::string::npos);
  }
}

TEST(CsvFileTest, SaveAndLoadFiles) {
  const std::string attr_path = TempPath("urank_attr_test.csv");
  const std::string tuple_path = TempPath("urank_tuple_test.csv");
  std::string error;
  ASSERT_TRUE(SaveAttrRelation(PaperFig2(), attr_path, &error)) << error;
  ASSERT_TRUE(SaveTupleRelation(PaperFig4(), tuple_path, &error)) << error;
  AttrRelation attr;
  TupleRelation tuple;
  ASSERT_TRUE(LoadAttrRelation(attr_path, &attr, &error)) << error;
  ASSERT_TRUE(LoadTupleRelation(tuple_path, &tuple, &error)) << error;
  EXPECT_EQ(attr.size(), 3);
  EXPECT_EQ(tuple.size(), 4);
  std::remove(attr_path.c_str());
  std::remove(tuple_path.c_str());
}

TEST(CsvFileTest, MissingFileReportsError) {
  AttrRelation rel;
  std::string error;
  EXPECT_FALSE(LoadAttrRelation("/nonexistent/nope.csv", &rel, &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST(CsvTest, HandlesWindowsLineEndings) {
  std::stringstream in("1,10:0.5;20:0.5\r\n2,30:1\r\n");
  AttrRelation rel;
  std::string error;
  ASSERT_TRUE(ReadAttrRelation(in, &rel, &error)) << error;
  EXPECT_EQ(rel.size(), 2);
  EXPECT_DOUBLE_EQ(rel.tuple(1).pdf[0].value, 30.0);
}

TEST(CsvTest, HandlesWhitespacePadding) {
  std::stringstream in("  7 , 1.5 , 0.25 , -1 \n");
  TupleRelation rel;
  std::string error;
  ASSERT_TRUE(ReadTupleRelation(in, &rel, &error)) << error;
  ASSERT_EQ(rel.size(), 1);
  EXPECT_EQ(rel.tuple(0).id, 7);
  EXPECT_DOUBLE_EQ(rel.tuple(0).score, 1.5);
}

TEST(CsvTest, RejectsTrailingGarbageInNumbers) {
  std::stringstream in("1,10:0.5x;20:0.5\n");
  AttrRelation rel;
  std::string error;
  EXPECT_FALSE(ReadAttrRelation(in, &rel, &error));
}

TEST(CsvTest, EmptyInputGivesEmptyRelations) {
  std::string error;
  {
    std::stringstream in("# nothing but comments\n");
    AttrRelation rel;
    ASSERT_TRUE(ReadAttrRelation(in, &rel, &error)) << error;
    EXPECT_EQ(rel.size(), 0);
  }
  {
    std::stringstream in("");
    TupleRelation rel;
    ASSERT_TRUE(ReadTupleRelation(in, &rel, &error)) << error;
    EXPECT_EQ(rel.size(), 0);
  }
}

}  // namespace
}  // namespace urank
