#include "core/semantics/u_topk.h"

#include <algorithm>
#include <vector>

#include "gtest/gtest.h"
#include "model/possible_worlds.h"
#include "test_util.h"
#include "util/rng.h"

namespace urank {
namespace {

using testing_util::PaperFig2;
using testing_util::PaperFig4;

TEST(AttrUTopKTest, PaperFig2ContainmentCounterexample) {
  // Section 4.2: top-1 is {t1} (0.4) but top-2 is {t2, t3} (0.36) —
  // completely disjoint.
  const UTopKAnswer top1 = AttrUTopK(PaperFig2(), 1);
  EXPECT_EQ(top1.ids, (std::vector<int>{1}));
  EXPECT_NEAR(top1.probability, 0.4, 1e-12);
  const UTopKAnswer top2 = AttrUTopK(PaperFig2(), 2);
  EXPECT_EQ(top2.ids, (std::vector<int>{2, 3}));
  EXPECT_NEAR(top2.probability, 0.36, 1e-12);
}

TEST(TupleUTopKTest, PaperFig4ContainmentCounterexample) {
  // Section 4.2: top-1 is t1; top-2 is (t2,t3) or (t3,t4), both 0.3.
  const UTopKAnswer top1 = TupleUTopK(PaperFig4(), 1);
  EXPECT_EQ(top1.ids, (std::vector<int>{1}));
  EXPECT_NEAR(top1.probability, 0.4, 1e-12);
  const UTopKAnswer top2 = TupleUTopK(PaperFig4(), 2);
  EXPECT_NEAR(top2.probability, 0.3, 1e-12);
  const bool valid = top2.ids == std::vector<int>{2, 3} ||
                     top2.ids == std::vector<int>{3, 4};
  EXPECT_TRUE(valid);
}

TEST(TupleUTopKIndependentTest, CertainTuplesGiveTopScores) {
  TupleRelation rel = TupleRelation::Independent(
      {{0, 10.0, 1.0}, {1, 30.0, 1.0}, {2, 20.0, 1.0}});
  const UTopKAnswer top2 = TupleUTopKIndependent(rel, 2);
  EXPECT_EQ(top2.ids, (std::vector<int>{1, 2}));
  EXPECT_NEAR(top2.probability, 1.0, 1e-12);
}

TEST(TupleUTopKIndependentTest, SmallWorldsCanWin) {
  // One unlikely high tuple; top-1 set {} impossible (p sums), {hi} has
  // prob .1, {lo} requires hi absent: .9 * 1.0. So the answer is {lo}.
  TupleRelation rel = TupleRelation::Independent(
      {{0, 100.0, 0.1}, {1, 50.0, 1.0}});
  const UTopKAnswer top1 = TupleUTopKIndependent(rel, 1);
  EXPECT_EQ(top1.ids, (std::vector<int>{1}));
  EXPECT_NEAR(top1.probability, 0.9, 1e-12);
}

TEST(TupleUTopKIndependentTest, AnswerMayHaveFewerThanKTuples) {
  // Mostly-empty worlds: for k=2 the best "top-2 set" is the empty set
  // when both tuples are very unlikely.
  TupleRelation rel = TupleRelation::Independent(
      {{0, 10.0, 0.05}, {1, 20.0, 0.05}});
  const UTopKAnswer top2 = TupleUTopKIndependent(rel, 2);
  EXPECT_TRUE(top2.ids.empty());
  EXPECT_NEAR(top2.probability, 0.95 * 0.95, 1e-12);
}

TEST(TupleUTopKIndependentTest, MatchesEnumerationOnRandomInstances) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = static_cast<int>(rng.UniformInt(1, 10));
    std::vector<TLTuple> tuples;
    for (int i = 0; i < n; ++i) {
      tuples.push_back({i, static_cast<double>(rng.UniformInt(1, 20)),
                        rng.Uniform(0.05, 1.0)});
    }
    TupleRelation rel = TupleRelation::Independent(std::move(tuples));
    for (int k : {1, 2, 4}) {
      const UTopKAnswer dp = TupleUTopKIndependent(rel, k);
      double best = 0.0;
      for (const auto& [ids, prob] : TupleTopKSetProbabilities(rel, k)) {
        best = std::max(best, prob);
      }
      EXPECT_NEAR(dp.probability, best, 1e-9) << "n=" << n << " k=" << k;
      // The reported set must actually achieve the reported probability.
      const auto sets = TupleTopKSetProbabilities(rel, k);
      const auto it = sets.find(dp.ids);
      ASSERT_NE(it, sets.end());
      EXPECT_NEAR(it->second, dp.probability, 1e-9);
    }
  }
}

TEST(TupleUTopKTest, DispatchesToEnumerationWithRules) {
  // With rules, TupleUTopK must agree with the set-probability argmax.
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    TupleRelation rel = testing_util::RandomSmallTuple(rng, 8);
    for (int k : {1, 3}) {
      const UTopKAnswer ans = TupleUTopK(rel, k);
      double best = 0.0;
      for (const auto& [ids, prob] : TupleTopKSetProbabilities(rel, k)) {
        best = std::max(best, prob);
      }
      EXPECT_NEAR(ans.probability, best, 1e-9);
    }
  }
}

TEST(AttrUTopKTest, ProbabilityIsAchievedByReportedSet) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    AttrRelation rel = testing_util::RandomSmallAttr(rng, 5, 3);
    for (int k : {1, 2, 3}) {
      const UTopKAnswer ans = AttrUTopK(rel, k);
      const auto sets = AttrTopKSetProbabilities(rel, k);
      const auto it = sets.find(ans.ids);
      ASSERT_NE(it, sets.end());
      EXPECT_NEAR(it->second, ans.probability, 1e-9);
      for (const auto& [ids, prob] : sets) {
        EXPECT_LE(prob, ans.probability + 1e-9);
      }
    }
  }
}

TEST(TupleUTopKWithRulesTest, PaperFig4) {
  const UTopKAnswer top1 = TupleUTopKWithRules(PaperFig4(), 1);
  EXPECT_EQ(top1.ids, (std::vector<int>{1}));
  EXPECT_NEAR(top1.probability, 0.4, 1e-12);
  const UTopKAnswer top2 = TupleUTopKWithRules(PaperFig4(), 2);
  EXPECT_NEAR(top2.probability, 0.3, 1e-12);
  const bool valid = top2.ids == std::vector<int>{2, 3} ||
                     top2.ids == std::vector<int>{3, 4};
  EXPECT_TRUE(valid);
}

TEST(TupleUTopKWithRulesTest, MatchesEnumerationOnRandomInstances) {
  Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    TupleRelation rel = testing_util::RandomSmallTuple(rng, 9);
    for (int k : {1, 2, 4, 7}) {
      const UTopKAnswer sweep = TupleUTopKWithRules(rel, k);
      const auto sets = TupleTopKSetProbabilities(rel, k);
      double best = 0.0;
      for (const auto& [ids, prob] : sets) best = std::max(best, prob);
      EXPECT_NEAR(sweep.probability, best, 1e-9)
          << "trial " << trial << " k=" << k;
      // The reported answer must actually achieve its probability.
      const auto it = sets.find(sweep.ids);
      ASSERT_NE(it, sets.end()) << "trial " << trial << " k=" << k;
      EXPECT_NEAR(it->second, sweep.probability, 1e-9);
    }
  }
}

TEST(TupleUTopKWithRulesTest, SaturatedRulesAreForced) {
  // Rule {t1, t2} has total mass 1: every world contains exactly one of
  // them, so every top-2 answer includes one.
  TupleRelation rel({{1, 30.0, 0.6}, {2, 20.0, 0.4}, {3, 10.0, 0.9}},
                    {{0, 1}, {2}});
  const UTopKAnswer top2 = TupleUTopKWithRules(rel, 2);
  // Candidates: (t1,t3) = .6*.9 = .54; (t2,t3) = .4*.9 = .36;
  // (t1,t2) impossible; (t1) alone requires t3 absent: .6*.1 = .06.
  EXPECT_EQ(top2.ids, (std::vector<int>{1, 3}));
  EXPECT_NEAR(top2.probability, 0.54, 1e-12);
}

TEST(TupleUTopKWithRulesTest, ShortAnswerWinsWhenWorldsAreSmall) {
  // Both tuples unlikely and mutually exclusive: the empty answer
  // dominates for k = 2.
  TupleRelation rel({{1, 10.0, 0.05}, {2, 20.0, 0.05}}, {{0, 1}});
  const UTopKAnswer top2 = TupleUTopKWithRules(rel, 2);
  EXPECT_TRUE(top2.ids.empty());
  EXPECT_NEAR(top2.probability, 0.9, 1e-12);
}

TEST(TupleUTopKWithRulesTest, AgreesWithIndependentDP) {
  Rng rng(12);
  for (int trial = 0; trial < 15; ++trial) {
    const int n = static_cast<int>(rng.UniformInt(1, 12));
    std::vector<TLTuple> tuples;
    for (int i = 0; i < n; ++i) {
      tuples.push_back({i, static_cast<double>(rng.UniformInt(1, 20)),
                        rng.Uniform(0.05, 1.0)});
    }
    TupleRelation rel = TupleRelation::Independent(std::move(tuples));
    for (int k : {1, 3, 5}) {
      const UTopKAnswer dp = TupleUTopKIndependent(rel, k);
      const UTopKAnswer sweep = TupleUTopKWithRules(rel, k);
      EXPECT_NEAR(sweep.probability, dp.probability, 1e-9)
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(TupleUTopKWithRulesTest, CertainTuplesInRules) {
  // p = 1 tuples saturate their singleton rules immediately.
  TupleRelation rel = TupleRelation::Independent(
      {{0, 30.0, 1.0}, {1, 20.0, 1.0}, {2, 10.0, 1.0}});
  const UTopKAnswer top2 = TupleUTopKWithRules(rel, 2);
  EXPECT_EQ(top2.ids, (std::vector<int>{0, 1}));
  EXPECT_NEAR(top2.probability, 1.0, 1e-12);
}

TEST(TupleUTopKWithRulesTest, TiedScores) {
  // Equal scores resolve by index in every world; the sweep must agree
  // with enumeration.
  TupleRelation rel({{1, 5.0, 0.4}, {2, 5.0, 0.6}, {3, 5.0, 0.7}},
                    {{0, 1}, {2}});
  for (int k : {1, 2, 3}) {
    const UTopKAnswer sweep = TupleUTopKWithRules(rel, k);
    const auto sets = TupleTopKSetProbabilities(rel, k);
    double best = 0.0;
    for (const auto& [ids, prob] : sets) best = std::max(best, prob);
    EXPECT_NEAR(sweep.probability, best, 1e-9) << "k=" << k;
  }
}

TEST(TupleUTopKWithRulesTest, KLargerThanNReturnsMostLikelyWorld) {
  // With k > N every world's full content is its top-k answer, so U-Topk
  // degenerates to the most likely world: {t2,t3} or {t3,t4}, both 0.3.
  const UTopKAnswer answer = TupleUTopKWithRules(PaperFig4(), 10);
  EXPECT_NEAR(answer.probability, 0.3, 1e-12);
  const bool valid = answer.ids == std::vector<int>{2, 3} ||
                     answer.ids == std::vector<int>{3, 4};
  EXPECT_TRUE(valid);
}

TEST(TupleUTopKIndependentTest, KLargerThanN) {
  TupleRelation rel = TupleRelation::Independent(
      {{0, 20.0, 0.9}, {1, 10.0, 0.8}});
  const UTopKAnswer answer = TupleUTopKIndependent(rel, 5);
  EXPECT_EQ(answer.ids, (std::vector<int>{0, 1}));
  EXPECT_NEAR(answer.probability, 0.72, 1e-12);
}

TEST(AttrUTopKTest, KLargerThanNIsTheFullOrdering) {
  // Attribute-level worlds always contain all N tuples, so the top-k for
  // k >= N is the most likely complete ordering.
  const UTopKAnswer answer = AttrUTopK(PaperFig2(), 5);
  EXPECT_EQ(answer.ids.size(), 3u);
  // Most likely ordering: world (70,92,85) with prob .36 -> (t2,t3,t1).
  EXPECT_EQ(answer.ids, (std::vector<int>{2, 3, 1}));
  EXPECT_NEAR(answer.probability, 0.36, 1e-12);
}

TEST(TupleUTopKWithRulesTest, EmptyRelation) {
  const UTopKAnswer answer =
      TupleUTopKWithRules(TupleRelation::Independent({}), 3);
  EXPECT_TRUE(answer.ids.empty());
  EXPECT_NEAR(answer.probability, 1.0, 1e-12);
}

TEST(UTopKDeathTest, RejectsBadArguments) {
  EXPECT_DEATH(AttrUTopK(PaperFig2(), 0), "k must be >= 1");
  EXPECT_DEATH(TupleUTopK(PaperFig4(), 0), "k must be >= 1");
  EXPECT_DEATH(TupleUTopKIndependent(PaperFig4(), 1), "singleton rules");
  EXPECT_DEATH(TupleUTopKWithRules(PaperFig4(), 0), "k must be >= 1");
}

}  // namespace
}  // namespace urank
