// Epoch identity: every epoch a mutable store publishes must be
// bit-identical — EXPECT_EQ on every id and every double of every
// semantics' answer — to a from-scratch prepare of the same logical
// contents (live entries in arrival order, rules grouped by key and
// numbered by first live appearance). The suite drives randomized
// mutation traces (inserts, deletes, updates, cross-x-relation rule
// moves, all-or-nothing batches) over the scenario_gen families, swept
// across delta-merge thresholds (1 = consolidate every publish, through
// never-consolidate), thread counts, synthetic topologies and placement
// policies — none of which may leak into answers.

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "gtest/gtest.h"
#include "common/scenario_gen.h"
#include "core/engine/mutable_relation.h"
#include "core/engine/query_engine.h"
#include "model/attr_model.h"
#include "model/tuple_model.h"
#include "util/rng.h"
#include "util/topology.h"

namespace urank {
namespace {

constexpr RankingSemantics kAllSemantics[] = {
    RankingSemantics::kExpectedRank, RankingSemantics::kMedianRank,
    RankingSemantics::kQuantileRank, RankingSemantics::kUTopk,
    RankingSemantics::kUKRanks,      RankingSemantics::kPTk,
    RankingSemantics::kGlobalTopk,   RankingSemantics::kExpectedScore,
};

constexpr const char* kSyntheticTopologies[] = {"0-3;4-7",
                                                "0-1;2-3;4-5;6-11"};

constexpr PlacementPolicy kAllPlacements[] = {PlacementPolicy::kFlat,
                                              PlacementPolicy::kNodeLocal,
                                              PlacementPolicy::kSpread};

class ScopedPlanningTopology {
 public:
  explicit ScopedPlanningTopology(const char* spec) {
    Topology topo = Topology::SingleNode(1);
    std::string error;
    EXPECT_TRUE(Topology::Parse(spec, &topo, &error)) << error;
    SetGlobalTopologyForTest(topo);
  }
  ~ScopedPlanningTopology() { SetGlobalTopologyForTest(Topology::Detect()); }
};

// Shadow of a tuple store's logical contents, maintained by the exact
// rules the header documents: arrival order, tombstone + tail re-insert
// for updates, rules grouped by key and numbered by first live
// appearance. EagerRelation() is the from-scratch prepare's input.
class TupleShadow {
 public:
  void Seed(const TupleRelation& rel) {
    for (int i = 0; i < rel.size(); ++i) {
      entries_.push_back({rel.tuple(i), rel.rule_of(i) >= 0
                                            ? static_cast<long long>(
                                                  rel.rule_of(i))
                                            : -1});
    }
  }

  void Insert(const TLTuple& tuple, long long rule_key) {
    entries_.push_back({tuple, rule_key});
  }

  void Delete(int id) {
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->tuple.id == id) {
        entries_.erase(it);
        return;
      }
    }
    FAIL() << "shadow delete of unknown id " << id;
  }

  void Update(const TLTuple& tuple, long long rule_key) {
    Delete(tuple.id);
    Insert(tuple, rule_key);
  }

  // A uniformly random live id, or -1 when empty.
  int RandomId(Rng& rng) const {
    if (entries_.empty()) return -1;
    return entries_[static_cast<size_t>(rng.UniformInt(
                        0, static_cast<int64_t>(entries_.size()) - 1))]
        .tuple.id;
  }

  bool Contains(int id) const {
    for (const auto& e : entries_) {
      if (e.tuple.id == id) return true;
    }
    return false;
  }

  double LiveRuleMass(long long key) const {
    double mass = 0.0;
    for (const auto& e : entries_) {
      if (e.rule_key == key) mass += e.tuple.prob;
    }
    return mass;
  }

  size_t size() const { return entries_.size(); }

  TupleRelation EagerRelation() const {
    std::vector<TLTuple> tuples;
    tuples.reserve(entries_.size());
    std::vector<std::vector<int>> rules;
    std::unordered_map<long long, size_t> rule_of_key;
    for (size_t i = 0; i < entries_.size(); ++i) {
      tuples.push_back(entries_[i].tuple);
      const long long key = entries_[i].rule_key;
      if (key < 0) continue;
      const auto [it, inserted] = rule_of_key.try_emplace(key, rules.size());
      if (inserted) rules.emplace_back();
      rules[it->second].push_back(static_cast<int>(i));
    }
    return TupleRelation(std::move(tuples), std::move(rules));
  }

 private:
  struct Entry {
    TLTuple tuple;
    long long rule_key;
  };
  std::vector<Entry> entries_;
};

QueryRequest Req(RankingSemantics semantics, int k, int threads,
                 PlacementPolicy placement = PlacementPolicy::kFlat) {
  QueryRequest request;
  request.options.semantics = semantics;
  request.options.k = k;
  request.options.phi = 0.25;
  request.options.threshold = 0.3;
  request.parallelism.threads = threads;
  request.parallelism.min_parallel_items = 1;
  request.parallelism.placement = placement;
  return request;
}

// The identity check: one published epoch vs the eager prepare of the
// shadow contents, all eight semantics, exact equality on every byte of
// the answer.
template <typename Store, typename Relation>
void ExpectEpochIdentity(const Store& store, Relation eager_rel, int k,
                         int threads,
                         PlacementPolicy placement = PlacementPolicy::kFlat) {
  const auto snap = store.Snapshot();
  QueryEngine incremental(snap.prepared);
  QueryEngine eager{std::move(eager_rel)};
  for (RankingSemantics semantics : kAllSemantics) {
    const QueryRequest request = Req(semantics, k, threads, placement);
    const QueryResult got = incremental.Run(request);
    const QueryResult want = eager.Run(request);
    ASSERT_EQ(got.status.code, want.status.code)
        << ToString(semantics) << " at epoch " << snap.epoch << ": "
        << got.status.message << " vs " << want.status.message;
    if (!want.status.ok()) continue;
    EXPECT_EQ(got.answer.ids, want.answer.ids)
        << ToString(semantics) << " at epoch " << snap.epoch;
    ASSERT_EQ(got.answer.statistics.size(), want.answer.statistics.size())
        << ToString(semantics) << " at epoch " << snap.epoch;
    for (size_t i = 0; i < want.answer.statistics.size(); ++i) {
      EXPECT_EQ(got.answer.statistics[i], want.answer.statistics[i])
          << ToString(semantics) << " slot " << i << " at epoch "
          << snap.epoch;
    }
  }
}

// Applies one random mutation to store + shadow. Returns false when the
// draw was a no-op (e.g. delete on an empty relation).
bool RandomTupleMutation(Rng& rng, int* next_id, MutableTupleRelation* store,
                         TupleShadow* shadow) {
  const int roll = static_cast<int>(rng.UniformInt(0, 9));
  std::string error;
  if (roll < 5) {  // insert, sometimes into a rule
    TLTuple t;
    t.id = (*next_id)++;
    t.score = rng.Uniform(0.0, 1000.0);
    t.prob = rng.Uniform(0.05, 1.0);
    const long long rule_key =
        roll < 2 ? rng.UniformInt(0, 7) : -1;
    if (rule_key >= 0 &&
        shadow->LiveRuleMass(rule_key) + t.prob > 1.0) {
      return false;  // would trip the mass gate; skip rather than assert
    }
    EXPECT_TRUE(store->Insert(t, rule_key, &error)) << error;
    shadow->Insert(t, rule_key);
    return true;
  }
  if (roll < 7) {  // delete a random live tuple
    const int id = shadow->RandomId(rng);
    if (id < 0) return false;
    EXPECT_TRUE(store->Delete(id, &error)) << error;
    shadow->Delete(id);
    return true;
  }
  // Update: new score/prob, and sometimes a cross-x-relation rule move.
  const int id = shadow->RandomId(rng);
  if (id < 0) return false;
  TLTuple t;
  t.id = id;
  t.score = rng.Uniform(0.0, 1000.0);
  t.prob = rng.Uniform(0.05, 0.4);
  const long long rule_key = roll == 7 ? rng.UniformInt(0, 7) : -1;
  if (rule_key >= 0 && shadow->LiveRuleMass(rule_key) + t.prob > 1.0) {
    return false;
  }
  EXPECT_TRUE(store->Update(t, rule_key, &error)) << error;
  shadow->Update(t, rule_key);
  return true;
}

class TupleEpochIdentityTest
    : public ::testing::TestWithParam<std::size_t> {};

// Randomized trace over every scenario family, checking identity after
// every publish. The delta-merge threshold parameter covers every merge
// schedule: 1 consolidates on each publish, 8 mixes consolidated and
// on-the-fly publishes, 1 << 20 never consolidates (pure base + delta).
TEST_P(TupleEpochIdentityTest, RandomizedTracesMatchFromScratchPrepare) {
  MutableRelationOptions options;
  options.delta_merge_threshold = GetParam();
  options.compact_min_dead = 8;

  const TupleRelation seeds[] = {
      testgen::CorrelatedTupleRelation(48, Correlation::kNegative, 11),
      testgen::ClusteredScoreTupleRelation(64, 5, 12),
      testgen::AdversarialRuleTupleRelation(40, 4, 13),
  };
  uint64_t seed = 101;
  for (const TupleRelation& rel : seeds) {
    MutableTupleRelation store(rel, options);
    TupleShadow shadow;
    shadow.Seed(rel);
    Rng rng(seed++);
    int next_id = 100000;
    ExpectEpochIdentity(store, shadow.EagerRelation(), 10, 1);
    for (int round = 0; round < 6; ++round) {
      const int ops = static_cast<int>(rng.UniformInt(1, 12));
      for (int i = 0; i < ops; ++i) {
        RandomTupleMutation(rng, &next_id, &store, &shadow);
      }
      store.Publish();
      ASSERT_EQ(store.live_size(), static_cast<long long>(shadow.size()));
      for (int threads : {1, 2, 8}) {
        ExpectEpochIdentity(store, shadow.EagerRelation(), 10, threads);
      }
    }
  }
}

TEST_P(TupleEpochIdentityTest, BatchApplyMatchesFromScratchPrepare) {
  MutableRelationOptions options;
  options.delta_merge_threshold = GetParam();
  MutableTupleRelation store(options);
  TupleShadow shadow;

  std::vector<TupleMutation> batch;
  for (int i = 0; i < 24; ++i) {
    TupleMutation op;
    op.op = TupleMutation::Op::kInsert;
    op.tuple.id = i;
    op.tuple.score = static_cast<double>((i * 37) % 50);  // tied scores
    op.tuple.prob = 0.10 + 0.03 * static_cast<double>(i % 8);
    op.rule_key = i % 3 == 0 ? i % 5 : -1;
    batch.push_back(op);
  }
  std::string error;
  ASSERT_TRUE(store.Apply(batch, &error)) << error;
  for (const TupleMutation& op : batch) {
    shadow.Insert(op.tuple, op.rule_key);
  }
  store.Publish();
  ExpectEpochIdentity(store, shadow.EagerRelation(), 8, 2);

  // A second batch mixing all three ops, including rule moves.
  batch.clear();
  TupleMutation op;
  op.op = TupleMutation::Op::kDelete;
  op.id = 3;
  batch.push_back(op);
  op.op = TupleMutation::Op::kUpdate;
  op.tuple.id = 6;
  op.tuple.score = 999.0;
  op.tuple.prob = 0.2;
  op.rule_key = 4;
  batch.push_back(op);
  op.op = TupleMutation::Op::kInsert;
  op.tuple.id = 100;
  op.tuple.score = 25.0;  // collides with existing scores
  op.tuple.prob = 0.5;
  op.rule_key = -1;
  batch.push_back(op);
  ASSERT_TRUE(store.Apply(batch, &error)) << error;
  shadow.Delete(3);
  shadow.Update(batch[1].tuple, batch[1].rule_key);
  shadow.Insert(batch[2].tuple, -1);
  store.Publish();
  for (int threads : {1, 2, 8}) {
    ExpectEpochIdentity(store, shadow.EagerRelation(), 8, threads);
  }
}

INSTANTIATE_TEST_SUITE_P(DeltaMergeThresholds, TupleEpochIdentityTest,
                         ::testing::Values(std::size_t{1}, std::size_t{8},
                                           std::size_t{1} << 20));

// The planning sweep: same trace, checked under every synthetic topology
// and placement policy at 8 threads. Planning must never leak into a
// published epoch's answers.
TEST(TupleEpochIdentityTopologyTest, IdentityHoldsAcrossTopologies) {
  MutableRelationOptions options;
  options.delta_merge_threshold = 4;
  const TupleRelation rel =
      testgen::ClusteredScoreTupleRelation(96, 7, 21);
  MutableTupleRelation store(rel, options);
  TupleShadow shadow;
  shadow.Seed(rel);
  Rng rng(77);
  int next_id = 100000;
  for (int i = 0; i < 20; ++i) {
    RandomTupleMutation(rng, &next_id, &store, &shadow);
  }
  store.Publish();
  for (const char* spec : kSyntheticTopologies) {
    ScopedPlanningTopology scoped(spec);
    for (PlacementPolicy placement : kAllPlacements) {
      ExpectEpochIdentity(store, shadow.EagerRelation(), 10, 8, placement);
    }
  }
}

// Attribute-level identity: shadow is a plain arrival-order tuple list
// (updates move to the tail). Uses a small clustered relation so U-Topk's
// possible-worlds enumeration stays cheap while exercising colliding
// support values in the q(v) universe.
TEST(AttrEpochIdentityTest, RandomizedTracesMatchFromScratchPrepare) {
  for (std::size_t threshold : {std::size_t{1}, std::size_t{6}}) {
    MutableRelationOptions options;
    options.delta_merge_threshold = threshold;
    options.compact_min_dead = 4;
    const AttrRelation rel =
        testgen::ClusteredScoreAttrRelation(10, 3, 2, 31);
    MutableAttrRelation store(rel, options);
    std::vector<AttrTuple> shadow;
    for (int i = 0; i < rel.size(); ++i) shadow.push_back(rel.tuple(i));

    Rng rng(41);
    int next_id = 100000;
    for (int round = 0; round < 6; ++round) {
      const int ops = static_cast<int>(rng.UniformInt(1, 4));
      for (int i = 0; i < ops; ++i) {
        const int roll = static_cast<int>(rng.UniformInt(0, 5));
        std::string error;
        if (roll < 3 || shadow.empty()) {
          AttrTuple t;
          t.id = next_id++;
          const double v = rng.Uniform(0.0, 50.0);
          const double p = rng.Uniform(0.1, 0.9);
          // Two-point pdf with an occasional value shared across tuples
          // (integer grid) to exercise universe mass accumulation.
          t.pdf = {{static_cast<double>(static_cast<int>(v)), p},
                   {v + 100.0, 1.0 - p}};
          ASSERT_TRUE(store.Insert(t, &error)) << error;
          shadow.push_back(t);
        } else if (roll < 5) {
          const size_t pick = static_cast<size_t>(
              rng.UniformInt(0, static_cast<int64_t>(shadow.size()) - 1));
          ASSERT_TRUE(store.Delete(shadow[pick].id, &error)) << error;
          shadow.erase(shadow.begin() + static_cast<long>(pick));
        } else {
          const size_t pick = static_cast<size_t>(
              rng.UniformInt(0, static_cast<int64_t>(shadow.size()) - 1));
          AttrTuple t = shadow[pick];
          t.pdf = {{rng.Uniform(0.0, 50.0), 1.0}};
          ASSERT_TRUE(store.Update(t, &error)) << error;
          shadow.erase(shadow.begin() + static_cast<long>(pick));
          shadow.push_back(t);
        }
      }
      store.Publish();
      ASSERT_EQ(store.live_size(), static_cast<long long>(shadow.size()));
      for (int threads : {1, 2, 8}) {
        ExpectEpochIdentity(store, AttrRelation(shadow), 5, threads);
      }
    }
  }
}

TEST(AttrEpochIdentityTopologyTest, IdentityHoldsAcrossTopologies) {
  MutableRelationOptions options;
  options.delta_merge_threshold = 3;
  const AttrRelation rel =
      testgen::ClusteredScoreAttrRelation(60, 5, 3, 51);
  MutableAttrRelation store(rel, options);
  std::vector<AttrTuple> shadow;
  for (int i = 0; i < rel.size(); ++i) shadow.push_back(rel.tuple(i));
  std::string error;
  // A deterministic handful of mutations: delete a spread of ids, update
  // one pdf, insert two fresh tuples.
  for (int id : {3, 17, 29, 41}) {
    ASSERT_TRUE(store.Delete(id, &error)) << error;
    for (auto it = shadow.begin(); it != shadow.end(); ++it) {
      if (it->id == id) {
        shadow.erase(it);
        break;
      }
    }
  }
  AttrTuple updated = shadow.front();
  updated.pdf = {{12.5, 0.5}, {80.0, 0.5}};
  ASSERT_TRUE(store.Update(updated, &error)) << error;
  shadow.erase(shadow.begin());
  shadow.push_back(updated);
  for (int id : {9001, 9002}) {
    AttrTuple t;
    t.id = id;
    t.pdf = {{static_cast<double>(id % 97), 0.25}, {200.0 + id, 0.75}};
    ASSERT_TRUE(store.Insert(t, &error)) << error;
    shadow.push_back(t);
  }
  store.Publish();
  for (const char* spec : kSyntheticTopologies) {
    ScopedPlanningTopology scoped(spec);
    for (PlacementPolicy placement : kAllPlacements) {
      ExpectEpochIdentity(store, AttrRelation(shadow), 10, 8, placement);
    }
  }
}

}  // namespace
}  // namespace urank
