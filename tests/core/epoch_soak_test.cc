// Mutation soak: concurrent writers hammering a mutable store while
// reader threads continuously resolve snapshots and run queries. Run
// under TSan in CI (the epoch-soak job) to certify the copy-on-write
// snapshot protocol data-race-free; the assertions here are the
// single-epoch consistency invariants every reader must observe no
// matter how the writer interleaves:
//
//   * a resolved snapshot never changes underneath the reader — size,
//     ids and every answer stay self-consistent for as long as the
//     shared_ptr is held;
//   * epochs observed by a reader are non-decreasing;
//   * a query batch resolves one epoch for the whole batch.
//
// URANK_SOAK_ITERS scales the writer mutation budget: the PR-gate job
// keeps it small, the nightly job runs 10x under a multi-node synthetic
// topology (see .github/workflows/ci.yml).

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "core/engine/mutable_relation.h"
#include "core/engine/query_engine.h"
#include "model/attr_model.h"
#include "model/tuple_model.h"
#include "util/rng.h"

namespace urank {
namespace {

int SoakIters() {
  int iters = 300;
  if (const char* env = std::getenv("URANK_SOAK_ITERS")) {
    const int parsed = std::atoi(env);
    if (parsed >= 1) iters = parsed;
  }
  return iters;
}

TEST(EpochSoakTest, TupleWritersVersusReaders) {
  MutableRelationOptions options;
  options.delta_merge_threshold = 16;  // exercise consolidation in-flight
  options.compact_min_dead = 16;
  auto store = std::make_shared<MutableTupleRelation>(options);
  auto engine = std::make_shared<QueryEngine>(store);

  const int iters = SoakIters();
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};

  auto reader = [&](uint64_t seed) {
    Rng rng(seed);
    std::uint64_t last_epoch = 0;
    while (!done.load(std::memory_order_acquire)) {
      const TupleEpochSnapshot snap = store->Snapshot();
      if (snap.epoch < last_epoch) {
        ++failures;
        return;
      }
      last_epoch = snap.epoch;
      // The snapshot is immutable: reading it twice must agree even while
      // the writer publishes new epochs.
      const int size_a = snap.prepared->size();
      QueryRequest request;
      request.options.semantics = rng.UniformInt(0, 1) == 0
                                      ? RankingSemantics::kExpectedRank
                                      : RankingSemantics::kGlobalTopk;
      request.options.k = 5;
      QueryEngine pinned(snap.prepared);
      const QueryResult result = pinned.Run(request);
      if (!result.status.ok() ||
          result.answer.ids.size() >
              static_cast<size_t>(snap.prepared->size()) ||
          snap.prepared->size() != size_a) {
        ++failures;
        return;
      }
      // The shared engine resolves its own (possibly newer) snapshot;
      // it must never fail or observe an epoch below the one we hold.
      const QueryResult live = engine->Run(request);
      if (!live.status.ok() || live.stats.epoch < snap.epoch) {
        ++failures;
        return;
      }
    }
  };

  auto writer = [&](uint64_t seed, int id_base) {
    Rng rng(seed);
    std::vector<int> live;
    for (int i = 0; i < iters; ++i) {
      const int roll = static_cast<int>(rng.UniformInt(0, 9));
      std::string error;
      if (roll < 6 || live.empty()) {
        TLTuple t;
        t.id = id_base + i;
        t.score = rng.Uniform(0.0, 1000.0);
        t.prob = rng.Uniform(0.05, 1.0);
        // Each writer owns a disjoint rule-key range, so the mass gate
        // never races another writer's additions into a shared rule.
        const long long rule_key =
            roll < 2 ? id_base + static_cast<long long>(rng.UniformInt(0, 3))
                     : -1;
        if (store->Insert(t, rule_key, &error)) live.push_back(t.id);
      } else {
        const size_t pick = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
        if (!store->Delete(live[pick], &error)) {
          ++failures;
          return;
        }
        live.erase(live.begin() + static_cast<long>(pick));
      }
      if (i % 7 == 0) store->Publish();
    }
    store->Publish();
  };

  std::vector<std::thread> threads;
  threads.emplace_back(writer, 1u, 1000000);
  threads.emplace_back(writer, 2u, 2000000);
  threads.emplace_back(reader, 11u);
  threads.emplace_back(reader, 12u);
  threads.emplace_back(reader, 13u);
  for (size_t i = 0; i < 2; ++i) threads[i].join();
  done.store(true, std::memory_order_release);
  for (size_t i = 2; i < threads.size(); ++i) threads[i].join();
  EXPECT_EQ(failures.load(), 0);

  // Final state must still publish a clean epoch and answer queries.
  const TupleEpochSnapshot final_snap = store->Publish();
  EXPECT_EQ(final_snap.prepared->size(), store->live_size());
}

TEST(EpochSoakTest, BatchResolvesOneEpochUnderConcurrentPublishes) {
  auto store = std::make_shared<MutableTupleRelation>();
  auto engine = std::make_shared<QueryEngine>(store);
  std::string error;
  for (int i = 0; i < 32; ++i) {
    TLTuple t;
    t.id = i;
    t.score = static_cast<double>(i);
    t.prob = 0.5;
    ASSERT_TRUE(store->Insert(t, -1, &error)) << error;
  }
  store->Publish();

  std::atomic<bool> done{false};
  std::thread writer([&] {
    Rng rng(5);
    int next_id = 1000;
    while (!done.load(std::memory_order_acquire)) {
      TLTuple t;
      t.id = next_id++;
      t.score = rng.Uniform(0.0, 100.0);
      t.prob = 0.5;
      store->Insert(t, -1, nullptr);
      store->Publish();
    }
  });

  const int iters = std::min(SoakIters(), 100);
  for (int i = 0; i < iters; ++i) {
    std::vector<QueryRequest> requests(4);
    for (auto& r : requests) r.options.k = 3;
    const std::vector<QueryResult> results = engine->RunBatch(requests);
    ASSERT_EQ(results.size(), requests.size());
    for (const QueryResult& result : results) {
      ASSERT_TRUE(result.status.ok()) << result.status.message;
      // One resolve per batch: every item reports the same epoch.
      EXPECT_EQ(result.stats.epoch, results[0].stats.epoch);
    }
  }
  done.store(true, std::memory_order_release);
  writer.join();
}

TEST(EpochSoakTest, AttrWritersVersusReaders) {
  auto store = std::make_shared<MutableAttrRelation>();
  auto engine = std::make_shared<QueryEngine>(store);
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};

  std::thread writer([&] {
    Rng rng(9);
    std::vector<int> live;
    const int iters = SoakIters();
    for (int i = 0; i < iters; ++i) {
      std::string error;
      if (rng.UniformInt(0, 2) != 0 || live.empty()) {
        AttrTuple t;
        t.id = i;
        const double v = rng.Uniform(0.0, 100.0);
        const double p = rng.Uniform(0.2, 0.8);
        t.pdf = {{v, p}, {v + 200.0, 1.0 - p}};
        if (store->Insert(t, &error)) live.push_back(t.id);
      } else {
        const size_t pick = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
        if (!store->Delete(live[pick], &error)) {
          ++failures;
          break;
        }
        live.erase(live.begin() + static_cast<long>(pick));
      }
      if (i % 5 == 0) store->Publish();
    }
    store->Publish();
  });

  std::thread reader([&] {
    std::uint64_t last_epoch = 0;
    while (!done.load(std::memory_order_acquire)) {
      QueryRequest request;
      request.options.semantics = RankingSemantics::kExpectedRank;
      request.options.k = 4;
      const QueryResult result = engine->Run(request);
      if (!result.status.ok() || result.stats.epoch < last_epoch) {
        ++failures;
        return;
      }
      last_epoch = result.stats.epoch;
    }
  });

  writer.join();
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace urank
