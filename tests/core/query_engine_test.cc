// QueryEngine tests: engine-vs-facade equivalence for every semantics on
// both uncertainty models, the recoverable validation taxonomy, RunBatch
// determinism across thread counts, and cache-reuse statistics.

#include "core/engine/query_engine.h"

#include <cstdint>
#include <numeric>
#include <vector>

// The equivalence tests deliberately diff engine answers against the
// deprecated RunRankingQuery facade.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

#include "core/query.h"
#include "gen/attr_gen.h"
#include "gen/tuple_gen.h"
#include "gtest/gtest.h"
#include "model/possible_worlds.h"

namespace urank {
namespace {

// Same generator settings as consistency_fuzz_test.cc: overlapping values
// and multi-tuple rules stress every DP path.
AttrRelation MakeAttr(int n, uint64_t seed) {
  AttrGenConfig config;
  config.num_tuples = n;
  config.pdf_size = 4;
  config.value_spread = 100.0;
  config.seed = seed;
  return GenerateAttrRelation(config);
}

TupleRelation MakeTuple(int n, uint64_t seed) {
  TupleGenConfig config;
  config.num_tuples = n;
  config.multi_rule_fraction = 0.5;
  config.max_rule_size = 4;
  config.prob_lo = 0.05;
  config.seed = seed;
  return GenerateTupleRelation(config);
}

// One query per semantics; k/phi/threshold chosen to produce non-trivial
// answers on relations of a few dozen tuples.
std::vector<RankingQuery> AllSemanticsQueries(TiePolicy ties) {
  std::vector<RankingQuery> queries;
  for (RankingSemantics semantics :
       {RankingSemantics::kExpectedRank, RankingSemantics::kMedianRank,
        RankingSemantics::kQuantileRank, RankingSemantics::kUTopk,
        RankingSemantics::kUKRanks, RankingSemantics::kPTk,
        RankingSemantics::kGlobalTopk, RankingSemantics::kExpectedScore}) {
    RankingQuery q;
    q.semantics = semantics;
    q.k = 5;
    q.phi = 0.3;
    q.threshold = 0.1;
    q.ties = ties;
    queries.push_back(q);
  }
  return queries;
}

void ExpectSameAnswer(const RankingAnswer& got, const RankingAnswer& want,
                      const char* label) {
  ASSERT_EQ(got.ids, want.ids) << label;
  ASSERT_EQ(got.statistics.size(), want.statistics.size()) << label;
  for (size_t i = 0; i < want.statistics.size(); ++i) {
    // The prepared paths run the same arithmetic in the same order as the
    // one-shot entry points, so equality is exact, not approximate.
    EXPECT_EQ(got.statistics[i], want.statistics[i])
        << label << " statistic " << i;
  }
}

class QueryEngineEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QueryEngineEquivalence, AttrMatchesFacadeForEverySemantics) {
  // Eight tuples with pdf size four: 4^8 = 65536 worlds, small enough for
  // the U-Topk enumeration to be part of the sweep.
  const AttrRelation rel = MakeAttr(8, GetParam());
  const QueryEngine engine(rel);
  for (TiePolicy ties :
       {TiePolicy::kBreakByIndex, TiePolicy::kStrictGreater}) {
    for (const RankingQuery& q : AllSemanticsQueries(ties)) {
      const QueryResult result = engine.Run(q);
      ASSERT_TRUE(result.status.ok()) << ToString(q.semantics);
      ExpectSameAnswer(result.answer, RunRankingQuery(rel, q),
                       ToString(q.semantics));
    }
  }
}

TEST_P(QueryEngineEquivalence, TupleMatchesFacadeForEverySemantics) {
  const TupleRelation rel = MakeTuple(60, GetParam());
  const QueryEngine engine(rel);
  for (TiePolicy ties :
       {TiePolicy::kBreakByIndex, TiePolicy::kStrictGreater}) {
    for (const RankingQuery& q : AllSemanticsQueries(ties)) {
      const QueryResult result = engine.Run(q);
      ASSERT_TRUE(result.status.ok()) << ToString(q.semantics);
      ExpectSameAnswer(result.answer, RunRankingQuery(rel, q),
                       ToString(q.semantics));
    }
  }
}

TEST_P(QueryEngineEquivalence, RunBatchIsDeterministicAcrossThreadCounts) {
  const TupleRelation rel = MakeTuple(120, GetParam());
  const QueryEngine engine(rel);
  // Two tie policies' worth of queries, twice over: repeated queries make
  // the memoized statistics contended across workers.
  std::vector<RankingQuery> batch = AllSemanticsQueries(TiePolicy::kBreakByIndex);
  const auto more = AllSemanticsQueries(TiePolicy::kStrictGreater);
  batch.insert(batch.end(), more.begin(), more.end());
  batch.insert(batch.end(), batch.begin(), batch.end());

  std::vector<QueryResult> baseline;
  baseline.reserve(batch.size());
  for (const RankingQuery& q : batch) baseline.push_back(engine.Run(q));

  for (int threads : {1, 2, 5, 8}) {
    const std::vector<QueryResult> results = engine.RunBatch(batch, threads);
    ASSERT_EQ(results.size(), batch.size()) << "threads=" << threads;
    for (size_t i = 0; i < batch.size(); ++i) {
      EXPECT_TRUE(results[i].status.ok());
      ExpectSameAnswer(results[i].answer, baseline[i].answer,
                       ToString(batch[i].semantics));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryEngineEquivalence,
                         ::testing::Values(uint64_t{101}, uint64_t{202},
                                           uint64_t{303}));

TEST(QueryEngineValidation, RejectsBadParametersRecoverably) {
  const QueryEngine engine(MakeTuple(20, 7));

  RankingQuery q;
  q.semantics = RankingSemantics::kExpectedRank;
  q.k = 0;
  QueryResult result = engine.Run(q);
  EXPECT_EQ(result.status.code, QueryStatusCode::kInvalidK);
  EXPECT_NE(result.status.message.find("k must be >= 1"), std::string::npos);
  EXPECT_TRUE(result.answer.ids.empty());

  q = {};
  q.semantics = RankingSemantics::kQuantileRank;
  q.phi = 1.5;
  result = engine.Run(q);
  EXPECT_EQ(result.status.code, QueryStatusCode::kInvalidPhi);
  EXPECT_NE(result.status.message.find("phi"), std::string::npos);

  // phi is only a quantile parameter: out-of-range values are ignored
  // elsewhere.
  q.semantics = RankingSemantics::kExpectedRank;
  EXPECT_TRUE(engine.Run(q).status.ok());

  q = {};
  q.semantics = RankingSemantics::kPTk;
  q.threshold = 0.0;
  result = engine.Run(q);
  EXPECT_EQ(result.status.code, QueryStatusCode::kInvalidThreshold);
  EXPECT_NE(result.status.message.find("threshold"), std::string::npos);

  q = {};
  EXPECT_EQ(engine.Validate(q).code, QueryStatusCode::kOk);
  EXPECT_TRUE(engine.Validate(q).message.empty());
}

TEST(QueryEngineValidation, RejectsNonEnumerableUTopkWorldCount) {
  // 4^40 worlds saturates NumWorlds far past the enumeration limit.
  const AttrRelation rel = MakeAttr(40, 11);
  ASSERT_GT(rel.NumWorlds(), kMaxEnumerableWorlds);
  const QueryEngine engine(rel);

  RankingQuery q;
  q.semantics = RankingSemantics::kUTopk;
  q.k = 3;
  const QueryResult result = engine.Run(q);
  EXPECT_EQ(result.status.code, QueryStatusCode::kWorldCountNotEnumerable);
  EXPECT_FALSE(result.status.ok());

  // Every other semantics still runs on the same engine.
  q.semantics = RankingSemantics::kExpectedRank;
  EXPECT_TRUE(engine.Run(q).status.ok());
}

TEST(QueryEngineStats, ReportsCacheReuseOnRepeatedStatistics) {
  const QueryEngine engine(MakeTuple(50, 13));

  RankingQuery q;
  q.semantics = RankingSemantics::kExpectedRank;
  q.k = 5;
  const QueryResult cold = engine.Run(q);
  EXPECT_FALSE(cold.stats.reused_cache);
  EXPECT_GT(cold.stats.dp_cells, 0);
  EXPECT_EQ(cold.stats.tuples_pruned, 0);

  // A different k ranks by the same memoized expected-rank vector.
  q.k = 20;
  const QueryResult warm = engine.Run(q);
  EXPECT_TRUE(warm.stats.reused_cache);
  EXPECT_EQ(warm.stats.dp_cells, 0);
  EXPECT_EQ(warm.stats.tuples_pruned, 50);

  // The median is the phi = 0.5 quantile: the two semantics share a cache
  // entry.
  q = {};
  q.semantics = RankingSemantics::kMedianRank;
  EXPECT_FALSE(engine.Run(q).stats.reused_cache);
  q.semantics = RankingSemantics::kQuantileRank;
  q.phi = 0.5;
  EXPECT_TRUE(engine.Run(q).stats.reused_cache);
  q.phi = 0.25;
  EXPECT_FALSE(engine.Run(q).stats.reused_cache);
}

TEST(QueryEngineStats, TinyRelationReportsOneThreadEvenWhenParallelismAsked) {
  // min_parallel_items suppresses the pool for tiny inputs, and
  // threads_used reports threads that actually participated — not the
  // requested ParallelismOptions — so a tiny N must report exactly 1.
  QueryEngine engine(MakeTuple(40, 23));
  ParallelismOptions par;
  par.threads = 8;
  engine.set_parallelism(par);

  RankingQuery q;
  q.semantics = RankingSemantics::kQuantileRank;
  q.k = 5;
  q.phi = 0.5;
  const QueryResult cold = engine.Run(q);
  ASSERT_TRUE(cold.status.ok());
  EXPECT_FALSE(cold.stats.reused_cache);
  EXPECT_EQ(cold.stats.threads_used, 1);
}

TEST(QueryEngineStats, BatchComputesContendedStatisticExactlyOnce) {
  const auto prepared = QueryEngine::Prepare(MakeTuple(80, 17));
  const QueryEngine engine(prepared);

  RankingQuery q;
  q.semantics = RankingSemantics::kExpectedRank;
  q.k = 10;
  const std::vector<RankingQuery> batch(8, q);
  const std::vector<QueryResult> results = engine.RunBatch(batch, 8);
  ASSERT_EQ(results.size(), batch.size());
  for (const QueryResult& r : results) EXPECT_TRUE(r.status.ok());
  // Single-flight memoization: eight concurrent queries over one shared
  // statistic trigger exactly one computation.
  EXPECT_EQ(prepared->cache_misses(), 1);
  EXPECT_EQ(prepared->cache_hits(), 7);
}

TEST(QueryEngineSparseIds, HugeTupleIdsUseNoPositionalArray) {
  // Regression: the facade used to build a position array indexed by the
  // maximum id, so a single id near 10^9 allocated gigabytes. The id index
  // is now a hash map on both models.
  const TupleRelation rel({{1000000000, 30.0, 0.6},
                           {3, 20.0, 0.5},
                           {7, 10.0, 0.4}},
                          {{0}, {1}, {2}});
  const QueryEngine engine(rel);
  EXPECT_EQ(engine.tuple()->PositionOfId(1000000000), 0);
  EXPECT_EQ(engine.tuple()->PositionOfId(3), 1);
  EXPECT_EQ(engine.tuple()->PositionOfId(42), -1);

  RankingQuery q;
  q.semantics = RankingSemantics::kGlobalTopk;
  q.k = 2;
  const QueryResult result = engine.Run(q);
  ASSERT_TRUE(result.status.ok());
  ASSERT_EQ(result.answer.ids.size(), 2u);
  ASSERT_EQ(result.answer.statistics.size(), 2u);
  for (double p : result.answer.statistics) EXPECT_GT(p, 0.0);

  // The facade shim inherits the fix.
  const RankingAnswer facade = RunRankingQuery(rel, q);
  EXPECT_EQ(facade.ids, result.answer.ids);
}

TEST(QueryEngineBatch, EmptyBatchAndThreadDefaultsAreSafe) {
  const QueryEngine engine(MakeTuple(10, 19));
  EXPECT_TRUE(engine.RunBatch(std::vector<RankingQuery>{}, 0).empty());
  EXPECT_TRUE(engine.RunBatch(std::vector<QueryRequest>{}, 4).empty());

  RankingQuery q;
  const auto results = engine.RunBatch({q, q, q}, 0);  // hardware default
  ASSERT_EQ(results.size(), 3u);
  for (const QueryResult& r : results) EXPECT_TRUE(r.status.ok());
}

// --- The QueryRequest surface (PR 7 API redesign) ---------------------

TEST(QueryRequestSurface, RequestRunMatchesLegacyRunExactly) {
  const QueryEngine engine(MakeTuple(60, 31));
  const RankingSemantics all[] = {
      RankingSemantics::kExpectedRank, RankingSemantics::kMedianRank,
      RankingSemantics::kQuantileRank, RankingSemantics::kUTopk,
      RankingSemantics::kUKRanks,      RankingSemantics::kPTk,
      RankingSemantics::kGlobalTopk,   RankingSemantics::kExpectedScore,
  };
  for (RankingSemantics semantics : all) {
    RankingQuery legacy;
    legacy.semantics = semantics;
    legacy.k = 5;
    legacy.phi = 0.5;
    legacy.threshold = 0.1;

    QueryRequest request;
    request.options = legacy;

    const QueryResult via_legacy = engine.Run(legacy);
    const QueryResult via_request = engine.Run(request);
    ASSERT_EQ(via_legacy.status.code, via_request.status.code)
        << ToString(semantics);
    EXPECT_EQ(via_legacy.answer.ids, via_request.answer.ids)
        << ToString(semantics);
    EXPECT_EQ(via_legacy.answer.statistics, via_request.answer.statistics)
        << ToString(semantics);
  }
}

TEST(QueryRequestSurface, PerRequestParallelismReplacesEngineSideChannel) {
  // One engine, two requests with different parallelism: results must be
  // bit-identical (determinism contract) and the engine-level setting
  // must not leak into the request path.
  QueryEngine engine(MakeTuple(20000, 37));
  ParallelismOptions engine_par;
  engine_par.threads = 1;
  engine.set_parallelism(engine_par);

  QueryRequest serial;
  serial.options.semantics = RankingSemantics::kExpectedRank;
  serial.options.k = 25;
  serial.parallelism.threads = 1;
  serial.parallelism.min_parallel_items = 1;

  QueryRequest parallel = serial;
  parallel.parallelism.threads = 4;

  const QueryResult serial_result = engine.Run(serial);
  // Fresh engine so the second run recomputes rather than hitting the
  // statistic memo.
  const QueryEngine engine2(MakeTuple(20000, 37));
  const QueryResult parallel_result = engine2.Run(parallel);
  ASSERT_TRUE(serial_result.status.ok());
  ASSERT_TRUE(parallel_result.status.ok());
  EXPECT_EQ(serial_result.answer.ids, parallel_result.answer.ids);
  EXPECT_EQ(serial_result.answer.statistics,
            parallel_result.answer.statistics);
  // threads_used reports how many slots actually grabbed a chunk, which
  // on a small machine can legitimately stay 1 even with a 4-thread
  // budget — so assert the budget bound, not a minimum.
  EXPECT_EQ(serial_result.stats.threads_used, 1);
  EXPECT_LE(parallel_result.stats.threads_used, 4);
}

TEST(QueryRequestSurface, ServeFieldsPassThroughWithoutAffectingExecution) {
  // deadline_ms and cache_mode are serving-layer concerns: the in-process
  // Run must ignore them (never shed, never consult a result cache).
  const QueryEngine engine(MakeTuple(30, 41));
  QueryRequest request;
  request.options.k = 5;
  request.deadline_ms = 1e-9;  // would shed instantly in urankd
  request.cache_mode = CacheMode::kBypass;
  const QueryResult result = engine.Run(request);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.answer.ids.size(), 5u);
}

TEST(QueryRequestSurface, RequestBatchMatchesLegacyBatch) {
  const QueryEngine engine(MakeTuple(80, 43));
  std::vector<RankingQuery> legacy;
  std::vector<QueryRequest> requests;
  const RankingSemantics mix[] = {RankingSemantics::kExpectedRank,
                                  RankingSemantics::kPTk,
                                  RankingSemantics::kGlobalTopk};
  for (RankingSemantics semantics : mix) {
    RankingQuery q;
    q.semantics = semantics;
    q.k = 8;
    q.threshold = 0.1;
    legacy.push_back(q);
    QueryRequest request;
    request.options = q;
    requests.push_back(request);
  }
  const std::vector<QueryResult> legacy_results = engine.RunBatch(legacy, 2);
  const std::vector<QueryResult> request_results =
      engine.RunBatch(requests, 2);
  ASSERT_EQ(legacy_results.size(), request_results.size());
  for (std::size_t i = 0; i < legacy_results.size(); ++i) {
    EXPECT_EQ(legacy_results[i].answer.ids, request_results[i].answer.ids);
    EXPECT_EQ(legacy_results[i].answer.statistics,
              request_results[i].answer.statistics);
  }
}

TEST(QueryRequestSurface, ValidationErrorsSurfaceThroughRequestRun) {
  const QueryEngine engine(MakeTuple(10, 47));
  QueryRequest request;
  request.options.k = 0;
  EXPECT_EQ(engine.Run(request).status.code, QueryStatusCode::kInvalidK);
  request.options.k = 5;
  request.options.semantics = RankingSemantics::kQuantileRank;
  request.options.phi = 1.5;
  EXPECT_EQ(engine.Run(request).status.code, QueryStatusCode::kInvalidPhi);
}

}  // namespace
}  // namespace urank
