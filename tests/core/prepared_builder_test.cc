// Blocked streaming preparation vs the eager constructors: a builder fed
// arbitrary block splits of a relation must produce a PreparedRelation
// whose every derived structure — sort orders, sequential prefix sums,
// value universe, shard plan — is bit-identical (EXPECT_EQ on doubles, no
// tolerance) to eagerly preparing the whole relation, and whose engine
// answers match across semantics.

#include "core/engine/prepared_builder.h"

#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "common/scenario_gen.h"
#include "core/engine/query_engine.h"
#include "test_util.h"

namespace urank {
namespace {

using testgen::AdversarialRuleTupleRelation;
using testgen::ClusteredScoreAttrRelation;
using testgen::ClusteredScoreTupleRelation;
using testgen::CorrelatedTupleRelation;
using testgen::SplitIntoBlocks;
using testgen::WideRuleTupleRelation;

void ExpectSameTupleShardPlan(const internal::TupleShardPlan& a,
                              const internal::TupleShardPlan& b) {
  EXPECT_EQ(a.num_rules, b.num_rules);
  ASSERT_EQ(a.shards.size(), b.shards.size());
  for (size_t s = 0; s < a.shards.size(); ++s) {
    const internal::TupleShard& sa = a.shards[s];
    const internal::TupleShard& sb = b.shards[s];
    EXPECT_EQ(sa.begin, sb.begin) << "shard " << s;
    EXPECT_EQ(sa.end, sb.end) << "shard " << s;
    EXPECT_EQ(sa.home_node, sb.home_node) << "shard " << s;
    EXPECT_EQ(sa.entry_prefix, sb.entry_prefix) << "shard " << s;
    EXPECT_EQ(sa.entry_rule_mass, sb.entry_rule_mass) << "shard " << s;
    ASSERT_EQ(sa.order.size(), sb.order.size()) << "shard " << s;
    for (size_t j = 0; j < sa.order.size(); ++j) {
      EXPECT_EQ(sa.order[j], sb.order[j]) << "shard " << s << " pos " << j;
      EXPECT_EQ(sa.pref[j], sb.pref[j]) << "shard " << s << " pos " << j;
    }
  }
}

void ExpectBlockedTupleIdentity(const TupleRelation& rel, int block) {
  const auto eager = QueryEngine::Prepare(rel);

  PreparedTupleRelationBuilder builder;
  const testgen::TupleBlocks blocks = SplitIntoBlocks(rel, block);
  for (size_t b = 0; b < blocks.tuples.size(); ++b) {
    builder.AddBlock(blocks.tuples[b], blocks.rule_keys[b]);
  }
  EXPECT_EQ(builder.size(), static_cast<long long>(rel.size()));
  const auto blocked = builder.Seal();

  ASSERT_EQ(blocked->size(), eager->size());
  EXPECT_EQ(blocked->relation().num_rules(), rel.num_rules());
  EXPECT_EQ(blocked->rank_order(), eager->rank_order());
  EXPECT_EQ(blocked->prefix_prob(), eager->prefix_prob());
  EXPECT_EQ(blocked->ids(), eager->ids());
  ExpectSameTupleShardPlan(blocked->shard_plan(), eager->shard_plan());

  // Engine answers across every tuple-level semantics must match too.
  QueryEngine blocked_engine{blocked};
  QueryEngine eager_engine{eager};
  for (RankingSemantics semantics :
       {RankingSemantics::kExpectedRank, RankingSemantics::kMedianRank,
        RankingSemantics::kQuantileRank, RankingSemantics::kUKRanks,
        RankingSemantics::kPTk, RankingSemantics::kGlobalTopk,
        RankingSemantics::kExpectedScore}) {
    QueryRequest req;
    req.options.semantics = semantics;
    req.options.k = 7;
    req.options.phi = 0.6;
    req.options.threshold = 0.05;
    const QueryResult a = blocked_engine.Run(req);
    const QueryResult b = eager_engine.Run(req);
    ASSERT_TRUE(a.status.ok()) << ToString(semantics);
    ASSERT_TRUE(b.status.ok()) << ToString(semantics);
    EXPECT_EQ(a.answer.ids, b.answer.ids) << ToString(semantics);
    EXPECT_EQ(a.answer.statistics, b.answer.statistics)
        << ToString(semantics);
  }
}

void ExpectBlockedAttrIdentity(const AttrRelation& rel, int block) {
  const auto eager = QueryEngine::Prepare(rel);

  PreparedAttrRelationBuilder builder;
  for (int begin = 0; begin < rel.size(); begin += block) {
    const int end = std::min(begin + block, rel.size());
    std::vector<AttrTuple> tuples;
    for (int i = begin; i < end; ++i) tuples.push_back(rel.tuple(i));
    builder.AddBlock(std::move(tuples));
  }
  EXPECT_EQ(builder.size(), static_cast<long long>(rel.size()));
  const auto blocked = builder.Seal();

  ASSERT_EQ(blocked->size(), eager->size());
  EXPECT_EQ(blocked->escore_order(), eager->escore_order());
  EXPECT_EQ(blocked->expected_scores(), eager->expected_scores());
  EXPECT_EQ(blocked->ids(), eager->ids());
  EXPECT_EQ(blocked->universe().values, eager->universe().values);
  EXPECT_EQ(blocked->universe().mass, eager->universe().mass);
  EXPECT_EQ(blocked->universe().suffix, eager->universe().suffix);
  ASSERT_EQ(blocked->sorted_pdfs().size(), eager->sorted_pdfs().size());
  for (size_t i = 0; i < eager->sorted_pdfs().size(); ++i) {
    EXPECT_EQ(blocked->sorted_pdfs()[i].values,
              eager->sorted_pdfs()[i].values) << "pdf " << i;
    EXPECT_EQ(blocked->sorted_pdfs()[i].probs,
              eager->sorted_pdfs()[i].probs) << "pdf " << i;
    EXPECT_EQ(blocked->sorted_pdfs()[i].suffix,
              eager->sorted_pdfs()[i].suffix) << "pdf " << i;
  }
  const internal::AttrShardPlan& pa = blocked->shard_plan();
  const internal::AttrShardPlan& pb = eager->shard_plan();
  ASSERT_EQ(pa.shards.size(), pb.shards.size());
  for (size_t s = 0; s < pa.shards.size(); ++s) {
    EXPECT_EQ(pa.shards[s].begin, pb.shards[s].begin) << "shard " << s;
    EXPECT_EQ(pa.shards[s].end, pb.shards[s].end) << "shard " << s;
    EXPECT_EQ(pa.shards[s].home_node, pb.shards[s].home_node)
        << "shard " << s;
    EXPECT_EQ(pa.shards[s].tie_offset, pb.shards[s].tie_offset)
        << "shard " << s;
    EXPECT_EQ(pa.shards[s].tie_mass, pb.shards[s].tie_mass)
        << "shard " << s;
  }

  QueryEngine blocked_engine{blocked};
  QueryEngine eager_engine{eager};
  for (RankingSemantics semantics :
       {RankingSemantics::kExpectedRank, RankingSemantics::kMedianRank,
        RankingSemantics::kQuantileRank, RankingSemantics::kUKRanks,
        RankingSemantics::kPTk, RankingSemantics::kGlobalTopk,
        RankingSemantics::kExpectedScore}) {
    QueryRequest req;
    req.options.semantics = semantics;
    req.options.k = 5;
    req.options.phi = 0.4;
    req.options.threshold = 0.05;
    const QueryResult a = blocked_engine.Run(req);
    const QueryResult b = eager_engine.Run(req);
    ASSERT_TRUE(a.status.ok()) << ToString(semantics);
    ASSERT_TRUE(b.status.ok()) << ToString(semantics);
    EXPECT_EQ(a.answer.ids, b.answer.ids) << ToString(semantics);
    EXPECT_EQ(a.answer.statistics, b.answer.statistics)
        << ToString(semantics);
  }
}

TEST(PreparedTupleBuilderTest, IndependentTuplesAnyBlocking) {
  const TupleRelation rel =
      CorrelatedTupleRelation(257, Correlation::kIndependent, 5);
  for (int block : {1, 7, 64, 257, 1000}) {
    ExpectBlockedTupleIdentity(rel, block);
  }
}

TEST(PreparedTupleBuilderTest, ClusteredTiesAcrossBlockBoundaries) {
  // Equal-score runs longer than the block size force the merge to
  // interleave tied tuples from many runs; index tie-break keeps the
  // sequence unique.
  const TupleRelation rel = ClusteredScoreTupleRelation(300, 4, 9);
  for (int block : {3, 50, 128}) {
    ExpectBlockedTupleIdentity(rel, block);
  }
}

TEST(PreparedTupleBuilderTest, RulesSpanningBlocks) {
  const TupleRelation rel = AdversarialRuleTupleRelation(240, 6, 15);
  for (int block : {10, 77, 240}) {
    ExpectBlockedTupleIdentity(rel, block);
  }
}

TEST(PreparedTupleBuilderTest, WideRuleMix) {
  const TupleRelation rel = WideRuleTupleRelation(500, 12, 21);
  for (int block : {64, 333}) {
    ExpectBlockedTupleIdentity(rel, block);
  }
}

TEST(PreparedTupleBuilderTest, EmptyRelation) {
  PreparedTupleRelationBuilder builder;
  const auto prepared = builder.Seal();
  EXPECT_EQ(prepared->size(), 0);
}

TEST(PreparedTupleBuilderDeathTest, RejectsUseAfterSeal) {
  PreparedTupleRelationBuilder builder;
  builder.AddBlock({TLTuple{0, 1.0, 0.5}});
  builder.Seal();
  EXPECT_DEATH(builder.AddBlock({TLTuple{1, 2.0, 0.5}}), "sealed");
  EXPECT_DEATH(builder.Seal(), "twice");
}

TEST(PreparedTupleBuilderDeathTest, RejectsMismatchedRuleKeys) {
  PreparedTupleRelationBuilder builder;
  EXPECT_DEATH(
      builder.AddBlock({TLTuple{0, 1.0, 0.5}, TLTuple{1, 2.0, 0.5}}, {4}),
      "rule_keys");
}

TEST(PreparedAttrBuilderTest, ClusteredPdfsAnyBlocking) {
  const AttrRelation rel = ClusteredScoreAttrRelation(150, 5, 4, 27);
  for (int block : {1, 11, 64, 150}) {
    ExpectBlockedAttrIdentity(rel, block);
  }
}

TEST(PreparedAttrBuilderTest, PaperExample) {
  ExpectBlockedAttrIdentity(testing_util::PaperFig2(), 1);
}

TEST(PreparedAttrBuilderDeathTest, RejectsUseAfterSeal) {
  PreparedAttrRelationBuilder builder;
  AttrTuple t;
  t.id = 0;
  t.pdf = {{1.0, 1.0}};
  builder.AddBlock({t});
  builder.Seal();
  EXPECT_DEATH(builder.AddBlock({t}), "sealed");
  EXPECT_DEATH(builder.Seal(), "twice");
}

}  // namespace
}  // namespace urank
