// Empty relations end to end: zero-block builder Seal, every ranking
// semantics answering an empty top-k through the engine and the facade,
// and the mutable stores publishing empty epochs (including a relation
// mutated down to empty). The engine short-circuits n == 0 before kernel
// dispatch; the kernel-level non-empty contracts stay as hard CHECKs,
// death-tested at the bottom so a future regression to the old abort
// behavior (or a silent contract removal) is caught either way.

// Part of this suite exercises the deprecated one-shot facade on empty
// relations, which is exactly the compatibility surface being fixed.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "core/engine/mutable_relation.h"
#include "core/engine/prepared_builder.h"
#include "core/engine/query_engine.h"
#include "core/quantile_rank.h"
#include "core/query.h"
#include "model/attr_model.h"
#include "model/tuple_model.h"

namespace urank {
namespace {

constexpr RankingSemantics kAllSemantics[] = {
    RankingSemantics::kExpectedRank, RankingSemantics::kMedianRank,
    RankingSemantics::kQuantileRank, RankingSemantics::kUTopk,
    RankingSemantics::kUKRanks,      RankingSemantics::kPTk,
    RankingSemantics::kGlobalTopk,   RankingSemantics::kExpectedScore,
};

QueryRequest Req(RankingSemantics semantics) {
  QueryRequest request;
  request.options.semantics = semantics;
  request.options.k = 3;
  request.options.phi = 0.5;
  request.options.threshold = 0.5;
  return request;
}

TEST(EmptyRelationTest, ZeroBlockTupleSeal) {
  PreparedTupleRelationBuilder builder;
  std::shared_ptr<const PreparedTupleRelation> prepared = builder.Seal();
  ASSERT_NE(prepared, nullptr);
  EXPECT_EQ(prepared->size(), 0);
  EXPECT_TRUE(prepared->ids().empty());
  EXPECT_EQ(prepared->relation().num_rules(), 0);
}

TEST(EmptyRelationTest, ZeroBlockAttrSeal) {
  PreparedAttrRelationBuilder builder;
  std::shared_ptr<const PreparedAttrRelation> prepared = builder.Seal();
  ASSERT_NE(prepared, nullptr);
  EXPECT_EQ(prepared->size(), 0);
  EXPECT_TRUE(prepared->ids().empty());
  EXPECT_TRUE(prepared->universe().values.empty());
}

TEST(EmptyRelationTest, EngineAnswersAllSemanticsOnEmptyTupleRelation) {
  QueryEngine engine{TupleRelation()};
  for (RankingSemantics semantics : kAllSemantics) {
    QueryResult result = engine.Run(Req(semantics));
    ASSERT_TRUE(result.status.ok())
        << ToString(semantics) << ": " << result.status.message;
    EXPECT_TRUE(result.answer.ids.empty()) << ToString(semantics);
    EXPECT_TRUE(result.answer.statistics.empty()) << ToString(semantics);
  }
}

TEST(EmptyRelationTest, EngineAnswersAllSemanticsOnEmptyAttrRelation) {
  QueryEngine engine{AttrRelation()};
  for (RankingSemantics semantics : kAllSemantics) {
    QueryResult result = engine.Run(Req(semantics));
    ASSERT_TRUE(result.status.ok())
        << ToString(semantics) << ": " << result.status.message;
    EXPECT_TRUE(result.answer.ids.empty()) << ToString(semantics);
  }
}

TEST(EmptyRelationTest, FacadeAnswersEmptyTopK) {
  RankingQueryOptions options;
  options.k = 5;
  for (RankingSemantics semantics : kAllSemantics) {
    options.semantics = semantics;
    EXPECT_TRUE(RunRankingQuery(TupleRelation(), options).ids.empty())
        << ToString(semantics);
    EXPECT_TRUE(RunRankingQuery(AttrRelation(), options).ids.empty())
        << ToString(semantics);
  }
}

TEST(EmptyRelationTest, ParameterValidationStillRunsOnEmptyRelations) {
  // The empty early-out must not swallow option errors: an invalid phi is
  // an invalid request regardless of relation size.
  QueryEngine engine{TupleRelation()};
  QueryRequest request = Req(RankingSemantics::kQuantileRank);
  request.options.phi = 0.0;
  EXPECT_EQ(engine.Run(request).status.code, QueryStatusCode::kInvalidPhi);
  request = Req(RankingSemantics::kExpectedRank);
  request.options.k = 0;
  EXPECT_EQ(engine.Run(request).status.code, QueryStatusCode::kInvalidK);
}

TEST(EmptyRelationTest, MutatedToEmptyStillAnswers) {
  auto store = std::make_shared<MutableTupleRelation>();
  QueryEngine engine(store);
  TLTuple t;
  t.id = 1;
  t.score = 10.0;
  t.prob = 0.5;
  ASSERT_TRUE(store->Insert(t, -1, nullptr));
  store->Publish();
  ASSERT_TRUE(store->Delete(1, nullptr));
  const std::uint64_t epoch = store->Publish().epoch;
  EXPECT_EQ(epoch, 3u);
  for (RankingSemantics semantics : kAllSemantics) {
    QueryResult result = engine.Run(Req(semantics));
    ASSERT_TRUE(result.status.ok()) << ToString(semantics);
    EXPECT_TRUE(result.answer.ids.empty()) << ToString(semantics);
    EXPECT_EQ(result.stats.epoch, epoch);
  }
}

TEST(EmptyRelationDeathTest, KernelLevelEmptyPmfContractStillAborts) {
  // The engine's early-out is the supported empty path; the low-level
  // kernels keep their non-empty preconditions. This is the abort the
  // facade used to hit before the engine handled n == 0.
  EXPECT_DEATH(QuantileFromPmf(std::vector<double>{}, 0.5),
               "pmf must be non-empty");
}

}  // namespace
}  // namespace urank
