#include "core/monte_carlo.h"

#include <vector>

#include "core/expected_rank_attr.h"
#include "core/expected_rank_tuple.h"
#include "core/rank_distribution_attr.h"
#include "core/rank_distribution_tuple.h"
#include "core/semantics/semantics.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace urank {
namespace {

using testing_util::PaperFig2;
using testing_util::PaperFig4;
using testing_util::RandomSmallAttr;
using testing_util::RandomSmallTuple;

constexpr int kSamples = 60000;
constexpr double kTol = 0.02;  // ~4 sigma for Bernoulli means at kSamples

TEST(SampleAttrWorldTest, ValuesComeFromSupports) {
  const AttrRelation rel = PaperFig2();
  Rng rng(1);
  std::vector<double> scores(3);
  for (int s = 0; s < 200; ++s) {
    SampleAttrWorld(rel, rng, &scores);
    EXPECT_TRUE(scores[0] == 100.0 || scores[0] == 70.0);
    EXPECT_TRUE(scores[1] == 92.0 || scores[1] == 80.0);
    EXPECT_DOUBLE_EQ(scores[2], 85.0);
  }
}

TEST(SampleAttrWorldTest, FrequenciesMatchPdf) {
  const AttrRelation rel = PaperFig2();
  Rng rng(2);
  std::vector<double> scores(3);
  int hi = 0;
  for (int s = 0; s < kSamples; ++s) {
    SampleAttrWorld(rel, rng, &scores);
    if (scores[0] == 100.0) ++hi;
  }
  EXPECT_NEAR(static_cast<double>(hi) / kSamples, 0.4, kTol);
}

TEST(SampleTupleWorldTest, RespectsRules) {
  const TupleRelation rel = PaperFig4();
  Rng rng(3);
  std::vector<bool> present(4);
  int t2_count = 0, t4_count = 0;
  for (int s = 0; s < kSamples; ++s) {
    SampleTupleWorld(rel, rng, &present);
    EXPECT_FALSE(present[1] && present[3]);  // exclusive
    EXPECT_TRUE(present[2]);                 // p = 1
    t2_count += present[1] ? 1 : 0;
    t4_count += present[3] ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(t2_count) / kSamples, 0.5, kTol);
  EXPECT_NEAR(static_cast<double>(t4_count) / kSamples, 0.5, kTol);
}

TEST(MonteCarloExpectedRanksTest, ConvergesToExactAttr) {
  const AttrRelation rel = PaperFig2();
  Rng rng(4);
  const std::vector<double> estimate =
      AttrExpectedRanksMonteCarlo(rel, kSamples, rng);
  const std::vector<double> exact = AttrExpectedRanks(rel);
  for (size_t i = 0; i < exact.size(); ++i) {
    EXPECT_NEAR(estimate[i], exact[i], 0.05) << "tuple " << i;
  }
}

TEST(MonteCarloExpectedRanksTest, ConvergesToExactTuple) {
  const TupleRelation rel = PaperFig4();
  Rng rng(5);
  const std::vector<double> estimate =
      TupleExpectedRanksMonteCarlo(rel, kSamples, rng);
  const std::vector<double> exact = TupleExpectedRanks(rel);
  for (size_t i = 0; i < exact.size(); ++i) {
    EXPECT_NEAR(estimate[i], exact[i], 0.05) << "tuple " << i;
  }
}

TEST(MonteCarloRankDistributionsTest, ConvergeToExact) {
  Rng data_rng(6);
  const AttrRelation arel = RandomSmallAttr(data_rng, 5, 3);
  Rng rng(7);
  const auto est = AttrRankDistributionsMonteCarlo(arel, kSamples, rng);
  const auto exact = AttrRankDistributions(arel);
  for (size_t i = 0; i < exact.size(); ++i) {
    for (size_t r = 0; r < exact[i].size(); ++r) {
      EXPECT_NEAR(est[i][r], exact[i][r], kTol);
    }
  }
  const TupleRelation trel = RandomSmallTuple(data_rng, 6);
  const auto test = TupleRankDistributionsMonteCarlo(trel, kSamples, rng);
  const auto texact = TupleRankDistributions(trel);
  for (size_t i = 0; i < texact.size(); ++i) {
    for (size_t r = 0; r < texact[i].size(); ++r) {
      EXPECT_NEAR(test[i][r], texact[i][r], kTol);
    }
  }
}

TEST(MonteCarloTopKProbabilitiesTest, ConvergeToExact) {
  Rng data_rng(8);
  const TupleRelation trel = RandomSmallTuple(data_rng, 7);
  Rng rng(9);
  for (int k : {1, 3}) {
    const auto est =
        TupleTopKProbabilitiesMonteCarlo(trel, k, kSamples, rng);
    const auto exact = TupleTopKProbabilities(trel, k);
    for (size_t i = 0; i < exact.size(); ++i) {
      EXPECT_NEAR(est[i], exact[i], kTol) << "k=" << k << " tuple " << i;
    }
  }
  const AttrRelation arel = RandomSmallAttr(data_rng, 5, 3);
  const auto est = AttrTopKProbabilitiesMonteCarlo(arel, 2, kSamples, rng);
  const auto exact = AttrTopKProbabilities(arel, 2);
  for (size_t i = 0; i < exact.size(); ++i) {
    EXPECT_NEAR(est[i], exact[i], kTol);
  }
}

TEST(MonteCarloTest, DeterministicGivenSeed) {
  const TupleRelation rel = PaperFig4();
  Rng a(11), b(11);
  EXPECT_EQ(TupleExpectedRanksMonteCarlo(rel, 500, a),
            TupleExpectedRanksMonteCarlo(rel, 500, b));
}

TEST(MonteCarloTest, MoreSamplesReduceError) {
  const TupleRelation rel = PaperFig4();
  const std::vector<double> exact = TupleExpectedRanks(rel);
  auto max_error = [&](int samples, uint64_t seed) {
    Rng rng(seed);
    const std::vector<double> est =
        TupleExpectedRanksMonteCarlo(rel, samples, rng);
    double worst = 0.0;
    for (size_t i = 0; i < exact.size(); ++i) {
      worst = std::max(worst, std::fabs(est[i] - exact[i]));
    }
    return worst;
  };
  // Average over a few seeds so the comparison is not one lucky draw.
  double coarse = 0.0, fine = 0.0;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    coarse += max_error(100, 100 + seed);
    fine += max_error(20000, 200 + seed);
  }
  EXPECT_LT(fine, coarse);
}

TEST(MonteCarloDeathTest, RejectsBadArguments) {
  const TupleRelation rel = PaperFig4();
  Rng rng(12);
  EXPECT_DEATH(TupleExpectedRanksMonteCarlo(rel, 0, rng), "samples");
  std::vector<bool> wrong_size(2);
  EXPECT_DEATH(SampleTupleWorld(rel, rng, &wrong_size), "size");
  EXPECT_DEATH(TupleTopKProbabilitiesMonteCarlo(rel, 0, 10, rng),
               "k must be >= 1");
}

}  // namespace
}  // namespace urank
