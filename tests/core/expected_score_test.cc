#include "core/semantics/expected_score.h"

#include <vector>

#include "gtest/gtest.h"
#include "test_util.h"

namespace urank {
namespace {

using testing_util::ExpectNearVectors;
using testing_util::PaperFig2;
using testing_util::PaperFig4;

TEST(AttrExpectedScoresTest, PaperFig2Values) {
  // E[X1] = 100*.4 + 70*.6 = 82; E[X2] = 92*.6 + 80*.4 = 87.2; E[X3] = 85.
  ExpectNearVectors(AttrExpectedScores(PaperFig2()), {82.0, 87.2, 85.0},
                    1e-12);
}

TEST(AttrExpectedScoreTopKTest, RanksByExpectedScore) {
  const auto top3 = AttrExpectedScoreTopK(PaperFig2(), 3);
  ASSERT_EQ(top3.size(), 3u);
  EXPECT_EQ(top3[0].id, 2);
  EXPECT_EQ(top3[1].id, 3);
  EXPECT_EQ(top3[2].id, 1);
}

TEST(TupleExpectedScoresTest, AbsenceContributesZero) {
  // Expected score is p * v.
  ExpectNearVectors(TupleExpectedScores(PaperFig4()),
                    {40.0, 45.0, 80.0, 35.0}, 1e-12);
}

TEST(TupleExpectedScoreTopKTest, RanksByProbabilityWeightedScore) {
  const auto top4 = TupleExpectedScoreTopK(PaperFig4(), 4);
  ASSERT_EQ(top4.size(), 4u);
  EXPECT_EQ(top4[0].id, 3);  // 80
  EXPECT_EQ(top4[1].id, 2);  // 45
  EXPECT_EQ(top4[2].id, 1);  // 40
  EXPECT_EQ(top4[3].id, 4);  // 35
}

TEST(ExpectedScoreTest, ValueSensitivityDemonstration) {
  // The paper's critique: an improbable tuple with a huge score dominates.
  TupleRelation rel = TupleRelation::Independent(
      {{0, 1e6, 0.01}, {1, 100.0, 0.99}});
  const auto top1 = TupleExpectedScoreTopK(rel, 1);
  EXPECT_EQ(top1[0].id, 0);  // expected score 10000 vs 99
  // Shrinking the outlier score (order preserved!) flips the answer.
  TupleRelation shrunk = TupleRelation::Independent(
      {{0, 101.0, 0.01}, {1, 100.0, 0.99}});
  EXPECT_EQ(TupleExpectedScoreTopK(shrunk, 1)[0].id, 1);
}

TEST(ExpectedScoreTest, KClampsToN) {
  EXPECT_EQ(AttrExpectedScoreTopK(PaperFig2(), 99).size(), 3u);
}

TEST(ExpectedScoreDeathTest, RejectsNonPositiveK) {
  EXPECT_DEATH(AttrExpectedScoreTopK(PaperFig2(), 0), "k must be >= 1");
  EXPECT_DEATH(TupleExpectedScoreTopK(PaperFig4(), 0), "k must be >= 1");
}

}  // namespace
}  // namespace urank
