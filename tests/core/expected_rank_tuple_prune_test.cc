#include <algorithm>
#include <vector>

#include "core/expected_rank_tuple.h"
#include "gen/tuple_gen.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "util/rng.h"

namespace urank {
namespace {

using testing_util::PaperFig4;
using testing_util::RandomSmallTuple;

void ExpectSameAnswer(const std::vector<RankedTuple>& a,
                      const std::vector<RankedTuple>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id) << "position " << i;
    EXPECT_NEAR(a[i].statistic, b[i].statistic, 1e-9);
  }
}

TEST(TuplePruneTest, PaperFig4AllK) {
  for (int k = 1; k <= 4; ++k) {
    const auto exact = TupleExpectedRankTopK(PaperFig4(), k);
    const TuplePruneResult pruned = TupleExpectedRankTopKPrune(PaperFig4(), k);
    ExpectSameAnswer(pruned.topk, exact);
  }
}

TEST(TuplePruneTest, AlwaysMatchesExactTopK) {
  // T-ERank-Prune's bound is sound: the pruned answer is the true top-k.
  Rng rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    TupleRelation rel = RandomSmallTuple(rng, 12);
    for (int k : {1, 3, 7}) {
      for (TiePolicy ties :
           {TiePolicy::kStrictGreater, TiePolicy::kBreakByIndex}) {
        const auto exact = TupleExpectedRankTopK(rel, k, ties);
        const TuplePruneResult pruned =
            TupleExpectedRankTopKPrune(rel, k, ties);
        ExpectSameAnswer(pruned.topk, exact);
        EXPECT_LE(pruned.accessed, rel.size());
      }
    }
  }
}

TEST(TuplePruneTest, PrunesWithHighProbabilities) {
  // With probabilities near 1 the prefix mass grows one-per-tuple. The
  // scan still has to cover the absent-branch term (1-p)·E[|W|] of the
  // best ranks, but must stop well before the end.
  TupleGenConfig config;
  config.num_tuples = 2000;
  config.prob_lo = 0.95;
  config.prob_hi = 1.0;
  config.multi_rule_fraction = 0.0;
  config.seed = 5;
  TupleRelation rel = GenerateTupleRelation(config);
  const int k = 10;
  const TuplePruneResult pruned = TupleExpectedRankTopKPrune(rel, k);
  EXPECT_LT(pruned.accessed, rel.size() / 4);
  const auto exact = TupleExpectedRankTopK(rel, k);
  ExpectSameAnswer(pruned.topk, exact);
}

TEST(TuplePruneTest, ScansMoreWithLowProbabilities) {
  TupleGenConfig config;
  config.num_tuples = 2000;
  config.prob_lo = 0.02;
  config.prob_hi = 0.1;
  config.multi_rule_fraction = 0.0;
  config.seed = 6;
  TupleRelation rel = GenerateTupleRelation(config);
  const int k = 10;
  const TuplePruneResult low = TupleExpectedRankTopKPrune(rel, k);
  config.prob_lo = 0.9;
  config.prob_hi = 1.0;
  const TuplePruneResult high =
      TupleExpectedRankTopKPrune(GenerateTupleRelation(config), k);
  EXPECT_GT(low.accessed, high.accessed);
}

TEST(TuplePruneTest, CorrectWithExclusionRulesOnGeneratedData) {
  TupleGenConfig config;
  config.num_tuples = 800;
  config.multi_rule_fraction = 0.5;
  config.max_rule_size = 4;
  config.seed = 7;
  TupleRelation rel = GenerateTupleRelation(config);
  for (int k : {1, 10, 50}) {
    const auto exact = TupleExpectedRankTopK(rel, k);
    const TuplePruneResult pruned = TupleExpectedRankTopKPrune(rel, k);
    ExpectSameAnswer(pruned.topk, exact);
  }
}

TEST(TuplePruneTest, TiedScoresStaySound) {
  // All scores equal: the strict-policy flushed mass never grows, so the
  // algorithm must scan everything — and still be correct.
  std::vector<TLTuple> tuples;
  for (int i = 0; i < 20; ++i) tuples.push_back({i, 5.0, 0.9});
  TupleRelation rel = TupleRelation::Independent(std::move(tuples));
  const auto exact = TupleExpectedRankTopK(rel, 3, TiePolicy::kStrictGreater);
  const TuplePruneResult pruned =
      TupleExpectedRankTopKPrune(rel, 3, TiePolicy::kStrictGreater);
  EXPECT_EQ(pruned.accessed, rel.size());
  ExpectSameAnswer(pruned.topk, exact);
}

TEST(TuplePruneTest, SingleTuple) {
  TupleRelation rel = TupleRelation::Independent({{0, 1.0, 0.5}});
  const TuplePruneResult pruned = TupleExpectedRankTopKPrune(rel, 1);
  ASSERT_EQ(pruned.topk.size(), 1u);
  EXPECT_EQ(pruned.topk[0].id, 0);
}

TEST(TuplePruneDeathTest, RejectsNonPositiveK) {
  EXPECT_DEATH(TupleExpectedRankTopKPrune(PaperFig4(), 0), "k must be >= 1");
}

}  // namespace
}  // namespace urank
