#include "core/properties.h"

#include <cmath>
#include <tuple>
#include <vector>

#include "core/expected_rank_attr.h"
#include "core/expected_rank_tuple.h"
#include "core/quantile_rank.h"
#include "core/semantics/expected_score.h"
#include "core/semantics/global_topk.h"
#include "core/semantics/pt_k.h"
#include "core/semantics/u_kranks.h"
#include "core/semantics/u_topk.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "util/rng.h"

namespace urank {
namespace {

using testing_util::PaperFig2;
using testing_util::PaperFig4;
using testing_util::RandomSmallAttr;
using testing_util::RandomSmallTuple;

// ---- semantics adapters -------------------------------------------------

AttrSemanticsFn AttrExpectedRankSemantics() {
  return [](const AttrRelation& rel, int k) {
    return IdsOf(AttrExpectedRankTopK(rel, k));
  };
}

TupleSemanticsFn TupleExpectedRankSemantics() {
  return [](const TupleRelation& rel, int k) {
    return IdsOf(TupleExpectedRankTopK(rel, k));
  };
}

AttrSemanticsFn AttrQuantileSemantics(double phi) {
  return [phi](const AttrRelation& rel, int k) {
    return IdsOf(AttrQuantileRankTopK(rel, k, phi));
  };
}

TupleSemanticsFn TupleQuantileSemantics(double phi) {
  return [phi](const TupleRelation& rel, int k) {
    return IdsOf(TupleQuantileRankTopK(rel, k, phi));
  };
}

AttrSemanticsFn AttrExpectedScoreSemantics() {
  return [](const AttrRelation& rel, int k) {
    return IdsOf(AttrExpectedScoreTopK(rel, k));
  };
}

// ---- expected / median / quantile ranks: all properties hold -----------

TEST(ExpectedRankPropertiesTest, AttrPaperExampleSatisfiesAll) {
  const PropertyReport report =
      CheckAttrProperties(AttrExpectedRankSemantics(), PaperFig2());
  EXPECT_TRUE(report.AllHold())
      << (report.violations.empty() ? "" : report.violations[0]);
}

TEST(ExpectedRankPropertiesTest, TuplePaperExampleSatisfiesAll) {
  const PropertyReport report =
      CheckTupleProperties(TupleExpectedRankSemantics(), PaperFig4());
  EXPECT_TRUE(report.AllHold()) << (report.violations.empty()
      ? "" : report.violations[0]);
}

class ExpectedRankPropertySweep : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(ExpectedRankPropertySweep, RandomAttrInstancesSatisfyAll) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 4; ++trial) {
    AttrRelation rel = RandomSmallAttr(rng, 7, 3);
    PropertyCheckOptions options;
    options.seed = GetParam() + static_cast<uint64_t>(trial);
    const PropertyReport report =
        CheckAttrProperties(AttrExpectedRankSemantics(), rel, options);
    EXPECT_TRUE(report.AllHold())
        << (report.violations.empty() ? "" : report.violations[0]);
  }
}

TEST_P(ExpectedRankPropertySweep, RandomTupleInstancesSatisfyAll) {
  Rng rng(GetParam() + 1000);
  for (int trial = 0; trial < 4; ++trial) {
    TupleRelation rel = RandomSmallTuple(rng, 8);
    PropertyCheckOptions options;
    options.seed = GetParam() + static_cast<uint64_t>(trial);
    const PropertyReport report =
        CheckTupleProperties(TupleExpectedRankSemantics(), rel, options);
    EXPECT_TRUE(report.AllHold())
        << (report.violations.empty() ? "" : report.violations[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExpectedRankPropertySweep,
                         ::testing::Values(201, 202, 203, 204));

class QuantilePropertySweep
    : public ::testing::TestWithParam<std::tuple<double, uint64_t>> {};

TEST_P(QuantilePropertySweep, MedianAndQuantileRanksSatisfyAll) {
  const double phi = std::get<0>(GetParam());
  Rng rng(std::get<1>(GetParam()));
  for (int trial = 0; trial < 3; ++trial) {
    AttrRelation arel = RandomSmallAttr(rng, 6, 3);
    PropertyCheckOptions options;
    options.seed = std::get<1>(GetParam()) + static_cast<uint64_t>(trial);
    options.stability_trials = 4;
    const PropertyReport areport =
        CheckAttrProperties(AttrQuantileSemantics(phi), arel, options);
    EXPECT_TRUE(areport.AllHold())
        << "phi=" << phi << ": "
        << (areport.violations.empty() ? "" : areport.violations[0]);
    TupleRelation trel = RandomSmallTuple(rng, 7);
    const PropertyReport treport =
        CheckTupleProperties(TupleQuantileSemantics(phi), trel, options);
    EXPECT_TRUE(treport.AllHold())
        << "phi=" << phi << ": "
        << (treport.violations.empty() ? "" : treport.violations[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PhiSweep, QuantilePropertySweep,
    ::testing::Combine(::testing::Values(0.25, 0.5, 0.75),
                       ::testing::Values(301, 302)));

// ---- baselines: the paper's documented failures -------------------------

TEST(BaselinePropertiesTest, UTopkViolatesContainmentOnFig2) {
  AttrSemanticsFn semantics = [](const AttrRelation& rel, int k) {
    return AttrUTopK(rel, k).ids;
  };
  PropertyCheckOptions options;
  options.max_k = 3;
  const PropertyReport report =
      CheckAttrProperties(semantics, PaperFig2(), options);
  EXPECT_FALSE(report.containment);
  EXPECT_FALSE(report.weak_containment);
  EXPECT_TRUE(report.unique_rank);
  EXPECT_TRUE(report.value_invariance);
}

TEST(BaselinePropertiesTest, UTopkViolatesContainmentOnFig4) {
  TupleSemanticsFn semantics = [](const TupleRelation& rel, int k) {
    return TupleUTopK(rel, k).ids;
  };
  PropertyCheckOptions options;
  options.max_k = 3;
  const PropertyReport report =
      CheckTupleProperties(semantics, PaperFig4(), options);
  EXPECT_FALSE(report.weak_containment);
  EXPECT_TRUE(report.value_invariance);
}

TEST(BaselinePropertiesTest, UKRanksViolatesUniqueRankingOnFig2) {
  AttrSemanticsFn semantics = [](const AttrRelation& rel, int k) {
    return AttrUKRanks(rel, k);
  };
  PropertyCheckOptions options;
  options.max_k = 3;
  options.stability_trials = 0;
  const PropertyReport report =
      CheckAttrProperties(semantics, PaperFig2(), options);
  EXPECT_FALSE(report.unique_rank);   // t1 wins ranks 0 and 2
  EXPECT_TRUE(report.containment);    // list-prefix containment holds
  EXPECT_TRUE(report.value_invariance);
}

TEST(BaselinePropertiesTest, UKRanksViolatesExactKOnFig4) {
  TupleSemanticsFn semantics = [](const TupleRelation& rel, int k) {
    return TupleUKRanks(rel, k);
  };
  PropertyCheckOptions options;
  options.max_k = 4;
  options.stability_trials = 0;
  const PropertyReport report =
      CheckTupleProperties(semantics, PaperFig4(), options);
  EXPECT_FALSE(report.exact_k);  // no 4th-placed tuple exists
  EXPECT_FALSE(report.unique_rank);
}

TEST(BaselinePropertiesTest, PTkViolatesExactKAndStrongContainment) {
  AttrSemanticsFn semantics = [](const AttrRelation& rel, int k) {
    return AttrPTk(rel, k, 0.4);
  };
  PropertyCheckOptions options;
  options.max_k = 3;
  options.stability_trials = 0;
  const PropertyReport report =
      CheckAttrProperties(semantics, PaperFig2(), options);
  EXPECT_FALSE(report.exact_k);      // PT-2 returns 3 tuples
  EXPECT_FALSE(report.containment);  // no growth from k=2 to k=3
  EXPECT_TRUE(report.weak_containment);
  EXPECT_TRUE(report.value_invariance);
}

TEST(BaselinePropertiesTest, GlobalTopkViolatesContainmentOnFig2) {
  AttrSemanticsFn semantics = [](const AttrRelation& rel, int k) {
    return AttrGlobalTopK(rel, k);
  };
  PropertyCheckOptions options;
  options.max_k = 3;
  const PropertyReport report =
      CheckAttrProperties(semantics, PaperFig2(), options);
  EXPECT_FALSE(report.weak_containment);  // top-1 {t1}, top-2 {t2,t3}
  EXPECT_TRUE(report.exact_k);
  EXPECT_TRUE(report.unique_rank);
  EXPECT_TRUE(report.value_invariance);
}

TEST(BaselinePropertiesTest, ExpectedScoreViolatesValueInvariance) {
  // A cubic stretch reorders expected scores: 2-point pdf {1, 10} with
  // mean 5.5 vs a certain 6. Cubing gives {1, 1000} mean 500.5 vs 216.
  AttrRelation rel({
      {0, {{1.0, 0.5}, {10.0, 0.5}}},
      {1, {{6.0, 1.0}}},
  });
  PropertyCheckOptions options;
  options.max_k = 2;
  const PropertyReport report =
      CheckAttrProperties(AttrExpectedScoreSemantics(), rel, options);
  EXPECT_FALSE(report.value_invariance);
  EXPECT_TRUE(report.exact_k);
  EXPECT_TRUE(report.containment);
  EXPECT_TRUE(report.unique_rank);
}

TEST(BaselinePropertiesTest, ExpectedRankIsValueInvariantOnSameInstance) {
  AttrRelation rel({
      {0, {{1.0, 0.5}, {10.0, 0.5}}},
      {1, {{6.0, 1.0}}},
  });
  PropertyCheckOptions options;
  options.max_k = 2;
  const PropertyReport report =
      CheckAttrProperties(AttrExpectedRankSemantics(), rel, options);
  EXPECT_TRUE(report.value_invariance);
}

// ---- transform helpers ---------------------------------------------------

TEST(TransformTest, CubicPreservesOrderAndDistribution) {
  AttrRelation transformed = TransformAttrScoresCubic(PaperFig2());
  EXPECT_DOUBLE_EQ(transformed.tuple(0).pdf[0].value, 100.0 * 100.0 * 100.0);
  EXPECT_DOUBLE_EQ(transformed.tuple(0).pdf[0].prob, 0.4);
}

TEST(TransformTest, LogCompresses) {
  TupleRelation transformed = TransformTupleScoresLog(PaperFig4());
  EXPECT_NEAR(transformed.tuple(0).score, std::log1p(100.0), 1e-12);
  // Order is preserved.
  for (int i = 1; i < transformed.size(); ++i) {
    EXPECT_LT(transformed.tuple(i).score, transformed.tuple(i - 1).score);
  }
}

TEST(TransformDeathTest, RequiresPositiveScores) {
  AttrRelation rel({{0, {{-1.0, 1.0}}}});
  EXPECT_DEATH(TransformAttrScoresCubic(rel), "positive");
}

TEST(PropertyCheckTest, EmptyRelationTriviallyHolds) {
  const PropertyReport report =
      CheckAttrProperties(AttrExpectedRankSemantics(), AttrRelation());
  EXPECT_TRUE(report.AllHold());
}

}  // namespace
}  // namespace urank
