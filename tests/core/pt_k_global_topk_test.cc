#include <algorithm>
#include <vector>

#include "core/semantics/global_topk.h"
#include "core/semantics/pt_k.h"
#include "core/semantics/semantics.h"
#include "gen/tuple_gen.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "util/rng.h"

namespace urank {
namespace {

using testing_util::PaperFig2;
using testing_util::PaperFig4;

std::vector<int> Sorted(std::vector<int> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(AttrPTkTest, PaperFig2ExampleWithThresholdPointFour) {
  // Section 4.2: with p = 0.4 the PT-1 answer is {t1}, but PT-2 and PT-3
  // both return {t1, t2, t3} (weak containment, exact-k violations).
  EXPECT_EQ(Sorted(AttrPTk(PaperFig2(), 1, 0.4)), (std::vector<int>{1}));
  EXPECT_EQ(Sorted(AttrPTk(PaperFig2(), 2, 0.4)),
            (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(Sorted(AttrPTk(PaperFig2(), 3, 0.4)),
            (std::vector<int>{1, 2, 3}));
}

TEST(AttrPTkTest, HighThresholdCanReturnEmpty) {
  EXPECT_TRUE(AttrPTk(PaperFig2(), 1, 0.95).empty());
}

TEST(AttrPTkTest, ThresholdOneKeepsOnlyCertainMembers) {
  AttrRelation rel({
      {0, {{100.0, 1.0}}},
      {1, {{50.0, 0.5}, {60.0, 0.5}}},
      {2, {{10.0, 1.0}}},
  });
  EXPECT_EQ(Sorted(AttrPTk(rel, 1, 1.0)), (std::vector<int>{0}));
  EXPECT_EQ(Sorted(AttrPTk(rel, 2, 1.0)), (std::vector<int>{0, 1}));
}

TEST(AttrPTkTest, OrderedByDescendingProbability) {
  const std::vector<int> answer = AttrPTk(PaperFig2(), 2, 0.1);
  // top-2 probabilities: t2 (.84) > t3 (.76) > t1 (.4).
  EXPECT_EQ(answer, (std::vector<int>{2, 3, 1}));
}

TEST(TuplePTkTest, ThresholdSweepIsMonotone) {
  Rng rng(1);
  TupleRelation rel = testing_util::RandomSmallTuple(rng, 8);
  size_t prev = 1u << 20;
  for (double p : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const size_t size = TuplePTk(rel, 3, p).size();
    EXPECT_LE(size, prev);
    prev = size;
  }
}

TEST(AttrGlobalTopKTest, PaperFig2ContainmentCounterexample) {
  // Section 4.2: top-1 is t1, but top-2 is (t2, t3).
  EXPECT_EQ(AttrGlobalTopK(PaperFig2(), 1), (std::vector<int>{1}));
  EXPECT_EQ(AttrGlobalTopK(PaperFig2(), 2), (std::vector<int>{2, 3}));
}

TEST(TupleGlobalTopKTest, PaperFig4ContainmentCounterexample) {
  // Section 4.2: top-1 is t1, but top-2 is (t3, t2).
  EXPECT_EQ(TupleGlobalTopK(PaperFig4(), 1), (std::vector<int>{1}));
  EXPECT_EQ(TupleGlobalTopK(PaperFig4(), 2), (std::vector<int>{3, 2}));
}

TEST(GlobalTopKTest, AlwaysReturnsExactlyKWhenPossible) {
  Rng rng(2);
  TupleRelation trel = testing_util::RandomSmallTuple(rng, 9);
  AttrRelation arel = testing_util::RandomSmallAttr(rng, 7, 3);
  for (int k = 1; k <= 6; ++k) {
    EXPECT_EQ(static_cast<int>(TupleGlobalTopK(trel, k).size()),
              std::min(k, trel.size()));
    EXPECT_EQ(static_cast<int>(AttrGlobalTopK(arel, k).size()),
              std::min(k, arel.size()));
  }
}

TEST(GlobalTopKTest, TopNIncludesEveryTuple) {
  Rng rng(3);
  AttrRelation rel = testing_util::RandomSmallAttr(rng, 6, 2);
  EXPECT_EQ(Sorted(AttrGlobalTopK(rel, 6)),
            (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(GlobalTopKTest, AgreesWithTopKProbabilities) {
  Rng rng(4);
  TupleRelation rel = testing_util::RandomSmallTuple(rng, 8);
  const int k = 3;
  const std::vector<int> answer = TupleGlobalTopK(rel, k);
  const std::vector<double> probs = TupleTopKProbabilities(rel, k);
  // The k-th reported tuple's probability must be >= every unreported one.
  double kth = 2.0;
  for (int id : answer) {
    for (int i = 0; i < rel.size(); ++i) {
      if (rel.tuple(i).id == id) kth = std::min(kth, probs[static_cast<size_t>(i)]);
    }
  }
  for (int i = 0; i < rel.size(); ++i) {
    const bool reported =
        std::find(answer.begin(), answer.end(), rel.tuple(i).id) !=
        answer.end();
    if (!reported) {
      EXPECT_LE(probs[static_cast<size_t>(i)], kth + 1e-9);
    }
  }
}

TEST(TuplePTkPrunedTest, MatchesUnprunedOnPaperExample) {
  for (double threshold : {0.1, 0.3, 0.5, 0.9}) {
    const PTkPruneResult pruned = TuplePTkPruned(PaperFig4(), 2, threshold);
    EXPECT_EQ(pruned.ids, TuplePTk(PaperFig4(), 2, threshold))
        << "threshold " << threshold;
    EXPECT_LE(pruned.accessed, 4);
  }
}

TEST(TuplePTkPrunedTest, MatchesUnprunedOnRandomInstances) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    TupleRelation rel = testing_util::RandomSmallTuple(rng, 10);
    for (int k : {1, 3, 6}) {
      for (double threshold : {0.05, 0.3, 0.7}) {
        for (TiePolicy ties :
             {TiePolicy::kStrictGreater, TiePolicy::kBreakByIndex}) {
          EXPECT_EQ(TuplePTkPruned(rel, k, threshold, ties).ids,
                    TuplePTk(rel, k, threshold, ties))
              << "k=" << k << " p=" << threshold;
        }
      }
    }
  }
}

TEST(TuplePTkPrunedTest, StopsEarlyOnLargeRelations) {
  TupleGenConfig config;
  config.num_tuples = 5000;
  config.prob_lo = 0.5;
  config.seed = 12;
  TupleRelation rel = GenerateTupleRelation(config);
  const PTkPruneResult pruned = TuplePTkPruned(rel, 20, 0.5);
  EXPECT_LT(pruned.accessed, rel.size() / 10);
  EXPECT_EQ(pruned.ids, TuplePTk(rel, 20, 0.5));
}

TEST(TuplePTkPrunedTest, HigherThresholdPrunesEarlier) {
  TupleGenConfig config;
  config.num_tuples = 5000;
  config.prob_lo = 0.3;
  config.seed = 13;
  TupleRelation rel = GenerateTupleRelation(config);
  const int low = TuplePTkPruned(rel, 20, 0.05).accessed;
  const int high = TuplePTkPruned(rel, 20, 0.8).accessed;
  EXPECT_LE(high, low);
}

TEST(TuplePTkPrunedDeathTest, RejectsBadArguments) {
  EXPECT_DEATH(TuplePTkPruned(PaperFig4(), 0, 0.5), "k must be >= 1");
  EXPECT_DEATH(TuplePTkPruned(PaperFig4(), 1, 0.0), "threshold");
}

TEST(PTkGlobalTopKDeathTest, RejectsBadArguments) {
  EXPECT_DEATH(AttrPTk(PaperFig2(), 1, 0.0), "threshold");
  EXPECT_DEATH(AttrPTk(PaperFig2(), 1, 1.5), "threshold");
  EXPECT_DEATH(AttrGlobalTopK(PaperFig2(), 0), "k must be >= 1");
  EXPECT_DEATH(TupleGlobalTopK(PaperFig4(), -3), "k must be >= 1");
}

}  // namespace
}  // namespace urank
