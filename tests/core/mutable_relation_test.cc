// Unit tests for the mutable stores (core/engine/mutable_relation.h):
// mutation contracts and rollback, epoch lifecycle, snapshot isolation,
// delta consolidation and compaction bookkeeping. The bit-identity of
// published epochs against from-scratch prepares is the epoch-identity
// suite's job (epoch_identity_test.cc); here we pin the store mechanics.

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "core/engine/mutable_relation.h"
#include "core/engine/query_engine.h"
#include "model/attr_model.h"
#include "model/tuple_model.h"

namespace urank {
namespace {

TLTuple T(int id, double score, double prob) {
  TLTuple t;
  t.id = id;
  t.score = score;
  t.prob = prob;
  return t;
}

AttrTuple A(int id, std::vector<ScoreValue> pdf) {
  AttrTuple t;
  t.id = id;
  t.pdf = std::move(pdf);
  return t;
}

TEST(MutableTupleRelationTest, ConstructorPublishesEpochOne) {
  MutableTupleRelation store;
  EXPECT_EQ(store.epoch(), 1u);
  EXPECT_EQ(store.live_size(), 0);
  TupleEpochSnapshot snap = store.Snapshot();
  ASSERT_NE(snap.prepared, nullptr);
  EXPECT_EQ(snap.epoch, 1u);
  EXPECT_EQ(snap.prepared->size(), 0);
}

TEST(MutableTupleRelationTest, SeededConstructorPreservesContents) {
  std::vector<TLTuple> tuples = {T(7, 3.0, 0.5), T(3, 9.0, 0.25),
                                 T(5, 6.0, 0.4)};
  std::vector<std::vector<int>> rules = {{0, 2}};
  TupleRelation rel(tuples, rules);
  MutableTupleRelation store(rel);
  EXPECT_EQ(store.epoch(), 1u);
  EXPECT_EQ(store.live_size(), 3);
  TupleEpochSnapshot snap = store.Snapshot();
  ASSERT_EQ(snap.prepared->size(), 3);
  // Arrival order is relation index order.
  EXPECT_EQ(snap.prepared->relation().tuple(0).id, 7);
  EXPECT_EQ(snap.prepared->relation().tuple(1).id, 3);
  EXPECT_EQ(snap.prepared->relation().tuple(2).id, 5);
  // One explicit rule plus the auto-appended singleton for tuple 3.
  EXPECT_EQ(snap.prepared->relation().num_rules(), 2);
}

TEST(MutableTupleRelationTest, MutationsInvisibleUntilPublish) {
  MutableTupleRelation store;
  ASSERT_TRUE(store.Insert(T(1, 10.0, 0.5), -1, nullptr));
  EXPECT_TRUE(store.dirty());
  EXPECT_EQ(store.live_size(), 1);
  // Readers still see epoch 1 (empty) until Publish.
  EXPECT_EQ(store.Snapshot().prepared->size(), 0);
  TupleEpochSnapshot snap = store.Publish();
  EXPECT_EQ(snap.epoch, 2u);
  EXPECT_EQ(snap.prepared->size(), 1);
  EXPECT_FALSE(store.dirty());
}

TEST(MutableTupleRelationTest, PublishWithoutPendingMutationsIsIdempotent) {
  MutableTupleRelation store;
  ASSERT_TRUE(store.Insert(T(1, 10.0, 0.5), -1, nullptr));
  const TupleEpochSnapshot first = store.Publish();
  const TupleEpochSnapshot second = store.Publish();
  EXPECT_EQ(second.epoch, first.epoch);
  EXPECT_EQ(second.prepared.get(), first.prepared.get());
}

TEST(MutableTupleRelationTest, SnapshotIsolationAcrossPublishes) {
  MutableTupleRelation store;
  ASSERT_TRUE(store.Insert(T(1, 10.0, 0.5), -1, nullptr));
  store.Publish();
  TupleEpochSnapshot before = store.Snapshot();
  ASSERT_TRUE(store.Insert(T(2, 20.0, 0.5), -1, nullptr));
  store.Publish();
  // The old snapshot still reads its own epoch's contents.
  EXPECT_EQ(before.epoch, 2u);
  EXPECT_EQ(before.prepared->size(), 1);
  EXPECT_EQ(store.Snapshot().epoch, 3u);
  EXPECT_EQ(store.Snapshot().prepared->size(), 2);
}

TEST(MutableTupleRelationTest, RejectsDuplicateLiveId) {
  MutableTupleRelation store;
  ASSERT_TRUE(store.Insert(T(1, 10.0, 0.5), -1, nullptr));
  std::string error;
  EXPECT_FALSE(store.Insert(T(1, 5.0, 0.5), -1, &error));
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
  // The id becomes insertable again once the live holder dies.
  ASSERT_TRUE(store.Delete(1, nullptr));
  EXPECT_TRUE(store.Insert(T(1, 5.0, 0.5), -1, nullptr));
}

TEST(MutableTupleRelationTest, RejectsInvalidTuplePayloads) {
  MutableTupleRelation store;
  std::string error;
  EXPECT_FALSE(store.Insert(T(1, 10.0, 0.0), -1, &error));
  EXPECT_FALSE(store.Insert(T(1, 10.0, 1.5), -1, &error));
  EXPECT_FALSE(
      store.Insert(T(1, std::nan(""), 0.5), -1, &error));
  EXPECT_FALSE(store.Delete(42, &error));
  EXPECT_NE(error.find("42"), std::string::npos) << error;
  EXPECT_FALSE(store.Update(T(42, 1.0, 0.5), -1, &error));
  EXPECT_EQ(store.live_size(), 0);
}

TEST(MutableTupleRelationTest, RuleMassGateMatchesModelContract) {
  MutableTupleRelation store;
  ASSERT_TRUE(store.Insert(T(1, 10.0, 0.6), 7, nullptr));
  ASSERT_TRUE(store.Insert(T(2, 9.0, 0.4), 7, nullptr));  // sum = 1.0: ok
  std::string error;
  EXPECT_FALSE(store.Insert(T(3, 8.0, 0.1), 7, &error));
  EXPECT_NE(error.find("rule"), std::string::npos) << error;
  // Freeing mass in the rule re-admits the insert.
  ASSERT_TRUE(store.Delete(2, nullptr));
  EXPECT_TRUE(store.Insert(T(3, 8.0, 0.1), 7, nullptr));
  // Publishing must not abort in TupleRelation's validation.
  TupleEpochSnapshot snap = store.Publish();
  EXPECT_EQ(snap.prepared->size(), 2);
  EXPECT_EQ(snap.prepared->relation().num_rules(), 1);
}

TEST(MutableTupleRelationTest, UpdateMovesTupleBetweenRules) {
  MutableTupleRelation store;
  ASSERT_TRUE(store.Insert(T(1, 10.0, 0.9), 1, nullptr));
  ASSERT_TRUE(store.Insert(T(2, 9.0, 0.9), 2, nullptr));
  // Moving tuple 1 into rule 2 would push rule 2's mass to 1.8: rejected,
  // and the rollback must leave tuple 1 alive in rule 1.
  std::string error;
  EXPECT_FALSE(store.Update(T(1, 10.0, 0.9), 2, &error));
  EXPECT_EQ(store.live_size(), 2);
  EXPECT_TRUE(store.Update(T(1, 10.0, 0.05), 2, nullptr));
  TupleEpochSnapshot snap = store.Publish();
  ASSERT_EQ(snap.prepared->size(), 2);
  // Rule numbering follows first live appearance in arrival order: the
  // update re-inserted tuple 1 at the tail, so rule 2 (holding tuple 2)
  // is now rule 0 and holds both tuples.
  EXPECT_EQ(snap.prepared->relation().num_rules(), 1);
}

TEST(MutableTupleRelationTest, ApplyIsAllOrNothing) {
  MutableTupleRelation store;
  ASSERT_TRUE(store.Insert(T(1, 10.0, 0.5), -1, nullptr));
  store.Publish();

  std::vector<TupleMutation> batch(3);
  batch[0].op = TupleMutation::Op::kInsert;
  batch[0].tuple = T(2, 9.0, 0.5);
  batch[1].op = TupleMutation::Op::kDelete;
  batch[1].id = 1;
  batch[2].op = TupleMutation::Op::kInsert;
  batch[2].tuple = T(2, 8.0, 0.5);  // duplicate of batch[0]: fails

  std::string error;
  EXPECT_FALSE(store.Apply(batch, &error));
  EXPECT_NE(error.find("op 2"), std::string::npos) << error;
  // Rolled back wholesale: tuple 1 alive, tuple 2 absent, nothing dirty
  // beyond the already-published state.
  EXPECT_EQ(store.live_size(), 1);
  TupleEpochSnapshot snap = store.Publish();
  ASSERT_EQ(snap.prepared->size(), 1);
  EXPECT_EQ(snap.prepared->relation().tuple(0).id, 1);

  batch[2].tuple.id = 3;
  EXPECT_TRUE(store.Apply(batch, &error)) << error;
  EXPECT_EQ(store.live_size(), 2);
}

TEST(MutableTupleRelationTest, DeltaConsolidationAndCompactionCounters) {
  MutableRelationOptions options;
  options.delta_merge_threshold = 4;
  options.compact_min_dead = 2;
  MutableTupleRelation store(options);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(store.Insert(T(i, 100.0 - i, 0.5), -1, nullptr));
  }
  store.Publish();  // 8 >= 4: consolidates
  EXPECT_GE(store.delta_merges(), 1u);
  const std::uint64_t merges_before = store.delta_merges();
  ASSERT_TRUE(store.Insert(T(100, 50.0, 0.5), -1, nullptr));
  store.Publish();  // 1 < 4: merged on the fly, not consolidated
  EXPECT_EQ(store.delta_merges(), merges_before);

  // Kill 7 of the 9 live entries so the dead outnumber the live (7 > 6
  // after the four fresh inserts); the next consolidation compacts.
  for (int i = 0; i < 7; ++i) ASSERT_TRUE(store.Delete(i, nullptr));
  for (int i = 200; i < 204; ++i) {
    ASSERT_TRUE(store.Insert(T(i, 10.0 + i, 0.5), -1, nullptr));
  }
  TupleEpochSnapshot snap = store.Publish();
  EXPECT_EQ(store.compactions(), 1u);
  EXPECT_EQ(snap.prepared->size(), 6);
  EXPECT_EQ(store.live_size(), 6);
}

TEST(MutableTupleRelationTest, EnsureEpochAtLeastOnlyRaises) {
  MutableTupleRelation store;
  store.EnsureEpochAtLeast(10);
  EXPECT_EQ(store.epoch(), 10u);
  store.EnsureEpochAtLeast(4);
  EXPECT_EQ(store.epoch(), 10u);
  ASSERT_TRUE(store.Insert(T(1, 1.0, 0.5), -1, nullptr));
  EXPECT_EQ(store.Publish().epoch, 11u);
}

TEST(MutableAttrRelationTest, InsertDeleteUpdateLifecycle) {
  MutableAttrRelation store;
  EXPECT_EQ(store.epoch(), 1u);
  ASSERT_TRUE(store.Insert(A(1, {{10.0, 0.5}, {20.0, 0.5}}), nullptr));
  ASSERT_TRUE(store.Insert(A(2, {{15.0, 1.0}}), nullptr));
  AttrEpochSnapshot snap = store.Publish();
  EXPECT_EQ(snap.epoch, 2u);
  ASSERT_EQ(snap.prepared->size(), 2);

  ASSERT_TRUE(store.Update(A(1, {{30.0, 1.0}}), nullptr));
  ASSERT_TRUE(store.Delete(2, nullptr));
  snap = store.Publish();
  EXPECT_EQ(snap.epoch, 3u);
  ASSERT_EQ(snap.prepared->size(), 1);
  EXPECT_EQ(snap.prepared->relation().tuple(0).id, 1);
  EXPECT_EQ(snap.prepared->relation().tuple(0).pdf.size(), 1u);
}

TEST(MutableAttrRelationTest, RejectsInvalidPdfs) {
  MutableAttrRelation store;
  std::string error;
  EXPECT_FALSE(store.Insert(A(1, {}), &error));
  EXPECT_FALSE(store.Insert(A(1, {{10.0, 0.5}}), &error));  // mass != 1
  EXPECT_FALSE(
      store.Insert(A(1, {{10.0, 0.5}, {10.0, 0.5}}), &error));  // dup value
  EXPECT_FALSE(store.Delete(1, &error));
  EXPECT_EQ(store.live_size(), 0);
  EXPECT_TRUE(store.Insert(A(1, {{10.0, 0.5}, {20.0, 0.5}}), &error))
      << error;
}

TEST(MutableAttrRelationTest, ApplyRollsBackOnFailure) {
  MutableAttrRelation store;
  ASSERT_TRUE(store.Insert(A(1, {{10.0, 1.0}}), nullptr));
  store.Publish();
  std::vector<AttrMutation> batch(2);
  batch[0].op = AttrMutation::Op::kDelete;
  batch[0].id = 1;
  batch[1].op = AttrMutation::Op::kInsert;
  batch[1].tuple = A(2, {});  // invalid
  std::string error;
  EXPECT_FALSE(store.Apply(batch, &error));
  EXPECT_NE(error.find("op 1"), std::string::npos) << error;
  EXPECT_EQ(store.live_size(), 1);
  AttrEpochSnapshot snap = store.Publish();
  EXPECT_EQ(snap.prepared->size(), 1);
}

TEST(QueryEngineMutableTest, EngineResolvesLatestEpochPerRun) {
  auto store = std::make_shared<MutableTupleRelation>();
  QueryEngine engine(store);
  QueryRequest request;
  request.options.semantics = RankingSemantics::kExpectedRank;
  request.options.k = 2;

  QueryResult empty = engine.Run(request);
  ASSERT_TRUE(empty.status.ok()) << empty.status.message;
  EXPECT_TRUE(empty.answer.ids.empty());
  EXPECT_EQ(empty.stats.epoch, 1u);

  ASSERT_TRUE(store->Insert(T(1, 10.0, 0.5), -1, nullptr));
  ASSERT_TRUE(store->Insert(T(2, 9.0, 0.75), -1, nullptr));
  store->Publish();

  QueryResult filled = engine.Run(request);
  ASSERT_TRUE(filled.status.ok());
  EXPECT_EQ(filled.stats.epoch, 2u);
  EXPECT_EQ(filled.answer.ids.size(), 2u);
}

TEST(QueryEngineMutableTest, MinEpochGatesReadYourWrites) {
  auto store = std::make_shared<MutableTupleRelation>();
  QueryEngine engine(store);
  QueryRequest request;
  request.options.k = 1;
  request.min_epoch = 2;

  QueryResult stale = engine.Run(request);
  EXPECT_EQ(stale.status.code, QueryStatusCode::kEpochNotAvailable);
  EXPECT_EQ(stale.stats.epoch, 1u);

  ASSERT_TRUE(store->Insert(T(1, 10.0, 0.5), -1, nullptr));
  const std::uint64_t published = store->Publish().epoch;
  ASSERT_EQ(published, 2u);
  QueryResult fresh = engine.Run(request);
  EXPECT_TRUE(fresh.status.ok());
  EXPECT_EQ(fresh.stats.epoch, 2u);
}

TEST(QueryEngineMutableTest, StaticEngineReportsEpochZero) {
  std::vector<TLTuple> tuples = {T(1, 10.0, 0.5)};
  QueryEngine engine{TupleRelation(tuples, {})};
  QueryRequest request;
  request.options.k = 1;
  QueryResult result = engine.Run(request);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.stats.epoch, 0u);
  request.min_epoch = 1;
  EXPECT_EQ(engine.Run(request).status.code,
            QueryStatusCode::kEpochNotAvailable);
}

}  // namespace
}  // namespace urank
