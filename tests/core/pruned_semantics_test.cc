// Tests for the early-terminating Global-Topk and U-kRanks evaluations and
// the shared ScoreOrderSweep they are built on.

#include <vector>

#include "core/rank_distribution_tuple.h"
#include "core/semantics/global_topk.h"
#include "core/semantics/score_sweep.h"
#include "core/semantics/semantics.h"
#include "core/semantics/u_kranks.h"
#include "gen/tuple_gen.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "util/rng.h"

namespace urank {
namespace {

using testing_util::PaperFig4;
using testing_util::RandomSmallTuple;

TEST(ScoreOrderSweepTest, TopKProbabilityMatchesBatchComputation) {
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    TupleRelation rel = RandomSmallTuple(rng, 9);
    for (TiePolicy ties :
         {TiePolicy::kStrictGreater, TiePolicy::kBreakByIndex}) {
      for (int k : {1, 3, 5}) {
        const std::vector<double> batch = TupleTopKProbabilities(rel, k, ties);
        ScoreOrderSweep sweep(rel, ties);
        while (sweep.HasNext()) {
          const int i = sweep.Next();
          EXPECT_NEAR(sweep.TopKProbability(k),
                      batch[static_cast<size_t>(i)], 1e-9)
              << "tuple " << i << " k=" << k;
        }
      }
    }
  }
}

TEST(ScoreOrderSweepTest, PositionalProbabilitiesMatchBatchComputation) {
  Rng rng(2);
  TupleRelation rel = RandomSmallTuple(rng, 8);
  const auto batch = TuplePositionalProbabilities(rel);
  ScoreOrderSweep sweep(rel, TiePolicy::kBreakByIndex);
  std::vector<double> positional;
  while (sweep.HasNext()) {
    const int i = sweep.Next();
    sweep.PositionalProbabilities(5, &positional);
    for (int r = 0; r < 5; ++r) {
      EXPECT_NEAR(positional[static_cast<size_t>(r)],
                  batch[static_cast<size_t>(i)][static_cast<size_t>(r)],
                  1e-9);
    }
  }
}

TEST(ScoreOrderSweepTest, UnseenBoundsAreSound) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    TupleRelation rel = RandomSmallTuple(rng, 10);
    const int k = 3;
    const std::vector<double> probs = TupleTopKProbabilities(rel, k);
    const auto positional = TuplePositionalProbabilities(rel);
    ScoreOrderSweep sweep(rel, TiePolicy::kBreakByIndex);
    std::vector<bool> seen(static_cast<size_t>(rel.size()), false);
    while (sweep.HasNext()) {
      seen[static_cast<size_t>(sweep.Next())] = true;
      const double topk_bound = sweep.UnseenTopKBound(k);
      for (int j = 0; j < rel.size(); ++j) {
        if (seen[static_cast<size_t>(j)]) continue;
        EXPECT_LE(probs[static_cast<size_t>(j)], topk_bound + 1e-9);
        for (int r = 0; r < k; ++r) {
          EXPECT_LE(
              positional[static_cast<size_t>(j)][static_cast<size_t>(r)],
              sweep.UnseenRankBound(r) + 1e-9);
        }
      }
    }
  }
}

TEST(ScoreOrderSweepDeathTest, QueriesBeforeNext) {
  TupleRelation rel = PaperFig4();
  ScoreOrderSweep sweep(rel, TiePolicy::kBreakByIndex);
  EXPECT_DEATH(sweep.TopKProbability(1), "before Next");
}

TEST(TupleGlobalTopKPrunedTest, MatchesUnprunedOnPaperExample) {
  for (int k = 1; k <= 4; ++k) {
    const GlobalTopKPruneResult pruned = TupleGlobalTopKPruned(PaperFig4(), k);
    EXPECT_EQ(pruned.ids, TupleGlobalTopK(PaperFig4(), k)) << "k=" << k;
  }
}

TEST(TupleGlobalTopKPrunedTest, MatchesUnprunedOnRandomInstances) {
  Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    TupleRelation rel = RandomSmallTuple(rng, 10);
    for (int k : {1, 3, 6}) {
      for (TiePolicy ties :
           {TiePolicy::kStrictGreater, TiePolicy::kBreakByIndex}) {
        EXPECT_EQ(TupleGlobalTopKPruned(rel, k, ties).ids,
                  TupleGlobalTopK(rel, k, ties))
            << "k=" << k;
      }
    }
  }
}

TEST(TupleGlobalTopKPrunedTest, StopsEarlyOnLargeRelations) {
  TupleGenConfig config;
  config.num_tuples = 5000;
  config.prob_lo = 0.4;
  config.seed = 5;
  TupleRelation rel = GenerateTupleRelation(config);
  const GlobalTopKPruneResult pruned = TupleGlobalTopKPruned(rel, 20);
  EXPECT_LT(pruned.accessed, rel.size() / 10);
  EXPECT_EQ(pruned.ids, TupleGlobalTopK(rel, 20));
}

TEST(TupleUKRanksPrunedTest, MatchesUnprunedOnPaperExample) {
  for (int k = 1; k <= 4; ++k) {
    const UKRanksPruneResult pruned = TupleUKRanksPruned(PaperFig4(), k);
    EXPECT_EQ(pruned.ids, TupleUKRanks(PaperFig4(), k)) << "k=" << k;
  }
}

TEST(TupleUKRanksPrunedTest, MatchesUnprunedOnRandomInstances) {
  Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    TupleRelation rel = RandomSmallTuple(rng, 10);
    for (int k : {1, 3, 6}) {
      for (TiePolicy ties :
           {TiePolicy::kStrictGreater, TiePolicy::kBreakByIndex}) {
        EXPECT_EQ(TupleUKRanksPruned(rel, k, ties).ids,
                  TupleUKRanks(rel, k, ties))
            << "k=" << k;
      }
    }
  }
}

TEST(TupleUKRanksPrunedTest, StopsEarlyOnLargeRelations) {
  TupleGenConfig config;
  config.num_tuples = 5000;
  config.prob_lo = 0.4;
  config.seed = 7;
  TupleRelation rel = GenerateTupleRelation(config);
  const UKRanksPruneResult pruned = TupleUKRanksPruned(rel, 10);
  EXPECT_LT(pruned.accessed, rel.size() / 10);
  EXPECT_EQ(pruned.ids, TupleUKRanks(rel, 10));
}

TEST(PrunedSemanticsDeathTest, RejectBadArguments) {
  EXPECT_DEATH(TupleGlobalTopKPruned(PaperFig4(), 0), "k must be >= 1");
  EXPECT_DEATH(TupleUKRanksPruned(PaperFig4(), 0), "k must be >= 1");
}

}  // namespace
}  // namespace urank
