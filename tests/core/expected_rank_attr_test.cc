#include "core/expected_rank_attr.h"

#include <tuple>
#include <vector>

#include "gtest/gtest.h"
#include "model/possible_worlds.h"
#include "test_util.h"
#include "util/rng.h"

namespace urank {
namespace {

using testing_util::ExpectNearVectors;
using testing_util::PaperFig2;
using testing_util::RandomSmallAttr;

TEST(AttrExpectedRanksTest, PaperFig2Values) {
  // Paper Section 4.3: r(t1) = 1.2, r(t2) = 0.8, r(t3) = 1.0.
  const std::vector<double> ranks = AttrExpectedRanks(PaperFig2());
  ExpectNearVectors(ranks, {1.2, 0.8, 1.0}, 1e-12);
}

TEST(AttrExpectedRanksTest, PaperFig2TopK) {
  // Final ranking (t2, t3, t1).
  const auto top3 = AttrExpectedRankTopK(PaperFig2(), 3);
  ASSERT_EQ(top3.size(), 3u);
  EXPECT_EQ(top3[0].id, 2);
  EXPECT_EQ(top3[1].id, 3);
  EXPECT_EQ(top3[2].id, 1);
  const auto top1 = AttrExpectedRankTopK(PaperFig2(), 1);
  ASSERT_EQ(top1.size(), 1u);
  EXPECT_EQ(top1[0].id, 2);
}

TEST(AttrExpectedRanksTest, BruteForceMatchesPaperToo) {
  ExpectNearVectors(AttrExpectedRanksBruteForce(PaperFig2()),
                    {1.2, 0.8, 1.0}, 1e-12);
}

TEST(AttrExpectedRanksTest, CertainDataReducesToSortOrder) {
  // Deterministic scores: expected rank = number of higher-scored tuples.
  AttrRelation rel({
      {0, {{50.0, 1.0}}},
      {1, {{90.0, 1.0}}},
      {2, {{70.0, 1.0}}},
  });
  ExpectNearVectors(AttrExpectedRanks(rel), {2.0, 0.0, 1.0}, 1e-12);
}

TEST(AttrExpectedRanksTest, SingleTupleHasRankZero) {
  AttrRelation rel({{7, {{3.0, 0.5}, {9.0, 0.5}}}});
  ExpectNearVectors(AttrExpectedRanks(rel), {0.0}, 1e-12);
}

TEST(AttrExpectedRanksTest, EmptyRelation) {
  EXPECT_TRUE(AttrExpectedRanks(AttrRelation()).empty());
}

TEST(AttrExpectedRanksTest, IdenticalTuplesTieUnderStrictPolicy) {
  // Two identical pdfs: each outranks the other with probability
  // Pr[X > Y] = 0.25 (strict), so both expected ranks are 0.25.
  AttrRelation rel({
      {0, {{1.0, 0.5}, {2.0, 0.5}}},
      {1, {{1.0, 0.5}, {2.0, 0.5}}},
  });
  ExpectNearVectors(AttrExpectedRanks(rel, TiePolicy::kStrictGreater),
                    {0.25, 0.25}, 1e-12);
  // By-index: ties go to the earlier tuple, so t0 gains nothing and t1
  // additionally loses the 0.5 tie mass.
  ExpectNearVectors(AttrExpectedRanks(rel, TiePolicy::kBreakByIndex),
                    {0.25, 0.75}, 1e-12);
}

struct CrossCheckParam {
  int n;
  int max_s;
  uint64_t seed;
};

class AttrExpectedRankCrossCheck
    : public ::testing::TestWithParam<CrossCheckParam> {};

TEST_P(AttrExpectedRankCrossCheck, FastEqualsBruteForceEqualsEnumeration) {
  const CrossCheckParam param = GetParam();
  Rng rng(param.seed);
  for (int trial = 0; trial < 8; ++trial) {
    AttrRelation rel = RandomSmallAttr(rng, param.n, param.max_s);
    for (TiePolicy ties :
         {TiePolicy::kStrictGreater, TiePolicy::kBreakByIndex}) {
      const std::vector<double> fast = AttrExpectedRanks(rel, ties);
      const std::vector<double> brute = AttrExpectedRanksBruteForce(rel, ties);
      const std::vector<double> worlds =
          AttrExpectedRanksByEnumeration(rel, ties);
      ExpectNearVectors(fast, brute, 1e-9);
      ExpectNearVectors(fast, worlds, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AttrExpectedRankCrossCheck,
    ::testing::Values(CrossCheckParam{1, 3, 11}, CrossCheckParam{2, 2, 12},
                      CrossCheckParam{4, 3, 13}, CrossCheckParam{6, 2, 14},
                      CrossCheckParam{7, 3, 15}, CrossCheckParam{8, 2, 16}));

TEST(AttrExpectedRanksTest, SumOfRanksIsInvariant) {
  // Σ_i r(t_i) = Σ_{i≠j} Pr[X_j > X_i]; under kBreakByIndex every ordered
  // pair resolves exactly one way, so the sum is N(N-1)/2.
  Rng rng(20);
  AttrRelation rel = RandomSmallAttr(rng, 7, 3);
  const std::vector<double> ranks =
      AttrExpectedRanks(rel, TiePolicy::kBreakByIndex);
  double sum = 0.0;
  for (double r : ranks) sum += r;
  EXPECT_NEAR(sum, 7.0 * 6.0 / 2.0, 1e-9);
}

TEST(AttrExpectedRankTopKTest, KLargerThanNReturnsAll) {
  const auto all = AttrExpectedRankTopK(PaperFig2(), 10);
  EXPECT_EQ(all.size(), 3u);
}

TEST(AttrExpectedRankTopKTest, StatisticsAreSorted) {
  Rng rng(21);
  AttrRelation rel = RandomSmallAttr(rng, 8, 3);
  const auto topk = AttrExpectedRankTopK(rel, 5);
  for (size_t i = 1; i < topk.size(); ++i) {
    EXPECT_LE(topk[i - 1].statistic, topk[i].statistic);
  }
}

TEST(AttrExpectedRankTopKDeathTest, RejectsNonPositiveK) {
  EXPECT_DEATH(AttrExpectedRankTopK(PaperFig2(), 0), "k must be >= 1");
}

}  // namespace
}  // namespace urank
