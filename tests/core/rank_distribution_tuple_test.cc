#include "core/rank_distribution_tuple.h"

#include <span>
#include <vector>

#include "gtest/gtest.h"
#include "model/possible_worlds.h"
#include "test_util.h"
#include "util/rng.h"

namespace urank {
namespace {

using testing_util::ExpectNearVectors;
using testing_util::PaperFig4;
using testing_util::RandomSmallTuple;

TEST(TupleRankDistributionTest, PaperFig4T4) {
  // Paper Section 7.1: rank(t4) = {(0,0), (1,0.3), (2,0.5), (3,0.2)}.
  const auto dists = TupleRankDistributions(PaperFig4());
  ExpectNearVectors(dists[3], {0.0, 0.3, 0.5, 0.2, 0.0}, 1e-12);
}

TEST(TupleRankDistributionTest, PaperFig4AllTuples) {
  const auto dists = TupleRankDistributions(PaperFig4());
  // t1: present (.4) -> rank 0; absent -> |W| of worlds w3 (.3, size 2)
  // and w4 (.3, size 2): rank 2.
  ExpectNearVectors(dists[0], {0.4, 0.0, 0.6, 0.0, 0.0}, 1e-12);
  // t3 (p=1): rank = #appearing higher-scored of t1, t2.
  ExpectNearVectors(dists[2], {0.3, 0.5, 0.2, 0.0, 0.0}, 1e-12);
}

TEST(TupleRankDistributionTest, RowsSumToOne) {
  Rng rng(1);
  TupleRelation rel = RandomSmallTuple(rng, 9);
  for (const auto& row : TupleRankDistributions(rel)) {
    double sum = 0.0;
    for (double p : row) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(TuplePositionalProbabilitiesTest, RowsSumToPresenceProbability) {
  Rng rng(2);
  TupleRelation rel = RandomSmallTuple(rng, 9);
  const auto pos = TuplePositionalProbabilities(rel);
  for (int i = 0; i < rel.size(); ++i) {
    double sum = 0.0;
    for (double p : pos[static_cast<size_t>(i)]) sum += p;
    EXPECT_NEAR(sum, rel.tuple(i).prob, 1e-9);
  }
}

TEST(TuplePositionalProbabilitiesTest, CertainIndependentTuples) {
  TupleRelation rel = TupleRelation::Independent(
      {{0, 30.0, 1.0}, {1, 20.0, 1.0}, {2, 10.0, 1.0}});
  const auto pos = TuplePositionalProbabilities(rel);
  for (int i = 0; i < 3; ++i) {
    for (int r = 0; r <= 3; ++r) {
      EXPECT_NEAR(pos[static_cast<size_t>(i)][static_cast<size_t>(r)],
                  r == i ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST(TupleRankDistributionTest, MeanMatchesExpectedRank) {
  Rng rng(3);
  TupleRelation rel = RandomSmallTuple(rng, 8);
  const auto dists = TupleRankDistributions(rel, TiePolicy::kBreakByIndex);
  const auto expected =
      TupleExpectedRanksByEnumeration(rel, TiePolicy::kBreakByIndex);
  for (int i = 0; i < rel.size(); ++i) {
    double mean = 0.0;
    const auto& row = dists[static_cast<size_t>(i)];
    for (size_t r = 0; r < row.size(); ++r) {
      mean += static_cast<double>(r) * row[r];
    }
    EXPECT_NEAR(mean, expected[static_cast<size_t>(i)], 1e-9);
  }
}

TEST(TupleRankDistributionTest, StreamingFormAgreesWithMatrixForm) {
  Rng rng(4);
  TupleRelation rel = RandomSmallTuple(rng, 10);
  const auto matrix = TupleRankDistributions(rel);
  int visited = 0;
  ForEachTupleRankDistribution(
      rel, TiePolicy::kBreakByIndex,
      [&](int i, std::span<const double> dist) {
        ++visited;
        ExpectNearVectors(dist, matrix[static_cast<size_t>(i)], 1e-12);
      });
  EXPECT_EQ(visited, rel.size());
}

struct TupleDistParam {
  int n;
  uint64_t seed;
};

class TupleRankDistributionCrossCheck
    : public ::testing::TestWithParam<TupleDistParam> {};

TEST_P(TupleRankDistributionCrossCheck, MatchesEnumeration) {
  const TupleDistParam param = GetParam();
  Rng rng(param.seed);
  for (int trial = 0; trial < 6; ++trial) {
    TupleRelation rel = RandomSmallTuple(rng, param.n);
    for (TiePolicy ties :
         {TiePolicy::kStrictGreater, TiePolicy::kBreakByIndex}) {
      const auto dp = TupleRankDistributions(rel, ties);
      const auto worlds = TupleRankDistributionsByEnumeration(rel, ties);
      ASSERT_EQ(dp.size(), worlds.size());
      for (size_t i = 0; i < dp.size(); ++i) {
        ExpectNearVectors(dp[i], worlds[i], 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TupleRankDistributionCrossCheck,
    ::testing::Values(TupleDistParam{1, 51}, TupleDistParam{3, 52},
                      TupleDistParam{5, 53}, TupleDistParam{8, 54},
                      TupleDistParam{10, 55}));

class TuplePositionalCrossCheck
    : public ::testing::TestWithParam<TupleDistParam> {};

TEST_P(TuplePositionalCrossCheck, MatchesEnumeration) {
  const TupleDistParam param = GetParam();
  Rng rng(param.seed);
  for (int trial = 0; trial < 6; ++trial) {
    TupleRelation rel = RandomSmallTuple(rng, param.n);
    for (TiePolicy ties :
         {TiePolicy::kStrictGreater, TiePolicy::kBreakByIndex}) {
      const auto dp = TuplePositionalProbabilities(rel, ties);
      // Enumerate: Pr[present and rank r].
      std::vector<std::vector<double>> worlds(
          static_cast<size_t>(rel.size()),
          std::vector<double>(static_cast<size_t>(rel.size()) + 1, 0.0));
      ForEachTupleWorld(rel, [&](const std::vector<bool>& present,
                                 double prob) {
        for (int i = 0; i < rel.size(); ++i) {
          if (!present[static_cast<size_t>(i)]) continue;
          worlds[static_cast<size_t>(i)][static_cast<size_t>(
              RankInTupleWorld(rel, present, i, ties))] += prob;
        }
      });
      for (size_t i = 0; i < dp.size(); ++i) {
        ExpectNearVectors(dp[i], worlds[i], 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TuplePositionalCrossCheck,
    ::testing::Values(TupleDistParam{2, 61}, TupleDistParam{4, 62},
                      TupleDistParam{7, 63}, TupleDistParam{9, 64}));

}  // namespace
}  // namespace urank
