// Bit-identity of the parallel DP kernels: every parallel-capable entry
// point must return *exactly* the same bytes for any ParallelismOptions —
// threads 1, 2, 8 (oversubscribed or not), any min_parallel_items — and
// must match the serial facade. The chunk grid is a pure function of the
// relation, per-chunk subproblems are self-contained, and reductions fold
// in chunk index order, so these comparisons use EXPECT_EQ on doubles, not
// tolerances. This file runs under TSan in CI to also certify the chunk
// protocol data-race-free.

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "common/scenario_gen.h"
#include "core/engine/prepared_builder.h"
#include "core/engine/query_engine.h"
#include "core/expected_rank_attr.h"
#include "core/expected_rank_tuple.h"
#include "core/internal/shard_plan.h"
#include "core/quantile_rank.h"
#include "core/rank_distribution_attr.h"
#include "core/rank_distribution_tuple.h"
#include "core/semantics/semantics.h"
#include "core/semantics/u_kranks.h"
#include "gen/attr_gen.h"
#include "gen/tuple_gen.h"
#include "model/tuple_model.h"
#include "util/parallel.h"
#include "util/topology.h"

namespace urank {
namespace {

ParallelismOptions Par(int threads) {
  ParallelismOptions par;
  par.threads = threads;
  par.min_parallel_items = 1;  // parallelize even the test-sized inputs
  return par;
}

ParallelismOptions Par(int threads, PlacementPolicy placement) {
  ParallelismOptions par = Par(threads);
  par.placement = placement;
  return par;
}

constexpr PlacementPolicy kAllPlacements[] = {PlacementPolicy::kFlat,
                                              PlacementPolicy::kNodeLocal,
                                              PlacementPolicy::kSpread};

// Synthetic planning topologies the sharded kernels are swept under: the
// machine's own shape plus a two-node and an asymmetric four-node box.
// Shard homes and placement schedules change with the shape; values must
// not. The pool itself is built once from the machine topology — these
// affect planning (home nodes, clamps, spread ranges) only, which is
// exactly the layer that must never leak into results.
constexpr const char* kSyntheticTopologies[] = {"0-3;4-7",
                                                "0-1;2-3;4-5;6-11"};

// Swaps the planning topology for the test body and restores a detected
// topology on destruction so later tests see the machine again.
class ScopedPlanningTopology {
 public:
  explicit ScopedPlanningTopology(const char* spec) {
    Topology topo = Topology::SingleNode(1);
    std::string error;
    EXPECT_TRUE(Topology::Parse(spec, &topo, &error)) << error;
    SetGlobalTopologyForTest(topo);
  }
  ~ScopedPlanningTopology() { SetGlobalTopologyForTest(Topology::Detect()); }
};

// A relation built to stress the chunked sweep: large enough for several
// chunks, long runs of tied scores that straddle naive chunk boundaries,
// a few hundred wide exclusion rules (so the Poisson-binomial support
// stays small and the test stays fast), plus high-probability singletons
// including certain (p = 1) tuples.
TupleRelation MakeClusteredTupleRelation(int n, int num_shared_rules,
                                         int num_singletons) {
  std::vector<TLTuple> tuples(static_cast<size_t>(n));
  std::vector<std::vector<int>> rules(static_cast<size_t>(num_shared_rules));
  for (int i = 0; i < n; ++i) {
    TLTuple& t = tuples[static_cast<size_t>(i)];
    t.id = 2 * i + 5;  // non-contiguous ids catch id/index mixups
    t.score = static_cast<double>((i * 7919) % 97);  // ~n/97-long tie runs
    if (i < num_singletons) {
      t.prob = (i % 10 == 0) ? 1.0 : 0.25 + 0.7 * ((i * 13) % 101) / 101.0;
    } else {
      rules[static_cast<size_t>(i % num_shared_rules)].push_back(i);
      t.prob = 0.0;  // filled below once member counts are known
    }
  }
  for (const std::vector<int>& members : rules) {
    const double p = 0.95 / static_cast<double>(members.size());
    for (int i : members) tuples[static_cast<size_t>(i)].prob = p;
  }
  return TupleRelation(std::move(tuples), std::move(rules));
}

// Exact fingerprint of a distribution row: hashes the length plus the
// (position, bit pattern) of every nonzero entry, so any single bit of
// difference anywhere in the row — including a stray nonzero among the
// zero tail — changes it. Skipping exact zeros keeps the fingerprint
// O(support) instead of O(N) on the sparse N+1-sized rank rows.
std::uint64_t RowFingerprint(std::span<const double> row) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull + row.size();
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i] == 0.0) continue;
    std::uint64_t bits = 0;
    std::memcpy(&bits, &row[i], sizeof(bits));
    h ^= i + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h ^= bits + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

class TupleKernelDeterminismTest
    : public ::testing::TestWithParam<TiePolicy> {
 protected:
  static constexpr int kN = 33000;  // 4 chunks at the default 8192 grain
  TupleRelation rel_ = MakeClusteredTupleRelation(kN, 64, 200);
};

INSTANTIATE_TEST_SUITE_P(BothTiePolicies, TupleKernelDeterminismTest,
                         ::testing::Values(TiePolicy::kBreakByIndex,
                                           TiePolicy::kStrictGreater));

TEST_P(TupleKernelDeterminismTest, RankDistributionsBitIdentical) {
  const TiePolicy ties = GetParam();
  ASSERT_GE(TupleSweepChunkCount(rel_), 2);
  const auto prepared = QueryEngine::Prepare(rel_);

  // Serial facade baseline (one-shot entry, no prepared state).
  std::vector<std::uint64_t> baseline(static_cast<size_t>(kN), 0);
  ForEachTupleRankDistribution(
      rel_, ties, [&](int i, std::span<const double> dist) {
        baseline[static_cast<size_t>(i)] = RowFingerprint(dist);
      });

  for (int threads : {1, 2, 8}) {
    std::vector<std::uint64_t> got(static_cast<size_t>(kN), 0);
    std::vector<std::uint8_t> chunk_seen(
        static_cast<size_t>(TupleSweepChunkCount(rel_)), 0);
    KernelReport report;
    ForEachTupleRankDistribution(
        rel_, prepared->rank_order(), ties, Par(threads), &report,
        [&](int chunk, int i, std::span<const double> dist) {
          got[static_cast<size_t>(i)] = RowFingerprint(dist);
          chunk_seen[static_cast<size_t>(chunk)] = 1;
        });
    EXPECT_EQ(got, baseline) << "threads=" << threads;
    EXPECT_GE(report.threads_used, 1);
    int populated = 0;
    for (std::uint8_t s : chunk_seen) populated += s;
    EXPECT_GE(populated, 2) << "grid should span several chunks";
  }
}

TEST_P(TupleKernelDeterminismTest, PositionalDistributionsBitIdentical) {
  const TiePolicy ties = GetParam();
  const auto prepared = QueryEngine::Prepare(rel_);

  std::vector<std::uint64_t> baseline(static_cast<size_t>(kN), 0);
  ForEachTuplePositionalDistribution(
      rel_, ties, [&](int i, std::span<const double> row) {
        baseline[static_cast<size_t>(i)] = RowFingerprint(row);
      });

  for (int threads : {1, 2, 8}) {
    std::vector<std::uint64_t> got(static_cast<size_t>(kN), 0);
    KernelReport report;
    ForEachTuplePositionalDistribution(
        rel_, prepared->rank_order(), ties, Par(threads), &report,
        [&](int /*chunk*/, int i, std::span<const double> row) {
          got[static_cast<size_t>(i)] = RowFingerprint(row);
        });
    EXPECT_EQ(got, baseline) << "threads=" << threads;
  }
}

TEST_P(TupleKernelDeterminismTest, PreparedSemanticsBitIdentical) {
  const TiePolicy ties = GetParam();
  constexpr int kK = 25;
  constexpr double kPhi = 0.5;

  // Serial prepared baseline. Each thread count gets its own prepared
  // object: a shared one would serve the later runs from the memoized
  // statistic cache and make the comparison vacuous.
  const auto serial = QueryEngine::Prepare(rel_);
  const std::vector<int> base_ranks = TupleQuantileRanks(*serial, kPhi, ties);
  const std::vector<double> base_probs =
      TupleTopKProbabilities(*serial, kK, ties);
  const std::vector<int> base_winners = TupleUKRanks(*serial, kK, ties);

  for (int threads : {2, 8}) {
    const auto prepared = QueryEngine::Prepare(rel_);
    KernelReport report;
    EXPECT_EQ(TupleQuantileRanks(*prepared, kPhi, ties, Par(threads), &report),
              base_ranks)
        << "threads=" << threads;
    EXPECT_EQ(
        TupleTopKProbabilities(*prepared, kK, ties, Par(threads), &report),
        base_probs)
        << "threads=" << threads;
    // UKRanks folds per-chunk argmax partials; ids must match exactly.
    const auto fresh = QueryEngine::Prepare(rel_);
    EXPECT_EQ(TupleUKRanks(*fresh, kK, ties, Par(threads), &report),
              base_winners)
        << "threads=" << threads;
  }
}

// The tentpole sweep: the sharded T-ERank must be bit-identical to the
// serial facade for every (synthetic topology × placement policy × thread
// count × shard count). The shard plan is rebuilt under each topology —
// home nodes move around — and EXPECT_EQ on the double vectors asserts
// that none of it reaches the values.
TEST_P(TupleKernelDeterminismTest, ShardedExpectedRanksBitIdentical) {
  const TiePolicy ties = GetParam();
  const std::vector<double> baseline = TupleExpectedRanks(rel_, ties);
  const auto prepared = QueryEngine::Prepare(rel_);

  for (const char* spec : kSyntheticTopologies) {
    ScopedPlanningTopology topo(spec);
    for (int max_shards : {0, 1, 4, 16}) {
      const internal::TupleShardPlan plan = internal::BuildTupleShardPlan(
          rel_, prepared->rank_order(), /*first_touch=*/false, max_shards);
      ASSERT_GE(static_cast<int>(plan.shards.size()), 1);
      for (PlacementPolicy placement : kAllPlacements) {
        for (int threads : {1, 2, 8}) {
          KernelReport report;
          EXPECT_EQ(TupleExpectedRanksSharded(rel_, plan, ties,
                                              Par(threads, placement),
                                              &report),
                    baseline)
              << "topology=" << spec << " placement=" << ToString(placement)
              << " threads=" << threads << " max_shards=" << max_shards;
          EXPECT_GE(report.threads_used, 1);
          EXPECT_GE(report.nodes_used, 1);
        }
      }
    }
  }
}

TEST_P(TupleKernelDeterminismTest, PreparedShardPlanMatchesSerialFacade) {
  const TiePolicy ties = GetParam();
  const std::vector<double> baseline = TupleExpectedRanks(rel_, ties);
  // Fresh prepared state per placement: a shared object would serve later
  // runs from the memo cache and make the comparison vacuous.
  for (PlacementPolicy placement : kAllPlacements) {
    const auto prepared = QueryEngine::Prepare(rel_);
    KernelReport report;
    EXPECT_EQ(TupleExpectedRanks(*prepared, ties, Par(8, placement), &report),
              baseline)
        << ToString(placement);
    // The top-k selection over the same statistic must agree with the
    // serial selection, ids and values both.
    const std::vector<RankedTuple> topk =
        TupleExpectedRankTopK(*prepared, 25, ties, Par(8, placement));
    const std::vector<RankedTuple> serial_topk =
        TupleExpectedRankTopK(rel_, 25, ties);
    ASSERT_EQ(topk.size(), serial_topk.size());
    for (size_t i = 0; i < topk.size(); ++i) {
      EXPECT_EQ(topk[i].id, serial_topk[i].id) << ToString(placement);
      EXPECT_EQ(topk[i].statistic, serial_topk[i].statistic)
          << ToString(placement);
    }
  }
}

TEST_P(TupleKernelDeterminismTest,
       QuantileRanksBitIdenticalAcrossPlacementsAndTopologies) {
  const TiePolicy ties = GetParam();
  const auto serial = QueryEngine::Prepare(rel_);
  const std::vector<int> baseline = TupleQuantileRanks(*serial, 0.5, ties);

  for (const char* spec : kSyntheticTopologies) {
    ScopedPlanningTopology topo(spec);
    for (PlacementPolicy placement : kAllPlacements) {
      const auto prepared = QueryEngine::Prepare(rel_);
      KernelReport report;
      EXPECT_EQ(TupleQuantileRanks(*prepared, 0.5, ties, Par(8, placement),
                                   &report),
                baseline)
          << "topology=" << spec << " placement=" << ToString(placement);
    }
  }
}

TEST(GeneratedTupleRelationDeterminismTest, QuantileRanksBitIdentical) {
  // Realistic generator output: continuous scores (every run is a
  // singleton) and ~0.8N mostly-small exclusion rules, i.e. the wide-
  // support regime where the incremental convolve/deconvolve updates and
  // the shared absent-branch deconvolution carry the most float state.
  TupleGenConfig cfg;
  cfg.num_tuples = 17000;  // 2 chunks at the default grain
  cfg.seed = 7;
  const TupleRelation rel = GenerateTupleRelation(cfg);
  ASSERT_GE(TupleSweepChunkCount(rel), 2);

  // The serial facade is the baseline; it runs the same grid with one
  // worker, so the threads = 1 case is covered without a third sweep.
  const std::vector<int> baseline =
      TupleQuantileRanks(rel, 0.5, TiePolicy::kBreakByIndex);
  const auto prepared = QueryEngine::Prepare(rel);
  KernelReport report;
  EXPECT_EQ(TupleQuantileRanks(*prepared, 0.5, TiePolicy::kBreakByIndex,
                               Par(3), &report),
            baseline);
}

class AttrKernelDeterminismTest : public ::testing::TestWithParam<TiePolicy> {
 protected:
  AttrRelation MakeRelation() {
    AttrGenConfig cfg;
    cfg.num_tuples = 160;
    cfg.seed = 3;
    return GenerateAttrRelation(cfg);
  }
};

INSTANTIATE_TEST_SUITE_P(BothTiePolicies, AttrKernelDeterminismTest,
                         ::testing::Values(TiePolicy::kBreakByIndex,
                                           TiePolicy::kStrictGreater));

TEST_P(AttrKernelDeterminismTest, RankDistributionsBitIdentical) {
  const TiePolicy ties = GetParam();
  const AttrRelation rel = MakeRelation();
  const std::vector<internal::SortedPdf> pdfs = BuildSortedPdfs(rel);

  const std::vector<std::vector<double>> baseline =
      AttrRankDistributions(rel, ties);
  for (int threads : {1, 2, 8}) {
    KernelReport report;
    EXPECT_EQ(AttrRankDistributions(rel, pdfs, ties, Par(threads), &report),
              baseline)
        << "threads=" << threads;
  }
}

TEST_P(AttrKernelDeterminismTest, ShardedExpectedRanksBitIdentical) {
  const TiePolicy ties = GetParam();
  const AttrRelation rel = MakeRelation();
  const std::vector<double> baseline = AttrExpectedRanks(rel, ties);

  for (const char* spec : kSyntheticTopologies) {
    ScopedPlanningTopology topo(spec);
    for (PlacementPolicy placement : kAllPlacements) {
      for (int threads : {1, 2, 8}) {
        const auto prepared = QueryEngine::Prepare(rel);
        KernelReport report;
        EXPECT_EQ(
            AttrExpectedRanks(*prepared, ties, Par(threads, placement),
                              &report),
            baseline)
            << "topology=" << spec << " placement=" << ToString(placement)
            << " threads=" << threads;
        EXPECT_EQ(
            AttrExpectedRankTopK(*prepared, 15, ties, Par(threads, placement)),
            AttrExpectedRankTopK(rel, 15, ties))
            << "topology=" << spec << " placement=" << ToString(placement);
      }
    }
  }
}

TEST_P(AttrKernelDeterminismTest, PreparedSemanticsBitIdentical) {
  const TiePolicy ties = GetParam();
  const AttrRelation rel = MakeRelation();
  constexpr int kK = 15;

  const auto serial = QueryEngine::Prepare(rel);
  const std::vector<int> base_ranks = AttrQuantileRanks(*serial, 0.25, ties);
  const std::vector<double> base_probs =
      AttrTopKProbabilities(*serial, kK, ties);
  const std::vector<int> base_winners = AttrUKRanks(*serial, kK, ties);

  for (int threads : {2, 8}) {
    const auto prepared = QueryEngine::Prepare(rel);
    KernelReport report;
    EXPECT_EQ(AttrQuantileRanks(*prepared, 0.25, ties, Par(threads), &report),
              base_ranks);
    EXPECT_EQ(AttrTopKProbabilities(*prepared, kK, ties, Par(threads), &report),
              base_probs);
    EXPECT_EQ(AttrUKRanks(*prepared, kK, ties, Par(threads), &report),
              base_winners);
  }
}

// Every semantics the engine can parallelize, on both models, end to end.
// kUTopk is omitted on the large tuple relation (its answer-set DP is
// serial, so thread-count independence is trivially exercised by
// query_engine_test) and on attribute relations of this size its world
// count is not enumerable.
std::vector<RankingQuery> EngineQueryMix() {
  std::vector<RankingQuery> queries;
  for (RankingSemantics s :
       {RankingSemantics::kExpectedRank, RankingSemantics::kMedianRank,
        RankingSemantics::kQuantileRank, RankingSemantics::kUKRanks,
        RankingSemantics::kPTk, RankingSemantics::kGlobalTopk,
        RankingSemantics::kExpectedScore}) {
    RankingQuery q;
    q.semantics = s;
    q.k = 20;
    q.phi = 0.3;
    q.threshold = 0.4;
    queries.push_back(q);
    q.ties = TiePolicy::kStrictGreater;
    queries.push_back(q);
  }
  return queries;
}

void ExpectSameResult(const QueryResult& got, const QueryResult& want,
                      const char* context) {
  EXPECT_EQ(got.status.code, want.status.code) << context;
  EXPECT_EQ(got.answer.ids, want.answer.ids) << context;
  EXPECT_EQ(got.answer.statistics, want.answer.statistics) << context;
}

TEST(EngineDeterminismTest, TupleAnswersBitIdenticalAcrossThreadCounts) {
  const TupleRelation rel = MakeClusteredTupleRelation(33000, 64, 200);
  const std::vector<RankingQuery> queries = EngineQueryMix();

  QueryEngine baseline(rel);
  std::vector<QueryResult> base;
  for (const RankingQuery& q : queries) base.push_back(baseline.Run(q));

  for (int threads : {2, 8}) {
    QueryEngine engine(rel);  // fresh prepared state — no cache crossover
    engine.set_parallelism(Par(threads));
    for (size_t i = 0; i < queries.size(); ++i) {
      ExpectSameResult(engine.Run(queries[i]), base[i],
                       ToString(queries[i].semantics));
    }
  }
}

TEST(EngineDeterminismTest, AttrAnswersBitIdenticalAcrossThreadCounts) {
  AttrGenConfig cfg;
  cfg.num_tuples = 160;
  cfg.seed = 3;
  const AttrRelation rel = GenerateAttrRelation(cfg);
  const std::vector<RankingQuery> queries = EngineQueryMix();

  QueryEngine baseline(rel);
  std::vector<QueryResult> base;
  for (const RankingQuery& q : queries) base.push_back(baseline.Run(q));

  for (int threads : {2, 8}) {
    QueryEngine engine(rel);
    engine.set_parallelism(Par(threads));
    for (size_t i = 0; i < queries.size(); ++i) {
      ExpectSameResult(engine.Run(queries[i]), base[i],
                       ToString(queries[i].semantics));
    }
  }
}

TEST(EngineDeterminismTest, AnswersBitIdenticalAcrossPlacementPolicies) {
  const TupleRelation rel = MakeClusteredTupleRelation(33000, 64, 200);
  const std::vector<RankingQuery> queries = EngineQueryMix();

  QueryEngine baseline(rel);
  std::vector<QueryResult> base;
  for (const RankingQuery& q : queries) base.push_back(baseline.Run(q));

  ScopedPlanningTopology topo("0-3;4-7");
  for (PlacementPolicy placement : kAllPlacements) {
    const QueryEngine engine(rel);  // fresh prepared state per placement
    for (size_t i = 0; i < queries.size(); ++i) {
      QueryRequest request;
      request.options = queries[i];
      request.parallelism = Par(8, placement);
      ExpectSameResult(engine.Run(request), base[i],
                       ToString(queries[i].semantics));
    }
  }
}

TEST(EngineDeterminismTest, NodeLocalPlacementClampsAndReportsThreads) {
  ScopedPlanningTopology topo("0-3;4-7");  // widest node: 4 cores
  const TupleRelation rel = MakeClusteredTupleRelation(33000, 64, 200);
  const QueryEngine engine(rel);

  QueryRequest request;
  request.options.semantics = RankingSemantics::kExpectedRank;
  request.options.k = 10;
  request.parallelism = Par(8, PlacementPolicy::kNodeLocal);

  const QueryResult got = engine.Run(request);
  ASSERT_TRUE(got.status.ok());
  EXPECT_TRUE(got.stats.threads_clamped);
  EXPECT_LE(got.stats.threads_used, 4);
  EXPECT_GE(got.stats.nodes_used, 1);

  // The same query under kFlat is not clamped — and returns the same
  // answer from a fresh engine.
  QueryRequest flat = request;
  flat.parallelism = Par(8, PlacementPolicy::kFlat);
  const QueryResult flat_got = QueryEngine(rel).Run(flat);
  ASSERT_TRUE(flat_got.status.ok());
  EXPECT_FALSE(flat_got.stats.threads_clamped);
  EXPECT_EQ(flat_got.answer.ids, got.answer.ids);
  EXPECT_EQ(flat_got.answer.statistics, got.answer.statistics);
}

TEST(EngineDeterminismTest, RunBatchComposesWithIntraQueryParallelism) {
  const TupleRelation rel = MakeClusteredTupleRelation(33000, 64, 200);
  const std::vector<RankingQuery> queries = EngineQueryMix();

  QueryEngine baseline(rel);
  std::vector<QueryResult> base;
  for (const RankingQuery& q : queries) base.push_back(baseline.Run(q));

  QueryEngine engine(rel);
  engine.set_parallelism(Par(4));  // intra-query chunks + inter-query batch
  const std::vector<QueryResult> got = engine.RunBatch(queries, 4);
  ASSERT_EQ(got.size(), base.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ExpectSameResult(got[i], base[i], ToString(queries[i].semantics));
  }
}

TEST(EngineDeterminismTest, StatsReportParallelExecutionThenCacheHit) {
  const TupleRelation rel = MakeClusteredTupleRelation(33000, 64, 200);
  QueryEngine engine(rel);
  engine.set_parallelism(Par(8));

  RankingQuery q;
  q.semantics = RankingSemantics::kQuantileRank;
  q.k = 10;
  q.phi = 0.5;

  const QueryResult cold = engine.Run(q);
  ASSERT_TRUE(cold.status.ok());
  EXPECT_FALSE(cold.stats.reused_cache);
  // threads_used reports observed pool participation, which is
  // scheduler-dependent: on a single-core host the caller may drain all
  // chunks before a helper claims one, so >= 1 is all that is guaranteed.
  EXPECT_GE(cold.stats.threads_used, 1);
  EXPECT_LE(cold.stats.threads_used, 8);
  EXPECT_GT(cold.stats.arena_bytes, 0u);

  const QueryResult warm = engine.Run(q);
  ASSERT_TRUE(warm.status.ok());
  EXPECT_TRUE(warm.stats.reused_cache);
  EXPECT_EQ(warm.stats.threads_used, 1);
  EXPECT_EQ(warm.stats.arena_bytes, 0u);
  EXPECT_EQ(warm.answer.ids, cold.answer.ids);
  EXPECT_EQ(warm.answer.statistics, cold.answer.statistics);
}

// --- Pruned quantile/median kernels -----------------------------------------
//
// The pruned top-k kernels must return the same bytes AND stop at the same
// stream position for every thread count, placement policy, planning
// topology and shard cap — the PR 3/8 contract extended to early
// termination: where the scan stops is a pure function of the data.

TEST(PrunedKernelDeterminismTest,
     TuplePruneBitIdenticalAcrossTopologiesAndPlacements) {
  const TupleRelation rel = MakeClusteredTupleRelation(33000, 64, 200);
  const auto baseline_prepared = QueryEngine::Prepare(rel);
  const std::vector<RankedTuple> unpruned =
      TupleQuantileRankTopK(*baseline_prepared, 10, 0.5,
                            TiePolicy::kBreakByIndex);
  const PrunedTopKResult base = TupleQuantileRankTopKPrune(
      *baseline_prepared, 10, 0.5, TiePolicy::kBreakByIndex);
  ASSERT_EQ(base.topk.size(), unpruned.size());
  for (size_t i = 0; i < unpruned.size(); ++i) {
    EXPECT_EQ(base.topk[i].id, unpruned[i].id);
    EXPECT_EQ(base.topk[i].statistic, unpruned[i].statistic);
  }

  std::vector<int> want_ids;
  std::vector<double> want_stats;
  for (const RankedTuple& rt : unpruned) {
    want_ids.push_back(rt.id);
    want_stats.push_back(rt.statistic);
  }

  for (const char* spec : kSyntheticTopologies) {
    ScopedPlanningTopology topo(spec);
    for (PlacementPolicy placement : kAllPlacements) {
      for (int threads : {1, 2, 8}) {
        const QueryEngine engine(rel);  // fresh prepared per topology
        QueryRequest request;
        request.options.semantics = RankingSemantics::kQuantileRank;
        request.options.k = 10;
        request.options.phi = 0.5;
        request.parallelism = Par(threads, placement);
        request.prune = true;
        const QueryResult got = engine.Run(request);
        ASSERT_TRUE(got.status.ok());
        EXPECT_EQ(got.answer.ids, want_ids)
            << spec << " threads=" << threads;
        EXPECT_EQ(got.answer.statistics, want_stats)
            << spec << " threads=" << threads;
        EXPECT_EQ(got.stats.prune_stop_position, base.prune_stop_position)
            << spec << " threads=" << threads;
        EXPECT_EQ(got.stats.tuples_scanned, base.tuples_scanned)
            << spec << " threads=" << threads;
      }
    }
  }
}

TEST(PrunedKernelDeterminismTest,
     AttrPruneBitIdenticalAcrossTopologiesAndPlacements) {
  const AttrRelation rel =
      testgen::ClusteredScoreAttrRelation(700, 9, 4, 33);
  const auto baseline_prepared = QueryEngine::Prepare(rel);
  const std::vector<RankedTuple> unpruned = AttrQuantileRankTopK(
      *baseline_prepared, 10, 0.5, TiePolicy::kBreakByIndex);
  const PrunedTopKResult base = AttrQuantileRankTopKPrune(
      *baseline_prepared, 10, 0.5, TiePolicy::kBreakByIndex);
  ASSERT_EQ(base.topk.size(), unpruned.size());

  for (const char* spec : kSyntheticTopologies) {
    ScopedPlanningTopology topo(spec);
    const auto prepared = QueryEngine::Prepare(rel);
    for (PlacementPolicy placement : kAllPlacements) {
      for (int threads : {1, 2, 8}) {
        KernelReport report;
        const PrunedTopKResult got = AttrQuantileRankTopKPrune(
            *prepared, 10, 0.5, TiePolicy::kBreakByIndex,
            Par(threads, placement), &report);
        EXPECT_EQ(got.prune_stop_position, base.prune_stop_position)
            << spec << " threads=" << threads;
        EXPECT_EQ(got.tuples_scanned, base.tuples_scanned)
            << spec << " threads=" << threads;
        ASSERT_EQ(got.topk.size(), unpruned.size());
        for (size_t i = 0; i < unpruned.size(); ++i) {
          EXPECT_EQ(got.topk[i].id, unpruned[i].id)
              << spec << " threads=" << threads << " pos " << i;
          EXPECT_EQ(got.topk[i].statistic, unpruned[i].statistic)
              << spec << " threads=" << threads << " pos " << i;
        }
      }
    }
  }
}

TEST(PrunedKernelDeterminismTest, PruneOnBlockedPreparationMatchesEager) {
  // Composition with the streaming builder: pruning over blocked-built
  // prepared state stops at the same position with the same answer as
  // over the eager state, for any block size.
  const TupleRelation rel = MakeClusteredTupleRelation(25000, 48, 150);
  const auto eager = QueryEngine::Prepare(rel);
  const PrunedTopKResult base =
      TupleQuantileRankTopKPrune(*eager, 10, 0.5, TiePolicy::kBreakByIndex);
  for (int block : {1024, 5000, 30000}) {
    PreparedTupleRelationBuilder builder;
    const testgen::TupleBlocks blocks = testgen::SplitIntoBlocks(rel, block);
    for (size_t b = 0; b < blocks.tuples.size(); ++b) {
      builder.AddBlock(blocks.tuples[b], blocks.rule_keys[b]);
    }
    const auto blocked = builder.Seal();
    const PrunedTopKResult got = TupleQuantileRankTopKPrune(
        *blocked, 10, 0.5, TiePolicy::kBreakByIndex);
    EXPECT_EQ(got.prune_stop_position, base.prune_stop_position)
        << "block=" << block;
    EXPECT_EQ(got.tuples_scanned, base.tuples_scanned) << "block=" << block;
    ASSERT_EQ(got.topk.size(), base.topk.size()) << "block=" << block;
    for (size_t i = 0; i < base.topk.size(); ++i) {
      EXPECT_EQ(got.topk[i].id, base.topk[i].id) << "block=" << block;
      EXPECT_EQ(got.topk[i].statistic, base.topk[i].statistic)
          << "block=" << block;
    }
  }
}

TEST(SeededShardPlanTest, RankProbOverloadMatchesGatherAcrossCaps) {
  // The pre-gathered-probs overload the builder uses must emit the same
  // plan as the gathering form for every shard cap.
  const TupleRelation rel = MakeClusteredTupleRelation(33000, 64, 200);
  const auto prepared = QueryEngine::Prepare(rel);
  const std::vector<int>& order = prepared->rank_order();
  std::vector<double> rank_probs(order.size());
  for (size_t j = 0; j < order.size(); ++j) {
    rank_probs[j] = rel.tuple(order[j]).prob;
  }
  for (int max_shards : {0, 1, 4, 16}) {
    const internal::TupleShardPlan a = internal::BuildTupleShardPlan(
        rel, order, /*first_touch=*/false, max_shards);
    const internal::TupleShardPlan b = internal::BuildTupleShardPlan(
        rel, order, &rank_probs, /*first_touch=*/false, max_shards);
    EXPECT_EQ(a.num_rules, b.num_rules);
    ASSERT_EQ(a.shards.size(), b.shards.size()) << "cap=" << max_shards;
    for (size_t s = 0; s < a.shards.size(); ++s) {
      EXPECT_EQ(a.shards[s].begin, b.shards[s].begin) << "cap=" << max_shards;
      EXPECT_EQ(a.shards[s].end, b.shards[s].end) << "cap=" << max_shards;
      EXPECT_EQ(a.shards[s].home_node, b.shards[s].home_node)
          << "cap=" << max_shards;
      EXPECT_EQ(a.shards[s].entry_prefix, b.shards[s].entry_prefix)
          << "cap=" << max_shards;
      EXPECT_EQ(a.shards[s].entry_rule_mass, b.shards[s].entry_rule_mass)
          << "cap=" << max_shards;
      EXPECT_EQ(a.shards[s].order, b.shards[s].order) << "cap=" << max_shards;
      EXPECT_EQ(a.shards[s].pref, b.shards[s].pref) << "cap=" << max_shards;
    }
  }
}

}  // namespace
}  // namespace urank
