#include "core/semantics/u_kranks.h"

#include <vector>

#include "gtest/gtest.h"
#include "model/possible_worlds.h"
#include "test_util.h"
#include "util/rng.h"

namespace urank {
namespace {

using testing_util::PaperFig2;
using testing_util::PaperFig4;

TEST(AttrUKRanksTest, PaperFig2TopThree) {
  // Section 4.2: under U-kRanks the top-3 is t1, t3, t1 — t1 appears twice
  // and t2 never (the unique-ranking counterexample).
  const std::vector<int> answer = AttrUKRanks(PaperFig2(), 3);
  EXPECT_EQ(answer, (std::vector<int>{1, 3, 1}));
}

TEST(TupleUKRanksTest, PaperFig4Positions) {
  // Section 4.2: rank 1 -> t1; rank 2 -> t3; rank 3 is a tie (t3/t4, both
  // 0.2; smaller id wins); rank 4 is unreachable -> -1.
  const std::vector<int> answer = TupleUKRanks(PaperFig4(), 4);
  ASSERT_EQ(answer.size(), 4u);
  EXPECT_EQ(answer[0], 1);
  EXPECT_EQ(answer[1], 3);
  EXPECT_EQ(answer[2], 3);  // tie with t4 broken towards smaller id
  EXPECT_EQ(answer[3], -1);
}

TEST(UKRanksTest, CertainDataIsSortOrder) {
  AttrRelation arel({
      {0, {{10.0, 1.0}}},
      {1, {{30.0, 1.0}}},
      {2, {{20.0, 1.0}}},
  });
  EXPECT_EQ(AttrUKRanks(arel, 3), (std::vector<int>{1, 2, 0}));
  TupleRelation trel = TupleRelation::Independent(
      {{0, 10.0, 1.0}, {1, 30.0, 1.0}, {2, 20.0, 1.0}});
  EXPECT_EQ(TupleUKRanks(trel, 3), (std::vector<int>{1, 2, 0}));
}

TEST(UKRanksTest, MatchesEnumerationArgmax) {
  Rng rng(1);
  for (int trial = 0; trial < 8; ++trial) {
    TupleRelation rel = testing_util::RandomSmallTuple(rng, 7);
    const int k = 4;
    const std::vector<int> fast = TupleUKRanks(rel, k);
    // Enumerate Pr[t_i present at rank r] and take argmax per rank.
    std::vector<std::vector<double>> pos(
        static_cast<size_t>(rel.size()),
        std::vector<double>(static_cast<size_t>(k), 0.0));
    ForEachTupleWorld(rel, [&](const std::vector<bool>& present,
                               double prob) {
      for (int i = 0; i < rel.size(); ++i) {
        if (!present[static_cast<size_t>(i)]) continue;
        const int r =
            RankInTupleWorld(rel, present, i, TiePolicy::kBreakByIndex);
        if (r < k) pos[static_cast<size_t>(i)][static_cast<size_t>(r)] += prob;
      }
    });
    for (int r = 0; r < k; ++r) {
      double best = 0.0;
      int winner = -1;
      for (int i = 0; i < rel.size(); ++i) {
        const double p = pos[static_cast<size_t>(i)][static_cast<size_t>(r)];
        if (p > best + 1e-12) {
          best = p;
          winner = rel.tuple(i).id;
        }
      }
      if (winner >= 0 && best > 1e-9) {
        // Allow id-tie differences only when probabilities are tied.
        const double fast_prob =
            fast[static_cast<size_t>(r)] >= 0
                ? [&] {
                    for (int i = 0; i < rel.size(); ++i) {
                      if (rel.tuple(i).id == fast[static_cast<size_t>(r)]) {
                        return pos[static_cast<size_t>(i)]
                                  [static_cast<size_t>(r)];
                      }
                    }
                    return 0.0;
                  }()
                : 0.0;
        EXPECT_NEAR(fast_prob, best, 1e-9) << "rank " << r;
      } else {
        EXPECT_EQ(fast[static_cast<size_t>(r)], -1) << "rank " << r;
      }
    }
  }
}

TEST(UKRanksTest, UnreachableRanksAreMinusOne) {
  // Two mutually exclusive tuples: at most one appears, so rank 2 is
  // unreachable.
  TupleRelation rel({{1, 10.0, 0.5}, {2, 20.0, 0.5}}, {{0, 1}});
  const std::vector<int> answer = TupleUKRanks(rel, 2);
  EXPECT_NE(answer[0], -1);
  EXPECT_EQ(answer[1], -1);
}

TEST(UKRanksDeathTest, RejectsNonPositiveK) {
  EXPECT_DEATH(AttrUKRanks(PaperFig2(), 0), "k must be >= 1");
  EXPECT_DEATH(TupleUKRanks(PaperFig4(), 0), "k must be >= 1");
}

}  // namespace
}  // namespace urank
