#include "core/query.h"

#include <vector>

// This suite is the coverage for the deprecated RunRankingQuery facade
// itself; using it here is the point.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

#include "core/expected_rank_attr.h"
#include "core/expected_rank_tuple.h"
#include "core/quantile_rank.h"
#include "core/semantics/global_topk.h"
#include "core/semantics/pt_k.h"
#include "core/semantics/u_kranks.h"
#include "core/semantics/u_topk.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace urank {
namespace {

using testing_util::PaperFig2;
using testing_util::PaperFig4;

RankingQueryOptions Options(RankingSemantics semantics, int k) {
  RankingQueryOptions options;
  options.semantics = semantics;
  options.k = k;
  return options;
}

TEST(RunRankingQueryTest, ExpectedRankMatchesDirectCall) {
  const TupleRelation rel = PaperFig4();
  const RankingAnswer answer =
      RunRankingQuery(rel, Options(RankingSemantics::kExpectedRank, 4));
  const auto direct =
      TupleExpectedRankTopK(rel, 4, TiePolicy::kBreakByIndex);
  ASSERT_EQ(answer.ids.size(), direct.size());
  for (size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(answer.ids[i], direct[i].id);
    EXPECT_DOUBLE_EQ(answer.statistics[i], direct[i].statistic);
  }
}

TEST(RunRankingQueryTest, MedianAndQuantile) {
  const TupleRelation rel = PaperFig4();
  const RankingAnswer median =
      RunRankingQuery(rel, Options(RankingSemantics::kMedianRank, 4));
  EXPECT_EQ(median.ids, (std::vector<int>{2, 3, 1, 4}));
  RankingQueryOptions options = Options(RankingSemantics::kQuantileRank, 4);
  options.phi = 0.5;
  EXPECT_EQ(RunRankingQuery(rel, options).ids, median.ids);
}

TEST(RunRankingQueryTest, UTopkCarriesAnswerProbability) {
  const AttrRelation rel = PaperFig2();
  const RankingAnswer answer =
      RunRankingQuery(rel, Options(RankingSemantics::kUTopk, 2));
  EXPECT_EQ(answer.ids, (std::vector<int>{2, 3}));
  ASSERT_EQ(answer.statistics.size(), 2u);
  EXPECT_NEAR(answer.statistics[0], 0.36, 1e-12);
}

TEST(RunRankingQueryTest, UKRanksKeepsPlaceholders) {
  const TupleRelation rel = PaperFig4();
  const RankingAnswer answer =
      RunRankingQuery(rel, Options(RankingSemantics::kUKRanks, 4));
  ASSERT_EQ(answer.ids.size(), 4u);
  EXPECT_EQ(answer.ids[3], -1);
  EXPECT_TRUE(answer.statistics.empty());
}

TEST(RunRankingQueryTest, PTkStatisticsAreTopKProbabilities) {
  const AttrRelation rel = PaperFig2();
  RankingQueryOptions options = Options(RankingSemantics::kPTk, 2);
  options.threshold = 0.4;
  const RankingAnswer answer = RunRankingQuery(rel, options);
  ASSERT_EQ(answer.ids.size(), 3u);  // t2, t3, t1 by top-2 probability
  EXPECT_EQ(answer.ids[0], 2);
  EXPECT_NEAR(answer.statistics[0], 0.84, 1e-12);
  EXPECT_NEAR(answer.statistics[2], 0.4, 1e-12);
  // Every reported probability clears the threshold.
  for (double p : answer.statistics) EXPECT_GE(p, 0.4);
}

TEST(RunRankingQueryTest, GlobalTopkMatchesDirectCall) {
  const TupleRelation rel = PaperFig4();
  const RankingAnswer answer =
      RunRankingQuery(rel, Options(RankingSemantics::kGlobalTopk, 2));
  EXPECT_EQ(answer.ids, TupleGlobalTopK(rel, 2));
  ASSERT_EQ(answer.statistics.size(), 2u);
  EXPECT_NEAR(answer.statistics[0], 0.8, 1e-12);  // t3's top-2 probability
  EXPECT_NEAR(answer.statistics[1], 0.5, 1e-12);  // t2's
}

TEST(RunRankingQueryTest, ExpectedScoreNegatedStatistic) {
  const AttrRelation rel = PaperFig2();
  const RankingAnswer answer =
      RunRankingQuery(rel, Options(RankingSemantics::kExpectedScore, 1));
  EXPECT_EQ(answer.ids, (std::vector<int>{2}));
  EXPECT_NEAR(answer.statistics[0], -87.2, 1e-12);
}

TEST(RunRankingQueryTest, AllSemanticsRunOnBothModels) {
  const AttrRelation arel = PaperFig2();
  const TupleRelation trel = PaperFig4();
  for (RankingSemantics semantics :
       {RankingSemantics::kExpectedRank, RankingSemantics::kMedianRank,
        RankingSemantics::kQuantileRank, RankingSemantics::kUTopk,
        RankingSemantics::kUKRanks, RankingSemantics::kPTk,
        RankingSemantics::kGlobalTopk, RankingSemantics::kExpectedScore}) {
    const RankingAnswer a = RunRankingQuery(arel, Options(semantics, 2));
    const RankingAnswer t = RunRankingQuery(trel, Options(semantics, 2));
    EXPECT_FALSE(a.ids.empty()) << ToString(semantics);
    EXPECT_FALSE(t.ids.empty()) << ToString(semantics);
  }
}

TEST(RunRankingQueryTest, SparseIdsAreHandled) {
  // Non-dense, large ids exercise the id->position lookup.
  TupleRelation rel = TupleRelation::Independent(
      {{1000, 30.0, 0.9}, {5, 20.0, 0.8}, {70, 10.0, 0.7}});
  const RankingAnswer answer =
      RunRankingQuery(rel, Options(RankingSemantics::kGlobalTopk, 2));
  ASSERT_EQ(answer.ids.size(), 2u);
  EXPECT_EQ(answer.ids[0], 1000);
  EXPECT_GT(answer.statistics[0], 0.0);
}

TEST(ToStringTest, AllNames) {
  EXPECT_STREQ(ToString(RankingSemantics::kExpectedRank), "expected-rank");
  EXPECT_STREQ(ToString(RankingSemantics::kMedianRank), "median-rank");
  EXPECT_STREQ(ToString(RankingSemantics::kQuantileRank), "quantile-rank");
  EXPECT_STREQ(ToString(RankingSemantics::kUTopk), "u-topk");
  EXPECT_STREQ(ToString(RankingSemantics::kUKRanks), "u-kranks");
  EXPECT_STREQ(ToString(RankingSemantics::kPTk), "pt-k");
  EXPECT_STREQ(ToString(RankingSemantics::kGlobalTopk), "global-topk");
  EXPECT_STREQ(ToString(RankingSemantics::kExpectedScore), "expected-score");
}

TEST(RunRankingQueryDeathTest, PropagatesArgumentChecks) {
  const AttrRelation rel = PaperFig2();
  EXPECT_DEATH(RunRankingQuery(rel, Options(RankingSemantics::kExpectedRank, 0)),
               "k must be >= 1");
  RankingQueryOptions options = Options(RankingSemantics::kQuantileRank, 2);
  options.phi = 0.0;
  EXPECT_DEATH(RunRankingQuery(rel, options), "phi");
}

}  // namespace
}  // namespace urank
