// Topology discovery: cpulist parsing, URANK_TOPOLOGY spec parsing, sysfs
// fixture directories, and the detection precedence. Topology never
// affects results (that contract lives in parallel_determinism_test);
// this file pins down the discovery layer itself.

#include "util/topology.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "gtest/gtest.h"

namespace urank {
namespace {

TEST(CoreSetParseTest, AcceptsSysfsCpulistSyntax) {
  CoreSet set;
  ASSERT_TRUE(CoreSet::Parse("0-3,8,10-11", &set));
  EXPECT_EQ(set.cpus(), (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));
  EXPECT_EQ(set.size(), 7);
  EXPECT_TRUE(set.Contains(8));
  EXPECT_FALSE(set.Contains(4));
}

TEST(CoreSetParseTest, SingleCpuAndWhitespace) {
  CoreSet set;
  ASSERT_TRUE(CoreSet::Parse("  5  ", &set));
  EXPECT_EQ(set.cpus(), (std::vector<int>{5}));
  ASSERT_TRUE(CoreSet::Parse(" 0 - 2 , 4 ", &set));
  EXPECT_EQ(set.cpus(), (std::vector<int>{0, 1, 2, 4}));
}

TEST(CoreSetParseTest, EmptyListParsesToEmptySet) {
  CoreSet set;
  ASSERT_TRUE(CoreSet::Parse("", &set));
  EXPECT_TRUE(set.empty());
  ASSERT_TRUE(CoreSet::Parse("   ", &set));
  EXPECT_TRUE(set.empty());
}

TEST(CoreSetParseTest, RejectsMalformedInputWithoutTouchingOut) {
  CoreSet set({42});
  EXPECT_FALSE(CoreSet::Parse("a-b", &set));
  EXPECT_FALSE(CoreSet::Parse("3-1", &set));  // descending range
  EXPECT_FALSE(CoreSet::Parse("1,,2", &set));
  EXPECT_FALSE(CoreSet::Parse("1-", &set));
  EXPECT_FALSE(CoreSet::Parse("-3", &set));
  EXPECT_FALSE(CoreSet::Parse("0-99999", &set));  // absurd range refused
  EXPECT_EQ(set.cpus(), (std::vector<int>{42}));  // untouched on failure
}

TEST(CoreSetTest, ConstructorSortsAndDeduplicates) {
  const CoreSet set({3, 1, 3, 0});
  EXPECT_EQ(set.cpus(), (std::vector<int>{0, 1, 3}));
}

TEST(CoreSetTest, ToCpulistRoundTripsThroughParse) {
  for (const char* list : {"0-3,8,10-11", "5", "0,2,4", "0-15", ""}) {
    CoreSet set;
    ASSERT_TRUE(CoreSet::Parse(list, &set)) << list;
    EXPECT_EQ(set.ToCpulist(), list);
    CoreSet again;
    ASSERT_TRUE(CoreSet::Parse(set.ToCpulist(), &again)) << list;
    EXPECT_EQ(again, set);
  }
}

TEST(CoreSetTest, IntersectKeepsCommonCpus) {
  CoreSet a;
  CoreSet b;
  ASSERT_TRUE(CoreSet::Parse("0-7", &a));
  ASSERT_TRUE(CoreSet::Parse("4-11", &b));
  EXPECT_EQ(a.Intersect(b).ToCpulist(), "4-7");
  CoreSet none;
  EXPECT_TRUE(a.Intersect(none).empty());
}

TEST(TopologyParseTest, TwoNodeSpec) {
  Topology topo = Topology::SingleNode(1);
  std::string error;
  ASSERT_TRUE(Topology::Parse("0-3;4-7", &topo, &error)) << error;
  ASSERT_EQ(topo.num_nodes(), 2);
  EXPECT_EQ(topo.nodes()[0].id, 0);
  EXPECT_EQ(topo.nodes()[0].cores.ToCpulist(), "0-3");
  EXPECT_EQ(topo.nodes()[1].id, 1);
  EXPECT_EQ(topo.nodes()[1].cores.ToCpulist(), "4-7");
  EXPECT_EQ(topo.total_cores(), 8);
  EXPECT_EQ(topo.max_node_cores(), 4);
  EXPECT_TRUE(topo.synthetic());
}

TEST(TopologyParseTest, RejectsEmptyOrMalformedSpecs) {
  Topology topo = Topology::SingleNode(1);
  std::string error;
  EXPECT_FALSE(Topology::Parse("", &topo, &error));
  EXPECT_EQ(error, "empty topology spec");
  EXPECT_FALSE(Topology::Parse("0-3;;4-7", &topo, &error));
  EXPECT_NE(error.find("node 1"), std::string::npos) << error;
  EXPECT_FALSE(Topology::Parse("0-3;x", &topo, &error));
  EXPECT_FALSE(Topology::Parse("0-3;", &topo, &error));  // trailing empty node
}

TEST(TopologyParseTest, ToSpecRoundTrips) {
  for (const char* spec : {"0-3;4-7", "0-1;2-3;4-5;6-7", "0,2;1,3", "0-15"}) {
    Topology topo = Topology::SingleNode(1);
    std::string error;
    ASSERT_TRUE(Topology::Parse(spec, &topo, &error)) << error;
    EXPECT_EQ(topo.ToSpec(), spec);
    Topology again = Topology::SingleNode(1);
    ASSERT_TRUE(Topology::Parse(topo.ToSpec(), &again, &error)) << error;
    EXPECT_EQ(again.ToSpec(), topo.ToSpec());
  }
}

TEST(TopologyTest, SingleNodeShape) {
  const Topology topo = Topology::SingleNode(4);
  ASSERT_EQ(topo.num_nodes(), 1);
  EXPECT_EQ(topo.nodes()[0].cores.ToCpulist(), "0-3");
  EXPECT_EQ(topo.max_node_cores(), 4);
  EXPECT_TRUE(topo.synthetic());
  // Never fewer than one core, even for nonsense requests.
  EXPECT_EQ(Topology::SingleNode(0).total_cores(), 1);
  EXPECT_EQ(Topology::SingleNode(-5).total_cores(), 1);
}

TEST(TopologyTest, NodeOfCpuMapsCoresToNodeIndices) {
  Topology topo = Topology::SingleNode(1);
  std::string error;
  ASSERT_TRUE(Topology::Parse("0-3;8-11", &topo, &error)) << error;
  EXPECT_EQ(topo.NodeOfCpu(0), 0);
  EXPECT_EQ(topo.NodeOfCpu(3), 0);
  EXPECT_EQ(topo.NodeOfCpu(8), 1);
  EXPECT_EQ(topo.NodeOfCpu(11), 1);
  EXPECT_EQ(topo.NodeOfCpu(5), -1);  // gap between the nodes
  EXPECT_EQ(topo.NodeOfCpu(12), -1);
}

// A sysfs fixture directory shaped like /sys/devices/system/node: an
// `online` node list plus node<N>/cpulist files. Built fresh per test.
class SysfsFixture {
 public:
  explicit SysfsFixture(const std::string& name)
      : root_(std::filesystem::temp_directory_path() /
              ("urank_topology_test_" + name)) {
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);
  }
  ~SysfsFixture() { std::filesystem::remove_all(root_); }

  void WriteOnline(const std::string& list) { WriteFile("online", list); }

  void WriteNode(int id, const std::string& cpulist) {
    const std::string dir = "node" + std::to_string(id);
    std::filesystem::create_directories(root_ / dir);
    WriteFile(dir + "/cpulist", cpulist);
  }

  std::string path() const { return root_.string(); }

 private:
  void WriteFile(const std::string& rel, const std::string& contents) {
    std::ofstream out(root_ / rel);
    out << contents << "\n";
  }

  std::filesystem::path root_;
};

TEST(TopologyFromSysfsTest, ReadsTwoNodeFixture) {
  SysfsFixture fx("two_node");
  fx.WriteOnline("0-1");
  fx.WriteNode(0, "0-3");
  fx.WriteNode(1, "4-7");
  const Topology topo = Topology::FromSysfs(fx.path(), 1);
  ASSERT_EQ(topo.num_nodes(), 2);
  EXPECT_EQ(topo.ToSpec(), "0-3;4-7");
  EXPECT_FALSE(topo.synthetic());
  EXPECT_EQ(topo.nodes()[0].id, 0);
  EXPECT_EQ(topo.nodes()[1].id, 1);
}

TEST(TopologyFromSysfsTest, SparseNodeIdsKeepSysfsNumbers) {
  // Real machines expose non-contiguous node ids (e.g. 0 and 2 with
  // memory-only node 1 offline). The id field keeps the sysfs number;
  // NodeOfCpu returns the dense index into nodes().
  SysfsFixture fx("sparse");
  fx.WriteOnline("0,2");
  fx.WriteNode(0, "0-1");
  fx.WriteNode(2, "2-3");
  const Topology topo = Topology::FromSysfs(fx.path(), 1);
  ASSERT_EQ(topo.num_nodes(), 2);
  EXPECT_EQ(topo.nodes()[1].id, 2);
  EXPECT_EQ(topo.NodeOfCpu(3), 1);
}

TEST(TopologyFromSysfsTest, MissingDirectoryFallsBackToSingleNode) {
  const Topology topo = Topology::FromSysfs("/nonexistent/sysfs/root", 6);
  ASSERT_EQ(topo.num_nodes(), 1);
  EXPECT_EQ(topo.total_cores(), 6);
  EXPECT_TRUE(topo.synthetic());
}

TEST(TopologyFromSysfsTest, MalformedOnlineListFallsBack) {
  SysfsFixture fx("bad_online");
  fx.WriteOnline("garbage");
  fx.WriteNode(0, "0-3");
  const Topology topo = Topology::FromSysfs(fx.path(), 2);
  EXPECT_EQ(topo.num_nodes(), 1);
  EXPECT_EQ(topo.total_cores(), 2);
  EXPECT_TRUE(topo.synthetic());
}

TEST(TopologyFromSysfsTest, NodesWithMissingOrEmptyCpulistAreSkipped) {
  SysfsFixture fx("partial");
  fx.WriteOnline("0-2");
  fx.WriteNode(0, "0-3");
  // node1 directory absent entirely; node2 has an empty cpulist (a
  // memory-only NUMA node, as CXL expanders expose).
  fx.WriteNode(2, "");
  const Topology topo = Topology::FromSysfs(fx.path(), 1);
  ASSERT_EQ(topo.num_nodes(), 1);
  EXPECT_EQ(topo.ToSpec(), "0-3");
  EXPECT_FALSE(topo.synthetic());
}

TEST(TopologyFromSysfsTest, AllNodesEmptyFallsBack) {
  SysfsFixture fx("all_empty");
  fx.WriteOnline("0");
  fx.WriteNode(0, "");
  const Topology topo = Topology::FromSysfs(fx.path(), 3);
  EXPECT_TRUE(topo.synthetic());
  EXPECT_EQ(topo.total_cores(), 3);
}

// RAII guard for the URANK_TOPOLOGY environment variable.
class ScopedTopologyEnv {
 public:
  explicit ScopedTopologyEnv(const char* value) {
    const char* old = std::getenv("URANK_TOPOLOGY");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value == nullptr) {
      ::unsetenv("URANK_TOPOLOGY");
    } else {
      ::setenv("URANK_TOPOLOGY", value, /*overwrite=*/1);
    }
  }
  ~ScopedTopologyEnv() {
    if (had_old_) {
      ::setenv("URANK_TOPOLOGY", old_.c_str(), /*overwrite=*/1);
    } else {
      ::unsetenv("URANK_TOPOLOGY");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

TEST(TopologyDetectTest, EnvOverrideWinsAndIsSynthetic) {
  ScopedTopologyEnv env("0-3;4-7");
  const Topology topo = Topology::Detect();
  ASSERT_EQ(topo.num_nodes(), 2);
  EXPECT_EQ(topo.ToSpec(), "0-3;4-7");
  EXPECT_TRUE(topo.synthetic());
}

TEST(TopologyDetectTest, MalformedOverrideFallsThroughToRealDetection) {
  ScopedTopologyEnv env("not;a;topology");
  const Topology topo = Topology::Detect();
  // Real detection always yields a valid topology covering the allowed
  // cores; the malformed spec must not leak into it.
  EXPECT_GE(topo.num_nodes(), 1);
  EXPECT_GE(topo.total_cores(), 1);
  EXPECT_NE(topo.ToSpec(), "not;a;topology");
}

TEST(TopologyDetectTest, NoOverrideDetectsAtLeastTheAllowedCores) {
  ScopedTopologyEnv env(nullptr);
  const Topology topo = Topology::Detect();
  EXPECT_GE(topo.num_nodes(), 1);
  EXPECT_EQ(topo.total_cores(), AllowedCoreCount());
}

TEST(GlobalTopologyTest, SetForTestReplacesThePlanningTopology) {
  Topology synthetic = Topology::SingleNode(1);
  std::string error;
  ASSERT_TRUE(Topology::Parse("0-1;2-3", &synthetic, &error)) << error;
  SetGlobalTopologyForTest(synthetic);
  EXPECT_EQ(GlobalTopology().ToSpec(), "0-1;2-3");
  EXPECT_EQ(GlobalTopology().num_nodes(), 2);
  // Restore a detected topology so later tests in this binary see the
  // machine's shape again.
  SetGlobalTopologyForTest(Topology::Detect());
  EXPECT_GE(GlobalTopology().num_nodes(), 1);
}

TEST(AllowedCoresTest, MaskMatchesAllowedCoreCountWhenAvailable) {
  const CoreSet cores = AllowedCores();
  if (!cores.empty()) {
    EXPECT_EQ(cores.size(), AllowedCoreCount());
  }
  EXPECT_GE(AllowedCoreCount(), 1);
}

TEST(PinTest, PinningToAllowedCoresSucceedsOrFailsHarmlessly) {
  const CoreSet allowed = AllowedCores();
  if (allowed.empty()) {
    EXPECT_FALSE(PinCurrentThreadToCores(allowed));
    return;
  }
  // Pinning to the full allowed mask is a no-op affinity-wise and must
  // succeed on Linux; pinning to an empty set must fail without harm.
  EXPECT_TRUE(PinCurrentThreadToCores(allowed));
  EXPECT_FALSE(PinCurrentThreadToCores(CoreSet{}));
}

}  // namespace
}  // namespace urank
