#include "core/semantics/semantics.h"

#include <vector>

#include "gtest/gtest.h"
#include "model/possible_worlds.h"
#include "test_util.h"
#include "util/rng.h"

namespace urank {
namespace {

using testing_util::ExpectNearVectors;
using testing_util::PaperFig2;
using testing_util::PaperFig4;
using testing_util::RandomSmallAttr;
using testing_util::RandomSmallTuple;

TEST(AttrTopKProbabilitiesTest, PaperFig2TopTwo) {
  // Derived in Section 4.2's PT-k discussion: top-2 probabilities are
  // 0.4 (t1), 0.84 (t2), 0.76 (t3).
  ExpectNearVectors(AttrTopKProbabilities(PaperFig2(), 2),
                    {0.4, 0.84, 0.76}, 1e-12);
}

TEST(AttrTopKProbabilitiesTest, TopNIsCertain) {
  // Every tuple is within the top-N in every world.
  Rng rng(1);
  AttrRelation rel = RandomSmallAttr(rng, 6, 3);
  for (double p : AttrTopKProbabilities(rel, rel.size())) {
    EXPECT_NEAR(p, 1.0, 1e-9);
  }
}

TEST(AttrTopKProbabilitiesTest, MonotoneInK) {
  Rng rng(2);
  AttrRelation rel = RandomSmallAttr(rng, 6, 3);
  const auto k1 = AttrTopKProbabilities(rel, 1);
  const auto k2 = AttrTopKProbabilities(rel, 2);
  const auto k4 = AttrTopKProbabilities(rel, 4);
  for (int i = 0; i < rel.size(); ++i) {
    EXPECT_LE(k1[static_cast<size_t>(i)], k2[static_cast<size_t>(i)] + 1e-12);
    EXPECT_LE(k2[static_cast<size_t>(i)], k4[static_cast<size_t>(i)] + 1e-12);
  }
}

TEST(TupleTopKProbabilitiesTest, PaperFig4Values) {
  // Worked out in Section 4.2's Global-Topk discussion: top-1 probs are
  // .4/.3/.3/0, top-2 probs .4/.5/.8/.3.
  ExpectNearVectors(TupleTopKProbabilities(PaperFig4(), 1),
                    {0.4, 0.3, 0.3, 0.0}, 1e-12);
  ExpectNearVectors(TupleTopKProbabilities(PaperFig4(), 2),
                    {0.4, 0.5, 0.8, 0.3}, 1e-12);
}

TEST(TupleTopKProbabilitiesTest, CappedByPresenceProbability) {
  Rng rng(3);
  TupleRelation rel = RandomSmallTuple(rng, 8);
  for (int k : {1, 3, 8}) {
    const auto probs = TupleTopKProbabilities(rel, k);
    for (int i = 0; i < rel.size(); ++i) {
      EXPECT_LE(probs[static_cast<size_t>(i)],
                rel.tuple(i).prob + 1e-9);
    }
  }
}

TEST(TupleTopKProbabilitiesTest, MatchesEnumeration) {
  Rng rng(4);
  for (int trial = 0; trial < 6; ++trial) {
    TupleRelation rel = RandomSmallTuple(rng, 7);
    for (int k : {1, 2, 4}) {
      const auto fast = TupleTopKProbabilities(rel, k);
      std::vector<double> worlds(static_cast<size_t>(rel.size()), 0.0);
      ForEachTupleWorld(rel, [&](const std::vector<bool>& present,
                                 double prob) {
        for (int i = 0; i < rel.size(); ++i) {
          if (present[static_cast<size_t>(i)] &&
              RankInTupleWorld(rel, present, i, TiePolicy::kBreakByIndex) <
                  k) {
            worlds[static_cast<size_t>(i)] += prob;
          }
        }
      });
      ExpectNearVectors(fast, worlds, 1e-9);
    }
  }
}

TEST(AttrTopKProbabilitiesTest, MatchesEnumeration) {
  Rng rng(5);
  for (int trial = 0; trial < 6; ++trial) {
    AttrRelation rel = RandomSmallAttr(rng, 5, 3);
    for (int k : {1, 2, 4}) {
      const auto fast = AttrTopKProbabilities(rel, k);
      std::vector<double> worlds(static_cast<size_t>(rel.size()), 0.0);
      ForEachAttrWorld(rel, [&](const std::vector<double>& scores,
                                double prob) {
        for (int i = 0; i < rel.size(); ++i) {
          if (RankInAttrWorld(scores, i, TiePolicy::kBreakByIndex) < k) {
            worlds[static_cast<size_t>(i)] += prob;
          }
        }
      });
      ExpectNearVectors(fast, worlds, 1e-9);
    }
  }
}

TEST(TopKProbabilitiesDeathTest, RejectsNonPositiveK) {
  EXPECT_DEATH(AttrTopKProbabilities(PaperFig2(), 0), "k must be >= 1");
  EXPECT_DEATH(TupleTopKProbabilities(PaperFig4(), 0), "k must be >= 1");
}

}  // namespace
}  // namespace urank
