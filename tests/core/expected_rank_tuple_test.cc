#include "core/expected_rank_tuple.h"

#include <vector>

#include "gtest/gtest.h"
#include "model/possible_worlds.h"
#include "test_util.h"
#include "util/rng.h"

namespace urank {
namespace {

using testing_util::ExpectNearVectors;
using testing_util::PaperFig4;
using testing_util::RandomSmallTuple;

TEST(TupleExpectedRanksTest, PaperFig4Values) {
  // Paper Section 4.3: r(t1)=1.2, r(t2)=1.4, r(t3)=0.9, r(t4)=1.9.
  ExpectNearVectors(TupleExpectedRanks(PaperFig4()), {1.2, 1.4, 0.9, 1.9},
                    1e-12);
}

TEST(TupleExpectedRanksTest, PaperFig4TopK) {
  // Final ranking (t3, t1, t2, t4).
  const auto top4 = TupleExpectedRankTopK(PaperFig4(), 4);
  ASSERT_EQ(top4.size(), 4u);
  EXPECT_EQ(top4[0].id, 3);
  EXPECT_EQ(top4[1].id, 1);
  EXPECT_EQ(top4[2].id, 2);
  EXPECT_EQ(top4[3].id, 4);
}

TEST(TupleExpectedRanksTest, BruteForceMatchesPaper) {
  ExpectNearVectors(TupleExpectedRanksBruteForce(PaperFig4()),
                    {1.2, 1.4, 0.9, 1.9}, 1e-12);
}

TEST(TupleExpectedRanksTest, CertainTuplesReduceToSortOrder) {
  TupleRelation rel = TupleRelation::Independent(
      {{0, 10.0, 1.0}, {1, 30.0, 1.0}, {2, 20.0, 1.0}});
  ExpectNearVectors(TupleExpectedRanks(rel), {2.0, 0.0, 1.0}, 1e-12);
}

TEST(TupleExpectedRanksTest, AbsentTupleRanksAtWorldSize) {
  // One tuple with p = 0.5: when present rank 0, when absent rank |W| = 0.
  TupleRelation rel = TupleRelation::Independent({{0, 10.0, 0.5}});
  ExpectNearVectors(TupleExpectedRanks(rel), {0.0}, 1e-12);
  // Two independent tuples.
  TupleRelation rel2 = TupleRelation::Independent(
      {{0, 20.0, 0.5}, {1, 10.0, 0.5}});
  // t0: present (.5): rank 0; absent: rank = E[|W| \ t0] = 0.5.
  // t1: present (.5): rank = Pr[t0 appears] = .5; absent: 0.5.
  ExpectNearVectors(TupleExpectedRanks(rel2), {0.25, 0.5}, 1e-12);
}

TEST(TupleExpectedRanksTest, ExclusionRuleChangesRanks) {
  // Same tuples, exclusive: t1 can never be outranked by an appearing t0
  // in the same world it appears... it can: t0 has the higher score. But
  // when t1 appears, t0 cannot, so t1's present-rank is 0.
  TupleRelation rel({{0, 20.0, 0.5}, {1, 10.0, 0.5}}, {{0, 1}});
  // t0: present .5 -> 0; absent .5 -> E[|W| | t0 absent] = p(t1)/(1-p(t0)) = 1.
  // t1: present .5 -> 0; absent .5 -> 1.
  ExpectNearVectors(TupleExpectedRanks(rel), {0.5, 0.5}, 1e-12);
}

TEST(TupleExpectedRanksTest, EmptyRelation) {
  EXPECT_TRUE(TupleExpectedRanks(TupleRelation::Independent({})).empty());
}

TEST(TupleExpectedRanksTest, TiesUnderBothPolicies) {
  TupleRelation rel = TupleRelation::Independent(
      {{0, 10.0, 1.0}, {1, 10.0, 1.0}});
  ExpectNearVectors(TupleExpectedRanks(rel, TiePolicy::kStrictGreater),
                    {0.0, 0.0}, 1e-12);
  ExpectNearVectors(TupleExpectedRanks(rel, TiePolicy::kBreakByIndex),
                    {0.0, 1.0}, 1e-12);
}

struct TupleCrossParam {
  int n;
  uint64_t seed;
};

class TupleExpectedRankCrossCheck
    : public ::testing::TestWithParam<TupleCrossParam> {};

TEST_P(TupleExpectedRankCrossCheck, FastEqualsBruteForceEqualsEnumeration) {
  const TupleCrossParam param = GetParam();
  Rng rng(param.seed);
  for (int trial = 0; trial < 8; ++trial) {
    TupleRelation rel = RandomSmallTuple(rng, param.n);
    for (TiePolicy ties :
         {TiePolicy::kStrictGreater, TiePolicy::kBreakByIndex}) {
      const std::vector<double> fast = TupleExpectedRanks(rel, ties);
      const std::vector<double> brute =
          TupleExpectedRanksBruteForce(rel, ties);
      const std::vector<double> worlds =
          TupleExpectedRanksByEnumeration(rel, ties);
      ExpectNearVectors(fast, brute, 1e-9);
      ExpectNearVectors(fast, worlds, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TupleExpectedRankCrossCheck,
    ::testing::Values(TupleCrossParam{1, 31}, TupleCrossParam{2, 32},
                      TupleCrossParam{4, 33}, TupleCrossParam{6, 34},
                      TupleCrossParam{8, 35}, TupleCrossParam{10, 36}));

TEST(TupleExpectedRankTopKDeathTest, RejectsNonPositiveK) {
  EXPECT_DEATH(TupleExpectedRankTopK(PaperFig4(), 0), "k must be >= 1");
}

}  // namespace
}  // namespace urank
