#include "core/dynamic_ranker.h"

#include <unordered_map>
#include <vector>

#include "core/expected_rank_tuple.h"
#include "gtest/gtest.h"
#include "util/rng.h"

namespace urank {
namespace {

// Cross-check: a ranker's answers must equal the batch T-ERank run on its
// snapshot, for every live tuple.
void ExpectMatchesBatch(const DynamicTupleRanker& ranker) {
  const TupleRelation snapshot = ranker.Snapshot();
  const std::vector<double> batch =
      TupleExpectedRanks(snapshot, TiePolicy::kStrictGreater);
  for (int i = 0; i < snapshot.size(); ++i) {
    EXPECT_NEAR(ranker.ExpectedRank(snapshot.tuple(i).id),
                batch[static_cast<size_t>(i)], 1e-9)
        << "tuple " << snapshot.tuple(i).id;
  }
  EXPECT_NEAR(ranker.ExpectedWorldSize(), snapshot.ExpectedWorldSize(),
              1e-9);
}

TEST(DynamicTupleRankerTest, PaperFig4IncrementalBuild) {
  DynamicTupleRanker ranker;
  ranker.Insert(1, 100.0, 0.4);
  ranker.Insert(2, 90.0, 0.5, /*rule_label=*/7);
  ranker.Insert(3, 80.0, 1.0);
  ranker.Insert(4, 70.0, 0.5, /*rule_label=*/7);
  EXPECT_EQ(ranker.size(), 4);
  EXPECT_NEAR(ranker.ExpectedWorldSize(), 2.4, 1e-12);
  EXPECT_NEAR(ranker.ExpectedRank(1), 1.2, 1e-12);
  EXPECT_NEAR(ranker.ExpectedRank(2), 1.4, 1e-12);
  EXPECT_NEAR(ranker.ExpectedRank(3), 0.9, 1e-12);
  EXPECT_NEAR(ranker.ExpectedRank(4), 1.9, 1e-12);
  const auto topk = ranker.TopK(4);
  EXPECT_EQ(IdsOf(topk), (std::vector<int>{3, 1, 2, 4}));
}

TEST(DynamicTupleRankerTest, EraseUpdatesRanks) {
  DynamicTupleRanker ranker;
  ranker.Insert(1, 100.0, 0.4);
  ranker.Insert(2, 90.0, 0.5, 7);
  ranker.Insert(3, 80.0, 1.0);
  ranker.Insert(4, 70.0, 0.5, 7);
  ranker.Erase(2);
  EXPECT_EQ(ranker.size(), 3);
  EXPECT_FALSE(ranker.Contains(2));
  ExpectMatchesBatch(ranker);
  // t4's rank no longer sees t2's mass anywhere.
  ranker.Erase(4);
  ranker.Erase(1);
  EXPECT_NEAR(ranker.ExpectedRank(3), 0.0, 1e-12);
}

TEST(DynamicTupleRankerTest, ReinsertionAfterErase) {
  DynamicTupleRanker ranker;
  ranker.Insert(1, 10.0, 0.5);
  ranker.Erase(1);
  ranker.Insert(1, 20.0, 0.9);
  EXPECT_NEAR(ranker.ExpectedRank(1), 0.0, 1e-12);
  EXPECT_NEAR(ranker.ExpectedWorldSize(), 0.9, 1e-12);
}

TEST(DynamicTupleRankerTest, RandomizedInterleavedUpdatesMatchBatch) {
  Rng rng(1);
  DynamicTupleRanker ranker;
  std::vector<int> live;
  std::unordered_map<int, double> rule_mass;  // grows monotonically:
  // erased members are not refunded, which keeps the bookkeeping simple
  // and only makes the test more conservative about rule capacity.
  int next_id = 0;
  for (int step = 0; step < 400; ++step) {
    const bool insert = live.empty() || rng.Bernoulli(0.65);
    if (insert) {
      const int id = next_id++;
      int label =
          rng.Bernoulli(0.4) ? static_cast<int>(rng.UniformInt(0, 9)) : -1;
      double prob = rng.Uniform(0.05, 1.0);
      if (label >= 0) {
        prob = rng.Uniform(0.01, 0.09);
        // Respect the per-rule mass budget; fall back to independence.
        if (rule_mass[label] + prob > 0.95) {
          label = -1;
          prob = rng.Uniform(0.05, 1.0);
        } else {
          rule_mass[label] += prob;
        }
      }
      ranker.Insert(id, rng.Uniform(0.0, 100.0), prob, label);
      live.push_back(id);
    } else {
      const size_t pick = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      ranker.Erase(live[pick]);
      live.erase(live.begin() + static_cast<long>(pick));
    }
    if (step % 50 == 49) ExpectMatchesBatch(ranker);
  }
  ExpectMatchesBatch(ranker);
}

TEST(DynamicTupleRankerTest, OverflowRebuildKeepsAnswersExact) {
  // More distinct scores than the index's overflow bound forces at least
  // one Fenwick rebuild mid-stream.
  Rng rng(2);
  DynamicTupleRanker ranker;
  for (int id = 0; id < 1000; ++id) {
    ranker.Insert(id, rng.Uniform(0.0, 1000.0), rng.Uniform(0.1, 1.0));
  }
  ExpectMatchesBatch(ranker);
  for (int id = 0; id < 1000; id += 3) ranker.Erase(id);
  ExpectMatchesBatch(ranker);
}

TEST(DynamicTupleRankerTest, TiedScoresShareRanks) {
  DynamicTupleRanker ranker;
  ranker.Insert(1, 5.0, 1.0);
  ranker.Insert(2, 5.0, 1.0);
  // Strict policy: neither outranks the other.
  EXPECT_NEAR(ranker.ExpectedRank(1), 0.0, 1e-12);
  EXPECT_NEAR(ranker.ExpectedRank(2), 0.0, 1e-12);
}

TEST(DynamicTupleRankerTest, TopKMatchesBatchTopK) {
  Rng rng(3);
  DynamicTupleRanker ranker;
  for (int id = 0; id < 300; ++id) {
    ranker.Insert(id, rng.Uniform(0.0, 100.0), rng.Uniform(0.2, 1.0));
  }
  const auto dynamic_topk = ranker.TopK(10);
  const auto batch_topk = TupleExpectedRankTopK(ranker.Snapshot(), 10,
                                                TiePolicy::kStrictGreater);
  ASSERT_EQ(dynamic_topk.size(), batch_topk.size());
  for (size_t i = 0; i < batch_topk.size(); ++i) {
    EXPECT_EQ(dynamic_topk[i].id, batch_topk[i].id);
    EXPECT_NEAR(dynamic_topk[i].statistic, batch_topk[i].statistic, 1e-9);
  }
}

TEST(DynamicTupleRankerTest, SnapshotPreservesRules) {
  DynamicTupleRanker ranker;
  ranker.Insert(10, 5.0, 0.4, 3);
  ranker.Insert(11, 4.0, 0.5, 3);
  ranker.Insert(12, 3.0, 0.8);
  const TupleRelation snapshot = ranker.Snapshot();
  EXPECT_EQ(snapshot.size(), 3);
  EXPECT_EQ(snapshot.rule_of(0), snapshot.rule_of(1));
  EXPECT_NE(snapshot.rule_of(0), snapshot.rule_of(2));
}

TEST(DynamicTupleRankerDeathTest, ContractViolations) {
  DynamicTupleRanker ranker;
  ranker.Insert(1, 10.0, 0.6, 5);
  EXPECT_DEATH(ranker.Insert(1, 20.0, 0.5), "already live");
  EXPECT_DEATH(ranker.Insert(2, 20.0, 0.0), "prob");
  EXPECT_DEATH(ranker.Insert(2, 20.0, 0.5, 5), "exceed 1");
  EXPECT_DEATH(ranker.Erase(99), "not live");
  EXPECT_DEATH(ranker.ExpectedRank(99), "not live");
  EXPECT_DEATH(ranker.TopK(0), "k must be >= 1");
}

TEST(DynamicTupleRankerTest, EmptyRanker) {
  DynamicTupleRanker ranker;
  EXPECT_EQ(ranker.size(), 0);
  EXPECT_DOUBLE_EQ(ranker.ExpectedWorldSize(), 0.0);
  EXPECT_TRUE(ranker.TopK(5).empty());
  EXPECT_EQ(ranker.Snapshot().size(), 0);
}

}  // namespace
}  // namespace urank
