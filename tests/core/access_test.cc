#include "core/access.h"

#include <vector>

#include "gtest/gtest.h"
#include "test_util.h"

namespace urank {
namespace {

using testing_util::PaperFig2;
using testing_util::PaperFig4;

TEST(SortedAttrStreamTest, YieldsDecreasingExpectedScore) {
  const AttrRelation rel = PaperFig2();
  SortedAttrStream stream(rel);
  EXPECT_EQ(stream.total(), 3);
  double prev = 1e18;
  int count = 0;
  while (stream.HasNext()) {
    const AttrTuple& t = stream.Next();
    EXPECT_LE(t.ExpectedScore(), prev);
    prev = t.ExpectedScore();
    ++count;
  }
  EXPECT_EQ(count, 3);
  EXPECT_EQ(stream.accessed(), 3);
}

TEST(SortedAttrStreamTest, Fig2Order) {
  // E[X1] = 82, E[X2] = 87.2, E[X3] = 85: order t2, t3, t1.
  const AttrRelation rel = PaperFig2();
  SortedAttrStream stream(rel);
  EXPECT_EQ(stream.Next().id, 2);
  EXPECT_EQ(stream.Next().id, 3);
  EXPECT_EQ(stream.Next().id, 1);
}

TEST(SortedAttrStreamTest, CountsAccessesIncrementally) {
  const AttrRelation rel = PaperFig2();
  SortedAttrStream stream(rel);
  EXPECT_EQ(stream.accessed(), 0);
  stream.Next();
  EXPECT_EQ(stream.accessed(), 1);
  stream.Next();
  EXPECT_EQ(stream.accessed(), 2);
}

TEST(SortedAttrStreamTest, TieOnExpectedScoreBreaksByIndex) {
  AttrRelation rel({
      {5, {{10.0, 1.0}}},
      {3, {{10.0, 1.0}}},
  });
  SortedAttrStream stream(rel);
  EXPECT_EQ(stream.Next().id, 5);  // index 0 first
  EXPECT_EQ(stream.Next().id, 3);
}

TEST(SortedAttrStreamDeathTest, NextPastEnd) {
  AttrRelation rel({{0, {{1.0, 1.0}}}});
  SortedAttrStream stream(rel);
  stream.Next();
  EXPECT_DEATH(stream.Next(), "past the end");
}

TEST(SortedTupleStreamTest, YieldsDecreasingScore) {
  TupleRelation rel = PaperFig4();
  SortedTupleStream stream(rel);
  EXPECT_EQ(stream.total(), 4);
  EXPECT_DOUBLE_EQ(stream.expected_world_size(), 2.4);
  double prev = 1e18;
  while (stream.HasNext()) {
    const int idx = stream.Next();
    EXPECT_LE(rel.tuple(idx).score, prev);
    prev = rel.tuple(idx).score;
  }
  EXPECT_EQ(stream.accessed(), 4);
}

TEST(SortedTupleStreamTest, EmptyRelation) {
  TupleRelation rel = TupleRelation::Independent({});
  SortedTupleStream stream(rel);
  EXPECT_FALSE(stream.HasNext());
  EXPECT_EQ(stream.total(), 0);
}

}  // namespace
}  // namespace urank
