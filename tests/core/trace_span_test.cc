#include "core/engine/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "util/parallel.h"

namespace urank {
namespace {

// Events recorded under `name`, in record order.
std::vector<trace::Event> EventsNamed(const std::vector<trace::Event>& all,
                                      const char* name) {
  std::vector<trace::Event> out;
  for (const trace::Event& e : all) {
    if (e.name != nullptr && std::strcmp(e.name, name) == 0) {
      out.push_back(e);
    }
  }
  return out;
}

TEST(TraceSpanTest, DisabledByDefaultAndSpansAreFree) {
  trace::Recorder recorder;
  EXPECT_FALSE(recorder.enabled());
  { URANK_TRACE_SPAN("never-recorded"); }
  EXPECT_TRUE(recorder.Events().empty());
  EXPECT_EQ(recorder.dropped(), 0u);
}

TEST(TraceSpanTest, NestedSpansRecordDepthAndContainment) {
  trace::Recorder& recorder = trace::Recorder::Global();
  recorder.Start(1024);
  if (!recorder.enabled()) {
    // Compiled-out build: Start refuses to enable and spans stay no-ops.
    { URANK_TRACE_SPAN("outer"); }
    recorder.Stop();
    EXPECT_TRUE(recorder.Events().empty());
    EXPECT_TRUE(recorder.ChromeTraceJson().find("\"traceEvents\": [") !=
                std::string::npos);
    return;
  }
  {
    URANK_TRACE_SPAN("outer");
    { URANK_TRACE_SPAN_ARG("inner", "k", 7); }
  }
  recorder.Stop();
  const std::vector<trace::Event> events = recorder.Events();
  const std::vector<trace::Event> inner = EventsNamed(events, "inner");
  const std::vector<trace::Event> outer = EventsNamed(events, "outer");
  ASSERT_EQ(inner.size(), 1u);
  ASSERT_EQ(outer.size(), 1u);
  // Spans close inside-out, so the inner event records first, one level
  // deeper, on the same thread, contained in the outer interval.
  EXPECT_EQ(inner[0].depth, outer[0].depth + 1);
  EXPECT_EQ(inner[0].tid, outer[0].tid);
  EXPECT_GE(inner[0].start_ns, outer[0].start_ns);
  EXPECT_LE(inner[0].start_ns + inner[0].dur_ns,
            outer[0].start_ns + outer[0].dur_ns);
  EXPECT_STREQ(inner[0].arg_name, "k");
  EXPECT_EQ(inner[0].arg, 7);
}

TEST(TraceSpanTest, SpansNestAcrossParallelForWorkers) {
  trace::Recorder& recorder = trace::Recorder::Global();
  recorder.Start();
  if (!recorder.enabled()) {
    recorder.Stop();
    return;
  }
  constexpr int kChunks = 12;
  {
    URANK_TRACE_SPAN("test.batch");
    ParallelFor(kChunks, 8, [&](int /*chunk*/, int /*slot*/) {
      volatile double sink = 0.0;
      for (int i = 0; i < 2000; ++i) sink = sink + 1.0;
    });
  }
  recorder.Stop();
  const std::vector<trace::Event> events = recorder.Events();
  EXPECT_EQ(recorder.dropped(), 0u);

  // ParallelFor itself instruments one parallel.for span on the caller and
  // one parallel.chunk span per chunk, possibly on other threads.
  const std::vector<trace::Event> batch = EventsNamed(events, "test.batch");
  const std::vector<trace::Event> loop = EventsNamed(events, "parallel.for");
  const std::vector<trace::Event> chunks =
      EventsNamed(events, "parallel.chunk");
  ASSERT_EQ(batch.size(), 1u);
  ASSERT_EQ(loop.size(), 1u);
  ASSERT_EQ(chunks.size(), static_cast<size_t>(kChunks));

  EXPECT_EQ(loop[0].tid, batch[0].tid);
  EXPECT_EQ(loop[0].depth, batch[0].depth + 1);
  for (const trace::Event& chunk : chunks) {
    // Chunks executed by the caller nest beneath the parallel.for span;
    // chunks claimed by pool helpers start a fresh depth on their own
    // synthetic thread lane.
    if (chunk.tid == loop[0].tid) {
      EXPECT_EQ(chunk.depth, loop[0].depth + 1);
    } else {
      EXPECT_EQ(chunk.depth, 0u);
    }
    // Every chunk runs within the batch span's wall interval.
    EXPECT_GE(chunk.start_ns, batch[0].start_ns);
    EXPECT_LE(chunk.start_ns + chunk.dur_ns,
              batch[0].start_ns + batch[0].dur_ns);
    EXPECT_STREQ(chunk.arg_name, "chunk");
    EXPECT_GE(chunk.arg, 0);
    EXPECT_LT(chunk.arg, kChunks);
  }
  // All chunk indices execute exactly once.
  std::vector<long long> seen;
  for (const trace::Event& chunk : chunks) seen.push_back(chunk.arg);
  std::sort(seen.begin(), seen.end());
  for (int i = 0; i < kChunks; ++i) EXPECT_EQ(seen[static_cast<size_t>(i)], i);
}

TEST(TraceSpanTest, FullBufferDropsNewEventsAndCountsThem) {
  trace::Recorder& recorder = trace::Recorder::Global();
  recorder.Start(2);
  if (!recorder.enabled()) {
    recorder.Stop();
    return;
  }
  for (int i = 0; i < 5; ++i) {
    URANK_TRACE_SPAN("drop.test");
  }
  recorder.Stop();
  // Drop-new keeps the two earliest events — the ones that explain a flame
  // chart's structure — and counts the rest.
  EXPECT_EQ(recorder.Events().size(), 2u);
  EXPECT_EQ(recorder.dropped(), 3u);
}

TEST(TraceSpanTest, ChromeTraceJsonShape) {
  trace::Recorder& recorder = trace::Recorder::Global();
  recorder.Start(64);
  const bool live = recorder.enabled();
  {
    URANK_TRACE_SPAN("json.outer");
    { URANK_TRACE_SPAN_ARG("json.inner", "n", 3); }
  }
  recorder.Stop();
  const std::string json = recorder.ChromeTraceJson();
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  if (live) {
    EXPECT_NE(json.find("\"name\": \"json.inner\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"json.outer\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"n\": 3"), std::string::npos);
  }
}

TEST(TraceSpanTest, RestartClearsPriorSession) {
  trace::Recorder& recorder = trace::Recorder::Global();
  recorder.Start(64);
  { URANK_TRACE_SPAN("first.session"); }
  recorder.Stop();
  recorder.Start(64);
  { URANK_TRACE_SPAN("second.session"); }
  recorder.Stop();
  const std::vector<trace::Event> events = recorder.Events();
  EXPECT_TRUE(EventsNamed(events, "first.session").empty());
  if (recorder.enabled() || !events.empty()) {
    EXPECT_EQ(EventsNamed(events, "second.session").size(), 1u);
  }
}

TEST(TraceSpanTest, StartRejectsZeroCapacity) {
  trace::Recorder recorder;
  EXPECT_DEATH(recorder.Start(0), "capacity");
}

}  // namespace
}  // namespace urank
