#include "core/rank_distribution_attr.h"

#include <vector>

#include "gtest/gtest.h"
#include "model/possible_worlds.h"
#include "test_util.h"
#include "util/rng.h"

namespace urank {
namespace {

using testing_util::ExpectNearVectors;
using testing_util::PaperFig2;
using testing_util::RandomSmallAttr;

TEST(AttrRankDistributionTest, PaperFig2T1) {
  // Paper Section 7.1: rank(t1) = {(0, 0.4), (1, 0), (2, 0.6)}.
  ExpectNearVectors(AttrRankDistribution(PaperFig2(), 0), {0.4, 0.0, 0.6},
                    1e-12);
}

TEST(AttrRankDistributionTest, PaperFig2AllTuples) {
  const auto dists = AttrRankDistributions(PaperFig2());
  // t2: mixes {0:.6,1:.4} (X2=92) and {1:.6,2:.4} (X2=80).
  ExpectNearVectors(dists[1], {0.36, 0.48, 0.16}, 1e-12);
  // t3 = 85 always; rank = #{t1>85} + #{t2>85}.
  ExpectNearVectors(dists[2], {0.6 * 0.4, 0.6 * 0.6 + 0.4 * 0.4, 0.4 * 0.6},
                    1e-12);
}

TEST(AttrRankDistributionTest, RowsSumToOne) {
  Rng rng(1);
  AttrRelation rel = RandomSmallAttr(rng, 7, 3);
  for (const auto& row : AttrRankDistributions(rel)) {
    double sum = 0.0;
    for (double p : row) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(AttrRankDistributionTest, MeanMatchesExpectedRank) {
  Rng rng(2);
  AttrRelation rel = RandomSmallAttr(rng, 6, 3);
  const auto dists = AttrRankDistributions(rel, TiePolicy::kBreakByIndex);
  const auto expected_ranks =
      AttrExpectedRanksByEnumeration(rel, TiePolicy::kBreakByIndex);
  for (int i = 0; i < rel.size(); ++i) {
    double mean = 0.0;
    const auto& row = dists[static_cast<size_t>(i)];
    for (size_t r = 0; r < row.size(); ++r) {
      mean += static_cast<double>(r) * row[r];
    }
    EXPECT_NEAR(mean, expected_ranks[static_cast<size_t>(i)], 1e-9);
  }
}

TEST(AttrRankDistributionTest, SingleTuple) {
  AttrRelation rel({{0, {{1.0, 0.3}, {2.0, 0.7}}}});
  ExpectNearVectors(AttrRankDistribution(rel, 0), {1.0}, 1e-12);
}

TEST(AttrRankDistributionParallelTest, MatchesSerialBitForBit) {
  Rng rng(7);
  for (int n : {1, 2, 17, 40}) {
    AttrRelation rel = RandomSmallAttr(rng, n, 3);
    for (TiePolicy ties :
         {TiePolicy::kStrictGreater, TiePolicy::kBreakByIndex}) {
      const auto serial = AttrRankDistributions(rel, ties);
      for (int threads : {1, 2, 4, 0}) {
        const auto parallel =
            AttrRankDistributionsParallel(rel, ties, threads);
        ASSERT_EQ(parallel.size(), serial.size());
        for (size_t i = 0; i < serial.size(); ++i) {
          EXPECT_EQ(parallel[i], serial[i])
              << "n=" << n << " threads=" << threads << " tuple " << i;
        }
      }
    }
  }
}

TEST(AttrRankDistributionParallelTest, MoreThreadsThanTuples) {
  Rng rng(8);
  AttrRelation rel = RandomSmallAttr(rng, 3, 2);
  const auto parallel = AttrRankDistributionsParallel(
      rel, TiePolicy::kBreakByIndex, 16);
  EXPECT_EQ(parallel, AttrRankDistributions(rel));
}

TEST(AttrRankDistributionDeathTest, RejectsBadIndex) {
  EXPECT_DEATH(AttrRankDistribution(PaperFig2(), 3), "out of range");
  EXPECT_DEATH(AttrRankDistribution(PaperFig2(), -1), "out of range");
}

struct AttrDistParam {
  int n;
  int max_s;
  uint64_t seed;
};

class AttrRankDistributionCrossCheck
    : public ::testing::TestWithParam<AttrDistParam> {};

TEST_P(AttrRankDistributionCrossCheck, MatchesEnumeration) {
  const AttrDistParam param = GetParam();
  Rng rng(param.seed);
  for (int trial = 0; trial < 6; ++trial) {
    AttrRelation rel = RandomSmallAttr(rng, param.n, param.max_s);
    for (TiePolicy ties :
         {TiePolicy::kStrictGreater, TiePolicy::kBreakByIndex}) {
      const auto dp = AttrRankDistributions(rel, ties);
      const auto worlds = AttrRankDistributionsByEnumeration(rel, ties);
      ASSERT_EQ(dp.size(), worlds.size());
      for (size_t i = 0; i < dp.size(); ++i) {
        ExpectNearVectors(dp[i], worlds[i], 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AttrRankDistributionCrossCheck,
    ::testing::Values(AttrDistParam{2, 3, 41}, AttrDistParam{4, 2, 42},
                      AttrDistParam{5, 3, 43}, AttrDistParam{7, 2, 44},
                      AttrDistParam{8, 2, 45}));

}  // namespace
}  // namespace urank
