// Cross-dispatch identity test: every SIMD kernel table compiled into this
// binary must agree with the scalar reference table on every primitive.
//
// The contract split (documented in vector_kernels.h and
// docs/PERFORMANCE.md) is enforced literally:
//   * elementwise primitives (convolve_trial, scale, scale_add,
//     argmax_merge) must be BIT-IDENTICAL to the scalar reference;
//   * reassociated primitives (prefix_sum, suffix_sum, sum,
//     deconvolve_trial) must match within 1e-12 relative error.
//
// Inputs cover randomized dense probability vectors plus the adversarial
// shapes the ISSUE calls out: all-zero rows, single-element rows,
// denormal-adjacent magnitudes (~1e-308), and sizes straddling every
// vector-width boundary (2/4/8 lanes and their remainders).

#include "core/internal/vector_kernels.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "util/rng.h"
#include "util/simd.h"

namespace urank {
namespace {

// Sizes chosen to straddle 2-, 4- and 8-lane vector boundaries plus their
// off-by-one remainders, and to include cache-block-sized rows.
constexpr size_t kSizes[] = {1,  2,  3,  4,   5,    7,   8,   9,  15, 16,
                             17, 31, 32, 33,  63,   64,  65,  100, 257,
                             1000, 2048};

constexpr double kRelTol = 1e-12;

std::vector<SimdTarget> CompiledSimdTargets() {
  std::vector<SimdTarget> targets;
  for (SimdTarget t : {SimdTarget::kNeon, SimdTarget::kAvx2,
                       SimdTarget::kAvx512}) {
    if (SimdTargetAvailable(t)) targets.push_back(t);
  }
  return targets;
}

enum class Shape { kRandom, kAllZero, kDenormalAdjacent };

constexpr Shape kShapes[] = {Shape::kRandom, Shape::kAllZero,
                             Shape::kDenormalAdjacent};

const char* ShapeName(Shape s) {
  switch (s) {
    case Shape::kRandom:
      return "random";
    case Shape::kAllZero:
      return "all_zero";
    case Shape::kDenormalAdjacent:
      return "denormal_adjacent";
  }
  return "?";
}

std::vector<double> MakeRow(Rng& rng, size_t n, Shape shape) {
  std::vector<double> v(n, 0.0);
  switch (shape) {
    case Shape::kRandom:
      for (double& x : v) x = rng.Uniform01();
      break;
    case Shape::kAllZero:
      break;
    case Shape::kDenormalAdjacent:
      // Magnitudes just above the smallest normal double (~2.2e-308), so
      // intermediate products dip into the subnormal range.
      for (double& x : v) x = rng.Uniform(0.5, 1.0) * 1e-308;
      break;
  }
  return v;
}

double MaxAbs(const std::vector<double>& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

void ExpectBitIdentical(const std::vector<double>& simd,
                        const std::vector<double>& scalar,
                        const char* what) {
  ASSERT_EQ(simd.size(), scalar.size()) << what;
  for (size_t i = 0; i < simd.size(); ++i) {
    // EXPECT_EQ on doubles is exact equality; NaNs would fail, which is
    // the desired behavior (kernels must not manufacture NaNs).
    EXPECT_EQ(simd[i], scalar[i]) << what << " at index " << i;
  }
}

void ExpectWithinRelTol(const std::vector<double>& simd,
                        const std::vector<double>& scalar,
                        const char* what) {
  ASSERT_EQ(simd.size(), scalar.size()) << what;
  const double bound = kRelTol * std::max(1.0, MaxAbs(scalar));
  for (size_t i = 0; i < simd.size(); ++i) {
    EXPECT_NEAR(simd[i], scalar[i], bound) << what << " at index " << i;
  }
}

class KernelIdentityTest : public ::testing::TestWithParam<SimdTarget> {
 protected:
  const vk::KernelOps& simd_ = vk::ForTarget(GetParam());
  const vk::KernelOps& scalar_ = vk::ForTarget(SimdTarget::kScalar);
};

TEST_P(KernelIdentityTest, ConvolveTrialIsBitIdentical) {
  Rng rng(101);
  for (size_t n : kSizes) {
    for (Shape shape : kShapes) {
      const std::vector<double> base = MakeRow(rng, n, shape);
      const double p = rng.Uniform(0.01, 1.0);
      std::vector<double> a(base), b(base);
      a.resize(n + 1, -7.0);  // v[n] is written, not read
      b.resize(n + 1, -7.0);
      simd_.convolve_trial(a.data(), n, p);
      scalar_.convolve_trial(b.data(), n, p);
      ExpectBitIdentical(a, b, ShapeName(shape));
    }
  }
}

TEST_P(KernelIdentityTest, DeconvolveTrialRoundTripsWithinTol) {
  Rng rng(202);
  for (size_t n : kSizes) {
    if (n > 300) continue;  // O(n) probs per case; keep the sweep fast
    // Build a genuine n-trial Poisson-binomial pmf so both targets accept
    // the division; probabilities away from 0 and 1 avoid cancellation.
    std::vector<double> probs(n);
    for (double& p : probs) p = rng.Uniform(0.05, 0.95);
    std::vector<double> src(n + 1, 0.0);
    src[0] = 1.0;
    for (size_t t = 0; t < n; ++t) {
      scalar_.convolve_trial(src.data(), t + 1, probs[t]);
    }
    const double p = probs[n - 1];
    std::vector<double> a(n, -7.0), b(n, -7.0);
    const bool ok_simd = simd_.deconvolve_trial(src.data(), n, p, a.data());
    const bool ok_scalar =
        scalar_.deconvolve_trial(src.data(), n, p, b.data());
    ASSERT_TRUE(ok_scalar) << "n=" << n;
    ASSERT_TRUE(ok_simd) << "n=" << n;
    ExpectWithinRelTol(a, b, "deconvolve");
  }
}

TEST_P(KernelIdentityTest, DeconvolveTrialSingleTrialIsExact) {
  // n == 1: src = {1-p, p}; the reduced pmf is exactly {1.0}.
  for (double p : {0.25, 0.5, 1.0}) {
    const std::vector<double> src = {1.0 - p, p};
    double a = -7.0, b = -7.0;
    ASSERT_TRUE(simd_.deconvolve_trial(src.data(), 1, p, &a));
    ASSERT_TRUE(scalar_.deconvolve_trial(src.data(), 1, p, &b));
    EXPECT_EQ(a, b);
  }
}

TEST_P(KernelIdentityTest, PrefixSumWithinTol) {
  Rng rng(303);
  for (size_t n : kSizes) {
    for (Shape shape : kShapes) {
      const std::vector<double> base = MakeRow(rng, n, shape);
      std::vector<double> a(base), b(base);
      simd_.prefix_sum(a.data(), n);
      scalar_.prefix_sum(b.data(), n);
      ExpectWithinRelTol(a, b, ShapeName(shape));
    }
  }
  // n == 0 must be a no-op on both.
  simd_.prefix_sum(nullptr, 0);
  scalar_.prefix_sum(nullptr, 0);
}

TEST_P(KernelIdentityTest, SuffixSumWithinTolAndZeroTerminated) {
  Rng rng(404);
  for (size_t n : kSizes) {
    for (Shape shape : kShapes) {
      const std::vector<double> mass = MakeRow(rng, n, shape);
      std::vector<double> a(n + 1, -7.0), b(n + 1, -7.0);
      simd_.suffix_sum(mass.data(), a.data(), n);
      scalar_.suffix_sum(mass.data(), b.data(), n);
      EXPECT_EQ(a[n], 0.0) << ShapeName(shape);
      EXPECT_EQ(b[n], 0.0) << ShapeName(shape);
      ExpectWithinRelTol(a, b, ShapeName(shape));
    }
  }
}

TEST_P(KernelIdentityTest, SumWithinTol) {
  Rng rng(505);
  for (size_t n : kSizes) {
    for (Shape shape : kShapes) {
      const std::vector<double> v = MakeRow(rng, n, shape);
      const double a = simd_.sum(v.data(), n);
      const double b = scalar_.sum(v.data(), n);
      EXPECT_NEAR(a, b, kRelTol * std::max(1.0, std::abs(b)))
          << ShapeName(shape) << " n=" << n;
    }
  }
  EXPECT_EQ(simd_.sum(nullptr, 0), 0.0);
}

TEST_P(KernelIdentityTest, ScaleIsBitIdentical) {
  Rng rng(606);
  for (size_t n : kSizes) {
    for (Shape shape : kShapes) {
      const std::vector<double> in = MakeRow(rng, n, shape);
      const double a = rng.Uniform(0.0, 2.0);
      std::vector<double> out_simd(n, -7.0), out_scalar(n, -7.0);
      simd_.scale(out_simd.data(), in.data(), a, n);
      scalar_.scale(out_scalar.data(), in.data(), a, n);
      ExpectBitIdentical(out_simd, out_scalar, ShapeName(shape));
    }
  }
}

TEST_P(KernelIdentityTest, ScaleAddIsBitIdentical) {
  Rng rng(707);
  for (size_t n : kSizes) {
    for (Shape shape : kShapes) {
      const std::vector<double> in = MakeRow(rng, n, shape);
      const std::vector<double> acc = MakeRow(rng, n, Shape::kRandom);
      const double a = rng.Uniform(0.0, 2.0);
      std::vector<double> out_simd(acc), out_scalar(acc);
      simd_.scale_add(out_simd.data(), in.data(), a, n);
      scalar_.scale_add(out_scalar.data(), in.data(), a, n);
      ExpectBitIdentical(out_simd, out_scalar, ShapeName(shape));
    }
  }
}

TEST_P(KernelIdentityTest, ArgmaxMergeIsBitIdentical) {
  Rng rng(808);
  for (size_t n : kSizes) {
    // Quantized probabilities force exact ties, exercising the
    // smaller-id-wins and zero-never-wins branches of the tie rule.
    std::vector<double> best_simd(n, -1.0), best_scalar(n, -1.0);
    std::vector<int> win_simd(n, -1), win_scalar(n, -1);
    for (int round = 0; round < 12; ++round) {
      std::vector<double> row(n);
      for (double& x : row) {
        x = static_cast<double>(rng.UniformInt(0, 4)) / 4.0;
      }
      // Non-monotone id sequence so later rows can carry smaller ids.
      const int id = static_cast<int>(rng.UniformInt(0, 9));
      simd_.argmax_merge(row.data(), id, best_simd.data(), win_simd.data(),
                         n);
      scalar_.argmax_merge(row.data(), id, best_scalar.data(),
                           win_scalar.data(), n);
    }
    ExpectBitIdentical(best_simd, best_scalar, "argmax best");
    for (size_t c = 0; c < n; ++c) {
      EXPECT_EQ(win_simd[c], win_scalar[c]) << "winner at rank " << c;
    }
  }
}

TEST_P(KernelIdentityTest, ConvolvePrefixDeconvolveComposition) {
  // End-to-end shape mirroring the rank-distribution DP: convolve a pmf up
  // through k trials, prefix-sum it to a cdf, and deconvolve one factor
  // out — all on the SIMD target — then compare to the scalar pipeline.
  Rng rng(909);
  constexpr size_t kTrials = 200;
  std::vector<double> probs(kTrials);
  for (double& p : probs) p = rng.Uniform(0.05, 0.95);

  std::vector<double> pmf_simd = {1.0};
  std::vector<double> pmf_scalar = {1.0};
  pmf_simd.reserve(kTrials + 1);
  pmf_scalar.reserve(kTrials + 1);
  for (size_t t = 0; t < kTrials; ++t) {
    pmf_simd.resize(t + 2);
    pmf_scalar.resize(t + 2);
    simd_.convolve_trial(pmf_simd.data(), t + 1, probs[t]);
    scalar_.convolve_trial(pmf_scalar.data(), t + 1, probs[t]);
  }
  ExpectBitIdentical(pmf_simd, pmf_scalar, "pipeline pmf");

  std::vector<double> cdf_simd(pmf_simd), cdf_scalar(pmf_scalar);
  simd_.prefix_sum(cdf_simd.data(), cdf_simd.size());
  scalar_.prefix_sum(cdf_scalar.data(), cdf_scalar.size());
  ExpectWithinRelTol(cdf_simd, cdf_scalar, "pipeline cdf");
  EXPECT_NEAR(cdf_simd.back(), 1.0, 1e-9);

  std::vector<double> red_simd(kTrials, -7.0), red_scalar(kTrials, -7.0);
  ASSERT_TRUE(simd_.deconvolve_trial(pmf_simd.data(), kTrials, probs[7],
                                     red_simd.data()));
  ASSERT_TRUE(scalar_.deconvolve_trial(pmf_scalar.data(), kTrials, probs[7],
                                       red_scalar.data()));
  ExpectWithinRelTol(red_simd, red_scalar, "pipeline deconvolve");
}

INSTANTIATE_TEST_SUITE_P(
    CompiledTargets, KernelIdentityTest,
    ::testing::ValuesIn(CompiledSimdTargets()),
    [](const ::testing::TestParamInfo<SimdTarget>& info) {
      return std::string(ToString(info.param));
    });

// gtest treats an empty ValuesIn list as an error by default; on machines
// where only the scalar table is compiled (no SIMD targets available)
// there is legitimately nothing to cross-check.
GTEST_ALLOW_UNINSTANTIATED_PARAMETERIZED_TEST(KernelIdentityTest);

}  // namespace
}  // namespace urank
