// Pruned quantile / median-rank top-k vs the unpruned kernels: the pruned
// forms must return the *identical* RankedTuple vector (ids, statistics
// and tie-break order, compared with EXPECT_EQ — no tolerance) for every
// scenario, k, phi and tie policy, while the reported scan statistics
// stay sound (scanned <= stop position <= N, and a fired bound implies a
// full top-k heap).

#include "core/quantile_rank.h"

#include <vector>

#include "gtest/gtest.h"
#include "common/scenario_gen.h"
#include "core/engine/query_engine.h"
#include "test_util.h"

namespace urank {
namespace {

using testgen::AdversarialRuleTupleRelation;
using testgen::ClusteredScoreAttrRelation;
using testgen::ClusteredScoreTupleRelation;
using testgen::CorrelatedTupleRelation;
using testgen::WideRuleTupleRelation;
using testing_util::PaperFig2;
using testing_util::PaperFig4;

void ExpectSameTopK(const std::vector<RankedTuple>& unpruned,
                    const PrunedTopKResult& pruned, long long n) {
  ASSERT_EQ(pruned.topk.size(), unpruned.size());
  for (size_t i = 0; i < unpruned.size(); ++i) {
    EXPECT_EQ(pruned.topk[i].id, unpruned[i].id) << "position " << i;
    EXPECT_EQ(pruned.topk[i].statistic, unpruned[i].statistic)
        << "position " << i;
  }
  EXPECT_GE(pruned.tuples_scanned, static_cast<long long>(unpruned.size()));
  EXPECT_LE(pruned.tuples_scanned, n);
  EXPECT_GE(pruned.prune_stop_position, pruned.tuples_scanned);
  EXPECT_LE(pruned.prune_stop_position, n);
}

void CheckTuple(const TupleRelation& rel, int k, double phi, TiePolicy ties) {
  SCOPED_TRACE(::testing::Message() << "k=" << k << " phi=" << phi
                                    << " ties=" << static_cast<int>(ties));
  const auto prepared = QueryEngine::Prepare(rel);
  const std::vector<RankedTuple> unpruned =
      TupleQuantileRankTopK(*prepared, k, phi, ties);
  const PrunedTopKResult pruned =
      TupleQuantileRankTopKPrune(*prepared, k, phi, ties);
  ExpectSameTopK(unpruned, pruned, prepared->size());
}

void CheckAttr(const AttrRelation& rel, int k, double phi, TiePolicy ties) {
  const auto prepared = QueryEngine::Prepare(rel);
  const std::vector<RankedTuple> unpruned =
      AttrQuantileRankTopK(*prepared, k, phi, ties);
  const PrunedTopKResult pruned =
      AttrQuantileRankTopKPrune(*prepared, k, phi, ties);
  ExpectSameTopK(unpruned, pruned, prepared->size());
}

constexpr TiePolicy kPolicies[] = {TiePolicy::kStrictGreater,
                                   TiePolicy::kBreakByIndex};
constexpr double kPhis[] = {0.25, 0.5, 0.9, 1.0};
constexpr int kKs[] = {1, 5, 23};

TEST(TuplePruneIdentityTest, PaperExample) {
  for (TiePolicy ties : kPolicies) {
    for (double phi : kPhis) {
      for (int k : {1, 2, 3, 7}) {
        CheckTuple(PaperFig4(), k, phi, ties);
      }
    }
  }
}

TEST(TuplePruneIdentityTest, CorrelatedScenarios) {
  for (Correlation corr : {Correlation::kIndependent, Correlation::kPositive,
                           Correlation::kNegative}) {
    const TupleRelation rel = CorrelatedTupleRelation(600, corr, 7);
    for (TiePolicy ties : kPolicies) {
      for (double phi : kPhis) {
        for (int k : kKs) CheckTuple(rel, k, phi, ties);
      }
    }
  }
}

TEST(TuplePruneIdentityTest, ClusteredScores) {
  const TupleRelation rel = ClusteredScoreTupleRelation(500, 8, 11);
  for (TiePolicy ties : kPolicies) {
    for (double phi : kPhis) {
      for (int k : kKs) CheckTuple(rel, k, phi, ties);
    }
  }
}

TEST(TuplePruneIdentityTest, AdversarialRuleGraph) {
  const TupleRelation rel = AdversarialRuleTupleRelation(400, 5, 13);
  for (TiePolicy ties : kPolicies) {
    for (double phi : kPhis) {
      for (int k : kKs) CheckTuple(rel, k, phi, ties);
    }
  }
}

TEST(TuplePruneIdentityTest, WideRules) {
  const TupleRelation rel = WideRuleTupleRelation(800, 16, 17);
  for (TiePolicy ties : kPolicies) {
    for (double phi : kPhis) {
      for (int k : kKs) CheckTuple(rel, k, phi, ties);
    }
  }
}

TEST(TuplePruneIdentityTest, BoundedSupportScale) {
  // The N=1M benchmark shape at test size: a few wide rules carry every
  // tuple past a certain-tuple prefix.
  const TupleRelation rel =
      testgen::BoundedSupportTupleRelation(3000, 32, 50, 37);
  for (TiePolicy ties : kPolicies) {
    for (double phi : kPhis) {
      for (int k : kKs) CheckTuple(rel, k, phi, ties);
    }
  }
}

TEST(TuplePruneIdentityTest, KLargerThanRelation) {
  const TupleRelation rel = CorrelatedTupleRelation(20, Correlation::kPositive,
                                                    3);
  CheckTuple(rel, 50, 0.5, TiePolicy::kBreakByIndex);
}

TEST(TuplePruneTest, PositiveCorrelationActuallyPrunes) {
  // High scores carry high existence probability: the certain-prefix
  // bound must fire well before the end of a 4000-tuple stream for a
  // small k. This pins the perf property, not just the identity.
  const TupleRelation rel =
      CorrelatedTupleRelation(4000, Correlation::kPositive, 29);
  const auto prepared = QueryEngine::Prepare(rel);
  const PrunedTopKResult pruned =
      TupleQuantileRankTopKPrune(*prepared, 10, 0.5);
  EXPECT_LT(pruned.prune_stop_position, prepared->size() / 2)
      << "bound never fired on the friendliest workload";
  ExpectSameTopK(TupleQuantileRankTopK(*prepared, 10, 0.5), pruned,
                 prepared->size());
}

TEST(AttrPruneIdentityTest, PaperExample) {
  for (TiePolicy ties : kPolicies) {
    for (double phi : kPhis) {
      for (int k : {1, 2, 3, 5}) {
        CheckAttr(PaperFig2(), k, phi, ties);
      }
    }
  }
}

TEST(AttrPruneIdentityTest, ClusteredScores) {
  const AttrRelation rel = ClusteredScoreAttrRelation(300, 6, 4, 19);
  for (TiePolicy ties : kPolicies) {
    for (double phi : kPhis) {
      for (int k : kKs) CheckAttr(rel, k, phi, ties);
    }
  }
}

TEST(AttrPruneIdentityTest, NegativeSupportDegradesToFullScan) {
  // Negative support values invalidate the Markov step of the bound; the
  // kernel must fall back to a full exact scan, not a wrong answer.
  std::vector<AttrTuple> tuples;
  for (int i = 0; i < 60; ++i) {
    AttrTuple t;
    t.id = i;
    t.pdf = {{-100.0 + i, 0.5}, {static_cast<double>(i), 0.5}};
    tuples.push_back(std::move(t));
  }
  const AttrRelation rel(std::move(tuples));
  const auto prepared = QueryEngine::Prepare(rel);
  const PrunedTopKResult pruned =
      AttrQuantileRankTopKPrune(*prepared, 5, 0.5);
  EXPECT_EQ(pruned.prune_stop_position, prepared->size());
  ExpectSameTopK(AttrQuantileRankTopK(*prepared, 5, 0.5), pruned,
                 prepared->size());
}

TEST(AttrPruneTest, ConcentratedScoresActuallyPrune) {
  // Distinct well-separated expected scores with narrow pdfs: the value-
  // ladder bound must stop the scan early.
  std::vector<AttrTuple> tuples;
  for (int i = 0; i < 800; ++i) {
    AttrTuple t;
    t.id = i;
    const double centre = 10000.0 - 10.0 * i;
    t.pdf = {{centre - 1.0, 0.25}, {centre, 0.5}, {centre + 1.0, 0.25}};
    tuples.push_back(std::move(t));
  }
  const AttrRelation rel(std::move(tuples));
  const auto prepared = QueryEngine::Prepare(rel);
  const PrunedTopKResult pruned =
      AttrQuantileRankTopKPrune(*prepared, 10, 0.5);
  EXPECT_LT(pruned.prune_stop_position, prepared->size())
      << "attr bound never fired on well-separated scores";
  ExpectSameTopK(AttrQuantileRankTopK(*prepared, 10, 0.5), pruned,
                 prepared->size());
}

TEST(PruneEngineTest, QueryRequestPruneIsIdenticalAndReportsStats) {
  const TupleRelation rel = WideRuleTupleRelation(1200, 8, 23);
  QueryEngine engine{QueryEngine::Prepare(rel)};

  QueryRequest plain;
  plain.options.semantics = RankingSemantics::kQuantileRank;
  plain.options.k = 10;
  plain.options.phi = 0.5;

  QueryRequest pruned = plain;
  pruned.prune = true;

  // Fresh-engine order matters: run the pruned request first so it cannot
  // be served from a memo the plain request warmed.
  const QueryResult pr = engine.Run(pruned);
  ASSERT_TRUE(pr.status.ok());
  EXPECT_GT(pr.stats.tuples_scanned, 0);
  EXPECT_GE(pr.stats.prune_stop_position, pr.stats.tuples_scanned);
  EXPECT_FALSE(pr.stats.reused_cache);

  const QueryResult base = engine.Run(plain);
  ASSERT_TRUE(base.status.ok());
  EXPECT_EQ(pr.answer.ids, base.answer.ids);
  EXPECT_EQ(pr.answer.statistics, base.answer.statistics);

  // A pruned run never populates the statistic memo, so the plain run
  // above was a cache miss; now that the memo is warm, a prune request is
  // served from cache (cheaper than scanning).
  EXPECT_FALSE(base.stats.reused_cache);
  const QueryResult cached = engine.Run(pruned);
  ASSERT_TRUE(cached.status.ok());
  EXPECT_TRUE(cached.stats.reused_cache);
  EXPECT_EQ(cached.stats.tuples_scanned, 0);
  EXPECT_EQ(cached.stats.prune_stop_position, -1);
  EXPECT_EQ(cached.answer.ids, base.answer.ids);

  // Prune is ignored for non-quantile semantics.
  QueryRequest er = pruned;
  er.options.semantics = RankingSemantics::kExpectedRank;
  const QueryResult er_result = engine.Run(er);
  ASSERT_TRUE(er_result.status.ok());
  EXPECT_EQ(er_result.stats.tuples_scanned, 0);
  EXPECT_EQ(er_result.stats.prune_stop_position, -1);
}

TEST(PruneEngineTest, MedianRankPruneMatchesAttr) {
  const AttrRelation rel = ClusteredScoreAttrRelation(200, 5, 3, 31);
  QueryEngine engine{QueryEngine::Prepare(rel)};
  QueryRequest req;
  req.options.semantics = RankingSemantics::kMedianRank;
  req.options.k = 7;
  req.prune = true;
  const QueryResult pr = engine.Run(req);
  ASSERT_TRUE(pr.status.ok());
  req.prune = false;
  const QueryResult base = engine.Run(req);
  ASSERT_TRUE(base.status.ok());
  EXPECT_EQ(pr.answer.ids, base.answer.ids);
  EXPECT_EQ(pr.answer.statistics, base.answer.statistics);
}

}  // namespace
}  // namespace urank
