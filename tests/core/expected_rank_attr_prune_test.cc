#include <algorithm>
#include <vector>

#include "core/expected_rank_attr.h"
#include "gen/attr_gen.h"
#include "gtest/gtest.h"
#include "test_util.h"
#include "util/rank_metrics.h"
#include "util/rng.h"

namespace urank {
namespace {

using testing_util::PaperFig2;
using testing_util::RandomSmallAttr;

TEST(AttrPruneTest, PaperFig2TopOne) {
  const AttrPruneResult result = AttrExpectedRankTopKPrune(PaperFig2(), 1);
  ASSERT_EQ(result.topk.size(), 1u);
  EXPECT_EQ(result.topk[0].id, 2);
  EXPECT_LE(result.accessed, 3);
  EXPECT_GE(result.accessed, 1);
}

TEST(AttrPruneTest, FullScanEqualsExactAnswer) {
  // When pruning never fires (tiny relation), the curtailed prefix is the
  // whole relation and the answer is exact.
  Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    AttrRelation rel = RandomSmallAttr(rng, 6, 3);
    const auto exact = AttrExpectedRankTopK(rel, 3);
    const AttrPruneResult pruned = AttrExpectedRankTopKPrune(rel, 3);
    if (pruned.accessed == rel.size()) {
      ASSERT_EQ(pruned.topk.size(), exact.size());
      for (size_t i = 0; i < exact.size(); ++i) {
        EXPECT_EQ(pruned.topk[i].id, exact[i].id);
      }
    }
  }
}

TEST(AttrPruneTest, AccessesNeverExceedN) {
  AttrGenConfig config;
  config.num_tuples = 400;
  config.seed = 3;
  AttrRelation rel = GenerateAttrRelation(config);
  for (int k : {1, 5, 20}) {
    const AttrPruneResult result = AttrExpectedRankTopKPrune(rel, k);
    EXPECT_LE(result.accessed, rel.size());
    EXPECT_GE(result.accessed, std::min(k, rel.size()));
    EXPECT_EQ(static_cast<int>(result.topk.size()),
              std::min(k, rel.size()));
  }
}

TEST(AttrPruneTest, PrunesOnConcentratedScores) {
  // Tuples with well-separated expected scores and tight pdfs: the Markov
  // bounds lock in the answer long before the scan ends.
  std::vector<AttrTuple> tuples;
  const int n = 300;
  for (int i = 0; i < n; ++i) {
    const double centre = 1000.0 - i;  // descending, far above zero spread
    tuples.push_back(
        {i, {{centre - 0.1, 0.5}, {centre + 0.1, 0.5}}});
  }
  AttrRelation rel(std::move(tuples));
  const AttrPruneResult result = AttrExpectedRankTopKPrune(rel, 5);
  EXPECT_LT(result.accessed, rel.size());
  // The surrogate answer must match the exact top-5 here.
  const auto exact = AttrExpectedRankTopK(rel, 5);
  ASSERT_EQ(result.topk.size(), exact.size());
  for (size_t i = 0; i < exact.size(); ++i) {
    EXPECT_EQ(result.topk[i].id, exact[i].id);
  }
}

TEST(AttrPruneTest, SurrogateQualityIsHighOnGeneratedData) {
  AttrGenConfig config;
  config.num_tuples = 600;
  config.value_spread = 20.0;
  config.seed = 7;
  AttrRelation rel = GenerateAttrRelation(config);
  const int k = 10;
  const auto exact = IdsOf(AttrExpectedRankTopK(rel, k));
  const AttrPruneResult pruned = AttrExpectedRankTopKPrune(rel, k);
  EXPECT_GE(RecallAgainst(IdsOf(pruned.topk), exact), 0.8);
}

TEST(AttrPruneTest, SingleTuple) {
  AttrRelation rel({{0, {{5.0, 1.0}}}});
  const AttrPruneResult result = AttrExpectedRankTopKPrune(rel, 1);
  ASSERT_EQ(result.topk.size(), 1u);
  EXPECT_EQ(result.topk[0].id, 0);
  EXPECT_EQ(result.accessed, 1);
}

TEST(AttrPruneClampedTest, NeverAccessesMoreThanFaithful) {
  AttrGenConfig config;
  config.num_tuples = 500;
  config.pdf_size = 4;
  for (uint64_t seed : {21, 22, 23}) {
    config.seed = seed;
    AttrRelation rel = GenerateAttrRelation(config);
    for (int k : {1, 10, 40}) {
      const AttrPruneResult faithful =
          AttrExpectedRankTopKPrune(rel, k, /*clamp_tail_bounds=*/false);
      const AttrPruneResult clamped =
          AttrExpectedRankTopKPrune(rel, k, /*clamp_tail_bounds=*/true);
      EXPECT_LE(clamped.accessed, faithful.accessed)
          << "seed=" << seed << " k=" << k;
      // Both surrogates stay close to the exact answer.
      const auto exact = IdsOf(AttrExpectedRankTopK(rel, k));
      EXPECT_GE(RecallAgainst(IdsOf(clamped.topk), exact), 0.6);
    }
  }
}

TEST(AttrPruneClampedTest, FullScanStillExact) {
  Rng rng(30);
  for (int trial = 0; trial < 10; ++trial) {
    AttrRelation rel = RandomSmallAttr(rng, 6, 3);
    const auto exact = AttrExpectedRankTopK(rel, 3);
    const AttrPruneResult pruned =
        AttrExpectedRankTopKPrune(rel, 3, /*clamp_tail_bounds=*/true);
    if (pruned.accessed == rel.size()) {
      ASSERT_EQ(pruned.topk.size(), exact.size());
      for (size_t i = 0; i < exact.size(); ++i) {
        EXPECT_EQ(pruned.topk[i].id, exact[i].id);
      }
    }
  }
}

TEST(AttrPruneDeathTest, RejectsNonPositiveScores) {
  AttrRelation rel({{0, {{0.0, 0.5}, {2.0, 0.5}}}});
  EXPECT_DEATH(AttrExpectedRankTopKPrune(rel, 1), "positive scores");
}

TEST(AttrPruneDeathTest, RejectsNonPositiveK) {
  EXPECT_DEATH(AttrExpectedRankTopKPrune(PaperFig2(), 0), "k must be >= 1");
}

class AttrPruneSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AttrPruneSweep, SurrogateContainsMostOfExactTopK) {
  AttrGenConfig config;
  config.num_tuples = 300;
  config.pdf_size = 3;
  config.value_spread = 10.0;
  config.seed = GetParam();
  AttrRelation rel = GenerateAttrRelation(config);
  for (int k : {1, 5, 15}) {
    const auto exact = IdsOf(AttrExpectedRankTopK(rel, k));
    const AttrPruneResult pruned = AttrExpectedRankTopKPrune(rel, k);
    EXPECT_EQ(pruned.topk.size(), exact.size());
    EXPECT_GE(RecallAgainst(IdsOf(pruned.topk), exact), 0.6)
        << "k=" << k << " seed=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AttrPruneSweep,
                         ::testing::Values(101, 102, 103, 104, 105));

}  // namespace
}  // namespace urank
