#include "core/quantile_rank.h"

#include <vector>

#include "gtest/gtest.h"
#include "core/expected_rank_tuple.h"
#include "core/rank_distribution_tuple.h"
#include "model/possible_worlds.h"
#include "test_util.h"
#include "util/rng.h"

namespace urank {
namespace {

using testing_util::PaperFig2;
using testing_util::PaperFig4;
using testing_util::RandomSmallAttr;
using testing_util::RandomSmallTuple;

TEST(QuantileFromPmfTest, Basics) {
  const std::vector<double> pmf = {0.2, 0.3, 0.5};
  EXPECT_EQ(QuantileFromPmf(pmf, 0.1), 0);
  EXPECT_EQ(QuantileFromPmf(pmf, 0.2), 0);
  EXPECT_EQ(QuantileFromPmf(pmf, 0.21), 1);
  EXPECT_EQ(QuantileFromPmf(pmf, 0.5), 1);
  EXPECT_EQ(QuantileFromPmf(pmf, 0.51), 2);
  EXPECT_EQ(QuantileFromPmf(pmf, 1.0), 2);
}

TEST(QuantileFromPmfTest, PointMass) {
  EXPECT_EQ(QuantileFromPmf({0.0, 1.0, 0.0}, 0.5), 1);
  EXPECT_EQ(QuantileFromPmf({1.0}, 0.001), 0);
}

TEST(QuantileFromPmfTest, RoundOffGuard) {
  // cdf tops out at 0.999999...: the last index is returned.
  EXPECT_EQ(QuantileFromPmf({0.5, 0.4999999999}, 1.0), 1);
}

TEST(QuantileFromPmfDeathTest, RejectsBadArguments) {
  EXPECT_DEATH(QuantileFromPmf({1.0}, 0.0), "phi");
  EXPECT_DEATH(QuantileFromPmf({1.0}, 1.5), "phi");
  EXPECT_DEATH(QuantileFromPmf(std::vector<double>{}, 0.5), "non-empty");
}

TEST(MedianRankTest, PaperFig2Values) {
  // Paper Section 7.1: r_m(t1) = 2, r_m(t2) = 1, r_m(t3) = 1;
  // final ranking (t2, t3, t1).
  const std::vector<int> medians = AttrMedianRanks(PaperFig2());
  EXPECT_EQ(medians, (std::vector<int>{2, 1, 1}));
  const auto topk = AttrQuantileRankTopK(PaperFig2(), 3, 0.5);
  ASSERT_EQ(topk.size(), 3u);
  EXPECT_EQ(topk[0].id, 2);
  EXPECT_EQ(topk[1].id, 3);
  EXPECT_EQ(topk[2].id, 1);
}

TEST(MedianRankTest, PaperFig4Values) {
  // Paper Section 7.1: r_m(t1) = 2, r_m(t2) = 1, r_m(t3) = 1, r_m(t4) = 2;
  // final ranking (t2, t3, t1, t4).
  const std::vector<int> medians = TupleMedianRanks(PaperFig4());
  EXPECT_EQ(medians, (std::vector<int>{2, 1, 1, 2}));
  const auto topk = TupleQuantileRankTopK(PaperFig4(), 4, 0.5);
  ASSERT_EQ(topk.size(), 4u);
  EXPECT_EQ(topk[0].id, 2);
  EXPECT_EQ(topk[1].id, 3);
  EXPECT_EQ(topk[2].id, 1);
  EXPECT_EQ(topk[3].id, 4);
}

TEST(QuantileRankTest, MonotoneInPhi) {
  Rng rng(1);
  AttrRelation arel = RandomSmallAttr(rng, 6, 3);
  const auto q25 = AttrQuantileRanks(arel, 0.25);
  const auto q50 = AttrQuantileRanks(arel, 0.5);
  const auto q75 = AttrQuantileRanks(arel, 0.75);
  for (int i = 0; i < arel.size(); ++i) {
    EXPECT_LE(q25[static_cast<size_t>(i)], q50[static_cast<size_t>(i)]);
    EXPECT_LE(q50[static_cast<size_t>(i)], q75[static_cast<size_t>(i)]);
  }
  TupleRelation trel = RandomSmallTuple(rng, 7);
  const auto t25 = TupleQuantileRanks(trel, 0.25);
  const auto t75 = TupleQuantileRanks(trel, 0.75);
  for (int i = 0; i < trel.size(); ++i) {
    EXPECT_LE(t25[static_cast<size_t>(i)], t75[static_cast<size_t>(i)]);
  }
}

TEST(QuantileRankTest, MatchesEnumerationQuantiles) {
  Rng rng(2);
  for (int trial = 0; trial < 5; ++trial) {
    AttrRelation arel = RandomSmallAttr(rng, 5, 3);
    for (double phi : {0.25, 0.5, 0.9}) {
      const auto fast = AttrQuantileRanks(arel, phi);
      const auto worlds = AttrRankDistributionsByEnumeration(
          arel, TiePolicy::kBreakByIndex);
      for (int i = 0; i < arel.size(); ++i) {
        EXPECT_EQ(fast[static_cast<size_t>(i)],
                  QuantileFromPmf(worlds[static_cast<size_t>(i)], phi));
      }
    }
    TupleRelation trel = RandomSmallTuple(rng, 7);
    for (double phi : {0.25, 0.5, 0.9}) {
      const auto fast = TupleQuantileRanks(trel, phi);
      const auto worlds = TupleRankDistributionsByEnumeration(
          trel, TiePolicy::kBreakByIndex);
      for (int i = 0; i < trel.size(); ++i) {
        EXPECT_EQ(fast[static_cast<size_t>(i)],
                  QuantileFromPmf(worlds[static_cast<size_t>(i)], phi));
      }
    }
  }
}

TEST(QuantileRankTest, CertainDataQuantileIsSortPosition) {
  AttrRelation rel({
      {0, {{10.0, 1.0}}},
      {1, {{30.0, 1.0}}},
      {2, {{20.0, 1.0}}},
  });
  for (double phi : {0.1, 0.5, 0.99}) {
    EXPECT_EQ(AttrQuantileRanks(rel, phi), (std::vector<int>{2, 0, 1}));
  }
}

TEST(QuantileRankTest, ExtremePhiOnTupleModel) {
  // phi = 1 gives the maximum possible rank; phi near 0 the minimum.
  TupleRelation rel = PaperFig4();
  const auto qmax = TupleQuantileRanks(rel, 1.0);
  const auto qmin = TupleQuantileRanks(rel, 0.001);
  for (int i = 0; i < rel.size(); ++i) {
    EXPECT_LE(qmin[static_cast<size_t>(i)], qmax[static_cast<size_t>(i)]);
  }
  // t1's rank is 0 (present, 0.4) or 2 (absent): min 0, max 2.
  EXPECT_EQ(qmin[0], 0);
  EXPECT_EQ(qmax[0], 2);
}

TEST(SummarizeRankDistributionTest, PointMass) {
  const RankDistributionSummary s = SummarizeRankDistribution({0.0, 1.0, 0.0});
  EXPECT_DOUBLE_EQ(s.mean, 1.0);
  EXPECT_DOUBLE_EQ(s.variance, 0.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.median, 1);
  EXPECT_EQ(s.q25, 1);
  EXPECT_EQ(s.q75, 1);
  EXPECT_EQ(s.mode, 1);
  EXPECT_EQ(s.min_rank, 1);
  EXPECT_EQ(s.max_rank, 1);
}

TEST(SummarizeRankDistributionTest, PaperFig2T1) {
  // rank(t1) = {(0, 0.4), (1, 0), (2, 0.6)}.
  const RankDistributionSummary s = SummarizeRankDistribution({0.4, 0.0, 0.6});
  EXPECT_NEAR(s.mean, 1.2, 1e-12);
  EXPECT_NEAR(s.variance, 0.4 * 1.2 * 1.2 + 0.6 * 0.8 * 0.8, 1e-12);
  EXPECT_EQ(s.median, 2);
  EXPECT_EQ(s.q25, 0);
  EXPECT_EQ(s.q75, 2);
  EXPECT_EQ(s.mode, 2);
  EXPECT_EQ(s.min_rank, 0);
  EXPECT_EQ(s.max_rank, 2);
}

TEST(SummarizeRankDistributionTest, AgreesWithDedicatedFunctions) {
  Rng rng(9);
  const TupleRelation rel = RandomSmallTuple(rng, 8);
  const auto dists = TupleRankDistributions(rel);
  const auto medians = TupleMedianRanks(rel);
  const auto er = TupleExpectedRanks(rel, TiePolicy::kBreakByIndex);
  for (int i = 0; i < rel.size(); ++i) {
    const RankDistributionSummary s =
        SummarizeRankDistribution(dists[static_cast<size_t>(i)]);
    EXPECT_EQ(s.median, medians[static_cast<size_t>(i)]);
    EXPECT_NEAR(s.mean, er[static_cast<size_t>(i)], 1e-9);
    EXPECT_LE(s.q25, s.median);
    EXPECT_LE(s.median, s.q75);
    EXPECT_LE(s.min_rank, s.mode);
    EXPECT_LE(s.mode, s.max_rank);
    EXPECT_GE(s.variance, -1e-12);
  }
}

TEST(SummarizeRankDistributionDeathTest, RejectsBadPmf) {
  EXPECT_DEATH(SummarizeRankDistribution({}), "non-empty");
  EXPECT_DEATH(SummarizeRankDistribution({0.5, 0.4}), "sum to");
  EXPECT_DEATH(SummarizeRankDistribution({1.5, -0.5}), "non-negative");
}

TEST(QuantileRankTopKDeathTest, RejectsBadArguments) {
  EXPECT_DEATH(AttrQuantileRankTopK(PaperFig2(), 0, 0.5), "k must be >= 1");
  EXPECT_DEATH(TupleQuantileRankTopK(PaperFig4(), 1, 0.0), "phi");
}

}  // namespace
}  // namespace urank
