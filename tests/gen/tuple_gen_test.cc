#include "gen/tuple_gen.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"

namespace urank {
namespace {

TEST(TupleGenTest, ProducesValidRelation) {
  TupleGenConfig config;
  config.num_tuples = 500;
  TupleRelation rel = GenerateTupleRelation(config);
  EXPECT_EQ(rel.size(), 500);
  std::string error;
  EXPECT_TRUE(TupleRelation::Validate(rel.tuples(), rel.rules(), &error))
      << error;
}

TEST(TupleGenTest, RuleSizesWithinBound) {
  TupleGenConfig config;
  config.num_tuples = 300;
  config.multi_rule_fraction = 0.5;
  config.max_rule_size = 4;
  TupleRelation rel = GenerateTupleRelation(config);
  int multi = 0;
  for (int r = 0; r < rel.num_rules(); ++r) {
    EXPECT_LE(static_cast<int>(rel.rule(r).size()), 4);
    if (rel.rule(r).size() > 1) multi += static_cast<int>(rel.rule(r).size());
  }
  // About half the tuples should sit in multi-tuple rules.
  EXPECT_NEAR(multi, 150, 10);
}

TEST(TupleGenTest, ZeroMultiRuleFractionGivesIndependentTuples) {
  TupleGenConfig config;
  config.num_tuples = 100;
  config.multi_rule_fraction = 0.0;
  config.max_rule_size = 1;  // irrelevant when fraction is 0
  TupleRelation rel = GenerateTupleRelation(config);
  EXPECT_EQ(rel.num_rules(), 100);
}

TEST(TupleGenTest, RuleProbabilitySumsAtMostOne) {
  TupleGenConfig config;
  config.num_tuples = 400;
  config.multi_rule_fraction = 0.8;
  config.max_rule_size = 5;
  config.prob_lo = 0.5;  // high probabilities force rescaling
  config.prob_hi = 1.0;
  TupleRelation rel = GenerateTupleRelation(config);
  for (int r = 0; r < rel.num_rules(); ++r) {
    EXPECT_LE(rel.rule_prob_sum(r), 1.0 + 1e-9);
  }
}

TEST(TupleGenTest, ProbabilityRangeRespectedForSingletons) {
  TupleGenConfig config;
  config.num_tuples = 200;
  config.multi_rule_fraction = 0.0;
  config.prob_lo = 0.3;
  config.prob_hi = 0.6;
  TupleRelation rel = GenerateTupleRelation(config);
  for (const TLTuple& t : rel.tuples()) {
    EXPECT_GE(t.prob, 0.3 - 1e-9);
    EXPECT_LE(t.prob, 0.6 + 1e-9);
  }
}

TEST(TupleGenTest, DeterministicForSameSeed) {
  TupleGenConfig config;
  config.num_tuples = 150;
  config.seed = 9;
  TupleRelation a = GenerateTupleRelation(config);
  TupleRelation b = GenerateTupleRelation(config);
  ASSERT_EQ(a.size(), b.size());
  for (int i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.tuple(i), b.tuple(i));
  }
  EXPECT_EQ(a.rules(), b.rules());
}

TEST(TupleGenTest, CorrelationModesProduceExpectedSign) {
  for (auto [corr, positive] :
       {std::pair{Correlation::kPositive, true},
        std::pair{Correlation::kNegative, false}}) {
    TupleGenConfig config;
    config.num_tuples = 1000;
    config.multi_rule_fraction = 0.0;
    config.correlation = corr;
    config.prob_lo = 0.05;
    TupleRelation rel = GenerateTupleRelation(config);
    // Compare mean probability of the top and bottom score halves.
    std::vector<TLTuple> tuples = rel.tuples();
    std::sort(tuples.begin(), tuples.end(),
              [](const TLTuple& a, const TLTuple& b) {
                return a.score > b.score;
              });
    double top = 0.0, bottom = 0.0;
    const size_t half = tuples.size() / 2;
    for (size_t i = 0; i < half; ++i) top += tuples[i].prob;
    for (size_t i = half; i < tuples.size(); ++i) bottom += tuples[i].prob;
    if (positive) {
      EXPECT_GT(top, bottom * 1.5);
    } else {
      EXPECT_GT(bottom, top * 1.5);
    }
  }
}

TEST(TupleGenTest, EmptyRelation) {
  TupleGenConfig config;
  config.num_tuples = 0;
  EXPECT_EQ(GenerateTupleRelation(config).size(), 0);
}

TEST(TupleGenDeathTest, RejectsBadConfig) {
  TupleGenConfig config;
  config.num_tuples = -2;
  EXPECT_DEATH(GenerateTupleRelation(config), "num_tuples");
  config.num_tuples = 10;
  config.multi_rule_fraction = 1.5;
  EXPECT_DEATH(GenerateTupleRelation(config), "multi_rule_fraction");
  config.multi_rule_fraction = 0.5;
  config.max_rule_size = 1;
  EXPECT_DEATH(GenerateTupleRelation(config), "max_rule_size");
}

}  // namespace
}  // namespace urank
