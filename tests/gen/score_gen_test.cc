#include "gen/score_gen.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "gtest/gtest.h"
#include "util/rng.h"

namespace urank {
namespace {

// Pearson correlation between two equal-length series.
double Pearson(const std::vector<double>& x, const std::vector<double>& y) {
  const double n = static_cast<double>(x.size());
  const double mx = std::accumulate(x.begin(), x.end(), 0.0) / n;
  const double my = std::accumulate(y.begin(), y.end(), 0.0) / n;
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  return sxy / std::sqrt(sxx * syy);
}

TEST(GenerateScoresTest, UniformWithinRange) {
  Rng rng(1);
  const auto scores =
      GenerateScores(1000, ScoreDistribution::kUniform, 500.0, 1.0, rng);
  ASSERT_EQ(scores.size(), 1000u);
  for (double s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LT(s, 500.0);
  }
}

TEST(GenerateScoresTest, NormalClampedAndCentred) {
  Rng rng(2);
  const auto scores =
      GenerateScores(5000, ScoreDistribution::kNormal, 100.0, 1.0, rng);
  double mean = std::accumulate(scores.begin(), scores.end(), 0.0) / 5000.0;
  EXPECT_NEAR(mean, 50.0, 2.0);
  for (double s : scores) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 100.0);
  }
}

TEST(GenerateScoresTest, ZipfProducesSkew) {
  Rng rng(3);
  const auto scores =
      GenerateScores(5000, ScoreDistribution::kZipf, 1000.0, 1.2, rng);
  // Rank-1 draws map to the max score; they must be the most frequent.
  int at_max = 0;
  for (double s : scores) {
    if (s == 1000.0) ++at_max;
  }
  EXPECT_GT(at_max, 500);
}

TEST(GenerateScoresTest, ZeroCount) {
  Rng rng(4);
  for (auto dist : {ScoreDistribution::kUniform, ScoreDistribution::kNormal,
                    ScoreDistribution::kZipf}) {
    EXPECT_TRUE(GenerateScores(0, dist, 10.0, 1.0, rng).empty());
  }
}

TEST(GenerateProbabilitiesTest, IndependentWithinRange) {
  Rng rng(5);
  std::vector<double> scores(1000);
  for (double& s : scores) s = rng.Uniform01();
  const auto probs = GenerateProbabilities(scores, Correlation::kIndependent,
                                           0.2, 0.9, rng);
  for (double p : probs) {
    EXPECT_GE(p, 0.2);
    EXPECT_LE(p, 0.9);
  }
  // Independent: |correlation| should be small.
  EXPECT_LT(std::fabs(Pearson(scores, probs)), 0.1);
}

TEST(GenerateProbabilitiesTest, PositiveCorrelation) {
  Rng rng(6);
  std::vector<double> scores(1000);
  for (double& s : scores) s = rng.Uniform(0.0, 100.0);
  const auto probs =
      GenerateProbabilities(scores, Correlation::kPositive, 0.1, 1.0, rng);
  EXPECT_GT(Pearson(scores, probs), 0.6);
}

TEST(GenerateProbabilitiesTest, NegativeCorrelation) {
  Rng rng(7);
  std::vector<double> scores(1000);
  for (double& s : scores) s = rng.Uniform(0.0, 100.0);
  const auto probs =
      GenerateProbabilities(scores, Correlation::kNegative, 0.1, 1.0, rng);
  EXPECT_LT(Pearson(scores, probs), -0.6);
}

TEST(GenerateProbabilitiesTest, SingleElement) {
  Rng rng(8);
  const auto probs = GenerateProbabilities({5.0}, Correlation::kPositive,
                                           0.3, 0.8, rng);
  ASSERT_EQ(probs.size(), 1u);
  EXPECT_GE(probs[0], 0.3);
  EXPECT_LE(probs[0], 0.8);
}

TEST(GenerateProbabilitiesDeathTest, RejectsBadRange) {
  Rng rng(9);
  EXPECT_DEATH(
      GenerateProbabilities({1.0}, Correlation::kIndependent, 0.0, 0.5, rng),
      "prob_lo");
  EXPECT_DEATH(
      GenerateProbabilities({1.0}, Correlation::kIndependent, 0.6, 0.5, rng),
      "prob_lo");
  EXPECT_DEATH(
      GenerateProbabilities({1.0}, Correlation::kIndependent, 0.5, 1.5, rng),
      "prob_lo");
}

TEST(ToStringTest, Names) {
  EXPECT_STREQ(ToString(ScoreDistribution::kUniform), "uniform");
  EXPECT_STREQ(ToString(ScoreDistribution::kNormal), "normal");
  EXPECT_STREQ(ToString(ScoreDistribution::kZipf), "zipf");
  EXPECT_STREQ(ToString(Correlation::kIndependent), "independent");
  EXPECT_STREQ(ToString(Correlation::kPositive), "positive");
  EXPECT_STREQ(ToString(Correlation::kNegative), "negative");
}

}  // namespace
}  // namespace urank
