#include "gen/attr_gen.h"

#include <string>
#include <unordered_set>

#include "gtest/gtest.h"

namespace urank {
namespace {

TEST(AttrGenTest, ProducesValidRelation) {
  AttrGenConfig config;
  config.num_tuples = 500;
  config.pdf_size = 4;
  AttrRelation rel = GenerateAttrRelation(config);
  EXPECT_EQ(rel.size(), 500);
  std::string error;
  EXPECT_TRUE(AttrRelation::Validate(rel.tuples(), &error)) << error;
}

TEST(AttrGenTest, RespectsPdfSize) {
  for (int s : {1, 2, 7}) {
    AttrGenConfig config;
    config.num_tuples = 50;
    config.pdf_size = s;
    AttrRelation rel = GenerateAttrRelation(config);
    for (const AttrTuple& t : rel.tuples()) {
      EXPECT_EQ(static_cast<int>(t.pdf.size()), s);
    }
  }
}

TEST(AttrGenTest, IdsAreSequential) {
  AttrGenConfig config;
  config.num_tuples = 20;
  AttrRelation rel = GenerateAttrRelation(config);
  for (int i = 0; i < rel.size(); ++i) {
    EXPECT_EQ(rel.tuple(i).id, i);
  }
}

TEST(AttrGenTest, DeterministicForSameSeed) {
  AttrGenConfig config;
  config.num_tuples = 100;
  config.seed = 77;
  AttrRelation a = GenerateAttrRelation(config);
  AttrRelation b = GenerateAttrRelation(config);
  ASSERT_EQ(a.size(), b.size());
  for (int i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.tuple(i).pdf, b.tuple(i).pdf);
  }
}

TEST(AttrGenTest, DifferentSeedsDiffer) {
  AttrGenConfig config;
  config.num_tuples = 100;
  config.seed = 1;
  AttrRelation a = GenerateAttrRelation(config);
  config.seed = 2;
  AttrRelation b = GenerateAttrRelation(config);
  int differing = 0;
  for (int i = 0; i < a.size(); ++i) {
    if (!(a.tuple(i).pdf == b.tuple(i).pdf)) ++differing;
  }
  EXPECT_GT(differing, 90);
}

TEST(AttrGenTest, ValueSpreadBoundsSupport) {
  AttrGenConfig config;
  config.num_tuples = 200;
  config.pdf_size = 3;
  config.value_spread = 5.0;
  AttrRelation rel = GenerateAttrRelation(config);
  for (const AttrTuple& t : rel.tuples()) {
    double lo = t.pdf[0].value, hi = t.pdf[0].value;
    for (const ScoreValue& sv : t.pdf) {
      lo = std::min(lo, sv.value);
      hi = std::max(hi, sv.value);
    }
    EXPECT_LE(hi - lo, 10.0 + 1e-9);
  }
}

TEST(AttrGenTest, ZeroSpreadStillDistinctValues) {
  AttrGenConfig config;
  config.num_tuples = 30;
  config.pdf_size = 3;
  config.value_spread = 0.0;
  AttrRelation rel = GenerateAttrRelation(config);
  for (const AttrTuple& t : rel.tuples()) {
    std::unordered_set<double> values;
    for (const ScoreValue& sv : t.pdf) {
      EXPECT_TRUE(values.insert(sv.value).second);
    }
  }
}

TEST(AttrGenTest, EmptyRelation) {
  AttrGenConfig config;
  config.num_tuples = 0;
  EXPECT_EQ(GenerateAttrRelation(config).size(), 0);
}

TEST(AttrGenDeathTest, RejectsBadConfig) {
  AttrGenConfig config;
  config.num_tuples = -1;
  EXPECT_DEATH(GenerateAttrRelation(config), "num_tuples");
  config.num_tuples = 10;
  config.pdf_size = 0;
  EXPECT_DEATH(GenerateAttrRelation(config), "pdf_size");
  config.pdf_size = 2;
  config.value_spread = -1.0;
  EXPECT_DEATH(GenerateAttrRelation(config), "value_spread");
}

}  // namespace
}  // namespace urank
