// End-to-end tests across the whole stack: generate realistic workloads,
// run every ranking definition, and check cross-algorithm invariants at
// sizes well beyond the unit tests.

#include <algorithm>
#include <vector>

#include "core/expected_rank_attr.h"
#include "core/expected_rank_tuple.h"
#include "core/quantile_rank.h"
#include "core/semantics/expected_score.h"
#include "core/semantics/global_topk.h"
#include "core/semantics/pt_k.h"
#include "core/semantics/semantics.h"
#include "core/semantics/u_kranks.h"
#include "core/semantics/u_topk.h"
#include "gen/attr_gen.h"
#include "gen/tuple_gen.h"
#include "gtest/gtest.h"
#include "util/rank_metrics.h"

namespace urank {
namespace {

TEST(IntegrationTest, AttrPipelineAtScale) {
  AttrGenConfig config;
  config.num_tuples = 3000;
  config.pdf_size = 5;
  config.seed = 11;
  AttrRelation rel = GenerateAttrRelation(config);

  const std::vector<double> fast = AttrExpectedRanks(rel);
  const std::vector<double> brute = AttrExpectedRanksBruteForce(rel);
  ASSERT_EQ(fast.size(), brute.size());
  for (size_t i = 0; i < fast.size(); ++i) {
    ASSERT_NEAR(fast[i], brute[i], 1e-6);
  }

  const auto topk = AttrExpectedRankTopK(rel, 20);
  EXPECT_EQ(topk.size(), 20u);
  const AttrPruneResult pruned = AttrExpectedRankTopKPrune(rel, 20);
  EXPECT_LE(pruned.accessed, rel.size());
  EXPECT_GE(RecallAgainst(IdsOf(pruned.topk), IdsOf(topk)), 0.7);
}

TEST(IntegrationTest, TuplePipelineAtScale) {
  TupleGenConfig config;
  config.num_tuples = 20000;
  config.multi_rule_fraction = 0.4;
  config.max_rule_size = 4;
  config.seed = 12;
  TupleRelation rel = GenerateTupleRelation(config);

  const std::vector<double> fast = TupleExpectedRanks(rel);
  const std::vector<double> brute = TupleExpectedRanksBruteForce(rel);
  for (size_t i = 0; i < fast.size(); i += 97) {  // spot-check
    ASSERT_NEAR(fast[i], brute[i], 1e-6);
  }

  const auto exact = TupleExpectedRankTopK(rel, 50);
  const TuplePruneResult pruned = TupleExpectedRankTopKPrune(rel, 50);
  ASSERT_EQ(pruned.topk.size(), exact.size());
  for (size_t i = 0; i < exact.size(); ++i) {
    EXPECT_EQ(pruned.topk[i].id, exact[i].id);
  }
  EXPECT_LT(pruned.accessed, rel.size());
}

TEST(IntegrationTest, RankSemanticsFamilyAgreesOnDominantTuple) {
  // A tuple that certainly has the highest score must be ranked first by
  // every sensible definition.
  std::vector<TLTuple> tuples;
  tuples.push_back({0, 1000.0, 1.0});
  for (int i = 1; i < 200; ++i) {
    tuples.push_back({i, 500.0 - i, 0.5});
  }
  TupleRelation rel = TupleRelation::Independent(std::move(tuples));
  EXPECT_EQ(TupleExpectedRankTopK(rel, 1)[0].id, 0);
  EXPECT_EQ(TupleQuantileRankTopK(rel, 1, 0.5)[0].id, 0);
  EXPECT_EQ(TupleGlobalTopK(rel, 1)[0], 0);
  EXPECT_EQ(TupleUKRanks(rel, 1)[0], 0);
  EXPECT_EQ(TupleUTopK(rel, 1).ids, (std::vector<int>{0}));
  EXPECT_EQ(TupleExpectedScoreTopK(rel, 1)[0].id, 0);
}

TEST(IntegrationTest, ExpectedAndMedianRanksCorrelateOnGeneratedData) {
  TupleGenConfig config;
  config.num_tuples = 300;
  config.seed = 13;
  TupleRelation rel = GenerateTupleRelation(config);
  const int k = 30;
  const auto er = IdsOf(TupleExpectedRankTopK(rel, k));
  const auto mr = IdsOf(TupleQuantileRankTopK(rel, k, 0.5));
  EXPECT_GE(TopKOverlap(er, mr), 0.5);
}

TEST(IntegrationTest, KendallDistanceBetweenSemanticsIsWellFormed) {
  TupleGenConfig config;
  config.num_tuples = 120;
  config.seed = 14;
  TupleRelation rel = GenerateTupleRelation(config);
  const int n = rel.size();
  const auto er = IdsOf(TupleExpectedRankTopK(rel, n));
  const auto mr = IdsOf(TupleQuantileRankTopK(rel, n, 0.5));
  const auto es = IdsOf(TupleExpectedScoreTopK(rel, n));
  const double d_er_mr = KendallTauDistance(er, mr);
  const double d_er_es = KendallTauDistance(er, es);
  EXPECT_GE(d_er_mr, 0.0);
  EXPECT_LE(d_er_mr, 1.0);
  EXPECT_GE(d_er_es, 0.0);
  EXPECT_LE(d_er_es, 1.0);
  // Expected rank should be closer to median rank than to a random
  // shuffle; sanity bound only.
  EXPECT_LT(d_er_mr, 0.4);
}

TEST(IntegrationTest, PTkThresholdSweepNestsAnswers) {
  TupleGenConfig config;
  config.num_tuples = 150;
  config.seed = 15;
  TupleRelation rel = GenerateTupleRelation(config);
  std::vector<int> prev;
  bool first = true;
  for (double threshold : {0.9, 0.7, 0.5, 0.3, 0.1}) {
    std::vector<int> cur = TuplePTk(rel, 10, threshold);
    std::sort(cur.begin(), cur.end());
    if (!first) {
      // Lower thresholds can only add tuples.
      EXPECT_TRUE(std::includes(cur.begin(), cur.end(), prev.begin(),
                                prev.end()));
    }
    prev = std::move(cur);
    first = false;
  }
}

TEST(IntegrationTest, QuantileRanksBoundExpectedRankNeighbourhood) {
  // r_0.25 <= r_0.5 <= r_0.75 and the expected rank sits within
  // [min rank, max rank] of the distribution; spot-check consistency on a
  // mid-size generated instance.
  TupleGenConfig config;
  config.num_tuples = 400;
  config.seed = 16;
  TupleRelation rel = GenerateTupleRelation(config);
  const auto q25 = TupleQuantileRanks(rel, 0.25);
  const auto q75 = TupleQuantileRanks(rel, 0.75);
  const auto er = TupleExpectedRanks(rel, TiePolicy::kBreakByIndex);
  int er_within = 0;
  for (int i = 0; i < rel.size(); ++i) {
    ASSERT_LE(q25[static_cast<size_t>(i)], q75[static_cast<size_t>(i)]);
    if (er[static_cast<size_t>(i)] >= q25[static_cast<size_t>(i)] - 1.0 &&
        er[static_cast<size_t>(i)] <= q75[static_cast<size_t>(i)] + 1.0) {
      ++er_within;
    }
  }
  // The mean usually lies near the inter-quartile range.
  EXPECT_GT(er_within, rel.size() / 2);
}

TEST(IntegrationTest, ZipfWorkloadEndToEnd) {
  AttrGenConfig config;
  config.num_tuples = 1000;
  config.score_dist = ScoreDistribution::kZipf;
  config.zipf_theta = 1.1;
  config.seed = 17;
  AttrRelation rel = GenerateAttrRelation(config);
  const auto topk = AttrExpectedRankTopK(rel, 10);
  EXPECT_EQ(topk.size(), 10u);
  // Sanity: the best expected rank beats the relation's average.
  EXPECT_LT(topk[0].statistic, rel.size() / 2.0);
}

}  // namespace
}  // namespace urank
