// Shared helpers for the urank test suite: the paper's worked examples
// (Figs. 2 and 4) and randomized small-instance generators for
// cross-checking the polynomial algorithms against possible-worlds
// enumeration.

#ifndef URANK_TESTS_TEST_UTIL_H_
#define URANK_TESTS_TEST_UTIL_H_

#include <span>
#include <vector>

#include "gtest/gtest.h"
#include "model/attr_model.h"
#include "model/tuple_model.h"
#include "util/rng.h"

namespace urank {
namespace testing_util {

// The attribute-level example of paper Fig. 2:
//   t1 {(100, 0.4), (70, 0.6)}, t2 {(92, 0.6), (80, 0.4)}, t3 {(85, 1)}.
// Ids are 1-based to match the paper's t1..t3.
inline AttrRelation PaperFig2() {
  return AttrRelation({
      {1, {{100.0, 0.4}, {70.0, 0.6}}},
      {2, {{92.0, 0.6}, {80.0, 0.4}}},
      {3, {{85.0, 1.0}}},
  });
}

// The tuple-level example of paper Fig. 4:
//   t1 (p=0.4), t2 (p=0.5), t3 (p=1.0), t4 (p=0.5), scores descending in
//   index order; rules {t1}, {t2, t4}, {t3}. Ids are 1-based.
inline TupleRelation PaperFig4() {
  return TupleRelation(
      {
          {1, 100.0, 0.4},
          {2, 90.0, 0.5},
          {3, 80.0, 1.0},
          {4, 70.0, 0.5},
      },
      {{0}, {1, 3}, {2}});
}

// A random small attribute-level relation with enumerable worlds: n tuples,
// pdf sizes in [1, max_s], values from a small integer grid (to exercise
// cross-tuple ties), probabilities from the simplex.
inline AttrRelation RandomSmallAttr(Rng& rng, int n, int max_s,
                                    int value_grid = 12) {
  std::vector<AttrTuple> tuples;
  for (int i = 0; i < n; ++i) {
    const int s = static_cast<int>(rng.UniformInt(1, max_s));
    std::vector<double> probs = rng.RandomSimplex(s, 1.0);
    AttrTuple t;
    t.id = i;
    // Distinct values within the tuple, drawn without replacement from the
    // grid.
    std::vector<int> grid(static_cast<size_t>(value_grid));
    for (int g = 0; g < value_grid; ++g) grid[static_cast<size_t>(g)] = g + 1;
    rng.Shuffle(grid);
    for (int l = 0; l < s; ++l) {
      t.pdf.push_back({static_cast<double>(grid[static_cast<size_t>(l)]),
                       probs[static_cast<size_t>(l)]});
    }
    tuples.push_back(std::move(t));
  }
  return AttrRelation(std::move(tuples));
}

// A random small tuple-level relation with enumerable worlds. Roughly half
// the tuples are paired into 2-3 member exclusion rules. Scores come from
// a small grid so ties occur.
inline TupleRelation RandomSmallTuple(Rng& rng, int n, int value_grid = 12) {
  std::vector<TLTuple> tuples;
  for (int i = 0; i < n; ++i) {
    tuples.push_back(
        {i, static_cast<double>(rng.UniformInt(1, value_grid)),
         rng.Uniform(0.05, 1.0)});
  }
  std::vector<int> pool(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) pool[static_cast<size_t>(i)] = i;
  rng.Shuffle(pool);
  std::vector<std::vector<int>> rules;
  size_t pos = 0;
  while (pos + 1 < pool.size() / 2 + 1 && pos + 1 < pool.size()) {
    const size_t size = static_cast<size_t>(rng.UniformInt(2, 3));
    const size_t end = std::min(pos + size, pool.size());
    if (end - pos < 2) break;
    std::vector<int> members(pool.begin() + static_cast<long>(pos),
                             pool.begin() + static_cast<long>(end));
    double sum = 0.0;
    for (int idx : members) sum += tuples[static_cast<size_t>(idx)].prob;
    if (sum > 1.0) {
      for (int idx : members) {
        tuples[static_cast<size_t>(idx)].prob *= (1.0 - 1e-9) / sum;
      }
    }
    rules.push_back(std::move(members));
    pos = end;
  }
  return TupleRelation(std::move(tuples), std::move(rules));
}

// EXPECT element-wise closeness of two double sequences. `actual` is a
// span so the streamed kernel callbacks (which hand out views of aligned
// scratch) can be checked without copying; braced-init expected values
// bind to the vector parameter.
inline void ExpectNearVectors(std::span<const double> actual,
                              const std::vector<double>& expected,
                              double tol) {
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_NEAR(actual[i], expected[i], tol) << "at index " << i;
  }
}

}  // namespace testing_util
}  // namespace urank

#endif  // URANK_TESTS_TEST_UTIL_H_
