// Cache-keying and eviction tests for serve/result_cache.h — the
// satellite-4 contract: identical queries hit, an epoch bump misses,
// parameter canonicalization shares entries only where semantics permit,
// and eviction respects the byte budget in LRU order. (Bypass semantics —
// no lookup, no insert — are a Server decision and are covered in
// server_test.cc.)

#include "serve/result_cache.h"

#include <memory>
#include <string>

#include "gtest/gtest.h"

namespace urank {
namespace serve {
namespace {

std::shared_ptr<const RankingAnswer> MakeAnswer(int n) {
  RankingAnswer answer;
  for (int i = 0; i < n; ++i) {
    answer.ids.push_back(i);
    answer.statistics.push_back(i * 0.5);
  }
  return std::make_shared<const RankingAnswer>(std::move(answer));
}

RankingQueryOptions MakeOptions(RankingSemantics semantics, int k) {
  RankingQueryOptions options;
  options.semantics = semantics;
  options.k = k;
  return options;
}

TEST(ResultCacheKey, IdenticalQueriesShareOneKey) {
  const ResultCacheKey a =
      MakeResultCacheKey("r", 1, MakeOptions(RankingSemantics::kExpectedRank, 10));
  const ResultCacheKey b =
      MakeResultCacheKey("r", 1, MakeOptions(RankingSemantics::kExpectedRank, 10));
  EXPECT_TRUE(a == b);
  EXPECT_EQ(ResultCacheKey::Hash{}(a), ResultCacheKey::Hash{}(b));
}

TEST(ResultCacheKey, EpochRelationAndParametersSeparateKeys) {
  const RankingQueryOptions options =
      MakeOptions(RankingSemantics::kExpectedRank, 10);
  const ResultCacheKey base = MakeResultCacheKey("r", 1, options);
  EXPECT_FALSE(base == MakeResultCacheKey("r", 2, options));
  EXPECT_FALSE(base == MakeResultCacheKey("other", 1, options));
  EXPECT_FALSE(base ==
               MakeResultCacheKey("r", 1,
                                  MakeOptions(RankingSemantics::kExpectedRank, 20)));
  EXPECT_FALSE(base ==
               MakeResultCacheKey("r", 1,
                                  MakeOptions(RankingSemantics::kMedianRank, 10)));
}

TEST(ResultCacheKey, InapplicableParametersAreCanonicalized) {
  // Expected-rank ignores phi and threshold: two requests differing only
  // there must share an entry.
  RankingQueryOptions a = MakeOptions(RankingSemantics::kExpectedRank, 10);
  a.phi = 0.5;
  a.threshold = 0.5;
  RankingQueryOptions b = MakeOptions(RankingSemantics::kExpectedRank, 10);
  b.phi = 0.9;
  b.threshold = 0.1;
  EXPECT_TRUE(MakeResultCacheKey("r", 1, a) == MakeResultCacheKey("r", 1, b));

  // For quantile-rank, phi is load-bearing; for PT-k, the threshold is.
  a = MakeOptions(RankingSemantics::kQuantileRank, 10);
  a.phi = 0.5;
  b = MakeOptions(RankingSemantics::kQuantileRank, 10);
  b.phi = 0.9;
  EXPECT_FALSE(MakeResultCacheKey("r", 1, a) == MakeResultCacheKey("r", 1, b));

  a = MakeOptions(RankingSemantics::kPTk, 10);
  a.threshold = 0.5;
  b = MakeOptions(RankingSemantics::kPTk, 10);
  b.threshold = 0.1;
  EXPECT_FALSE(MakeResultCacheKey("r", 1, a) == MakeResultCacheKey("r", 1, b));
}

TEST(ResultCache, HitAfterPutAndMissAfterEpochBump) {
  ResultCache cache(1 << 20);
  const RankingQueryOptions options =
      MakeOptions(RankingSemantics::kExpectedRank, 10);
  const ResultCacheKey key = MakeResultCacheKey("r", 1, options);

  EXPECT_EQ(cache.Get(key), nullptr);
  auto answer = MakeAnswer(10);
  cache.Put(key, answer);
  EXPECT_EQ(cache.Get(key), answer);

  // The relation is reloaded: epoch 2 keys must not see epoch 1 answers.
  const ResultCacheKey reloaded = MakeResultCacheKey("r", 2, options);
  EXPECT_EQ(cache.Get(reloaded), nullptr);

  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.insertions, 1);
}

TEST(ResultCache, EvictionRespectsByteBudgetInLruOrder) {
  const ResultCacheKey probe = MakeResultCacheKey(
      "r", 1, MakeOptions(RankingSemantics::kExpectedRank, 1));
  const std::uint64_t entry_bytes =
      ResultCache::ApproximateBytes(probe, *MakeAnswer(100));
  // Budget for exactly three entries.
  ResultCache cache(entry_bytes * 3);

  auto key_for_k = [](int k) {
    return MakeResultCacheKey(
        "r", 1, MakeOptions(RankingSemantics::kExpectedRank, k));
  };
  for (int k = 1; k <= 3; ++k) cache.Put(key_for_k(k), MakeAnswer(100));
  EXPECT_EQ(cache.stats().entries, 3u);
  EXPECT_LE(cache.stats().bytes, cache.byte_budget());

  // Touch k=1 so k=2 is the coldest, then insert a fourth entry.
  EXPECT_NE(cache.Get(key_for_k(1)), nullptr);
  cache.Put(key_for_k(4), MakeAnswer(100));

  EXPECT_EQ(cache.stats().entries, 3u);
  EXPECT_LE(cache.stats().bytes, cache.byte_budget());
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_EQ(cache.Get(key_for_k(2)), nullptr);   // evicted (coldest)
  EXPECT_NE(cache.Get(key_for_k(1)), nullptr);   // survived (touched)
  EXPECT_NE(cache.Get(key_for_k(3)), nullptr);
  EXPECT_NE(cache.Get(key_for_k(4)), nullptr);
}

TEST(ResultCache, OversizedAnswersAreNotCached) {
  ResultCache cache(64);  // smaller than any real entry's overhead
  const ResultCacheKey key = MakeResultCacheKey(
      "r", 1, MakeOptions(RankingSemantics::kExpectedRank, 10));
  cache.Put(key, MakeAnswer(1000));
  EXPECT_EQ(cache.Get(key), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
}

TEST(ResultCache, ZeroBudgetDisablesCaching) {
  ResultCache cache(0);
  const ResultCacheKey key = MakeResultCacheKey(
      "r", 1, MakeOptions(RankingSemantics::kExpectedRank, 10));
  cache.Put(key, MakeAnswer(1));
  EXPECT_EQ(cache.Get(key), nullptr);
}

TEST(ResultCache, RefreshingAKeyReplacesItsAnswerAndAccounting) {
  ResultCache cache(1 << 20);
  const ResultCacheKey key = MakeResultCacheKey(
      "r", 1, MakeOptions(RankingSemantics::kExpectedRank, 10));
  cache.Put(key, MakeAnswer(10));
  const std::uint64_t bytes_small = cache.stats().bytes;
  auto big = MakeAnswer(500);
  cache.Put(key, big);
  EXPECT_EQ(cache.Get(key), big);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_GT(cache.stats().bytes, bytes_small);
  EXPECT_EQ(cache.stats().insertions, 1);  // refresh, not a new entry
}

TEST(ResultCache, ClearDropsEntriesButKeepsCounters) {
  ResultCache cache(1 << 20);
  const ResultCacheKey key = MakeResultCacheKey(
      "r", 1, MakeOptions(RankingSemantics::kExpectedRank, 10));
  cache.Put(key, MakeAnswer(10));
  EXPECT_NE(cache.Get(key), nullptr);
  cache.Clear();
  EXPECT_EQ(cache.Get(key), nullptr);
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
}

}  // namespace
}  // namespace serve
}  // namespace urank
