// End-to-end tests of the urankd server core (serve/server.h) and the
// TCP transport: request handling against a live engine, result-cache
// hit/miss/bypass behavior through the wire surface, epoch bumping on
// reload, deterministic overload shedding and deadline expiry (workers ==
// 0 keeps every job queued until Drain), graceful-drain semantics, and a
// loopback TCP round trip.

#include "serve/server.h"

#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "gen/tuple_gen.h"
#include "gtest/gtest.h"
#include "serve/client.h"
#include "serve/tcp.h"

namespace urank {
namespace serve {
namespace {

TupleRelation SmallRelation() {
  return TupleRelation::Independent({
      {1, 100.0, 0.9},
      {2, 90.0, 0.8},
      {3, 80.0, 0.5},
      {4, 70.0, 0.5},
      {5, 60.0, 0.3},
  });
}

ServerOptions InlineOptions() {
  ServerOptions options;
  options.workers = 1;
  return options;
}

ParsedResponse Call(Server* server, const std::string& line) {
  ParsedResponse response;
  const std::string response_line = server->HandleLine(line);
  EXPECT_TRUE(ParseResponse(response_line, &response)) << response_line;
  return response;
}

constexpr char kQueryLine[] =
    R"({"v":1,"type":"query","id":1,"relation":"rel",)"
    R"("semantics":"expected-rank","k":3})";

TEST(Server, AnswersMatchADirectEngineRun) {
  Server server(InlineOptions());
  server.AddRelation("rel", SmallRelation());

  const ParsedResponse response = Call(&server, kQueryLine);
  ASSERT_EQ(response.code, QueryStatusCode::kOk);

  QueryEngine engine(SmallRelation());
  QueryRequest request;
  request.options.k = 3;
  const QueryResult direct = engine.Run(request);
  ASSERT_TRUE(direct.status.ok());

  const JsonValue* ids = response.body.Find("ids");
  ASSERT_NE(ids, nullptr);
  ASSERT_EQ(ids->array_items().size(), direct.answer.ids.size());
  for (std::size_t i = 0; i < direct.answer.ids.size(); ++i) {
    EXPECT_DOUBLE_EQ(ids->array_items()[i].number_value(),
                     direct.answer.ids[i]);
  }
  const JsonValue* statistics = response.body.Find("statistics");
  ASSERT_NE(statistics, nullptr);
  for (std::size_t i = 0; i < direct.answer.statistics.size(); ++i) {
    EXPECT_DOUBLE_EQ(statistics->array_items()[i].number_value(),
                     direct.answer.statistics[i]);
  }
}

TEST(Server, CacheHitMissBypassThroughTheWireSurface) {
  Server server(InlineOptions());
  server.AddRelation("rel", SmallRelation());

  // First run computes, second hits.
  EXPECT_EQ(Call(&server, kQueryLine).cache, CacheOutcome::kMiss);
  EXPECT_EQ(Call(&server, kQueryLine).cache, CacheOutcome::kHit);

  // Bypass performs neither lookup (a hot entry exists and is ignored)
  // nor insert (shown below for a fresh key).
  const std::string bypass_line =
      R"({"v":1,"type":"query","id":2,"relation":"rel",)"
      R"("semantics":"expected-rank","k":3,"cache":"bypass"})";
  const ResultCacheStats before = server.result_cache().stats();
  EXPECT_EQ(Call(&server, bypass_line).cache, CacheOutcome::kBypass);
  const ResultCacheStats after = server.result_cache().stats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(after.insertions, before.insertions);

  // A bypass run of a NEW query must not seed the cache: the following
  // default-mode run still misses.
  const std::string fresh_bypass =
      R"({"v":1,"type":"query","id":3,"relation":"rel",)"
      R"("semantics":"expected-rank","k":2,"cache":"bypass"})";
  const std::string fresh_default =
      R"({"v":1,"type":"query","id":4,"relation":"rel",)"
      R"("semantics":"expected-rank","k":2})";
  EXPECT_EQ(Call(&server, fresh_bypass).cache, CacheOutcome::kBypass);
  EXPECT_EQ(Call(&server, fresh_default).cache, CacheOutcome::kMiss);
  EXPECT_EQ(Call(&server, fresh_default).cache, CacheOutcome::kHit);
}

TEST(Server, ReloadBumpsEpochAndInvalidatesCachedResults) {
  Server server(InlineOptions());
  server.AddRelation("rel", SmallRelation());
  ParsedResponse response = Call(&server, kQueryLine);
  EXPECT_DOUBLE_EQ(response.body.Find("epoch")->number_value(), 1.0);
  EXPECT_EQ(Call(&server, kQueryLine).cache, CacheOutcome::kHit);

  // Reload under the same name: epoch 2, and the hot entry is unreachable.
  server.AddRelation("rel", SmallRelation());
  response = Call(&server, kQueryLine);
  EXPECT_DOUBLE_EQ(response.body.Find("epoch")->number_value(), 2.0);
  EXPECT_EQ(response.cache, CacheOutcome::kMiss);
}

TEST(Server, AdminLoadFromInlineDataAndRelationListing) {
  Server server(InlineOptions());
  const ParsedResponse load = Call(
      &server,
      R"({"v":1,"type":"admin/load","id":1,"name":"demo","model":"tuple",)"
      R"("data":"1,10,0.5,-1\n2,9,0.4,-1\n"})");
  ASSERT_EQ(load.code, QueryStatusCode::kOk);
  EXPECT_DOUBLE_EQ(load.body.Find("tuples")->number_value(), 2.0);
  EXPECT_DOUBLE_EQ(load.body.Find("epoch")->number_value(), 1.0);

  const ParsedResponse listing =
      Call(&server, R"({"v":1,"type":"admin/relations","id":2})");
  ASSERT_EQ(listing.code, QueryStatusCode::kOk);
  const JsonValue* relations = listing.body.Find("relations");
  ASSERT_NE(relations, nullptr);
  ASSERT_EQ(relations->array_items().size(), 1u);
  EXPECT_EQ(relations->array_items()[0].Find("name")->string_value(), "demo");

  // Malformed CSV is a recoverable kInvalidRequest, not a crash, and the
  // registry is untouched.
  const ParsedResponse bad = Call(
      &server,
      R"({"v":1,"type":"admin/load","id":3,"name":"bad","model":"tuple",)"
      R"("data":"1,10,notaprob,-1\n"})");
  EXPECT_EQ(bad.code, QueryStatusCode::kInvalidRequest);
  EXPECT_EQ(Call(&server, R"({"v":1,"type":"admin/relations","id":4})")
                .body.Find("relations")
                ->array_items()
                .size(),
            1u);
}

TEST(Server, ErrorTaxonomyFlowsThroughTheWire) {
  Server server(InlineOptions());
  server.AddRelation("rel", SmallRelation());

  EXPECT_EQ(Call(&server, "not json").code, QueryStatusCode::kInvalidRequest);
  EXPECT_EQ(Call(&server,
                 R"({"v":1,"type":"query","id":1,"relation":"ghost",)"
                 R"("semantics":"expected-rank","k":3})")
                .code,
            QueryStatusCode::kUnknownRelation);
  // Engine-level validation: k = 0 surfaces the engine's own status code.
  EXPECT_EQ(Call(&server,
                 R"({"v":1,"type":"query","id":2,"relation":"rel",)"
                 R"("semantics":"expected-rank","k":0})")
                .code,
            QueryStatusCode::kInvalidK);
}

TEST(Server, OverloadShedsDeterministicallyWhenQueueIsFull) {
  ServerOptions options;
  options.workers = 0;  // nothing executes until Drain
  options.queue_capacity = 2;
  Server server(options);
  server.AddRelation("rel", SmallRelation());

  std::vector<std::future<std::string>> admitted;
  admitted.push_back(server.Submit(kQueryLine));
  admitted.push_back(server.Submit(kQueryLine));
  // Queue is now at capacity: the third query is shed immediately.
  std::future<std::string> shed = server.Submit(kQueryLine);
  ParsedResponse response;
  ASSERT_TRUE(ParseResponse(shed.get(), &response));
  EXPECT_EQ(response.code, QueryStatusCode::kOverloaded);

  // Observability still answers inline while the queue is full.
  std::future<std::string> ping =
      server.Submit(R"({"v":1,"type":"ping","id":9})");
  ASSERT_TRUE(ParseResponse(ping.get(), &response));
  EXPECT_EQ(response.code, QueryStatusCode::kOk);
  std::future<std::string> metrics =
      server.Submit(R"({"v":1,"type":"metrics","id":10})");
  ASSERT_TRUE(ParseResponse(metrics.get(), &response));
  EXPECT_EQ(response.code, QueryStatusCode::kOk);
  EXPECT_NE(response.body.Find("body")->string_value().find(
                "urank_serve_requests_total"),
            std::string::npos);

  // Drain executes what was admitted: both queued queries complete.
  server.Drain();
  for (std::future<std::string>& f : admitted) {
    ASSERT_TRUE(ParseResponse(f.get(), &response));
    EXPECT_EQ(response.code, QueryStatusCode::kOk);
  }
}

TEST(Server, ExpiredDeadlineShedsAtDequeueWithoutRunning) {
  ServerOptions options;
  options.workers = 0;
  Server server(options);
  server.AddRelation("rel", SmallRelation());

  // 1 nanosecond of budget: guaranteed expired by the time Drain dequeues
  // it, with no sleeps — the transcript stays deterministic.
  std::future<std::string> expired = server.Submit(
      R"({"v":1,"type":"query","id":1,"relation":"rel",)"
      R"("semantics":"expected-rank","k":3,"deadline_ms":1e-9})");
  std::future<std::string> unbounded = server.Submit(kQueryLine);
  server.Drain();

  ParsedResponse response;
  ASSERT_TRUE(ParseResponse(expired.get(), &response));
  EXPECT_EQ(response.code, QueryStatusCode::kDeadlineExceeded);
  ASSERT_TRUE(ParseResponse(unbounded.get(), &response));
  EXPECT_EQ(response.code, QueryStatusCode::kOk);
}

TEST(Server, DefaultDeadlineAppliesWhenRequestCarriesNone) {
  ServerOptions options;
  options.workers = 0;
  options.default_deadline_ms = 1e-9;
  Server server(options);
  server.AddRelation("rel", SmallRelation());

  std::future<std::string> expired = server.Submit(kQueryLine);
  server.Drain();
  ParsedResponse response;
  ASSERT_TRUE(ParseResponse(expired.get(), &response));
  EXPECT_EQ(response.code, QueryStatusCode::kDeadlineExceeded);
}

TEST(Server, DrainIsIdempotentAndPostDrainSubmitsAreShed) {
  Server server(InlineOptions());
  server.AddRelation("rel", SmallRelation());
  EXPECT_EQ(Call(&server, kQueryLine).code, QueryStatusCode::kOk);

  server.Drain();
  server.Drain();  // must not hang or double-join

  ParsedResponse response;
  ASSERT_TRUE(ParseResponse(server.Submit(kQueryLine).get(), &response));
  EXPECT_EQ(response.code, QueryStatusCode::kOverloaded);
  // Inline-handled types still answer after drain.
  ASSERT_TRUE(ParseResponse(
      server.Submit(R"({"v":1,"type":"ping","id":1})").get(), &response));
  EXPECT_EQ(response.code, QueryStatusCode::kOk);
}

TEST(Server, ConcurrentSubmissionsAllResolve) {
  ServerOptions options;
  options.workers = 2;
  options.queue_capacity = 1024;
  Server server(options);
  TupleGenConfig config;
  config.num_tuples = 500;
  config.seed = 11;
  server.AddRelation("rel", GenerateTupleRelation(config));

  std::vector<std::future<std::string>> futures;
  futures.reserve(64);
  for (int i = 0; i < 64; ++i) futures.push_back(server.Submit(kQueryLine));
  int ok = 0;
  for (std::future<std::string>& f : futures) {
    ParsedResponse response;
    ASSERT_TRUE(ParseResponse(f.get(), &response));
    if (response.code == QueryStatusCode::kOk) ++ok;
  }
  EXPECT_EQ(ok, 64);
}

TEST(TcpTransport, LoopbackRoundTripAndShutdown) {
  Server server(InlineOptions());
  server.AddRelation("rel", SmallRelation());
  TcpServer transport(&server);
  std::string error;
  ASSERT_TRUE(transport.Start(0, &error)) << error;
  ASSERT_GT(transport.port(), 0);

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", transport.port(), &error)) << error;
  std::string response_line;
  ASSERT_TRUE(client.Call(R"({"v":1,"type":"ping","id":1})", &response_line));
  ParsedResponse response;
  ASSERT_TRUE(ParseResponse(response_line, &response));
  EXPECT_EQ(response.code, QueryStatusCode::kOk);

  ASSERT_TRUE(client.Call(kQueryLine, &response_line));
  ASSERT_TRUE(ParseResponse(response_line, &response));
  EXPECT_EQ(response.code, QueryStatusCode::kOk);
  EXPECT_EQ(response.body.Find("relation")->string_value(), "rel");

  // Two clients on one server: the second sees the first's cache entry.
  Client second;
  ASSERT_TRUE(second.Connect("127.0.0.1", transport.port(), &error)) << error;
  ASSERT_TRUE(second.Call(kQueryLine, &response_line));
  ASSERT_TRUE(ParseResponse(response_line, &response));
  EXPECT_EQ(response.cache, CacheOutcome::kHit);

  transport.Shutdown();
  transport.Shutdown();  // idempotent
  // After shutdown the connection is gone.
  EXPECT_FALSE(client.Call(kQueryLine, &response_line));
}

}  // namespace
}  // namespace serve
}  // namespace urank
