// Wire-protocol tests (serve/protocol.h): the QueryStatusCode stability
// contract (name and numeric wire value round-trip for every member),
// request parsing across all five types, QueryRequest <-> JSON
// round-trips, and response rendering/parsing.

#include "serve/protocol.h"

#include <string>

#include "gtest/gtest.h"
#include "serve/json.h"

namespace urank {
namespace serve {
namespace {

// The satellite-2 acceptance gate: every status code must round-trip
// through both its stable name and its stable numeric wire value, and the
// wire values must be dense in [0, kQueryStatusCodeCount).
TEST(StatusCodeWire, EveryCodeRoundTripsThroughNameAndValue) {
  for (int v = 0; v < kQueryStatusCodeCount; ++v) {
    QueryStatusCode code;
    ASSERT_TRUE(FromWireValue(v, &code)) << "wire value " << v;
    EXPECT_EQ(WireValue(code), v);

    const char* name = ToString(code);
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "?") << "wire value " << v << " has no name";

    QueryStatusCode from_name;
    ASSERT_TRUE(FromString(name, &from_name)) << name;
    EXPECT_EQ(from_name, code);
  }
}

TEST(StatusCodeWire, RejectsUnknownValuesAndNames) {
  QueryStatusCode code = QueryStatusCode::kOk;
  EXPECT_FALSE(FromWireValue(-1, &code));
  EXPECT_FALSE(FromWireValue(kQueryStatusCodeCount, &code));
  EXPECT_FALSE(FromString("not-a-status", &code));
  EXPECT_FALSE(FromString("", &code));
  EXPECT_EQ(code, QueryStatusCode::kOk);  // untouched on failure
}

// The serve-layer codes' numeric values are part of the protocol; freeze
// them explicitly so a renumbering shows up as a test diff, not a silent
// client break.
TEST(StatusCodeWire, FrozenAssignments) {
  EXPECT_EQ(WireValue(QueryStatusCode::kOk), 0);
  EXPECT_EQ(WireValue(QueryStatusCode::kInvalidRequest), 5);
  EXPECT_EQ(WireValue(QueryStatusCode::kUnknownRelation), 6);
  EXPECT_EQ(WireValue(QueryStatusCode::kOverloaded), 7);
  EXPECT_EQ(WireValue(QueryStatusCode::kDeadlineExceeded), 8);
  EXPECT_STREQ(ToString(QueryStatusCode::kOverloaded), "overloaded");
  EXPECT_STREQ(ToString(QueryStatusCode::kDeadlineExceeded),
               "deadline-exceeded");
}

TEST(SemanticsWire, AllEightNamesRoundTrip) {
  const RankingSemantics all[] = {
      RankingSemantics::kExpectedRank, RankingSemantics::kMedianRank,
      RankingSemantics::kQuantileRank, RankingSemantics::kUTopk,
      RankingSemantics::kUKRanks,      RankingSemantics::kPTk,
      RankingSemantics::kGlobalTopk,   RankingSemantics::kExpectedScore,
  };
  for (RankingSemantics semantics : all) {
    RankingSemantics out;
    ASSERT_TRUE(FromString(ToString(semantics), &out));
    EXPECT_EQ(out, semantics);
  }
  RankingSemantics out;
  EXPECT_FALSE(FromString("expected_rank", &out));  // underscores are not
                                                    // the wire spelling
}

TEST(TiePolicyWire, NamesRoundTrip) {
  TiePolicy out;
  ASSERT_TRUE(FromString(ToString(TiePolicy::kStrictGreater), &out));
  EXPECT_EQ(out, TiePolicy::kStrictGreater);
  ASSERT_TRUE(FromString(ToString(TiePolicy::kBreakByIndex), &out));
  EXPECT_EQ(out, TiePolicy::kBreakByIndex);
  EXPECT_FALSE(FromString("coin-flip", &out));
}

TEST(ParseRequest, QueryWithEveryField) {
  WireRequest request;
  ASSERT_TRUE(ParseRequest(
      R"({"v":1,"type":"query","id":7,"relation":"r","semantics":"pt-k",)"
      R"("k":20,"threshold":0.25,"ties":"strict-greater",)"
      R"("deadline_ms":50,"cache":"bypass","threads":4})",
      &request));
  EXPECT_EQ(request.type, WireRequest::Type::kQuery);
  EXPECT_EQ(request.relation, "r");
  EXPECT_EQ(request.query.options.semantics, RankingSemantics::kPTk);
  EXPECT_EQ(request.query.options.k, 20);
  EXPECT_DOUBLE_EQ(request.query.options.threshold, 0.25);
  EXPECT_EQ(request.query.options.ties, TiePolicy::kStrictGreater);
  EXPECT_DOUBLE_EQ(request.query.deadline_ms, 50.0);
  EXPECT_EQ(request.query.cache_mode, CacheMode::kBypass);
  EXPECT_EQ(request.query.parallelism.threads, 4);
  EXPECT_DOUBLE_EQ(request.id.number_value(), 7.0);
}

TEST(ParseRequest, QueryDefaults) {
  WireRequest request;
  ASSERT_TRUE(ParseRequest(
      R"({"v":1,"type":"query","relation":"r","semantics":"expected-rank"})",
      &request));
  EXPECT_EQ(request.query.options.k, 10);
  EXPECT_EQ(request.query.options.ties, TiePolicy::kBreakByIndex);
  EXPECT_DOUBLE_EQ(request.query.deadline_ms, 0.0);
  EXPECT_EQ(request.query.cache_mode, CacheMode::kDefault);
  EXPECT_EQ(request.query.parallelism.threads, 1);
  EXPECT_TRUE(request.id.is_null());
}

TEST(ParseRequest, RejectionsCarryReasonAndRecoveredId) {
  struct Case {
    const char* line;
    const char* reason_fragment;
  };
  const Case cases[] = {
      {"not json at all", "malformed JSON"},
      {"[1,2,3]", "must be a JSON object"},
      {R"({"type":"query","id":3})", "\"v\":1"},
      {R"({"v":2,"type":"query","id":3})", "\"v\":1"},
      {R"({"v":1,"id":3})", "\"type\""},
      {R"({"v":1,"type":"mystery","id":3})", "unknown request type"},
      {R"({"v":1,"type":"query","id":3,"semantics":"expected-rank"})",
       "relation"},
      {R"({"v":1,"type":"query","id":3,"relation":"r"})", "semantics"},
      {R"({"v":1,"type":"query","id":3,"relation":"r",)"
       R"("semantics":"sideways-rank"})",
       "unknown semantics"},
      {R"({"v":1,"type":"query","id":3,"relation":"r",)"
       R"("semantics":"expected-rank","k":2.5})",
       "integer"},
      {R"({"v":1,"type":"admin/load","id":3,"name":"x","model":"tuple"})",
       "path"},
      {R"({"v":1,"type":"admin/load","id":3,"name":"x","model":"tuple",)"
       R"("path":"a","data":"b"})",
       "exactly one"},
      {R"({"v":1,"type":"admin/load","id":3,"name":"x","model":"csv",)"
       R"("path":"a"})",
       "model"},
  };
  for (const Case& c : cases) {
    WireRequest request;
    EXPECT_FALSE(ParseRequest(c.line, &request)) << c.line;
    EXPECT_EQ(request.type, WireRequest::Type::kInvalid);
    EXPECT_NE(request.error.find(c.reason_fragment), std::string::npos)
        << c.line << " -> " << request.error;
  }
  // The id is recovered from structurally-valid-but-rejected requests.
  WireRequest request;
  EXPECT_FALSE(ParseRequest(R"({"v":2,"type":"query","id":42})", &request));
  EXPECT_DOUBLE_EQ(request.id.number_value(), 42.0);
}

TEST(ParseRequest, NonQueryTypes) {
  WireRequest request;
  ASSERT_TRUE(ParseRequest(R"({"v":1,"type":"ping","id":"p1"})", &request));
  EXPECT_EQ(request.type, WireRequest::Type::kPing);
  EXPECT_EQ(request.id.string_value(), "p1");

  ASSERT_TRUE(ParseRequest(R"({"v":1,"type":"metrics"})", &request));
  EXPECT_EQ(request.type, WireRequest::Type::kMetrics);

  ASSERT_TRUE(ParseRequest(R"({"v":1,"type":"admin/relations"})", &request));
  EXPECT_EQ(request.type, WireRequest::Type::kAdminRelations);

  ASSERT_TRUE(ParseRequest(
      R"({"v":1,"type":"admin/load","name":"n","model":"attr",)"
      R"("data":"1,5:1.0"})",
      &request));
  EXPECT_EQ(request.type, WireRequest::Type::kAdminLoad);
  EXPECT_EQ(request.name, "n");
  EXPECT_EQ(request.model, WireModel::kAttr);
  EXPECT_TRUE(request.has_inline_data);
  EXPECT_EQ(request.inline_data, "1,5:1.0");
}

TEST(QueryRequestJson, RoundTripsThroughSerialization) {
  QueryRequest original;
  original.options.semantics = RankingSemantics::kQuantileRank;
  original.options.k = 25;
  original.options.phi = 0.75;
  original.options.ties = TiePolicy::kStrictGreater;
  original.deadline_ms = 12.5;
  original.cache_mode = CacheMode::kBypass;
  original.parallelism.threads = 8;

  JsonValue obj = JsonValue::MakeObject();
  QueryRequestToJson("rel", original, &obj);
  std::string relation;
  QueryRequest decoded;
  std::string error;
  ASSERT_TRUE(QueryRequestFromJson(obj, &relation, &decoded, &error))
      << error;
  EXPECT_EQ(relation, "rel");
  EXPECT_EQ(decoded.options.semantics, original.options.semantics);
  EXPECT_EQ(decoded.options.k, original.options.k);
  EXPECT_DOUBLE_EQ(decoded.options.phi, original.options.phi);
  EXPECT_EQ(decoded.options.ties, original.options.ties);
  EXPECT_DOUBLE_EQ(decoded.deadline_ms, original.deadline_ms);
  EXPECT_EQ(decoded.cache_mode, original.cache_mode);
  EXPECT_EQ(decoded.parallelism.threads, original.parallelism.threads);
}

TEST(Responses, QueryResponseRendersAndParses) {
  RankingAnswer answer;
  answer.ids = {3, 1, 2};
  answer.statistics = {0.5, 1.25, 2.0};
  QueryStats stats;
  stats.wall_ms = 1.5;
  ServeTimings timings;
  timings.serve_ms = 2.0;
  timings.queue_ms = 0.25;
  const std::string line =
      RenderQueryResponse(JsonValue::MakeNumber(9), "rel", 3,
                          CacheOutcome::kMiss, answer, stats, timings);

  ParsedResponse response;
  ASSERT_TRUE(ParseResponse(line, &response)) << line;
  EXPECT_EQ(response.code, QueryStatusCode::kOk);
  ASSERT_TRUE(response.has_cache);
  EXPECT_EQ(response.cache, CacheOutcome::kMiss);
  EXPECT_DOUBLE_EQ(response.serve_ms, 2.0);
  ASSERT_NE(response.body.Find("ids"), nullptr);
  EXPECT_EQ(response.body.Find("ids")->array_items().size(), 3u);
  EXPECT_DOUBLE_EQ(response.body.Find("epoch")->number_value(), 3.0);
}

TEST(Responses, ErrorResponseCarriesStableStatusAndMessage) {
  const std::string line = RenderErrorResponse(
      JsonValue(), QueryStatusCode::kOverloaded, "queue full");
  ParsedResponse response;
  ASSERT_TRUE(ParseResponse(line, &response));
  EXPECT_EQ(response.code, QueryStatusCode::kOverloaded);
  EXPECT_EQ(response.error, "queue full");
  EXPECT_EQ(response.body.Find("status")->string_value(), "overloaded");
  EXPECT_DOUBLE_EQ(response.body.Find("code")->number_value(), 7.0);
  EXPECT_TRUE(response.body.Find("id")->is_null());
}

TEST(Responses, MalformedLinesAreRejected) {
  ParsedResponse response;
  EXPECT_FALSE(ParseResponse("", &response));
  EXPECT_FALSE(ParseResponse("[]", &response));
  EXPECT_FALSE(ParseResponse("{\"v\":1}", &response));          // no code
  EXPECT_FALSE(ParseResponse("{\"code\":99}", &response));      // bad code
}

}  // namespace
}  // namespace serve
}  // namespace urank
