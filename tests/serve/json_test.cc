// Parser/writer tests for the wire-protocol JSON layer (serve/json.h):
// round-trips, the deterministic number format, escape handling, and the
// strictness/robustness guarantees (depth cap, trailing garbage, no
// aborts on malformed input).

#include "serve/json.h"

#include <limits>
#include <string>

#include "gtest/gtest.h"

namespace urank {
namespace serve {
namespace {

JsonValue ParseOk(const std::string& text) {
  JsonValue value;
  std::string error;
  EXPECT_TRUE(ParseJson(text, &value, &error)) << text << ": " << error;
  return value;
}

std::string ParseError(const std::string& text) {
  JsonValue value;
  std::string error;
  EXPECT_FALSE(ParseJson(text, &value, &error)) << text;
  return error;
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(ParseOk("null").is_null());
  EXPECT_TRUE(ParseOk("true").bool_value());
  EXPECT_FALSE(ParseOk("false").bool_value());
  EXPECT_DOUBLE_EQ(ParseOk("42").number_value(), 42.0);
  EXPECT_DOUBLE_EQ(ParseOk("-0.5").number_value(), -0.5);
  EXPECT_DOUBLE_EQ(ParseOk("1e-9").number_value(), 1e-9);
  EXPECT_DOUBLE_EQ(ParseOk("2.5E3").number_value(), 2500.0);
  EXPECT_EQ(ParseOk("\"hi\"").string_value(), "hi");
}

TEST(JsonParse, Containers) {
  const JsonValue array = ParseOk(" [1, \"two\", [3], {\"a\": null}] ");
  ASSERT_TRUE(array.is_array());
  ASSERT_EQ(array.array_items().size(), 4u);
  EXPECT_DOUBLE_EQ(array.array_items()[0].number_value(), 1.0);
  EXPECT_EQ(array.array_items()[1].string_value(), "two");
  EXPECT_TRUE(array.array_items()[2].is_array());
  EXPECT_TRUE(array.array_items()[3].Find("a")->is_null());

  const JsonValue object = ParseOk("{\"k\":10,\"phi\":0.5}");
  ASSERT_TRUE(object.is_object());
  EXPECT_DOUBLE_EQ(object.Find("k")->number_value(), 10.0);
  EXPECT_DOUBLE_EQ(object.Find("phi")->number_value(), 0.5);
  EXPECT_EQ(object.Find("missing"), nullptr);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(ParseOk("\"a\\\"b\\\\c\\/d\"").string_value(), "a\"b\\c/d");
  EXPECT_EQ(ParseOk("\"\\n\\t\\r\\b\\f\"").string_value(), "\n\t\r\b\f");
  EXPECT_EQ(ParseOk("\"\\u0041\"").string_value(), "A");
  // Two-byte and three-byte UTF-8.
  EXPECT_EQ(ParseOk("\"\\u00e9\"").string_value(), "\xc3\xa9");
  EXPECT_EQ(ParseOk("\"\\u20ac\"").string_value(), "\xe2\x82\xac");
  // Surrogate pair -> four-byte UTF-8 (U+1F600).
  EXPECT_EQ(ParseOk("\"\\ud83d\\ude00\"").string_value(),
            "\xf0\x9f\x98\x80");
}

TEST(JsonParse, MalformedInputsReportErrorsWithoutAborting) {
  EXPECT_NE(ParseError(""), "");
  EXPECT_NE(ParseError("{"), "");
  EXPECT_NE(ParseError("[1,]"), "");
  EXPECT_NE(ParseError("{\"a\" 1}"), "");
  EXPECT_NE(ParseError("{a: 1}"), "");
  EXPECT_NE(ParseError("\"unterminated"), "");
  EXPECT_NE(ParseError("nul"), "");
  EXPECT_NE(ParseError("1 2"), "");       // trailing garbage
  EXPECT_NE(ParseError("NaN"), "");       // not a JSON literal
  EXPECT_NE(ParseError("Infinity"), "");
  EXPECT_NE(ParseError("01"), "");        // leading zero
  EXPECT_NE(ParseError("\"\\ud83d\""), "");  // lone surrogate
  EXPECT_NE(ParseError("\x01"), "");
}

TEST(JsonParse, DepthCapRejectsHostileNesting) {
  std::string deep;
  for (int i = 0; i < kMaxJsonDepth + 1; ++i) deep += "[";
  for (int i = 0; i < kMaxJsonDepth + 1; ++i) deep += "]";
  EXPECT_NE(ParseError(deep), "");

  std::string at_limit;
  for (int i = 0; i < kMaxJsonDepth; ++i) at_limit += "[";
  for (int i = 0; i < kMaxJsonDepth; ++i) at_limit += "]";
  ParseOk(at_limit);
}

TEST(JsonWrite, DeterministicCompactRendering) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("v", JsonValue::MakeNumber(1));
  obj.Set("name", JsonValue::MakeString("a\"b\n"));
  JsonValue arr = JsonValue::MakeArray();
  arr.Append(JsonValue::MakeNumber(0.5));
  arr.Append(JsonValue::MakeBool(true));
  arr.Append(JsonValue());
  obj.Set("items", arr);
  EXPECT_EQ(WriteJson(obj),
            "{\"v\":1,\"name\":\"a\\\"b\\n\",\"items\":[0.5,true,null]}");
}

TEST(JsonWrite, NumberFormat) {
  std::string out;
  AppendJsonNumber(42.0, &out);
  EXPECT_EQ(out, "42");  // integral doubles print without ".0"
  out.clear();
  AppendJsonNumber(-3.0, &out);
  EXPECT_EQ(out, "-3");
  out.clear();
  AppendJsonNumber(9007199254740992.0, &out);  // 2^53: still integral
  EXPECT_EQ(out, "9007199254740992");
  out.clear();
  AppendJsonNumber(0.1, &out);
  EXPECT_EQ(out, "0.1");  // shortest round-trip, not 0.10000000000000001
  // Non-finite values have no JSON representation; the writer emits null
  // rather than producing an unparseable document.
  out.clear();
  AppendJsonNumber(std::numeric_limits<double>::quiet_NaN(), &out);
  EXPECT_EQ(out, "null");
  out.clear();
  AppendJsonNumber(std::numeric_limits<double>::infinity(), &out);
  EXPECT_EQ(out, "null");
}

TEST(JsonWrite, ControlCharactersEscaped) {
  std::string out;
  AppendJsonEscaped(std::string("\x01\x1f", 2), &out);
  EXPECT_EQ(out, "\"\\u0001\\u001f\"");
}

TEST(JsonRoundTrip, ParseOfWriteIsIdentity) {
  const std::string text =
      "{\"a\":[1,2.5,\"x\",null,true],\"b\":{\"c\":-0.125}}";
  const JsonValue value = ParseOk(text);
  EXPECT_EQ(WriteJson(value), text);
  // And the rendering is stable under a second round-trip.
  EXPECT_EQ(WriteJson(ParseOk(WriteJson(value))), text);
}

}  // namespace
}  // namespace serve
}  // namespace urank
