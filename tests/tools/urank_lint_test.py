#!/usr/bin/env python3
"""Self-test for tools/urank_lint.py.

Builds throwaway repo trees under a tempdir, runs the linter over them,
and asserts on the exact (rule, path) findings. Pins two things the
linter's history makes easy to regress:

  * the rules that remain are still enforced (including on multi-line
    declarations), and
  * the kernel-alloc rule is gone -- allocation checking moved to the
    AST-accurate urank-analyzer (tools/analyzer/), whose corpus covers
    the multi-line forms the old regex missed.

Run directly or via ctest (registered as `urank_lint_selftest`).
"""

import os
import subprocess
import sys
import tempfile
import unittest

LINT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, os.pardir, "tools", "urank_lint.py")

CLEAN_HEADER = """\
#ifndef URANK_UTIL_THING_H_
#define URANK_UTIL_THING_H_
namespace urank {
double Halve(double x);
}  // namespace urank
#endif  // URANK_UTIL_THING_H_
"""


class LintRepo:
    """A scratch repo tree the linter accepts as a root."""

    def __init__(self, tmpdir):
        self.root = tmpdir
        os.makedirs(os.path.join(tmpdir, "src", "util"))
        os.makedirs(os.path.join(tmpdir, "src", "core"))

    def write(self, rel, content):
        path = os.path.join(self.root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(content)

    def register_sources(self):
        """Lists every .cc under src/ in src/CMakeLists.txt so the
        build-registration rule stays quiet unless a test wants it."""
        sources = []
        src = os.path.join(self.root, "src")
        for dirpath, _, names in os.walk(src):
            for name in names:
                if name.endswith(".cc"):
                    rel = os.path.relpath(os.path.join(dirpath, name), src)
                    sources.append(rel.replace(os.sep, "/"))
        self.write("src/CMakeLists.txt",
                   "add_library(urank\n" +
                   "".join(f"  {s}\n" for s in sources) + ")\n")

    def lint(self):
        proc = subprocess.run(
            [sys.executable, LINT, "--root", self.root],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        findings = []
        for line in proc.stdout.splitlines():
            if ": [" in line:
                path, rest = line.split(": [", 1)
                rule = rest.split("]", 1)[0]
                findings.append((rule, path.rsplit(":", 1)[0]))
        return proc.returncode, findings


class UrankLintTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.repo = LintRepo(self._tmp.name)

    def tearDown(self):
        self._tmp.cleanup()

    def rules(self, findings):
        return {rule for rule, _ in findings}

    def test_clean_tree_passes(self):
        self.repo.write("src/util/thing.h", CLEAN_HEADER)
        self.repo.register_sources()
        rc, findings = self.repo.lint()
        self.assertEqual(rc, 0, findings)
        self.assertEqual(findings, [])

    def test_token_bans_fire(self):
        self.repo.write("src/util/bad.cc", """\
#include <cstdlib>
#include <iostream>
float Leak() {
  std::cout << "hi";
  return static_cast<float>(rand());
}
""")
        self.repo.register_sources()
        rc, findings = self.repo.lint()
        self.assertEqual(rc, 1)
        self.assertEqual(self.rules(findings),
                         {"probability-type", "rng-discipline", "no-cout"})

    def test_allow_comment_suppresses(self):
        self.repo.write("src/util/ok.cc", """\
// urank-lint: allow(no-cout)
#include <iostream>
void Shout() { std::cout << "deliberate"; }
""")
        # The comment sits on the line above the finding; the std::cout
        # on line 3 needs its own suppression to stay silent.
        self.repo.write("src/util/ok2.cc", """\
#include <iostream>
void Shout2() {
  std::cout << "deliberate";  // urank-lint: allow(no-cout)
}
""")
        self.repo.register_sources()
        rc, findings = self.repo.lint()
        self.assertEqual(
            [f for f in findings if f[0] == "no-cout" and "ok2" in f[1]], [])
        # ok.cc's comment covers only the include line region, not line 3.
        self.assertEqual(self.rules(findings), {"no-cout"})
        self.assertEqual(rc, 1)

    def test_include_guard_mismatch(self):
        self.repo.write("src/util/guard.h", """\
#ifndef WRONG_GUARD_H
#define WRONG_GUARD_H
#endif
""")
        self.repo.register_sources()
        rc, findings = self.repo.lint()
        self.assertEqual(rc, 1)
        self.assertIn("include-guard", self.rules(findings))

    def test_build_registration(self):
        self.repo.write("src/util/thing.h", CLEAN_HEADER)
        self.repo.write("src/util/orphan.cc", "namespace urank {}\n")
        self.repo.write("src/CMakeLists.txt", "add_library(urank)\n")
        rc, findings = self.repo.lint()
        self.assertEqual(rc, 1)
        self.assertIn("build-registration", self.rules(findings))

    def test_precondition_sees_multiline_definition(self):
        # The definition's parameter list and brace span several lines;
        # the rule must still pair the header comment with the body and
        # notice the missing URANK_CHECK.
        self.repo.write("src/util/pre.h", """\
#ifndef URANK_UTIL_PRE_H_
#define URANK_UTIL_PRE_H_
namespace urank {
// Requires 0 <= p <= 1.
double Scale(double p,
             double w);
}  // namespace urank
#endif  // URANK_UTIL_PRE_H_
""")
        self.repo.write("src/util/pre.cc", """\
#include "util/pre.h"
namespace urank {
double
Scale(double p,
      double w) {
  return p * w;
}
}  // namespace urank
""")
        self.repo.register_sources()
        rc, findings = self.repo.lint()
        self.assertEqual(rc, 1)
        self.assertIn("precondition", self.rules(findings))
        # Adding the check (even split across lines) silences it.
        self.repo.write("src/util/pre.cc", """\
#include "util/pre.h"
#include "util/check.h"
namespace urank {
double
Scale(double p,
      double w) {
  URANK_DCHECK_PROB(
      p);
  return p * w;
}
}  // namespace urank
""")
        rc, findings = self.repo.lint()
        self.assertNotIn("precondition", self.rules(findings))

    def test_kernel_alloc_rule_removed(self):
        # Allocation discipline is the urank-analyzer's job now; the old
        # regex rule (blind to multi-line declarations) must stay deleted.
        self.repo.write("src/core/quantile_rank.cc", """\
#include <vector>
namespace urank {
void Sweep(int n) {
  for (int i = 0; i < n; ++i) {
    std::
        vector<double>
            tmp(3, 1.0);
    (void)tmp;
  }
}
}  // namespace urank
""")
        self.repo.register_sources()
        _, findings = self.repo.lint()
        self.assertNotIn("kernel-alloc", self.rules(findings))
        with open(LINT, encoding="utf-8") as fh:
            self.assertNotIn("def check_kernel_alloc", fh.read())

    def test_kernel_vectorize_still_covers_kernel_files(self):
        self.repo.write("src/core/quantile_rank.cc", """\
namespace urank {
void Sweep(double* a, const double* b, int n) {
  for (int i = 0; i < n; ++i) {
    a[i] += 2.0 * b[i];
  }
}
}  // namespace urank
""")
        self.repo.register_sources()
        rc, findings = self.repo.lint()
        self.assertEqual(rc, 1)
        self.assertIn("kernel-vectorize", self.rules(findings))

    def test_metric_name_contract(self):
        self.repo.write("src/util/m.cc", """\
#include "util/metrics.h"
namespace urank {
void Touch() { Registry().counter("bad_name"); }
}  // namespace urank
""")
        self.repo.register_sources()
        rc, findings = self.repo.lint()
        self.assertEqual(rc, 1)
        self.assertIn("metric-name", self.rules(findings))


if __name__ == "__main__":
    unittest.main()
