// Consolidated golden tests for every worked example in the paper
// (experiment E12 in DESIGN.md): the Fig. 2 / Fig. 4 relations evaluated
// under all ranking definitions, with the exact numbers the paper reports.

#include <vector>

#include "core/expected_rank_attr.h"
#include "core/expected_rank_tuple.h"
#include "core/quantile_rank.h"
#include "core/semantics/global_topk.h"
#include "core/semantics/pt_k.h"
#include "core/semantics/u_kranks.h"
#include "core/semantics/u_topk.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace urank {
namespace {

using testing_util::ExpectNearVectors;
using testing_util::PaperFig2;
using testing_util::PaperFig4;

TEST(PaperExamplesTest, Fig2ExpectedRanks) {
  // Section 4.3: r(t2)=0.8, r(t3)=1, r(t1)=1.2; final ranking (t2,t3,t1).
  ExpectNearVectors(AttrExpectedRanks(PaperFig2()), {1.2, 0.8, 1.0}, 1e-12);
  EXPECT_EQ(IdsOf(AttrExpectedRankTopK(PaperFig2(), 3)),
            (std::vector<int>{2, 3, 1}));
}

TEST(PaperExamplesTest, Fig4ExpectedRanks) {
  // Section 4.3: r(t1)=1.2, r(t2)=1.4, r(t3)=0.9, r(t4)=1.9; final
  // ranking (t3,t1,t2,t4).
  ExpectNearVectors(TupleExpectedRanks(PaperFig4()), {1.2, 1.4, 0.9, 1.9},
                    1e-12);
  EXPECT_EQ(IdsOf(TupleExpectedRankTopK(PaperFig4(), 4)),
            (std::vector<int>{3, 1, 2, 4}));
}

TEST(PaperExamplesTest, Fig2MedianRanks) {
  // Section 7.1: r_m(t1)=2, r_m(t2)=1, r_m(t3)=1; ranking (t2,t3,t1).
  EXPECT_EQ(AttrMedianRanks(PaperFig2()), (std::vector<int>{2, 1, 1}));
  EXPECT_EQ(IdsOf(AttrQuantileRankTopK(PaperFig2(), 3, 0.5)),
            (std::vector<int>{2, 3, 1}));
}

TEST(PaperExamplesTest, Fig4MedianRanks) {
  // Section 7.1: r_m = (2, 1, 1, 2); ranking (t2,t3,t1,t4) — different
  // from the expected-rank order (t3,t1,t2,t4).
  EXPECT_EQ(TupleMedianRanks(PaperFig4()), (std::vector<int>{2, 1, 1, 2}));
  EXPECT_EQ(IdsOf(TupleQuantileRankTopK(PaperFig4(), 4, 0.5)),
            (std::vector<int>{2, 3, 1, 4}));
}

TEST(PaperExamplesTest, Fig2UTopkDisjointTopOneTopTwo) {
  // Section 4.2: top-1 is t1 (0.4); top-2 is (t2,t3) (0.36).
  EXPECT_EQ(AttrUTopK(PaperFig2(), 1).ids, (std::vector<int>{1}));
  EXPECT_EQ(AttrUTopK(PaperFig2(), 2).ids, (std::vector<int>{2, 3}));
}

TEST(PaperExamplesTest, Fig4UTopkDisjointTopOneTopTwo) {
  // Section 4.2: top-1 is t1; top-2 is (t2,t3) or (t3,t4).
  EXPECT_EQ(TupleUTopK(PaperFig4(), 1).ids, (std::vector<int>{1}));
  const auto top2 = TupleUTopK(PaperFig4(), 2).ids;
  EXPECT_TRUE(top2 == (std::vector<int>{2, 3}) ||
              top2 == (std::vector<int>{3, 4}));
}

TEST(PaperExamplesTest, Fig2UKRanks) {
  // Section 4.2: the U-kRanks top-3 is t1, t3, t1.
  EXPECT_EQ(AttrUKRanks(PaperFig2(), 3), (std::vector<int>{1, 3, 1}));
}

TEST(PaperExamplesTest, Fig4UKRanksTieAndMissingFourth) {
  const auto answer = TupleUKRanks(PaperFig4(), 4);
  EXPECT_EQ(answer[3], -1);  // "there is no fourth placed tuple"
}

TEST(PaperExamplesTest, Fig2PTkWithThresholdPointFour) {
  // Section 4.2: PT-1 = (t1); PT-2 and PT-3 = {t1, t2, t3}.
  EXPECT_EQ(AttrPTk(PaperFig2(), 1, 0.4), (std::vector<int>{1}));
  EXPECT_EQ(AttrPTk(PaperFig2(), 2, 0.4).size(), 3u);
  EXPECT_EQ(AttrPTk(PaperFig2(), 3, 0.4).size(), 3u);
}

TEST(PaperExamplesTest, Fig2GlobalTopk) {
  // Section 4.2: top-1 is t1, top-2 is (t2, t3).
  EXPECT_EQ(AttrGlobalTopK(PaperFig2(), 1), (std::vector<int>{1}));
  EXPECT_EQ(AttrGlobalTopK(PaperFig2(), 2), (std::vector<int>{2, 3}));
}

TEST(PaperExamplesTest, Fig4GlobalTopk) {
  // Section 4.2: top-1 is t1, top-2 is (t3, t2).
  EXPECT_EQ(TupleGlobalTopK(PaperFig4(), 1), (std::vector<int>{1}));
  EXPECT_EQ(TupleGlobalTopK(PaperFig4(), 2), (std::vector<int>{3, 2}));
}

}  // namespace
}  // namespace urank
