// Randomized cross-module consistency checks at sizes beyond what
// possible-worlds enumeration can reach. Each invariant ties two
// independently implemented code paths together, so a bug in either one
// breaks the test.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "core/expected_rank_attr.h"
#include "core/expected_rank_tuple.h"
#include "core/quantile_rank.h"
#include "core/rank_distribution_attr.h"
#include "core/rank_distribution_tuple.h"
#include "core/semantics/global_topk.h"
#include "core/semantics/pt_k.h"
#include "core/semantics/semantics.h"
#include "gen/attr_gen.h"
#include "gen/tuple_gen.h"
#include "gtest/gtest.h"

namespace urank {
namespace {

class ConsistencyFuzz : public ::testing::TestWithParam<uint64_t> {
 protected:
  AttrRelation MakeAttr(int n) const {
    AttrGenConfig config;
    config.num_tuples = n;
    config.pdf_size = 4;
    config.value_spread = 100.0;  // heavy overlap stresses the DPs
    config.seed = GetParam();
    return GenerateAttrRelation(config);
  }

  TupleRelation MakeTuple(int n) const {
    TupleGenConfig config;
    config.num_tuples = n;
    config.multi_rule_fraction = 0.5;
    config.max_rule_size = 4;
    config.prob_lo = 0.05;
    config.seed = GetParam();
    return GenerateTupleRelation(config);
  }
};

TEST_P(ConsistencyFuzz, AttrExpectedRankEqualsDistributionMean) {
  const AttrRelation rel = MakeAttr(50);
  const std::vector<double> er =
      AttrExpectedRanks(rel, TiePolicy::kBreakByIndex);
  const auto dists = AttrRankDistributions(rel, TiePolicy::kBreakByIndex);
  for (int i = 0; i < rel.size(); ++i) {
    double mean = 0.0;
    const auto& row = dists[static_cast<size_t>(i)];
    for (size_t r = 0; r < row.size(); ++r) mean += static_cast<double>(r) * row[r];
    EXPECT_NEAR(mean, er[static_cast<size_t>(i)], 1e-7) << "tuple " << i;
  }
}

TEST_P(ConsistencyFuzz, TupleExpectedRankEqualsDistributionMean) {
  const TupleRelation rel = MakeTuple(80);
  const std::vector<double> er =
      TupleExpectedRanks(rel, TiePolicy::kBreakByIndex);
  const auto dists = TupleRankDistributions(rel, TiePolicy::kBreakByIndex);
  for (int i = 0; i < rel.size(); ++i) {
    double mean = 0.0;
    const auto& row = dists[static_cast<size_t>(i)];
    for (size_t r = 0; r < row.size(); ++r) mean += static_cast<double>(r) * row[r];
    EXPECT_NEAR(mean, er[static_cast<size_t>(i)], 1e-7) << "tuple " << i;
  }
}

TEST_P(ConsistencyFuzz, AttrTopKProbabilitiesSumToK) {
  // Every world contains exactly min(k, N) tuples in its top-k, so the
  // membership probabilities must sum to exactly k.
  const AttrRelation rel = MakeAttr(40);
  for (int k : {1, 7, 25}) {
    const std::vector<double> probs = AttrTopKProbabilities(rel, k);
    const double sum = std::accumulate(probs.begin(), probs.end(), 0.0);
    EXPECT_NEAR(sum, std::min(k, rel.size()), 1e-7) << "k=" << k;
  }
}

TEST_P(ConsistencyFuzz, TupleTopKProbabilitiesSumToExpectedOccupancy) {
  // Σ_i Pr[t_i in top-k] = E[min(k, |W|)] <= min(k, E[|W|]).
  const TupleRelation rel = MakeTuple(60);
  for (int k : {1, 5, 20}) {
    const std::vector<double> probs = TupleTopKProbabilities(rel, k);
    const double sum = std::accumulate(probs.begin(), probs.end(), 0.0);
    EXPECT_LE(sum, k + 1e-7);
    EXPECT_LE(sum, rel.ExpectedWorldSize() + 1e-7);
    EXPECT_GT(sum, 0.0);
  }
}

TEST_P(ConsistencyFuzz, PositionalRowsDecomposeTopKProbability) {
  // Pr[in top-k] must equal the sum of the first k positional entries —
  // two distinct aggregation paths over the same DP.
  const TupleRelation rel = MakeTuple(45);
  const auto pos = TuplePositionalProbabilities(rel);
  const int k = 9;
  const std::vector<double> probs = TupleTopKProbabilities(rel, k);
  for (int i = 0; i < rel.size(); ++i) {
    double sum = 0.0;
    for (int r = 0; r < k; ++r) {
      sum += pos[static_cast<size_t>(i)][static_cast<size_t>(r)];
    }
    EXPECT_NEAR(sum, probs[static_cast<size_t>(i)], 1e-9);
  }
}

TEST_P(ConsistencyFuzz, PruneAgreesWithExactOnTupleModel) {
  const TupleRelation rel = MakeTuple(500);
  for (int k : {1, 13, 60}) {
    const auto exact = TupleExpectedRankTopK(rel, k);
    const TuplePruneResult pruned = TupleExpectedRankTopKPrune(rel, k);
    ASSERT_EQ(pruned.topk.size(), exact.size());
    for (size_t i = 0; i < exact.size(); ++i) {
      EXPECT_EQ(pruned.topk[i].id, exact[i].id);
    }
  }
}

TEST_P(ConsistencyFuzz, QuantileSweepIsMonotoneEverywhere) {
  const TupleRelation rel = MakeTuple(70);
  std::vector<std::vector<int>> sweeps;
  for (double phi : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    sweeps.push_back(TupleQuantileRanks(rel, phi));
  }
  for (size_t s = 1; s < sweeps.size(); ++s) {
    for (int i = 0; i < rel.size(); ++i) {
      EXPECT_LE(sweeps[s - 1][static_cast<size_t>(i)],
                sweeps[s][static_cast<size_t>(i)]);
    }
  }
}

TEST_P(ConsistencyFuzz, PTkWithTinyThresholdReturnsEveryPossibleMember) {
  const TupleRelation rel = MakeTuple(30);
  const int k = 5;
  const std::vector<int> answer = TuplePTk(rel, k, 1e-12);
  const std::vector<double> probs = TupleTopKProbabilities(rel, k);
  size_t possible = 0;
  for (double p : probs) {
    if (p >= 1e-12) ++possible;
  }
  EXPECT_EQ(answer.size(), possible);
}

TEST_P(ConsistencyFuzz, GlobalTopkIsPrefixOfPTkOrdering) {
  // Both order by top-k probability with the same tie-break, so
  // Global-Topk must be the k-prefix of PT-k with a tiny threshold.
  const AttrRelation rel = MakeAttr(25);
  const int k = 6;
  const std::vector<int> global = AttrGlobalTopK(rel, k);
  const std::vector<int> ptk = AttrPTk(rel, k, 1e-12);
  ASSERT_GE(ptk.size(), global.size());
  for (size_t i = 0; i < global.size(); ++i) {
    EXPECT_EQ(global[i], ptk[i]);
  }
}

TEST_P(ConsistencyFuzz, RankDistributionRowsAreDistributions) {
  const TupleRelation rel = MakeTuple(55);
  for (const auto& row : TupleRankDistributions(rel)) {
    double sum = 0.0;
    for (double p : row) {
      EXPECT_GE(p, -1e-12);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-7);
  }
}

TEST_P(ConsistencyFuzz, ExpectedRanksSumMatchesClosedForm) {
  // Under kBreakByIndex every ordered pair of co-appearing tuples resolves
  // exactly once, and each absent tuple contributes |W|:
  //   Σ_i r(t_i) = E[ C(|W|,2) ] + E[ (N - |W|) · |W| ].
  // With independence across rules both expectations reduce to moments of
  // |W|; validate against a direct second-moment computation.
  const TupleRelation rel = MakeTuple(40);
  const std::vector<double> ranks =
      TupleExpectedRanks(rel, TiePolicy::kBreakByIndex);
  const double total = std::accumulate(ranks.begin(), ranks.end(), 0.0);
  // E[|W|] and Var[|W|] from the per-rule occupancy Bernoullis.
  double mean = 0.0, var = 0.0;
  for (int r = 0; r < rel.num_rules(); ++r) {
    const double p = std::min(rel.rule_prob_sum(r), 1.0);
    mean += p;
    var += p * (1.0 - p);
  }
  const double second_moment = var + mean * mean;  // E[|W|^2]
  const double n = rel.size();
  const double expected_total =
      (second_moment - mean) / 2.0 + n * mean - second_moment;
  EXPECT_NEAR(total, expected_total, 1e-6);
}

// One seed = one full pass over every invariant above. URANK_FUZZ_ITERS
// overrides the seed count: the default keeps a local ctest run fast, and
// the sanitizer CI job cranks it up for deeper coverage (see
// docs/TOOLING.md).
std::vector<uint64_t> FuzzSeeds() {
  int iters = 8;
  if (const char* env = std::getenv("URANK_FUZZ_ITERS")) {
    const int parsed = std::atoi(env);
    if (parsed >= 1) iters = parsed;
  }
  std::vector<uint64_t> seeds(static_cast<size_t>(iters));
  std::iota(seeds.begin(), seeds.end(), uint64_t{1001});
  return seeds;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsistencyFuzz,
                         ::testing::ValuesIn(FuzzSeeds()));

}  // namespace
}  // namespace urank
