#include "util/zipf.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "util/rng.h"

namespace urank {
namespace {

TEST(ZipfTest, PmfSumsToOne) {
  for (double theta : {0.0, 0.5, 1.0, 2.0}) {
    ZipfDistribution zipf(100, theta);
    double sum = 0.0;
    for (int64_t i = 1; i <= 100; ++i) sum += zipf.Pmf(i);
    EXPECT_NEAR(sum, 1.0, 1e-12) << "theta=" << theta;
  }
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  ZipfDistribution zipf(10, 0.0);
  for (int64_t i = 1; i <= 10; ++i) {
    EXPECT_NEAR(zipf.Pmf(i), 0.1, 1e-12);
  }
}

TEST(ZipfTest, PmfDecreasesWithRank) {
  ZipfDistribution zipf(50, 1.0);
  for (int64_t i = 1; i < 50; ++i) {
    EXPECT_GT(zipf.Pmf(i), zipf.Pmf(i + 1));
  }
}

TEST(ZipfTest, HigherThetaMoreSkewed) {
  ZipfDistribution mild(100, 0.5);
  ZipfDistribution steep(100, 2.0);
  EXPECT_GT(steep.Pmf(1), mild.Pmf(1));
  EXPECT_LT(steep.Pmf(100), mild.Pmf(100));
}

TEST(ZipfTest, PmfRatioMatchesPowerLaw) {
  const double theta = 1.3;
  ZipfDistribution zipf(20, theta);
  // Pmf(i)/Pmf(j) should equal (j/i)^theta exactly.
  const double ratio = zipf.Pmf(2) / zipf.Pmf(4);
  EXPECT_NEAR(ratio, std::pow(2.0, theta), 1e-9);
}

TEST(ZipfTest, SamplesStayInRange) {
  ZipfDistribution zipf(7, 1.0);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const int64_t x = zipf.Sample(rng);
    EXPECT_GE(x, 1);
    EXPECT_LE(x, 7);
  }
}

TEST(ZipfTest, SampleFrequenciesMatchPmf) {
  ZipfDistribution zipf(5, 1.0);
  Rng rng(2);
  std::vector<int> counts(6, 0);
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) {
    ++counts[static_cast<size_t>(zipf.Sample(rng))];
  }
  for (int64_t i = 1; i <= 5; ++i) {
    const double freq = static_cast<double>(counts[static_cast<size_t>(i)]) /
                        static_cast<double>(trials);
    EXPECT_NEAR(freq, zipf.Pmf(i), 0.01) << "rank " << i;
  }
}

TEST(ZipfTest, SingleElementUniverse) {
  ZipfDistribution zipf(1, 1.0);
  Rng rng(3);
  EXPECT_DOUBLE_EQ(zipf.Pmf(1), 1.0);
  EXPECT_EQ(zipf.Sample(rng), 1);
}

TEST(ZipfDeathTest, RejectsInvalidParameters) {
  EXPECT_DEATH(ZipfDistribution(0, 1.0), "n >= 1");
  EXPECT_DEATH(ZipfDistribution(10, -0.1), "theta >= 0");
}

TEST(ZipfDeathTest, PmfRejectsOutOfRange) {
  ZipfDistribution zipf(5, 1.0);
  EXPECT_DEATH(zipf.Pmf(0), "out of range");
  EXPECT_DEATH(zipf.Pmf(6), "out of range");
}

}  // namespace
}  // namespace urank
