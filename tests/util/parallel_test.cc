#include "util/parallel.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "util/topology.h"

namespace urank {
namespace {

// Swaps the planning topology for a synthetic one and restores a detected
// topology on destruction, so later tests see the machine's shape again.
class ScopedPlanningTopology {
 public:
  explicit ScopedPlanningTopology(const char* spec) {
    Topology topo = Topology::SingleNode(1);
    std::string error;
    EXPECT_TRUE(Topology::Parse(spec, &topo, &error)) << error;
    SetGlobalTopologyForTest(topo);
  }
  ~ScopedPlanningTopology() { SetGlobalTopologyForTest(Topology::Detect()); }
};

TEST(ResolveThreadsTest, PositiveRequestsPassThrough) {
  EXPECT_EQ(ResolveThreads(1), 1);
  EXPECT_EQ(ResolveThreads(7), 7);
}

TEST(ResolveThreadsTest, NonPositiveMeansHardwareAndAtLeastOne) {
  EXPECT_GE(ResolveThreads(0), 1);
  EXPECT_GE(ResolveThreads(-3), 1);
  EXPECT_EQ(ResolveThreads(0), ResolveThreads(-1));
}

TEST(PlannedWorkersTest, SmallInputsStaySerial) {
  ParallelismOptions par;
  par.threads = 8;
  par.min_parallel_items = 4096;
  EXPECT_EQ(PlannedWorkers(par, 0), 1);
  EXPECT_EQ(PlannedWorkers(par, 4095), 1);
}

TEST(PlannedWorkersTest, LargeInputsUseRequestedThreads) {
  ParallelismOptions par;
  par.threads = 8;
  par.min_parallel_items = 4096;
  EXPECT_EQ(PlannedWorkers(par, 4096), 8);
  EXPECT_EQ(PlannedWorkers(par, 1 << 20), 8);
}

TEST(PlannedWorkersTest, NeverMoreWorkersThanItems) {
  ParallelismOptions par;
  par.threads = 8;
  par.min_parallel_items = 1;
  EXPECT_EQ(PlannedWorkers(par, 3), 3);
  EXPECT_EQ(PlannedWorkers(par, 1), 1);
}

TEST(DeterministicChunkCountTest, PureFunctionOfSize) {
  EXPECT_EQ(DeterministicChunkCount(0), 1);
  EXPECT_EQ(DeterministicChunkCount(1), 1);
  EXPECT_EQ(DeterministicChunkCount(8191), 1);
  EXPECT_EQ(DeterministicChunkCount(8192), 1);
  EXPECT_EQ(DeterministicChunkCount(16384), 2);
  EXPECT_EQ(DeterministicChunkCount(100000), 12);
  EXPECT_EQ(DeterministicChunkCount(1 << 30), 16);  // capped
}

TEST(DeterministicChunkCountTest, CustomGrainAndCap) {
  EXPECT_EQ(DeterministicChunkCount(100, 10, 4), 4);
  EXPECT_EQ(DeterministicChunkCount(100, 10, 32), 10);
  EXPECT_EQ(DeterministicChunkCount(100, 1000, 32), 1);
}

TEST(DeterministicChunkCountDeathTest, RejectsBadGrainOrCap) {
  EXPECT_DEATH(DeterministicChunkCount(10, 0, 4), "grain");
  EXPECT_DEATH(DeterministicChunkCount(10, 8, 0), "max_chunks");
}

TEST(ChunkBoundariesTest, CoversRangeInAscendingOrder) {
  const std::vector<long long> bounds = ChunkBoundaries(10, 3);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_EQ(bounds.front(), 0);
  EXPECT_EQ(bounds.back(), 10);
  for (size_t c = 1; c < bounds.size(); ++c) {
    EXPECT_LE(bounds[c - 1], bounds[c]);
  }
}

TEST(ChunkBoundariesTest, MoreChunksThanItemsYieldsEmptyChunks) {
  const std::vector<long long> bounds = ChunkBoundaries(2, 5);
  ASSERT_EQ(bounds.size(), 6u);
  EXPECT_EQ(bounds.front(), 0);
  EXPECT_EQ(bounds.back(), 2);
  long long covered = 0;
  for (size_t c = 1; c < bounds.size(); ++c) covered += bounds[c] - bounds[c - 1];
  EXPECT_EQ(covered, 2);
}

TEST(ChunkBoundariesDeathTest, RejectsBadArguments) {
  EXPECT_DEATH(ChunkBoundaries(-1, 3), "n must be");
  EXPECT_DEATH(ChunkBoundaries(10, 0), "num_chunks");
}

TEST(ParallelForTest, SerialWorkerVisitsChunksInOrderOnSlotZero) {
  std::vector<int> order;
  std::vector<int> slots;
  const int used = ParallelFor(5, 1, [&](int chunk, int slot) {
    order.push_back(chunk);
    slots.push_back(slot);
  });
  EXPECT_EQ(used, 1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(slots, (std::vector<int>{0, 0, 0, 0, 0}));
}

TEST(ParallelForTest, ZeroChunksRunsNothing) {
  bool ran = false;
  const int used = ParallelFor(0, 8, [&](int, int) { ran = true; });
  EXPECT_EQ(used, 1);
  EXPECT_FALSE(ran);
}

TEST(ParallelForTest, EveryChunkRunsExactlyOnce) {
  constexpr int kChunks = 64;
  std::vector<std::atomic<int>> counts(kChunks);
  for (auto& c : counts) c.store(0);
  const int used = ParallelFor(kChunks, 8, [&](int chunk, int slot) {
    EXPECT_GE(slot, 0);
    EXPECT_LT(slot, 8);
    counts[static_cast<size_t>(chunk)].fetch_add(1);
  });
  EXPECT_GE(used, 1);
  EXPECT_LE(used, 8);
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ParallelForTest, WorkersClampedToChunkCount) {
  std::atomic<int> max_slot{0};
  const int used = ParallelFor(2, 16, [&](int, int slot) {
    int cur = max_slot.load();
    while (slot > cur && !max_slot.compare_exchange_weak(cur, slot)) {
    }
  });
  EXPECT_LE(used, 2);
  EXPECT_LT(max_slot.load(), 2);
}

TEST(ParallelForDeathTest, RejectsNegativeChunkCount) {
  EXPECT_DEATH(ParallelFor(-1, 2, [](int, int) {}), "num_chunks");
}

TEST(ParallelReduceTest, FoldsPartialsInChunkIndexOrder) {
  // String concatenation is non-commutative, so any out-of-order fold
  // changes the answer. Run with enough workers to force real concurrency.
  for (int workers : {1, 2, 8}) {
    const std::string joined = ParallelReduce<std::string>(
        6, workers, std::string(),
        [](int chunk, int) { return std::string(1, static_cast<char>('a' + chunk)); },
        [](std::string acc, std::string part) { return acc + part; });
    EXPECT_EQ(joined, "abcdef") << "workers=" << workers;
  }
}

TEST(ParallelReduceTest, SumMatchesSerialForAnyWorkerCount) {
  const auto chunk_sum = [](int chunk, int) {
    long long s = 0;
    for (int i = 0; i < 1000; ++i) s += chunk * 1000 + i;
    return s;
  };
  const auto fold = [](long long acc, long long part) { return acc + part; };
  const long long serial = ParallelReduce<long long>(16, 1, 0, chunk_sum, fold);
  for (int workers : {2, 4, 8}) {
    EXPECT_EQ(ParallelReduce<long long>(16, workers, 0, chunk_sum, fold),
              serial);
  }
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  constexpr int kTasks = 32;
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      std::lock_guard<std::mutex> lock(mu);
      if (++done == kTasks) cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(60),
                          [&] { return done == kTasks; }));
}

TEST(ThreadPoolTest, GlobalPoolIsSharedAndSizedToHardware) {
  ThreadPool& a = ThreadPool::Global();
  ThreadPool& b = ThreadPool::Global();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.max_workers(), 1);
}

TEST(ThreadPoolDeathTest, RejectsNegativeWorkerCap) {
  EXPECT_DEATH(ThreadPool(-1), "max_workers");
}

TEST(PlacementPolicyTest, StringRoundTrip) {
  for (PlacementPolicy placement :
       {PlacementPolicy::kFlat, PlacementPolicy::kNodeLocal,
        PlacementPolicy::kSpread}) {
    PlacementPolicy parsed = PlacementPolicy::kFlat;
    ASSERT_TRUE(PlacementFromString(ToString(placement), &parsed))
        << ToString(placement);
    EXPECT_EQ(parsed, placement);
  }
}

TEST(PlacementPolicyTest, RejectsUnknownNamesWithoutTouchingOut) {
  PlacementPolicy parsed = PlacementPolicy::kSpread;
  EXPECT_FALSE(PlacementFromString("numa", &parsed));
  EXPECT_FALSE(PlacementFromString("", &parsed));
  EXPECT_FALSE(PlacementFromString("Flat", &parsed));  // case-sensitive
  EXPECT_EQ(parsed, PlacementPolicy::kSpread);
}

TEST(EffectiveParallelismTest, FlatAndSpreadOnlyResolveThreads) {
  ScopedPlanningTopology topo("0-3;4-7");
  for (PlacementPolicy placement :
       {PlacementPolicy::kFlat, PlacementPolicy::kSpread}) {
    ParallelismOptions par;
    par.threads = 8;
    par.placement = placement;
    bool clamped = true;
    const ParallelismOptions eff = EffectiveParallelism(par, &clamped);
    EXPECT_EQ(eff.threads, 8) << ToString(placement);
    EXPECT_EQ(eff.placement, placement);
    EXPECT_FALSE(clamped);
  }
}

TEST(EffectiveParallelismTest, NodeLocalClampsToWidestNode) {
  ScopedPlanningTopology topo("0-3;4-9");  // widest node has 6 cores
  ParallelismOptions par;
  par.threads = 16;
  par.placement = PlacementPolicy::kNodeLocal;
  bool clamped = false;
  const ParallelismOptions eff = EffectiveParallelism(par, &clamped);
  EXPECT_EQ(eff.threads, 6);
  EXPECT_EQ(eff.placement, PlacementPolicy::kNodeLocal);
  EXPECT_TRUE(clamped);

  // A request already within the widest node passes through unclamped.
  par.threads = 4;
  const ParallelismOptions small = EffectiveParallelism(par, &clamped);
  EXPECT_EQ(small.threads, 4);
  EXPECT_FALSE(clamped);
}

TEST(EffectiveParallelismTest, AutoThreadsResolveBeforeClamping) {
  ScopedPlanningTopology topo("0-1;2-3");
  ParallelismOptions par;
  par.threads = 0;  // "every allowed core" = the planning topology's total
  par.placement = PlacementPolicy::kNodeLocal;
  bool clamped = false;
  const ParallelismOptions eff = EffectiveParallelism(par, &clamped);
  EXPECT_EQ(eff.threads, 2);  // 4 total cores clamped to the 2-core node
  EXPECT_TRUE(clamped);
}

TEST(ParallelForPlacedTest, EveryChunkRunsExactlyOnceUnderEveryPolicy) {
  constexpr int kChunks = 64;
  for (PlacementPolicy placement :
       {PlacementPolicy::kFlat, PlacementPolicy::kNodeLocal,
        PlacementPolicy::kSpread}) {
    std::vector<std::atomic<int>> counts(kChunks);
    for (auto& c : counts) c.store(0);
    const ForRunInfo info =
        ParallelForPlaced(kChunks, 8, placement, [&](int chunk, int slot) {
          EXPECT_GE(slot, 0);
          EXPECT_LT(slot, 8);
          counts[static_cast<size_t>(chunk)].fetch_add(1);
        });
    for (const auto& c : counts) EXPECT_EQ(c.load(), 1) << ToString(placement);
    EXPECT_GE(info.participants, 1);
    EXPECT_LE(info.participants, 8);
    EXPECT_GE(info.nodes_used, 1);
    EXPECT_GE(info.remote_chunks, 0);
  }
}

TEST(ParallelForPlacedTest, SerialCallerVisitsChunksInOrderOnSlotZero) {
  for (PlacementPolicy placement :
       {PlacementPolicy::kFlat, PlacementPolicy::kNodeLocal,
        PlacementPolicy::kSpread}) {
    std::vector<int> order;
    const ForRunInfo info =
        ParallelForPlaced(5, 1, placement, [&](int chunk, int slot) {
          EXPECT_EQ(slot, 0);
          order.push_back(chunk);
        });
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4})) << ToString(placement);
    EXPECT_EQ(info.participants, 1);
    EXPECT_EQ(info.nodes_used, 1);
    EXPECT_EQ(info.remote_chunks, 0);
  }
}

TEST(ParallelForPlacedTest, ZeroChunksRunsNothing) {
  bool ran = false;
  const ForRunInfo info = ParallelForPlaced(
      0, 8, PlacementPolicy::kSpread, [&](int, int) { ran = true; });
  EXPECT_FALSE(ran);
  EXPECT_EQ(info.participants, 1);
}

TEST(ParallelForPlacedTest, SyntheticMultiNodePlanningIsHarmless) {
  // A synthetic multi-node planning topology must not change execution
  // correctness even though the execution pool (built at first use from
  // the machine) has a different group count.
  ScopedPlanningTopology topo("0-1;2-3;4-5");
  for (PlacementPolicy placement :
       {PlacementPolicy::kFlat, PlacementPolicy::kNodeLocal,
        PlacementPolicy::kSpread}) {
    std::vector<std::atomic<int>> counts(24);
    for (auto& c : counts) c.store(0);
    ParallelForPlaced(24, 6, placement, [&](int chunk, int) {
      counts[static_cast<size_t>(chunk)].fetch_add(1);
    });
    for (const auto& c : counts) EXPECT_EQ(c.load(), 1) << ToString(placement);
  }
}

TEST(ParallelForPlacedDeathTest, RejectsNegativeChunkCount) {
  EXPECT_DEATH(
      ParallelForPlaced(-1, 2, PlacementPolicy::kFlat, [](int, int) {}),
      "num_chunks");
}

TEST(ThreadPoolTest, SubmitToGroupRunsOnEveryGroup) {
  ThreadPool pool(2);
  ASSERT_GE(pool.num_groups(), 1);
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  const int total = 4 * pool.num_groups();
  for (int g = 0; g < total; ++g) {
    pool.SubmitToGroup(g, [&] {
      std::lock_guard<std::mutex> lock(mu);
      if (++done == total) cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(60),
                          [&] { return done == total; }));
}

TEST(ThreadPoolTest, CurrentGroupIsMinusOneOffPoolAndValidOnWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.CurrentGroup(), -1);  // the main thread is not a worker
  std::mutex mu;
  std::condition_variable cv;
  int seen = -2;
  pool.Submit([&] {
    std::lock_guard<std::mutex> lock(mu);
    seen = pool.CurrentGroup();
    cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(60),
                          [&] { return seen != -2; }));
  EXPECT_GE(seen, 0);
  EXPECT_LT(seen, pool.num_groups());
}

TEST(KernelReportTest, MergeTakesMaxThreadsAndSumsArenaBytes) {
  KernelReport a;
  a.threads_used = 4;
  a.nodes_used = 1;
  a.arena_bytes = 100;
  KernelReport b;
  b.threads_used = 2;
  b.nodes_used = 2;
  b.arena_bytes = 50;
  a.Merge(b);
  EXPECT_EQ(a.threads_used, 4);
  EXPECT_EQ(a.nodes_used, 2);
  EXPECT_EQ(a.arena_bytes, 150u);
  b.Merge(a);
  EXPECT_EQ(b.threads_used, 4);
  EXPECT_EQ(b.nodes_used, 2);
  EXPECT_EQ(b.arena_bytes, 200u);
}

}  // namespace
}  // namespace urank
