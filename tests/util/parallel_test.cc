#include "util/parallel.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace urank {
namespace {

TEST(ResolveThreadsTest, PositiveRequestsPassThrough) {
  EXPECT_EQ(ResolveThreads(1), 1);
  EXPECT_EQ(ResolveThreads(7), 7);
}

TEST(ResolveThreadsTest, NonPositiveMeansHardwareAndAtLeastOne) {
  EXPECT_GE(ResolveThreads(0), 1);
  EXPECT_GE(ResolveThreads(-3), 1);
  EXPECT_EQ(ResolveThreads(0), ResolveThreads(-1));
}

TEST(PlannedWorkersTest, SmallInputsStaySerial) {
  ParallelismOptions par;
  par.threads = 8;
  par.min_parallel_items = 4096;
  EXPECT_EQ(PlannedWorkers(par, 0), 1);
  EXPECT_EQ(PlannedWorkers(par, 4095), 1);
}

TEST(PlannedWorkersTest, LargeInputsUseRequestedThreads) {
  ParallelismOptions par;
  par.threads = 8;
  par.min_parallel_items = 4096;
  EXPECT_EQ(PlannedWorkers(par, 4096), 8);
  EXPECT_EQ(PlannedWorkers(par, 1 << 20), 8);
}

TEST(PlannedWorkersTest, NeverMoreWorkersThanItems) {
  ParallelismOptions par;
  par.threads = 8;
  par.min_parallel_items = 1;
  EXPECT_EQ(PlannedWorkers(par, 3), 3);
  EXPECT_EQ(PlannedWorkers(par, 1), 1);
}

TEST(DeterministicChunkCountTest, PureFunctionOfSize) {
  EXPECT_EQ(DeterministicChunkCount(0), 1);
  EXPECT_EQ(DeterministicChunkCount(1), 1);
  EXPECT_EQ(DeterministicChunkCount(8191), 1);
  EXPECT_EQ(DeterministicChunkCount(8192), 1);
  EXPECT_EQ(DeterministicChunkCount(16384), 2);
  EXPECT_EQ(DeterministicChunkCount(100000), 12);
  EXPECT_EQ(DeterministicChunkCount(1 << 30), 16);  // capped
}

TEST(DeterministicChunkCountTest, CustomGrainAndCap) {
  EXPECT_EQ(DeterministicChunkCount(100, 10, 4), 4);
  EXPECT_EQ(DeterministicChunkCount(100, 10, 32), 10);
  EXPECT_EQ(DeterministicChunkCount(100, 1000, 32), 1);
}

TEST(DeterministicChunkCountDeathTest, RejectsBadGrainOrCap) {
  EXPECT_DEATH(DeterministicChunkCount(10, 0, 4), "grain");
  EXPECT_DEATH(DeterministicChunkCount(10, 8, 0), "max_chunks");
}

TEST(ChunkBoundariesTest, CoversRangeInAscendingOrder) {
  const std::vector<long long> bounds = ChunkBoundaries(10, 3);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_EQ(bounds.front(), 0);
  EXPECT_EQ(bounds.back(), 10);
  for (size_t c = 1; c < bounds.size(); ++c) {
    EXPECT_LE(bounds[c - 1], bounds[c]);
  }
}

TEST(ChunkBoundariesTest, MoreChunksThanItemsYieldsEmptyChunks) {
  const std::vector<long long> bounds = ChunkBoundaries(2, 5);
  ASSERT_EQ(bounds.size(), 6u);
  EXPECT_EQ(bounds.front(), 0);
  EXPECT_EQ(bounds.back(), 2);
  long long covered = 0;
  for (size_t c = 1; c < bounds.size(); ++c) covered += bounds[c] - bounds[c - 1];
  EXPECT_EQ(covered, 2);
}

TEST(ChunkBoundariesDeathTest, RejectsBadArguments) {
  EXPECT_DEATH(ChunkBoundaries(-1, 3), "n must be");
  EXPECT_DEATH(ChunkBoundaries(10, 0), "num_chunks");
}

TEST(ParallelForTest, SerialWorkerVisitsChunksInOrderOnSlotZero) {
  std::vector<int> order;
  std::vector<int> slots;
  const int used = ParallelFor(5, 1, [&](int chunk, int slot) {
    order.push_back(chunk);
    slots.push_back(slot);
  });
  EXPECT_EQ(used, 1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(slots, (std::vector<int>{0, 0, 0, 0, 0}));
}

TEST(ParallelForTest, ZeroChunksRunsNothing) {
  bool ran = false;
  const int used = ParallelFor(0, 8, [&](int, int) { ran = true; });
  EXPECT_EQ(used, 1);
  EXPECT_FALSE(ran);
}

TEST(ParallelForTest, EveryChunkRunsExactlyOnce) {
  constexpr int kChunks = 64;
  std::vector<std::atomic<int>> counts(kChunks);
  for (auto& c : counts) c.store(0);
  const int used = ParallelFor(kChunks, 8, [&](int chunk, int slot) {
    EXPECT_GE(slot, 0);
    EXPECT_LT(slot, 8);
    counts[static_cast<size_t>(chunk)].fetch_add(1);
  });
  EXPECT_GE(used, 1);
  EXPECT_LE(used, 8);
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ParallelForTest, WorkersClampedToChunkCount) {
  std::atomic<int> max_slot{0};
  const int used = ParallelFor(2, 16, [&](int, int slot) {
    int cur = max_slot.load();
    while (slot > cur && !max_slot.compare_exchange_weak(cur, slot)) {
    }
  });
  EXPECT_LE(used, 2);
  EXPECT_LT(max_slot.load(), 2);
}

TEST(ParallelForDeathTest, RejectsNegativeChunkCount) {
  EXPECT_DEATH(ParallelFor(-1, 2, [](int, int) {}), "num_chunks");
}

TEST(ParallelReduceTest, FoldsPartialsInChunkIndexOrder) {
  // String concatenation is non-commutative, so any out-of-order fold
  // changes the answer. Run with enough workers to force real concurrency.
  for (int workers : {1, 2, 8}) {
    const std::string joined = ParallelReduce<std::string>(
        6, workers, std::string(),
        [](int chunk, int) { return std::string(1, static_cast<char>('a' + chunk)); },
        [](std::string acc, std::string part) { return acc + part; });
    EXPECT_EQ(joined, "abcdef") << "workers=" << workers;
  }
}

TEST(ParallelReduceTest, SumMatchesSerialForAnyWorkerCount) {
  const auto chunk_sum = [](int chunk, int) {
    long long s = 0;
    for (int i = 0; i < 1000; ++i) s += chunk * 1000 + i;
    return s;
  };
  const auto fold = [](long long acc, long long part) { return acc + part; };
  const long long serial = ParallelReduce<long long>(16, 1, 0, chunk_sum, fold);
  for (int workers : {2, 4, 8}) {
    EXPECT_EQ(ParallelReduce<long long>(16, workers, 0, chunk_sum, fold),
              serial);
  }
}

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  constexpr int kTasks = 32;
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      std::lock_guard<std::mutex> lock(mu);
      if (++done == kTasks) cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(60),
                          [&] { return done == kTasks; }));
}

TEST(ThreadPoolTest, GlobalPoolIsSharedAndSizedToHardware) {
  ThreadPool& a = ThreadPool::Global();
  ThreadPool& b = ThreadPool::Global();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.max_workers(), 1);
}

TEST(ThreadPoolDeathTest, RejectsNegativeWorkerCap) {
  EXPECT_DEATH(ThreadPool(-1), "max_workers");
}

TEST(KernelReportTest, MergeTakesMaxThreadsAndSumsArenaBytes) {
  KernelReport a;
  a.threads_used = 4;
  a.arena_bytes = 100;
  KernelReport b;
  b.threads_used = 2;
  b.arena_bytes = 50;
  a.Merge(b);
  EXPECT_EQ(a.threads_used, 4);
  EXPECT_EQ(a.arena_bytes, 150u);
  b.Merge(a);
  EXPECT_EQ(b.threads_used, 4);
  EXPECT_EQ(b.arena_bytes, 200u);
}

}  // namespace
}  // namespace urank
