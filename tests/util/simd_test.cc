#include "util/simd.h"

#include <string>

#include "gtest/gtest.h"

namespace urank {
namespace {

constexpr SimdTarget kAllTargets[] = {SimdTarget::kScalar, SimdTarget::kNeon,
                                      SimdTarget::kAvx2, SimdTarget::kAvx512};

// Pins the process-wide dispatch target for one test and restores the
// entry state on scope exit, so tests in this binary stay independent.
class TargetGuard {
 public:
  TargetGuard() : entry_(ActiveSimdTarget()) {}
  ~TargetGuard() { SetSimdTarget(entry_); }

 private:
  SimdTarget entry_;
};

TEST(SimdTargetTest, ToStringParseRoundTrip) {
  for (SimdTarget t : kAllTargets) {
    SimdTarget parsed = SimdTarget::kAvx512;
    ASSERT_TRUE(ParseSimdTarget(ToString(t), &parsed)) << ToString(t);
    EXPECT_EQ(parsed, t);
  }
}

TEST(SimdTargetTest, ParseRejectsUnknownNames) {
  SimdTarget parsed = SimdTarget::kScalar;
  EXPECT_FALSE(ParseSimdTarget("sse9", &parsed));
  EXPECT_FALSE(ParseSimdTarget("", &parsed));
  EXPECT_FALSE(ParseSimdTarget(nullptr, &parsed));
  EXPECT_FALSE(ParseSimdTarget("AVX2", &parsed));  // names are lowercase
}

TEST(SimdTargetTest, ScalarIsAlwaysAvailable) {
  EXPECT_TRUE(SimdTargetAvailable(SimdTarget::kScalar));
}

TEST(SimdTargetTest, DetectedTargetIsAvailable) {
  EXPECT_TRUE(SimdTargetAvailable(DetectSimdTarget()));
}

TEST(SimdTargetTest, ActiveTargetIsAvailable) {
  EXPECT_TRUE(SimdTargetAvailable(ActiveSimdTarget()));
}

TEST(SimdTargetTest, SetTargetInstallsScalar) {
  TargetGuard guard;
  EXPECT_EQ(SetSimdTarget(SimdTarget::kScalar), SimdTarget::kScalar);
  EXPECT_EQ(ActiveSimdTarget(), SimdTarget::kScalar);
}

TEST(SimdTargetTest, SetTargetClampsToAvailable) {
  TargetGuard guard;
  for (SimdTarget requested : kAllTargets) {
    const SimdTarget installed = SetSimdTarget(requested);
    EXPECT_TRUE(SimdTargetAvailable(installed)) << ToString(requested);
    EXPECT_LE(static_cast<int>(installed), static_cast<int>(requested));
    EXPECT_EQ(ActiveSimdTarget(), installed);
    // Requesting an available target installs exactly that target.
    if (SimdTargetAvailable(requested)) {
      EXPECT_EQ(installed, requested);
    }
  }
}

TEST(SimdTargetTest, ToStringNamesAreDistinct) {
  for (SimdTarget a : kAllTargets) {
    for (SimdTarget b : kAllTargets) {
      if (a == b) continue;
      EXPECT_NE(std::string(ToString(a)), std::string(ToString(b)));
    }
  }
}

}  // namespace
}  // namespace urank
