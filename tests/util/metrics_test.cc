#include "util/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "util/parallel.h"

namespace urank {
namespace {

// Expected value of a metric mutated `n` times in this build: mutations
// no-op when the instrumentation is compiled out, so the same assertions
// hold for URANK_METRICS=ON and OFF builds.
long long IfEnabled(long long n) { return metrics::Enabled() ? n : 0; }

TEST(MetricsCounterTest, IncrementAndReset) {
  metrics::Counter counter;
  EXPECT_EQ(counter.value(), 0);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.value(), IfEnabled(42));
  counter.Reset();
  EXPECT_EQ(counter.value(), 0);
}

TEST(MetricsCounterTest, ConcurrentIncrementsUnderThreadPoolAreExact) {
  metrics::Counter counter;
  constexpr int kChunks = 16;
  constexpr int kIncrementsPerChunk = 20000;
  ParallelFor(kChunks, 8, [&](int /*chunk*/, int /*slot*/) {
    for (int i = 0; i < kIncrementsPerChunk; ++i) counter.Increment();
  });
  EXPECT_EQ(counter.value(),
            IfEnabled(static_cast<long long>(kChunks) * kIncrementsPerChunk));
}

TEST(MetricsGaugeTest, SetAndHighWater) {
  metrics::Gauge gauge;
  gauge.Set(3.5);
  EXPECT_EQ(gauge.value(), IfEnabled(1) ? 3.5 : 0.0);
  gauge.SetMax(2.0);  // below the high water: no change
  EXPECT_EQ(gauge.value(), IfEnabled(1) ? 3.5 : 0.0);
  gauge.SetMax(7.0);
  EXPECT_EQ(gauge.value(), IfEnabled(1) ? 7.0 : 0.0);
}

TEST(MetricsGaugeTest, ConcurrentSetMaxConvergesToMaximum) {
  metrics::Gauge gauge;
  constexpr int kChunks = 16;
  ParallelFor(kChunks, 8, [&](int chunk, int /*slot*/) {
    for (int i = 0; i <= 1000; ++i) {
      gauge.SetMax(static_cast<double>(chunk * 1000 + i));
    }
  });
  EXPECT_EQ(gauge.value(), IfEnabled(1) ? 16000.0 : 0.0);
}

TEST(MetricsHistogramTest, BucketBoundaries) {
  using metrics::Histogram;
  // The grid is powers of two with an inclusive upper bound: bucket i
  // holds 2^(i-1) < v <= 2^i, bucket 0 holds v <= 1.
  EXPECT_EQ(Histogram::BucketUpperBound(0), 1.0);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 2.0);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1024.0);
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kBucketCount - 1),
            std::numeric_limits<double>::infinity());

  EXPECT_EQ(Histogram::BucketIndex(0.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(-5.0), 0);  // caller bug clamps down
  EXPECT_EQ(Histogram::BucketIndex(std::nan("")), 0);
  EXPECT_EQ(Histogram::BucketIndex(1.0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1.0001), 1);
  EXPECT_EQ(Histogram::BucketIndex(2.0), 1);
  EXPECT_EQ(Histogram::BucketIndex(2.0001), 2);
  EXPECT_EQ(Histogram::BucketIndex(1024.0), 10);
  EXPECT_EQ(Histogram::BucketIndex(1024.5), 11);
  // Every finite upper bound is inclusive: 2^i lands in bucket i.
  for (int i = 0; i < Histogram::kBucketCount - 1; ++i) {
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketUpperBound(i)), i);
  }
  // Past the finite grid: the overflow bucket.
  EXPECT_EQ(Histogram::BucketIndex(1e18), Histogram::kBucketCount - 1);
  EXPECT_EQ(Histogram::BucketIndex(std::numeric_limits<double>::infinity()),
            Histogram::kBucketCount - 1);
}

TEST(MetricsHistogramTest, RecordCountsSumAndBuckets) {
  metrics::Histogram h;
  h.Record(0.5);   // bucket 0
  h.Record(1.5);   // bucket 1
  h.Record(3.0);   // bucket 2
  h.Record(3.5);   // bucket 2
  EXPECT_EQ(h.count(), IfEnabled(4));
  EXPECT_EQ(h.sum(), IfEnabled(1) ? 8.5 : 0.0);
  EXPECT_EQ(h.bucket_count(0), IfEnabled(1));
  EXPECT_EQ(h.bucket_count(1), IfEnabled(1));
  EXPECT_EQ(h.bucket_count(2), IfEnabled(2));
  EXPECT_EQ(h.bucket_count(3), 0);
}

TEST(MetricsHistogramTest, ConcurrentRecordsUnderThreadPoolAreExact) {
  metrics::Histogram h;
  constexpr int kChunks = 16;
  constexpr int kSamplesPerChunk = 5000;
  ParallelFor(kChunks, 8, [&](int /*chunk*/, int /*slot*/) {
    for (int i = 0; i < kSamplesPerChunk; ++i) h.Record(1.0);
  });
  const long long total =
      IfEnabled(static_cast<long long>(kChunks) * kSamplesPerChunk);
  EXPECT_EQ(h.count(), total);
  EXPECT_EQ(h.bucket_count(0), total);
  // Each sample adds exactly 1.0, which doubles represent exactly at this
  // magnitude, so the CAS-looped sum must equal the count.
  EXPECT_EQ(h.sum(), static_cast<double>(total));
}

TEST(MetricsRegistryTest, SameNameYieldsSameMetric) {
  metrics::Registry registry;
  metrics::Counter& a = registry.counter("urank_test_lookup_total");
  metrics::Counter& b = registry.counter("urank_test_lookup_total");
  EXPECT_EQ(&a, &b);
  metrics::Histogram& h1 = registry.histogram("urank_test_lookup_us");
  metrics::Histogram& h2 = registry.histogram("urank_test_lookup_us");
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistryTest, RejectsBadNamesAndCrossTypeCollisions) {
  metrics::Registry registry;
  registry.counter("urank_test_collision_total");
  EXPECT_DEATH(registry.counter("queries_total"), "urank_");
  EXPECT_DEATH(registry.gauge("urank_test_collision_total"), "another type");
}

TEST(MetricsRegistryTest, RenderPrometheusShape) {
  metrics::Registry registry;
  registry.counter("urank_test_events_total").Increment(3);
  registry.gauge("urank_test_depth_count").Set(2.0);
  registry.histogram("urank_test_latency_us").Record(1.5);
  const std::string page = registry.RenderPrometheus();
  EXPECT_NE(page.find("# TYPE urank_test_events_total counter"),
            std::string::npos);
  EXPECT_NE(page.find("# TYPE urank_test_depth_count gauge"),
            std::string::npos);
  EXPECT_NE(page.find("# TYPE urank_test_latency_us histogram"),
            std::string::npos);
  EXPECT_NE(page.find("urank_test_latency_us_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(page.find("urank_test_latency_us_count"), std::string::npos);
  if (metrics::Enabled()) {
    EXPECT_NE(page.find("urank_test_events_total 3"), std::string::npos);
  } else {
    // Compiled out: names render, values are zero.
    EXPECT_NE(page.find("urank_test_events_total 0"), std::string::npos);
  }
}

TEST(MetricsRegistryTest, RenderJsonSnapshotShape) {
  metrics::Registry registry;
  registry.counter("urank_test_events_total").Increment(2);
  registry.histogram("urank_test_latency_us").Record(3.0);
  const std::string json = registry.RenderJsonSnapshot();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  if (metrics::Enabled()) {
    EXPECT_NE(json.find("\"urank_test_events_total\": 2"),
              std::string::npos);
    EXPECT_NE(json.find("[\"4\", 1]"), std::string::npos);  // 3.0 -> le=4
  }
}

TEST(MetricsRegistryTest, SnapshotWhileWritingIsSafe) {
  metrics::Registry registry;
  metrics::Counter& counter = registry.counter("urank_test_racing_total");
  metrics::Histogram& hist = registry.histogram("urank_test_racing_us");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      counter.Increment();
      hist.Record(2.5);
    }
  });
  for (int i = 0; i < 50; ++i) {
    const std::string page = registry.RenderPrometheus();
    const std::string json = registry.RenderJsonSnapshot();
    EXPECT_NE(page.find("urank_test_racing_total"), std::string::npos);
    EXPECT_EQ(json.front(), '{');
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  // Quiesced: the per-scalar atomics must agree with a final exact read.
  EXPECT_EQ(hist.count(), counter.value());
}

TEST(MetricsRegistryTest, ResetAllZeroesValuesButKeepsNames) {
  metrics::Registry registry;
  registry.counter("urank_test_reset_total").Increment(5);
  registry.ResetAll();
  EXPECT_EQ(registry.counter("urank_test_reset_total").value(), 0);
  EXPECT_NE(registry.RenderPrometheus().find("urank_test_reset_total"),
            std::string::npos);
}

TEST(MetricsEnabledTest, RuntimeSwitchSuppressesRecording) {
  metrics::Counter counter;
  metrics::SetEnabled(false);
  counter.Increment(10);
  EXPECT_EQ(counter.value(), 0);
  metrics::SetEnabled(true);
  counter.Increment(10);
  EXPECT_EQ(counter.value(), IfEnabled(10));
}

TEST(MetricsTimerTest, ScopedTimerRecordsAndElapsedWorksWhenDisabled) {
  metrics::Histogram h;
  {
    metrics::ScopedHistogramTimer timer(h);
    EXPECT_GE(timer.ElapsedUs(), 0.0);
  }
  EXPECT_EQ(h.count(), IfEnabled(1));

  metrics::SetEnabled(false);
  {
    // ElapsedUs keeps working so QueryStats.wall_ms flows in every build.
    metrics::ScopedHistogramTimer timer(h);
    EXPECT_GE(timer.ElapsedUs(), 0.0);
  }
  metrics::SetEnabled(true);
  EXPECT_EQ(h.count(), IfEnabled(1));
}

}  // namespace
}  // namespace urank
