#include "util/poisson_binomial.h"

#include <cmath>
#include <numeric>
#include <vector>

#include "gtest/gtest.h"
#include "util/rng.h"

namespace urank {
namespace {

double BinomialPmf(int n, int c, double p) {
  double binom = 1.0;
  for (int i = 0; i < c; ++i) {
    binom *= static_cast<double>(n - i) / static_cast<double>(i + 1);
  }
  return binom * std::pow(p, c) * std::pow(1.0 - p, n - c);
}

TEST(PoissonBinomialTest, EmptyDistribution) {
  PoissonBinomial pb;
  EXPECT_EQ(pb.num_trials(), 0);
  EXPECT_DOUBLE_EQ(pb.Pmf(0), 1.0);
  EXPECT_DOUBLE_EQ(pb.Pmf(1), 0.0);
  EXPECT_DOUBLE_EQ(pb.Cdf(0), 1.0);
  EXPECT_DOUBLE_EQ(pb.Mean(), 0.0);
}

TEST(PoissonBinomialTest, SingleTrial) {
  PoissonBinomial pb;
  pb.AddTrial(0.3);
  EXPECT_DOUBLE_EQ(pb.Pmf(0), 0.7);
  EXPECT_DOUBLE_EQ(pb.Pmf(1), 0.3);
  EXPECT_DOUBLE_EQ(pb.Mean(), 0.3);
}

TEST(PoissonBinomialTest, MatchesBinomialForEqualProbs) {
  PoissonBinomial pb;
  const int n = 12;
  const double p = 0.37;
  for (int i = 0; i < n; ++i) pb.AddTrial(p);
  for (int c = 0; c <= n; ++c) {
    EXPECT_NEAR(pb.Pmf(c), BinomialPmf(n, c, p), 1e-12) << "c=" << c;
  }
}

TEST(PoissonBinomialTest, DeterministicTrials) {
  PoissonBinomial pb;
  pb.AddTrial(1.0);
  pb.AddTrial(1.0);
  pb.AddTrial(0.0);
  EXPECT_DOUBLE_EQ(pb.Pmf(2), 1.0);
  EXPECT_DOUBLE_EQ(pb.Pmf(0), 0.0);
  EXPECT_DOUBLE_EQ(pb.Pmf(3), 0.0);
}

TEST(PoissonBinomialTest, PmfSumsToOne) {
  Rng rng(1);
  PoissonBinomial pb;
  for (int i = 0; i < 40; ++i) pb.AddTrial(rng.Uniform01());
  const double sum =
      std::accumulate(pb.pmf().begin(), pb.pmf().end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(PoissonBinomialTest, MeanIsSumOfProbs) {
  Rng rng(2);
  PoissonBinomial pb;
  double expected = 0.0;
  for (int i = 0; i < 25; ++i) {
    const double p = rng.Uniform01();
    pb.AddTrial(p);
    expected += p;
  }
  EXPECT_NEAR(pb.Mean(), expected, 1e-12);
  // The distribution's mean must agree with the analytic mean.
  double mean = 0.0;
  for (int c = 0; c <= pb.num_trials(); ++c) mean += c * pb.Pmf(c);
  EXPECT_NEAR(mean, expected, 1e-9);
}

TEST(PoissonBinomialTest, CdfMonotoneAndClamped) {
  PoissonBinomial pb;
  pb.AddTrial(0.5);
  pb.AddTrial(0.25);
  EXPECT_DOUBLE_EQ(pb.Cdf(-1), 0.0);
  double prev = 0.0;
  for (int c = 0; c <= 2; ++c) {
    EXPECT_GE(pb.Cdf(c), prev);
    prev = pb.Cdf(c);
  }
  EXPECT_DOUBLE_EQ(pb.Cdf(2), 1.0);
  EXPECT_DOUBLE_EQ(pb.Cdf(99), 1.0);
}

TEST(PoissonBinomialTest, RemoveInvertsAdd) {
  Rng rng(3);
  std::vector<double> probs;
  PoissonBinomial pb;
  for (int i = 0; i < 15; ++i) {
    const double p = rng.Uniform01();
    probs.push_back(p);
    pb.AddTrial(p);
  }
  const std::vector<double> with_all = pb.pmf();
  // Remove and re-add each trial; distribution must be unchanged.
  for (double p : probs) {
    pb.RemoveTrial(p);
    EXPECT_EQ(pb.num_trials(), 14);
    pb.AddTrial(p);
    for (size_t c = 0; c < with_all.size(); ++c) {
      EXPECT_NEAR(pb.pmf()[c], with_all[c], 1e-9);
    }
  }
}

TEST(PoissonBinomialTest, RemoveMatchesRebuiltDistribution) {
  Rng rng(4);
  std::vector<double> probs;
  for (int i = 0; i < 12; ++i) probs.push_back(rng.Uniform01());
  PoissonBinomial pb = PoissonBinomial::FromProbs(probs);
  pb.RemoveTrial(probs[5]);
  std::vector<double> rest = probs;
  rest.erase(rest.begin() + 5);
  PoissonBinomial expected = PoissonBinomial::FromProbs(rest);
  for (int c = 0; c <= pb.num_trials(); ++c) {
    EXPECT_NEAR(pb.Pmf(c), expected.Pmf(c), 1e-9);
  }
}

TEST(PoissonBinomialTest, RemoveExtremeProbabilitiesIsStable) {
  // p = 1 forces the backward division path; p = 0 the forward path.
  PoissonBinomial pb;
  pb.AddTrial(1.0);
  pb.AddTrial(0.0);
  pb.AddTrial(0.5);
  pb.RemoveTrial(1.0);
  EXPECT_NEAR(pb.Pmf(0), 0.5, 1e-12);
  EXPECT_NEAR(pb.Pmf(1), 0.5, 1e-12);
  pb.RemoveTrial(0.0);
  EXPECT_NEAR(pb.Pmf(0), 0.5, 1e-12);
  EXPECT_NEAR(pb.Pmf(1), 0.5, 1e-12);
  pb.RemoveTrial(0.5);
  EXPECT_NEAR(pb.Pmf(0), 1.0, 1e-12);
}

TEST(PoissonBinomialTest, ManyRemovalCyclesStayAccurate) {
  // Repeated remove/add cycles (the rank-distribution sweep pattern) must
  // not accumulate drift.
  Rng rng(5);
  std::vector<double> probs;
  for (int i = 0; i < 30; ++i) probs.push_back(rng.Uniform01());
  PoissonBinomial pb = PoissonBinomial::FromProbs(probs);
  const std::vector<double> reference = pb.pmf();
  for (int cycle = 0; cycle < 200; ++cycle) {
    const double p = probs[static_cast<size_t>(cycle % probs.size())];
    pb.RemoveTrial(p);
    pb.AddTrial(p);
  }
  for (size_t c = 0; c < reference.size(); ++c) {
    EXPECT_NEAR(pb.pmf()[c], reference[c], 1e-8);
  }
}

TEST(PoissonBinomialDeathTest, RejectsBadProbabilities) {
  PoissonBinomial pb;
  EXPECT_DEATH(pb.AddTrial(-0.1), "in \\[0,1\\]");
  EXPECT_DEATH(pb.AddTrial(1.1), "in \\[0,1\\]");
}

TEST(PoissonBinomialDeathTest, RejectsUnknownRemoval) {
  PoissonBinomial pb;
  EXPECT_DEATH(pb.RemoveTrial(0.5), "no live trials");
  pb.AddTrial(0.25);
  EXPECT_DEATH(pb.RemoveTrial(0.5), "no matching trial");
}

class PoissonBinomialSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(PoissonBinomialSweepTest, MatchesExhaustiveEnumeration) {
  // Enumerate all 2^n outcomes and compare against the DP.
  const int n = GetParam();
  Rng rng(static_cast<uint64_t>(100 + n));
  std::vector<double> probs;
  for (int i = 0; i < n; ++i) probs.push_back(rng.Uniform01());
  PoissonBinomial pb = PoissonBinomial::FromProbs(probs);
  std::vector<double> expected(static_cast<size_t>(n) + 1, 0.0);
  for (int mask = 0; mask < (1 << n); ++mask) {
    double prob = 1.0;
    int count = 0;
    for (int i = 0; i < n; ++i) {
      if ((mask >> i) & 1) {
        prob *= probs[static_cast<size_t>(i)];
        ++count;
      } else {
        prob *= 1.0 - probs[static_cast<size_t>(i)];
      }
    }
    expected[static_cast<size_t>(count)] += prob;
  }
  for (int c = 0; c <= n; ++c) {
    EXPECT_NEAR(pb.Pmf(c), expected[static_cast<size_t>(c)], 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PoissonBinomialSweepTest,
                         ::testing::Values(1, 2, 3, 5, 8, 12));

}  // namespace
}  // namespace urank
