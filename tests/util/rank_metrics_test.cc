#include "util/rank_metrics.h"

#include <numeric>
#include <vector>

#include "gtest/gtest.h"
#include "util/rng.h"

namespace urank {
namespace {

TEST(RankMetricsTest, RecallBasics) {
  EXPECT_DOUBLE_EQ(RecallAgainst({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(RecallAgainst({1, 2}, {1, 2, 3, 4}), 0.5);
  EXPECT_DOUBLE_EQ(RecallAgainst({}, {1, 2}), 0.0);
  EXPECT_DOUBLE_EQ(RecallAgainst({5, 6}, {}), 1.0);  // empty reference
}

TEST(RankMetricsTest, PrecisionBasics) {
  EXPECT_DOUBLE_EQ(PrecisionAgainst({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAgainst({1, 9}, {1, 2, 3}), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAgainst({}, {1, 2}), 1.0);  // empty answer
  EXPECT_DOUBLE_EQ(PrecisionAgainst({9, 8}, {1, 2}), 0.0);
}

TEST(RankMetricsTest, PrecisionEqualsRecallForEqualSizes) {
  const std::vector<int> a = {1, 2, 3, 4};
  const std::vector<int> b = {3, 4, 5, 6};
  EXPECT_DOUBLE_EQ(PrecisionAgainst(a, b), RecallAgainst(a, b));
}

TEST(RankMetricsTest, TopKOverlap) {
  EXPECT_DOUBLE_EQ(TopKOverlap({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(TopKOverlap({1}, {}), 0.0);
  EXPECT_DOUBLE_EQ(TopKOverlap({1, 2, 3}, {2, 3, 4}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(TopKOverlap({1, 2}, {1, 2, 3, 4}), 0.5);
}

TEST(KendallTauTest, IdenticalOrderingsAreZero) {
  EXPECT_DOUBLE_EQ(KendallTauDistance({1, 2, 3, 4}, {1, 2, 3, 4}), 0.0);
  EXPECT_DOUBLE_EQ(KendallTauDistance({7}, {7}), 0.0);
  EXPECT_DOUBLE_EQ(KendallTauDistance({}, {}), 0.0);
}

TEST(KendallTauTest, ReversedOrderingIsOne) {
  EXPECT_DOUBLE_EQ(KendallTauDistance({1, 2, 3, 4, 5}, {5, 4, 3, 2, 1}),
                   1.0);
}

TEST(KendallTauTest, SingleSwap) {
  // One adjacent transposition out of C(4,2)=6 pairs.
  EXPECT_DOUBLE_EQ(KendallTauDistance({1, 2, 3, 4}, {2, 1, 3, 4}),
                   1.0 / 6.0);
}

TEST(KendallTauTest, SymmetricInArguments) {
  const std::vector<int> a = {3, 1, 4, 1 + 4, 9, 2, 6};
  const std::vector<int> b = {9, 2, 6, 3, 1, 4, 5};
  EXPECT_DOUBLE_EQ(KendallTauDistance(a, b), KendallTauDistance(b, a));
}

TEST(KendallTauTest, MatchesQuadraticCountOnRandomPermutations) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = static_cast<int>(rng.UniformInt(2, 30));
    std::vector<int> a(static_cast<size_t>(n));
    std::iota(a.begin(), a.end(), 100);
    std::vector<int> b = a;
    rng.Shuffle(b);
    // O(n^2) reference count of discordant pairs.
    std::vector<int> pos_a(static_cast<size_t>(n) + 200);
    std::vector<int> pos_b(static_cast<size_t>(n) + 200);
    for (int i = 0; i < n; ++i) {
      pos_a[static_cast<size_t>(a[static_cast<size_t>(i)])] = i;
      pos_b[static_cast<size_t>(b[static_cast<size_t>(i)])] = i;
    }
    int discordant = 0;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        const int x = a[static_cast<size_t>(i)];
        const int y = a[static_cast<size_t>(j)];
        const bool same_order =
            (pos_a[static_cast<size_t>(x)] < pos_a[static_cast<size_t>(y)]) ==
            (pos_b[static_cast<size_t>(x)] < pos_b[static_cast<size_t>(y)]);
        if (!same_order) ++discordant;
      }
    }
    const double expected =
        2.0 * discordant / (static_cast<double>(n) * (n - 1));
    EXPECT_NEAR(KendallTauDistance(a, b), expected, 1e-12);
  }
}

TEST(SpearmanFootruleTest, IdenticalOrderingsAreZero) {
  EXPECT_DOUBLE_EQ(SpearmanFootruleDistance({1, 2, 3}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(SpearmanFootruleDistance({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(SpearmanFootruleDistance({9}, {9}), 0.0);
}

TEST(SpearmanFootruleTest, ReversedOrderingIsOne) {
  // Max footrule sum is floor(n^2/2); a full reversal achieves it.
  EXPECT_DOUBLE_EQ(SpearmanFootruleDistance({1, 2, 3, 4}, {4, 3, 2, 1}),
                   1.0);
  EXPECT_DOUBLE_EQ(
      SpearmanFootruleDistance({1, 2, 3, 4, 5}, {5, 4, 3, 2, 1}), 1.0);
}

TEST(SpearmanFootruleTest, AdjacentSwap) {
  // One adjacent transposition: footrule sum 2 over max floor(16/2)=8.
  EXPECT_DOUBLE_EQ(SpearmanFootruleDistance({1, 2, 3, 4}, {2, 1, 3, 4}),
                   0.25);
}

TEST(SpearmanFootruleTest, DiaconisGrahamInequality) {
  // Kendall tau count K and footrule sum F satisfy K <= F <= 2K (Diaconis
  // & Graham); verify the normalized versions stay consistent on random
  // permutations via the raw counts.
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = static_cast<int>(rng.UniformInt(2, 25));
    std::vector<int> a(static_cast<size_t>(n));
    std::iota(a.begin(), a.end(), 0);
    std::vector<int> b = a;
    rng.Shuffle(b);
    const double pairs = n * (n - 1) / 2.0;
    const double max_f = static_cast<double>((n * n) / 2);
    const double K = KendallTauDistance(a, b) * pairs;
    const double F = SpearmanFootruleDistance(a, b) * max_f;
    EXPECT_LE(K, F + 1e-9);
    EXPECT_LE(F, 2.0 * K + 1e-9);
  }
}

TEST(SpearmanFootruleDeathTest, RejectsMismatchedInputs) {
  EXPECT_DEATH(SpearmanFootruleDistance({1, 2}, {1}), "equal-size");
  EXPECT_DEATH(SpearmanFootruleDistance({1, 2}, {1, 3}), "same items");
}

TEST(KendallTauDeathTest, RejectsMismatchedInputs) {
  EXPECT_DEATH(KendallTauDistance({1, 2}, {1}), "equal-size");
  EXPECT_DEATH(KendallTauDistance({1, 2}, {1, 3}), "same items");
  EXPECT_DEATH(KendallTauDistance({1, 1}, {1, 1}), "duplicate");
}

}  // namespace
}  // namespace urank
