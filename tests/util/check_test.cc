// Death tests for the contract layer in util/check.h: the always-on
// URANK_CHECK tier aborts with a diagnostic in every build type, while the
// URANK_DCHECK tier aborts only when URANK_ENABLE_DCHECKS is on and
// vanishes (condition unevaluated) otherwise.

#include "util/check.h"

#include <limits>
#include <vector>

#include "gtest/gtest.h"

namespace urank {
namespace {

using internal::AllFiniteInRange;
using internal::IsNormalized;
using internal::IsProbability;

TEST(CheckTest, PassingCheckDoesNotAbort) {
  URANK_CHECK(1 + 1 == 2);
  URANK_CHECK_MSG(true, "never printed");
}

TEST(CheckTest, ConditionIsEvaluatedExactlyOnce) {
  int evaluations = 0;
  URANK_CHECK(++evaluations > 0);
  EXPECT_EQ(evaluations, 1);
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(URANK_CHECK(2 + 2 == 5), "URANK_CHECK failed");
}

TEST(CheckDeathTest, FailingCheckReportsTheExpression) {
  EXPECT_DEATH(URANK_CHECK(1 > 2), "1 > 2");
}

TEST(CheckDeathTest, FailingCheckMsgReportsTheMessage) {
  EXPECT_DEATH(URANK_CHECK_MSG(false, "k must be >= 1"), "k must be >= 1");
}

#if URANK_ENABLE_DCHECKS

TEST(DcheckDeathTest, FailingDcheckAbortsWhenEnabled) {
  EXPECT_DEATH(URANK_DCHECK(false), "URANK_CHECK failed");
  EXPECT_DEATH(URANK_DCHECK_MSG(false, "contract broken"), "contract broken");
}

TEST(DcheckDeathTest, DcheckProbRejectsOutOfRange) {
  EXPECT_DEATH(URANK_DCHECK_PROB(1.5), "probability");
  EXPECT_DEATH(URANK_DCHECK_PROB(-0.5), "probability");
}

TEST(DcheckDeathTest, DcheckNormalizedRejectsDenormalizedPmf) {
  const std::vector<double> pmf = {0.5, 0.4};  // sums to 0.9
  EXPECT_DEATH(URANK_DCHECK_NORMALIZED(pmf), "not normalized");
}

TEST(DcheckTest, DcheckEvaluatesWhenEnabled) {
  int evaluations = 0;
  URANK_DCHECK(++evaluations > 0);
  EXPECT_EQ(evaluations, 1);
}

#else  // !URANK_ENABLE_DCHECKS

TEST(DcheckTest, DcheckIsANoOpInRelease) {
  URANK_DCHECK(false);
  URANK_DCHECK_MSG(false, "never evaluated");
  URANK_DCHECK_PROB(2.0);
  const std::vector<double> pmf = {0.5, 0.4};
  URANK_DCHECK_NORMALIZED(pmf);
}

TEST(DcheckTest, DcheckDoesNotEvaluateItsConditionInRelease) {
  int evaluations = 0;
  URANK_DCHECK(++evaluations > 0);
  URANK_DCHECK_PROB(static_cast<double>(++evaluations));
  EXPECT_EQ(evaluations, 0);
}

#endif  // URANK_ENABLE_DCHECKS

TEST(DcheckTest, PassingContractsNeverAbort) {
  URANK_DCHECK(true);
  URANK_DCHECK_MSG(true, "fine");
  URANK_DCHECK_PROB(0.0);
  URANK_DCHECK_PROB(1.0);
  URANK_DCHECK_PROB(0.5);
  const std::vector<double> pmf = {0.25, 0.25, 0.5};
  URANK_DCHECK_NORMALIZED(pmf);
}

TEST(ValidatorTest, IsProbabilityHonorsTolerance) {
  EXPECT_TRUE(IsProbability(0.0));
  EXPECT_TRUE(IsProbability(1.0));
  // Round-off just past the boundaries is tolerated…
  EXPECT_TRUE(IsProbability(-1e-12));
  EXPECT_TRUE(IsProbability(1.0 + 1e-12));
  // …but real violations and non-finite values are not.
  EXPECT_FALSE(IsProbability(-1e-6));
  EXPECT_FALSE(IsProbability(1.0 + 1e-6));
  EXPECT_FALSE(IsProbability(std::numeric_limits<double>::quiet_NaN()));
  EXPECT_FALSE(IsProbability(std::numeric_limits<double>::infinity()));
}

TEST(ValidatorTest, IsNormalizedHonorsSizeScaledTolerance) {
  EXPECT_TRUE(IsNormalized({1.0}));
  EXPECT_TRUE(IsNormalized({0.5, 0.5}));
  // Per-entry rounding is absorbed proportionally to the pmf length.
  EXPECT_TRUE(IsNormalized({0.5 + 1e-12, 0.5 - 2e-12, 2e-12}));
  EXPECT_FALSE(IsNormalized({0.5, 0.4}));
  EXPECT_FALSE(IsNormalized({0.7, 0.4}));
  EXPECT_FALSE(IsNormalized({1.5, -0.5}));  // entries must be probabilities
  EXPECT_FALSE(IsNormalized(std::vector<double>{}));
  // Sub-distributions validate against an explicit target.
  EXPECT_TRUE(IsNormalized({0.2, 0.2}, 0.4));
  EXPECT_FALSE(IsNormalized({0.2, 0.2}, 0.5));
}

TEST(ValidatorTest, AllFiniteInRangeChecksEveryEntry) {
  EXPECT_TRUE(AllFiniteInRange({0.0, 1.0, 2.0}, 0.0, 2.0));
  EXPECT_TRUE(AllFiniteInRange(std::vector<double>{}, 0.0, 1.0));
  EXPECT_TRUE(AllFiniteInRange({-1e-12}, 0.0, 1.0));  // tolerance below lo
  EXPECT_FALSE(AllFiniteInRange({-1e-6}, 0.0, 1.0));
  EXPECT_FALSE(AllFiniteInRange({0.0, 3.0}, 0.0, 2.0));
  EXPECT_FALSE(
      AllFiniteInRange({std::numeric_limits<double>::quiet_NaN()}, 0.0, 1.0));
}

}  // namespace
}  // namespace urank
