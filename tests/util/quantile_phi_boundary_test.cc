// Death tests for the phi-domain contract of the quantile-rank entry
// points. The contract is phi in (0, 1]: phi = 0 has no smallest rank
// reaching a zero quantile (every cdf prefix qualifies vacuously) and
// anything above 1 can never be reached, so both ends abort through the
// always-on URANK_CHECK tier rather than returning a made-up rank. These
// sit alongside check_test.cc because they pin the *boundary placement*
// of a contract, not quantile arithmetic (tests/core/quantile_rank_test.cc
// covers that).

#include <cmath>
#include <limits>
#include <vector>

#include "gtest/gtest.h"
#include "core/quantile_rank.h"
#include "test_util.h"

namespace urank {
namespace {

using testing_util::PaperFig2;
using testing_util::PaperFig4;

const std::vector<double> kPmf = {0.25, 0.25, 0.5};

TEST(QuantilePhiBoundaryTest, BoundariesOfTheValidInterval) {
  // phi = 1 is inside the contract: it selects the last rank the cdf
  // reaches, even when round-off keeps the sum fractionally below 1.
  EXPECT_EQ(QuantileFromPmf(kPmf, 1.0), 2);
  // The smallest representable positive phi is inside too.
  EXPECT_EQ(QuantileFromPmf(kPmf, std::numeric_limits<double>::min()), 0);
}

TEST(QuantilePhiBoundaryDeathTest, PhiZeroAborts) {
  EXPECT_DEATH(QuantileFromPmf(kPmf, 0.0), "phi must be in \\(0,1\\]");
}

TEST(QuantilePhiBoundaryDeathTest, PhiJustAboveOneAborts) {
  const double above_one = std::nextafter(1.0, 2.0);
  EXPECT_DEATH(QuantileFromPmf(kPmf, above_one), "phi must be in \\(0,1\\]");
}

TEST(QuantilePhiBoundaryDeathTest, NegativePhiAborts) {
  EXPECT_DEATH(QuantileFromPmf(kPmf, -0.5), "phi must be in \\(0,1\\]");
  EXPECT_DEATH(QuantileFromPmf(kPmf, -0.0), "phi must be in \\(0,1\\]");
}

TEST(QuantilePhiBoundaryDeathTest, NonFinitePhiAborts) {
  EXPECT_DEATH(QuantileFromPmf(kPmf, std::numeric_limits<double>::quiet_NaN()),
               "phi must be in \\(0,1\\]");
  EXPECT_DEATH(QuantileFromPmf(kPmf, std::numeric_limits<double>::infinity()),
               "phi must be in \\(0,1\\]");
}

// The relation-level entry points validate phi up front, before any DP
// work, so a bad phi aborts even on inputs where no pmf is ever built.
TEST(QuantilePhiBoundaryDeathTest, RelationEntryPointsValidateUpFront) {
  const AttrRelation attr = PaperFig2();
  const TupleRelation tuple = PaperFig4();
  EXPECT_DEATH(AttrQuantileRanks(attr, 0.0), "phi must be in \\(0,1\\]");
  EXPECT_DEATH(TupleQuantileRanks(tuple, 0.0), "phi must be in \\(0,1\\]");
  EXPECT_DEATH(AttrQuantileRankTopK(attr, 1, 1.5), "phi must be in \\(0,1\\]");
  EXPECT_DEATH(TupleQuantileRankTopK(tuple, 1, 1.5),
               "phi must be in \\(0,1\\]");
}

TEST(QuantilePhiBoundaryTest, RelationEntryPointsAcceptTheClosedTop) {
  // phi = 1 flows through both models end to end.
  EXPECT_EQ(AttrQuantileRanks(PaperFig2(), 1.0).size(), 3u);
  EXPECT_EQ(TupleQuantileRanks(PaperFig4(), 1.0).size(), 4u);
}

}  // namespace
}  // namespace urank
