#include "util/timer.h"

#include <chrono>
#include <thread>

#include "gtest/gtest.h"

namespace urank {
namespace {

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double elapsed = timer.ElapsedMs();
  EXPECT_GE(elapsed, 15.0);
  EXPECT_LT(elapsed, 2000.0);  // generous ceiling for loaded machines
}

TEST(TimerTest, ResetRestarts) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  timer.Reset();
  EXPECT_LT(timer.ElapsedMs(), 15.0);
}

TEST(TimerTest, MonotoneNonDecreasing) {
  Timer timer;
  double prev = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double now = timer.ElapsedMs();
    EXPECT_GE(now, prev);
    prev = now;
  }
}

TEST(MedianTimeMsTest, RunsTheCallableExactlyRepeatsTimes) {
  int calls = 0;
  MedianTimeMs(7, [&] { ++calls; });
  EXPECT_EQ(calls, 7);
}

TEST(MedianTimeMsTest, MedianTracksTheTypicalCost) {
  // One slow outlier among fast runs must not dominate the median.
  int call = 0;
  const double median = MedianTimeMs(5, [&] {
    if (call++ == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });
  EXPECT_LT(median, 25.0);
}

}  // namespace
}  // namespace urank
