#include "util/table.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace urank {
namespace {

TEST(TableTest, RendersHeaderAndRows) {
  Table t("demo", {"N", "time"});
  t.AddRow({"10", "1.5"});
  t.AddRow({"1000", "12.25"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("N"), std::string::npos);
  EXPECT_NE(out.find("1000"), std::string::npos);
  EXPECT_NE(out.find("12.25"), std::string::npos);
}

TEST(TableTest, ColumnsAreAligned) {
  Table t("align", {"a", "bbbb"});
  t.AddRow({"xxxxx", "1"});
  const std::string out = t.ToString();
  // Every data/header line must have the same length (right-aligned grid).
  size_t line_start = out.find('\n') + 1;  // skip title
  std::vector<size_t> lengths;
  while (line_start < out.size()) {
    const size_t line_end = out.find('\n', line_start);
    lengths.push_back(line_end - line_start);
    line_start = line_end + 1;
  }
  ASSERT_GE(lengths.size(), 3u);  // header, separator, row
  for (size_t len : lengths) EXPECT_EQ(len, lengths[0]);
}

TEST(TableTest, EmptyTableStillRenders) {
  Table t("empty", {"only"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("only"), std::string::npos);
}

TEST(TableDeathTest, RejectsWrongRowWidth) {
  Table t("bad", {"a", "b"});
  EXPECT_DEATH(t.AddRow({"1"}), "row width");
}

TEST(TableDeathTest, RejectsEmptyHeader) {
  EXPECT_DEATH(Table("x", {}), "at least one column");
}

TEST(FormatTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
  EXPECT_EQ(FormatDouble(-0.5, 3), "-0.500");
}

TEST(FormatTest, FormatInt) {
  EXPECT_EQ(FormatInt(0), "0");
  EXPECT_EQ(FormatInt(-42), "-42");
  EXPECT_EQ(FormatInt(1234567890123LL), "1234567890123");
}

}  // namespace
}  // namespace urank
