#include "util/rng.h"

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

#include "gtest/gtest.h"

namespace urank {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform01(), b.Uniform01());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(7), b(8);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Uniform01() != b.Uniform01()) ++differing;
  }
  EXPECT_GT(differing, 90);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(2);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 4));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 4);
}

TEST(RngTest, UniformIntSingletonRange) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, NormalZeroStddevIsMean) {
  Rng rng(4);
  EXPECT_DOUBLE_EQ(rng.Normal(3.5, 0.0), 3.5);
}

TEST(RngTest, NormalRoughlyCentred) {
  Rng rng(5);
  double sum = 0.0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / trials, 10.0, 0.1);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));  // clamped
    EXPECT_TRUE(rng.Bernoulli(1.5));    // clamped
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(7);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(RngTest, RandomSimplexSumsToTotal) {
  Rng rng(8);
  for (int n : {1, 2, 5, 17}) {
    const std::vector<double> w = rng.RandomSimplex(n, 0.8);
    EXPECT_EQ(static_cast<int>(w.size()), n);
    const double sum = std::accumulate(w.begin(), w.end(), 0.0);
    EXPECT_NEAR(sum, 0.8, 1e-12);
    for (double x : w) EXPECT_GT(x, 0.0);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngDeathTest, UniformRejectsEmptyRange) {
  Rng rng(10);
  EXPECT_DEATH(rng.Uniform(1.0, 1.0), "lo < hi");
}

TEST(RngDeathTest, UniformIntRejectsInvertedRange) {
  Rng rng(11);
  EXPECT_DEATH(rng.UniformInt(2, 1), "lo <= hi");
}

TEST(RngDeathTest, SimplexRejectsZeroCount) {
  Rng rng(12);
  EXPECT_DEATH(rng.RandomSimplex(0, 1.0), "n >= 1");
}

}  // namespace
}  // namespace urank
