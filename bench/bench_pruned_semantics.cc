// Experiment E16 (extension): scan depth of the early-terminating
// Global-Topk and U-kRanks evaluations built on the shared score-order
// sweep, versus the full O(N M²)-DP evaluation they replace.
//
// Expected shape: like PT-k (E15), both algorithms stop after seeing only
// about k units of probability mass; the full evaluation touches all N
// tuples and pays the rank-distribution DP.

#include <cstdio>
#include <vector>

#include "core/semantics/global_topk.h"
#include "core/semantics/u_kranks.h"
#include "gen/tuple_gen.h"
#include "util/table.h"
#include "util/timer.h"

namespace urank {
namespace {

constexpr int kN = 20000;

TupleRelation MakeRelation(uint64_t seed) {
  TupleGenConfig config;
  config.num_tuples = kN;
  config.prob_lo = 0.2;
  config.multi_rule_fraction = 0.3;
  config.max_rule_size = 3;
  config.seed = seed;
  return GenerateTupleRelation(config);
}

void RunExperiment() {
  TupleRelation rel = MakeRelation(53);

  Table table("E16: pruned Global-Topk / U-kRanks scan depth (N = 20000)",
              {"k", "Global-Topk accessed", "Global-Topk ms",
               "U-kRanks accessed", "U-kRanks ms"});
  for (int k : {5, 10, 20, 50, 100}) {
    GlobalTopKPruneResult global;
    const double global_ms =
        MedianTimeMs(5, [&] { global = TupleGlobalTopKPruned(rel, k); });
    UKRanksPruneResult ukranks;
    const double ukranks_ms =
        MedianTimeMs(5, [&] { ukranks = TupleUKRanksPruned(rel, k); });
    table.AddRow({FormatInt(k), FormatInt(global.accessed),
                  FormatDouble(global_ms, 3), FormatInt(ukranks.accessed),
                  FormatDouble(ukranks_ms, 3)});
  }
  table.Print();

  // Reference: the unpruned evaluations at a size where the full DP is
  // still comfortable, to show the asymptotic gap the sweep closes.
  TupleGenConfig small = TupleGenConfig();
  small.num_tuples = 4000;
  small.prob_lo = 0.2;
  small.multi_rule_fraction = 0.3;
  small.seed = 54;
  TupleRelation small_rel = GenerateTupleRelation(small);
  Table reference("E16 reference: full evaluation vs pruned (N = 4000, k = 20)",
                  {"algorithm", "time (ms)"});
  reference.AddRow({"Global-Topk (full DP)", FormatDouble(MedianTimeMs(3, [&] {
                      volatile size_t sink =
                          TupleGlobalTopK(small_rel, 20).size();
                      (void)sink;
                    }), 2)});
  reference.AddRow({"Global-Topk (pruned)", FormatDouble(MedianTimeMs(3, [&] {
                      volatile size_t sink =
                          TupleGlobalTopKPruned(small_rel, 20).ids.size();
                      (void)sink;
                    }), 2)});
  reference.AddRow({"U-kRanks (full DP)", FormatDouble(MedianTimeMs(3, [&] {
                      volatile size_t sink =
                          TupleUKRanks(small_rel, 20).size();
                      (void)sink;
                    }), 2)});
  reference.AddRow({"U-kRanks (pruned)", FormatDouble(MedianTimeMs(3, [&] {
                      volatile size_t sink =
                          TupleUKRanksPruned(small_rel, 20).ids.size();
                      (void)sink;
                    }), 2)});
  std::printf("\n");
  reference.Print();
}

}  // namespace
}  // namespace urank

int main() {
  urank::RunExperiment();
  return 0;
}
