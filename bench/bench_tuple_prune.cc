// Experiment E6: T-ERank-Prune — tuples accessed (out of N) as a function
// of k, under independent / positively / negatively correlated
// (score, probability) and under different probability ranges.
//
// Paper shape: the scan stops once the seen probability mass exceeds the
// k-th best rank by 1, so high probabilities (or positive correlation,
// which concentrates mass at the top of the score order) prune hardest;
// low probabilities and anti-correlation force deeper scans. The answer
// is always exact.

#include <cstdio>
#include <utility>
#include <vector>

#include "core/expected_rank_tuple.h"
#include "gen/tuple_gen.h"
#include "util/table.h"

namespace urank {
namespace {

constexpr int kN = 20000;

TupleRelation MakeRelation(Correlation correlation, double prob_lo,
                           double prob_hi) {
  TupleGenConfig config;
  config.num_tuples = kN;
  config.correlation = correlation;
  config.prob_lo = prob_lo;
  config.prob_hi = prob_hi;
  config.multi_rule_fraction = 0.3;
  config.max_rule_size = 3;
  config.seed = 17;
  return GenerateTupleRelation(config);
}

void RunExperiment() {
  const std::vector<int> ks = {10, 20, 50, 100};

  Table by_corr(
      "E6a: T-ERank-Prune tuples accessed vs k and correlation "
      "(N = 20000, p in [0.2, 1])",
      {"correlation", "k", "accessed", "fraction"});
  for (Correlation corr : {Correlation::kIndependent, Correlation::kPositive,
                           Correlation::kNegative}) {
    TupleRelation rel = MakeRelation(corr, 0.2, 1.0);
    for (int k : ks) {
      const TuplePruneResult pruned = TupleExpectedRankTopKPrune(rel, k);
      by_corr.AddRow({ToString(corr), FormatInt(k),
                      FormatInt(pruned.accessed),
                      FormatDouble(static_cast<double>(pruned.accessed) / kN,
                                   4)});
    }
  }
  by_corr.Print();
  std::printf("\n");

  Table by_prob(
      "E6b: T-ERank-Prune tuples accessed vs probability range "
      "(N = 20000, independent, k = 50)",
      {"p range", "accessed", "fraction"});
  const std::vector<std::pair<double, double>> ranges = {
      {0.05, 0.2}, {0.2, 0.5}, {0.5, 0.8}, {0.8, 1.0}};
  for (const auto& [lo, hi] : ranges) {
    TupleRelation rel = MakeRelation(Correlation::kIndependent, lo, hi);
    const TuplePruneResult pruned = TupleExpectedRankTopKPrune(rel, 50);
    char label[32];
    std::snprintf(label, sizeof(label), "[%.2f, %.2f]", lo, hi);
    by_prob.AddRow({label, FormatInt(pruned.accessed),
                    FormatDouble(static_cast<double>(pruned.accessed) / kN,
                                 4)});
  }
  by_prob.Print();
}

}  // namespace
}  // namespace urank

int main() {
  urank::RunExperiment();
  return 0;
}
