// Experiment E5: tuple-level expected ranks — exact T-ERank (O(N log N))
// vs the brute-force O(N²) baseline, runtime vs N, with and without
// multi-tuple exclusion rules.
//
// Paper shape: T-ERank is dominated by the sort and scales near-linearly;
// rules have negligible effect on its cost; BFS is quadratic.

#include <benchmark/benchmark.h>

#include "core/expected_rank_tuple.h"
#include "gen/tuple_gen.h"

namespace urank {
namespace {

TupleRelation MakeRelation(int n, double multi_rule_fraction) {
  TupleGenConfig config;
  config.num_tuples = n;
  config.multi_rule_fraction = multi_rule_fraction;
  config.max_rule_size = 3;
  config.seed = 42;
  return GenerateTupleRelation(config);
}

void BM_TERank_Independent(benchmark::State& state) {
  TupleRelation rel = MakeRelation(static_cast<int>(state.range(0)), 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TupleExpectedRanks(rel));
  }
}
BENCHMARK(BM_TERank_Independent)
    ->RangeMultiplier(4)
    ->Range(1000, 1024000)
    ->Unit(benchmark::kMillisecond);

void BM_TERank_WithRules(benchmark::State& state) {
  TupleRelation rel = MakeRelation(static_cast<int>(state.range(0)), 0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TupleExpectedRanks(rel));
  }
}
BENCHMARK(BM_TERank_WithRules)
    ->RangeMultiplier(4)
    ->Range(1000, 1024000)
    ->Unit(benchmark::kMillisecond);

void BM_TupleBruteForce(benchmark::State& state) {
  TupleRelation rel = MakeRelation(static_cast<int>(state.range(0)), 0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TupleExpectedRanksBruteForce(rel));
  }
}
BENCHMARK(BM_TupleBruteForce)
    ->RangeMultiplier(4)
    ->Range(1000, 16000)
    ->Unit(benchmark::kMillisecond);

// Full top-k query including selection.
void BM_TERankTopK(benchmark::State& state) {
  TupleRelation rel = MakeRelation(static_cast<int>(state.range(0)), 0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TupleExpectedRankTopK(rel, 50));
  }
}
BENCHMARK(BM_TERankTopK)
    ->RangeMultiplier(4)
    ->Range(1000, 1024000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace urank
