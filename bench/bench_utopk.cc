// Experiment E17 (extension): exact U-Topk at scale. The cutoff-sweep
// algorithm (TupleUTopKWithRules) makes U-Topk polynomial under exclusion
// rules — previously only possible-worlds enumeration (exponential) was
// exact there.
//
// Expected shape: both the independent DP and the rules sweep are
// near-linear after the sort; the sweep's O(k) per-cutoff heap walk shows
// as a mild k dependence.

#include <benchmark/benchmark.h>

#include "core/semantics/u_topk.h"
#include "gen/tuple_gen.h"

namespace urank {
namespace {

TupleRelation MakeRelation(int n, double multi_rule_fraction) {
  TupleGenConfig config;
  config.num_tuples = n;
  config.multi_rule_fraction = multi_rule_fraction;
  config.max_rule_size = 3;
  config.seed = 61;
  return GenerateTupleRelation(config);
}

void BM_UTopK_IndependentDP(benchmark::State& state) {
  TupleRelation rel = MakeRelation(static_cast<int>(state.range(0)), 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TupleUTopKIndependent(rel, 50));
  }
}
BENCHMARK(BM_UTopK_IndependentDP)
    ->RangeMultiplier(4)
    ->Range(1000, 256000)
    ->Unit(benchmark::kMillisecond);

void BM_UTopK_RulesSweep(benchmark::State& state) {
  TupleRelation rel = MakeRelation(static_cast<int>(state.range(0)), 0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TupleUTopKWithRules(rel, 50));
  }
}
BENCHMARK(BM_UTopK_RulesSweep)
    ->RangeMultiplier(4)
    ->Range(1000, 256000)
    ->Unit(benchmark::kMillisecond);

void BM_UTopK_RulesSweep_K(benchmark::State& state) {
  TupleRelation rel = MakeRelation(64000, 0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        TupleUTopKWithRules(rel, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_UTopK_RulesSweep_K)
    ->RangeMultiplier(4)
    ->Range(1, 256)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace urank
