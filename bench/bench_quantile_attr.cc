// Experiment E8: median/quantile ranks in the attribute-level model — the
// O(s N³) dynamic program's runtime vs N and vs the pdf size s.
//
// Paper shape: cubic growth in N, linear in s; practical to N in the low
// thousands, far costlier than the O(N log N) expected rank.

#include <benchmark/benchmark.h>

#include "core/expected_rank_attr.h"
#include "core/quantile_rank.h"
#include "core/rank_distribution_attr.h"
#include "gen/attr_gen.h"

namespace urank {
namespace {

AttrRelation MakeRelation(int n, int s) {
  AttrGenConfig config;
  config.num_tuples = n;
  config.pdf_size = s;
  config.seed = 5;
  return GenerateAttrRelation(config);
}

void BM_AttrMedianRank(benchmark::State& state) {
  AttrRelation rel = MakeRelation(static_cast<int>(state.range(0)), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AttrMedianRanks(rel));
  }
}
BENCHMARK(BM_AttrMedianRank)
    ->RangeMultiplier(2)
    ->Range(64, 1024)
    ->Unit(benchmark::kMillisecond);

void BM_AttrQuantileRank_PdfSize(benchmark::State& state) {
  AttrRelation rel = MakeRelation(256, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(AttrQuantileRanks(rel, 0.75));
  }
}
BENCHMARK(BM_AttrQuantileRank_PdfSize)
    ->DenseRange(1, 9, 2)
    ->Unit(benchmark::kMillisecond);

// Multi-threaded rank-distribution DP on the same instances: the per-tuple
// DPs are independent, so the cubic wall parallelizes cleanly.
void BM_AttrRankDistributions_Parallel(benchmark::State& state) {
  AttrRelation rel = MakeRelation(512, 5);
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(AttrRankDistributionsParallel(
        rel, TiePolicy::kBreakByIndex, threads));
  }
}
BENCHMARK(BM_AttrRankDistributions_Parallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Reference point: the expected rank on the same instances, to reproduce
// the paper's expected-vs-median cost gap.
void BM_AttrExpectedRank_SameInstances(benchmark::State& state) {
  AttrRelation rel = MakeRelation(static_cast<int>(state.range(0)), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AttrExpectedRanks(rel));
  }
}
BENCHMARK(BM_AttrExpectedRank_SameInstances)
    ->RangeMultiplier(2)
    ->Range(64, 1024)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace urank
