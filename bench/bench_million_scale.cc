// Experiment M1: million-tuple scalability (BENCH_8).
//
// Two questions, both at N = 1M in full mode:
//
//   * How much does the pruned quantile/median-rank top-k save over the
//     unpruned kernels, and is the answer still bit-identical for every
//     thread count and placement? The tuple series runs the unpruned
//     prepared kernel across threads {1, 2, 8} x placements {flat,
//     node_local, spread} and the serial pruned sweep once; the attr
//     series runs the pruned kernel itself across the same grid (its
//     per-block rank DPs parallelize; the bound bookkeeping and heap are
//     serial in stream order). Every row is fingerprinted and any bit
//     difference fails the harness.
//
//   * Does blocked streaming preparation bound the preparation footprint?
//     The RSS series prepares the same relation monolithically
//     (materialize everything, one eager Prepare) and through
//     PreparedTupleRelationBuilder fed generator-produced 64k blocks, and
//     reports each preparation's peak-RSS delta (VmHWM reset via
//     /proc/self/clear_refs where the kernel allows it; the VmRSS
//     fallback under-reports transient peaks but keeps the series
//     ordered). Both preparations must agree bit-for-bit on the pruned
//     answer and its stop position.
//
// Flags:
//   --smoke        shrink every series for CI smoke runs
//   --nightly      reduced-N identity sweep (between smoke and full) for
//                  the scheduled two-node-topology CI job; like every
//                  mode, exit is nonzero on any fingerprint mismatch
//   --json=PATH    machine-readable results for tools/bench_runner
//                  (includes a "metrics" registry snapshot)

#include <malloc.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/scenario_gen.h"
#include "core/engine/prepared_builder.h"
#include "core/engine/query_engine.h"
#include "core/quantile_rank.h"
#include "model/attr_model.h"
#include "model/tuple_model.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/simd.h"
#include "util/table.h"
#include "util/timer.h"
#include "util/topology.h"

namespace urank {
namespace {

const int kThreadCounts[] = {1, 2, 8};
const PlacementPolicy kPlacements[] = {PlacementPolicy::kFlat,
                                       PlacementPolicy::kNodeLocal,
                                       PlacementPolicy::kSpread};
constexpr int kTopK = 10;
constexpr double kPhi = 0.5;

struct Measurement {
  std::string kernel;
  int n = 0;
  int threads = 0;
  double wall_ms = 0.0;
  double speedup_vs_unpruned = 0.0;  // serial unpruned / this row
  long long tuples_scanned = 0;      // pruned rows only (0 otherwise)
  long long rss_delta_kb = -1;       // RSS series only
  bool identical = true;             // vs the series' reference answer
  const char* simd_target = "scalar";
};

ParallelismOptions Par(int threads, PlacementPolicy placement) {
  ParallelismOptions par;
  par.threads = threads;
  par.min_parallel_items = 1;
  par.placement = placement;
  return par;
}

std::uint64_t Mix(std::uint64_t h, std::uint64_t bits) {
  return h ^ (bits + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
}

std::uint64_t TopKFingerprint(const std::vector<RankedTuple>& topk) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull + topk.size();
  for (const RankedTuple& r : topk) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &r.statistic, sizeof(bits));
    h = Mix(Mix(h, static_cast<std::uint64_t>(r.id)), bits);
  }
  return h;
}

Measurement Row(const std::string& kernel, int n, int threads,
                double wall_ms, double unpruned_serial_ms, bool identical) {
  Measurement m;
  m.kernel = kernel;
  m.n = n;
  m.threads = threads;
  m.wall_ms = wall_ms;
  m.speedup_vs_unpruned = wall_ms > 0.0 && unpruned_serial_ms > 0.0
                              ? unpruned_serial_ms / wall_ms
                              : 1.0;
  m.identical = identical;
  m.simd_target = ToString(ActiveSimdTarget());
  return m;
}

// ---------------------------------------------------------------------------
// Peak-RSS bookkeeping (Linux /proc/self).

long long ReadStatusKb(const char* field) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  char line[256];
  long long value = -1;
  const size_t field_len = std::strlen(field);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0 && line[field_len] == ':') {
      value = std::atoll(line + field_len + 1);
      break;
    }
  }
  std::fclose(f);
  return value;
}

// Resets VmHWM to the current VmRSS so the next PeakRssKb() read meters
// this phase alone. Kernels without CLEAR_REFS_MM_HIWATER_RSS ignore it.
void ResetPeakRss() {
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (f == nullptr) return;
  std::fputs("5", f);
  std::fclose(f);
}

long long PeakRssKb() {
  const long long hwm = ReadStatusKb("VmHWM");
  return hwm >= 0 ? hwm : ReadStatusKb("VmRSS");
}

// ---------------------------------------------------------------------------
// Tuple series. The workload is the bounded-support scale scenario (a
// few hundred wide exclusion rules plus a certain-tuple prefix): the
// Poisson-binomial support stays O(rules) regardless of N, which keeps
// the *unpruned* N=1M DP tractable enough to race, while the prefix mass
// still accumulates fast enough for the Q_phi(Y) - 1 bound to stop the
// pruned sweep after a tiny fraction of the stream — this PR's headline
// number. The unpruned kernel runs across the whole (placement x
// threads) grid on a fresh preparation per run (the quantile vector
// memoizes; a warm memo would measure a lookup), the pruned sweep is one
// serial run, and every fingerprint must agree.

std::vector<Measurement> TuplePruneSeries(const TupleRelation& rel, int n) {
  const TiePolicy ties = TiePolicy::kBreakByIndex;
  std::vector<Measurement> series;
  double unpruned_serial_ms = 0.0;
  std::uint64_t reference = 0;
  bool have_reference = false;

  for (PlacementPolicy placement : kPlacements) {
    for (int threads : kThreadCounts) {
      const auto prepared = QueryEngine::Prepare(rel);
      KernelReport report;
      Timer timer;
      TupleQuantileRanks(*prepared, kPhi, ties, Par(threads, placement),
                         &report);
      const std::vector<RankedTuple> topk =
          TupleQuantileRankTopK(*prepared, kTopK, kPhi, ties);
      const double wall_ms = timer.ElapsedMs();
      const std::uint64_t print = TopKFingerprint(topk);
      if (!have_reference) {
        reference = print;
        have_reference = true;
      }
      if (placement == PlacementPolicy::kFlat && threads == 1) {
        unpruned_serial_ms = wall_ms;
      }
      series.push_back(
          Row(std::string("tuple_quantile_unpruned_") + ToString(placement),
              n, threads, wall_ms, unpruned_serial_ms, print == reference));
    }
  }

  const auto prepared = QueryEngine::Prepare(rel);
  Timer timer;
  const PrunedTopKResult pruned =
      TupleQuantileRankTopKPrune(*prepared, kTopK, kPhi, ties);
  Measurement m = Row("tuple_quantile_pruned", n, 1, timer.ElapsedMs(),
                      unpruned_serial_ms,
                      TopKFingerprint(pruned.topk) == reference);
  m.tuples_scanned = pruned.tuples_scanned;
  series.push_back(m);
  return series;
}

// ---------------------------------------------------------------------------
// Attr series. Exponentially decaying expected scores with narrow
// multiplicative pdfs (support stays positive, so the Markov step is
// valid): e_last falls below phi times the top ladder rung after a small
// fraction of the stream, which is where the Markov +
// truncated-Poisson-binomial value ladder fires. The pruned kernel
// itself runs across the grid (its per-block rank DPs use the worker
// slots); the unpruned serial kernel anchors both the speedup and the
// reference fingerprint. It is the relation-level form deliberately: the
// prepared unpruned path materializes the full N x N rank-distribution
// matrix, which at N = 20k would be a 3 GB bench of the allocator, not
// the DP. Stop positions must also agree across the grid — the bound is
// part of the determinism contract.

AttrRelation MakeDecayingAttrRelation(int n) {
  std::vector<AttrTuple> tuples;
  tuples.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    AttrTuple t;
    t.id = i;
    const double centre =
        1.0e6 * std::exp(-25.0 * static_cast<double>(i) /
                         static_cast<double>(n > 0 ? n : 1));
    t.pdf = {{centre * 0.99, 0.25}, {centre, 0.5}, {centre * 1.01, 0.25}};
    tuples.push_back(std::move(t));
  }
  return AttrRelation(std::move(tuples));
}

std::vector<Measurement> AttrPruneSeries(const AttrRelation& rel, int n) {
  const TiePolicy ties = TiePolicy::kBreakByIndex;
  std::vector<Measurement> series;

  Timer unpruned_timer;
  const std::vector<RankedTuple> unpruned =
      AttrQuantileRankTopK(rel, kTopK, kPhi, ties);
  const double unpruned_serial_ms = unpruned_timer.ElapsedMs();
  const std::uint64_t reference = TopKFingerprint(unpruned);
  series.push_back(Row("attr_quantile_unpruned", n, 1, unpruned_serial_ms,
                       unpruned_serial_ms, true));

  long long reference_stop = -1;
  for (PlacementPolicy placement : kPlacements) {
    for (int threads : kThreadCounts) {
      const auto fresh = QueryEngine::Prepare(rel);
      KernelReport report;
      Timer timer;
      const PrunedTopKResult pruned = AttrQuantileRankTopKPrune(
          *fresh, kTopK, kPhi, ties, Par(threads, placement), &report);
      const double wall_ms = timer.ElapsedMs();
      if (reference_stop < 0) reference_stop = pruned.prune_stop_position;
      Measurement m =
          Row(std::string("attr_quantile_pruned_") + ToString(placement), n,
              threads, wall_ms, unpruned_serial_ms,
              TopKFingerprint(pruned.topk) == reference &&
                  pruned.prune_stop_position == reference_stop);
      m.tuples_scanned = pruned.tuples_scanned;
      series.push_back(m);
    }
  }
  return series;
}

// ---------------------------------------------------------------------------
// RSS series. Both preparations consume the exact same logical relation,
// produced tuple-by-tuple from a closed-form generator so the blocked
// path never materializes the full input. Rule keys first appear in
// increasing order, which makes the builder's first-appearance rule
// numbering coincide with the eager rules vector — preparation is then
// bit-identical, which the pruned answer + stop position assert.

constexpr int kRssRules = 256;
constexpr int kRssSingletons = 200;
constexpr int kRssBlock = 65536;

TLTuple StreamedTuple(int i, int n, int* rule_key) {
  TLTuple t;
  t.id = i;
  t.score = static_cast<double>((static_cast<long long>(i) * 7919) % 9973) +
            1.0 / (1.0 + static_cast<double>(i));  // distinct scores
  if (i < kRssSingletons) {
    *rule_key = -1;
    t.prob = (i % 10 == 0) ? 1.0 : 0.25 + 0.7 * ((i * 13) % 101) / 101.0;
    return t;
  }
  const int members_floor = (n - kRssSingletons) / kRssRules;
  const int remainder = (n - kRssSingletons) % kRssRules;
  const int r = (i - kRssSingletons) % kRssRules;
  const int members = members_floor + (r < remainder ? 1 : 0);
  *rule_key = r;
  t.prob = 0.95 / static_cast<double>(members);
  return t;
}

struct RssResult {
  Measurement row;
  std::uint64_t print = 0;
  long long stop = -1;
};

RssResult PrepareMonolithic(int n) {
  malloc_trim(0);  // return freed arenas so RSS meters THIS preparation
  ResetPeakRss();
  const long long base_kb = PeakRssKb();
  Timer timer;
  std::vector<TLTuple> tuples(static_cast<size_t>(n));
  std::vector<std::vector<int>> rules(static_cast<size_t>(kRssRules));
  for (int i = 0; i < n; ++i) {
    int key = -1;
    tuples[static_cast<size_t>(i)] = StreamedTuple(i, n, &key);
    if (key >= 0) rules[static_cast<size_t>(key)].push_back(i);
  }
  // The documented eager flow: the caller materializes the relation and
  // Prepare copies it into the prepared object (which owns its state)
  // while the caller's relation is still alive — two full relations
  // coexist at the peak. The blocked path instead hands each block's
  // storage to the builder, so the sealed prepared state holds the only
  // copy that ever exists.
  const TupleRelation rel(std::move(tuples), std::move(rules));
  const auto prepared = QueryEngine::Prepare(rel);
  RssResult out;
  out.row = Row("prep_monolithic", n, 1, timer.ElapsedMs(), 0.0, true);
  out.row.rss_delta_kb = PeakRssKb() - base_kb;
  const PrunedTopKResult pruned =
      TupleQuantileRankTopKPrune(*prepared, kTopK, kPhi);
  out.print = TopKFingerprint(pruned.topk);
  out.stop = pruned.prune_stop_position;
  return out;
}

RssResult PrepareBlocked(int n) {
  malloc_trim(0);  // return freed arenas so RSS meters THIS preparation
  ResetPeakRss();
  const long long base_kb = PeakRssKb();
  Timer timer;
  PreparedTupleRelationBuilder builder;
  for (int begin = 0; begin < n; begin += kRssBlock) {
    const int end = begin + kRssBlock < n ? begin + kRssBlock : n;
    std::vector<TLTuple> block(static_cast<size_t>(end - begin));
    std::vector<int> keys(static_cast<size_t>(end - begin));
    for (int i = begin; i < end; ++i) {
      block[static_cast<size_t>(i - begin)] =
          StreamedTuple(i, n, &keys[static_cast<size_t>(i - begin)]);
    }
    builder.AddBlock(std::move(block), keys);
  }
  const auto prepared = builder.Seal();
  RssResult out;
  out.row = Row("prep_blocked", n, 1, timer.ElapsedMs(), 0.0, true);
  out.row.rss_delta_kb = PeakRssKb() - base_kb;
  const PrunedTopKResult pruned =
      TupleQuantileRankTopKPrune(*prepared, kTopK, kPhi);
  out.print = TopKFingerprint(pruned.topk);
  out.stop = pruned.prune_stop_position;
  return out;
}

std::vector<Measurement> RssSeries(int n) {
  RssResult blocked = PrepareBlocked(n);  // blocked first: smaller peak
  RssResult mono = PrepareMonolithic(n);
  const bool identical =
      blocked.print == mono.print && blocked.stop == mono.stop;
  blocked.row.identical = identical;
  mono.row.identical = identical;
  return {blocked.row, mono.row};
}

// ---------------------------------------------------------------------------

void PrintSeries(const std::string& title,
                 const std::vector<Measurement>& series) {
  Table table("M1: " + title,
              {"kernel", "n", "threads", "wall ms", "speedup", "scanned",
               "rss kb", "identical"});
  for (const Measurement& m : series) {
    table.AddRow({m.kernel, FormatInt(m.n), FormatInt(m.threads),
                  FormatDouble(m.wall_ms, 2),
                  FormatDouble(m.speedup_vs_unpruned, 2),
                  FormatInt(m.tuples_scanned),
                  m.rss_delta_kb >= 0 ? FormatInt(m.rss_delta_kb) : "-",
                  m.identical ? "yes" : "NO"});
  }
  table.Print();
  std::printf("\n");
}

void WriteJson(const std::string& path, const char* mode,
               const std::vector<Measurement>& all) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"harness\": \"bench_million_scale\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", mode);
  std::fprintf(f, "  \"hardware_threads\": %d,\n", ResolveThreads(0));
  std::fprintf(f, "  \"planning_topology\": \"%s\",\n",
               GlobalTopology().ToSpec().c_str());
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (size_t i = 0; i < all.size(); ++i) {
    const Measurement& m = all[i];
    std::fprintf(f,
                 "    {\"kernel\": \"%s\", \"n\": %d, \"threads\": %d, "
                 "\"simd_target\": \"%s\", \"wall_ms\": %.3f, "
                 "\"speedup_vs_unpruned\": %.3f, \"tuples_scanned\": %lld, "
                 "\"rss_delta_kb\": %lld, \"identical\": %s}%s\n",
                 m.kernel.c_str(), m.n, m.threads, m.simd_target, m.wall_ms,
                 m.speedup_vs_unpruned, m.tuples_scanned, m.rss_delta_kb,
                 m.identical ? "true" : "false",
                 i + 1 < all.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"metrics\": %s\n",
               metrics::Registry::Global().RenderJsonSnapshot().c_str());
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

int RunHarness(const char* mode, int tuple_n, int tuple_rules, int attr_n,
               int rss_n, const std::string& json_path) {
  std::vector<Measurement> all;
  {
    // First, before any other series pollutes the heap: freed glibc
    // arenas stay resident, so a later phase's allocations reuse pages
    // the RSS meter can no longer see.
    const auto series = RssSeries(rss_n);
    PrintSeries("preparation peak RSS, blocked vs monolithic", series);
    all.insert(all.end(), series.begin(), series.end());
  }
  {
    const TupleRelation rel =
        testgen::BoundedSupportTupleRelation(tuple_n, tuple_rules, 200, 41);
    const auto series = TuplePruneSeries(rel, tuple_n);
    PrintSeries("tuple quantile top-k, pruned vs unpruned", series);
    all.insert(all.end(), series.begin(), series.end());
  }
  {
    const AttrRelation rel = MakeDecayingAttrRelation(attr_n);
    const auto series = AttrPruneSeries(rel, attr_n);
    PrintSeries("attr quantile top-k, pruned vs unpruned", series);
    all.insert(all.end(), series.begin(), series.end());
  }

  bool identical = true;
  for (const Measurement& m : all) identical = identical && m.identical;
  std::printf("bit-identical everywhere: %s\n", identical ? "yes" : "NO");
  std::printf("planning topology: %s (%d node(s))\n",
              GlobalTopology().ToSpec().c_str(),
              GlobalTopology().num_nodes());

  if (!json_path.empty()) WriteJson(json_path, mode, all);
  return identical ? 0 : 1;  // identity failures fail the harness
}

}  // namespace
}  // namespace urank

int main(int argc, char** argv) {
  bool smoke = false;
  bool nightly = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--nightly") {
      nightly = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--nightly] [--json=PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (smoke) {
    return urank::RunHarness("smoke", 100000, 128, 2000, 200000, json_path);
  }
  if (nightly) {
    return urank::RunHarness("nightly", 300000, 256, 5000, 400000,
                             json_path);
  }
  return urank::RunHarness("full", 1000000, 256, 20000, 1000000, json_path);
}
