// Experiment M2: incremental-ingestion throughput on a mutable store.
//
// Seeds a MutableTupleRelation at N (1M in full mode) and drives a
// single-writer mutation stream — 60% inserts, 20% deletes, 20% updates,
// publishing a fresh epoch every kPublishEvery ops — against a sweep of
// delta_merge_threshold values. Two series per threshold:
//
//   mutate_publish_t<T>      wall time of the whole mutation stream,
//                            publishes included (writes/sec derives
//                            from it and is printed alongside);
//   read_under_mutation_t<T> wall time of one expected-rank top-10
//                            query per published epoch, run through a
//                            store-backed QueryEngine so every read
//                            resolves the newest snapshot.
//
// The threshold series shows the maintenance trade-off: a tiny threshold
// consolidates the delta into the base run on almost every publish
// (write-heavy, reads always see a fully merged base), a large one defers
// consolidation (cheap publishes, slightly costlier merges at read
// prepare). CI gates regressions on both series via tools/bench_runner.py
// --compare against BENCH_9.json.
//
// Flags:
//   --smoke        shrink N (~50k) and the mutation budget for CI runs
//   --json=PATH    machine-readable results for tools/bench_runner.py

#include <cstdio>
#include <cstdint>
#include <string>
#include <vector>

#include "core/engine/mutable_relation.h"
#include "core/engine/query_engine.h"
#include "gen/tuple_gen.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/table.h"
#include "util/timer.h"

namespace urank {
namespace {

constexpr int kPublishEvery = 64;  // mutations per published epoch

struct ThresholdResult {
  std::size_t threshold = 0;
  int mutations = 0;
  std::uint64_t publishes = 0;
  std::uint64_t delta_merges = 0;
  std::uint64_t compactions = 0;
  double write_ms = 0.0;  // mutation stream incl. publishes
  double read_ms = 0.0;   // one query per published epoch, summed
  double writes_per_sec = 0.0;
  double read_mean_ms = 0.0;
};

// One deterministic mutation stream against a store seeded from `rel`.
// The same seed drives every threshold arm, so the logical contents (and
// thus the work per publish) are identical across the sweep.
ThresholdResult RunThreshold(const TupleRelation& rel, std::size_t threshold,
                             int mutations) {
  MutableRelationOptions options;
  options.delta_merge_threshold = threshold;
  auto store = std::make_shared<MutableTupleRelation>(rel, options);
  QueryEngine engine(store);

  QueryRequest request;
  request.options.semantics = RankingSemantics::kExpectedRank;
  request.options.k = 10;

  std::vector<int> live(static_cast<std::size_t>(rel.size()));
  for (std::size_t i = 0; i < live.size(); ++i) {
    live[i] = rel.tuple(static_cast<int>(i)).id;
  }
  int next_id = rel.size();

  Rng rng(97);
  ThresholdResult result;
  result.threshold = threshold;
  result.mutations = mutations;
  const std::uint64_t merges_before = store->delta_merges();
  const std::uint64_t compactions_before = store->compactions();

  for (int i = 0; i < mutations; ++i) {
    const int roll = static_cast<int>(rng.UniformInt(0, 9));
    std::string error;
    bool ok = false;
    if (roll < 6 || live.empty()) {
      TLTuple t;
      t.id = next_id++;
      t.score = rng.Uniform(0.0, 1000.0);
      t.prob = rng.Uniform(0.05, 1.0);
      Timer timer;
      ok = store->Insert(t, -1, &error);
      result.write_ms += timer.ElapsedMs();
      if (ok) live.push_back(t.id);
    } else {
      const std::size_t pick = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      if (roll < 8) {
        Timer timer;
        ok = store->Delete(live[pick], &error);
        result.write_ms += timer.ElapsedMs();
        if (ok) {
          live[pick] = live.back();
          live.pop_back();
        }
      } else {
        TLTuple t;
        t.id = live[pick];
        t.score = rng.Uniform(0.0, 1000.0);
        t.prob = rng.Uniform(0.05, 1.0);
        Timer timer;
        ok = store->Update(t, -1, &error);
        result.write_ms += timer.ElapsedMs();
      }
    }
    if (!ok) {
      std::fprintf(stderr, "mutation %d failed: %s\n", i, error.c_str());
      continue;
    }
    if ((i + 1) % kPublishEvery == 0) {
      Timer timer;
      store->Publish();
      result.write_ms += timer.ElapsedMs();
      ++result.publishes;
      // One read per epoch through the store-backed engine: resolves the
      // snapshot that was just published.
      Timer read_timer;
      const QueryResult qr = engine.Run(request);
      result.read_ms += read_timer.ElapsedMs();
      if (!qr.status.ok() || qr.answer.ids.empty()) {
        std::fprintf(stderr, "read under mutation failed: %s\n",
                     qr.status.message.c_str());
      }
    }
  }
  {
    Timer timer;
    store->Publish();
    result.write_ms += timer.ElapsedMs();
    ++result.publishes;
  }

  result.delta_merges = store->delta_merges() - merges_before;
  result.compactions = store->compactions() - compactions_before;
  result.writes_per_sec =
      result.write_ms > 0.0 ? mutations / (result.write_ms / 1000.0) : 0.0;
  result.read_mean_ms =
      result.publishes > 1 ? result.read_ms / (result.publishes - 1) : 0.0;
  return result;
}

void WriteJson(const std::string& path, bool smoke, int n,
               const std::vector<ThresholdResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"harness\": \"bench_mutation_throughput\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"hardware_threads\": %d,\n", ResolveThreads(0));
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ThresholdResult& r = results[i];
    std::fprintf(f,
                 "    {\"kernel\": \"mutate_publish_t%zu\", \"n\": %d, "
                 "\"threads\": 1, \"simd_target\": \"%s\", "
                 "\"wall_ms\": %.3f, \"writes_per_sec\": %.1f},\n",
                 r.threshold, n, ToString(ActiveSimdTarget()), r.write_ms,
                 r.writes_per_sec);
    std::fprintf(f,
                 "    {\"kernel\": \"read_under_mutation_t%zu\", \"n\": %d, "
                 "\"threads\": 1, \"simd_target\": \"%s\", "
                 "\"wall_ms\": %.3f, \"read_mean_ms\": %.4f}%s\n",
                 r.threshold, n, ToString(ActiveSimdTarget()), r.read_ms,
                 r.read_mean_ms, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"metrics\": %s\n",
               metrics::Registry::Global().RenderJsonSnapshot().c_str());
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

int RunHarness(bool smoke, const std::string& json_path) {
  const int n = smoke ? 50000 : 1000000;
  const int mutations = smoke ? 2048 : 16384;
  const std::vector<std::size_t> thresholds =
      smoke ? std::vector<std::size_t>{64, 4096}
            : std::vector<std::size_t>{64, 1024, 16384};

  TupleGenConfig config;
  config.num_tuples = n;
  config.seed = 41;
  const TupleRelation rel = GenerateTupleRelation(config);

  std::vector<ThresholdResult> results;
  for (std::size_t threshold : thresholds) {
    results.push_back(RunThreshold(rel, threshold, mutations));
  }

  Table table("M2: mutation throughput vs read latency (N = " +
                  FormatInt(n) + ", " + FormatInt(mutations) +
                  " mutations, publish every " + FormatInt(kPublishEvery) +
                  ")",
              {"delta threshold", "writes/sec", "publishes", "delta merges",
               "compactions", "mean read ms"});
  for (const ThresholdResult& r : results) {
    table.AddRow({FormatInt(static_cast<long long>(r.threshold)),
                  FormatDouble(r.writes_per_sec, 0),
                  FormatInt(static_cast<long long>(r.publishes)),
                  FormatInt(static_cast<long long>(r.delta_merges)),
                  FormatInt(static_cast<long long>(r.compactions)),
                  FormatDouble(r.read_mean_ms, 4)});
  }
  table.Print();
  std::printf("\n");

  if (!json_path.empty()) WriteJson(json_path, smoke, n, results);
  return 0;
}

}  // namespace
}  // namespace urank

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json=PATH]\n", argv[0]);
      return 2;
    }
  }
  return urank::RunHarness(smoke, json_path);
}
