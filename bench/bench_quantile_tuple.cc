// Experiment E9: median/quantile ranks in the tuple-level model — runtime
// vs N and vs the rule structure (which sets M, the number of rules).
//
// Paper shape: the DP is O(N M²) worst case; with the incremental
// Poisson-binomial updates it behaves like O(N·M) on typical inputs, so
// runtime grows roughly quadratically in N when M ∝ N. Far costlier than
// the O(N log N) expected rank, but practical to tens of thousands.

#include <benchmark/benchmark.h>

#include "core/expected_rank_tuple.h"
#include "core/quantile_rank.h"
#include "gen/tuple_gen.h"

namespace urank {
namespace {

TupleRelation MakeRelation(int n, double multi_rule_fraction) {
  TupleGenConfig config;
  config.num_tuples = n;
  config.multi_rule_fraction = multi_rule_fraction;
  config.max_rule_size = 3;
  config.seed = 5;
  return GenerateTupleRelation(config);
}

void BM_TupleMedianRank(benchmark::State& state) {
  TupleRelation rel = MakeRelation(static_cast<int>(state.range(0)), 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TupleMedianRanks(rel));
  }
}
BENCHMARK(BM_TupleMedianRank)
    ->RangeMultiplier(2)
    ->Range(256, 8192)
    ->Unit(benchmark::kMillisecond);

// Denser rules shrink M at fixed N: runtime scales with the rule count.
void BM_TupleMedianRank_RuleFraction(benchmark::State& state) {
  const double fraction = static_cast<double>(state.range(0)) / 10.0;
  TupleRelation rel = MakeRelation(4096, fraction);
  state.counters["rules"] = rel.num_rules();
  for (auto _ : state) {
    benchmark::DoNotOptimize(TupleMedianRanks(rel));
  }
}
BENCHMARK(BM_TupleMedianRank_RuleFraction)
    ->DenseRange(0, 8, 2)
    ->Unit(benchmark::kMillisecond);

// Reference point: expected ranks on the same instances.
void BM_TupleExpectedRank_SameInstances(benchmark::State& state) {
  TupleRelation rel = MakeRelation(static_cast<int>(state.range(0)), 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TupleExpectedRanks(rel));
  }
}
BENCHMARK(BM_TupleExpectedRank_SameInstances)
    ->RangeMultiplier(2)
    ->Range(256, 8192)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace urank
