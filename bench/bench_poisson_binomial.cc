// Ablation A1: the incremental Poisson-binomial maintenance behind the
// tuple-level rank-distribution DP (DESIGN.md §4). The paper's bound is
// O(N M²) — one fresh O(M²) DP per tuple; our implementation instead keeps
// one shared DP and conditions a rule in/out by an O(M) remove/add pair.
// This bench quantifies that choice: per-query cost of remove+add versus a
// from-scratch rebuild, across M.
//
// Expected shape: remove+add is ~M/2 times cheaper than a rebuild, turning
// the whole-relation DP from O(N M²) into O(N M) in practice.

#include <benchmark/benchmark.h>

#include <vector>

#include "util/poisson_binomial.h"
#include "util/rng.h"

namespace urank {
namespace {

std::vector<double> TrialProbs(int m) {
  Rng rng(77);
  std::vector<double> probs(static_cast<size_t>(m));
  for (double& p : probs) p = rng.Uniform01();
  return probs;
}

// One conditioned query via the incremental path: remove a trial, read the
// pmf, add it back.
void BM_RemoveAddCycle(benchmark::State& state) {
  const std::vector<double> probs = TrialProbs(static_cast<int>(state.range(0)));
  PoissonBinomial pb = PoissonBinomial::FromProbs(probs);
  size_t next = 0;
  for (auto _ : state) {
    const double p = probs[next];
    next = (next + 1) % probs.size();
    pb.RemoveTrial(p);
    benchmark::DoNotOptimize(pb.pmf());
    pb.AddTrial(p);
  }
}
BENCHMARK(BM_RemoveAddCycle)
    ->RangeMultiplier(4)
    ->Range(64, 16384)
    ->Unit(benchmark::kMicrosecond);

// The same conditioned query via a from-scratch rebuild (the naive
// O(M²)-per-tuple strategy the paper's bound describes).
void BM_RebuildFromScratch(benchmark::State& state) {
  const std::vector<double> probs = TrialProbs(static_cast<int>(state.range(0)));
  std::vector<double> without(probs.begin() + 1, probs.end());
  for (auto _ : state) {
    PoissonBinomial pb = PoissonBinomial::FromProbs(without);
    benchmark::DoNotOptimize(pb.pmf());
  }
}
BENCHMARK(BM_RebuildFromScratch)
    ->RangeMultiplier(4)
    ->Range(64, 16384)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace urank
