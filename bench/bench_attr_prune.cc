// Experiments E3 + E4: A-ERank-Prune.
//
// E3 — pruning power: tuples accessed (out of N) as a function of k and of
// the score distribution. The stop test uses Markov tail bounds
// (Pr[X > v] <= E[X]/v, eqs. 5-6), so its power depends on how fast
// expected scores decay relative to the top scores: heavy-tailed (Zipfian)
// universes prune aggressively, uniform ones moderately, and tightly
// concentrated (normal) ones barely at all.
//
// E4 — answer quality: precision and recall of the pruned
// (curtailed-prefix surrogate) top-k against the exact top-k.
//
// Paper shape: pruning saves a large fraction of accesses on skewed data
// and grows mildly with k; the surrogate answer is almost always the exact
// top-k (recall ~1).

#include <cstdio>
#include <vector>

#include "core/expected_rank_attr.h"
#include "gen/attr_gen.h"
#include "util/rank_metrics.h"
#include "util/table.h"

namespace urank {
namespace {

constexpr int kN = 10000;

struct Workload {
  const char* name;
  AttrGenConfig config;
};

std::vector<Workload> Workloads() {
  std::vector<Workload> workloads;
  {
    AttrGenConfig config;
    config.num_tuples = kN;
    config.pdf_size = 5;
    config.score_dist = ScoreDistribution::kZipf;
    config.zipf_theta = 1.0;
    // Wide universe so even the rarest rank keeps scores well above the
    // pdf spread.
    config.score_scale = 1e6;
    config.value_spread = 20.0;
    config.seed = 11;
    workloads.push_back({"zipf(1.0)", config});
  }
  {
    AttrGenConfig config;
    config.num_tuples = kN;
    config.pdf_size = 5;
    config.score_dist = ScoreDistribution::kUniform;
    config.score_scale = 1000.0;
    config.value_spread = 20.0;
    config.seed = 11;
    workloads.push_back({"uniform", config});
  }
  {
    AttrGenConfig config;
    config.num_tuples = kN;
    config.pdf_size = 5;
    config.score_dist = ScoreDistribution::kNormal;
    config.score_scale = 1000.0;
    config.value_spread = 20.0;
    config.seed = 11;
    workloads.push_back({"normal", config});
  }
  return workloads;
}

void RunExperiment() {
  const std::vector<int> ks = {10, 20, 50, 100};

  Table accessed("E3: A-ERank-Prune tuples accessed (N = 10000)",
                 {"score dist", "k", "accessed", "fraction"});
  Table quality("E4: A-ERank-Prune answer quality vs exact top-k",
                {"score dist", "k", "recall", "precision"});

  for (const Workload& workload : Workloads()) {
    AttrRelation rel = GenerateAttrRelation(workload.config);
    for (int k : ks) {
      const AttrPruneResult pruned = AttrExpectedRankTopKPrune(rel, k);
      const std::vector<int> exact = IdsOf(AttrExpectedRankTopK(rel, k));
      const std::vector<int> approx = IdsOf(pruned.topk);
      accessed.AddRow({workload.name, FormatInt(k),
                       FormatInt(pruned.accessed),
                       FormatDouble(static_cast<double>(pruned.accessed) / kN,
                                    3)});
      quality.AddRow({workload.name, FormatInt(k),
                      FormatDouble(RecallAgainst(approx, exact), 3),
                      FormatDouble(PrecisionAgainst(approx, exact), 3)});
    }
  }
  accessed.Print();
  std::printf("\n");
  quality.Print();

  // Ablation A2: the paper's Markov terms E[X_n]/v can exceed 1; clamping
  // each to its trivial probability bound keeps the stop test sound and
  // prunes earlier.
  Table clamped("A2: faithful vs clamped Markov bounds (k = 20)",
                {"score dist", "faithful accessed", "clamped accessed"});
  for (const Workload& workload : Workloads()) {
    AttrRelation rel = GenerateAttrRelation(workload.config);
    const AttrPruneResult faithful =
        AttrExpectedRankTopKPrune(rel, 20, /*clamp_tail_bounds=*/false);
    const AttrPruneResult tight =
        AttrExpectedRankTopKPrune(rel, 20, /*clamp_tail_bounds=*/true);
    clamped.AddRow({workload.name, FormatInt(faithful.accessed),
                    FormatInt(tight.accessed)});
  }
  std::printf("\n");
  clamped.Print();
}

}  // namespace
}  // namespace urank

int main() {
  urank::RunExperiment();
  return 0;
}
