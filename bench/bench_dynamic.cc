// Experiment E18 (extension): incremental maintenance. The paper notes
// E[|W|] is maintainable in O(1) under updates (Section 6.2);
// DynamicTupleRanker extends that to point expected-rank queries. This
// bench measures update and query throughput against the naive strategy
// of re-running the batch T-ERank after every update.
//
// Expected shape: updates and point queries are microseconds and roughly
// flat in N (amortized log), while a batch recompute per update costs
// milliseconds and grows with N — a ~1000× gap at N = 100k.

#include <benchmark/benchmark.h>

#include "core/dynamic_ranker.h"
#include "core/expected_rank_tuple.h"
#include "gen/tuple_gen.h"
#include "util/rng.h"

namespace urank {
namespace {

DynamicTupleRanker BuildRanker(int n, uint64_t seed) {
  Rng rng(seed);
  DynamicTupleRanker ranker;
  for (int id = 0; id < n; ++id) {
    ranker.Insert(id, rng.Uniform(0.0, 1000.0), rng.Uniform(0.05, 1.0));
  }
  return ranker;
}

void BM_Dynamic_InsertErase(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  DynamicTupleRanker ranker = BuildRanker(n, 71);
  Rng rng(72);
  int next_id = n;
  for (auto _ : state) {
    const int id = next_id++;
    ranker.Insert(id, rng.Uniform(0.0, 1000.0), rng.Uniform(0.05, 1.0));
    ranker.Erase(id);
  }
}
BENCHMARK(BM_Dynamic_InsertErase)
    ->RangeMultiplier(10)
    ->Range(1000, 100000)
    ->Unit(benchmark::kMicrosecond);

void BM_Dynamic_PointQuery(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  DynamicTupleRanker ranker = BuildRanker(n, 73);
  Rng rng(74);
  for (auto _ : state) {
    const int id = static_cast<int>(rng.UniformInt(0, n - 1));
    benchmark::DoNotOptimize(ranker.ExpectedRank(id));
  }
}
BENCHMARK(BM_Dynamic_PointQuery)
    ->RangeMultiplier(10)
    ->Range(1000, 100000)
    ->Unit(benchmark::kMicrosecond);

// The naive alternative: full batch recompute after an update.
void BM_Dynamic_BatchRecomputePerUpdate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  TupleGenConfig config;
  config.num_tuples = n;
  config.seed = 75;
  TupleRelation rel = GenerateTupleRelation(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TupleExpectedRanks(rel));
  }
}
BENCHMARK(BM_Dynamic_BatchRecomputePerUpdate)
    ->RangeMultiplier(10)
    ->Range(1000, 100000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace urank
