// Experiment N1: NUMA-aware shard-parallel scaling (BENCH_7).
//
// Measures the score-range-sharded kernels under all three placement
// policies (flat, node_local, spread), a shard-count sweep, and the
// N=1M series:
//
//   * sharded T-ERank (expected rank) per placement at 1/2/4/8 threads,
//     at N=100k and N=1M;
//   * the same kernel at a fixed thread count across shard caps
//     {auto, 4, 16} — the shard grid is a pure function of the data, so
//     every cap must produce identical bytes;
//   * the chunked median-rank DP (φ = 0.5 quantile) per placement at
//     N=1M, riding the prepared relation's sweep-entry table. The
//     relation bounds the Poisson-binomial support with a few hundred
//     wide exclusion rules so the N=1M DP stays minutes-free.
//
// Every run is fingerprinted against the serial facade; any bit
// difference fails the harness. Speedup columns are only meaningful on
// multi-core (and multi-node) hosts — the identical column must read
// "yes" everywhere, including single-core CI.
//
// Flags:
//   --smoke        shrink the relations for CI smoke runs
//   --json=PATH    machine-readable results for tools/bench_runner
//                  (includes a "metrics" registry snapshot)

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/engine/query_engine.h"
#include "core/expected_rank_tuple.h"
#include "core/internal/shard_plan.h"
#include "core/quantile_rank.h"
#include "model/tuple_model.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/simd.h"
#include "util/table.h"
#include "util/timer.h"
#include "util/topology.h"

namespace urank {
namespace {

const int kThreadCounts[] = {1, 2, 4, 8};
const PlacementPolicy kPolicies[] = {PlacementPolicy::kFlat,
                                     PlacementPolicy::kNodeLocal,
                                     PlacementPolicy::kSpread};

struct Measurement {
  std::string kernel;
  int n = 0;
  int threads = 0;
  double wall_ms = 0.0;
  double speedup_vs_1t = 0.0;  // vs this series' first (1-thread) run
  bool identical_to_1t = true;  // vs the serial facade baseline
  int nodes_used = 1;
  const char* simd_target = "scalar";
};

ParallelismOptions Par(int threads, PlacementPolicy placement) {
  ParallelismOptions par;
  par.threads = threads;
  par.min_parallel_items = 1;
  par.placement = placement;
  return par;
}

// A relation shaped for the N=1M series: long-ish runs of tied scores
// straddling naive shard boundaries, a bounded number of wide exclusion
// rules (so the rank-distribution DP's Poisson-binomial support stays a
// few hundred regardless of N), plus high-probability singletons
// including certain tuples.
TupleRelation MakeWideRuleRelation(int n, int num_rules, int num_singletons) {
  std::vector<TLTuple> tuples(static_cast<size_t>(n));
  std::vector<std::vector<int>> rules(static_cast<size_t>(num_rules));
  for (int i = 0; i < n; ++i) {
    TLTuple& t = tuples[static_cast<size_t>(i)];
    t.id = i;
    t.score = static_cast<double>((i * 7919) % 9973);
    if (i < num_singletons) {
      t.prob = (i % 10 == 0) ? 1.0 : 0.25 + 0.7 * ((i * 13) % 101) / 101.0;
    } else {
      rules[static_cast<size_t>(i % num_rules)].push_back(i);
      t.prob = 0.0;  // filled below once member counts are known
    }
  }
  for (const std::vector<int>& members : rules) {
    const double p = 0.95 / static_cast<double>(members.size());
    for (int i : members) tuples[static_cast<size_t>(i)].prob = p;
  }
  return TupleRelation(std::move(tuples), std::move(rules));
}

std::uint64_t VectorFingerprint(const std::vector<double>& values) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull + values.size();
  for (double v : values) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    h ^= bits + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

std::uint64_t VectorFingerprint(const std::vector<int>& values) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull + values.size();
  for (int v : values) {
    h ^= static_cast<std::uint64_t>(v) + 0x9e3779b97f4a7c15ull + (h << 6) +
         (h >> 2);
  }
  return h;
}

Measurement Measure(const std::string& kernel, int n, int threads,
                    double base_wall_ms, std::uint64_t baseline_print,
                    std::uint64_t print, double wall_ms, int nodes_used) {
  Measurement m;
  m.kernel = kernel;
  m.n = n;
  m.threads = threads;
  m.wall_ms = wall_ms;
  m.speedup_vs_1t =
      wall_ms > 0.0 && base_wall_ms > 0.0 ? base_wall_ms / wall_ms : 1.0;
  m.identical_to_1t = print == baseline_print;
  m.nodes_used = nodes_used;
  m.simd_target = ToString(ActiveSimdTarget());
  return m;
}

// Sharded expected-rank series: one row per (placement, threads), all
// fingerprint-checked against the serial facade.
std::vector<Measurement> ExpectedRankPlacementSeries(const TupleRelation& rel,
                                                     int n) {
  const TiePolicy ties = TiePolicy::kBreakByIndex;
  const std::uint64_t baseline =
      VectorFingerprint(TupleExpectedRanks(rel, ties));
  const auto prepared = QueryEngine::Prepare(rel);
  const internal::TupleShardPlan& plan = prepared->shard_plan();

  std::vector<Measurement> series;
  for (PlacementPolicy placement : kPolicies) {
    double base_wall_ms = 0.0;
    for (int threads : kThreadCounts) {
      KernelReport report;
      Timer timer;
      const std::vector<double> ranks = TupleExpectedRanksSharded(
          rel, plan, ties, Par(threads, placement), &report);
      const double wall_ms = timer.ElapsedMs();
      if (threads == 1) base_wall_ms = wall_ms;
      series.push_back(Measure(
          std::string("numa_expected_rank_") + ToString(placement), n, threads,
          base_wall_ms, baseline, VectorFingerprint(ranks), wall_ms,
          report.nodes_used));
    }
  }
  return series;
}

// Shard-cap sweep at a fixed thread count: auto (the deterministic
// default), coarse (4) and fine (16) grids, identical bytes for each.
std::vector<Measurement> ExpectedRankShardCountSeries(const TupleRelation& rel,
                                                      int n) {
  const TiePolicy ties = TiePolicy::kBreakByIndex;
  const std::uint64_t baseline =
      VectorFingerprint(TupleExpectedRanks(rel, ties));
  const auto prepared = QueryEngine::Prepare(rel);

  std::vector<Measurement> series;
  double base_wall_ms = 0.0;
  for (int max_shards : {0, 4, 16}) {
    const internal::TupleShardPlan plan = internal::BuildTupleShardPlan(
        rel, prepared->rank_order(), /*first_touch=*/false, max_shards);
    KernelReport report;
    Timer timer;
    const std::vector<double> ranks = TupleExpectedRanksSharded(
        rel, plan, ties, Par(4, PlacementPolicy::kSpread), &report);
    const double wall_ms = timer.ElapsedMs();
    if (base_wall_ms == 0.0) base_wall_ms = wall_ms;
    const std::string label =
        max_shards == 0 ? "auto" : std::to_string(max_shards);
    series.push_back(Measure("numa_expected_rank_shards_" + label, n, 4,
                             base_wall_ms, baseline, VectorFingerprint(ranks),
                             wall_ms, report.nodes_used));
  }
  return series;
}

// Median-rank (φ = 0.5 quantile) series per placement: the chunked DP
// behind median/quantile ranks, entering each chunk from the prepared
// sweep-entry table. Fresh prepared state per run — the quantile vector
// memoizes, and a cache hit would measure a lookup.
std::vector<Measurement> MedianRankPlacementSeries(const TupleRelation& rel,
                                                   int n) {
  const TiePolicy ties = TiePolicy::kBreakByIndex;
  const std::uint64_t baseline =
      VectorFingerprint(TupleQuantileRanks(rel, 0.5, ties));

  std::vector<Measurement> series;
  for (PlacementPolicy placement : kPolicies) {
    double base_wall_ms = 0.0;
    for (int threads : {1, 4}) {
      const auto prepared = QueryEngine::Prepare(rel);
      KernelReport report;
      Timer timer;
      const std::vector<int> ranks = TupleQuantileRanks(
          *prepared, 0.5, ties, Par(threads, placement), &report);
      const double wall_ms = timer.ElapsedMs();
      if (threads == 1) base_wall_ms = wall_ms;
      series.push_back(Measure(
          std::string("numa_median_rank_") + ToString(placement), n, threads,
          base_wall_ms, baseline, VectorFingerprint(ranks), wall_ms,
          report.nodes_used));
    }
  }
  return series;
}

void PrintSeries(const std::string& title,
                 const std::vector<Measurement>& series) {
  Table table("N1: " + title + " (N = " + FormatInt(series[0].n) + ")",
              {"kernel", "threads", "wall ms", "speedup", "nodes",
               "identical"});
  for (const Measurement& m : series) {
    table.AddRow({m.kernel, FormatInt(m.threads), FormatDouble(m.wall_ms, 2),
                  FormatDouble(m.speedup_vs_1t, 2), FormatInt(m.nodes_used),
                  m.identical_to_1t ? "yes" : "NO"});
  }
  table.Print();
  std::printf("\n");
}

void WriteJson(const std::string& path, bool smoke,
               const std::vector<Measurement>& all) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"harness\": \"bench_numa_scaling\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"hardware_threads\": %d,\n", ResolveThreads(0));
  std::fprintf(f, "  \"planning_topology\": \"%s\",\n",
               GlobalTopology().ToSpec().c_str());
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (size_t i = 0; i < all.size(); ++i) {
    const Measurement& m = all[i];
    std::fprintf(f,
                 "    {\"kernel\": \"%s\", \"n\": %d, \"threads\": %d, "
                 "\"simd_target\": \"%s\", \"wall_ms\": %.3f, "
                 "\"speedup_vs_1t\": %.3f, \"nodes_used\": %d, "
                 "\"identical_to_1t\": %s}%s\n",
                 m.kernel.c_str(), m.n, m.threads, m.simd_target, m.wall_ms,
                 m.speedup_vs_1t, m.nodes_used,
                 m.identical_to_1t ? "true" : "false",
                 i + 1 < all.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"metrics\": %s\n",
               metrics::Registry::Global().RenderJsonSnapshot().c_str());
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

int RunHarness(bool smoke, const std::string& json_path) {
  const int small_n = smoke ? 20000 : 100000;
  const int big_n = smoke ? 50000 : 1000000;
  const int num_rules = smoke ? 64 : 256;
  const int num_singletons = 200;

  const TupleRelation small_rel =
      MakeWideRuleRelation(small_n, num_rules, num_singletons);
  const TupleRelation big_rel =
      MakeWideRuleRelation(big_n, num_rules, num_singletons);

  std::vector<Measurement> all;
  {
    const auto series = ExpectedRankPlacementSeries(small_rel, small_n);
    PrintSeries("sharded expected rank, per placement", series);
    all.insert(all.end(), series.begin(), series.end());
  }
  {
    const auto series = ExpectedRankPlacementSeries(big_rel, big_n);
    PrintSeries("sharded expected rank, per placement", series);
    all.insert(all.end(), series.begin(), series.end());
  }
  {
    const auto series = ExpectedRankShardCountSeries(small_rel, small_n);
    PrintSeries("sharded expected rank, shard-cap sweep", series);
    all.insert(all.end(), series.begin(), series.end());
  }
  {
    const auto series = MedianRankPlacementSeries(big_rel, big_n);
    PrintSeries("median rank, per placement", series);
    all.insert(all.end(), series.begin(), series.end());
  }

  bool identical = true;
  for (const Measurement& m : all) identical = identical && m.identical_to_1t;
  std::printf("bit-identical to the serial facade everywhere: %s\n",
              identical ? "yes" : "NO");
  std::printf("planning topology: %s (%d node(s))\n",
              GlobalTopology().ToSpec().c_str(), GlobalTopology().num_nodes());

  if (!json_path.empty()) WriteJson(json_path, smoke, all);
  return identical ? 0 : 1;  // identity failures fail the harness
}

}  // namespace
}  // namespace urank

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json=PATH]\n", argv[0]);
      return 2;
    }
  }
  return urank::RunHarness(smoke, json_path);
}
