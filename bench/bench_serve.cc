// Experiment S1: urankd serving performance — an in-process Server behind
// the loopback TCP transport, driven by the library's own load generator.
//
// S1a sweeps closed-loop connection counts over the kMixed workload (all
// eight ranking semantics against one N-tuple relation) and reports the
// sustained QPS with client-observed mean/p99 latency — the served-QPS
// series BENCH_6.json archives.
//
// S1b is the warm-cache acceptance comparison: the kRepeat workload (one
// fixed query forever) once with cache:"bypass" on every request and once
// against the warm result cache. The ratio is computed on the server-side
// handle latency (stats.serve_ms) so loopback RTT noise cannot dilute it;
// the acceptance target is warm mean >= 10x lower than bypass mean, and
// the harness exits non-zero when it is missed — that ratio, not the raw
// latency series, is the regression gate for the serving layer.
//
// Flags:
//   --smoke        shrink the relation and run lengths for CI smoke runs
//   --json=PATH    machine-readable results for tools/bench_runner.py

#include <cstdio>
#include <string>
#include <vector>

#include "gen/tuple_gen.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "serve/tcp.h"
#include "util/parallel.h"
#include "util/simd.h"
#include "util/table.h"
#include "util/timer.h"

namespace urank {
namespace {

// One machine-readable series point. `threads` carries the load-generator
// connection count. Serve rows are written with `latency_ms` (not
// `wall_ms`) on purpose: sub-millisecond loopback latencies jitter well
// past the 10% tolerance of tools/bench_runner.py --compare even best-of-3,
// so the compare matcher archives these series without gating on them —
// the harness's own warm-cache-ratio exit code is the serving gate.
struct Measurement {
  std::string kernel;
  int n = 0;
  int threads = 0;
  double wall_ms = 0.0;
  double qps = 0.0;
};

std::vector<Measurement>& Collected() {
  static std::vector<Measurement> rows;
  return rows;
}

void Collect(const std::string& kernel, int n, int threads, double wall_ms,
             double qps = 0.0) {
  Collected().push_back({kernel, n, threads, wall_ms, qps});
}

// Touches every (semantics, k, phi) grid point the kMixed workload can
// sample, once, through the server itself — the first touch of each
// memoized statistic costs a full DP sweep (tens of seconds at N = 100k
// on one core), and a throughput series that mixes those one-time costs
// with steady-state serving measures neither. After the warmup the
// engine's statistic memo and the result cache are both hot, which is
// the state a dashboard-serving daemon actually runs in.
double Warmup(serve::Server* server, int k) {
  Timer timer;
  const char* kSemantics[] = {"expected-rank", "median-rank",
                              "quantile-rank", "u-topk",
                              "u-kranks",      "pt-k",
                              "global-topk",   "expected-score"};
  int id = 0;
  for (const char* semantics : kSemantics) {
    for (int kk : {k, k * 10}) {
      for (double phi : {0.5, 0.9}) {
        char line[256];
        std::snprintf(line, sizeof(line),
                      "{\"v\":1,\"type\":\"query\",\"id\":%d,"
                      "\"relation\":\"bench\",\"semantics\":\"%s\","
                      "\"k\":%d,\"phi\":%.1f,\"threshold\":0.1}",
                      ++id, semantics, kk, phi);
        server->HandleLine(line);
      }
    }
  }
  return timer.ElapsedMs();
}

serve::LoadGenReport MustRun(const serve::LoadGenOptions& options) {
  serve::LoadGenReport report;
  std::string error;
  if (!serve::RunLoadGen(options, &report, &error)) {
    std::fprintf(stderr, "load generator failed: %s\n", error.c_str());
    std::exit(1);
  }
  return report;
}

void RunMixedSweep(int port, int n, double duration_s) {
  Table table("S1a: closed-loop mixed workload (N = " + FormatInt(n) +
                  ", all 8 semantics, " + FormatDouble(duration_s, 1) +
                  " s per point)",
              {"connections", "qps", "ok", "errors", "client mean ms",
               "client p99 ms", "server p99 ms"});
  for (int connections : {1, 2, 4}) {
    serve::LoadGenOptions options;
    options.port = port;
    options.relation = "bench";
    options.workload = serve::Workload::kMixed;
    options.connections = connections;
    options.duration_s = duration_s;
    const serve::LoadGenReport report = MustRun(options);
    table.AddRow({FormatInt(connections), FormatDouble(report.achieved_qps, 0),
                  FormatInt(report.ok), FormatInt(report.errors),
                  FormatDouble(report.client.mean_ms, 3),
                  FormatDouble(report.client.p99_ms, 3),
                  FormatDouble(report.serve.p99_ms, 3)});
    Collect("serve_mixed_client_p99", n, connections, report.client.p99_ms,
            report.achieved_qps);
    Collect("serve_mixed_client_mean", n, connections, report.client.mean_ms,
            report.achieved_qps);
  }
  table.Print();
  std::printf("\n");

  // The same workload with cache:"bypass" on every request: each query
  // pays the engine's rank-from-memoized-statistic path instead of a
  // result-cache lookup — the engine-bound serving rate.
  serve::LoadGenOptions options;
  options.port = port;
  options.relation = "bench";
  options.workload = serve::Workload::kMixed;
  options.connections = 2;
  options.duration_s = duration_s;
  options.bypass_cache = true;
  const serve::LoadGenReport bypass = MustRun(options);
  std::printf("mixed with cache bypass (2 connections): %.0f qps, "
              "client p99 %.3f ms, server p99 %.3f ms\n\n",
              bypass.achieved_qps, bypass.client.p99_ms,
              bypass.serve.p99_ms);
  Collect("serve_mixed_bypass_p99", n, options.connections,
          bypass.client.p99_ms, bypass.achieved_qps);
}

bool RunCacheComparison(int port, int n, double duration_s) {
  serve::LoadGenOptions options;
  options.port = port;
  options.relation = "bench";
  options.workload = serve::Workload::kRepeat;
  options.connections = 2;
  options.duration_s = duration_s;

  // Bypass first: with the cache out of the picture every request pays
  // the full engine run (the engine's own statistic memo still applies,
  // which is exactly what a cache-bypassing client would see).
  options.bypass_cache = true;
  const serve::LoadGenReport bypass = MustRun(options);

  // Warm: the first request misses and fills the entry; everything after
  // is served from the result cache.
  options.bypass_cache = false;
  const serve::LoadGenReport warm = MustRun(options);

  Table table("S1b: repeated-query cache effect (server-side serve_ms, N = " +
                  FormatInt(n) + ")",
              {"mode", "qps", "serve mean ms", "serve p99 ms", "hits",
               "misses"});
  table.AddRow({"bypass", FormatDouble(bypass.achieved_qps, 0),
                FormatDouble(bypass.serve.mean_ms, 4),
                FormatDouble(bypass.serve.p99_ms, 4),
                FormatInt(bypass.cache_hits), FormatInt(bypass.cache_misses)});
  table.AddRow({"warm", FormatDouble(warm.achieved_qps, 0),
                FormatDouble(warm.serve.mean_ms, 4),
                FormatDouble(warm.serve.p99_ms, 4),
                FormatInt(warm.cache_hits), FormatInt(warm.cache_misses)});
  table.Print();

  Collect("serve_repeat_bypass_mean", n, options.connections,
          bypass.serve.mean_ms, bypass.achieved_qps);
  Collect("serve_repeat_warm_mean", n, options.connections,
          warm.serve.mean_ms, warm.achieved_qps);

  const double ratio = warm.serve.mean_ms > 0.0
                           ? bypass.serve.mean_ms / warm.serve.mean_ms
                           : 0.0;
  std::printf("\nwarm-cache speedup on serve_ms: %.1fx (target >= 10x) -> %s\n",
              ratio, ratio >= 10.0 ? "met" : "NOT met");
  return ratio >= 10.0;
}

void WriteJson(const std::string& path, bool smoke) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  const std::vector<Measurement>& rows = Collected();
  std::fprintf(f, "{\n  \"harness\": \"bench_serve\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"hardware_threads\": %d,\n", ResolveThreads(0));
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Measurement& m = rows[i];
    std::fprintf(f,
                 "    {\"kernel\": \"%s\", \"n\": %d, \"threads\": %d, "
                 "\"simd_target\": \"%s\", \"latency_ms\": %.4f, "
                 "\"qps\": %.1f}%s\n",
                 m.kernel.c_str(), m.n, m.threads,
                 ToString(ActiveSimdTarget()), m.wall_ms, m.qps,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

int RunBench(bool smoke, const std::string& json_path) {
  // Smoke keeps the relation one statistic sweep (~tens of ms) so the
  // whole harness fits a CI budget; full uses the paper-scale N = 100k
  // relation where a cache miss costs real engine time.
  const int n = smoke ? 5000 : 100000;
  const double duration_s = smoke ? 0.5 : 5.0;

  TupleGenConfig config;
  config.num_tuples = n;
  config.seed = 47;

  serve::ServerOptions server_options;
  server_options.workers = 2;
  serve::Server server(server_options);
  server.AddRelation("bench", GenerateTupleRelation(config));

  serve::TcpServer transport(&server);
  std::string error;
  if (!transport.Start(0, &error)) {
    std::fprintf(stderr, "cannot start transport: %s\n", error.c_str());
    return 1;
  }
  std::printf("bench_serve: urankd core on 127.0.0.1:%d, N = %d\n",
              transport.port(), n);
  const double warmup_ms = Warmup(&server, /*k=*/10);
  std::printf("warmup: all 32 mixed-grid queries touched once in %.0f ms\n\n",
              warmup_ms);
  Collect("serve_warmup_grid", n, 1, warmup_ms);

  RunMixedSweep(transport.port(), n, duration_s);
  const bool cache_target_met =
      RunCacheComparison(transport.port(), n, duration_s);

  transport.Shutdown();
  server.Drain();
  if (!json_path.empty()) WriteJson(json_path, smoke);
  if (!cache_target_met) {
    std::fprintf(stderr,
                 "bench_serve: warm-cache speedup below the 10x target\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace urank

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json=PATH]\n", argv[0]);
      return 2;
    }
  }
  return urank::RunBench(smoke, json_path);
}
