// Experiment P1: intra-query scaling of the parallel DP kernels.
//
// Runs the chunked tuple-level rank-distribution sweep (the kernel behind
// median/quantile ranks), the positional sweep (behind PT-k, Global-Topk,
// U-kRanks) and the attribute-level rank-distribution pass at 1, 2, 4 and
// 8 worker threads over one fixed relation each, verifying that every
// thread count produces bit-identical distributions before reporting
// wall-clock, speedup vs the single-thread run, and emitted-DP-cell
// throughput.
//
// A second family of series pins each compiled-in SIMD dispatch target
// (scalar, AVX2, AVX-512, NEON) in turn and re-runs the kernels single-
// threaded, reporting per-target speedup over the scalar reference — the
// vectorization win independent of thread scaling.
//
// Flags:
//   --smoke        shrink the relations (~20k tuples) for CI smoke runs
//   --json=PATH    append machine-readable results for tools/bench_runner
//
// The speedup column only shows parallel gains on multi-core hosts; the
// identity column must read "yes" everywhere on any host.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "core/engine/query_engine.h"
#include "core/rank_distribution_attr.h"
#include "core/rank_distribution_tuple.h"
#include "gen/attr_gen.h"
#include "gen/tuple_gen.h"
#include "util/parallel.h"
#include "util/simd.h"
#include "util/table.h"
#include "util/timer.h"

namespace urank {
namespace {

const int kThreadCounts[] = {1, 2, 4, 8};

struct Measurement {
  std::string kernel;
  int n = 0;
  int threads = 0;
  double wall_ms = 0.0;
  // Thread-scaling series: speedup vs this series' 1-thread run.
  // Dispatch series: speedup vs this series' scalar-target run.
  double speedup_vs_1t = 0.0;
  long long dp_cells = 0;   // nonzero pmf entries emitted
  double cells_per_s = 0.0;
  bool identical_to_1t = true;
  const char* simd_target = "scalar";  // dispatch target the run executed on
};

ParallelismOptions Par(int threads) {
  ParallelismOptions par;
  par.threads = threads;
  par.min_parallel_items = 1;
  return par;
}

// Exact fingerprint over the nonzero entries (position + bit pattern) of
// one distribution row; any single-bit difference between two runs of the
// same kernel changes the per-tuple fingerprint.
std::uint64_t RowFingerprint(std::span<const double> row) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull + row.size();
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i] == 0.0) continue;
    std::uint64_t bits = 0;
    std::memcpy(&bits, &row[i], sizeof(bits));
    h ^= i + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h ^= bits + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

long long CountNonzero(std::span<const double> row) {
  long long cells = 0;
  for (double v : row) cells += v != 0.0 ? 1 : 0;
  return cells;
}

// One scaling series: `sweep(threads, fingerprints, cells)` runs the
// kernel and fills per-tuple fingerprints plus the emitted-cell count.
template <typename SweepFn>
std::vector<Measurement> ScalingSeries(const std::string& kernel, int n,
                                       const SweepFn& sweep) {
  std::vector<Measurement> series;
  std::vector<std::uint64_t> baseline;
  for (int threads : kThreadCounts) {
    std::vector<std::uint64_t> prints(static_cast<size_t>(n), 0);
    long long cells = 0;
    Timer timer;
    sweep(threads, &prints, &cells);
    Measurement m;
    m.kernel = kernel;
    m.n = n;
    m.threads = threads;
    m.wall_ms = timer.ElapsedMs();
    m.dp_cells = cells;
    m.cells_per_s = m.wall_ms > 0.0 ? cells / (m.wall_ms / 1000.0) : 0.0;
    if (threads == 1) baseline = prints;
    m.identical_to_1t = prints == baseline;
    m.speedup_vs_1t =
        m.wall_ms > 0.0 ? series.empty() ? 1.0 : series[0].wall_ms / m.wall_ms
                        : 0.0;
    m.simd_target = ToString(ActiveSimdTarget());
    series.push_back(m);
  }
  return series;
}

// Dispatch targets compiled into this binary and usable on this host,
// scalar first (the speedup reference).
std::vector<SimdTarget> AvailableTargets() {
  std::vector<SimdTarget> targets;
  for (SimdTarget t : {SimdTarget::kScalar, SimdTarget::kNeon,
                       SimdTarget::kAvx2, SimdTarget::kAvx512}) {
    if (SimdTargetAvailable(t)) targets.push_back(t);
  }
  return targets;
}

// One single-threaded run of `sweep` per available dispatch target; the
// speedup column is relative to the scalar run. Pins the process-wide
// target for the duration of each run and restores the entry state.
template <typename SweepFn>
std::vector<Measurement> DispatchSeries(const std::string& kernel, int n,
                                        const SweepFn& sweep) {
  const SimdTarget entry = ActiveSimdTarget();
  std::vector<Measurement> series;
  for (SimdTarget target : AvailableTargets()) {
    SetSimdTarget(target);
    long long cells = 0;
    Timer timer;
    sweep(&cells);
    Measurement m;
    m.kernel = kernel;
    m.n = n;
    m.threads = 1;
    m.wall_ms = timer.ElapsedMs();
    m.dp_cells = cells;
    m.cells_per_s = m.wall_ms > 0.0 ? cells / (m.wall_ms / 1000.0) : 0.0;
    m.speedup_vs_1t =
        m.wall_ms > 0.0 ? series.empty() ? 1.0 : series[0].wall_ms / m.wall_ms
                        : 0.0;
    m.simd_target = ToString(target);
    series.push_back(m);
  }
  SetSimdTarget(entry);
  return series;
}

std::vector<Measurement> TupleRankDistributionDispatchSeries(int n) {
  TupleGenConfig config;
  config.num_tuples = n;
  config.seed = 11;
  const TupleRelation rel = GenerateTupleRelation(config);
  const auto prepared = QueryEngine::Prepare(rel);
  return DispatchSeries(
      "tuple_rank_distribution_simd", n, [&](long long* cells) {
        std::vector<long long> chunk_cells(
            static_cast<size_t>(TupleSweepChunkCount(rel)), 0);
        KernelReport report;
        ForEachTupleRankDistribution(
            rel, prepared->rank_order(), TiePolicy::kBreakByIndex, Par(1),
            &report, [&](int chunk, int /*i*/, std::span<const double> dist) {
              chunk_cells[static_cast<size_t>(chunk)] += CountNonzero(dist);
            });
        for (long long c : chunk_cells) *cells += c;
      });
}

std::vector<Measurement> AttrRankDistributionDispatchSeries(int n) {
  AttrGenConfig config;
  config.num_tuples = n;
  config.seed = 17;
  const AttrRelation rel = GenerateAttrRelation(config);
  const std::vector<internal::SortedPdf> pdfs = BuildSortedPdfs(rel);
  return DispatchSeries(
      "attr_rank_distribution_simd", n, [&](long long* cells) {
        KernelReport report;
        const std::vector<std::vector<double>> dists = AttrRankDistributions(
            rel, pdfs, TiePolicy::kBreakByIndex, Par(1), &report);
        for (const auto& dist : dists) *cells += CountNonzero(dist);
      });
}

std::vector<Measurement> TupleRankDistributionSeries(int n) {
  TupleGenConfig config;
  config.num_tuples = n;
  config.seed = 11;
  const TupleRelation rel = GenerateTupleRelation(config);
  const auto prepared = QueryEngine::Prepare(rel);
  return ScalingSeries(
      "tuple_rank_distribution", n,
      [&](int threads, std::vector<std::uint64_t>* prints, long long* cells) {
        // Per-chunk cell counters fold after the sweep: chunk callbacks
        // may run concurrently, but never for the same chunk.
        std::vector<long long> chunk_cells(
            static_cast<size_t>(TupleSweepChunkCount(rel)), 0);
        KernelReport report;
        ForEachTupleRankDistribution(
            rel, prepared->rank_order(), TiePolicy::kBreakByIndex,
            Par(threads), &report,
            [&](int chunk, int i, std::span<const double> dist) {
              (*prints)[static_cast<size_t>(i)] = RowFingerprint(dist);
              chunk_cells[static_cast<size_t>(chunk)] += CountNonzero(dist);
            });
        for (long long c : chunk_cells) *cells += c;
      });
}

std::vector<Measurement> TuplePositionalSeries(int n) {
  TupleGenConfig config;
  config.num_tuples = n;
  config.seed = 13;
  const TupleRelation rel = GenerateTupleRelation(config);
  const auto prepared = QueryEngine::Prepare(rel);
  return ScalingSeries(
      "tuple_positional", n,
      [&](int threads, std::vector<std::uint64_t>* prints, long long* cells) {
        std::vector<long long> chunk_cells(
            static_cast<size_t>(TupleSweepChunkCount(rel)), 0);
        KernelReport report;
        ForEachTuplePositionalDistribution(
            rel, prepared->rank_order(), TiePolicy::kBreakByIndex,
            Par(threads), &report,
            [&](int chunk, int i, std::span<const double> row) {
              (*prints)[static_cast<size_t>(i)] = RowFingerprint(row);
              chunk_cells[static_cast<size_t>(chunk)] += CountNonzero(row);
            });
        for (long long c : chunk_cells) *cells += c;
      });
}

std::vector<Measurement> AttrRankDistributionSeries(int n) {
  AttrGenConfig config;
  config.num_tuples = n;
  config.seed = 17;
  const AttrRelation rel = GenerateAttrRelation(config);
  const std::vector<internal::SortedPdf> pdfs = BuildSortedPdfs(rel);
  return ScalingSeries(
      "attr_rank_distribution", n,
      [&](int threads, std::vector<std::uint64_t>* prints, long long* cells) {
        KernelReport report;
        const std::vector<std::vector<double>> dists = AttrRankDistributions(
            rel, pdfs, TiePolicy::kBreakByIndex, Par(threads), &report);
        for (int i = 0; i < n; ++i) {
          (*prints)[static_cast<size_t>(i)] =
              RowFingerprint(dists[static_cast<size_t>(i)]);
          *cells += CountNonzero(dists[static_cast<size_t>(i)]);
        }
      });
}

void PrintSeries(const std::vector<Measurement>& series) {
  Table table("P1: " + series[0].kernel +
                  " (N = " + FormatInt(series[0].n) + ")",
              {"threads", "wall ms", "speedup", "cells/s", "identical"});
  for (const Measurement& m : series) {
    table.AddRow({FormatInt(m.threads), FormatDouble(m.wall_ms, 2),
                  FormatDouble(m.speedup_vs_1t, 2),
                  FormatDouble(m.cells_per_s / 1e6, 2) + "M",
                  m.identical_to_1t ? "yes" : "NO"});
  }
  table.Print();
  std::printf("\n");
}

void PrintDispatchSeries(const std::vector<Measurement>& series) {
  Table table("P1: " + series[0].kernel +
                  " (N = " + FormatInt(series[0].n) + ", 1 thread)",
              {"target", "wall ms", "speedup vs scalar", "cells/s"});
  for (const Measurement& m : series) {
    table.AddRow({m.simd_target, FormatDouble(m.wall_ms, 2),
                  FormatDouble(m.speedup_vs_1t, 2),
                  FormatDouble(m.cells_per_s / 1e6, 2) + "M"});
  }
  table.Print();
  std::printf("\n");
}

void WriteJson(const std::string& path, bool smoke,
               const std::vector<Measurement>& all) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"harness\": \"bench_parallel_kernels\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"hardware_threads\": %d,\n", ResolveThreads(0));
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (size_t i = 0; i < all.size(); ++i) {
    const Measurement& m = all[i];
    std::fprintf(
        f,
        "    {\"kernel\": \"%s\", \"n\": %d, \"threads\": %d, "
        "\"simd_target\": \"%s\", "
        "\"wall_ms\": %.3f, \"speedup_vs_1t\": %.3f, \"dp_cells\": %lld, "
        "\"dp_cells_per_s\": %.0f, \"identical_to_1t\": %s}%s\n",
        m.kernel.c_str(), m.n, m.threads, m.simd_target, m.wall_ms,
        m.speedup_vs_1t, m.dp_cells, m.cells_per_s,
        m.identical_to_1t ? "true" : "false",
        i + 1 < all.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

int RunHarness(bool smoke, const std::string& json_path) {
  const int tuple_n = smoke ? 20000 : 100000;
  const int attr_n = smoke ? 300 : 600;

  std::vector<Measurement> all;
  for (const auto& series :
       {TupleRankDistributionSeries(tuple_n), TuplePositionalSeries(tuple_n),
        AttrRankDistributionSeries(attr_n)}) {
    PrintSeries(series);
    all.insert(all.end(), series.begin(), series.end());
  }
  for (const auto& series : {TupleRankDistributionDispatchSeries(tuple_n),
                             AttrRankDistributionDispatchSeries(attr_n)}) {
    PrintDispatchSeries(series);
    all.insert(all.end(), series.begin(), series.end());
  }

  bool identical = true;
  double tuple_dp_best_speedup = 0.0;
  for (const Measurement& m : all) {
    identical = identical && m.identical_to_1t;
    if (m.kernel == "tuple_rank_distribution") {
      tuple_dp_best_speedup = std::max(tuple_dp_best_speedup, m.speedup_vs_1t);
    }
  }
  std::printf("bit-identical across thread counts: %s\n",
              identical ? "yes" : "NO");
  std::printf(
      "tuple rank-distribution best speedup: %.2fx on %d hardware threads "
      "(target: >= 3x on 8 cores)\n",
      tuple_dp_best_speedup, ResolveThreads(0));

  if (!json_path.empty()) WriteJson(json_path, smoke, all);
  return identical ? 0 : 1;  // identity failures fail the harness
}

}  // namespace
}  // namespace urank

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json=PATH]\n", argv[0]);
      return 2;
    }
  }
  return urank::RunHarness(smoke, json_path);
}
