// Experiment E2: attribute-level exact computation — runtime vs the pdf
// size s at fixed N.
//
// Paper shape: A-ERank's cost grows linearly in s (the value universe has
// sN entries); the brute force grows roughly linearly in s as well but
// from a quadratically larger base.

#include <benchmark/benchmark.h>

#include "core/expected_rank_attr.h"
#include "gen/attr_gen.h"

namespace urank {
namespace {

AttrRelation MakeRelation(int n, int s) {
  AttrGenConfig config;
  config.num_tuples = n;
  config.pdf_size = s;
  config.seed = 7;
  return GenerateAttrRelation(config);
}

void BM_AERank_PdfSize(benchmark::State& state) {
  AttrRelation rel = MakeRelation(20000, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(AttrExpectedRanks(rel));
  }
}
BENCHMARK(BM_AERank_PdfSize)
    ->DenseRange(1, 10, 1)
    ->Unit(benchmark::kMillisecond);

void BM_BruteForce_PdfSize(benchmark::State& state) {
  AttrRelation rel = MakeRelation(4000, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(AttrExpectedRanksBruteForce(rel));
  }
}
BENCHMARK(BM_BruteForce_PdfSize)
    ->DenseRange(1, 10, 3)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace urank
