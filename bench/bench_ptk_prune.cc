// Experiment E15 (extension): early-terminating PT-k — the scan-depth
// behaviour of the threshold algorithm the paper cites as Hua et al. [23].
//
// Expected shape: higher thresholds and larger per-tuple probabilities
// stop the scan sooner (the unseen-tuple bound Pr[#appearing seen <= k]
// collapses once ~k units of probability mass are behind us); the answer
// always equals the full evaluation's.

#include <cstdio>
#include <utility>
#include <vector>

#include "core/semantics/pt_k.h"
#include "gen/tuple_gen.h"
#include "util/table.h"
#include "util/timer.h"

namespace urank {
namespace {

constexpr int kN = 20000;

TupleRelation MakeRelation(double prob_lo, double prob_hi) {
  TupleGenConfig config;
  config.num_tuples = kN;
  config.prob_lo = prob_lo;
  config.prob_hi = prob_hi;
  config.multi_rule_fraction = 0.3;
  config.max_rule_size = 3;
  config.seed = 37;
  return GenerateTupleRelation(config);
}

void RunExperiment() {
  Table by_threshold(
      "E15a: PT-k pruned scan depth vs threshold (N = 20000, k = 20, "
      "p in [0.2, 1])",
      {"threshold", "accessed", "fraction", "answer size", "time (ms)"});
  TupleRelation rel = MakeRelation(0.2, 1.0);
  for (double threshold : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    PTkPruneResult result;
    const double ms = MedianTimeMs(
        5, [&] { result = TuplePTkPruned(rel, 20, threshold); });
    by_threshold.AddRow(
        {FormatDouble(threshold, 1), FormatInt(result.accessed),
         FormatDouble(static_cast<double>(result.accessed) / kN, 4),
         FormatInt(static_cast<int64_t>(result.ids.size())),
         FormatDouble(ms, 3)});
  }
  by_threshold.Print();
  std::printf("\n");

  Table by_k("E15b: PT-k pruned scan depth vs k (threshold = 0.5)",
             {"k", "accessed", "answer size", "time (ms)"});
  for (int k : {5, 10, 20, 50, 100}) {
    PTkPruneResult result;
    const double ms =
        MedianTimeMs(5, [&] { result = TuplePTkPruned(rel, k, 0.5); });
    by_k.AddRow({FormatInt(k), FormatInt(result.accessed),
                 FormatInt(static_cast<int64_t>(result.ids.size())),
                 FormatDouble(ms, 3)});
  }
  by_k.Print();
  std::printf("\n");

  Table by_prob(
      "E15c: PT-k pruned scan depth vs probability range (k = 20, "
      "threshold = 0.5)",
      {"p range", "accessed", "fraction"});
  const std::vector<std::pair<double, double>> ranges = {
      {0.05, 0.2}, {0.2, 0.5}, {0.5, 0.8}, {0.8, 1.0}};
  for (const auto& [lo, hi] : ranges) {
    TupleRelation r = MakeRelation(lo, hi);
    const PTkPruneResult result = TuplePTkPruned(r, 20, 0.5);
    char label[32];
    std::snprintf(label, sizeof(label), "[%.2f, %.2f]", lo, hi);
    by_prob.AddRow({label, FormatInt(result.accessed),
                    FormatDouble(static_cast<double>(result.accessed) / kN,
                                 4)});
  }
  by_prob.Print();
}

}  // namespace
}  // namespace urank

int main() {
  urank::RunExperiment();
  return 0;
}
