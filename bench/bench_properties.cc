// Experiment E11: empirical reproduction of the paper's Fig. 5 — the
// property matrix of every ranking definition. Each semantics is probed on
// many randomized instances in both uncertainty models; a property is
// marked violated ("NO") if any instance exhibits a violation.
//
// Paper shape (Fig. 5):
//                exact-k containment unique value-inv stability
//   U-Topk          ✗        ✗         ✓        ✓         ✓
//   U-kRanks        ✗*       ✓         ✗        ✓         ✗
//   PT-k            ✗      weak        ✓        ✓         ✓
//   Global-Topk     ✓        ✗         ✓        ✓         ✓
//   E-Score         ✓        ✓         ✓        ✗         ✓
//   E-Rank          ✓        ✓         ✓        ✓         ✓
//   (M-Rank / Q-Rank: same row as E-Rank, paper Theorem 2.)
// *U-kRanks keeps k entries in the attribute-level model but can leave
//  ranks unfilled in the tuple-level model.

#include <cstdio>
#include <string>
#include <vector>

#include "core/expected_rank_attr.h"
#include "core/expected_rank_tuple.h"
#include "core/properties.h"
#include "core/quantile_rank.h"
#include "core/ranking.h"
#include "core/semantics/expected_score.h"
#include "core/semantics/global_topk.h"
#include "core/semantics/pt_k.h"
#include "core/semantics/u_kranks.h"
#include "core/semantics/u_topk.h"
#include "gen/attr_gen.h"
#include "gen/tuple_gen.h"
#include "util/rng.h"
#include "util/table.h"

namespace urank {
namespace {

struct Row {
  std::string name;
  AttrSemanticsFn attr;
  TupleSemanticsFn tuple;
};

std::vector<Row> AllSemantics() {
  return {
      {"U-Topk",
       [](const AttrRelation& r, int k) { return AttrUTopK(r, k).ids; },
       [](const TupleRelation& r, int k) { return TupleUTopK(r, k).ids; }},
      {"U-kRanks",
       [](const AttrRelation& r, int k) { return AttrUKRanks(r, k); },
       [](const TupleRelation& r, int k) { return TupleUKRanks(r, k); }},
      {"PT-k(0.3)",
       [](const AttrRelation& r, int k) { return AttrPTk(r, k, 0.3); },
       [](const TupleRelation& r, int k) { return TuplePTk(r, k, 0.3); }},
      {"Global-Topk",
       [](const AttrRelation& r, int k) { return AttrGlobalTopK(r, k); },
       [](const TupleRelation& r, int k) { return TupleGlobalTopK(r, k); }},
      {"E-Score",
       [](const AttrRelation& r, int k) {
         return IdsOf(AttrExpectedScoreTopK(r, k));
       },
       [](const TupleRelation& r, int k) {
         return IdsOf(TupleExpectedScoreTopK(r, k));
       }},
      {"E-Rank",
       [](const AttrRelation& r, int k) {
         return IdsOf(AttrExpectedRankTopK(r, k));
       },
       [](const TupleRelation& r, int k) {
         return IdsOf(TupleExpectedRankTopK(r, k));
       }},
      {"M-Rank",
       [](const AttrRelation& r, int k) {
         return IdsOf(AttrQuantileRankTopK(r, k, 0.5));
       },
       [](const TupleRelation& r, int k) {
         return IdsOf(TupleQuantileRankTopK(r, k, 0.5));
       }},
      {"Q-Rank(.75)",
       [](const AttrRelation& r, int k) {
         return IdsOf(AttrQuantileRankTopK(r, k, 0.75));
       },
       [](const TupleRelation& r, int k) {
         return IdsOf(TupleQuantileRankTopK(r, k, 0.75));
       }},
  };
}

// Small random instances with enumerable worlds (U-Topk with rules and the
// attribute-level U-Topk rely on enumeration).
AttrRelation RandomAttr(Rng& rng) {
  AttrGenConfig config;
  config.num_tuples = static_cast<int>(rng.UniformInt(4, 7));
  config.pdf_size = 2;
  config.score_scale = 20.0;
  config.value_spread = 4.0;
  config.seed = rng.engine()();
  return GenerateAttrRelation(config);
}

TupleRelation RandomTuple(Rng& rng) {
  TupleGenConfig config;
  config.num_tuples = static_cast<int>(rng.UniformInt(4, 9));
  config.multi_rule_fraction = 0.4;
  config.max_rule_size = 3;
  config.score_scale = 20.0;
  config.prob_lo = 0.1;
  config.seed = rng.engine()();
  return GenerateTupleRelation(config);
}

struct Tally {
  int exact_k = 0, containment = 0, weak = 0, unique = 0, value = 0,
      stability = 0;

  void Absorb(const PropertyReport& report) {
    exact_k += report.exact_k ? 0 : 1;
    containment += report.containment ? 0 : 1;
    weak += report.weak_containment ? 0 : 1;
    unique += report.unique_rank ? 0 : 1;
    value += report.value_invariance ? 0 : 1;
    stability += report.stability ? 0 : 1;
  }
};

std::string Cell(int violations, int weak_violations = -1) {
  if (violations == 0) return "yes";
  if (weak_violations == 0) return "weak(" + std::to_string(violations) + ")";
  return "NO(" + std::to_string(violations) + ")";
}

void RunExperiment() {
  constexpr int kInstances = 40;
  Rng rng(2009);
  std::vector<AttrRelation> attr_instances;
  std::vector<TupleRelation> tuple_instances;
  for (int i = 0; i < kInstances; ++i) {
    attr_instances.push_back(RandomAttr(rng));
    tuple_instances.push_back(RandomTuple(rng));
  }

  Table table("E11: property matrix over " + std::to_string(kInstances) +
                  "+" + std::to_string(kInstances) +
                  " random instances (violation counts; paper Fig. 5)",
              {"semantics", "exact-k", "containment", "unique-rank",
               "value-inv", "stability"});
  for (const Row& row : AllSemantics()) {
    Tally tally;
    PropertyCheckOptions options;
    options.stability_trials = 4;
    for (int i = 0; i < kInstances; ++i) {
      options.seed = static_cast<uint64_t>(1000 + i);
      tally.Absorb(CheckAttrProperties(row.attr, attr_instances[static_cast<size_t>(i)], options));
      tally.Absorb(CheckTupleProperties(
          row.tuple, tuple_instances[static_cast<size_t>(i)], options));
    }
    table.AddRow({row.name, Cell(tally.exact_k),
                  Cell(tally.containment, tally.weak), Cell(tally.unique),
                  Cell(tally.value), Cell(tally.stability)});
  }
  table.Print();
  std::printf(
      "\nyes = no violation found; NO(c) = violated on c probes; weak(c) = "
      "strong\ncontainment violated c times but weak containment always "
      "held.\n");
}

}  // namespace
}  // namespace urank

int main() {
  urank::RunExperiment();
  return 0;
}
