// Experiment E1: attribute-level expected ranks — exact A-ERank
// (O(N log N)) vs the brute-force O(N²) baseline, runtime vs N, for
// uniform and Zipfian score distributions.
//
// Paper shape: A-ERank grows near-linearly and beats BFS by orders of
// magnitude at large N; the score distribution barely matters.

#include <benchmark/benchmark.h>

#include "core/expected_rank_attr.h"
#include "gen/attr_gen.h"

namespace urank {
namespace {

AttrRelation MakeRelation(int n, ScoreDistribution dist) {
  AttrGenConfig config;
  config.num_tuples = n;
  config.pdf_size = 5;
  config.score_dist = dist;
  config.seed = 42;
  return GenerateAttrRelation(config);
}

void BM_AERank_Uniform(benchmark::State& state) {
  AttrRelation rel =
      MakeRelation(static_cast<int>(state.range(0)), ScoreDistribution::kUniform);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AttrExpectedRanks(rel));
  }
}
BENCHMARK(BM_AERank_Uniform)
    ->RangeMultiplier(4)
    ->Range(1000, 256000)
    ->Unit(benchmark::kMillisecond);

void BM_AERank_Zipf(benchmark::State& state) {
  AttrRelation rel =
      MakeRelation(static_cast<int>(state.range(0)), ScoreDistribution::kZipf);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AttrExpectedRanks(rel));
  }
}
BENCHMARK(BM_AERank_Zipf)
    ->RangeMultiplier(4)
    ->Range(1000, 256000)
    ->Unit(benchmark::kMillisecond);

void BM_BruteForce_Uniform(benchmark::State& state) {
  AttrRelation rel =
      MakeRelation(static_cast<int>(state.range(0)), ScoreDistribution::kUniform);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AttrExpectedRanksBruteForce(rel));
  }
}
BENCHMARK(BM_BruteForce_Uniform)
    ->RangeMultiplier(4)
    ->Range(1000, 16000)
    ->Unit(benchmark::kMillisecond);

// Full query including the top-k selection, the paper's reported
// operation.
void BM_AERankTopK(benchmark::State& state) {
  AttrRelation rel =
      MakeRelation(static_cast<int>(state.range(0)), ScoreDistribution::kUniform);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AttrExpectedRankTopK(rel, 50));
  }
}
BENCHMARK(BM_AERankTopK)
    ->RangeMultiplier(4)
    ->Range(1000, 256000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace urank
