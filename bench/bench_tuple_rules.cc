// Experiment E7: sensitivity of T-ERank to the exclusion-rule structure —
// runtime and ranking shift as the fraction of tuples in multi-tuple rules
// and the rule sizes grow.
//
// Paper shape: the exact algorithm's cost is O(N log N) regardless of the
// rules (each tuple belongs to exactly one rule and the per-rule
// aggregates are computed in one scan), while the produced ranking does
// change — correlations matter semantically, not computationally.

#include <cstdio>
#include <utility>
#include <vector>

#include "core/expected_rank_tuple.h"
#include "gen/tuple_gen.h"
#include "util/rank_metrics.h"
#include "util/table.h"
#include "util/timer.h"

namespace urank {
namespace {

constexpr int kN = 200000;

TupleRelation MakeRelation(double fraction, int max_rule_size) {
  TupleGenConfig config;
  config.num_tuples = kN;
  config.multi_rule_fraction = fraction;
  config.max_rule_size = max_rule_size;
  config.seed = 23;
  return GenerateTupleRelation(config);
}

void RunExperiment() {
  Table table(
      "E7: T-ERank vs rule structure (N = 200000, k = 100)",
      {"multi-rule fraction", "max rule size", "#rules", "time (ms)",
       "top-k overlap vs independent"});

  // Baseline: fully independent tuples.
  TupleRelation independent = MakeRelation(0.0, 2);
  const std::vector<int> base_topk =
      IdsOf(TupleExpectedRankTopK(independent, 100));

  const std::vector<std::pair<double, int>> configs = {
      {0.0, 2}, {0.2, 2}, {0.4, 3}, {0.6, 4}, {0.8, 6}};
  for (const auto& [fraction, rule_size] : configs) {
    TupleRelation rel = MakeRelation(fraction, rule_size);
    const double ms = MedianTimeMs(5, [&] {
      volatile double sink = TupleExpectedRanks(rel)[0];
      (void)sink;
    });
    const std::vector<int> topk = IdsOf(TupleExpectedRankTopK(rel, 100));
    table.AddRow({FormatDouble(fraction, 1), FormatInt(rule_size),
                  FormatInt(rel.num_rules()), FormatDouble(ms, 2),
                  FormatDouble(TopKOverlap(topk, base_topk), 3)});
  }
  table.Print();
  std::printf(
      "\nRuntime stays flat as rules grow; only the ranking itself "
      "shifts.\n");
}

}  // namespace
}  // namespace urank

int main() {
  urank::RunExperiment();
  return 0;
}
