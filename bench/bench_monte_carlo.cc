// Experiment E13 (ablation): exact algorithms vs Monte Carlo sampling —
// the generic possible-worlds approach the paper contrasts against
// (Section 2). Reports the sampling error of the estimated expected ranks
// and top-k answers as a function of the sample budget, next to the exact
// algorithms' cost.
//
// Expected shape: error decays as 1/sqrt(samples); matching the exact
// top-k to high recall needs sample counts whose total cost far exceeds
// the exact O(N log N) algorithm — the reason the paper's dedicated
// algorithms matter.

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/expected_rank_tuple.h"
#include "core/monte_carlo.h"
#include "gen/tuple_gen.h"
#include "util/rank_metrics.h"
#include "util/table.h"
#include "util/timer.h"

namespace urank {
namespace {

constexpr int kN = 5000;
constexpr int kK = 50;

void RunExperiment() {
  TupleGenConfig config;
  config.num_tuples = kN;
  config.multi_rule_fraction = 0.3;
  config.max_rule_size = 3;
  config.seed = 31;
  TupleRelation rel = GenerateTupleRelation(config);

  std::vector<double> exact;
  const double exact_ms =
      MedianTimeMs(5, [&] { exact = TupleExpectedRanks(rel); });
  const std::vector<int> exact_topk = IdsOf(TupleExpectedRankTopK(rel, kK));

  Table table("E13: Monte Carlo vs exact T-ERank (N = 5000, k = 50)",
              {"samples", "time (ms)", "mean |err|", "max |err|",
               "top-k recall"});
  table.AddRow({"exact", FormatDouble(exact_ms, 2), "0", "0", "1.000"});

  for (int samples : {10, 100, 1000, 10000}) {
    Rng rng(99);
    std::vector<double> estimate;
    const double ms = MedianTimeMs(3, [&] {
      Rng fresh(99);
      estimate = TupleExpectedRanksMonteCarlo(rel, samples, fresh);
    });
    double mean_err = 0.0, max_err = 0.0;
    for (size_t i = 0; i < exact.size(); ++i) {
      const double err = std::fabs(estimate[i] - exact[i]);
      mean_err += err;
      max_err = std::max(max_err, err);
    }
    mean_err /= static_cast<double>(exact.size());
    std::vector<int> ids(static_cast<size_t>(rel.size()));
    for (int i = 0; i < rel.size(); ++i) ids[static_cast<size_t>(i)] = rel.tuple(i).id;
    const std::vector<int> mc_topk =
        IdsOf(TopKByStatistic(ids, estimate, kK));
    table.AddRow({FormatInt(samples), FormatDouble(ms, 2),
                  FormatDouble(mean_err, 3), FormatDouble(max_err, 3),
                  FormatDouble(RecallAgainst(mc_topk, exact_topk), 3)});
  }
  table.Print();
}

}  // namespace
}  // namespace urank

int main() {
  urank::RunExperiment();
  return 0;
}
