// Experiment O1: observability overhead on the serving path.
//
// The metrics registry and trace spans ride inside QueryEngine::Run, the
// DP kernels and ParallelFor, so their cost must be provably negligible.
// This harness times the N = 100k tuple expected-rank sweep (the paper's
// workhorse query) end to end — generate-free, prepare included — in two
// interleaved arms: instrumentation enabled (the default) and disabled at
// runtime via metrics::SetEnabled(false), which no-ops every mutation and
// is the closest runtime approximation of the URANK_METRICS=OFF build.
// The reported overhead is the median-over-reps ratio between the arms;
// the acceptance gate is < 2% in full mode.
//
// A micro section reports the raw hot-path costs (counter increment,
// histogram record, inactive span) for context; those numbers are printed
// but deliberately kept out of the JSON so the CI regression gate only
// matches the stable macro series.
//
// Flags:
//   --smoke        shrink the relation (~20k tuples) for CI smoke runs
//   --json=PATH    machine-readable results for tools/bench_runner.py
//                  (includes a "metrics" registry snapshot)

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/engine/query_engine.h"
#include "core/engine/trace.h"
#include "core/query.h"
#include "gen/tuple_gen.h"
#include "util/metrics.h"
#include "util/parallel.h"
#include "util/table.h"
#include "util/timer.h"

namespace urank {
namespace {

constexpr int kReps = 9;  // per arm; interleaved, median reported

double Median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

// One cold expected-rank sweep: fresh prepared state (so the memoized
// statistic is recomputed), a top-10 query, then a top-100 re-ranking that
// hits the warmed cache — exercising the miss and hit paths every rep.
double OneRep(const TupleRelation& rel) {
  Timer timer;
  QueryEngine engine(rel);
  RankingQuery q;
  q.semantics = RankingSemantics::kExpectedRank;
  q.k = 10;
  const QueryResult cold = engine.Run(q);
  q.k = 100;
  const QueryResult warm = engine.Run(q);
  // Consume the answers so the optimizer cannot drop the work.
  return cold.status.ok() && warm.status.ok() && !warm.answer.ids.empty()
             ? timer.ElapsedMs()
             : -1.0;
}

struct ArmResult {
  double median_ms = 0.0;
  std::vector<double> reps;
};

// Interleaved A/B: alternating reps cancel slow drift (thermal, cache,
// noisy neighbours) that back-to-back blocks would fold into one arm.
void RunArms(const TupleRelation& rel, ArmResult* enabled,
             ArmResult* disabled) {
  OneRep(rel);  // warm-up, discarded
  for (int rep = 0; rep < kReps; ++rep) {
    metrics::SetEnabled(true);
    enabled->reps.push_back(OneRep(rel));
    metrics::SetEnabled(false);
    disabled->reps.push_back(OneRep(rel));
  }
  metrics::SetEnabled(true);
  enabled->median_ms = Median(enabled->reps);
  disabled->median_ms = Median(disabled->reps);
}

// Raw hot-path costs, reported per operation. Loop counts are large
// enough that the per-call clock reads vanish.
void PrintMicroCosts() {
  constexpr long long kOps = 4000000;
  metrics::Registry registry;
  metrics::Counter& counter = registry.counter("urank_bench_micro_total");
  metrics::Histogram& hist = registry.histogram("urank_bench_micro_us");

  Table table("O1 micro: hot-path cost per operation (informational)",
              {"operation", "ns/op"});
  {
    Timer timer;
    for (long long i = 0; i < kOps; ++i) counter.Increment();
    table.AddRow({"counter increment",
                  FormatDouble(timer.ElapsedMs() * 1e6 / kOps, 2)});
  }
  {
    Timer timer;
    for (long long i = 0; i < kOps; ++i) {
      hist.Record(static_cast<double>(i & 1023));
    }
    table.AddRow({"histogram record",
                  FormatDouble(timer.ElapsedMs() * 1e6 / kOps, 2)});
  }
  {
    Timer timer;
    for (long long i = 0; i < kOps; ++i) {
      URANK_TRACE_SPAN("micro");  // no session active: one relaxed load
    }
    table.AddRow({"span, no session",
                  FormatDouble(timer.ElapsedMs() * 1e6 / kOps, 2)});
  }
  table.Print();
  std::printf("\n");
}

void WriteJson(const std::string& path, bool smoke, int n,
               const ArmResult& enabled, const ArmResult& disabled,
               double overhead_pct) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"harness\": \"bench_metrics_overhead\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"hardware_threads\": %d,\n", ResolveThreads(0));
  std::fprintf(f, "  \"overhead_pct\": %.3f,\n", overhead_pct);
  std::fprintf(f, "  \"benchmarks\": [\n");
  std::fprintf(f,
               "    {\"kernel\": \"expected_rank_metrics_on\", \"n\": %d, "
               "\"threads\": 1, \"simd_target\": \"%s\", "
               "\"wall_ms\": %.3f},\n",
               n, ToString(ActiveSimdTarget()), enabled.median_ms);
  std::fprintf(f,
               "    {\"kernel\": \"expected_rank_metrics_off\", \"n\": %d, "
               "\"threads\": 1, \"simd_target\": \"%s\", "
               "\"wall_ms\": %.3f}\n",
               n, ToString(ActiveSimdTarget()), disabled.median_ms);
  std::fprintf(f, "  ],\n");
  // The registry snapshot rides along so tools/bench_runner.py can export
  // it (--metrics-out) and CI can archive it as an artifact.
  std::fprintf(f, "  \"metrics\": %s\n",
               metrics::Registry::Global().RenderJsonSnapshot().c_str());
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

int RunHarness(bool smoke, const std::string& json_path) {
  const int n = smoke ? 20000 : 100000;
  TupleGenConfig config;
  config.num_tuples = n;
  config.seed = 31;
  const TupleRelation rel = GenerateTupleRelation(config);

  ArmResult enabled;
  ArmResult disabled;
  RunArms(rel, &enabled, &disabled);

  const double overhead_pct =
      disabled.median_ms > 0.0
          ? (enabled.median_ms / disabled.median_ms - 1.0) * 100.0
          : 0.0;

  Table table("O1: expected-rank sweep, metrics on vs off (N = " +
                  FormatInt(n) + ", median of " + FormatInt(kReps) +
                  " interleaved reps)",
              {"arm", "median ms", "overhead"});
  table.AddRow({"metrics disabled", FormatDouble(disabled.median_ms, 3),
                "baseline"});
  table.AddRow({"metrics enabled", FormatDouble(enabled.median_ms, 3),
                FormatDouble(overhead_pct, 2) + "%"});
  table.Print();
  std::printf("\n");

  PrintMicroCosts();

  const bool compiled_in = metrics::Enabled();
  std::printf("instrumentation compiled %s; target: overhead < 2%% -> %s\n",
              compiled_in ? "in" : "out (URANK_METRICS=OFF)",
              overhead_pct < 2.0 ? "met" : "NOT met");
  if (!json_path.empty()) {
    WriteJson(json_path, smoke, n, enabled, disabled, overhead_pct);
  }
  // Gate only in full mode: smoke reps on loaded CI runners are too short
  // to separate sub-percent effects from scheduler noise.
  return (!smoke && overhead_pct >= 2.0) ? 1 : 0;
}

}  // namespace
}  // namespace urank

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json=PATH]\n", argv[0]);
      return 2;
    }
  }
  return urank::RunHarness(smoke, json_path);
}
