// Experiment E14 (ablation, paper Appendix A): continuous score pdfs are
// discretized into s-point equal-probability pdfs and ranked with the
// discrete algorithms. Reports how the resulting expected-rank ordering
// converges to a high-resolution reference as s grows, and the runtime
// cost of the extra resolution.
//
// Expected shape: the ordering stabilizes at modest s (the discrete
// algorithms' O(sN log sN) cost makes generous s cheap); Kendall distance
// to the reference drops steeply between s = 1 and s ≈ 16.

#include <cstdio>
#include <memory>
#include <vector>

#include "core/expected_rank_attr.h"
#include "model/continuous.h"
#include "util/rng.h"
#include "util/rank_metrics.h"
#include "util/table.h"
#include "util/timer.h"

namespace urank {
namespace {

constexpr int kN = 2000;
constexpr int kReferenceBuckets = 256;

// A heterogeneous population of continuous score distributions.
std::vector<std::unique_ptr<ContinuousPdf>> BuildPopulation() {
  std::vector<std::unique_ptr<ContinuousPdf>> pdfs;
  Rng rng(41);
  for (int i = 0; i < kN; ++i) {
    const double centre = rng.Uniform(0.0, 1000.0);
    switch (rng.UniformInt(0, 2)) {
      case 0:
        pdfs.push_back(std::make_unique<UniformScorePdf>(
            centre, centre + rng.Uniform(5.0, 120.0)));
        break;
      case 1:
        pdfs.push_back(std::make_unique<GaussianScorePdf>(
            centre, rng.Uniform(2.0, 60.0)));
        break;
      default: {
        const double width = rng.Uniform(10.0, 150.0);
        pdfs.push_back(std::make_unique<TriangularScorePdf>(
            centre, centre + rng.Uniform(0.0, 1.0) * width, centre + width));
        break;
      }
    }
  }
  return pdfs;
}

AttrRelation Discretize(
    const std::vector<std::unique_ptr<ContinuousPdf>>& pdfs, int buckets) {
  std::vector<AttrTuple> tuples;
  tuples.reserve(pdfs.size());
  for (size_t i = 0; i < pdfs.size(); ++i) {
    tuples.push_back(
        DiscretizeToTuple(static_cast<int>(i), *pdfs[i], buckets));
  }
  return AttrRelation(std::move(tuples));
}

void RunExperiment() {
  const auto pdfs = BuildPopulation();
  const AttrRelation reference = Discretize(pdfs, kReferenceBuckets);
  const std::vector<int> reference_order =
      IdsOf(AttrExpectedRankTopK(reference, kN));

  Table table(
      "E14: continuous-pdf discretization (N = 2000, reference s = 256)",
      {"buckets s", "discretize (ms)", "rank (ms)", "Kendall tau vs ref",
       "top-50 recall"});
  for (int buckets : {1, 2, 4, 8, 16, 32, 64}) {
    AttrRelation rel = Discretize(pdfs, buckets);
    const double build_ms =
        MedianTimeMs(3, [&] { Discretize(pdfs, buckets); });
    std::vector<int> order;
    const double rank_ms = MedianTimeMs(3, [&] {
      order = IdsOf(AttrExpectedRankTopK(rel, kN));
    });
    std::vector<int> top50(order.begin(), order.begin() + 50);
    std::vector<int> ref50(reference_order.begin(),
                           reference_order.begin() + 50);
    table.AddRow({FormatInt(buckets), FormatDouble(build_ms, 1),
                  FormatDouble(rank_ms, 2),
                  FormatDouble(KendallTauDistance(order, reference_order), 4),
                  FormatDouble(RecallAgainst(top50, ref50), 3)});
  }
  table.Print();
}

}  // namespace
}  // namespace urank

int main() {
  urank::RunExperiment();
  return 0;
}
