// Experiment E19: QueryEngine batch throughput — eight mixed-semantics
// queries against one N = 10k tuple-level relation, evaluated (a) the
// legacy way, one RunRankingQuery facade call per query (each call
// re-prepares the relation and recomputes every statistic), and (b) as one
// QueryEngine::RunBatch over shared prepared state.
//
// The batch wins twice: queries that rank by the same memoized statistic
// (the three quantile queries collapse to two distribution sweeps; the
// k=10/k=100 pairs collapse to one) compute it once, and independent
// queries run on parallel workers. The acceptance target for this harness
// is a >= 2x end-to-end speedup.
//
// Flags:
//   --smoke        shrink the relations for CI smoke runs
//   --json=PATH    machine-readable results for tools/bench_runner.py

#include <cstdio>
#include <string>
#include <vector>

#include "core/engine/query_engine.h"
#include "core/query.h"
#include "gen/tuple_gen.h"
#include "util/parallel.h"
#include "util/simd.h"

// E19 measures the deprecated RunRankingQuery facade against the engine;
// calling it is the benchmark's purpose.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#include "util/table.h"
#include "util/timer.h"

namespace urank {
namespace {

constexpr int kThreads = 8;

// One machine-readable series point, keyed by (kernel, n, threads,
// simd_target) in tools/bench_runner.py --compare.
struct Measurement {
  std::string kernel;
  int n = 0;
  int threads = 0;
  double wall_ms = 0.0;
};

std::vector<Measurement>& Collected() {
  static std::vector<Measurement> rows;
  return rows;
}

void Collect(const std::string& kernel, int n, int threads, double wall_ms) {
  Collected().push_back({kernel, n, threads, wall_ms});
}

RankingQuery MakeQuery(RankingSemantics semantics, int k, double phi = 0.5) {
  RankingQuery q;
  q.semantics = semantics;
  q.k = k;
  q.phi = phi;
  q.threshold = 0.1;
  return q;
}

// The eight-query batch, shaped like a dashboard refresh: two expected-rank
// selections (one memoized sweep), three median/quantile queries at
// phi = 0.5 (one rank-distribution sweep shared by all three), PT-k and
// Global-Topk at the same k (one top-k-probability sweep shared by both),
// and a U-Topk. The facade recomputes every one of those sweeps per call;
// the engine runs the two heavy sweeps once each, on parallel workers.
std::vector<RankingQuery> MakeBatch() {
  return {
      MakeQuery(RankingSemantics::kExpectedRank, 10),
      MakeQuery(RankingSemantics::kExpectedRank, 100),
      MakeQuery(RankingSemantics::kMedianRank, 10),
      MakeQuery(RankingSemantics::kQuantileRank, 100, 0.5),
      MakeQuery(RankingSemantics::kQuantileRank, 50, 0.5),
      MakeQuery(RankingSemantics::kPTk, 10),
      MakeQuery(RankingSemantics::kGlobalTopk, 10),
      MakeQuery(RankingSemantics::kUTopk, 10),
  };
}

void RunExperiment(int kN) {
  TupleGenConfig config;  // paper baseline: N=10k, 30% multi-tuple rules
  config.num_tuples = kN;
  config.seed = 23;
  const TupleRelation rel = GenerateTupleRelation(config);
  const std::vector<RankingQuery> batch = MakeBatch();

  // (a) Legacy facade: every call prepares from scratch.
  Timer facade_timer;
  std::vector<RankingAnswer> facade_answers;
  facade_answers.reserve(batch.size());
  for (const RankingQuery& q : batch) {
    facade_answers.push_back(RunRankingQuery(rel, q));
  }
  const double facade_ms = facade_timer.ElapsedMs();

  // (b) Engine: prepare once, run the batch on a worker pool. The timer
  // covers preparation, so the comparison is end-to-end.
  Timer engine_timer;
  const QueryEngine engine(rel);
  const std::vector<QueryResult> results = engine.RunBatch(batch, kThreads);
  const double engine_ms = engine_timer.ElapsedMs();

  int mismatches = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    if (results[i].answer.ids != facade_answers[i].ids) ++mismatches;
  }

  Collect("engine_facade_sequential", kN, 1, facade_ms);
  Collect("engine_batch", kN, kThreads, engine_ms);

  Table per_query("E19a: per-query engine statistics (N = " + FormatInt(kN) +
                      ", 8 worker threads)",
                  {"semantics", "k", "wall ms", "cache hit", "dp cells",
                   "pruned"});
  for (size_t i = 0; i < batch.size(); ++i) {
    const QueryStats& s = results[i].stats;
    per_query.AddRow({ToString(batch[i].semantics), FormatInt(batch[i].k),
                      FormatDouble(s.wall_ms, 3),
                      s.reused_cache ? "yes" : "no", FormatInt(s.dp_cells),
                      FormatInt(s.tuples_pruned)});
  }
  per_query.Print();
  std::printf("\n");

  const double speedup = engine_ms > 0.0 ? facade_ms / engine_ms : 0.0;
  Table summary("E19b: facade-sequential vs engine-batch end to end",
                {"mode", "total ms", "speedup", "answers match"});
  summary.AddRow({"facade x8", FormatDouble(facade_ms, 2), "1.00", "-"});
  summary.AddRow({"engine batch", FormatDouble(engine_ms, 2),
                  FormatDouble(speedup, 2), mismatches == 0 ? "yes" : "NO"});
  summary.Print();
  std::printf("\ntarget: speedup >= 2x -> %s\n",
              speedup >= 2.0 ? "met" : "NOT met");
}

// E19c: inter-query (RunBatch workers) vs intra-query (ParallelismOptions
// chunks) parallelism, alone and combined, over one larger relation whose
// sweeps span several chunks. Every configuration re-prepares from scratch
// — otherwise the second run would be served from the statistic cache —
// and every configuration's answers must match the serial baseline
// exactly.
void RunScalingGrid(int kGridN) {
  TupleGenConfig config;
  config.num_tuples = kGridN;
  config.seed = 29;
  const TupleRelation rel = GenerateTupleRelation(config);
  const std::vector<RankingQuery> batch = MakeBatch();

  struct GridPoint {
    int batch_threads;
    int intra_threads;
  };
  const GridPoint grid[] = {{1, 1}, {8, 1}, {1, 8}, {8, 8}};

  std::vector<QueryResult> baseline;
  double baseline_ms = 0.0;
  Table table("E19c: inter vs intra-query scaling (N = " +
                  FormatInt(kGridN) + ", fresh prepare per config)",
              {"batch threads", "intra threads", "total ms", "speedup",
               "answers match"});
  for (const GridPoint& point : grid) {
    ParallelismOptions par;
    par.threads = point.intra_threads;
    Timer timer;
    QueryEngine engine(rel);
    engine.set_parallelism(par);
    const std::vector<QueryResult> results =
        engine.RunBatch(batch, point.batch_threads);
    const double ms = timer.ElapsedMs();

    bool match = true;
    if (baseline.empty()) {
      baseline = results;
      baseline_ms = ms;
    } else {
      for (size_t i = 0; i < results.size(); ++i) {
        match = match && results[i].answer.ids == baseline[i].answer.ids &&
                results[i].answer.statistics == baseline[i].answer.statistics;
      }
    }
    Collect("engine_grid_intra" + FormatInt(point.intra_threads), kGridN,
            point.batch_threads, ms);
    table.AddRow({FormatInt(point.batch_threads),
                  FormatInt(point.intra_threads), FormatDouble(ms, 2),
                  FormatDouble(ms > 0.0 ? baseline_ms / ms : 0.0, 2),
                  match ? "yes" : "NO"});
  }
  table.Print();
}

void WriteJson(const std::string& path, bool smoke) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  const std::vector<Measurement>& rows = Collected();
  std::fprintf(f, "{\n  \"harness\": \"bench_engine_batch\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"hardware_threads\": %d,\n", ResolveThreads(0));
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Measurement& m = rows[i];
    std::fprintf(f,
                 "    {\"kernel\": \"%s\", \"n\": %d, \"threads\": %d, "
                 "\"simd_target\": \"%s\", \"wall_ms\": %.3f}%s\n",
                 m.kernel.c_str(), m.n, m.threads,
                 ToString(ActiveSimdTarget()), m.wall_ms,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace urank

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json=PATH]\n", argv[0]);
      return 2;
    }
  }
  // Smoke sizes keep every sweep multi-chunk (several 8192-item chunks)
  // while fitting a CI time budget.
  urank::RunExperiment(smoke ? 4000 : 10000);
  std::printf("\n");
  urank::RunScalingGrid(smoke ? 12000 : 24000);
  if (!json_path.empty()) urank::WriteJson(json_path, smoke);
  return 0;
}
