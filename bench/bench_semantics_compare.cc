// Experiment E10: cross-semantics comparison — how similar are the top-k
// answers (and full orderings) produced by the different ranking
// definitions on the same uncertain relation?
//
// Reported, as in the paper's comparison study: pairwise top-k set overlap
// for several k, and Kendall tau distance between the full orderings of
// the rank-statistic-based definitions.
//
// Paper shape: expected/median/quantile ranks agree closely with one
// another; expected score diverges when probabilities vary; U-kRanks and
// Global-Topk diverge most at small k.

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/expected_rank_tuple.h"
#include "core/quantile_rank.h"
#include "core/ranking.h"
#include "core/semantics/expected_score.h"
#include "core/semantics/global_topk.h"
#include "core/semantics/u_kranks.h"
#include "core/semantics/u_topk.h"
#include "gen/tuple_gen.h"
#include "util/rank_metrics.h"
#include "util/table.h"

namespace urank {
namespace {

constexpr int kN = 2000;

struct NamedSemantics {
  std::string name;
  std::function<std::vector<int>(const TupleRelation&, int)> topk;
};

std::vector<NamedSemantics> AllSemantics() {
  return {
      {"E-Rank",
       [](const TupleRelation& r, int k) {
         return IdsOf(TupleExpectedRankTopK(r, k));
       }},
      {"M-Rank",
       [](const TupleRelation& r, int k) {
         return IdsOf(TupleQuantileRankTopK(r, k, 0.5));
       }},
      {"Q-Rank(.75)",
       [](const TupleRelation& r, int k) {
         return IdsOf(TupleQuantileRankTopK(r, k, 0.75));
       }},
      {"Global-Topk",
       [](const TupleRelation& r, int k) { return TupleGlobalTopK(r, k); }},
      // Feasible at this scale only because of the polynomial cutoff
      // sweep (E17); the answer can be shorter than k.
      {"U-Topk",
       [](const TupleRelation& r, int k) { return TupleUTopK(r, k).ids; }},
      {"U-kRanks",
       [](const TupleRelation& r, int k) {
         std::vector<int> ids = TupleUKRanks(r, k);
         std::vector<int> real;
         for (int id : ids) {
           if (id >= 0) real.push_back(id);
         }
         return real;
       }},
      {"E-Score",
       [](const TupleRelation& r, int k) {
         return IdsOf(TupleExpectedScoreTopK(r, k));
       }},
  };
}

void RunExperiment() {
  TupleGenConfig config;
  config.num_tuples = kN;
  config.multi_rule_fraction = 0.3;
  config.max_rule_size = 3;
  config.seed = 29;
  TupleRelation rel = GenerateTupleRelation(config);
  const std::vector<NamedSemantics> semantics = AllSemantics();

  for (int k : {10, 50, 200}) {
    Table overlap("E10: pairwise top-" + std::to_string(k) +
                      " overlap (N = 2000)",
                  [&] {
                    std::vector<std::string> cols = {"semantics"};
                    for (const auto& s : semantics) cols.push_back(s.name);
                    return cols;
                  }());
    std::vector<std::vector<int>> answers;
    answers.reserve(semantics.size());
    for (const auto& s : semantics) answers.push_back(s.topk(rel, k));
    for (size_t i = 0; i < semantics.size(); ++i) {
      std::vector<std::string> row = {semantics[i].name};
      for (size_t j = 0; j < semantics.size(); ++j) {
        row.push_back(FormatDouble(TopKOverlap(answers[i], answers[j]), 2));
      }
      overlap.AddRow(std::move(row));
    }
    overlap.Print();
    std::printf("\n");
  }

  // Kendall tau over the FULL orderings of the statistic-based
  // definitions (all produce a total order over all N tuples).
  const std::vector<int> er = IdsOf(TupleExpectedRankTopK(rel, kN));
  const std::vector<int> mr = IdsOf(TupleQuantileRankTopK(rel, kN, 0.5));
  const std::vector<int> qr = IdsOf(TupleQuantileRankTopK(rel, kN, 0.75));
  const std::vector<int> es = IdsOf(TupleExpectedScoreTopK(rel, kN));
  Table tau("E10: rank-correlation distances between full orderings",
            {"pair", "Kendall tau", "Spearman footrule"});
  auto add = [&](const char* name, const std::vector<int>& a,
                 const std::vector<int>& b) {
    tau.AddRow({name, FormatDouble(KendallTauDistance(a, b), 4),
                FormatDouble(SpearmanFootruleDistance(a, b), 4)});
  };
  add("E-Rank vs M-Rank", er, mr);
  add("E-Rank vs Q-Rank(.75)", er, qr);
  add("M-Rank vs Q-Rank(.75)", mr, qr);
  add("E-Rank vs E-Score", er, es);
  tau.Print();
}

}  // namespace
}  // namespace urank

int main() {
  urank::RunExperiment();
  return 0;
}
