#!/usr/bin/env python3
"""Runs the bench/ suite and merges the results into BENCH_9.json.

The perf trajectory lives in BENCH_<PR>.json files at the repo root: one
machine-readable snapshot per performance-focused PR, so later PRs can
diff against it. This runner executes the registered benchmark binaries
from an existing build tree and writes one merged JSON document.

Usage:
    python3 tools/bench_runner.py [--build-dir build] [--smoke]
                                  [--out BENCH_9.json] [--only a,b,...]
                                  [--compare BENCH_7.json] [--repeat N]
                                  [--metrics-out metrics.json]
                                  [--max-seconds S]

Modes:
    --smoke   run only the benchmarks marked smoke-safe, with their
              reduced problem sizes — a few minutes, used by the CI
              bench-regression job.
    (default) run the full registered suite, including the
              google-benchmark timing binaries.

--repeat runs each harness binary N times and keeps the per-series
MINIMUM wall time (best-of-N): the minimum is the scheduling-noise-free
estimate of a deterministic workload's cost, which is what a regression
gate should diff. The committed baseline and the CI bench-regression job
both use --repeat 3; single-shot wall times on a loaded CI worker vary
by far more than the 10% tolerance.

--metrics-out extracts the metrics-registry snapshots that json_harness
binaries embed under a "metrics" key (see docs/OBSERVABILITY.md) into one
standalone file, which CI uploads as a workflow artifact.

--max-seconds caps each benchmark binary's wall time. A binary that
exceeds its budget is killed and recorded as skipped (with
"timed_out": true), every skipped series is summarized at the end of the
run, and timeouts never fail the run: the budget exists so one
pathological series (say, the N=1M full suite on a one-core worker)
cannot eat the whole CI job — a silent hang is worse than a hole in the
snapshot. Repeats of a timed-out binary are not attempted. --skipped-out writes
that skipped-series summary to a JSON file, which the CI bench-regression
job uploads as a workflow artifact.

--compare diffs the freshly-written snapshot against a baseline
BENCH_<PR>.json: series are matched by (kernel, n, threads, simd_target)
for the harness benchmarks (baselines written before the simd_target
field existed match on (kernel, n, threads)) and by benchmark name for
the google-benchmark binaries, a per-series speedup ratio
(baseline time / new time) is printed, and any matched series that is
more than 10% SLOWER than the baseline fails the run. Series present on
only one side (new dispatch sweeps, renamed benchmarks) are reported but
never fail.

Exit status is nonzero when any benchmark binary fails (in particular,
bench_parallel_kernels fails on any bit-identity violation between
thread counts) or when --compare finds a >10% regression.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time

BENCH_ID = "BENCH_9"
TITLE = ("Mutable relations: incremental ingestion throughput and "
         "read latency under copy-on-write epoch publishes")

# A matched series must not be slower than baseline by more than this.
REGRESSION_TOLERANCE = 0.10


class Bench:
    """One registered benchmark binary.

    kind:
      json_harness -- plain harness that writes its own JSON via --json=
      harness      -- plain harness; only wall time and exit code recorded
      gbench       -- google-benchmark binary; per-benchmark timings parsed
                      from --benchmark_format=json output
    """

    def __init__(self, name, binary, kind, smoke=False, smoke_args=()):
        self.name = name
        self.binary = binary
        self.kind = kind
        self.smoke = smoke
        self.smoke_args = list(smoke_args)


REGISTRY = [
    Bench("serve", "bench_serve", "json_harness",
          smoke=True, smoke_args=["--smoke"]),
    Bench("parallel_kernels", "bench_parallel_kernels", "json_harness",
          smoke=True, smoke_args=["--smoke"]),
    Bench("numa_scaling", "bench_numa_scaling", "json_harness",
          smoke=True, smoke_args=["--smoke"]),
    Bench("engine_batch", "bench_engine_batch", "json_harness",
          smoke=True, smoke_args=["--smoke"]),
    Bench("metrics_overhead", "bench_metrics_overhead", "json_harness",
          smoke=True, smoke_args=["--smoke"]),
    Bench("million_scale", "bench_million_scale", "json_harness",
          smoke=True, smoke_args=["--smoke"]),
    Bench("mutation_throughput", "bench_mutation_throughput", "json_harness",
          smoke=True, smoke_args=["--smoke"]),
    Bench("attr_prune", "bench_attr_prune", "harness"),
    Bench("tuple_prune", "bench_tuple_prune", "harness"),
    Bench("tuple_rules", "bench_tuple_rules", "harness"),
    Bench("semantics_compare", "bench_semantics_compare", "harness"),
    Bench("ptk_prune", "bench_ptk_prune", "harness"),
    Bench("pruned_semantics", "bench_pruned_semantics", "harness"),
    Bench("attr_exact", "bench_attr_exact", "gbench"),
    Bench("tuple_exact", "bench_tuple_exact", "gbench"),
    Bench("quantile_attr", "bench_quantile_attr", "gbench"),
    Bench("quantile_tuple", "bench_quantile_tuple", "gbench"),
    Bench("poisson_binomial", "bench_poisson_binomial", "gbench"),
]


def run_one(bench, build_dir, smoke, repeat=1, max_seconds=0.0):
    """Runs `bench` `repeat` times and keeps the best (minimum) time per
    series. Non-timing fields (metrics snapshot, exit codes, tails) come
    from the first failing run if any, else the first run."""
    merged = None
    for _ in range(max(1, repeat)):
        result = run_once(bench, build_dir, smoke, max_seconds)
        if merged is None:
            merged = result
        else:
            merged["wall_ms"] = min(merged.get("wall_ms", 0.0),
                                    result.get("wall_ms", 0.0))
            merged["benchmarks"] = merge_best_rows(
                merged.get("benchmarks", []), result.get("benchmarks", []))
        if merged.get("exit_code", 0) != 0 or "skipped" in merged:
            break  # a failure or missing binary will not improve with reps
    return merged


def merge_best_rows(current, candidate):
    """Per-series minimum wall time across repetitions of one binary."""
    best = {series_key(r): r for r in current}
    order = [series_key(r) for r in current]
    for row in candidate:
        key = series_key(row)
        if key not in best:
            best[key] = row
            order.append(key)
            continue
        t_new, t_old = row_time_ms(row), row_time_ms(best[key])
        if t_new is not None and (t_old is None or t_new < t_old):
            best[key] = row
    return [best[k] for k in order]


def run_once(bench, build_dir, smoke, max_seconds=0.0):
    binary = os.path.join(build_dir, "bench", bench.binary)
    if not os.path.exists(binary):
        return {"skipped": f"binary not found: {binary}"}

    args = [binary]
    result = {}
    json_path = None
    if bench.kind == "json_harness":
        fd, json_path = tempfile.mkstemp(suffix=".json")
        os.close(fd)
        args.append(f"--json={json_path}")
    if smoke:
        args.extend(bench.smoke_args)
    if bench.kind == "gbench":
        args.append("--benchmark_format=json")
        if smoke:
            args.append("--benchmark_min_time=0.05s")

    print(f"[bench_runner] {bench.name}: {' '.join(args)}", flush=True)
    start = time.monotonic()
    try:
        proc = subprocess.run(args, capture_output=True, text=True,
                              timeout=max_seconds if max_seconds > 0
                              else None)
    except subprocess.TimeoutExpired:
        if json_path is not None:
            os.unlink(json_path)
        return {"skipped": f"timed out after {max_seconds:g}s budget "
                           f"(--max-seconds)",
                "timed_out": True,
                "wall_ms": round((time.monotonic() - start) * 1000.0, 1)}
    result["wall_ms"] = round((time.monotonic() - start) * 1000.0, 1)
    result["exit_code"] = proc.returncode
    if proc.returncode != 0:
        # Keep the tail of the output so the failure is diagnosable from
        # the JSON artifact alone.
        result["stderr_tail"] = proc.stderr.splitlines()[-10:]
        result["stdout_tail"] = proc.stdout.splitlines()[-10:]

    if bench.kind == "json_harness" and json_path is not None:
        try:
            with open(json_path) as f:
                result.update(json.load(f))
        except (OSError, json.JSONDecodeError) as e:
            result["json_error"] = str(e)
        finally:
            os.unlink(json_path)
    elif bench.kind == "gbench" and proc.returncode == 0:
        try:
            gb = json.loads(proc.stdout)
            result["benchmarks"] = [
                {
                    "name": b.get("name"),
                    "real_time_ms": round(b.get("real_time", 0.0) / 1e6, 3)
                    if b.get("time_unit") == "ns"
                    else b.get("real_time"),
                    "time_unit": "ms"
                    if b.get("time_unit") == "ns"
                    else b.get("time_unit"),
                    "iterations": b.get("iterations"),
                }
                for b in gb.get("benchmarks", [])
            ]
        except json.JSONDecodeError as e:
            result["json_error"] = str(e)
    return result


def series_key(row):
    """Stable identity of one measurement row across snapshots.

    Harness rows carry (kernel, n, threads[, simd_target]); BENCH_3 and
    older predate the simd_target field, so a missing value means the
    scalar code path. google-benchmark rows are identified by name.
    """
    if "kernel" in row:
        return (row.get("kernel"), row.get("n"), row.get("threads"),
                row.get("simd_target", "scalar"))
    return (row.get("name"),)


def row_time_ms(row):
    for field in ("wall_ms", "real_time_ms"):
        if isinstance(row.get(field), (int, float)):
            return float(row[field])
    return None


def compare_docs(baseline, new):
    """Prints per-series speedups of `new` over `baseline`.

    Returns the number of matched series regressing by more than
    REGRESSION_TOLERANCE.
    """
    regressions = 0
    matched = 0
    print(f"[bench_runner] compare: {new.get('bench_id')} vs "
          f"{baseline.get('bench_id')} baseline")
    for name, new_result in sorted(new.get("results", {}).items()):
        base_result = baseline.get("results", {}).get(name)
        if base_result is None:
            print(f"  {name}: not in baseline, skipped")
            continue
        base_rows = {series_key(r): r
                     for r in base_result.get("benchmarks", [])}
        # Baselines written before the simd_target field carry implicit
        # scalar keys; match those on (kernel, n, threads) so a new
        # snapshot whose default dispatch target is a SIMD table still
        # diffs against them.
        base_legacy = {series_key(r)[:3]: series_key(r)
                       for r in base_result.get("benchmarks", [])
                       if "kernel" in r and "simd_target" not in r}
        for row in new_result.get("benchmarks", []):
            key = series_key(row)
            new_ms = row_time_ms(row)
            base_row = base_rows.pop(key, None)
            if base_row is None and "kernel" in row:
                legacy_key = base_legacy.get(key[:3])
                if legacy_key is not None:
                    base_row = base_rows.pop(legacy_key, None)
            if new_ms is None:
                continue
            label = "/".join(str(p) for p in key if p is not None)
            if base_row is None or row_time_ms(base_row) is None:
                print(f"  {name} {label}: new series ({new_ms:.3f} ms)")
                continue
            base_ms = row_time_ms(base_row)
            matched += 1
            ratio = base_ms / new_ms if new_ms > 0 else float("inf")
            verdict = ""
            if new_ms > base_ms * (1.0 + REGRESSION_TOLERANCE):
                verdict = "  <-- REGRESSION"
                regressions += 1
            print(f"  {name} {label}: {base_ms:.3f} ms -> {new_ms:.3f} ms "
                  f"(speedup {ratio:.2f}x){verdict}")
        for key in base_rows:
            label = "/".join(str(p) for p in key if p is not None)
            print(f"  {name} {label}: missing from new snapshot")
    print(f"[bench_runner] compare: {matched} series matched, "
          f"{regressions} regression(s) beyond "
          f"{REGRESSION_TOLERANCE:.0%}")
    return regressions


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument("--out", default=f"{BENCH_ID}.json")
    parser.add_argument("--only", default="",
                        help="comma-separated registry names")
    parser.add_argument("--list", action="store_true",
                        help="list registered benchmarks and exit")
    parser.add_argument("--compare", default="",
                        help="baseline BENCH_<PR>.json to diff against; "
                             "exits 1 on a >10%% per-series regression")
    parser.add_argument("--repeat", type=int, default=1,
                        help="run each binary N times, keep per-series "
                             "minimum wall time (CI uses 3)")
    parser.add_argument("--metrics-out", default="",
                        help="write the metrics-registry snapshots embedded "
                             "in harness JSON to this file")
    parser.add_argument("--max-seconds", type=float, default=0.0,
                        help="per-binary wall-time budget; a binary over "
                             "budget is killed and recorded as skipped "
                             "(never a failure). 0 disables the budget")
    parser.add_argument("--skipped-out", default="",
                        help="write the skipped-series report (name, "
                             "reason, timed_out flag) to this JSON file "
                             "so CI can upload it as an artifact")
    args = parser.parse_args()

    if args.list:
        for b in REGISTRY:
            mode = "smoke+full" if b.smoke else "full"
            print(f"{b.name:20s} {b.kind:12s} [{mode}] {b.binary}")
        return 0

    selected = REGISTRY
    if args.only:
        names = {n.strip() for n in args.only.split(",") if n.strip()}
        unknown = names - {b.name for b in REGISTRY}
        if unknown:
            print(f"unknown benchmarks: {sorted(unknown)}", file=sys.stderr)
            return 2
        selected = [b for b in REGISTRY if b.name in names]
    elif args.smoke:
        selected = [b for b in REGISTRY if b.smoke]

    doc = {
        "bench_id": BENCH_ID,
        "title": TITLE,
        "mode": "smoke" if args.smoke else "full",
        "repeat": max(1, args.repeat),
        "hardware_threads": os.cpu_count() or 1,
        "results": {},
    }
    if args.max_seconds > 0:
        doc["max_seconds"] = args.max_seconds
    failures = 0
    for bench in selected:
        result = run_one(bench, args.build_dir, args.smoke, args.repeat,
                         args.max_seconds)
        doc["results"][bench.name] = result
        if result.get("exit_code", 0) != 0:
            failures += 1
            print(f"[bench_runner] {bench.name} FAILED "
                  f"(exit {result['exit_code']})", file=sys.stderr)

    with open(args.out, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"[bench_runner] wrote {args.out} "
          f"({len(doc['results'])} benchmarks, {failures} failures)")

    skipped = [(name, result["skipped"])
               for name, result in doc["results"].items()
               if "skipped" in result]
    if skipped:
        print(f"[bench_runner] {len(skipped)} series skipped:")
        for name, reason in skipped:
            print(f"  {name}: {reason}")
    if args.skipped_out:
        report = {
            "bench_id": BENCH_ID,
            "mode": doc["mode"],
            "skipped": [{"name": name,
                         "reason": reason,
                         "timed_out": bool(
                             doc["results"][name].get("timed_out"))}
                        for name, reason in skipped],
        }
        if args.max_seconds > 0:
            report["max_seconds"] = args.max_seconds
        with open(args.skipped_out, "w") as f:
            json.dump(report, f, indent=2)
            f.write("\n")
        print(f"[bench_runner] wrote {args.skipped_out} "
              f"({len(skipped)} skipped series)")

    if args.metrics_out:
        snapshots = {name: result["metrics"]
                     for name, result in doc["results"].items()
                     if isinstance(result.get("metrics"), dict)}
        with open(args.metrics_out, "w") as f:
            json.dump({"bench_id": BENCH_ID, "snapshots": snapshots}, f,
                      indent=2)
            f.write("\n")
        print(f"[bench_runner] wrote {args.metrics_out} "
              f"({len(snapshots)} registry snapshot(s))")

    regressions = 0
    if args.compare:
        try:
            with open(args.compare) as f:
                baseline = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"[bench_runner] cannot read baseline "
                  f"{args.compare}: {e}", file=sys.stderr)
            return 2
        regressions = compare_docs(baseline, doc)

    return 1 if failures or regressions else 0


if __name__ == "__main__":
    sys.exit(main())
