#!/usr/bin/env python3
"""Runs the bench/ suite and merges the results into BENCH_3.json.

The perf trajectory lives in BENCH_<PR>.json files at the repo root: one
machine-readable snapshot per performance-focused PR, so later PRs can
diff against it. This runner executes the registered benchmark binaries
from an existing build tree and writes one merged JSON document.

Usage:
    python3 tools/bench_runner.py [--build-dir build] [--smoke]
                                  [--out BENCH_3.json] [--only a,b,...]

Modes:
    --smoke   run only the benchmarks marked smoke-safe, with their
              reduced problem sizes — a few minutes, used by the CI
              bench-smoke job.
    (default) run the full registered suite, including the
              google-benchmark timing binaries.

Exit status is nonzero when any benchmark binary fails (in particular,
bench_parallel_kernels fails on any bit-identity violation between
thread counts).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time

BENCH_ID = "BENCH_3"
TITLE = ("Intra-query parallel DP kernels: deterministic ParallelFor, "
         "allocation-free sweeps")


class Bench:
    """One registered benchmark binary.

    kind:
      json_harness -- plain harness that writes its own JSON via --json=
      harness      -- plain harness; only wall time and exit code recorded
      gbench       -- google-benchmark binary; per-benchmark timings parsed
                      from --benchmark_format=json output
    """

    def __init__(self, name, binary, kind, smoke=False, smoke_args=()):
        self.name = name
        self.binary = binary
        self.kind = kind
        self.smoke = smoke
        self.smoke_args = list(smoke_args)


REGISTRY = [
    Bench("parallel_kernels", "bench_parallel_kernels", "json_harness",
          smoke=True, smoke_args=["--smoke"]),
    Bench("engine_batch", "bench_engine_batch", "harness"),
    Bench("attr_prune", "bench_attr_prune", "harness"),
    Bench("tuple_prune", "bench_tuple_prune", "harness"),
    Bench("tuple_rules", "bench_tuple_rules", "harness"),
    Bench("semantics_compare", "bench_semantics_compare", "harness"),
    Bench("ptk_prune", "bench_ptk_prune", "harness"),
    Bench("pruned_semantics", "bench_pruned_semantics", "harness"),
    Bench("attr_exact", "bench_attr_exact", "gbench"),
    Bench("tuple_exact", "bench_tuple_exact", "gbench"),
    Bench("quantile_attr", "bench_quantile_attr", "gbench"),
    Bench("quantile_tuple", "bench_quantile_tuple", "gbench"),
    Bench("poisson_binomial", "bench_poisson_binomial", "gbench"),
]


def run_one(bench, build_dir, smoke):
    binary = os.path.join(build_dir, "bench", bench.binary)
    if not os.path.exists(binary):
        return {"skipped": f"binary not found: {binary}"}

    args = [binary]
    result = {}
    json_path = None
    if bench.kind == "json_harness":
        fd, json_path = tempfile.mkstemp(suffix=".json")
        os.close(fd)
        args.append(f"--json={json_path}")
    if smoke:
        args.extend(bench.smoke_args)
    if bench.kind == "gbench":
        args.append("--benchmark_format=json")
        if smoke:
            args.append("--benchmark_min_time=0.05s")

    print(f"[bench_runner] {bench.name}: {' '.join(args)}", flush=True)
    start = time.monotonic()
    proc = subprocess.run(args, capture_output=True, text=True)
    result["wall_ms"] = round((time.monotonic() - start) * 1000.0, 1)
    result["exit_code"] = proc.returncode
    if proc.returncode != 0:
        # Keep the tail of the output so the failure is diagnosable from
        # the JSON artifact alone.
        result["stderr_tail"] = proc.stderr.splitlines()[-10:]
        result["stdout_tail"] = proc.stdout.splitlines()[-10:]

    if bench.kind == "json_harness" and json_path is not None:
        try:
            with open(json_path) as f:
                result.update(json.load(f))
        except (OSError, json.JSONDecodeError) as e:
            result["json_error"] = str(e)
        finally:
            os.unlink(json_path)
    elif bench.kind == "gbench" and proc.returncode == 0:
        try:
            gb = json.loads(proc.stdout)
            result["benchmarks"] = [
                {
                    "name": b.get("name"),
                    "real_time_ms": round(b.get("real_time", 0.0) / 1e6, 3)
                    if b.get("time_unit") == "ns"
                    else b.get("real_time"),
                    "time_unit": "ms"
                    if b.get("time_unit") == "ns"
                    else b.get("time_unit"),
                    "iterations": b.get("iterations"),
                }
                for b in gb.get("benchmarks", [])
            ]
        except json.JSONDecodeError as e:
            result["json_error"] = str(e)
    return result


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument("--out", default=f"{BENCH_ID}.json")
    parser.add_argument("--only", default="",
                        help="comma-separated registry names")
    parser.add_argument("--list", action="store_true",
                        help="list registered benchmarks and exit")
    args = parser.parse_args()

    if args.list:
        for b in REGISTRY:
            mode = "smoke+full" if b.smoke else "full"
            print(f"{b.name:20s} {b.kind:12s} [{mode}] {b.binary}")
        return 0

    selected = REGISTRY
    if args.only:
        names = {n.strip() for n in args.only.split(",") if n.strip()}
        unknown = names - {b.name for b in REGISTRY}
        if unknown:
            print(f"unknown benchmarks: {sorted(unknown)}", file=sys.stderr)
            return 2
        selected = [b for b in REGISTRY if b.name in names]
    elif args.smoke:
        selected = [b for b in REGISTRY if b.smoke]

    doc = {
        "bench_id": BENCH_ID,
        "title": TITLE,
        "mode": "smoke" if args.smoke else "full",
        "hardware_threads": os.cpu_count() or 1,
        "results": {},
    }
    failures = 0
    for bench in selected:
        result = run_one(bench, args.build_dir, args.smoke)
        doc["results"][bench.name] = result
        if result.get("exit_code", 0) != 0:
            failures += 1
            print(f"[bench_runner] {bench.name} FAILED "
                  f"(exit {result['exit_code']})", file=sys.stderr)

    with open(args.out, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"[bench_runner] wrote {args.out} "
          f"({len(doc['results'])} benchmarks, {failures} failures)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
