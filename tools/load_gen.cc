// load_gen: workload driver for a running urankd (docs/SERVING.md).
//
// Closed loop (the default) or open loop (--qps=N), mixed-semantics or
// repeated-query workloads, any number of connections — the loops
// themselves live in src/serve/loadgen.h so bench/bench_serve.cc can run
// them in-process.
//
// Usage:
//   load_gen --port=N [--host=IP] [--relation=NAME]
//            [--connections=N] [--duration-s=X] [--qps=X]
//            [--workload=mixed|repeat] [--bypass-cache]
//            [--deadline-ms=X] [--k=N] [--seed=N] [--json]
//
// Exit status: 0 when the run completed and at least one request got an
// ok response; 1 otherwise (so a CI step fails when the daemon is
// unreachable or sheds everything).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "serve/loadgen.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --port=N [--host=IP] [--relation=NAME] [--connections=N] "
      "[--duration-s=X] [--qps=X] [--workload=mixed|repeat] "
      "[--bypass-cache] [--deadline-ms=X] [--k=N] [--seed=N] [--json]\n",
      argv0);
  return 2;
}

void PrintSummary(const char* label, const urank::serve::LatencySummary& s) {
  std::printf("%s: mean %.3f ms, p50 %.3f, p90 %.3f, p99 %.3f, max %.3f\n",
              label, s.mean_ms, s.p50_ms, s.p90_ms, s.p99_ms, s.max_ms);
}

void PrintJsonSummary(const char* key, const urank::serve::LatencySummary& s,
                      const char* trailer) {
  std::printf(
      "  \"%s\": {\"mean_ms\": %.4f, \"p50_ms\": %.4f, \"p90_ms\": %.4f, "
      "\"p99_ms\": %.4f, \"max_ms\": %.4f}%s\n",
      key, s.mean_ms, s.p50_ms, s.p90_ms, s.p99_ms, s.max_ms, trailer);
}

}  // namespace

int main(int argc, char** argv) {
  urank::serve::LoadGenOptions options;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--port=", 0) == 0) {
      options.port = std::atoi(arg.c_str() + 7);
    } else if (arg.rfind("--host=", 0) == 0) {
      options.host = arg.substr(7);
    } else if (arg.rfind("--relation=", 0) == 0) {
      options.relation = arg.substr(11);
    } else if (arg.rfind("--connections=", 0) == 0) {
      options.connections = std::atoi(arg.c_str() + 14);
    } else if (arg.rfind("--duration-s=", 0) == 0) {
      options.duration_s = std::atof(arg.c_str() + 13);
    } else if (arg.rfind("--qps=", 0) == 0) {
      options.target_qps = std::atof(arg.c_str() + 6);
    } else if (arg == "--workload=mixed") {
      options.workload = urank::serve::Workload::kMixed;
    } else if (arg == "--workload=repeat") {
      options.workload = urank::serve::Workload::kRepeat;
    } else if (arg == "--bypass-cache") {
      options.bypass_cache = true;
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      options.deadline_ms = std::atof(arg.c_str() + 14);
    } else if (arg.rfind("--k=", 0) == 0) {
      options.k = std::atoi(arg.c_str() + 4);
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = static_cast<std::uint64_t>(std::atoll(arg.c_str() + 7));
    } else if (arg == "--json") {
      json = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (options.port <= 0) return Usage(argv[0]);

  urank::serve::LoadGenReport report;
  std::string error;
  if (!urank::serve::RunLoadGen(options, &report, &error)) {
    std::fprintf(stderr, "load_gen: %s\n", error.c_str());
    return 1;
  }

  if (json) {
    std::printf("{\n");
    std::printf("  \"sent\": %lld, \"ok\": %lld, \"errors\": %lld,\n",
                report.sent, report.ok, report.errors);
    std::printf(
        "  \"overloaded\": %lld, \"deadline_exceeded\": %lld, "
        "\"transport_failures\": %lld,\n",
        report.overloaded, report.deadline_exceeded,
        report.transport_failures);
    std::printf("  \"cache_hits\": %lld, \"cache_misses\": %lld,\n",
                report.cache_hits, report.cache_misses);
    std::printf("  \"duration_s\": %.3f, \"qps\": %.1f,\n", report.duration_s,
                report.achieved_qps);
    PrintJsonSummary("client", report.client, ",");
    PrintJsonSummary("serve", report.serve, "");
    std::printf("}\n");
  } else {
    std::printf("load_gen: %lld sent, %lld ok, %lld errors "
                "(%lld overloaded, %lld deadline-exceeded, "
                "%lld transport failures) in %.2f s -> %.1f qps\n",
                report.sent, report.ok, report.errors, report.overloaded,
                report.deadline_exceeded, report.transport_failures,
                report.duration_s, report.achieved_qps);
    std::printf("cache: %lld hits, %lld misses\n", report.cache_hits,
                report.cache_misses);
    PrintSummary("client latency", report.client);
    PrintSummary("server handle latency", report.serve);
  }
  return report.ok > 0 ? 0 : 1;
}
