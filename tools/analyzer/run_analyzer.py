#!/usr/bin/env python3
"""Driver for urank-analyzer: self-test corpus and zero-findings gate.

Self-test mode (wired into ctest when the analyzer is built):

    run_analyzer.py --analyzer <bin> --selftest tools/analyzer/testdata \\
                    --repo-root .

Every testdata *.cc is analyzed; the reported (line, check) pairs must
exactly match the `// expect: <check>` comments in the file.

Gate mode (CI):

    run_analyzer.py --analyzer <bin> --build-dir build \\
                    [--baseline tools/analyzer/baseline.txt] [file...]

Analyzes the listed files (default: every src/ file in the build's
compile_commands.json) and fails on any finding not covered by the
baseline. Baseline lines have the form

    <path>:<check>: <justification>

and a missing justification is itself an error: the baseline exists to
record accepted debt, not to silence the tool.
"""

import argparse
import json
import os
import re
import subprocess
import sys

FINDING_RE = re.compile(r"^(.*):(\d+): \[([a-z-]+)\] (.*)$")
EXPECT_RE = re.compile(r"//\s*expect:\s*([a-z-]+)")
CHECKS = ("determinism", "prob-domain", "kernel-alloc", "atomics")


def run_analyzer(analyzer, files, extra_args):
    cmd = [analyzer] + list(files) + extra_args
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.PIPE, text=True)
    if proc.returncode not in (0, 1):
        sys.stderr.write(proc.stderr)
        raise RuntimeError(
            f"analyzer failed (exit {proc.returncode}) on: {' '.join(cmd)}")
    findings = []
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            findings.append((os.path.abspath(m.group(1)), int(m.group(2)),
                             m.group(3), m.group(4)))
    return findings


def selftest(analyzer, testdata_dir, repo_root):
    src_include = os.path.join(os.path.abspath(repo_root), "src")
    compile_args = ["--", "-std=c++20", f"-I{src_include}",
                    "-Wno-everything"]
    failures = 0
    cases = sorted(f for f in os.listdir(testdata_dir) if f.endswith(".cc"))
    if not cases:
        print(f"no testdata found in {testdata_dir}")
        return 1
    for name in cases:
        path = os.path.abspath(os.path.join(testdata_dir, name))
        expected = set()
        with open(path, encoding="utf-8") as fh:
            for lineno, text in enumerate(fh, start=1):
                m = EXPECT_RE.search(text)
                if m:
                    expected.add((lineno, m.group(1)))
        got = {(line, check)
               for (f, line, check, _) in run_analyzer(
                   analyzer, [path],
                   ["--core-path-substr=prob_domain"] + compile_args)
               if f == path}
        missing = expected - got
        unexpected = got - expected
        if missing or unexpected:
            failures += 1
            print(f"FAIL {name}")
            for line, check in sorted(missing):
                print(f"  missing finding: line {line} [{check}]")
            for line, check in sorted(unexpected):
                print(f"  unexpected finding: line {line} [{check}]")
        else:
            kind = "positive" if expected else "negative"
            print(f"PASS {name} ({kind}, {len(expected)} findings)")
    total = len(cases)
    print(f"{total - failures}/{total} testdata files passed")
    return 1 if failures else 0


def load_baseline(path):
    entries = []
    if path is None or not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(":", 2)
            if len(parts) != 3 or parts[1] not in CHECKS or \
                    not parts[2].strip():
                raise SystemExit(
                    f"{path}:{lineno}: baseline entries must be "
                    f"'<path>:<check>: <justification>' with a non-empty "
                    f"justification")
            entries.append((parts[0], parts[1]))
    return entries


def gate(analyzer, build_dir, baseline_path, files):
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db_path):
        raise SystemExit(f"no compile_commands.json under {build_dir}; "
                         f"configure with CMake first")
    if not files:
        with open(db_path, encoding="utf-8") as fh:
            db = json.load(fh)
        files = sorted({
            entry["file"] for entry in db
            if f"{os.sep}src{os.sep}" in entry["file"]
        })
    if not files:
        print("no files to analyze")
        return 0
    findings = run_analyzer(analyzer, files, ["-p", build_dir])
    baseline = load_baseline(baseline_path)
    unbaselined = []
    for f, line, check, message in findings:
        if any(f.endswith(bp) and check == bc for (bp, bc) in baseline):
            continue
        unbaselined.append((f, line, check, message))
    for f, line, check, message in unbaselined:
        print(f"{f}:{line}: [{check}] {message}")
    print(f"{len(findings)} findings, {len(unbaselined)} unbaselined, "
          f"{len(files)} files analyzed")
    return 1 if unbaselined else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--analyzer", required=True,
                        help="path to the urank-analyzer binary")
    parser.add_argument("--selftest", metavar="TESTDATA_DIR",
                        help="run the expectation-comment corpus")
    parser.add_argument("--repo-root", default=".",
                        help="repo root (for -Isrc in selftest mode)")
    parser.add_argument("--build-dir",
                        help="build dir with compile_commands.json")
    parser.add_argument("--baseline",
                        help="baseline file of accepted findings")
    parser.add_argument("files", nargs="*",
                        help="restrict gate mode to these files")
    args = parser.parse_args()

    if args.selftest:
        return selftest(args.analyzer, args.selftest, args.repo_root)
    if args.build_dir:
        return gate(args.analyzer, args.build_dir, args.baseline, args.files)
    parser.error("pass --selftest or --build-dir")


if __name__ == "__main__":
    sys.exit(main())
