// determinism: nothing reachable from a URANK_KERNEL function may iterate
// an unordered container, draw wall-clock or rand-family entropy, or
// derive values from object addresses. Lookups into unordered containers
// (find / count / operator[]) are deterministic and stay allowed; only
// iteration order is not.
//
// Reachability is same-translation-unit: callees with a visible body are
// visited transitively (lambdas included); external functions are trusted
// to carry their own annotation in their own TU.

#include <string>

#include "analyzer.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/ASTMatchers/ASTMatchers.h"
#include "clang/Lex/Lexer.h"
#include "llvm/ADT/SmallPtrSet.h"
#include "llvm/ADT/StringSet.h"

namespace urank_analyzer {
namespace {

using clang::ast_matchers::MatchFinder;

bool IsUnorderedContainer(clang::QualType qt) {
  qt = qt.getNonReferenceType().getCanonicalType();
  const clang::CXXRecordDecl* rd = qt->getAsCXXRecordDecl();
  return rd != nullptr && rd->getName().startswith("unordered_");
}

const llvm::StringSet<>& EntropyFunctions() {
  static const llvm::StringSet<> kSet = {
      "rand",       "srand",         "random",  "srandom",
      "rand_r",     "drand48",       "lrand48", "mrand48",
      "time",       "clock",         "gettimeofday",
      "clock_gettime",
  };
  return kSet;
}

// True for names at global scope or directly inside namespace std.
bool IsGlobalOrStd(const clang::FunctionDecl* fd) {
  const clang::DeclContext* dc = fd->getDeclContext();
  if (dc->isTranslationUnit()) return true;
  if (const auto* ns = llvm::dyn_cast<clang::NamespaceDecl>(dc)) {
    return ns->isStdNamespace() ||
           (ns->isInlineNamespace() &&
            ns->getDeclContext()->isTranslationUnit());
  }
  return false;
}

class DeterminismVisitor
    : public clang::RecursiveASTVisitor<DeterminismVisitor> {
 public:
  DeterminismVisitor(clang::ASTContext& ctx, FindingSet& out,
                     std::string root)
      : ctx_(ctx), out_(out), root_(std::move(root)) {}

  void Run(const clang::FunctionDecl* fd) {
    visited_.insert(fd);
    TraverseStmt(fd->getBody());
  }

  bool VisitCXXForRangeStmt(clang::CXXForRangeStmt* s) {
    if (s->getRangeInit() != nullptr &&
        IsUnorderedContainer(s->getRangeInit()->getType())) {
      Report(s->getBeginLoc(),
             "iteration over an unordered container (nondeterministic "
             "order)");
    }
    return true;
  }

  bool VisitCXXMemberCallExpr(clang::CXXMemberCallExpr* e) {
    const clang::CXXMethodDecl* md = e->getMethodDecl();
    if (md == nullptr || !md->getDeclName().isIdentifier()) return true;
    const llvm::StringRef name = md->getName();
    // `begin` marks iteration; `end` alone is the find()/end() lookup
    // idiom and stays allowed.
    if ((name == "begin" || name == "cbegin") &&
        IsUnorderedContainer(e->getImplicitObjectArgument()->getType())) {
      Report(e->getBeginLoc(),
             "iteration over an unordered container (nondeterministic "
             "order)");
    }
    return true;
  }

  bool VisitCallExpr(clang::CallExpr* e) {
    const clang::FunctionDecl* callee = e->getDirectCallee();
    if (callee == nullptr) return true;
    if (callee->getDeclName().isIdentifier()) {
      const llvm::StringRef name = callee->getName();
      if (EntropyFunctions().count(name) != 0 && IsGlobalOrStd(callee)) {
        Report(e->getBeginLoc(), ("call to entropy/clock function '" +
                                  name + "'").str());
      }
      if (name == "now") {
        if (const auto* md = llvm::dyn_cast<clang::CXXMethodDecl>(callee)) {
          const std::string qual = md->getQualifiedNameAsString();
          if (qual.find("chrono") != std::string::npos) {
            Report(e->getBeginLoc(), "wall-clock read ('" + qual + "')");
          }
        }
      }
    }
    // Same-TU reachability.
    const clang::FunctionDecl* def = nullptr;
    if (callee->hasBody(def) && def != nullptr &&
        !ctx_.getSourceManager().isInSystemHeader(def->getLocation()) &&
        visited_.insert(def).second) {
      TraverseStmt(const_cast<clang::Stmt*>(def->getBody()));
    }
    return true;
  }

  bool VisitCXXConstructExpr(clang::CXXConstructExpr* e) {
    const clang::CXXRecordDecl* rd =
        e->getType().getCanonicalType()->getAsCXXRecordDecl();
    if (rd != nullptr && rd->getName() == "random_device") {
      Report(e->getBeginLoc(), "std::random_device construction");
    }
    return true;
  }

  bool VisitCXXReinterpretCastExpr(clang::CXXReinterpretCastExpr* e) {
    if (e->getSubExpr()->getType()->isPointerType() &&
        e->getType()->isIntegerType()) {
      Report(e->getBeginLoc(),
             "pointer-to-integer reinterpret_cast (address-dependent "
             "value)");
    }
    return true;
  }

 private:
  void Report(clang::SourceLocation loc, llvm::StringRef message) {
    // Contract assertions (URANK_CHECK / URANK_DCHECK) may inspect
    // addresses and values without feeding the kernel's result.
    if (InsideCheckMacro(loc, ctx_.getSourceManager(), ctx_.getLangOpts())) {
      return;
    }
    out_.Add(ctx_, loc, "determinism",
             (message + " in code reachable from kernel '" + root_ + "'")
                 .str());
  }

  clang::ASTContext& ctx_;
  FindingSet& out_;
  std::string root_;
  llvm::SmallPtrSet<const clang::FunctionDecl*, 16> visited_;
};

class DeterminismCallback : public MatchFinder::MatchCallback {
 public:
  explicit DeterminismCallback(FindingSet* out) : out_(out) {}

  void run(const MatchFinder::MatchResult& result) override {
    const auto* fd = result.Nodes.getNodeAs<clang::FunctionDecl>("kernel");
    if (!IsKernelFunction(fd) || !fd->doesThisDeclarationHaveABody()) return;
    DeterminismVisitor visitor(*result.Context, *out_,
                               fd->getNameAsString());
    visitor.Run(fd);
  }

 private:
  FindingSet* out_;
};

}  // namespace

void RegisterDeterminismCheck(MatchFinder* finder, FindingSet* out) {
  using namespace clang::ast_matchers;  // NOLINT
  static DeterminismCallback* callback = nullptr;
  callback = new DeterminismCallback(out);
  finder->addMatcher(
      functionDecl(isDefinition(), hasAttr(clang::attr::Annotate))
          .bind("kernel"),
      callback);
}

}  // namespace urank_analyzer
