// Positive corpus for the block-stitch and prune-sweep code shapes added
// with the streaming preparation work: per-round scratch in k-way merges,
// candidate sets grown tuple-by-tuple, allocations hidden in stitch
// helpers, and stitches whose result depends on unordered iteration or
// entropy. Every `// expect:` line must be reported.

#include <cstddef>
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/kernel_annotations.h"

// A block stitch that materializes a fresh prefix buffer for every block
// instead of reusing one high-water scratch across the seal pass.
URANK_KERNEL double StitchPrefixPerBlock(
    const std::vector<std::vector<double>>& blocks) {
  double carry = 0.0;
  for (const std::vector<double>& block : blocks) {
    std::vector<double> prefix(block.size(), 0.0);  // expect: kernel-alloc
    double acc = carry;
    for (std::size_t i = 0; i < block.size(); ++i) {
      acc += block[i];
      prefix[i] = acc;
    }
    if (!prefix.empty()) carry = prefix.back();
  }
  return carry;
}

// Per-round merge scratch acquired with raw new[] inside the round loop.
URANK_KERNEL double RoundScratchMerge(const std::vector<double>& a,
                                      const std::vector<double>& b,
                                      int rounds) {
  double s = 0.0;
  for (int r = 0; r < rounds; ++r) {
    double* tmp = new double[a.size() + b.size()];  // expect: kernel-alloc
    std::size_t w = 0;
    for (double v : a) tmp[w++] = v;
    for (double v : b) tmp[w++] = v;
    s += tmp[0];
    delete[] tmp;
  }
  return s;
}

// The candidate set of a prune sweep grown one survivor at a time; the
// real kernels pre-size the k-best heap before scanning.
URANK_KERNEL void CollectSurvivors(const std::vector<double>& scores,
                                   double cut, std::vector<double>* heap) {
  for (double s : scores) {
    if (s > cut) {
      heap->push_back(s);  // expect: kernel-alloc
    }
  }
}

// Allocation hidden inside a stitch helper the kernel loop calls.
std::vector<double> StitchPairHelper(double lo, double hi) {
  std::vector<double> pair(2, lo);  // expect: kernel-alloc
  pair[1] = hi;
  return pair;
}

URANK_KERNEL double HiddenStitchAllocation(const std::vector<double>& in) {
  double s = 0.0;
  for (std::size_t i = 1; i < in.size(); ++i) {
    s += StitchPairHelper(in[i - 1], in[i])[1];
  }
  return s;
}

// Folding per-rule prefix masses in hash order: the stitched sums
// reassociate differently from run to run.
URANK_KERNEL double FoldRuleMasses(
    const std::unordered_map<int, double>& rule_mass) {
  double total = 0.0;
  for (const auto& kv : rule_mass) {  // expect: determinism
    total += kv.second;
  }
  return total;
}

// Counting the rules still open at a block boundary by iterating the
// unordered key set.
URANK_KERNEL int CountOpenRules(const std::unordered_set<int>& open) {
  int n = 0;
  for (auto it = open.begin(); it != open.end(); ++it) {  // expect: determinism
    if (*it >= 0) ++n;
  }
  return n;
}

// A "randomized" stop probe: perturbing the bound with entropy makes the
// prune decision — and therefore the scan length — nondeterministic.
URANK_KERNEL bool JitteredStopProbe(double bound, double phi) {
  const double jitter =
      static_cast<double>(std::rand()) / RAND_MAX;  // expect: determinism
  return bound + jitter * 1e-12 >= phi;
}
