// Negative corpus for the kernel-alloc check: the arena discipline the
// kernels actually use must come through clean.

#include <cstddef>
#include <vector>

#include "core/internal/kernel_arena.h"
#include "util/kernel_annotations.h"

using urank::internal::AlignedBuf;
using urank::internal::KernelArena;

// Setup allocation outside the loops is the steady-state contract.
URANK_KERNEL std::vector<double> SetupThenSweep(
    const std::vector<double>& in) {
  std::vector<double> out(in.size(), 0.0);
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = in[i] * 2.0;
  }
  return out;
}

// Arena buffers grow to a high-water mark once and are exempt, even when
// resized inside the hot loop.
URANK_KERNEL double ArenaScratch(const std::vector<double>& in,
                                 KernelArena* arena) {
  AlignedBuf& buf = arena->Doubles(0);
  double s = 0.0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    buf.resize(i + 1);
    buf[i] = in[i];
    buf.push_back(in[i]);
    s += buf[i];
  }
  return s;
}

// Writing through a caller-sized span-style output is allocation-free.
URANK_KERNEL void ScaleInto(const std::vector<double>& in, double scale,
                            std::vector<double>* out) {
  for (std::size_t i = 0; i < in.size() && i < out->size(); ++i) {
    (*out)[i] = in[i] * scale;
  }
}

// A helper that only computes on existing storage is fine to call from a
// loop.
double SquareHelper(double v) { return v * v; }

URANK_KERNEL double HelperWithoutAllocation(const std::vector<double>& in) {
  double s = 0.0;
  for (double v : in) s += SquareHelper(v);
  return s;
}

// The documented high-water pattern: the output is assigned once at the
// top of the kernel, outside any loop.
URANK_KERNEL void HighWaterAssign(const std::vector<double>& in,
                                  std::vector<double>* dist) {
  dist->assign(in.size(), 0.0);
  for (std::size_t i = 0; i < in.size(); ++i) {
    (*dist)[i] = in[i];
  }
}

// Unannotated functions are outside this check's scope; convenience
// wrappers may materialize result matrices.
std::vector<std::vector<double>> MaterializeRows(int n) {
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < n; ++i) {
    rows.push_back(std::vector<double>(static_cast<std::size_t>(n), 0.0));
  }
  return rows;
}
