// Positive corpus for the atomics/lock-discipline check.

#include <atomic>
#include <mutex>

// Stand-ins for util/parallel.h entry points (same names; the check
// matches by callee name so the corpus stays header-light).
int ParallelFor(int n, int workers);
int ParallelForPlaced(int n, int workers, int placement);
double ParallelReduce(int n, int workers);

namespace {

std::atomic<long long> g_counter{0};
std::atomic<bool> g_flag{false};
std::mutex g_mu;

long long BumpRelaxed() {
  return g_counter.fetch_add(1, std::memory_order_relaxed);  // expect: atomics
}

bool ReadRelaxed() {
  return g_flag.load(std::memory_order_relaxed);  // expect: atomics
}

void WriteRelaxed(bool v) {
  g_flag.store(v, std::memory_order_relaxed);  // expect: atomics
}

int LockHeldAcrossParallelFor(int n) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_counter.fetch_add(1, std::memory_order_acq_rel);
  return ParallelFor(n, 4);  // expect: atomics
}

double UniqueLockAcrossReduce(int n) {
  std::unique_lock<std::mutex> lock(g_mu);
  return ParallelReduce(n, 4);  // expect: atomics
}

int LockHeldAcrossPlacedFor(int n) {
  std::lock_guard<std::mutex> lock(g_mu);
  return ParallelForPlaced(n, 4, 2);  // expect: atomics
}

}  // namespace

// Anchor so the anonymous-namespace functions are odr-used.
int AnchorAtomicsPos(int n) {
  WriteRelaxed(ReadRelaxed());
  return static_cast<int>(BumpRelaxed()) + LockHeldAcrossParallelFor(n) +
         static_cast<int>(UniqueLockAcrossReduce(n)) +
         LockHeldAcrossPlacedFor(n);
}
