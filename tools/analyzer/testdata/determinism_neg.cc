// Negative corpus for the determinism check: analyzing this file must
// produce no findings.

#include <algorithm>
#include <cstdlib>
#include <map>
#include <unordered_map>
#include <vector>

#include "util/kernel_annotations.h"

// Lookups into unordered containers are deterministic; only iteration
// order is not.
URANK_KERNEL double UnorderedLookup(const std::unordered_map<int, double>& m,
                                    int key) {
  auto it = m.find(key);
  return it == m.end() ? 0.0 : it->second;
}

URANK_KERNEL double UnorderedCount(const std::unordered_map<int, double>& m,
                                   int key) {
  return m.count(key) != 0 ? 1.0 : 0.0;
}

// Ordered containers iterate in key order on every run.
URANK_KERNEL double SumOrderedMap(const std::map<int, double>& m) {
  double s = 0.0;
  for (const auto& kv : m) s += kv.second;
  return s;
}

// Sorting with a value-based comparator is deterministic.
URANK_KERNEL void SortDescending(std::vector<double>* v) {
  std::sort(v->begin(), v->end(),
            [](double a, double b) { return a > b; });
}

// Entropy in a function no kernel reaches is outside this check's scope
// (the Monte Carlo baselines seed their own Rng explicitly).
double FreeRunningJitter() {
  return static_cast<double>(std::rand()) / RAND_MAX;
}

// An explicitly justified exception is suppressed by the allow-comment.
URANK_KERNEL double SuppressedIteration(
    const std::unordered_map<int, double>& m) {
  double s = 0.0;
  // Summation is order-insensitive enough for this diagnostic path.
  // urank-analyzer: allow(determinism)
  for (const auto& kv : m) s += kv.second;
  return s;
}
