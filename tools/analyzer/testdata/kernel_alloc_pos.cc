// Positive corpus for the kernel-alloc check. Includes the exact shapes
// the old regex linter rule missed: multi-line declarations, `std ::`
// spacing, type aliases, and allocations hidden behind helpers.

#include <cstddef>
#include <string>
#include <vector>

#include "util/kernel_annotations.h"

URANK_KERNEL double* LeakyScratch(std::size_t n) {
  return new double[n];  // expect: kernel-alloc
}

URANK_KERNEL double VectorPerIteration(const std::vector<double>& in) {
  double s = 0.0;
  for (double v : in) {
    std::vector<double> tmp(3, v);  // expect: kernel-alloc
    s += tmp[0];
  }
  return s;
}

// The regex rule required `std::vector` on one line; the AST does not
// care how the declaration is spelled.
URANK_KERNEL double MultiLineDeclaration(const std::vector<double>& in) {
  double s = 0.0;
  for (double v : in) {
    std::
        vector<double>
            tmp(3, v);  // expect: kernel-alloc
    s += tmp[0];
  }
  return s;
}

URANK_KERNEL double SpacedQualifier(const std::vector<double>& in) {
  double s = 0.0;
  for (double v : in) {
    std ::vector<double> tmp(3, v);  // expect: kernel-alloc
    s += tmp[0];
  }
  return s;
}

using Row = std::vector<double>;

URANK_KERNEL double AliasedVector(const std::vector<double>& in) {
  double s = 0.0;
  for (double v : in) {
    Row tmp(3, v);  // expect: kernel-alloc
    s += tmp[0];
  }
  return s;
}

URANK_KERNEL void GrowthInLoop(std::vector<double>* out, int n) {
  for (int i = 0; i < n; ++i) {
    out->push_back(static_cast<double>(i));  // expect: kernel-alloc
  }
}

URANK_KERNEL void StringConcatInLoop(const std::vector<double>& in,
                                     std::string* out) {
  for (double v : in) {
    out->append(v > 0.5 ? "H" : "L");  // expect: kernel-alloc
  }
}

// Allocation hidden one call down from a kernel loop.
std::vector<double> MakeRowHelper(double v) {
  std::vector<double> row(4, v);  // expect: kernel-alloc
  return row;
}

URANK_KERNEL double HiddenHelperAllocation(const std::vector<double>& in) {
  double s = 0.0;
  for (double v : in) {
    s += MakeRowHelper(v)[0];
  }
  return s;
}
