// Negative corpus for the prob-domain check: the guard idioms used across
// src/core must come through clean.

#include <vector>

#include "util/check.h"

namespace urank {

double GuardedScale(double p, double w) {
  URANK_DCHECK_PROB(p);
  return p * w;
}

double GuardedPhi(double phi) {
  URANK_CHECK_MSG(phi > 0.0 && phi <= 1.0, "phi must be in (0,1]");
  return 1.0 - phi;
}

double GuardedThreshold(double threshold, double value) {
  URANK_CHECK_MSG(threshold > 0.0 && threshold <= 1.0,
                  "threshold must be in (0,1]");
  return value >= threshold ? 1.0 : 0.0;
}

// Not probability-named: plain magnitudes are out of scope.
double ScaleByWeight(double weight, double value) { return weight * value; }

// Internal helpers receive values their public callers already validated.
namespace {
double HalveUnchecked(double p) { return p * 0.5; }
}  // namespace

double PublicEntry(double p) {
  URANK_DCHECK_PROB(p);
  return HalveUnchecked(p);
}

// An unused probability parameter (interface conformance) needs no guard.
double IgnoresProb(double /*prob*/, double value) { return value; }

}  // namespace urank
