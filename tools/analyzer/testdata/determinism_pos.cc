// Positive corpus for the determinism check: every `// expect:` line must
// be reported when this file is analyzed.

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <ctime>
#include <random>
#include <unordered_map>
#include <unordered_set>

#include "util/kernel_annotations.h"

URANK_KERNEL double SumUnorderedMap(
    const std::unordered_map<int, double>& m) {
  double s = 0.0;
  for (const auto& kv : m) s += kv.second;  // expect: determinism
  return s;
}

URANK_KERNEL double ExplicitIteratorLoop(const std::unordered_set<int>& s) {
  double sum = 0.0;
  for (auto it = s.begin(); it != s.end(); ++it) {  // expect: determinism
    sum += static_cast<double>(*it);
  }
  return sum;
}

// The entropy call hides one level down; the kernel reaches it.
double JitterHelper() {
  return static_cast<double>(std::rand()) / RAND_MAX;  // expect: determinism
}

URANK_KERNEL double UsesJitterHelper(double x) { return x + JitterHelper(); }

URANK_KERNEL long WallClockStamp() {
  return std::chrono::steady_clock::now()  // expect: determinism
      .time_since_epoch()
      .count();
}

URANK_KERNEL long CTimeRead() {
  return static_cast<long>(std::time(nullptr));  // expect: determinism
}

URANK_KERNEL unsigned SeedFromAddress(const double* x) {
  return static_cast<unsigned>(
      reinterpret_cast<std::uintptr_t>(x));  // expect: determinism
}

URANK_KERNEL unsigned HardwareEntropy() {
  std::random_device rd;  // expect: determinism
  return rd();
}
