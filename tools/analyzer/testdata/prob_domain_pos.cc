// Positive corpus for the prob-domain check. The self-test runs with
// --core-path-substr=prob_domain so these files stand in for src/core/.

#include <vector>

#include "util/check.h"

namespace urank {

double ScaleMass(double p, double w) {
  return p * w;  // expect: prob-domain
}

double BlendByPhi(double phi, double a, double b) {
  const double mix = a * phi + b * (1.0 - phi);  // expect: prob-domain
  return mix;
}

// Guarding after the first arithmetic use is too late: the product has
// already absorbed a possible NaN or out-of-range value.
double LateGuard(double prob) {
  const double doubled = prob * 2.0;  // expect: prob-domain
  URANK_CHECK_MSG(prob >= 0.0 && prob <= 1.0, "prob must be in [0,1]");
  return doubled;
}

// A plain comparison is not a URANK guard: it silently truncates instead
// of surfacing the contract violation.
double ClampedThreshold(double threshold) {
  if (threshold > 1.0) threshold = 1.0;  // expect: prob-domain
  return threshold;
}

// Suffix-named probability parameters are in scope too.
double MixRuleProb(double rule_prob, double mass) {
  return rule_prob * mass;  // expect: prob-domain
}

}  // namespace urank
