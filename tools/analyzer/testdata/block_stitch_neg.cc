// Negative corpus for the block-stitch and prune-sweep shapes: the
// disciplines the streaming builder and pruned kernels actually use must
// come through clean. Analyzing this file must produce no findings.

#include <algorithm>
#include <cstddef>
#include <map>
#include <vector>

#include "core/internal/kernel_arena.h"
#include "util/kernel_annotations.h"

using urank::internal::AlignedBuf;
using urank::internal::KernelArena;

// Cursor-based k-way run merge: all state is sized once before the merge
// loop, and heads advance by index without per-round scratch.
URANK_KERNEL double CursorKWayMerge(
    const std::vector<std::vector<double>>& runs) {
  std::vector<std::size_t> cursor(runs.size(), 0);
  double last = 0.0;
  for (;;) {
    int best = -1;
    for (std::size_t r = 0; r < runs.size(); ++r) {
      if (cursor[r] >= runs[r].size()) continue;
      if (best < 0 || runs[r][cursor[r]] >
                          runs[static_cast<std::size_t>(best)]
                              [cursor[static_cast<std::size_t>(best)]]) {
        best = static_cast<int>(r);
      }
    }
    if (best < 0) break;
    last = runs[static_cast<std::size_t>(best)]
               [cursor[static_cast<std::size_t>(best)]++];
  }
  return last;
}

// The pruned top-k discipline: the k-best heap is pre-sized before the
// sweep and maintained with push_heap / pop_heap over the fixed storage.
URANK_KERNEL double FixedKBestSweep(const std::vector<double>& stats,
                                    std::size_t k) {
  std::vector<double> heap(std::min(k, stats.size()), 0.0);
  std::size_t filled = 0;
  for (double v : stats) {
    if (filled < heap.size()) {
      heap[filled++] = v;
      std::push_heap(heap.begin(),
                     heap.begin() + static_cast<std::ptrdiff_t>(filled),
                     std::greater<double>());
    } else if (!heap.empty() && v > heap.front()) {
      std::pop_heap(heap.begin(), heap.end(), std::greater<double>());
      heap.back() = v;
      std::push_heap(heap.begin(), heap.end(), std::greater<double>());
    }
  }
  return heap.empty() ? 0.0 : heap.front();
}

// Truncated convolution over raw pointers with an explicit length: the
// rank-distribution update writes in place, no temporaries.
URANK_KERNEL void TruncatedConvolveStep(double* pmf, std::size_t len,
                                        double p) {
  for (std::size_t i = len; i-- > 1;) {
    pmf[i] = pmf[i] * (1.0 - p) + pmf[i - 1] * p;
  }
  if (len > 0) pmf[0] *= 1.0 - p;
}

// Arena-backed per-block scratch: the buffer grows to a high-water mark
// across blocks and is exempt even when resized inside the loop.
URANK_KERNEL double ArenaBlockStitch(
    const std::vector<std::vector<double>>& blocks, KernelArena* arena) {
  AlignedBuf& scratch = arena->Doubles(0);
  double carry = 0.0;
  for (const std::vector<double>& block : blocks) {
    scratch.resize(block.size());
    double acc = carry;
    for (std::size_t i = 0; i < block.size(); ++i) {
      acc += block[i];
      scratch[i] = acc;
    }
    if (block.size() > 0) carry = scratch[block.size() - 1];
  }
  return carry;
}

// The sequential prefix stitch at seal time: output assigned once at the
// top, then written index-by-index across all blocks.
URANK_KERNEL void SealPrefixStitch(const std::vector<double>& masses,
                                   std::vector<double>* prefix) {
  prefix->assign(masses.size(), 0.0);
  double acc = 0.0;
  for (std::size_t i = 0; i < masses.size(); ++i) {
    acc += masses[i];
    (*prefix)[i] = acc;
  }
}

// Rule bookkeeping on an ordered map iterates in key order every run.
URANK_KERNEL double FoldRuleMassesOrdered(
    const std::map<int, double>& rule_mass) {
  double total = 0.0;
  for (const auto& kv : rule_mass) {
    total += kv.second;
  }
  return total;
}

// Unannotated convenience wrappers may materialize per-block rows; the
// check scopes to kernels and their same-TU callees.
std::vector<std::vector<double>> MaterializeBlocks(int blocks, int width) {
  std::vector<std::vector<double>> out;
  for (int b = 0; b < blocks; ++b) {
    out.push_back(std::vector<double>(static_cast<std::size_t>(width), 0.0));
  }
  return out;
}
