// Negative corpus for the atomics/lock-discipline check.

#include <atomic>
#include <mutex>

int ParallelFor(int n, int workers);
int ParallelForPlaced(int n, int workers, int placement);

namespace {

std::atomic<long long> g_counter{0};
std::atomic<bool> g_flag{false};
std::mutex g_mu;

// Acquire/release orderings are the repo's floor outside util/metrics.
long long BumpAcqRel() {
  return g_counter.fetch_add(1, std::memory_order_acq_rel);
}

bool ReadAcquire() { return g_flag.load(std::memory_order_acquire); }

void WriteRelease(bool v) { g_flag.store(v, std::memory_order_release); }

// Sequentially consistent defaults are fine too.
long long BumpDefault() { return g_counter.fetch_add(1); }

// The lock's scope ends before the parallel region starts.
int LockReleasedBeforeParallelFor(int n) {
  {
    std::lock_guard<std::mutex> lock(g_mu);
    g_counter.fetch_add(1, std::memory_order_acq_rel);
  }
  return ParallelFor(n, 4);
}

// Same for the placed variant.
int LockReleasedBeforePlacedFor(int n) {
  {
    std::lock_guard<std::mutex> lock(g_mu);
    g_counter.fetch_add(1, std::memory_order_acq_rel);
  }
  return ParallelForPlaced(n, 4, 2);
}

// A justified relaxed counter is suppressed with the allow-comment.
long long JustifiedRelaxed() {
  // Diagnostic-only counter; torn totals are acceptable here.
  // urank-analyzer: allow(atomics)
  return g_counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

int AnchorAtomicsNeg(int n) {
  WriteRelease(ReadAcquire());
  return static_cast<int>(BumpAcqRel() + BumpDefault() +
                          JustifiedRelaxed()) +
         LockReleasedBeforeParallelFor(n) + LockReleasedBeforePlacedFor(n);
}
