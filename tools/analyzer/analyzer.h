// Shared plumbing for the urank-analyzer checks.
//
// Each check registers AST matchers against a MatchFinder and reports
// through a FindingSet, which handles suppression comments
// (`// urank-analyzer: allow(<check>)` on the finding's line or the line
// above), system-header filtering, and de-duplication of findings reached
// through more than one kernel entry point.

#ifndef URANK_TOOLS_ANALYZER_ANALYZER_H_
#define URANK_TOOLS_ANALYZER_ANALYZER_H_

#include <string>
#include <vector>

#include "clang/AST/ASTContext.h"
#include "clang/AST/Decl.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/Basic/SourceLocation.h"
#include "llvm/ADT/StringRef.h"

namespace urank_analyzer {

struct Finding {
  std::string check;
  std::string file;
  unsigned line = 0;
  std::string message;
};

class FindingSet {
 public:
  // Records a finding at `loc` unless it sits in a system header, repeats
  // an already-recorded (file, line, check) triple, or is covered by an
  // allow-comment.
  void Add(clang::ASTContext& ctx, clang::SourceLocation loc,
           llvm::StringRef check, llvm::StringRef message);

  const std::vector<Finding>& findings() const { return findings_; }

 private:
  std::vector<Finding> findings_;
  std::vector<std::string> seen_keys_;
};

// True when `fd` carries [[clang::annotate("urank_kernel")]].
bool IsKernelFunction(const clang::FunctionDecl* fd);

// True when `loc` sits inside the expansion of a URANK_CHECK*/
// URANK_DCHECK* macro at any nesting level. Contract assertions may
// inspect values (and addresses, for alignment checks) without that
// inspection being data flow into the kernel's result.
bool InsideCheckMacro(clang::SourceLocation loc,
                      const clang::SourceManager& sm,
                      const clang::LangOptions& lang_opts);

// Path fragment that scopes the prob-domain check (default "src/core/").
extern std::string g_core_path_substr;
// Path fragment naming the one location allowed relaxed atomics.
extern std::string g_metrics_path_substr;

void RegisterDeterminismCheck(clang::ast_matchers::MatchFinder* finder,
                              FindingSet* out);
void RegisterProbDomainCheck(clang::ast_matchers::MatchFinder* finder,
                             FindingSet* out);
void RegisterKernelAllocCheck(clang::ast_matchers::MatchFinder* finder,
                              FindingSet* out);
void RegisterAtomicsCheck(clang::ast_matchers::MatchFinder* finder,
                          FindingSet* out);

}  // namespace urank_analyzer

#endif  // URANK_TOOLS_ANALYZER_ANALYZER_H_
