// urank-analyzer: clang-tidy-style checker for the urank kernel contracts.
//
// Usage (needs a compilation database or `--` with compile flags):
//
//   urank-analyzer [--checks=determinism,prob-domain,kernel-alloc,atomics]
//                  <file>... -- <compile flags>
//
// Findings print one per line as `file:line: [check] message`; the exit
// code is 1 when any finding is reported, 0 on a clean run, 2 on a
// tooling/parse error. Baseline subtraction and the self-test corpus
// live in run_analyzer.py.

#include <algorithm>
#include <string>

#include "analyzer.h"
#include "clang/AST/Attr.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Lex/Lexer.h"
#include "clang/Tooling/CommonOptionsParser.h"
#include "clang/Tooling/Tooling.h"
#include "llvm/Support/CommandLine.h"
#include "llvm/Support/raw_ostream.h"

namespace urank_analyzer {

std::string g_core_path_substr = "src/core/";
std::string g_metrics_path_substr = "util/metrics";

bool InsideCheckMacro(clang::SourceLocation loc,
                      const clang::SourceManager& sm,
                      const clang::LangOptions& lang_opts) {
  while (loc.isMacroID()) {
    const llvm::StringRef name =
        clang::Lexer::getImmediateMacroName(loc, sm, lang_opts);
    if (name.startswith("URANK_CHECK") || name.startswith("URANK_DCHECK")) {
      return true;
    }
    loc = sm.getImmediateMacroCallerLoc(loc);
  }
  return false;
}

bool IsKernelFunction(const clang::FunctionDecl* fd) {
  if (fd == nullptr) return false;
  for (const auto* attr : fd->specific_attrs<clang::AnnotateAttr>()) {
    if (attr->getAnnotation() == "urank_kernel") return true;
  }
  return false;
}

void FindingSet::Add(clang::ASTContext& ctx, clang::SourceLocation loc,
                     llvm::StringRef check, llvm::StringRef message) {
  const clang::SourceManager& sm = ctx.getSourceManager();
  const clang::SourceLocation expansion = sm.getExpansionLoc(loc);
  if (expansion.isInvalid() || sm.isInSystemHeader(expansion)) return;

  Finding f;
  f.check = check.str();
  f.file = sm.getFilename(expansion).str();
  f.line = sm.getExpansionLineNumber(expansion);
  f.message = message.str();
  if (f.file.empty() || f.line == 0) return;

  std::string key = f.file + ":" + std::to_string(f.line) + ":" + f.check;
  if (std::find(seen_keys_.begin(), seen_keys_.end(), key) !=
      seen_keys_.end()) {
    return;
  }
  seen_keys_.push_back(key);

  // Suppression comment on the finding's line or the line above.
  const clang::FileID fid = sm.getFileID(expansion);
  bool invalid = false;
  llvm::StringRef buf = sm.getBufferData(fid, &invalid);
  if (!invalid) {
    const std::string needle = "urank-analyzer: allow(" + f.check + ")";
    for (unsigned line = f.line > 1 ? f.line - 1 : 1; line <= f.line;
         ++line) {
      const clang::SourceLocation start = sm.translateLineCol(fid, line, 1);
      if (start.isInvalid()) continue;
      const unsigned offset = sm.getFileOffset(start);
      const llvm::StringRef text =
          buf.substr(offset).take_until([](char c) { return c == '\n'; });
      if (text.contains(needle)) return;
    }
  }
  findings_.push_back(std::move(f));
}

}  // namespace urank_analyzer

namespace {

llvm::cl::OptionCategory kCategory("urank-analyzer options");

llvm::cl::opt<std::string> kChecks(
    "checks",
    llvm::cl::desc("Comma-separated checks to run (default: all four)"),
    llvm::cl::init("determinism,prob-domain,kernel-alloc,atomics"),
    llvm::cl::cat(kCategory));

llvm::cl::opt<std::string> kCorePathSubstr(
    "core-path-substr",
    llvm::cl::desc("Path fragment scoping the prob-domain check "
                   "(default: src/core/)"),
    llvm::cl::init("src/core/"), llvm::cl::cat(kCategory));

llvm::cl::opt<std::string> kMetricsPathSubstr(
    "metrics-path-substr",
    llvm::cl::desc("Path fragment allowed to use relaxed atomics "
                   "(default: util/metrics)"),
    llvm::cl::init("util/metrics"), llvm::cl::cat(kCategory));

bool CheckEnabled(llvm::StringRef name) {
  llvm::SmallVector<llvm::StringRef, 4> parts;
  llvm::StringRef(kChecks.getValue()).split(parts, ',');
  for (llvm::StringRef part : parts) {
    if (part.trim() == name) return true;
  }
  return false;
}

}  // namespace

int main(int argc, const char** argv) {
  auto expected_parser =
      clang::tooling::CommonOptionsParser::create(argc, argv, kCategory);
  if (!expected_parser) {
    llvm::errs() << llvm::toString(expected_parser.takeError()) << "\n";
    return 2;
  }
  clang::tooling::CommonOptionsParser& parser = *expected_parser;
  clang::tooling::ClangTool tool(parser.getCompilations(),
                                 parser.getSourcePathList());

  urank_analyzer::g_core_path_substr = kCorePathSubstr.getValue();
  urank_analyzer::g_metrics_path_substr = kMetricsPathSubstr.getValue();

  urank_analyzer::FindingSet findings;
  clang::ast_matchers::MatchFinder finder;
  if (CheckEnabled("determinism")) {
    urank_analyzer::RegisterDeterminismCheck(&finder, &findings);
  }
  if (CheckEnabled("prob-domain")) {
    urank_analyzer::RegisterProbDomainCheck(&finder, &findings);
  }
  if (CheckEnabled("kernel-alloc")) {
    urank_analyzer::RegisterKernelAllocCheck(&finder, &findings);
  }
  if (CheckEnabled("atomics")) {
    urank_analyzer::RegisterAtomicsCheck(&finder, &findings);
  }

  const int status =
      tool.run(clang::tooling::newFrontendActionFactory(&finder).get());
  if (status != 0) return 2;

  std::vector<urank_analyzer::Finding> sorted = findings.findings();
  std::sort(sorted.begin(), sorted.end(),
            [](const urank_analyzer::Finding& a,
               const urank_analyzer::Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.check < b.check;
            });
  for (const auto& f : sorted) {
    llvm::outs() << f.file << ":" << f.line << ": [" << f.check << "] "
                 << f.message << "\n";
  }
  return sorted.empty() ? 0 : 1;
}
