// kernel-alloc: a URANK_KERNEL function's steady state performs no heap
// allocation. Concretely:
//
//   * `new` anywhere in the kernel body;
//   * std::vector / std::string objects (named or temporary) constructed
//     inside a loop;
//   * growth calls (push_back, emplace_back, resize, reserve, insert,
//     assign, append, clear-then-grow patterns) on vector/string objects
//     inside a loop;
//   * one level into same-TU helpers called from inside a loop: `new`
//     and vector/string constructions anywhere in the helper body.
//
// The per-worker arena types (internal::AlignedBuf, internal::KernelArena)
// grow to a high-water mark once and are exempt, which is exactly the
// allocation discipline the kernels are built around. Growth calls in
// helpers are deliberately not flagged: the documented arena pattern has
// helpers sizing their output through assign/resize on caller-owned
// storage.

#include <string>

#include "analyzer.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/ASTMatchers/ASTMatchers.h"
#include "llvm/ADT/SmallPtrSet.h"
#include "llvm/ADT/StringSet.h"

namespace urank_analyzer {
namespace {

using clang::ast_matchers::MatchFinder;

bool RecordNameIs(clang::QualType qt, llvm::StringRef name) {
  qt = qt.getNonReferenceType();
  if (qt->isPointerType()) qt = qt->getPointeeType();
  const clang::CXXRecordDecl* rd =
      qt.getCanonicalType()->getAsCXXRecordDecl();
  return rd != nullptr && rd->getName() == name;
}

bool IsVectorOrString(clang::QualType qt) {
  qt = qt.getNonReferenceType();
  if (qt->isPointerType()) qt = qt->getPointeeType();
  const clang::CXXRecordDecl* rd =
      qt.getCanonicalType()->getAsCXXRecordDecl();
  if (rd == nullptr) return false;
  const llvm::StringRef name = rd->getName();
  return name == "vector" || name == "basic_string";
}

bool IsArenaType(clang::QualType qt) {
  return RecordNameIs(qt, "AlignedBuf") || RecordNameIs(qt, "KernelArena");
}

const llvm::StringSet<>& GrowthCalls() {
  static const llvm::StringSet<> kSet = {
      "push_back", "emplace_back", "resize", "reserve",
      "insert",    "assign",       "append",
  };
  return kSet;
}

// One-level scan of a helper called from inside a kernel loop.
class CalleeVisitor : public clang::RecursiveASTVisitor<CalleeVisitor> {
 public:
  CalleeVisitor(clang::ASTContext& ctx, FindingSet& out,
                const std::string& root, const std::string& helper)
      : ctx_(ctx), out_(out), root_(root), helper_(helper) {}

  bool VisitCXXNewExpr(clang::CXXNewExpr* e) {
    out_.Add(ctx_, e->getBeginLoc(), "kernel-alloc",
             "heap allocation (new) in helper '" + helper_ +
                 "' called from a loop in kernel '" + root_ + "'");
    return true;
  }

  bool VisitVarDecl(clang::VarDecl* d) {
    if (d->isLocalVarDecl() && IsVectorOrString(d->getType()) &&
        !IsArenaType(d->getType())) {
      out_.Add(ctx_, d->getLocation(), "kernel-alloc",
               "vector/string constructed in helper '" + helper_ +
                   "' called from a loop in kernel '" + root_ + "'");
    }
    return true;
  }

 private:
  clang::ASTContext& ctx_;
  FindingSet& out_;
  const std::string& root_;
  std::string helper_;
};

class AllocVisitor : public clang::RecursiveASTVisitor<AllocVisitor> {
 public:
  AllocVisitor(clang::ASTContext& ctx, FindingSet& out, std::string root)
      : ctx_(ctx), out_(out), root_(std::move(root)) {}

  // Loop-depth tracking.
  bool TraverseForStmt(clang::ForStmt* s) { return TraverseLoop(s); }
  bool TraverseWhileStmt(clang::WhileStmt* s) { return TraverseLoop(s); }
  bool TraverseDoStmt(clang::DoStmt* s) { return TraverseLoop(s); }
  bool TraverseCXXForRangeStmt(clang::CXXForRangeStmt* s) {
    return TraverseLoop(s);
  }

  bool VisitCXXNewExpr(clang::CXXNewExpr* e) {
    out_.Add(ctx_, e->getBeginLoc(), "kernel-alloc",
             "heap allocation (new) in kernel '" + root_ + "'");
    return true;
  }

  bool VisitVarDecl(clang::VarDecl* d) {
    if (loop_depth_ > 0 && d->isLocalVarDecl() &&
        IsVectorOrString(d->getType()) && !IsArenaType(d->getType())) {
      out_.Add(ctx_, d->getLocation(), "kernel-alloc",
               "vector/string constructed inside a loop in kernel '" +
                   root_ + "'");
    }
    return true;
  }

  bool VisitCXXTemporaryObjectExpr(clang::CXXTemporaryObjectExpr* e) {
    if (loop_depth_ > 0 && IsVectorOrString(e->getType()) &&
        !IsArenaType(e->getType())) {
      out_.Add(ctx_, e->getBeginLoc(), "kernel-alloc",
               "vector/string temporary inside a loop in kernel '" +
                   root_ + "'");
    }
    return true;
  }

  bool VisitCXXMemberCallExpr(clang::CXXMemberCallExpr* e) {
    if (loop_depth_ == 0) return true;
    const clang::CXXMethodDecl* md = e->getMethodDecl();
    if (md == nullptr || !md->getDeclName().isIdentifier()) return true;
    const clang::QualType obj_type =
        e->getImplicitObjectArgument()->getType();
    if (GrowthCalls().count(md->getName()) != 0 &&
        IsVectorOrString(obj_type) && !IsArenaType(obj_type)) {
      out_.Add(ctx_, e->getBeginLoc(), "kernel-alloc",
               ("vector growth call '" + md->getName() +
                "' inside a loop in kernel '" + root_ + "'")
                   .str());
    }
    return true;
  }

  bool VisitCallExpr(clang::CallExpr* e) {
    if (loop_depth_ == 0) return true;
    const clang::FunctionDecl* callee = e->getDirectCallee();
    if (callee == nullptr) return true;
    // Skip methods on the containers themselves (handled above) and
    // anything from a system header.
    const clang::FunctionDecl* def = nullptr;
    if (!callee->hasBody(def) || def == nullptr) return true;
    if (ctx_.getSourceManager().isInSystemHeader(def->getLocation())) {
      return true;
    }
    if (llvm::isa<clang::CXXMethodDecl>(def) &&
        (IsVectorOrString(ctx_.getRecordType(
             llvm::cast<clang::CXXMethodDecl>(def)->getParent())) ||
         IsArenaType(ctx_.getRecordType(
             llvm::cast<clang::CXXMethodDecl>(def)->getParent())))) {
      return true;
    }
    if (!visited_callees_.insert(def).second) return true;
    CalleeVisitor helper(ctx_, out_, root_, def->getNameAsString());
    helper.TraverseStmt(const_cast<clang::Stmt*>(def->getBody()));
    return true;
  }

 private:
  template <typename LoopStmt>
  bool TraverseLoop(LoopStmt* s) {
    ++loop_depth_;
    const bool result =
        clang::RecursiveASTVisitor<AllocVisitor>::TraverseStmt(
            s->getBody());
    --loop_depth_;
    // Visit the non-body children (init/cond/inc) outside the loop scope:
    // their one-time evaluation cost is the loop's setup, not its steady
    // state. For range-for the range init is evaluated once too.
    if (auto* fs = llvm::dyn_cast<clang::ForStmt>(s)) {
      if (fs->getInit()) TraverseStmt(fs->getInit());
      if (fs->getInc()) TraverseStmt(fs->getInc());
    }
    return result;
  }

  clang::ASTContext& ctx_;
  FindingSet& out_;
  std::string root_;
  int loop_depth_ = 0;
  llvm::SmallPtrSet<const clang::FunctionDecl*, 16> visited_callees_;
};

class KernelAllocCallback : public MatchFinder::MatchCallback {
 public:
  explicit KernelAllocCallback(FindingSet* out) : out_(out) {}

  void run(const MatchFinder::MatchResult& result) override {
    const auto* fd = result.Nodes.getNodeAs<clang::FunctionDecl>("kernel");
    if (!IsKernelFunction(fd) || !fd->doesThisDeclarationHaveABody()) return;
    AllocVisitor visitor(*result.Context, *out_, fd->getNameAsString());
    visitor.TraverseStmt(const_cast<clang::Stmt*>(fd->getBody()));
  }

 private:
  FindingSet* out_;
};

}  // namespace

void RegisterKernelAllocCheck(MatchFinder* finder, FindingSet* out) {
  using namespace clang::ast_matchers;  // NOLINT
  static KernelAllocCallback* callback = nullptr;
  callback = new KernelAllocCallback(out);
  finder->addMatcher(
      functionDecl(isDefinition(), hasAttr(clang::attr::Annotate))
          .bind("kernel"),
      callback);
}

}  // namespace urank_analyzer
