// prob-domain: externally visible functions defined under the core path
// (default src/core/) taking a floating-point parameter whose name marks
// it as a probability (`p`, `prob`, `phi`, `threshold`, or a `*prob`
// suffix) must guard it with a URANK_CHECK*/URANK_DCHECK* macro before
// its first other use. The runtime contract lives in util/check.h; this
// check makes forgetting it a compile-database error instead of a latent
// NaN propagated through a DP sweep.

#include <string>

#include "analyzer.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/ASTMatchers/ASTMatchers.h"
#include "clang/Lex/Lexer.h"

namespace urank_analyzer {
namespace {

using clang::ast_matchers::MatchFinder;

bool IsProbabilityName(llvm::StringRef name) {
  return name == "p" || name == "prob" || name == "phi" ||
         name == "threshold" || name.endswith("prob");
}

// First DeclRefExpr to `param` in preorder traversal order, which for the
// guard-at-the-top idiom this check enforces coincides with source order.
class FirstUseFinder : public clang::RecursiveASTVisitor<FirstUseFinder> {
 public:
  explicit FirstUseFinder(const clang::ParmVarDecl* param) : param_(param) {}

  bool VisitDeclRefExpr(clang::DeclRefExpr* dre) {
    if (dre->getDecl() == param_ && first_use_ == nullptr) {
      first_use_ = dre;
      return false;  // stop traversal
    }
    return true;
  }

  const clang::DeclRefExpr* first_use() const { return first_use_; }

 private:
  const clang::ParmVarDecl* param_;
  const clang::DeclRefExpr* first_use_ = nullptr;
};

class ProbDomainCallback : public MatchFinder::MatchCallback {
 public:
  explicit ProbDomainCallback(FindingSet* out) : out_(out) {}

  void run(const MatchFinder::MatchResult& result) override {
    const auto* fd = result.Nodes.getNodeAs<clang::FunctionDecl>("fn");
    if (fd == nullptr || !fd->doesThisDeclarationHaveABody()) return;
    // Entry points only: helpers in anonymous namespaces receive values
    // their callers already validated.
    if (!fd->isExternallyVisible()) return;

    clang::ASTContext& ctx = *result.Context;
    const clang::SourceManager& sm = ctx.getSourceManager();
    const std::string file =
        sm.getFilename(sm.getExpansionLoc(fd->getLocation())).str();
    if (file.find(g_core_path_substr) == std::string::npos) return;

    for (const clang::ParmVarDecl* param : fd->parameters()) {
      if (!param->getType().getNonReferenceType()->isFloatingType()) {
        continue;
      }
      if (!param->getDeclName().isIdentifier() ||
          !IsProbabilityName(param->getName())) {
        continue;
      }
      FirstUseFinder finder(param);
      finder.TraverseStmt(fd->getBody());
      const clang::DeclRefExpr* use = finder.first_use();
      if (use == nullptr) continue;  // parameter unused: nothing to guard
      if (InsideCheckMacro(use->getLocation(), sm, ctx.getLangOpts())) {
        continue;
      }
      out_->Add(ctx, use->getLocation(), "prob-domain",
                "probability parameter '" + param->getNameAsString() +
                    "' of '" + fd->getNameAsString() +
                    "' used before a URANK_CHECK/URANK_DCHECK guard");
    }
  }

 private:
  FindingSet* out_;
};

}  // namespace

void RegisterProbDomainCheck(MatchFinder* finder, FindingSet* out) {
  using namespace clang::ast_matchers;  // NOLINT
  static ProbDomainCallback* callback = nullptr;
  callback = new ProbDomainCallback(out);
  finder->addMatcher(
      functionDecl(isDefinition(), unless(isExpansionInSystemHeader()))
          .bind("fn"),
      callback);
}

}  // namespace urank_analyzer
