// atomics / lock discipline:
//
//   * std::memory_order_relaxed may only appear under the metrics path
//     (default util/metrics) — counters there are intentionally racy;
//     everywhere else relaxed ordering hides real synchronization bugs
//     behind x86's strong hardware model.
//   * A scoped lock (lock_guard / unique_lock / scoped_lock) must not be
//     held across a ParallelFor / ParallelForPlaced / ParallelReduce /
//     RunBatch call in the same block: the workers would serialize on
//     (or deadlock against) the caller's mutex.

#include <string>

#include "analyzer.h"
#include "clang/AST/ParentMapContext.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/ASTMatchers/ASTMatchers.h"

namespace urank_analyzer {
namespace {

using clang::ast_matchers::MatchFinder;

class RelaxedOrderCallback : public MatchFinder::MatchCallback {
 public:
  explicit RelaxedOrderCallback(FindingSet* out) : out_(out) {}

  void run(const MatchFinder::MatchResult& result) override {
    const auto* dre = result.Nodes.getNodeAs<clang::DeclRefExpr>("relaxed");
    if (dre == nullptr) return;
    clang::ASTContext& ctx = *result.Context;
    const clang::SourceManager& sm = ctx.getSourceManager();
    const std::string file =
        sm.getFilename(sm.getExpansionLoc(dre->getLocation())).str();
    if (file.find(g_metrics_path_substr) != std::string::npos) return;
    out_->Add(ctx, dre->getLocation(), "atomics",
              "relaxed-order atomic outside " + g_metrics_path_substr +
                  " (use acquire/release or stronger, or move the counter "
                  "into the metrics registry)");
  }

 private:
  FindingSet* out_;
};

// Finds a call to one of the parallel entry points anywhere below a
// statement.
class ParallelCallFinder
    : public clang::RecursiveASTVisitor<ParallelCallFinder> {
 public:
  bool VisitCallExpr(clang::CallExpr* e) {
    const clang::FunctionDecl* callee = e->getDirectCallee();
    if (callee == nullptr || !callee->getDeclName().isIdentifier()) {
      return true;
    }
    const llvm::StringRef name = callee->getName();
    if (name == "ParallelFor" || name == "ParallelForPlaced" ||
        name == "ParallelReduce" || name == "RunBatch") {
      call_ = e;
      return false;
    }
    return true;
  }

  const clang::CallExpr* call() const { return call_; }

 private:
  const clang::CallExpr* call_ = nullptr;
};

class LockAcrossParallelCallback : public MatchFinder::MatchCallback {
 public:
  explicit LockAcrossParallelCallback(FindingSet* out) : out_(out) {}

  void run(const MatchFinder::MatchResult& result) override {
    const auto* ds = result.Nodes.getNodeAs<clang::DeclStmt>("lock");
    if (ds == nullptr) return;
    clang::ASTContext& ctx = *result.Context;

    // The lock's scope is the enclosing CompoundStmt; any parallel call
    // in a later statement of that block runs with the mutex held.
    const auto parents = ctx.getParents(*ds);
    if (parents.empty()) return;
    const auto* block = parents[0].get<clang::CompoundStmt>();
    if (block == nullptr) return;

    bool after_lock = false;
    for (const clang::Stmt* stmt : block->body()) {
      if (stmt == ds) {
        after_lock = true;
        continue;
      }
      if (!after_lock) continue;
      ParallelCallFinder finder;
      finder.TraverseStmt(const_cast<clang::Stmt*>(stmt));
      if (finder.call() != nullptr) {
        out_->Add(ctx, finder.call()->getBeginLoc(), "atomics",
                  "parallel region entered while a scoped lock from this "
                  "block is held");
        return;
      }
    }
  }

 private:
  FindingSet* out_;
};

}  // namespace

void RegisterAtomicsCheck(MatchFinder* finder, FindingSet* out) {
  using namespace clang::ast_matchers;  // NOLINT
  static RelaxedOrderCallback* relaxed_callback = nullptr;
  relaxed_callback = new RelaxedOrderCallback(out);
  // memory_order_relaxed is an enumerator in C++14/17 and an inline
  // constexpr variable aliasing memory_order::relaxed in C++20; match the
  // reference by name to cover both standard library spellings.
  finder->addMatcher(
      declRefExpr(to(namedDecl(hasAnyName("::std::memory_order_relaxed",
                                          "::std::memory_order::relaxed"))))
          .bind("relaxed"),
      relaxed_callback);

  static LockAcrossParallelCallback* lock_callback = nullptr;
  lock_callback = new LockAcrossParallelCallback(out);
  finder->addMatcher(
      declStmt(has(varDecl(hasType(cxxRecordDecl(
                   hasAnyName("::std::lock_guard", "::std::unique_lock",
                              "::std::scoped_lock"))))))
          .bind("lock"),
      lock_callback);
}

}  // namespace urank_analyzer
