// urankd: the ranking-query serving daemon (docs/SERVING.md).
//
// Speaks the versioned newline-delimited JSON protocol of
// src/serve/protocol.h over loopback TCP, or over stdin/stdout with
// --stdin (one request line in, one response line out — the mode the
// serve-smoke CI job and golden-transcript tests drive).
//
// Usage:
//   urankd [--port=N] [--stdin]
//          [--load=NAME=MODEL:PATH]...   (MODEL is attr|tuple; repeatable)
//          [--workers=N] [--queue=N] [--cache-bytes=N]
//          [--default-deadline-ms=X]
//
// --port=0 (the default) binds an ephemeral port, printed on startup as
//   urankd: listening on 127.0.0.1:PORT
// so harnesses can scrape it. SIGTERM/SIGINT trigger a graceful drain:
// the transport stops accepting, every admitted request completes, then
// the process exits 0.

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.h"
#include "serve/tcp.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

struct LoadSpec {
  std::string name;
  urank::serve::WireModel model = urank::serve::WireModel::kTuple;
  std::string path;
};

// Parses NAME=MODEL:PATH. PATH may contain ':' — only the first ':' after
// the '=' separates the model.
bool ParseLoadSpec(const std::string& arg, LoadSpec* out) {
  const std::size_t eq = arg.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  const std::size_t colon = arg.find(':', eq + 1);
  if (colon == std::string::npos || colon + 1 >= arg.size()) return false;
  out->name = arg.substr(0, eq);
  out->path = arg.substr(colon + 1);
  return urank::serve::FromString(arg.substr(eq + 1, colon - eq - 1),
                                  &out->model);
}

bool ParseIntFlag(const std::string& arg, const char* prefix, long long* out) {
  const std::size_t len = std::strlen(prefix);
  if (arg.rfind(prefix, 0) != 0) return false;
  *out = std::atoll(arg.c_str() + len);
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port=N] [--stdin] [--load=NAME=MODEL:PATH]... "
               "[--workers=N] [--queue=N] [--cache-bytes=N] "
               "[--default-deadline-ms=X]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  int port = 0;
  bool use_stdin = false;
  std::vector<LoadSpec> loads;
  urank::serve::ServerOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    long long value = 0;
    if (arg == "--stdin") {
      use_stdin = true;
    } else if (ParseIntFlag(arg, "--port=", &value)) {
      port = static_cast<int>(value);
    } else if (ParseIntFlag(arg, "--workers=", &value)) {
      options.workers = static_cast<int>(value);
    } else if (ParseIntFlag(arg, "--queue=", &value)) {
      options.queue_capacity = static_cast<std::size_t>(value);
    } else if (ParseIntFlag(arg, "--cache-bytes=", &value)) {
      options.cache_bytes = static_cast<std::uint64_t>(value);
    } else if (arg.rfind("--default-deadline-ms=", 0) == 0) {
      options.default_deadline_ms = std::atof(arg.c_str() + 22);
    } else if (arg.rfind("--load=", 0) == 0) {
      LoadSpec spec;
      if (!ParseLoadSpec(arg.substr(7), &spec)) {
        std::fprintf(stderr, "urankd: bad --load spec: %s\n", arg.c_str());
        return Usage(argv[0]);
      }
      loads.push_back(spec);
    } else {
      return Usage(argv[0]);
    }
  }
  if (options.workers < 1) {
    std::fprintf(stderr, "urankd: --workers must be >= 1\n");
    return 2;
  }

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);

  urank::serve::Server server(options);
  for (const LoadSpec& spec : loads) {
    std::string error;
    if (!server.LoadRelationFile(spec.name, spec.model, spec.path, &error)) {
      std::fprintf(stderr, "urankd: cannot load %s from %s: %s\n",
                   spec.name.c_str(), spec.path.c_str(), error.c_str());
      return 1;
    }
    std::fprintf(stderr, "urankd: loaded %s (%s) from %s\n",
                 spec.name.c_str(), urank::serve::ToString(spec.model),
                 spec.path.c_str());
  }

  if (use_stdin) {
    // Line-at-a-time over stdio; responses flushed immediately so a
    // driving process can interleave requests and replies.
    std::string line;
    while (g_stop == 0 && std::getline(std::cin, line)) {
      if (line.empty()) continue;
      const std::string response = server.HandleLine(line);
      std::fwrite(response.data(), 1, response.size(), stdout);
      std::fputc('\n', stdout);
      std::fflush(stdout);
    }
    server.Drain();
    return 0;
  }

  urank::serve::TcpServer transport(&server);
  std::string error;
  if (!transport.Start(port, &error)) {
    std::fprintf(stderr, "urankd: cannot listen on 127.0.0.1:%d: %s\n", port,
                 error.c_str());
    return 1;
  }
  std::fprintf(stderr, "urankd: listening on 127.0.0.1:%d\n",
               transport.port());
  std::fflush(stderr);

  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::fprintf(stderr, "urankd: draining\n");
  // Transport first (no new work), then the server (finish what was
  // admitted).
  transport.Shutdown();
  server.Drain();
  std::fprintf(stderr, "urankd: drained, exiting\n");
  return 0;
}
