#!/usr/bin/env python3
"""urank-specific invariant linter.

Enforces repo contracts that generic tools (clang-tidy, compiler warnings)
cannot see:

  include-guard    headers under src/ use the guard URANK_<PATH>_H_ derived
                   from their path relative to src/.
  precondition     every function whose header comment documents a
                   precondition ("Requires ..." / "Aborts if ...") contains a
                   URANK_CHECK/URANK_DCHECK in each of its definitions.
  probability-type probabilities are accumulated in double; the `float` type
                   is banned in src/.
  rng-discipline   no rand()/srand()/time()-seeded randomness; all entropy
                   flows through util/rng.h so runs are reproducible.
  no-cout          src/ is a library: no std::cout (diagnostics go through
                   util/check.h, I/O through io/).
  build-registration  every .cc under src/ is compiled into the library
                   (listed in src/CMakeLists.txt).
  metric-name      metrics registered in src/ follow the naming contract
                   urank_<layer>_<name>_<unit> (lower_snake, unit one of
                   total/bytes/us/count/ratio/info) so the Prometheus page
                   and the bench_runner snapshots stay greppable and
                   self-describing (see docs/OBSERVABILITY.md).
  engine-api       outside src/core/, queries go through the QueryEngine
                   (core/engine/query_engine.h) or the legacy facade
                   (core/query.h); direct includes of the per-semantics
                   headers (core/semantics/*, core/expected_rank_*.h,
                   core/quantile_rank.h) from other src/ subsystems or
                   examples/ are flagged. Suppress only where an example
                   deliberately showcases the richer per-semantics result
                   types.
  kernel-vectorize the hot DP kernel files must not hand-roll elementwise
                   array sweeps or indexed reductions inside for/while
                   bodies: those inner loops belong behind the dispatch
                   table in core/internal/vector_kernels.h so every kernel
                   picks up the SIMD fast paths. Loops that are genuinely
                   scalar (early-exit scans, permutation gathers, order-
                   sensitive accumulations) carry an allow comment stating
                   why.

The former kernel-alloc rule moved to the AST-accurate urank-analyzer
(tools/analyzer/, check `kernel-alloc`): the regex version could not see
multi-line declarations, type aliases or helper-hidden allocations.

A finding can be suppressed for one line with a trailing or preceding
comment `// urank-lint: allow(<rule>)`; use sparingly and justify inline.

Exit status: 0 when clean, 1 when any finding is reported, 2 on usage error.
"""

import argparse
import os
import re
import sys

PRECONDITION_RE = re.compile(r"\bRequires\b|\bAborts if\b")
CHECK_RE = re.compile(r"\bURANK_D?CHECK(_MSG|_PROB|_NORMALIZED)?\b")
ALLOW_RE = re.compile(r"//\s*urank-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

# Function-like names that are never precondition carriers.
NAME_BLOCKLIST = {"if", "for", "while", "switch", "return", "sizeof",
                  "static_cast", "operator"}


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving offsets."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append(re.sub(r"[^\n]", " ", text[i:j]))
            i = j
        elif c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(c + " " * (j - i - 2) + (c if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def allowed_rules(lines, lineno):
    """Suppressions on the given 1-based line or the one above it."""
    rules = set()
    for ln in (lineno - 1, lineno - 2):
        if 0 <= ln < len(lines):
            m = ALLOW_RE.search(lines[ln])
            if m:
                rules.update(r.strip() for r in m.group(1).split(","))
    return rules


def iter_files(root, subdir, exts):
    base = os.path.join(root, subdir)
    for dirpath, _, names in os.walk(base):
        for name in sorted(names):
            if os.path.splitext(name)[1] in exts:
                yield os.path.join(dirpath, name)


def relpath(root, path):
    return os.path.relpath(path, root)


# --- include-guard ---------------------------------------------------------

def expected_guard(root, path):
    rel = os.path.relpath(path, os.path.join(root, "src"))
    stem = re.sub(r"\.h$", "", rel)
    return "URANK_" + re.sub(r"[/.]", "_", stem).upper() + "_H_"


def check_include_guards(root, findings):
    for path in iter_files(root, "src", {".h"}):
        with open(path, encoding="utf-8") as f:
            text = f.read()
        guard = expected_guard(root, path)
        m = re.search(r"^#ifndef\s+(\S+)\s*$", text, re.MULTILINE)
        if not m or m.group(1) != guard:
            got = m.group(1) if m else "none"
            findings.append(Finding(
                relpath(root, path),
                text[: m.start()].count("\n") + 1 if m else 1,
                "include-guard",
                f"expected include guard {guard}, found {got}"))
            continue
        if not re.search(r"^#define\s+" + re.escape(guard) + r"\s*$",
                         text, re.MULTILINE):
            findings.append(Finding(relpath(root, path), 1, "include-guard",
                                    f"missing #define {guard}"))


# --- token bans ------------------------------------------------------------

BAN_RULES = (
    # (rule, regex, message)
    ("probability-type", re.compile(r"\bfloat\b"),
     "probabilities and scores must use double, not float"),
    ("rng-discipline", re.compile(r"\b(s?rand|time)\s*\("),
     "use util/rng.h (deterministic, seeded) instead of rand()/time()"),
    ("rng-discipline", re.compile(r"\bstd::random_device\b"),
     "non-deterministic entropy is banned; seed an urank::Rng explicitly"),
    ("no-cout", re.compile(r"\bstd::cout\b"),
     "src/ is a library: no stdout printing"),
)


def check_token_bans(root, findings):
    for path in iter_files(root, "src", {".h", ".cc"}):
        with open(path, encoding="utf-8") as f:
            text = f.read()
        lines = text.split("\n")
        code = strip_comments_and_strings(text).split("\n")
        is_rng = relpath(root, path).replace(os.sep, "/") in (
            "src/util/rng.h", "src/util/rng.cc")
        for lineno, line in enumerate(code, start=1):
            for rule, rx, message in BAN_RULES:
                if rule == "rng-discipline" and is_rng:
                    continue
                if rx.search(line) and rule not in allowed_rules(lines, lineno):
                    findings.append(Finding(relpath(root, path), lineno,
                                            rule, message))


# --- engine-api ------------------------------------------------------------

SEMANTICS_INCLUDE_RE = re.compile(
    r'#include\s+"core/(semantics/[^"]+|expected_rank_attr\.h|'
    r'expected_rank_tuple\.h|quantile_rank\.h)"')


def check_engine_api(root, findings):
    """Per-semantics headers are core-internal: other subsystems and the
    examples query through core/engine/query_engine.h (or the core/query.h
    facade)."""
    paths = []
    for path in iter_files(root, "src", {".h", ".cc"}):
        rel = relpath(root, path).replace(os.sep, "/")
        if not rel.startswith("src/core/"):
            paths.append(path)
    if os.path.isdir(os.path.join(root, "examples")):
        paths.extend(iter_files(root, "examples", {".h", ".cc", ".cpp"}))
    for path in sorted(paths):
        with open(path, encoding="utf-8") as f:
            lines = f.read().split("\n")
        for lineno, line in enumerate(lines, start=1):
            m = SEMANTICS_INCLUDE_RE.search(line)
            if m and "engine-api" not in allowed_rules(lines, lineno):
                findings.append(Finding(
                    relpath(root, path), lineno, "engine-api",
                    f'direct include of per-semantics header "core/'
                    f'{m.group(1)}"; query through core/engine/'
                    f'query_engine.h instead'))


# --- precondition ----------------------------------------------------------

def declaration_name(decl):
    """Name of the function a declaration introduces, or None."""
    decl = decl.strip()
    if not decl or decl.startswith("#") or "operator" in decl:
        return None
    paren = decl.find("(")
    if paren <= 0:
        return None
    m = re.search(r"([A-Za-z_]\w*)\s*$", decl[:paren])
    if not m or m.group(1) in NAME_BLOCKLIST:
        return None
    return m.group(1)


def find_definitions(code, name):
    """Bodies of all definitions of `name` in comment-stripped code.

    A definition is the token `name(`, its matched parentheses, optional
    qualifiers (const/noexcept/initializer list/trailing return), then a
    brace-matched body.
    """
    bodies = []
    # The lookbehind rejects destructors (~Name), negations (!Name(...))
    # and calls nested directly in a condition (`if (Name(...)) {`), whose
    # trailing brace would otherwise read as a definition body.
    for m in re.finditer(r"(?<![~!(])\b" + re.escape(name) + r"\s*\(", code):
        i = m.end() - 1  # at '('
        depth = 0
        while i < len(code):
            if code[i] == "(":
                depth += 1
            elif code[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        if i >= len(code):
            continue
        j = i + 1
        # Skip qualifiers and constructor initializer lists up to '{' / ';'.
        while j < len(code) and code[j] not in "{;":
            if code[j] == "=":  # `= 0;`, `= default;`, assignment from call
                break
            j += 1
        if j >= len(code) or code[j] != "{":
            continue
        depth = 0
        k = j
        while k < len(code):
            if code[k] == "{":
                depth += 1
            elif code[k] == "}":
                depth -= 1
                if depth == 0:
                    break
            k += 1
        bodies.append((code[: m.start()].count("\n") + 1, code[j:k + 1]))
    return bodies


def check_preconditions(root, findings):
    for path in iter_files(root, "src", {".h"}):
        with open(path, encoding="utf-8") as f:
            text = f.read()
        lines = text.split("\n")
        sibling = re.sub(r"\.h$", ".cc", path)
        sources = [(path, strip_comments_and_strings(text))]
        if os.path.exists(sibling):
            with open(sibling, encoding="utf-8") as f:
                sources.append((sibling,
                                strip_comments_and_strings(f.read())))

        comment = []
        comment_documents_precondition = False
        for lineno, line in enumerate(lines, start=1):
            stripped = line.strip()
            if stripped.startswith("//"):
                comment.append(stripped)
                if PRECONDITION_RE.search(stripped):
                    comment_documents_precondition = True
                continue
            if comment_documents_precondition and stripped:
                name = declaration_name(stripped)
                if name and "precondition" not in allowed_rules(lines, lineno):
                    defs = []
                    for _, code in sources:
                        defs.extend(find_definitions(code, name))
                    if not defs:
                        findings.append(Finding(
                            relpath(root, path), lineno, "precondition",
                            f"{name}: documented precondition but no "
                            f"definition found to verify"))
                    else:
                        for def_line, body in defs:
                            if not CHECK_RE.search(body):
                                findings.append(Finding(
                                    relpath(root, path), lineno,
                                    "precondition",
                                    f"{name}: header documents a "
                                    f"precondition but the definition at "
                                    f"line {def_line} has no URANK_CHECK"))
            comment = []
            comment_documents_precondition = False


# --- kernel files ----------------------------------------------------------

# The per-tuple DP kernels: the files where an allocation inside a loop is
# an O(N) perf defect rather than a style preference. Extend the list when
# a new kernel file joins the hot path.
KERNEL_FILES = (
    "src/core/rank_distribution_tuple.cc",
    "src/core/rank_distribution_attr.cc",
    "src/core/quantile_rank.cc",
    "src/core/expected_rank_attr.cc",
    "src/core/expected_rank_tuple.cc",
    "src/core/semantics/semantics.cc",
    "src/core/semantics/u_kranks.cc",
    "src/core/semantics/score_sweep.cc",
    "src/util/poisson_binomial.cc",
)


def loop_body_spans(code):
    """Character spans of every brace-delimited for/while body in comment-
    stripped code. Single-statement loop bodies carry no declarations and
    are skipped."""
    spans = []
    for m in re.finditer(r"\b(for|while)\s*\(", code):
        i = m.end() - 1
        depth = 0
        while i < len(code):
            if code[i] == "(":
                depth += 1
            elif code[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        j = i + 1
        while j < len(code) and code[j] in " \t\n\r":
            j += 1
        if j >= len(code) or code[j] != "{":
            continue
        depth = 0
        k = j
        while k < len(code):
            if code[k] == "{":
                depth += 1
            elif code[k] == "}":
                depth -= 1
                if depth == 0:
                    break
            k += 1
        spans.append((j, k))
    return spans


# --- kernel-vectorize ------------------------------------------------------

# Raw inner-loop shapes over probability arrays that vector_kernels.h
# already covers:
#   * elementwise writes `a[i] op= ... b[j] ...` (scale/scale_add/convolve
#     territory), and
#   * indexed reductions `acc += ... v[i];` (sum/prefix territory).
# Matches are restricted to for/while bodies in KERNEL_FILES; loops that
# must stay scalar justify themselves with an allow(kernel-vectorize)
# comment.
KERNEL_VECTORIZE_RES = (
    re.compile(r"\[[^\];]*\]\s*[+\-*]?=\s*[^;]*\["),
    re.compile(r"\w+\s*\+=\s*[^;=]*\[[^\];]*\]\s*;"),
)


def check_kernel_vectorize(root, findings):
    for rel in KERNEL_FILES:
        path = os.path.join(root, rel)
        if not os.path.exists(path):
            continue
        with open(path, encoding="utf-8") as f:
            text = f.read()
        lines = text.split("\n")
        code = strip_comments_and_strings(text)
        spans = loop_body_spans(code)
        flagged = set()
        for rx in KERNEL_VECTORIZE_RES:
            for m in rx.finditer(code):
                if not any(a < m.start() < b for a, b in spans):
                    continue
                lineno = code[:m.start()].count("\n") + 1
                if lineno in flagged:
                    continue
                if "kernel-vectorize" in allowed_rules(lines, lineno):
                    continue
                flagged.add(lineno)
                findings.append(Finding(
                    rel, lineno, "kernel-vectorize",
                    "raw inner loop over probability arrays; express it "
                    "against a core/internal/vector_kernels.h primitive, "
                    "or justify the scalar loop with an "
                    "allow(kernel-vectorize) comment"))


# --- metric-name -----------------------------------------------------------

# Registration sites look like `registry.counter("urank_engine_queries_total")`
# (see util/metrics.h). The literal is the wire name: it must spell out the
# owning layer and end in a recognised unit suffix.
METRIC_CALL_RE = re.compile(
    r"\b(?:counter|gauge|histogram)\s*\(\s*\"([^\"]*)\"")
METRIC_NAME_RE = re.compile(
    r"^urank_[a-z0-9]+(?:_[a-z0-9]+)+_(?:total|bytes|us|count|ratio|info)$")


def check_metric_names(root, findings):
    """Scans raw text (the names live inside string literals, which
    strip_comments_and_strings blanks out)."""
    for path in iter_files(root, "src", {".h", ".cc"}):
        with open(path, encoding="utf-8") as f:
            text = f.read()
        lines = text.split("\n")
        for lineno, line in enumerate(lines, start=1):
            for m in METRIC_CALL_RE.finditer(line):
                name = m.group(1)
                if METRIC_NAME_RE.match(name):
                    continue
                if "metric-name" in allowed_rules(lines, lineno):
                    continue
                findings.append(Finding(
                    relpath(root, path), lineno, "metric-name",
                    f'metric name "{name}" does not match '
                    f"urank_<layer>_<name>_<unit> with unit in "
                    f"total/bytes/us/count/ratio/info"))


# --- build-registration ----------------------------------------------------

def check_build_registration(root, findings):
    cmake = os.path.join(root, "src", "CMakeLists.txt")
    with open(cmake, encoding="utf-8") as f:
        listed = f.read()
    for path in iter_files(root, "src", {".cc"}):
        rel = os.path.relpath(path, os.path.join(root, "src"))
        if rel.replace(os.sep, "/") not in listed:
            findings.append(Finding(
                relpath(root, path), 1, "build-registration",
                f"{rel} is not listed in src/CMakeLists.txt"))


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: parent of tools/)")
    args = parser.parse_args()
    root = os.path.abspath(args.root)
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"urank_lint: no src/ under {root}", file=sys.stderr)
        return 2

    findings = []
    check_include_guards(root, findings)
    check_token_bans(root, findings)
    check_engine_api(root, findings)
    check_preconditions(root, findings)
    check_kernel_vectorize(root, findings)
    check_metric_names(root, findings)
    check_build_registration(root, findings)

    for finding in sorted(findings, key=lambda f: (f.path, f.line)):
        print(finding)
    if findings:
        print(f"urank_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("urank_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
