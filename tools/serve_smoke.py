#!/usr/bin/env python3
"""Golden-transcript smoke test for urankd --stdin (ctest: serve_smoke).

Feeds tests/serve/testdata/smoke_requests.ndjson through `urankd --stdin`
and diffs the responses against smoke_expected.ndjson after normalizing
away the volatile parts:

  * the per-response "stats" object (wall-clock timings, SIMD target),
  * floating-point durations embedded in error messages (the
    deadline-exceeded text reports how long the request sat in queue).

Everything else — status names, wire codes, answer ids and statistics,
cache hit/miss/bypass outcomes, epochs, error taxonomy — must match the
golden transcript byte-for-byte after canonical JSON re-rendering.

A second pass sends a metrics request and asserts the scrape contains the
serving-layer metric families by substring (counter values are volatile,
so no golden there).

Regenerate the golden after an intentional protocol change with:
    python3 tools/serve_smoke.py --urankd build/tools/urankd \
        --testdata tests/serve/testdata --regen
"""

import argparse
import json
import pathlib
import re
import subprocess
import sys

# Volatile float spans inside error strings (e.g. "deadline expired after
# 0.003358 ms in queue"). Integer offsets in parse errors are stable and
# deliberately left alone.
_FLOAT_RE = re.compile(r"\d+\.\d+")

# Metric families the scrape must expose (names per docs/OBSERVABILITY.md
# conventions; values are volatile and not checked).
METRIC_SUBSTRINGS = [
    "urank_serve_requests_total",
    "urank_serve_errors_total",
    "urank_serve_overloaded_total",
    "urank_serve_deadline_expired_total",
    "urank_serve_cache_hits_total",
    "urank_serve_cache_misses_total",
    "urank_serve_cache_bytes",
]


def normalize(line):
    """Canonicalizes one response line for comparison."""
    obj = json.loads(line)
    if not isinstance(obj, dict):
        raise ValueError("response is not a JSON object: %r" % line)
    obj.pop("stats", None)
    if isinstance(obj.get("error"), str):
        obj["error"] = _FLOAT_RE.sub("<t>", obj["error"])
    return json.dumps(obj, sort_keys=True)


def run_stdin(urankd, requests_text):
    proc = subprocess.run(
        [urankd, "--stdin", "--workers=1"],
        input=requests_text,
        capture_output=True,
        text=True,
        timeout=120,
    )
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise SystemExit("urankd --stdin exited with %d" % proc.returncode)
    return [line for line in proc.stdout.splitlines() if line.strip()]


def check_transcript(urankd, testdata, regen):
    requests_path = testdata / "smoke_requests.ndjson"
    expected_path = testdata / "smoke_expected.ndjson"
    requests_text = requests_path.read_text()
    got = run_stdin(urankd, requests_text)

    request_count = sum(1 for l in requests_text.splitlines() if l.strip())
    if len(got) != request_count:
        raise SystemExit(
            "expected one response per request: %d requests, %d responses"
            % (request_count, len(got))
        )

    if regen:
        expected_path.write_text("".join(line + "\n" for line in got))
        print("serve_smoke: regenerated %s (%d lines)" % (expected_path, len(got)))
        return

    expected = [
        line
        for line in expected_path.read_text().splitlines()
        if line.strip()
    ]
    if len(got) != len(expected):
        raise SystemExit(
            "transcript length mismatch: got %d responses, golden has %d"
            % (len(got), len(expected))
        )

    failures = 0
    for i, (g, e) in enumerate(zip(got, expected), start=1):
        ng, ne = normalize(g), normalize(e)
        if ng != ne:
            failures += 1
            sys.stderr.write(
                "line %d mismatch\n  got:    %s\n  golden: %s\n" % (i, ng, ne)
            )
    if failures:
        raise SystemExit("serve_smoke: %d transcript line(s) diverged" % failures)
    print("serve_smoke: transcript OK (%d lines)" % len(got))


def check_metrics(urankd):
    # The load gives the serving counters something to count before the
    # scrape: one loaded relation, one miss, one hit.
    lines = [
        '{"v":1,"type":"admin/load","id":1,"name":"m","model":"tuple",'
        '"data":"1,10,0.5,-1\\n2,9,0.4,-1\\n"}',
        '{"v":1,"type":"query","id":2,"relation":"m",'
        '"semantics":"expected-rank","k":2}',
        '{"v":1,"type":"query","id":3,"relation":"m",'
        '"semantics":"expected-rank","k":2}',
        '{"v":1,"type":"metrics","id":4}',
    ]
    got = run_stdin(urankd, "".join(l + "\n" for l in lines))
    scrape = json.loads(got[-1])
    if scrape.get("code") != 0:
        raise SystemExit("metrics request failed: %s" % got[-1])
    body = scrape.get("body", "")
    missing = [s for s in METRIC_SUBSTRINGS if s not in body]
    if missing:
        raise SystemExit("metrics scrape missing families: %s" % ", ".join(missing))
    print("serve_smoke: metrics scrape OK (%d families)" % len(METRIC_SUBSTRINGS))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--urankd", required=True, help="path to the urankd binary")
    parser.add_argument(
        "--testdata", required=True, help="directory with smoke_*.ndjson"
    )
    parser.add_argument(
        "--regen",
        action="store_true",
        help="rewrite smoke_expected.ndjson from the current binary's output",
    )
    args = parser.parse_args()

    testdata = pathlib.Path(args.testdata)
    check_transcript(args.urankd, testdata, args.regen)
    if not args.regen:
        check_metrics(args.urankd)


if __name__ == "__main__":
    main()
