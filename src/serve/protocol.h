// urankd wire protocol, version 1 (full grammar in docs/SERVING.md).
//
// Newline-delimited JSON: each request is one object on one line, each
// response is one object on one line, responses carry the request's `id`
// back so clients may pipeline. The query payload is a direct
// serialization of urank::QueryRequest — the wire surface and the
// in-process API are the same struct, which is the point of the PR-7 API
// redesign: a request parsed off a socket and a request built in code are
// indistinguishable by the time they reach QueryEngine::Run.
//
// Request envelope (members beyond the envelope depend on `type`):
//   {"v":1, "type":"query"|"mutate"|"admin/load"|"admin/relations"|
//    "metrics"|"ping", "id":<number|string>, ...}
//
// query:          {"relation":NAME, "semantics":NAME, "k":K,
//                  ["phi":P], ["threshold":T], ["ties":NAME],
//                  ["deadline_ms":D], ["cache":"default"|"bypass"],
//                  ["threads":T], ["min_epoch":E]}
//   -> {"v":1,"id":ID,"status":"ok","code":0,"relation":NAME,
//       "epoch":E,"cache":"hit"|"miss"|"bypass","ids":[...],
//       "statistics":[...],"stats":{...}}
//   "epoch" is the epoch the answer was computed against; "min_epoch"
//   demands at least that epoch (kEpochNotAvailable otherwise) — the
//   read-your-writes handshake after a mutate.
//
// mutate:         {"relation":NAME, "ops":[OP, ...]} with
//   OP = {"op":"insert"|"update",
//         "tuple":{"id":N,"score":S,"prob":P} | {"id":N,"pdf":[
//                  {"value":V,"prob":P}, ...]}, ["rule":K]}
//      | {"op":"delete", "id":N}
//   The tuple payload shape must match the relation's model ("score"/
//   "prob" for tuple-level, "pdf" for attribute-level); "rule" is the
//   tuple-level exclusion-rule key (>= 0 groups mutually exclusive
//   tuples, -1/absent means independent). Ops apply atomically —
//   all-or-nothing — and one epoch is published per request.
//   -> {"v":1,"id":ID,"status":"ok","code":0,"relation":NAME,"epoch":E,
//       "applied":COUNT,"tuples":N}
//
// admin/load:     {"name":NAME, "model":"attr"|"tuple",
//                  "path":CSV_PATH | "data":CSV_TEXT}
//   -> {"v":1,"id":ID,"status":"ok","code":0,"name":NAME,"epoch":E,
//       "tuples":N}
//
// admin/relations -> {"v":1,"id":ID,"status":"ok","code":0,
//                     "relations":[{"name":...,"model":...,"epoch":...,
//                                   "tuples":...}, ...]}
//
// metrics         -> {"v":1,"id":ID,"status":"ok","code":0,
//                     "content_type":"text/plain; version=0.0.4",
//                     "body":<Prometheus text page>}
//
// ping            -> {"v":1,"id":ID,"status":"ok","code":0}
//
// Errors (any type): {"v":1,"id":ID,"status":<status name>,
//                     "code":<wire value>,"error":<message>}
// with status/code from the QueryStatusCode taxonomy
// (core/engine/query_engine.h) — names via ToString, numeric values via
// WireValue; both are stable.
//
// This header is transport-agnostic: parsing and rendering only. Requests
// that fail to parse still produce a WireRequest (type kInvalid) carrying
// the best-effort `id`, so the error response can be correlated.

#ifndef URANK_SERVE_PROTOCOL_H_
#define URANK_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include <vector>

#include "core/engine/mutable_relation.h"
#include "core/engine/query_engine.h"
#include "model/attr_model.h"
#include "model/tuple_model.h"
#include "serve/json.h"

namespace urank {
namespace serve {

// Protocol version spoken by this build. Requests must carry "v":1;
// responses always do.
inline constexpr int kWireVersion = 1;

// Relation model vocabulary for admin/load ("attr" | "tuple").
enum class WireModel { kAttr, kTuple };

const char* ToString(WireModel model);
bool FromString(std::string_view name, WireModel* out);

// One parsed mutate op. The payload is model-agnostic at parse time (the
// parser does not know the relation's model): a tuple-level payload fills
// `tuple`/`rule_key`, an attribute-level payload fills `attr_tuple`; the
// server rejects a shape mismatch at execution.
struct WireMutation {
  enum class Op { kInsert, kDelete, kUpdate };
  Op op = Op::kInsert;
  // kDelete target.
  int id = 0;
  // kInsert/kUpdate, tuple-level payload ("score"/"prob").
  TLTuple tuple;
  long long rule_key = -1;
  // kInsert/kUpdate, attribute-level payload ("pdf").
  AttrTuple attr_tuple;
  bool has_pdf = false;
};

struct WireRequest {
  enum class Type {
    kInvalid,  // parse failed; `error` holds the reason
    kQuery,
    kMutate,
    kAdminLoad,
    kAdminRelations,
    kMetrics,
    kPing,
  };

  Type type = Type::kInvalid;
  // Echoed verbatim into the response ("id" member; null when absent).
  JsonValue id;
  // kInvalid only: what was wrong with the line.
  std::string error;

  // kQuery / kMutate.
  std::string relation;
  QueryRequest query;

  // kMutate.
  std::vector<WireMutation> mutations;

  // kAdminLoad: exactly one of `path` / `inline_data` is non-empty.
  std::string name;
  WireModel model = WireModel::kTuple;
  std::string path;
  std::string inline_data;
  bool has_inline_data = false;
};

// Parses one request line. Returns false when the line is not an
// acceptable protocol message — `*out` is then a kInvalid request whose
// `error` explains why and whose `id` is recovered when possible, ready
// to be passed to RenderErrorResponse with kInvalidRequest.
bool ParseRequest(std::string_view line, WireRequest* out);

// QueryRequest <-> JSON payload members, shared by client (load_gen) and
// server. FromJson validates vocabulary (semantics, ties, cache) and
// ranges it can check without an engine; engine-level validation stays in
// QueryEngine::Validate.
void QueryRequestToJson(const std::string& relation, const QueryRequest& query,
                        JsonValue* object);
bool QueryRequestFromJson(const JsonValue& object, std::string* relation,
                          QueryRequest* query, std::string* error);

// Response rendering. Every renderer returns one compact JSON line
// WITHOUT the trailing newline (transports append it).

// How the result cache treated a query (reported in the response).
enum class CacheOutcome { kHit, kMiss, kBypass };

const char* ToString(CacheOutcome outcome);

// Per-request serving timings reported in the response "stats" object
// alongside the engine's QueryStats. serve_ms is the server-side
// handle latency (admission to response rendering) — the number the
// warm-cache acceptance gate is measured on, because it excludes
// transport RTT.
struct ServeTimings {
  double serve_ms = 0.0;
  double queue_ms = 0.0;
};

std::string RenderQueryResponse(const JsonValue& id,
                                const std::string& relation,
                                std::uint64_t epoch, CacheOutcome cache,
                                const RankingAnswer& answer,
                                const QueryStats& stats,
                                const ServeTimings& timings);

std::string RenderLoadResponse(const JsonValue& id, const std::string& name,
                               std::uint64_t epoch, long long tuples);

std::string RenderMutateResponse(const JsonValue& id,
                                 const std::string& relation,
                                 std::uint64_t epoch, long long applied,
                                 long long tuples);

// `relations_json` must be an array built by the caller (registry order).
std::string RenderRelationsResponse(const JsonValue& id,
                                    JsonValue relations_json);

std::string RenderMetricsResponse(const JsonValue& id,
                                  const std::string& body);

std::string RenderPingResponse(const JsonValue& id);

std::string RenderErrorResponse(const JsonValue& id, QueryStatusCode code,
                                const std::string& message);

// Client-side helper (load_gen, tests): extracts (status code, cache
// outcome, serve_ms) from a response line. Returns false when the line is
// not a well-formed response.
struct ParsedResponse {
  QueryStatusCode code = QueryStatusCode::kOk;
  CacheOutcome cache = CacheOutcome::kBypass;
  bool has_cache = false;
  double serve_ms = 0.0;
  std::string error;
  JsonValue body;
};

bool ParseResponse(std::string_view line, ParsedResponse* out);

}  // namespace serve
}  // namespace urank

#endif  // URANK_SERVE_PROTOCOL_H_
