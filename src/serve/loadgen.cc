#include "serve/loadgen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <utility>

#include "core/engine/query_engine.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "util/rng.h"

namespace urank {
namespace serve {

namespace {

using Clock = std::chrono::steady_clock;

// Per-connection tallies, merged after the joins.
struct WorkerResult {
  long long sent = 0;
  long long ok = 0;
  long long errors = 0;
  long long overloaded = 0;
  long long deadline_exceeded = 0;
  long long transport_failures = 0;
  long long cache_hits = 0;
  long long cache_misses = 0;
  std::vector<double> client_ms;
  std::vector<double> serve_ms;
};

// The kMixed grid: all eight semantics; k alternates between the base and
// 10x; quantile queries split between the median and phi = 0.9.
std::string NextRequestLine(const LoadGenOptions& options, Rng* rng,
                            long long sequence) {
  QueryRequest query;
  if (options.workload == Workload::kMixed) {
    constexpr RankingSemantics kAll[] = {
        RankingSemantics::kExpectedRank, RankingSemantics::kMedianRank,
        RankingSemantics::kQuantileRank, RankingSemantics::kUTopk,
        RankingSemantics::kUKRanks,      RankingSemantics::kPTk,
        RankingSemantics::kGlobalTopk,   RankingSemantics::kExpectedScore,
    };
    query.options.semantics = kAll[rng->UniformInt(0, 7)];
    query.options.k = rng->Bernoulli(0.5) ? options.k : options.k * 10;
    query.options.phi = rng->Bernoulli(0.5) ? 0.5 : 0.9;
    query.options.threshold = 0.1;
  } else {
    query.options.semantics = RankingSemantics::kExpectedRank;
    query.options.k = options.k;
  }
  query.deadline_ms = options.deadline_ms;
  query.cache_mode =
      options.bypass_cache ? CacheMode::kBypass : CacheMode::kDefault;

  JsonValue obj = JsonValue::MakeObject();
  obj.Set("v", JsonValue::MakeNumber(kWireVersion));
  obj.Set("type", JsonValue::MakeString("query"));
  obj.Set("id", JsonValue::MakeNumber(static_cast<double>(sequence)));
  QueryRequestToJson(options.relation, query, &obj);
  return WriteJson(obj);
}

void WorkerLoop(const LoadGenOptions& options, int worker_index,
                Clock::time_point start, Clock::time_point stop_at,
                WorkerResult* result) {
  Client client;
  std::string error;
  if (!client.Connect(options.host, options.port, &error)) {
    ++result->transport_failures;
    return;
  }
  Rng rng(options.seed * 1000003ull + static_cast<std::uint64_t>(worker_index));

  // Open-loop schedule: this worker owns every `connections`-th slot of
  // the aggregate arrival sequence.
  const double interval_s =
      options.target_qps > 0.0
          ? static_cast<double>(options.connections) / options.target_qps
          : 0.0;
  long long sequence = 0;
  for (;;) {
    if (interval_s > 0.0) {
      const auto launch_at =
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(
                          (static_cast<double>(sequence) +
                           static_cast<double>(worker_index) /
                               options.connections) *
                          interval_s));
      if (launch_at >= stop_at) break;
      std::this_thread::sleep_until(launch_at);
    } else if (Clock::now() >= stop_at) {
      break;
    }

    const std::string line = NextRequestLine(options, &rng, sequence);
    ++sequence;
    ++result->sent;
    const Clock::time_point sent_at = Clock::now();
    std::string response_line;
    if (!client.Call(line, &response_line)) {
      ++result->transport_failures;
      if (!client.Connect(options.host, options.port, &error)) return;
      continue;
    }
    result->client_ms.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - sent_at)
            .count());

    ParsedResponse response;
    if (!ParseResponse(response_line, &response)) {
      ++result->errors;
      continue;
    }
    if (response.code == QueryStatusCode::kOk) {
      ++result->ok;
      result->serve_ms.push_back(response.serve_ms);
      if (response.has_cache) {
        if (response.cache == CacheOutcome::kHit) ++result->cache_hits;
        if (response.cache == CacheOutcome::kMiss) ++result->cache_misses;
      }
    } else {
      ++result->errors;
      if (response.code == QueryStatusCode::kOverloaded) {
        ++result->overloaded;
      } else if (response.code == QueryStatusCode::kDeadlineExceeded) {
        ++result->deadline_exceeded;
      }
    }
  }
}

}  // namespace

LatencySummary Summarize(std::vector<double> samples_ms) {
  LatencySummary summary;
  if (samples_ms.empty()) return summary;
  std::sort(samples_ms.begin(), samples_ms.end());
  double sum = 0.0;
  for (double s : samples_ms) sum += s;
  const auto at = [&samples_ms](double q) {
    const std::size_t index = static_cast<std::size_t>(
        q * static_cast<double>(samples_ms.size() - 1) + 0.5);
    return samples_ms[std::min(index, samples_ms.size() - 1)];
  };
  summary.mean_ms = sum / static_cast<double>(samples_ms.size());
  summary.p50_ms = at(0.50);
  summary.p90_ms = at(0.90);
  summary.p99_ms = at(0.99);
  summary.max_ms = samples_ms.back();
  return summary;
}

bool RunLoadGen(const LoadGenOptions& options, LoadGenReport* report,
                std::string* error) {
  *report = LoadGenReport();
  if (options.connections < 1 || options.port <= 0 ||
      options.duration_s <= 0.0) {
    if (error != nullptr) {
      *error = "load_gen needs connections >= 1, a port and a duration";
    }
    return false;
  }

  const Clock::time_point start = Clock::now();
  const Clock::time_point stop_at =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(options.duration_s));

  std::vector<WorkerResult> results(
      static_cast<std::size_t>(options.connections));
  std::vector<std::thread> threads;
  threads.reserve(results.size());
  for (int i = 0; i < options.connections; ++i) {
    threads.emplace_back(WorkerLoop, std::cref(options), i, start, stop_at,
                         &results[static_cast<std::size_t>(i)]);
  }
  for (std::thread& t : threads) t.join();
  report->duration_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  std::vector<double> client_ms;
  std::vector<double> serve_ms;
  for (WorkerResult& r : results) {
    report->sent += r.sent;
    report->ok += r.ok;
    report->errors += r.errors;
    report->overloaded += r.overloaded;
    report->deadline_exceeded += r.deadline_exceeded;
    report->transport_failures += r.transport_failures;
    report->cache_hits += r.cache_hits;
    report->cache_misses += r.cache_misses;
    client_ms.insert(client_ms.end(), r.client_ms.begin(), r.client_ms.end());
    serve_ms.insert(serve_ms.end(), r.serve_ms.begin(), r.serve_ms.end());
  }
  if (report->sent == 0 &&
      report->transport_failures >= options.connections) {
    if (error != nullptr) {
      *error = "no connection to " + options.host + ":" +
               std::to_string(options.port) + " could be established";
    }
    return false;
  }
  if (report->duration_s > 0.0) {
    report->achieved_qps =
        static_cast<double>(report->ok + report->errors) / report->duration_s;
  }
  report->client = Summarize(std::move(client_ms));
  report->serve = Summarize(std::move(serve_ms));
  return true;
}

}  // namespace serve
}  // namespace urank
