#include "serve/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <utility>

namespace urank {
namespace serve {

JsonValue JsonValue::MakeBool(bool value) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::MakeNumber(double value) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::MakeString(std::string value) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::MakeArray() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::MakeObject() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const JsonMember& member : members_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

void JsonValue::Set(std::string key, JsonValue value) {
  if (type_ != Type::kObject) return;
  members_.emplace_back(std::move(key), std::move(value));
}

void JsonValue::Append(JsonValue value) {
  if (type_ != Type::kArray) return;
  items_.push_back(std::move(value));
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    SkipWhitespace();
    if (!ParseValue(out, 0)) return false;
    SkipWhitespace();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  bool Fail(const char* message) {
    if (error_ != nullptr) {
      *error_ = std::string(message) + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case 'n':
        if (!Literal("null")) return Fail("invalid literal");
        *out = JsonValue();
        return true;
      case 't':
        if (!Literal("true")) return Fail("invalid literal");
        *out = JsonValue::MakeBool(true);
        return true;
      case 'f':
        if (!Literal("false")) return Fail("invalid literal");
        *out = JsonValue::MakeBool(false);
        return true;
      case '"': {
        std::string s;
        if (!ParseString(&s)) return false;
        *out = JsonValue::MakeString(std::move(s));
        return true;
      }
      case '[':
        return ParseArray(out, depth);
      case '{':
        return ParseObject(out, depth);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Fail("invalid \\u escape");
      }
    }
    pos_ += 4;
    *out = value;
    return true;
  }

  void AppendUtf8(unsigned cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Fail("unterminated string");
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return Fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          unsigned cp = 0;
          if (!ParseHex4(&cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: require the paired low surrogate.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Fail("unpaired surrogate");
            }
            pos_ += 2;
            unsigned low = 0;
            if (!ParseHex4(&low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) {
              return Fail("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Fail("unpaired surrogate");
          }
          AppendUtf8(cp, out);
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '+' || c == '-' || c == '.' ||
          c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Fail("expected a value");
    // std::from_chars is laxer than the RFC 8259 grammar in one spot:
    // it accepts leading zeros ("01"). Reject them here.
    {
      size_t digits = start;
      if (digits < pos_ && text_[digits] == '-') ++digits;
      if (digits + 1 < pos_ && text_[digits] == '0' &&
          text_[digits + 1] >= '0' && text_[digits + 1] <= '9') {
        pos_ = start;
        return Fail("leading zero in number");
      }
    }
    double value = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc() || ptr != last) {
      pos_ = start;
      return Fail("invalid number");
    }
    *out = JsonValue::MakeNumber(value);
    return true;
  }

  bool ParseArray(JsonValue* out, int depth) {
    // `depth` is this container's own 0-based depth, so the cap admits
    // exactly kMaxJsonDepth container levels.
    if (depth >= kMaxJsonDepth) return Fail("nesting too deep");
    ++pos_;  // '['
    *out = JsonValue::MakeArray();
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue item;
      SkipWhitespace();
      if (!ParseValue(&item, depth + 1)) return false;
      out->Append(std::move(item));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      const char c = text_[pos_++];
      if (c == ']') return true;
      if (c != ',') {
        --pos_;
        return Fail("expected ',' or ']'");
      }
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    if (depth >= kMaxJsonDepth) return Fail("nesting too deep");
    ++pos_;  // '{'
    *out = JsonValue::MakeObject();
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':'");
      }
      ++pos_;
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      const char c = text_[pos_++];
      if (c == '}') return true;
      if (c != ',') {
        --pos_;
        return Fail("expected ',' or '}'");
      }
    }
  }

  std::string_view text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

bool ParseJson(std::string_view text, JsonValue* out, std::string* error) {
  Parser parser(text, error);
  return parser.Parse(out);
}

void AppendJsonEscaped(std::string_view text, std::string* out) {
  out->push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendJsonNumber(double value, std::string* out) {
  // JSON has no NaN/Infinity; map them to null so the document stays
  // parseable (the protocol never produces them on purpose).
  if (!std::isfinite(value)) {
    out->append("null");
    return;
  }
  // Exactly-representable integers print without a fraction or exponent:
  // ids, counts and k values stay integer-shaped on the wire.
  constexpr double kMaxExactInt = 9007199254740992.0;  // 2^53
  if (value == std::floor(value) && std::fabs(value) <= kMaxExactInt) {
    char buf[32];
    const auto [ptr, ec] =
        std::to_chars(buf, buf + sizeof(buf),
                      static_cast<long long>(value));
    if (ec == std::errc()) {
      out->append(buf, static_cast<size_t>(ptr - buf));
      return;
    }
  }
  char buf[40];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec == std::errc()) {
    out->append(buf, static_cast<size_t>(ptr - buf));
  } else {
    out->append("null");
  }
}

void AppendJson(const JsonValue& value, std::string* out) {
  switch (value.type()) {
    case JsonValue::Type::kNull:
      out->append("null");
      return;
    case JsonValue::Type::kBool:
      out->append(value.bool_value() ? "true" : "false");
      return;
    case JsonValue::Type::kNumber:
      AppendJsonNumber(value.number_value(), out);
      return;
    case JsonValue::Type::kString:
      AppendJsonEscaped(value.string_value(), out);
      return;
    case JsonValue::Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& item : value.array_items()) {
        if (!first) out->push_back(',');
        first = false;
        AppendJson(item, out);
      }
      out->push_back(']');
      return;
    }
    case JsonValue::Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const JsonMember& member : value.object_members()) {
        if (!first) out->push_back(',');
        first = false;
        AppendJsonEscaped(member.first, out);
        out->push_back(':');
        AppendJson(member.second, out);
      }
      out->push_back('}');
      return;
    }
  }
}

std::string WriteJson(const JsonValue& value) {
  std::string out;
  AppendJson(value, &out);
  return out;
}

}  // namespace serve
}  // namespace urank
