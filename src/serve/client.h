// Minimal blocking client for the urankd wire protocol, used by
// tools/load_gen.cc and the serve tests. One connection, one in-flight
// request at a time: Call writes a request line and blocks for the
// response line. (The protocol itself permits pipelining via `id`; this
// client simply does not need it.)

#ifndef URANK_SERVE_CLIENT_H_
#define URANK_SERVE_CLIENT_H_

#include <string>

namespace urank {
namespace serve {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Connects to `host`:`port` (numeric IPv4, e.g. "127.0.0.1"). Returns
  // false with a description in `*error` on failure.
  bool Connect(const std::string& host, int port, std::string* error);

  bool connected() const { return fd_ >= 0; }

  // Sends `line` (newline appended) and reads one response line into
  // `*response` (terminator stripped). False on any transport failure —
  // the connection is closed and must be re-Connected.
  bool Call(const std::string& line, std::string* response);

  void Close();

 private:
  bool ReadLine(std::string* line);

  int fd_ = -1;
  std::string buffer_;
};

}  // namespace serve
}  // namespace urank

#endif  // URANK_SERVE_CLIENT_H_
