// Minimal JSON values for the urankd wire protocol (docs/SERVING.md).
//
// The daemon speaks newline-delimited JSON: one request object per line
// in, one response object per line out. This header provides exactly what
// that needs — a small tree value, a strict recursive-descent parser and a
// deterministic compact writer — with no external dependency.
//
// Determinism contract (what makes golden-transcript diffing work): the
// writer emits object members in insertion order, no whitespace, and
// formats every number via std::to_chars shortest round-trip (integral
// values within the exactly-representable double range print without an
// exponent or fraction). The same tree always renders to the same bytes.
//
// Robustness: the parser is strict (trailing garbage, unquoted keys,
// comments and NaN/Infinity literals are errors), rejects nesting deeper
// than kMaxJsonDepth (a hostile client must not be able to overflow the
// stack of a serving thread) and never aborts on malformed input — every
// failure is a false return plus a position-carrying message.

#ifndef URANK_SERVE_JSON_H_
#define URANK_SERVE_JSON_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace urank {
namespace serve {

class JsonValue;

// Objects preserve insertion order; lookups are linear (protocol objects
// carry a dozen members at most).
using JsonMember = std::pair<std::string, JsonValue>;

// Parse depth limit, applied to arrays and objects combined.
inline constexpr int kMaxJsonDepth = 64;

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null

  static JsonValue MakeBool(bool value);
  static JsonValue MakeNumber(double value);
  static JsonValue MakeString(std::string value);
  static JsonValue MakeArray();
  static JsonValue MakeObject();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Typed accessors: meaningful only for the matching type (they return
  // the zero value otherwise — protocol code always checks is_*() or uses
  // the Find helpers below, so no abort is warranted here).
  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array_items() const { return items_; }
  const std::vector<JsonMember>& object_members() const { return members_; }

  // Object lookup: the value under `key`, or nullptr when this is not an
  // object or the key is absent.
  const JsonValue* Find(std::string_view key) const;

  // Appends `key: value` to an object. Keys are assumed unique (the writer
  // does not deduplicate). No-op unless is_object().
  void Set(std::string key, JsonValue value);

  // Appends an element to an array. No-op unless is_array().
  void Append(JsonValue value);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<JsonMember> members_;
};

// Parses exactly one JSON document occupying all of `text` (surrounding
// whitespace allowed). On failure returns false and describes the first
// problem (with its byte offset) in `*error` when non-null.
bool ParseJson(std::string_view text, JsonValue* out, std::string* error);

// Compact deterministic rendering (see the contract above). No trailing
// newline.
std::string WriteJson(const JsonValue& value);
void AppendJson(const JsonValue& value, std::string* out);

// Serialization helpers shared by the protocol code: a complete JSON
// string token (surrounding quotes included, contents escaped per RFC
// 8259 with control characters as \u00XX), and the deterministic number
// rendering used by the writer.
void AppendJsonEscaped(std::string_view text, std::string* out);
void AppendJsonNumber(double value, std::string* out);

}  // namespace serve
}  // namespace urank

#endif  // URANK_SERVE_JSON_H_
