// Loopback TCP transport for urankd.
//
// TcpServer accepts connections on 127.0.0.1 and runs one thread per
// connection, each reading newline-delimited request lines and writing
// back the Server's newline-delimited responses. The transport is a thin
// shell: every protocol decision — parsing, admission, shedding,
// deadlines — lives in serve/server.h, which is exactly what lets the
// --stdin mode and the tests exercise the same code path without a
// socket.
//
// Binding is loopback-only by design: urankd has no authentication, so
// it must not listen on external interfaces. Port 0 requests an
// ephemeral port; port() reports what the kernel assigned (the test and
// benchmark harnesses depend on this).
//
// Shutdown(): stops accepting, shuts down every open connection and
// joins all transport threads. It does NOT drain the Server — callers
// sequence transport shutdown and Server::Drain explicitly (urankd does
// transport first, so no new work arrives while in-flight jobs finish).

#ifndef URANK_SERVE_TCP_H_
#define URANK_SERVE_TCP_H_

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/server.h"

namespace urank {
namespace serve {

class TcpServer {
 public:
  // Serves `server` (not owned; must outlive this transport).
  explicit TcpServer(Server* server);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  // Binds 127.0.0.1:`port` (0 = ephemeral) and starts the accept loop.
  // Returns false with a description in `*error` on bind/listen failure.
  bool Start(int port, std::string* error);

  // The bound port; 0 before a successful Start.
  int port() const { return port_; }

  // Stops accepting, closes every connection, joins all threads.
  // Idempotent.
  void Shutdown();

 private:
  void AcceptLoop();
  void ConnectionLoop(int fd);

  Server* const server_;
  std::atomic<bool> stop_{false};
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;

  std::mutex conn_mu_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace serve
}  // namespace urank

#endif  // URANK_SERVE_TCP_H_
