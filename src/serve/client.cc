#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace urank {
namespace serve {

Client::~Client() { Close(); }

bool Client::Connect(const std::string& host, int port, std::string* error) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "invalid IPv4 address: " + host;
    Close();
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    Close();
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  buffer_.clear();
  return true;
}

bool Client::Call(const std::string& line, std::string* response) {
  if (fd_ < 0) return false;
  std::string out = line;
  out.push_back('\n');
  std::size_t sent = 0;
  while (sent < out.size()) {
    const ssize_t n =
        ::send(fd_, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      Close();
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  if (!ReadLine(response)) {
    Close();
    return false;
  }
  return true;
}

bool Client::ReadLine(std::string* line) {
  char chunk[4096];
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      line->assign(buffer_, 0, nl);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      buffer_.erase(0, nl + 1);
      return true;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

}  // namespace serve
}  // namespace urank
