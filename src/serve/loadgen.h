// Load generator for urankd (tools/load_gen.cc, bench/bench_serve.cc).
//
// Drives a running daemon over TCP with either of two loops:
//   * closed loop (target_qps == 0): each connection fires its next
//     request the moment the previous response arrives — measures the
//     server's sustainable throughput;
//   * open loop (target_qps > 0): requests are launched on a fixed
//     schedule regardless of response times — measures latency under a
//     controlled arrival rate, and (unlike the closed loop) exposes
//     queueing collapse when the offered rate exceeds capacity.
//
// Workloads:
//   * kMixed cycles pseudo-randomly (seeded urank::Rng — runs are
//     reproducible) over all eight ranking semantics and a small k/phi/
//     threshold grid: the cache-friendly dashboard-refresh shape.
//   * kRepeat issues one fixed query forever: the pure cache-hit shape
//     the warm-vs-bypass acceptance comparison uses.
//
// The report separates client-observed latency (RTT, what a user feels)
// from server-side handle latency (the response's stats.serve_ms, what
// the daemon spent from admission to render). Cache-effect ratios are
// computed on the server-side numbers so loopback RTT noise cannot
// dilute them.

#ifndef URANK_SERVE_LOADGEN_H_
#define URANK_SERVE_LOADGEN_H_

#include <cstdint>
#include <string>
#include <vector>

namespace urank {
namespace serve {

enum class Workload { kMixed, kRepeat };

struct LoadGenOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string relation = "default";
  Workload workload = Workload::kMixed;
  // Concurrent connections, each a closed/open loop of its own.
  int connections = 4;
  // Wall-clock run length, seconds.
  double duration_s = 5.0;
  // Aggregate target arrival rate across all connections; 0 = closed loop.
  double target_qps = 0.0;
  // Every request sets cache:"bypass" (for the warm-vs-bypass comparison).
  bool bypass_cache = false;
  // Deadline attached to every query; <= 0 = none.
  double deadline_ms = 0.0;
  // k used by the kRepeat workload and as the base of the kMixed grid.
  int k = 10;
  std::uint64_t seed = 1;
};

struct LatencySummary {
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p90_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

struct LoadGenReport {
  long long sent = 0;
  long long ok = 0;
  long long errors = 0;  // every non-ok status, the two below included
  long long overloaded = 0;
  long long deadline_exceeded = 0;
  long long transport_failures = 0;
  long long cache_hits = 0;
  long long cache_misses = 0;
  double duration_s = 0.0;
  double achieved_qps = 0.0;
  LatencySummary client;  // request->response RTT
  LatencySummary serve;   // server-side stats.serve_ms of ok responses
};

// Runs the workload against a live daemon. Returns false with a
// description in `*error` when no connection could be established at all
// (partial connection failures degrade `connections` instead).
bool RunLoadGen(const LoadGenOptions& options, LoadGenReport* report,
                std::string* error);

// Percentile helper shared with bench_serve: `samples` need not be
// sorted; empty input yields a zero summary.
LatencySummary Summarize(std::vector<double> samples_ms);

}  // namespace serve
}  // namespace urank

#endif  // URANK_SERVE_LOADGEN_H_
