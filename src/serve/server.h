// urankd server core: request admission, execution and response
// rendering, independent of transport.
//
// One Server owns
//   * a registry of named relations, each a mutable store (incremental
//     ingestion via the `mutate` request) wrapped by a QueryEngine. The
//     store's monotonically increasing epoch — bumped by every published
//     mutation batch, and continued past the old store's on an
//     admin/load replacement — is what keys (and thereby invalidates)
//     cached results for old snapshots,
//   * a bounded admission queue drained by a small worker pool, and
//   * an epoch-keyed result cache (serve/result_cache.h) consulted above
//     the engine's statistic memo.
//
// Admission control and deadlines (docs/SERVING.md):
//   * Submit parses the line immediately. Malformed lines are answered
//     kInvalidRequest without queueing; metrics and ping are answered
//     inline — observability must keep working while the queue is full.
//   * query and admin/load jobs enter the bounded queue. A full queue (or
//     a draining server) sheds the job immediately with kOverloaded.
//   * A query's deadline (its deadline_ms, or the server default when the
//     request carries none) is an end-to-end budget starting at
//     admission. It is enforced when a worker dequeues the job: an
//     expired job is answered kDeadlineExceeded without running. A job
//     that has started executing is never interrupted — kernels have no
//     cancellation points, and killing threads mid-DP would corrupt
//     shared prepared state.
//
// Graceful drain: Drain() stops admission (subsequent Submits shed with
// kOverloaded), executes every job already admitted, and joins the
// workers. Idempotent; the destructor calls it. This is what SIGTERM in
// tools/urankd.cc triggers — in-flight work completes, nothing new
// starts.
//
// Thread-safety: Submit/HandleLine may be called from any number of
// transport threads. Engine execution happens outside all server locks —
// only queue and registry bookkeeping is serialized.

#ifndef URANK_SERVE_SERVER_H_
#define URANK_SERVE_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <istream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/engine/query_engine.h"
#include "model/attr_model.h"
#include "model/tuple_model.h"
#include "serve/protocol.h"
#include "serve/result_cache.h"

namespace urank {
namespace serve {

struct ServerOptions {
  // Worker threads draining the admission queue. 0 means no background
  // execution at all: jobs are admitted but only run when Drain() is
  // called — deterministic by construction, which is what the overload
  // and shedding tests build on. HandleLine with workers == 0 would wait
  // forever; transports use >= 1.
  int workers = 2;
  // Bounded admission-queue capacity; a Submit finding the queue at
  // capacity is shed with kOverloaded.
  std::size_t queue_capacity = 256;
  // Deadline applied to queries that carry none (<= 0: no default).
  double default_deadline_ms = 0.0;
  // Result-cache byte budget (0 disables result caching).
  std::uint64_t cache_bytes = 64ull << 20;
};

// One registered relation, as reported by admin/relations.
struct RelationInfo {
  std::string name;
  WireModel model = WireModel::kTuple;
  std::uint64_t epoch = 0;
  long long tuples = 0;
};

class Server {
 public:
  explicit Server(const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Registers (or replaces, bumping the epoch) a relation parsed from CSV
  // text (io/csv.h formats). Returns false with a description in `*error`
  // on a parse/validation failure — the registry is unchanged.
  bool LoadRelation(const std::string& name, WireModel model,
                    std::istream& in, std::string* error);
  bool LoadRelationFile(const std::string& name, WireModel model,
                        const std::string& path, std::string* error);

  // In-process registration for already-built relations (benchmarks,
  // tests). Same epoch semantics as LoadRelation.
  void AddRelation(const std::string& name, TupleRelation rel);
  void AddRelation(const std::string& name, AttrRelation rel);

  // The mutable store behind a registered relation (nullptr when `name`
  // is unknown or backed by the other model). In-process writers may
  // mutate/publish through it directly; the wire path is `mutate`.
  std::shared_ptr<MutableTupleRelation> MutableTupleStore(
      const std::string& name) const;
  std::shared_ptr<MutableAttrRelation> MutableAttrStore(
      const std::string& name) const;

  std::vector<RelationInfo> Relations() const;

  // Admits one request line. The future resolves to the complete response
  // line (no trailing newline) — possibly immediately (malformed,
  // metrics, ping, shed). Never throws on protocol problems; every
  // outcome is a response.
  std::future<std::string> Submit(std::string line);

  // Blocking convenience for line-at-a-time transports (stdin mode,
  // per-connection TCP threads).
  std::string HandleLine(const std::string& line);

  // Stops admission, executes every already-admitted job, joins workers.
  // Idempotent.
  void Drain();

  const ServerOptions& options() const { return options_; }
  ResultCache& result_cache() { return cache_; }

 private:
  // Every registered relation is backed by a mutable store (exactly one
  // of the two pointers is set, matching `model`); the engine wraps that
  // store, so queries always resolve its latest published epoch. A
  // replacement load installs a fresh store whose epoch continues past
  // the old one's (EnsureEpochAtLeast), keeping result-cache keys unique.
  struct RelationEntry {
    std::shared_ptr<const QueryEngine> engine;
    WireModel model = WireModel::kTuple;
    std::shared_ptr<MutableTupleRelation> tuple_store;
    std::shared_ptr<MutableAttrRelation> attr_store;

    std::uint64_t epoch() const {
      return tuple_store != nullptr ? tuple_store->epoch()
                                    : attr_store->epoch();
    }
    long long tuples() const {
      return tuple_store != nullptr ? tuple_store->live_size()
                                    : attr_store->live_size();
    }
  };

  struct Job {
    WireRequest request;
    std::promise<std::string> promise;
    // Monotonic nanosecond timestamps (util timer base): admission time
    // and absolute deadline (0 = none).
    std::uint64_t admit_ns = 0;
    std::uint64_t deadline_ns = 0;
  };

  void RegisterEntry(const std::string& name, RelationEntry entry);
  void WorkerLoop();
  // Runs one dequeued job to completion and resolves its promise.
  void Execute(Job&& job);
  std::string ExecuteQuery(const WireRequest& request, std::uint64_t admit_ns,
                           std::uint64_t start_ns);
  std::string ExecuteMutate(const WireRequest& request);
  std::string ExecuteAdminLoad(const WireRequest& request);
  std::string HandleAdminRelations(const WireRequest& request);
  std::string HandleMetrics(const WireRequest& request);

  const ServerOptions options_;
  ResultCache cache_;

  mutable std::mutex registry_mu_;
  std::map<std::string, RelationEntry> registry_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  bool draining_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace serve
}  // namespace urank

#endif  // URANK_SERVE_SERVER_H_
