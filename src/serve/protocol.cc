#include "serve/protocol.h"

#include <cmath>
#include <cstddef>
#include <utility>

namespace urank {
namespace serve {

namespace {

// True when `value` holds a number representable as int without loss.
bool AsInt(const JsonValue& value, int* out) {
  if (!value.is_number()) return false;
  const double d = value.number_value();
  if (!(d >= -2147483648.0 && d <= 2147483647.0)) return false;
  const int i = static_cast<int>(d);
  if (static_cast<double>(i) != d) return false;
  *out = i;
  return true;
}

void AppendMember(const char* key, const std::string& value, JsonValue* obj) {
  obj->Set(key, JsonValue::MakeString(value));
}

JsonValue ResponseHead(const JsonValue& id, QueryStatusCode code) {
  JsonValue obj = JsonValue::MakeObject();
  obj.Set("v", JsonValue::MakeNumber(kWireVersion));
  obj.Set("id", id);
  obj.Set("status", JsonValue::MakeString(ToString(code)));
  obj.Set("code", JsonValue::MakeNumber(WireValue(code)));
  return obj;
}

}  // namespace

const char* ToString(WireModel model) {
  switch (model) {
    case WireModel::kAttr:
      return "attr";
    case WireModel::kTuple:
      return "tuple";
  }
  return "?";
}

bool FromString(std::string_view name, WireModel* out) {
  if (name == "attr") {
    *out = WireModel::kAttr;
    return true;
  }
  if (name == "tuple") {
    *out = WireModel::kTuple;
    return true;
  }
  return false;
}

const char* ToString(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::kHit:
      return "hit";
    case CacheOutcome::kMiss:
      return "miss";
    case CacheOutcome::kBypass:
      return "bypass";
  }
  return "?";
}

void QueryRequestToJson(const std::string& relation, const QueryRequest& query,
                        JsonValue* object) {
  object->Set("relation", JsonValue::MakeString(relation));
  object->Set("semantics",
              JsonValue::MakeString(ToString(query.options.semantics)));
  object->Set("k", JsonValue::MakeNumber(query.options.k));
  if (query.options.semantics == RankingSemantics::kQuantileRank) {
    object->Set("phi", JsonValue::MakeNumber(query.options.phi));
  }
  if (query.options.semantics == RankingSemantics::kPTk) {
    object->Set("threshold", JsonValue::MakeNumber(query.options.threshold));
  }
  if (query.options.ties != TiePolicy::kBreakByIndex) {
    object->Set("ties", JsonValue::MakeString(ToString(query.options.ties)));
  }
  if (query.deadline_ms > 0.0) {
    object->Set("deadline_ms", JsonValue::MakeNumber(query.deadline_ms));
  }
  if (query.cache_mode == CacheMode::kBypass) {
    object->Set("cache", JsonValue::MakeString("bypass"));
  }
  if (query.parallelism.threads != 1) {
    object->Set("threads", JsonValue::MakeNumber(query.parallelism.threads));
  }
  if (query.parallelism.placement != PlacementPolicy::kFlat) {
    object->Set("placement",
                JsonValue::MakeString(ToString(query.parallelism.placement)));
  }
  if (query.prune) {
    object->Set("prune", JsonValue::MakeBool(true));
  }
  if (query.min_epoch > 0) {
    object->Set("min_epoch",
                JsonValue::MakeNumber(static_cast<double>(query.min_epoch)));
  }
}

bool QueryRequestFromJson(const JsonValue& object, std::string* relation,
                          QueryRequest* query, std::string* error) {
  const JsonValue* rel = object.Find("relation");
  if (rel == nullptr || !rel->is_string() || rel->string_value().empty()) {
    *error = "query requires a non-empty string \"relation\"";
    return false;
  }
  *relation = rel->string_value();

  const JsonValue* semantics = object.Find("semantics");
  if (semantics == nullptr || !semantics->is_string()) {
    *error = "query requires a string \"semantics\"";
    return false;
  }
  if (!FromString(semantics->string_value(), &query->options.semantics)) {
    *error = "unknown semantics \"" + semantics->string_value() + "\"";
    return false;
  }

  if (const JsonValue* k = object.Find("k")) {
    if (!AsInt(*k, &query->options.k)) {
      *error = "\"k\" must be an integer";
      return false;
    }
  }
  if (const JsonValue* phi = object.Find("phi")) {
    if (!phi->is_number()) {
      *error = "\"phi\" must be a number";
      return false;
    }
    query->options.phi = phi->number_value();
  }
  if (const JsonValue* threshold = object.Find("threshold")) {
    if (!threshold->is_number()) {
      *error = "\"threshold\" must be a number";
      return false;
    }
    query->options.threshold = threshold->number_value();
  }
  if (const JsonValue* ties = object.Find("ties")) {
    if (!ties->is_string() ||
        !FromString(ties->string_value(), &query->options.ties)) {
      *error = "\"ties\" must be \"strict-greater\" or \"by-index\"";
      return false;
    }
  }
  if (const JsonValue* deadline = object.Find("deadline_ms")) {
    if (!deadline->is_number() || std::isnan(deadline->number_value())) {
      *error = "\"deadline_ms\" must be a number";
      return false;
    }
    query->deadline_ms = deadline->number_value();
  }
  if (const JsonValue* cache = object.Find("cache")) {
    if (!cache->is_string()) {
      *error = "\"cache\" must be \"default\" or \"bypass\"";
      return false;
    }
    if (cache->string_value() == "default") {
      query->cache_mode = CacheMode::kDefault;
    } else if (cache->string_value() == "bypass") {
      query->cache_mode = CacheMode::kBypass;
    } else {
      *error = "\"cache\" must be \"default\" or \"bypass\"";
      return false;
    }
  }
  if (const JsonValue* threads = object.Find("threads")) {
    if (!AsInt(*threads, &query->parallelism.threads)) {
      *error = "\"threads\" must be an integer";
      return false;
    }
  }
  if (const JsonValue* placement = object.Find("placement")) {
    if (!placement->is_string() ||
        !PlacementFromString(placement->string_value(),
                             &query->parallelism.placement)) {
      *error = "\"placement\" must be \"flat\", \"node_local\" or \"spread\"";
      return false;
    }
  }
  if (const JsonValue* prune = object.Find("prune")) {
    if (!prune->is_bool()) {
      *error = "\"prune\" must be a boolean";
      return false;
    }
    query->prune = prune->bool_value();
  }
  if (const JsonValue* min_epoch = object.Find("min_epoch")) {
    if (!min_epoch->is_number() || min_epoch->number_value() < 0.0 ||
        min_epoch->number_value() !=
            std::floor(min_epoch->number_value())) {
      *error = "\"min_epoch\" must be a non-negative integer";
      return false;
    }
    query->min_epoch =
        static_cast<std::uint64_t>(min_epoch->number_value());
  }
  return true;
}

namespace {

// Parses one mutate op object (see the header grammar).
bool MutationFromJson(const JsonValue& object, WireMutation* out,
                      std::string* error) {
  if (!object.is_object()) {
    *error = "each op must be an object";
    return false;
  }
  const JsonValue* op = object.Find("op");
  if (op == nullptr || !op->is_string()) {
    *error = "op requires a string \"op\"";
    return false;
  }
  const std::string& op_name = op->string_value();
  if (op_name == "insert") {
    out->op = WireMutation::Op::kInsert;
  } else if (op_name == "delete") {
    out->op = WireMutation::Op::kDelete;
  } else if (op_name == "update") {
    out->op = WireMutation::Op::kUpdate;
  } else {
    *error = "unknown op \"" + op_name + "\"";
    return false;
  }

  if (out->op == WireMutation::Op::kDelete) {
    const JsonValue* id = object.Find("id");
    if (id == nullptr || !AsInt(*id, &out->id)) {
      *error = "delete requires an integer \"id\"";
      return false;
    }
    return true;
  }

  const JsonValue* tuple = object.Find("tuple");
  if (tuple == nullptr || !tuple->is_object()) {
    *error = "\"" + op_name + "\" requires an object \"tuple\"";
    return false;
  }
  const JsonValue* id = tuple->Find("id");
  int tuple_id = 0;
  if (id == nullptr || !AsInt(*id, &tuple_id)) {
    *error = "\"tuple\" requires an integer \"id\"";
    return false;
  }

  const JsonValue* pdf = tuple->Find("pdf");
  const JsonValue* score = tuple->Find("score");
  const JsonValue* prob = tuple->Find("prob");
  if (pdf != nullptr) {
    if (score != nullptr || prob != nullptr) {
      *error = "\"tuple\" carries either \"score\"/\"prob\" or \"pdf\"";
      return false;
    }
    if (!pdf->is_array()) {
      *error = "\"pdf\" must be an array";
      return false;
    }
    out->attr_tuple.id = tuple_id;
    for (const JsonValue& entry : pdf->array_items()) {
      const JsonValue* value =
          entry.is_object() ? entry.Find("value") : nullptr;
      const JsonValue* p = entry.is_object() ? entry.Find("prob") : nullptr;
      if (value == nullptr || !value->is_number() || p == nullptr ||
          !p->is_number()) {
        *error = "each pdf entry must carry numbers \"value\" and \"prob\"";
        return false;
      }
      out->attr_tuple.pdf.push_back(
          ScoreValue{value->number_value(), p->number_value()});
    }
    out->has_pdf = true;
    return true;
  }

  if (score == nullptr || !score->is_number() || prob == nullptr ||
      !prob->is_number()) {
    *error = "\"tuple\" requires numbers \"score\" and \"prob\" (or a "
             "\"pdf\" array)";
    return false;
  }
  out->tuple = TLTuple{tuple_id, score->number_value(), prob->number_value()};
  if (const JsonValue* rule = object.Find("rule")) {
    int rule_key = 0;
    if (!AsInt(*rule, &rule_key)) {
      *error = "\"rule\" must be an integer";
      return false;
    }
    out->rule_key = rule_key;
  }
  return true;
}

}  // namespace

bool ParseRequest(std::string_view line, WireRequest* out) {
  *out = WireRequest();
  JsonValue doc;
  std::string parse_error;
  if (!ParseJson(line, &doc, &parse_error)) {
    out->error = "malformed JSON: " + parse_error;
    return false;
  }
  if (!doc.is_object()) {
    out->error = "request must be a JSON object";
    return false;
  }
  // Recover the id first so even rejected requests correlate.
  if (const JsonValue* id = doc.Find("id")) out->id = *id;

  const JsonValue* v = doc.Find("v");
  int version = 0;
  if (v == nullptr || !AsInt(*v, &version) || version != kWireVersion) {
    out->error = "request must carry \"v\":1";
    return false;
  }
  const JsonValue* type = doc.Find("type");
  if (type == nullptr || !type->is_string()) {
    out->error = "request requires a string \"type\"";
    return false;
  }
  const std::string& type_name = type->string_value();

  if (type_name == "query") {
    if (!QueryRequestFromJson(doc, &out->relation, &out->query, &out->error)) {
      return false;
    }
    out->type = WireRequest::Type::kQuery;
    return true;
  }
  if (type_name == "mutate") {
    const JsonValue* relation = doc.Find("relation");
    if (relation == nullptr || !relation->is_string() ||
        relation->string_value().empty()) {
      out->error = "mutate requires a non-empty string \"relation\"";
      return false;
    }
    out->relation = relation->string_value();
    const JsonValue* ops = doc.Find("ops");
    if (ops == nullptr || !ops->is_array() || ops->array_items().empty()) {
      out->error = "mutate requires a non-empty array \"ops\"";
      return false;
    }
    out->mutations.reserve(ops->array_items().size());
    for (std::size_t i = 0; i < ops->array_items().size(); ++i) {
      WireMutation mutation;
      std::string op_error;
      if (!MutationFromJson(ops->array_items()[i], &mutation, &op_error)) {
        out->error = "ops[" + std::to_string(i) + "]: " + op_error;
        return false;
      }
      out->mutations.push_back(std::move(mutation));
    }
    out->type = WireRequest::Type::kMutate;
    return true;
  }
  if (type_name == "admin/load") {
    const JsonValue* name = doc.Find("name");
    if (name == nullptr || !name->is_string() ||
        name->string_value().empty()) {
      out->error = "admin/load requires a non-empty string \"name\"";
      return false;
    }
    out->name = name->string_value();
    const JsonValue* model = doc.Find("model");
    if (model == nullptr || !model->is_string() ||
        !FromString(model->string_value(), &out->model)) {
      out->error = "admin/load requires \"model\":\"attr\"|\"tuple\"";
      return false;
    }
    const JsonValue* path = doc.Find("path");
    const JsonValue* data = doc.Find("data");
    if ((path != nullptr) == (data != nullptr)) {
      out->error = "admin/load requires exactly one of \"path\" / \"data\"";
      return false;
    }
    if (path != nullptr) {
      if (!path->is_string()) {
        out->error = "\"path\" must be a string";
        return false;
      }
      out->path = path->string_value();
    } else {
      if (!data->is_string()) {
        out->error = "\"data\" must be a string";
        return false;
      }
      out->inline_data = data->string_value();
      out->has_inline_data = true;
    }
    out->type = WireRequest::Type::kAdminLoad;
    return true;
  }
  if (type_name == "admin/relations") {
    out->type = WireRequest::Type::kAdminRelations;
    return true;
  }
  if (type_name == "metrics") {
    out->type = WireRequest::Type::kMetrics;
    return true;
  }
  if (type_name == "ping") {
    out->type = WireRequest::Type::kPing;
    return true;
  }
  out->error = "unknown request type \"" + type_name + "\"";
  return false;
}

std::string RenderQueryResponse(const JsonValue& id,
                                const std::string& relation,
                                std::uint64_t epoch, CacheOutcome cache,
                                const RankingAnswer& answer,
                                const QueryStats& stats,
                                const ServeTimings& timings) {
  JsonValue obj = ResponseHead(id, QueryStatusCode::kOk);
  AppendMember("relation", relation, &obj);
  obj.Set("epoch", JsonValue::MakeNumber(static_cast<double>(epoch)));
  obj.Set("cache", JsonValue::MakeString(ToString(cache)));
  JsonValue ids = JsonValue::MakeArray();
  for (int tuple_id : answer.ids) ids.Append(JsonValue::MakeNumber(tuple_id));
  obj.Set("ids", std::move(ids));
  JsonValue statistics = JsonValue::MakeArray();
  for (double s : answer.statistics) {
    statistics.Append(JsonValue::MakeNumber(s));
  }
  obj.Set("statistics", std::move(statistics));
  // Everything volatile (timings, execution detail) lives under "stats" so
  // golden-transcript tooling can strip one member.
  JsonValue stats_obj = JsonValue::MakeObject();
  stats_obj.Set("serve_ms", JsonValue::MakeNumber(timings.serve_ms));
  stats_obj.Set("queue_ms", JsonValue::MakeNumber(timings.queue_ms));
  stats_obj.Set("engine_ms", JsonValue::MakeNumber(stats.wall_ms));
  stats_obj.Set("reused_cache", JsonValue::MakeBool(stats.reused_cache));
  stats_obj.Set("dp_cells",
                JsonValue::MakeNumber(static_cast<double>(stats.dp_cells)));
  stats_obj.Set("threads_used", JsonValue::MakeNumber(stats.threads_used));
  stats_obj.Set("nodes_used", JsonValue::MakeNumber(stats.nodes_used));
  stats_obj.Set("threads_clamped", JsonValue::MakeBool(stats.threads_clamped));
  stats_obj.Set("simd_target", JsonValue::MakeString(stats.simd_target));
  stats_obj.Set("tuples_scanned",
                JsonValue::MakeNumber(static_cast<double>(stats.tuples_scanned)));
  stats_obj.Set("prune_stop_position",
                JsonValue::MakeNumber(
                    static_cast<double>(stats.prune_stop_position)));
  obj.Set("stats", std::move(stats_obj));
  return WriteJson(obj);
}

std::string RenderLoadResponse(const JsonValue& id, const std::string& name,
                               std::uint64_t epoch, long long tuples) {
  JsonValue obj = ResponseHead(id, QueryStatusCode::kOk);
  AppendMember("name", name, &obj);
  obj.Set("epoch", JsonValue::MakeNumber(static_cast<double>(epoch)));
  obj.Set("tuples", JsonValue::MakeNumber(static_cast<double>(tuples)));
  return WriteJson(obj);
}

std::string RenderMutateResponse(const JsonValue& id,
                                 const std::string& relation,
                                 std::uint64_t epoch, long long applied,
                                 long long tuples) {
  JsonValue obj = ResponseHead(id, QueryStatusCode::kOk);
  AppendMember("relation", relation, &obj);
  obj.Set("epoch", JsonValue::MakeNumber(static_cast<double>(epoch)));
  obj.Set("applied", JsonValue::MakeNumber(static_cast<double>(applied)));
  obj.Set("tuples", JsonValue::MakeNumber(static_cast<double>(tuples)));
  return WriteJson(obj);
}

std::string RenderRelationsResponse(const JsonValue& id,
                                    JsonValue relations_json) {
  JsonValue obj = ResponseHead(id, QueryStatusCode::kOk);
  obj.Set("relations", std::move(relations_json));
  return WriteJson(obj);
}

std::string RenderMetricsResponse(const JsonValue& id,
                                  const std::string& body) {
  JsonValue obj = ResponseHead(id, QueryStatusCode::kOk);
  AppendMember("content_type", "text/plain; version=0.0.4", &obj);
  AppendMember("body", body, &obj);
  return WriteJson(obj);
}

std::string RenderPingResponse(const JsonValue& id) {
  return WriteJson(ResponseHead(id, QueryStatusCode::kOk));
}

std::string RenderErrorResponse(const JsonValue& id, QueryStatusCode code,
                                const std::string& message) {
  JsonValue obj = ResponseHead(id, code);
  AppendMember("error", message, &obj);
  return WriteJson(obj);
}

bool ParseResponse(std::string_view line, ParsedResponse* out) {
  *out = ParsedResponse();
  std::string parse_error;
  if (!ParseJson(line, &out->body, &parse_error)) return false;
  if (!out->body.is_object()) return false;
  const JsonValue* code = out->body.Find("code");
  int wire = -1;
  if (code == nullptr || !AsInt(*code, &wire) ||
      !FromWireValue(wire, &out->code)) {
    return false;
  }
  if (const JsonValue* cache = out->body.Find("cache")) {
    if (cache->is_string()) {
      out->has_cache = true;
      if (cache->string_value() == "hit") {
        out->cache = CacheOutcome::kHit;
      } else if (cache->string_value() == "miss") {
        out->cache = CacheOutcome::kMiss;
      } else if (cache->string_value() == "bypass") {
        out->cache = CacheOutcome::kBypass;
      } else {
        out->has_cache = false;
      }
    }
  }
  if (const JsonValue* stats = out->body.Find("stats")) {
    if (const JsonValue* serve_ms = stats->Find("serve_ms")) {
      if (serve_ms->is_number()) out->serve_ms = serve_ms->number_value();
    }
  }
  if (const JsonValue* error = out->body.Find("error")) {
    if (error->is_string()) out->error = error->string_value();
  }
  return true;
}

}  // namespace serve
}  // namespace urank
