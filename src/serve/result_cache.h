// Epoch-keyed LRU result cache for the serving layer.
//
// The traffic shape this targets (Chang–Yu–Qin, PAPERS.md; ROADMAP open
// item 1) is the same relation interrogated under many (semantics, k,
// phi/threshold, ties) combinations by many clients: after the first
// computation, reuse — not recomputation — dominates. The cache stores
// complete RankingAnswers keyed on the full parameter tuple PLUS the
// relation's epoch, and sits *above* the prepared-relation statistic memo
// (prepared_relation.h): a hit returns the answer without touching the
// engine at all, so repeated traffic costs a hash lookup and a response
// serialization.
//
// Epoch keying is what makes reloads safe: every admin/load of a relation
// name bumps its epoch, so entries for the previous snapshot can never be
// returned for the new one. Stale-epoch entries are not eagerly purged —
// they age out through LRU eviction like everything else.
//
// Eviction is least-recently-used under a byte budget: every entry is
// charged its key + answer footprint (ApproximateBytes), and inserts
// evict from the cold end until the budget holds. An answer larger than
// the whole budget is simply not cached.
//
// Thread-safety: all methods are safe to call concurrently (one mutex; a
// hit is a lookup plus a list splice, never a copy of the shared answer).

#ifndef URANK_SERVE_RESULT_CACHE_H_
#define URANK_SERVE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/engine/query_engine.h"

namespace urank {
namespace serve {

// Identity of one cacheable answer. `phi` is only meaningful for
// quantile-rank and `threshold` only for PT-k; the canonicalization that
// zeroes inapplicable fields (so unrelated queries share entries) lives in
// MakeResultCacheKey.
struct ResultCacheKey {
  std::string relation;
  std::uint64_t epoch = 0;
  RankingSemantics semantics = RankingSemantics::kExpectedRank;
  int k = 0;
  double phi = 0.0;
  double threshold = 0.0;
  TiePolicy ties = TiePolicy::kBreakByIndex;

  bool operator==(const ResultCacheKey& other) const;

  struct Hash {
    std::size_t operator()(const ResultCacheKey& key) const;
  };
};

// Canonical key for `options` against (relation, epoch): parameters the
// semantics does not consume are zeroed so e.g. two expected-rank queries
// with different phi defaults land on one entry.
ResultCacheKey MakeResultCacheKey(const std::string& relation,
                                  std::uint64_t epoch,
                                  const RankingQueryOptions& options);

struct ResultCacheStats {
  long long hits = 0;
  long long misses = 0;
  long long insertions = 0;
  long long evictions = 0;
  std::uint64_t bytes = 0;
  std::size_t entries = 0;
};

class ResultCache {
 public:
  // A cache holding at most `byte_budget` bytes of entries (0 disables
  // caching entirely: every Get misses, every Put is dropped).
  explicit ResultCache(std::uint64_t byte_budget);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  // The cached answer for `key` (marking it most-recently-used), or
  // nullptr on a miss. The answer is shared and immutable — callers must
  // not modify it.
  std::shared_ptr<const RankingAnswer> Get(const ResultCacheKey& key);

  // Inserts (or refreshes) `answer` under `key`, evicting cold entries
  // until the byte budget holds. Oversized answers are dropped.
  void Put(const ResultCacheKey& key,
           std::shared_ptr<const RankingAnswer> answer);

  // Drops every entry (stats counters keep accumulating).
  void Clear();

  ResultCacheStats stats() const;
  std::uint64_t byte_budget() const { return byte_budget_; }

  // The byte footprint an entry for (key, answer) is charged with.
  static std::uint64_t ApproximateBytes(const ResultCacheKey& key,
                                        const RankingAnswer& answer);

 private:
  struct Entry {
    ResultCacheKey key;
    std::shared_ptr<const RankingAnswer> answer;
    std::uint64_t bytes = 0;
  };

  void EvictToBudgetLocked();

  const std::uint64_t byte_budget_;
  mutable std::mutex mu_;
  // Hot entries at the front; eviction pops from the back.
  std::list<Entry> lru_;
  std::unordered_map<ResultCacheKey, std::list<Entry>::iterator,
                     ResultCacheKey::Hash>
      index_;
  ResultCacheStats stats_;
};

}  // namespace serve
}  // namespace urank

#endif  // URANK_SERVE_RESULT_CACHE_H_
