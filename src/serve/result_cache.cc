#include "serve/result_cache.h"

#include <functional>
#include <utility>

#include "util/metrics.h"

namespace urank {
namespace serve {

namespace {

// Serve-layer cache metrics (docs/OBSERVABILITY.md, docs/SERVING.md).
struct CacheMetrics {
  metrics::Counter& hits =
      metrics::Registry::Global().counter("urank_serve_cache_hits_total");
  metrics::Counter& misses =
      metrics::Registry::Global().counter("urank_serve_cache_misses_total");
  metrics::Counter& evictions =
      metrics::Registry::Global().counter("urank_serve_cache_evictions_total");
  metrics::Gauge& bytes =
      metrics::Registry::Global().gauge("urank_serve_cache_bytes");
  metrics::Gauge& entries =
      metrics::Registry::Global().gauge("urank_serve_cache_entries_count");
};

CacheMetrics& Metrics() {
  static CacheMetrics m;
  return m;
}

void HashCombine(std::size_t value, std::size_t* seed) {
  // Boost-style mix; good enough for a cache index.
  *seed ^= value + 0x9e3779b97f4a7c15ULL + (*seed << 6) + (*seed >> 2);
}

}  // namespace

bool ResultCacheKey::operator==(const ResultCacheKey& other) const {
  return epoch == other.epoch && semantics == other.semantics &&
         k == other.k && phi == other.phi && threshold == other.threshold &&
         ties == other.ties && relation == other.relation;
}

std::size_t ResultCacheKey::Hash::operator()(const ResultCacheKey& key) const {
  std::size_t seed = std::hash<std::string>{}(key.relation);
  HashCombine(std::hash<std::uint64_t>{}(key.epoch), &seed);
  HashCombine(static_cast<std::size_t>(key.semantics), &seed);
  HashCombine(static_cast<std::size_t>(key.k), &seed);
  HashCombine(std::hash<double>{}(key.phi), &seed);
  HashCombine(std::hash<double>{}(key.threshold), &seed);
  HashCombine(static_cast<std::size_t>(key.ties), &seed);
  return seed;
}

ResultCacheKey MakeResultCacheKey(const std::string& relation,
                                  std::uint64_t epoch,
                                  const RankingQueryOptions& options) {
  ResultCacheKey key;
  key.relation = relation;
  key.epoch = epoch;
  key.semantics = options.semantics;
  key.k = options.k;
  key.ties = options.ties;
  // Zero the parameters this semantics does not consume, so requests that
  // differ only in an inapplicable default share one entry.
  if (options.semantics == RankingSemantics::kQuantileRank) {
    key.phi = options.phi;
  }
  if (options.semantics == RankingSemantics::kPTk) {
    key.threshold = options.threshold;
  }
  return key;
}

ResultCache::ResultCache(std::uint64_t byte_budget)
    : byte_budget_(byte_budget) {}

std::shared_ptr<const RankingAnswer> ResultCache::Get(
    const ResultCacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    Metrics().misses.Increment();
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  Metrics().hits.Increment();
  return it->second->answer;
}

void ResultCache::Put(const ResultCacheKey& key,
                      std::shared_ptr<const RankingAnswer> answer) {
  if (answer == nullptr) return;
  const std::uint64_t bytes = ApproximateBytes(key, *answer);
  std::lock_guard<std::mutex> lock(mu_);
  if (bytes > byte_budget_) return;  // oversized: never cacheable
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Refresh in place (same key may be re-Put by racing misses).
    stats_.bytes -= it->second->bytes;
    it->second->answer = std::move(answer);
    it->second->bytes = bytes;
    stats_.bytes += bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, std::move(answer), bytes});
    index_.emplace(key, lru_.begin());
    stats_.bytes += bytes;
    ++stats_.insertions;
  }
  EvictToBudgetLocked();
  stats_.entries = lru_.size();
  Metrics().bytes.Set(static_cast<double>(stats_.bytes));
  Metrics().entries.Set(static_cast<double>(stats_.entries));
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  stats_.bytes = 0;
  stats_.entries = 0;
  Metrics().bytes.Set(0.0);
  Metrics().entries.Set(0.0);
}

ResultCacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ResultCacheStats snapshot = stats_;
  snapshot.entries = lru_.size();
  return snapshot;
}

std::uint64_t ResultCache::ApproximateBytes(const ResultCacheKey& key,
                                            const RankingAnswer& answer) {
  // Key footprint + vector payloads + fixed bookkeeping overhead per entry
  // (list node, index slot, control block). Exactness does not matter; the
  // budget only has to scale with the real footprint.
  constexpr std::uint64_t kEntryOverhead = 160;
  return kEntryOverhead + key.relation.size() +
         answer.ids.size() * sizeof(int) +
         answer.statistics.size() * sizeof(double);
}

void ResultCache::EvictToBudgetLocked() {
  while (stats_.bytes > byte_budget_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    stats_.bytes -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
    Metrics().evictions.Increment();
  }
}

}  // namespace serve
}  // namespace urank
