#include "serve/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

namespace urank {
namespace serve {

namespace {

// Writes all of `data` (handling short writes); false on error.
bool WriteAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

TcpServer::TcpServer(Server* server) : server_(server) {}

TcpServer::~TcpServer() { Shutdown(); }

bool TcpServer::Start(int port, std::string* error) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 128) < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void TcpServer::Shutdown() {
  // Idempotent: after the first call the joinable() checks and the swapped-
  // out connection lists make every step below a no-op.
  stop_.store(true);
  if (accept_thread_.joinable()) {
    // Closing the listen socket wakes the poll in AcceptLoop.
    if (listen_fd_ >= 0) {
      ::shutdown(listen_fd_, SHUT_RDWR);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    accept_thread_.join();
  }
  std::vector<int> fds;
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    fds.swap(conn_fds_);
    threads.swap(conn_threads_);
  }
  for (int fd : fds) ::shutdown(fd, SHUT_RDWR);
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

void TcpServer::AcceptLoop() {
  while (!stop_.load()) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, 100);
    if (stop_.load()) return;
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listen socket closed
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { ConnectionLoop(fd); });
  }
}

void TcpServer::ConnectionLoop(int fd) {
  std::string buffer;
  char chunk[4096];
  for (;;) {
    // Serve every complete line already buffered.
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      std::string line = buffer.substr(start, nl - start);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      start = nl + 1;
      if (line.empty()) continue;  // blank keep-alive lines are ignored
      std::string response = server_->HandleLine(line);
      response.push_back('\n');
      if (!WriteAll(fd, response)) {
        ::close(fd);
        return;
      }
    }
    buffer.erase(0, start);

    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // peer closed (or Shutdown shut the socket down)
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
}

}  // namespace serve
}  // namespace urank
