#include "serve/server.h"

#include <chrono>
#include <fstream>
#include <sstream>
#include <utility>

#include "core/engine/trace.h"
#include "io/csv.h"
#include "util/metrics.h"

namespace urank {
namespace serve {

namespace {

std::uint64_t MonotonicNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double NsToMs(std::uint64_t ns) { return static_cast<double>(ns) * 1e-6; }

// Serve-layer metrics (catalogue in docs/OBSERVABILITY.md; the _us / _count
// suffixes follow the repo-wide metric-name contract — docs/SERVING.md
// documents how they map onto the request_ms / queue_depth names used in
// the design discussion).
struct ServeMetrics {
  metrics::Counter& requests =
      metrics::Registry::Global().counter("urank_serve_requests_total");
  metrics::Counter& errors =
      metrics::Registry::Global().counter("urank_serve_errors_total");
  metrics::Counter& overloaded =
      metrics::Registry::Global().counter("urank_serve_overloaded_total");
  metrics::Counter& deadline_expired = metrics::Registry::Global().counter(
      "urank_serve_deadline_expired_total");
  metrics::Gauge& queue_depth =
      metrics::Registry::Global().gauge("urank_serve_queue_depth_count");
  metrics::Histogram& queue_wait_us =
      metrics::Registry::Global().histogram("urank_serve_queue_wait_us");
  metrics::Histogram& query_us =
      metrics::Registry::Global().histogram("urank_serve_query_us");
  metrics::Histogram& admin_us =
      metrics::Registry::Global().histogram("urank_serve_admin_us");
  metrics::Histogram& mutate_us =
      metrics::Registry::Global().histogram("urank_serve_mutate_us");
  metrics::Counter& mutate_ops =
      metrics::Registry::Global().counter("urank_serve_mutate_ops_total");
  metrics::Histogram& metrics_us =
      metrics::Registry::Global().histogram("urank_serve_metrics_us");
};

ServeMetrics& Metrics() {
  static ServeMetrics m;
  return m;
}

}  // namespace

Server::Server(const ServerOptions& options)
    : options_(options), cache_(options.cache_bytes) {
  workers_.reserve(static_cast<std::size_t>(
      options_.workers > 0 ? options_.workers : 0));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Server::~Server() { Drain(); }

bool Server::LoadRelation(const std::string& name, WireModel model,
                          std::istream& in, std::string* error) {
  if (model == WireModel::kAttr) {
    AttrRelation rel;
    if (!ReadAttrRelation(in, &rel, error)) return false;
    AddRelation(name, std::move(rel));
  } else {
    TupleRelation rel;
    if (!ReadTupleRelation(in, &rel, error)) return false;
    AddRelation(name, std::move(rel));
  }
  return true;
}

bool Server::LoadRelationFile(const std::string& name, WireModel model,
                              const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  return LoadRelation(name, model, in, error);
}

void Server::AddRelation(const std::string& name, TupleRelation rel) {
  RelationEntry entry;
  entry.model = WireModel::kTuple;
  // Store construction publishes epoch 1 (the full prepare) — done
  // outside the registry lock so loads never stall queries.
  entry.tuple_store = std::make_shared<MutableTupleRelation>(rel);
  entry.engine = std::make_shared<QueryEngine>(entry.tuple_store);
  RegisterEntry(name, std::move(entry));
}

void Server::AddRelation(const std::string& name, AttrRelation rel) {
  RelationEntry entry;
  entry.model = WireModel::kAttr;
  entry.attr_store = std::make_shared<MutableAttrRelation>(rel);
  entry.engine = std::make_shared<QueryEngine>(entry.attr_store);
  RegisterEntry(name, std::move(entry));
}

std::shared_ptr<MutableTupleRelation> Server::MutableTupleStore(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  const auto it = registry_.find(name);
  return it == registry_.end() ? nullptr : it->second.tuple_store;
}

std::shared_ptr<MutableAttrRelation> Server::MutableAttrStore(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  const auto it = registry_.find(name);
  return it == registry_.end() ? nullptr : it->second.attr_store;
}

void Server::RegisterEntry(const std::string& name, RelationEntry entry) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  const auto it = registry_.find(name);
  if (it != registry_.end()) {
    // Continue the epoch sequence past the replaced store's, so cached
    // results keyed under the old store's epochs can never alias answers
    // from the new contents.
    const std::uint64_t floor = it->second.epoch() + 1;
    if (entry.tuple_store != nullptr) {
      entry.tuple_store->EnsureEpochAtLeast(floor);
    } else {
      entry.attr_store->EnsureEpochAtLeast(floor);
    }
  }
  registry_[name] = std::move(entry);
}

std::vector<RelationInfo> Server::Relations() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  std::vector<RelationInfo> infos;
  infos.reserve(registry_.size());
  for (const auto& [name, entry] : registry_) {
    infos.push_back({name, entry.model, entry.epoch(), entry.tuples()});
  }
  return infos;
}

std::future<std::string> Server::Submit(std::string line) {
  URANK_TRACE_SPAN("serve.admit");
  Metrics().requests.Increment();
  std::promise<std::string> promise;
  std::future<std::string> future = promise.get_future();

  Job job;
  if (!ParseRequest(line, &job.request)) {
    Metrics().errors.Increment();
    promise.set_value(RenderErrorResponse(
        job.request.id, QueryStatusCode::kInvalidRequest, job.request.error));
    return future;
  }

  // Observability and liveness answer inline — they must keep working
  // while the queue is full or the server is draining.
  if (job.request.type == WireRequest::Type::kMetrics) {
    promise.set_value(HandleMetrics(job.request));
    return future;
  }
  if (job.request.type == WireRequest::Type::kPing) {
    promise.set_value(RenderPingResponse(job.request.id));
    return future;
  }
  if (job.request.type == WireRequest::Type::kAdminRelations) {
    promise.set_value(HandleAdminRelations(job.request));
    return future;
  }

  // query, mutate and admin/load go through the bounded queue; mutate and
  // admin/load carry no deadline — once admitted, a write always runs.
  job.admit_ns = MonotonicNs();
  double deadline_ms = 0.0;
  if (job.request.type == WireRequest::Type::kQuery) {
    deadline_ms = job.request.query.deadline_ms > 0.0
                      ? job.request.query.deadline_ms
                      : options_.default_deadline_ms;
  }
  if (deadline_ms > 0.0) {
    job.deadline_ns =
        job.admit_ns + static_cast<std::uint64_t>(deadline_ms * 1e6);
  }
  job.promise = std::move(promise);

  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (draining_ || queue_.size() >= options_.queue_capacity) {
      Metrics().overloaded.Increment();
      Metrics().errors.Increment();
      job.promise.set_value(RenderErrorResponse(
          job.request.id, QueryStatusCode::kOverloaded,
          draining_ ? "server is draining" : "admission queue is full"));
      return future;
    }
    queue_.push_back(std::move(job));
    Metrics().queue_depth.Set(static_cast<double>(queue_.size()));
  }
  queue_cv_.notify_one();
  return future;
}

std::string Server::HandleLine(const std::string& line) {
  return Submit(line).get();
}

void Server::Drain() {
  {
    // Idempotent: a repeated Drain re-flips the (already set) flag and
    // falls through to the joins/leftovers below, both of which are no-ops
    // the second time.
    std::lock_guard<std::mutex> lock(queue_mu_);
    draining_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // Leftover jobs (workers == 0, or admitted in the drain race window):
  // execute them here so every admitted future resolves.
  for (;;) {
    Job job;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (queue_.empty()) break;
      job = std::move(queue_.front());
      queue_.pop_front();
      Metrics().queue_depth.Set(static_cast<double>(queue_.size()));
    }
    Execute(std::move(job));
  }
}

void Server::WorkerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return draining_ || !queue_.empty(); });
      if (queue_.empty()) return;  // draining and nothing left
      job = std::move(queue_.front());
      queue_.pop_front();
      Metrics().queue_depth.Set(static_cast<double>(queue_.size()));
    }
    Execute(std::move(job));
  }
}

void Server::Execute(Job&& job) {
  const std::uint64_t start_ns = MonotonicNs();
  const std::uint64_t queue_ns =
      start_ns > job.admit_ns ? start_ns - job.admit_ns : 0;
  Metrics().queue_wait_us.Record(static_cast<double>(queue_ns) * 1e-3);
  URANK_TRACE_SPAN_ARG("serve.run", "queue_us", queue_ns / 1000);

  // Deadline check happens here — after the queue wait, before any work.
  if (job.deadline_ns != 0 && start_ns >= job.deadline_ns) {
    Metrics().deadline_expired.Increment();
    Metrics().errors.Increment();
    job.promise.set_value(RenderErrorResponse(
        job.request.id, QueryStatusCode::kDeadlineExceeded,
        "deadline expired after " + std::to_string(NsToMs(queue_ns)) +
            " ms in queue"));
    return;
  }

  std::string response;
  switch (job.request.type) {
    case WireRequest::Type::kQuery:
      response = ExecuteQuery(job.request, job.admit_ns, start_ns);
      break;
    case WireRequest::Type::kMutate:
      response = ExecuteMutate(job.request);
      break;
    case WireRequest::Type::kAdminLoad:
      response = ExecuteAdminLoad(job.request);
      break;
    default:
      // Inline-handled types never reach the queue.
      response = RenderErrorResponse(job.request.id,
                                     QueryStatusCode::kInvalidRequest,
                                     "internal: unexpected queued type");
      Metrics().errors.Increment();
      break;
  }
  URANK_TRACE_SPAN("serve.respond");
  job.promise.set_value(std::move(response));
}

std::string Server::ExecuteQuery(const WireRequest& request,
                                 std::uint64_t admit_ns,
                                 std::uint64_t start_ns) {
  metrics::ScopedHistogramTimer timer(Metrics().query_us);
  std::shared_ptr<const QueryEngine> engine;
  std::uint64_t epoch = 0;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    auto it = registry_.find(request.relation);
    if (it != registry_.end()) {
      engine = it->second.engine;
      epoch = it->second.epoch();
    }
  }
  if (engine == nullptr) {
    Metrics().errors.Increment();
    return RenderErrorResponse(request.id, QueryStatusCode::kUnknownRelation,
                               "unknown relation \"" + request.relation +
                                   "\" (load it with admin/load)");
  }

  ServeTimings timings;
  timings.queue_ms = NsToMs(start_ns - admit_ns);

  const bool use_cache = request.query.cache_mode == CacheMode::kDefault;
  const ResultCacheKey key =
      MakeResultCacheKey(request.relation, epoch, request.query.options);
  // A cached answer at `epoch` only satisfies a read-your-writes demand
  // for min_epoch <= epoch; otherwise fall through to the engine, whose
  // min_epoch gate answers kEpochNotAvailable (or a newer snapshot).
  if (use_cache && request.query.min_epoch <= epoch) {
    if (std::shared_ptr<const RankingAnswer> cached = cache_.Get(key)) {
      QueryStats stats;
      stats.reused_cache = true;
      timings.serve_ms = NsToMs(MonotonicNs() - admit_ns);
      return RenderQueryResponse(request.id, request.relation, epoch,
                                 CacheOutcome::kHit, *cached, stats, timings);
    }
  }

  // Engine execution: no server lock held — long DP sweeps must not block
  // admission, other queries or the registry.
  QueryResult result = engine->Run(request.query);
  if (!result.status.ok()) {
    Metrics().errors.Increment();
    return RenderErrorResponse(request.id, result.status.code,
                               result.status.message);
  }
  // The engine resolves its own snapshot, which may be newer than the
  // epoch looked up above (a mutate published in between). Key the cache
  // entry — and report — under the epoch the answer was actually computed
  // against.
  const std::uint64_t run_epoch = result.stats.epoch;
  auto answer =
      std::make_shared<const RankingAnswer>(std::move(result.answer));
  if (use_cache) {
    cache_.Put(run_epoch == epoch
                   ? key
                   : MakeResultCacheKey(request.relation, run_epoch,
                                        request.query.options),
               answer);
  }
  timings.serve_ms = NsToMs(MonotonicNs() - admit_ns);
  return RenderQueryResponse(request.id, request.relation, run_epoch,
                             use_cache ? CacheOutcome::kMiss
                                       : CacheOutcome::kBypass,
                             *answer, result.stats, timings);
}

std::string Server::ExecuteAdminLoad(const WireRequest& request) {
  metrics::ScopedHistogramTimer timer(Metrics().admin_us);
  std::string error;
  bool loaded = false;
  if (request.has_inline_data) {
    std::istringstream in(request.inline_data);
    loaded = LoadRelation(request.name, request.model, in, &error);
  } else {
    loaded = LoadRelationFile(request.name, request.model, request.path,
                              &error);
  }
  if (!loaded) {
    Metrics().errors.Increment();
    return RenderErrorResponse(request.id, QueryStatusCode::kInvalidRequest,
                               "admin/load failed: " + error);
  }
  std::uint64_t epoch = 0;
  long long tuples = 0;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    const RelationEntry& entry = registry_[request.name];
    epoch = entry.epoch();
    tuples = entry.tuples();
  }
  return RenderLoadResponse(request.id, request.name, epoch, tuples);
}

std::string Server::ExecuteMutate(const WireRequest& request) {
  metrics::ScopedHistogramTimer timer(Metrics().mutate_us);
  std::shared_ptr<MutableTupleRelation> tuple_store;
  std::shared_ptr<MutableAttrRelation> attr_store;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    const auto it = registry_.find(request.relation);
    if (it != registry_.end()) {
      tuple_store = it->second.tuple_store;
      attr_store = it->second.attr_store;
    }
  }
  if (tuple_store == nullptr && attr_store == nullptr) {
    Metrics().errors.Increment();
    return RenderErrorResponse(request.id, QueryStatusCode::kUnknownRelation,
                               "unknown relation \"" + request.relation +
                                   "\" (load it with admin/load)");
  }

  // Translate the model-agnostic wire ops into the store's mutation type,
  // rejecting payload shapes that do not match the relation's model.
  std::string error;
  bool ok = false;
  std::uint64_t epoch = 0;
  long long tuples = 0;
  if (tuple_store != nullptr) {
    std::vector<TupleMutation> ops;
    ops.reserve(request.mutations.size());
    for (std::size_t i = 0; i < request.mutations.size(); ++i) {
      const WireMutation& wm = request.mutations[i];
      TupleMutation op;
      switch (wm.op) {
        case WireMutation::Op::kInsert:
          op.op = TupleMutation::Op::kInsert;
          break;
        case WireMutation::Op::kDelete:
          op.op = TupleMutation::Op::kDelete;
          break;
        case WireMutation::Op::kUpdate:
          op.op = TupleMutation::Op::kUpdate;
          break;
      }
      if (wm.op == WireMutation::Op::kDelete) {
        op.id = wm.id;
      } else {
        if (wm.has_pdf) {
          Metrics().errors.Increment();
          return RenderErrorResponse(
              request.id, QueryStatusCode::kInvalidRequest,
              "ops[" + std::to_string(i) + "]: relation \"" +
                  request.relation +
                  "\" is tuple-level; op carries a \"pdf\" payload");
        }
        op.tuple = wm.tuple;
        op.rule_key = wm.rule_key;
      }
      ops.push_back(std::move(op));
    }
    ok = tuple_store->Apply(ops, &error);
    if (ok) {
      epoch = tuple_store->Publish().epoch;
      tuples = tuple_store->live_size();
    }
  } else {
    std::vector<AttrMutation> ops;
    ops.reserve(request.mutations.size());
    for (std::size_t i = 0; i < request.mutations.size(); ++i) {
      const WireMutation& wm = request.mutations[i];
      AttrMutation op;
      switch (wm.op) {
        case WireMutation::Op::kInsert:
          op.op = AttrMutation::Op::kInsert;
          break;
        case WireMutation::Op::kDelete:
          op.op = AttrMutation::Op::kDelete;
          break;
        case WireMutation::Op::kUpdate:
          op.op = AttrMutation::Op::kUpdate;
          break;
      }
      if (wm.op == WireMutation::Op::kDelete) {
        op.id = wm.id;
      } else {
        if (!wm.has_pdf) {
          Metrics().errors.Increment();
          return RenderErrorResponse(
              request.id, QueryStatusCode::kInvalidRequest,
              "ops[" + std::to_string(i) + "]: relation \"" +
                  request.relation +
                  "\" is attribute-level; op needs a \"pdf\" payload");
        }
        op.tuple = wm.attr_tuple;
      }
      ops.push_back(std::move(op));
    }
    ok = attr_store->Apply(ops, &error);
    if (ok) {
      epoch = attr_store->Publish().epoch;
      tuples = attr_store->live_size();
    }
  }
  if (!ok) {
    Metrics().errors.Increment();
    return RenderErrorResponse(request.id, QueryStatusCode::kInvalidRequest,
                               "mutate failed: " + error);
  }
  Metrics().mutate_ops.Increment(
      static_cast<long long>(request.mutations.size()));
  return RenderMutateResponse(request.id, request.relation, epoch,
                              static_cast<long long>(request.mutations.size()),
                              tuples);
}

std::string Server::HandleAdminRelations(const WireRequest& request) {
  metrics::ScopedHistogramTimer timer(Metrics().admin_us);
  JsonValue array = JsonValue::MakeArray();
  for (const RelationInfo& info : Relations()) {
    JsonValue obj = JsonValue::MakeObject();
    obj.Set("name", JsonValue::MakeString(info.name));
    obj.Set("model", JsonValue::MakeString(ToString(info.model)));
    obj.Set("epoch",
            JsonValue::MakeNumber(static_cast<double>(info.epoch)));
    obj.Set("tuples",
            JsonValue::MakeNumber(static_cast<double>(info.tuples)));
    array.Append(std::move(obj));
  }
  return RenderRelationsResponse(request.id, std::move(array));
}

std::string Server::HandleMetrics(const WireRequest& request) {
  metrics::ScopedHistogramTimer timer(Metrics().metrics_us);
  return RenderMetricsResponse(request.id,
                               metrics::Registry::Global().RenderPrometheus());
}

}  // namespace serve
}  // namespace urank
