#include "model/model_bridge.h"

namespace urank {

AttrToTupleBridge BridgeAttrToTuple(const AttrRelation& rel) {
  AttrToTupleBridge bridge;
  std::vector<TLTuple> tuples;
  std::vector<std::vector<int>> rules;
  for (int i = 0; i < rel.size(); ++i) {
    const AttrTuple& t = rel.tuple(i);
    std::vector<int> rule;
    rule.reserve(t.pdf.size());
    double mass_before_last = 0.0;
    for (size_t l = 0; l < t.pdf.size(); ++l) {
      const ScoreValue& sv = t.pdf[l];
      const int index = static_cast<int>(tuples.size());
      // Pin the rule's total mass to exactly 1 (pdf sums carry round-off;
      // a 1-ε rule would admit a spurious near-zero "no alternative"
      // world and break the world bijection).
      const double prob = (l + 1 == t.pdf.size())
                              ? 1.0 - mass_before_last
                              : sv.prob;
      mass_before_last += sv.prob;
      tuples.push_back({index, sv.value, prob});
      bridge.source_id.push_back(t.id);
      bridge.source_value.push_back(sv.value);
      rule.push_back(index);
    }
    rules.push_back(std::move(rule));
  }
  bridge.relation = TupleRelation(std::move(tuples), std::move(rules));
  return bridge;
}

}  // namespace urank
