// Tuple-level uncertainty model / x-relations (paper Section 3, Fig. 3).
//
// A relation of N tuples, each with a fixed score and an existence
// probability. Tuples are partitioned into M exclusion rules; at most one
// tuple of a rule appears in any possible world, and the rule's total
// probability is <= 1. Rules with a single member model independent tuples.
// A possible world is a subset of tuples (one independent choice per rule:
// one member, or none), so 0 <= |W| <= N.

#ifndef URANK_MODEL_TUPLE_MODEL_H_
#define URANK_MODEL_TUPLE_MODEL_H_

#include <string>
#include <vector>

namespace urank {

// A tuple in the tuple-level model: external identity, certain score, and
// existence probability in (0, 1].
struct TLTuple {
  int id = 0;
  double score = 0.0;
  double prob = 0.0;

  friend bool operator==(const TLTuple&, const TLTuple&) = default;
};

// A tuple-level uncertain relation with exclusion rules.
//
// Construction: pass the tuples and the rules, where each rule is a list of
// tuple indexes (positions in `tuples`). Every tuple must appear in exactly
// one rule; tuples not mentioned in any rule are given implicit singleton
// rules, matching the paper's convention that every tuple is in exactly one
// rule.
class TupleRelation {
 public:
  TupleRelation() = default;

  // Aborts if the model is malformed (see Validate). Use Validate() first
  // when the input is untrusted.
  TupleRelation(std::vector<TLTuple> tuples,
                std::vector<std::vector<int>> rules);

  // Convenience: all tuples independent (singleton rules).
  static TupleRelation Independent(std::vector<TLTuple> tuples);

  // Checks well-formedness without aborting: probabilities in (0, 1],
  // finite scores, unique ids, rule indexes in range, each tuple in at most
  // one rule, per-rule probability sums <= 1. Returns true when valid;
  // otherwise returns false and stores a description in `error` if
  // non-null.
  static bool Validate(const std::vector<TLTuple>& tuples,
                       const std::vector<std::vector<int>>& rules,
                       std::string* error);

  int size() const { return static_cast<int>(tuples_.size()); }
  int num_rules() const { return static_cast<int>(rules_.size()); }

  const TLTuple& tuple(int index) const { return tuples_[static_cast<size_t>(index)]; }
  const std::vector<TLTuple>& tuples() const { return tuples_; }

  // Members (tuple indexes) of rule r.
  const std::vector<int>& rule(int r) const { return rules_[static_cast<size_t>(r)]; }
  const std::vector<std::vector<int>>& rules() const { return rules_; }

  // Index of the rule containing tuple `index`.
  int rule_of(int index) const { return rule_of_[static_cast<size_t>(index)]; }

  // Sum of existence probabilities of all members of rule r.
  double rule_prob_sum(int r) const { return rule_prob_sum_[static_cast<size_t>(r)]; }

  // E[|W|] = sum_i p(t_i); maintained at construction (paper Section 6.2
  // assumes it is always available).
  double ExpectedWorldSize() const { return expected_world_size_; }

  // Number of possible worlds, prod_r (|rule_r| + 1 if sum < 1 else
  // |rule_r|), saturated at INT64_MAX. ("+1" counts the empty choice, only
  // possible when the rule's probabilities sum to strictly less than 1.)
  long long NumWorlds() const;

 private:
  void BuildDerivedState();

  std::vector<TLTuple> tuples_;
  std::vector<std::vector<int>> rules_;
  std::vector<int> rule_of_;
  std::vector<double> rule_prob_sum_;
  double expected_world_size_ = 0.0;
};

}  // namespace urank

#endif  // URANK_MODEL_TUPLE_MODEL_H_
