#include "model/possible_worlds.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace urank {
namespace {

// Rank-ordered ids of the top-k tuples of a world given (score, index)
// pairs of the appearing tuples; ties broken by smaller index first. The
// result is an ordered list — U-Topk distinguishes (t2,t3) from (t3,t2).
std::vector<int> TopKIds(std::vector<std::pair<double, int>>& appearing,
                         const std::vector<int>& ids, int k) {
  std::sort(appearing.begin(), appearing.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  const int take = std::min<int>(k, static_cast<int>(appearing.size()));
  std::vector<int> list;
  list.reserve(static_cast<size_t>(take));
  for (int i = 0; i < take; ++i) {
    list.push_back(ids[static_cast<size_t>(appearing[static_cast<size_t>(i)].second)]);
  }
  return list;
}

}  // namespace

void ForEachAttrWorld(
    const AttrRelation& rel,
    const std::function<void(const std::vector<double>&, double)>& fn) {
  URANK_CHECK_MSG(rel.NumWorlds() <= kMaxEnumerableWorlds,
                  "attribute-level relation has too many worlds to enumerate");
  const int n = rel.size();
  std::vector<size_t> choice(static_cast<size_t>(n), 0);
  std::vector<double> scores(static_cast<size_t>(n), 0.0);
  if (n == 0) {
    fn(scores, 1.0);
    return;
  }
  while (true) {
    double prob = 1.0;
    for (int i = 0; i < n; ++i) {
      const ScoreValue& sv = rel.tuple(i).pdf[choice[static_cast<size_t>(i)]];
      scores[static_cast<size_t>(i)] = sv.value;
      prob *= sv.prob;
    }
    fn(scores, prob);
    // Odometer increment over per-tuple pdf indexes.
    int pos = 0;
    while (pos < n) {
      size_t& c = choice[static_cast<size_t>(pos)];
      if (++c < rel.tuple(pos).pdf.size()) break;
      c = 0;
      ++pos;
    }
    if (pos == n) break;
  }
}

void ForEachTupleWorld(
    const TupleRelation& rel,
    const std::function<void(const std::vector<bool>&, double)>& fn) {
  URANK_CHECK_MSG(rel.NumWorlds() <= kMaxEnumerableWorlds,
                  "tuple-level relation has too many worlds to enumerate");
  const int m = rel.num_rules();
  const int n = rel.size();
  // Choice c for rule r: c in [0, |rule_r|) picks member c; c == |rule_r|
  // picks "no member", with probability 1 - sum of the rule's members.
  std::vector<size_t> choice(static_cast<size_t>(m), 0);
  std::vector<bool> present(static_cast<size_t>(n), false);
  if (m == 0) {
    fn(present, 1.0);
    return;
  }
  while (true) {
    double prob = 1.0;
    std::fill(present.begin(), present.end(), false);
    for (int r = 0; r < m; ++r) {
      const std::vector<int>& members = rel.rule(r);
      const size_t c = choice[static_cast<size_t>(r)];
      if (c < members.size()) {
        present[static_cast<size_t>(members[c])] = true;
        prob *= rel.tuple(members[c]).prob;
      } else {
        prob *= 1.0 - rel.rule_prob_sum(r);
      }
    }
    if (prob > 0.0) fn(present, prob);
    int pos = 0;
    while (pos < m) {
      size_t& c = choice[static_cast<size_t>(pos)];
      const size_t members = rel.rule(pos).size();
      // Exact comparison: even a sub-round-off "none" probability must be
      // enumerated or world probabilities stop summing to 1.
      const bool can_be_empty = rel.rule_prob_sum(pos) < 1.0;
      const size_t limit = members + (can_be_empty ? 1 : 0);
      if (++c < limit) break;
      c = 0;
      ++pos;
    }
    if (pos == m) break;
  }
}

int RankInAttrWorld(const std::vector<double>& scores, int i, TiePolicy ties) {
  const double v = scores[static_cast<size_t>(i)];
  int rank = 0;
  for (int j = 0; j < static_cast<int>(scores.size()); ++j) {
    if (j == i) continue;
    const double w = scores[static_cast<size_t>(j)];
    if (w > v || (ties == TiePolicy::kBreakByIndex && w == v && j < i)) {
      ++rank;
    }
  }
  return rank;
}

int RankInTupleWorld(const TupleRelation& rel,
                     const std::vector<bool>& present, int i, TiePolicy ties) {
  int appearing = 0;
  int above = 0;
  const double v = rel.tuple(i).score;
  for (int j = 0; j < rel.size(); ++j) {
    if (!present[static_cast<size_t>(j)]) continue;
    ++appearing;
    if (j == i) continue;
    const double w = rel.tuple(j).score;
    if (w > v || (ties == TiePolicy::kBreakByIndex && w == v && j < i)) {
      ++above;
    }
  }
  return present[static_cast<size_t>(i)] ? above : appearing;
}

std::vector<std::vector<double>> AttrRankDistributionsByEnumeration(
    const AttrRelation& rel, TiePolicy ties) {
  const int n = rel.size();
  std::vector<std::vector<double>> dist(
      static_cast<size_t>(n), std::vector<double>(static_cast<size_t>(std::max(n, 1)), 0.0));
  ForEachAttrWorld(rel, [&](const std::vector<double>& scores, double prob) {
    for (int i = 0; i < n; ++i) {
      dist[static_cast<size_t>(i)]
          [static_cast<size_t>(RankInAttrWorld(scores, i, ties))] += prob;
    }
  });
  return dist;
}

std::vector<std::vector<double>> TupleRankDistributionsByEnumeration(
    const TupleRelation& rel, TiePolicy ties) {
  const int n = rel.size();
  std::vector<std::vector<double>> dist(
      static_cast<size_t>(n), std::vector<double>(static_cast<size_t>(n) + 1, 0.0));
  ForEachTupleWorld(rel, [&](const std::vector<bool>& present, double prob) {
    for (int i = 0; i < n; ++i) {
      dist[static_cast<size_t>(i)]
          [static_cast<size_t>(RankInTupleWorld(rel, present, i, ties))] += prob;
    }
  });
  return dist;
}

std::vector<double> AttrExpectedRanksByEnumeration(const AttrRelation& rel,
                                                   TiePolicy ties) {
  std::vector<double> ranks(static_cast<size_t>(rel.size()), 0.0);
  ForEachAttrWorld(rel, [&](const std::vector<double>& scores, double prob) {
    for (int i = 0; i < rel.size(); ++i) {
      ranks[static_cast<size_t>(i)] +=
          prob * RankInAttrWorld(scores, i, ties);
    }
  });
  return ranks;
}

std::vector<double> TupleExpectedRanksByEnumeration(const TupleRelation& rel,
                                                    TiePolicy ties) {
  std::vector<double> ranks(static_cast<size_t>(rel.size()), 0.0);
  ForEachTupleWorld(rel, [&](const std::vector<bool>& present, double prob) {
    for (int i = 0; i < rel.size(); ++i) {
      ranks[static_cast<size_t>(i)] +=
          prob * RankInTupleWorld(rel, present, i, ties);
    }
  });
  return ranks;
}

std::map<std::vector<int>, double> AttrTopKSetProbabilities(
    const AttrRelation& rel, int k) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  std::map<std::vector<int>, double> sets;
  std::vector<int> ids(static_cast<size_t>(rel.size()));
  for (int i = 0; i < rel.size(); ++i) ids[static_cast<size_t>(i)] = rel.tuple(i).id;
  ForEachAttrWorld(rel, [&](const std::vector<double>& scores, double prob) {
    std::vector<std::pair<double, int>> appearing;
    appearing.reserve(scores.size());
    for (int i = 0; i < static_cast<int>(scores.size()); ++i) {
      appearing.emplace_back(scores[static_cast<size_t>(i)], i);
    }
    sets[TopKIds(appearing, ids, k)] += prob;
  });
  return sets;
}

std::map<std::vector<int>, double> TupleTopKSetProbabilities(
    const TupleRelation& rel, int k) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  std::map<std::vector<int>, double> sets;
  std::vector<int> ids(static_cast<size_t>(rel.size()));
  for (int i = 0; i < rel.size(); ++i) ids[static_cast<size_t>(i)] = rel.tuple(i).id;
  ForEachTupleWorld(rel, [&](const std::vector<bool>& present, double prob) {
    std::vector<std::pair<double, int>> appearing;
    for (int i = 0; i < rel.size(); ++i) {
      if (present[static_cast<size_t>(i)]) {
        appearing.emplace_back(rel.tuple(i).score, i);
      }
    }
    sets[TopKIds(appearing, ids, k)] += prob;
  });
  return sets;
}

}  // namespace urank
