#include "model/continuous.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/check.h"

namespace urank {

UniformScorePdf::UniformScorePdf(double lo, double hi) : lo_(lo), hi_(hi) {
  URANK_CHECK_MSG(lo < hi, "UniformScorePdf requires lo < hi");
}

double UniformScorePdf::Cdf(double x) const {
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  return (x - lo_) / (hi_ - lo_);
}

double UniformScorePdf::Quantile(double p) const {
  URANK_CHECK_MSG(p > 0.0 && p < 1.0, "Quantile requires p in (0,1)");
  return lo_ + p * (hi_ - lo_);
}

double UniformScorePdf::Mean() const { return (lo_ + hi_) / 2.0; }

GaussianScorePdf::GaussianScorePdf(double mean, double stddev)
    : mean_(mean), stddev_(stddev) {
  URANK_CHECK_MSG(stddev > 0.0, "GaussianScorePdf requires stddev > 0");
}

double GaussianScorePdf::Cdf(double x) const {
  return 0.5 * std::erfc(-(x - mean_) / (stddev_ * std::sqrt(2.0)));
}

double GaussianScorePdf::Quantile(double p) const {
  URANK_CHECK_MSG(p > 0.0 && p < 1.0, "Quantile requires p in (0,1)");
  // Bisection on the cdf; 10 sigma covers p down to ~1e-23.
  double lo = mean_ - 10.0 * stddev_;
  double hi = mean_ + 10.0 * stddev_;
  for (int iter = 0; iter < 200 && hi - lo > 1e-12 * stddev_; ++iter) {
    const double mid = (lo + hi) / 2.0;
    if (Cdf(mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return (lo + hi) / 2.0;
}

double GaussianScorePdf::Mean() const { return mean_; }

TriangularScorePdf::TriangularScorePdf(double lo, double mode, double hi)
    : lo_(lo), mode_(mode), hi_(hi) {
  URANK_CHECK_MSG(lo < hi, "TriangularScorePdf requires lo < hi");
  URANK_CHECK_MSG(lo <= mode && mode <= hi,
                  "TriangularScorePdf requires lo <= mode <= hi");
}

double TriangularScorePdf::Cdf(double x) const {
  if (x <= lo_) return 0.0;
  if (x >= hi_) return 1.0;
  const double span = hi_ - lo_;
  if (x < mode_) {
    return (x - lo_) * (x - lo_) / (span * (mode_ - lo_));
  }
  if (x == mode_) return (mode_ - lo_) / span;
  return 1.0 - (hi_ - x) * (hi_ - x) / (span * (hi_ - mode_));
}

double TriangularScorePdf::Quantile(double p) const {
  URANK_CHECK_MSG(p > 0.0 && p < 1.0, "Quantile requires p in (0,1)");
  const double span = hi_ - lo_;
  const double p_mode = (mode_ - lo_) / span;
  if (p <= p_mode) {
    return lo_ + std::sqrt(p * span * (mode_ - lo_));
  }
  return hi_ - std::sqrt((1.0 - p) * span * (hi_ - mode_));
}

double TriangularScorePdf::Mean() const { return (lo_ + mode_ + hi_) / 3.0; }

AttrTuple DiscretizeToTuple(int id, const ContinuousPdf& pdf, int buckets) {
  URANK_CHECK_MSG(buckets >= 1, "buckets must be >= 1");
  AttrTuple t;
  t.id = id;
  t.pdf.reserve(static_cast<size_t>(buckets));
  std::unordered_set<double> used;
  const double prob = 1.0 / buckets;
  for (int j = 0; j < buckets; ++j) {
    double v = pdf.Quantile((j + 0.5) / buckets);
    while (!used.insert(v).second) {
      v += std::max(1e-9, std::fabs(v) * 1e-9);
    }
    t.pdf.push_back({v, prob});
  }
  // Exact unit mass despite 1/buckets round-off.
  double sum = 0.0;
  for (size_t j = 0; j + 1 < t.pdf.size(); ++j) sum += t.pdf[j].prob;
  t.pdf.back().prob = 1.0 - sum;
  return t;
}

}  // namespace urank
