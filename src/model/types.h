// Common vocabulary types shared across the urank library.

#ifndef URANK_MODEL_TYPES_H_
#define URANK_MODEL_TYPES_H_

namespace urank {

// How tuples with equal scores are ordered within a possible world.
//
// The paper defines rank via strictly-higher scores (Definition 6): tied
// tuples share a rank. Its median/quantile section (7.1) instead breaks
// ties by tuple index: on a tie, the tuple with the smaller index ranks
// first. Both are supported; each algorithm's default matches the paper.
enum class TiePolicy {
  // rank_W(t_i) = |{ t_j in W : v_j > v_i }|  (Definition 6).
  kStrictGreater,
  // rank_W(t_i) = |{ t_j in W : v_j > v_i, or v_j = v_i and j < i }|.
  kBreakByIndex,
};

}  // namespace urank

#endif  // URANK_MODEL_TYPES_H_
