#include "model/tuple_model.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "util/check.h"

namespace urank {
namespace {

constexpr double kProbSumTolerance = 1e-9;

}  // namespace

TupleRelation::TupleRelation(std::vector<TLTuple> tuples,
                             std::vector<std::vector<int>> rules)
    : tuples_(std::move(tuples)), rules_(std::move(rules)) {
  std::string error;
  URANK_CHECK_MSG(Validate(tuples_, rules_, &error), error.c_str());
  // Give implicit singleton rules to tuples not mentioned in any rule.
  std::vector<bool> covered(tuples_.size(), false);
  for (const auto& r : rules_) {
    for (int idx : r) covered[static_cast<size_t>(idx)] = true;
  }
  for (size_t i = 0; i < tuples_.size(); ++i) {
    if (!covered[i]) rules_.push_back({static_cast<int>(i)});
  }
  BuildDerivedState();
}

TupleRelation TupleRelation::Independent(std::vector<TLTuple> tuples) {
  return TupleRelation(std::move(tuples), {});
}

bool TupleRelation::Validate(const std::vector<TLTuple>& tuples,
                             const std::vector<std::vector<int>>& rules,
                             std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  std::unordered_set<int> ids;
  for (const TLTuple& t : tuples) {
    if (!ids.insert(t.id).second) {
      return fail("duplicate tuple id " + std::to_string(t.id));
    }
    if (!(t.prob > 0.0) || t.prob > 1.0 + kProbSumTolerance) {
      return fail("tuple " + std::to_string(t.id) +
                  " has existence probability outside (0,1]");
    }
    if (!std::isfinite(t.score)) {
      return fail("tuple " + std::to_string(t.id) +
                  " has a non-finite score");
    }
  }
  std::vector<bool> covered(tuples.size(), false);
  for (size_t r = 0; r < rules.size(); ++r) {
    if (rules[r].empty()) {
      return fail("rule " + std::to_string(r) + " is empty");
    }
    double sum = 0.0;
    for (int idx : rules[r]) {
      if (idx < 0 || idx >= static_cast<int>(tuples.size())) {
        return fail("rule " + std::to_string(r) +
                    " references tuple index out of range");
      }
      if (covered[static_cast<size_t>(idx)]) {
        return fail("tuple index " + std::to_string(idx) +
                    " appears in more than one rule");
      }
      covered[static_cast<size_t>(idx)] = true;
      sum += tuples[static_cast<size_t>(idx)].prob;
    }
    if (sum > 1.0 + kProbSumTolerance) {
      return fail("rule " + std::to_string(r) +
                  " probabilities sum to " + std::to_string(sum) + " > 1");
    }
  }
  return true;
}

void TupleRelation::BuildDerivedState() {
  rule_of_.assign(tuples_.size(), -1);
  rule_prob_sum_.assign(rules_.size(), 0.0);
  for (size_t r = 0; r < rules_.size(); ++r) {
    for (int idx : rules_[r]) {
      rule_of_[static_cast<size_t>(idx)] = static_cast<int>(r);
      rule_prob_sum_[r] += tuples_[static_cast<size_t>(idx)].prob;
    }
  }
  expected_world_size_ = 0.0;
  for (const TLTuple& t : tuples_) expected_world_size_ += t.prob;
}

long long TupleRelation::NumWorlds() const {
  long long worlds = 1;
  for (size_t r = 0; r < rules_.size(); ++r) {
    // The empty choice exists only if the rule's mass is strictly below 1
    // (exact comparison, mirroring ForEachTupleWorld's enumeration).
    const bool can_be_empty = rule_prob_sum_[r] < 1.0;
    const long long choices =
        static_cast<long long>(rules_[r].size()) + (can_be_empty ? 1 : 0);
    if (worlds > std::numeric_limits<long long>::max() / choices) {
      return std::numeric_limits<long long>::max();
    }
    worlds *= choices;
  }
  return worlds;
}

}  // namespace urank
