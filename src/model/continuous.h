// Continuous score distributions and their discretization into the
// attribute-level model (paper Appendix A discusses the continuous-pdf
// case; the practical route is discretizing each score distribution into a
// bounded pdf and running the discrete algorithms).
//
// A ContinuousPdf exposes its cdf and quantile function; DiscretizeToTuple
// produces an s-point equal-probability discretization (value j is the
// quantile of the bucket midpoint (j + 0.5)/s, probability 1/s), which
// converges to the continuous distribution as s grows and preserves the
// stochastic order of the inputs.

#ifndef URANK_MODEL_CONTINUOUS_H_
#define URANK_MODEL_CONTINUOUS_H_

#include <memory>

#include "model/attr_model.h"

namespace urank {

// A one-dimensional continuous score distribution.
class ContinuousPdf {
 public:
  virtual ~ContinuousPdf() = default;

  // Pr[X <= x]; non-decreasing, 0 at -inf, 1 at +inf.
  virtual double Cdf(double x) const = 0;

  // Smallest x with Cdf(x) >= p. Requires p in (0, 1).
  virtual double Quantile(double p) const = 0;

  // E[X].
  virtual double Mean() const = 0;
};

// Uniform on [lo, hi). Requires lo < hi.
class UniformScorePdf : public ContinuousPdf {
 public:
  UniformScorePdf(double lo, double hi);
  double Cdf(double x) const override;
  double Quantile(double p) const override;
  double Mean() const override;

 private:
  double lo_, hi_;
};

// Normal with the given mean and stddev > 0.
class GaussianScorePdf : public ContinuousPdf {
 public:
  GaussianScorePdf(double mean, double stddev);
  double Cdf(double x) const override;
  double Quantile(double p) const override;
  double Mean() const override;

 private:
  double mean_, stddev_;
};

// Triangular on [lo, hi] with the given mode. Requires lo <= mode <= hi
// and lo < hi. The usual model for "measurement near m, bounded error".
class TriangularScorePdf : public ContinuousPdf {
 public:
  TriangularScorePdf(double lo, double mode, double hi);
  double Cdf(double x) const override;
  double Quantile(double p) const override;
  double Mean() const override;

 private:
  double lo_, mode_, hi_;
};

// Equal-probability s-point discretization of `pdf` as an attribute-level
// tuple with the given id. Requires buckets >= 1. Support values are made
// strictly distinct (degenerate distributions are nudged apart by a
// relative epsilon).
AttrTuple DiscretizeToTuple(int id, const ContinuousPdf& pdf, int buckets);

}  // namespace urank

#endif  // URANK_MODEL_CONTINUOUS_H_
