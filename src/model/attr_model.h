// Attribute-level uncertainty model (paper Section 3, Fig. 1).
//
// A relation of N tuples. Every tuple always exists; its score is a random
// variable X_i with a finite discrete pdf {(v_{i,1}, p_{i,1}), ...}. Tuples'
// scores are mutually independent. A possible world draws one value per
// tuple, so |W| = N in every world and there are prod_i s_i worlds.

#ifndef URANK_MODEL_ATTR_MODEL_H_
#define URANK_MODEL_ATTR_MODEL_H_

#include <string>
#include <vector>

namespace urank {

// One support point of an uncertain score: score `value` with probability
// `prob`.
struct ScoreValue {
  double value = 0.0;
  double prob = 0.0;

  friend bool operator==(const ScoreValue&, const ScoreValue&) = default;
};

// A tuple with an uncertain score attribute. `id` is the tuple's external
// identity (what ranking queries report); `pdf` is its score distribution.
// A valid pdf is non-empty, has probabilities in (0, 1] summing to 1 (up to
// round-off), and distinct values.
struct AttrTuple {
  int id = 0;
  std::vector<ScoreValue> pdf;

  // E[X_i].
  double ExpectedScore() const;

  // Pr[X_i > v] / Pr[X_i >= v] / Pr[X_i = v].
  double PrGreater(double v) const;
  double PrGreaterEqual(double v) const;
  double PrEqual(double v) const;
};

// An attribute-level uncertain relation: an ordered list of AttrTuples.
// Tuple order defines the tuple index used for tie-breaking.
class AttrRelation {
 public:
  AttrRelation() = default;

  // Constructs from tuples; aborts if any tuple is invalid or ids repeat.
  // Use Validate() first when the input is untrusted.
  explicit AttrRelation(std::vector<AttrTuple> tuples);

  // Checks model well-formedness without aborting. Returns true when valid;
  // otherwise returns false and, if `error` is non-null, stores a
  // description of the first problem found.
  static bool Validate(const std::vector<AttrTuple>& tuples,
                       std::string* error);

  int size() const { return static_cast<int>(tuples_.size()); }
  const AttrTuple& tuple(int index) const { return tuples_[static_cast<size_t>(index)]; }
  const std::vector<AttrTuple>& tuples() const { return tuples_; }

  // Largest pdf size over all tuples (the paper's s); 0 for an empty
  // relation.
  int max_pdf_size() const;

  // Number of possible worlds, prod_i s_i, saturated at INT64_MAX.
  long long NumWorlds() const;

 private:
  std::vector<AttrTuple> tuples_;
};

}  // namespace urank

#endif  // URANK_MODEL_ATTR_MODEL_H_
