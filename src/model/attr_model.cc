#include "model/attr_model.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <unordered_set>

#include "util/check.h"

namespace urank {
namespace {

// Tolerance for "probabilities sum to 1" checks; generators produce sums
// accurate to round-off, and hand-written relations are exact.
constexpr double kProbSumTolerance = 1e-9;

}  // namespace

double AttrTuple::ExpectedScore() const {
  double e = 0.0;
  for (const ScoreValue& sv : pdf) e += sv.value * sv.prob;
  return e;
}

double AttrTuple::PrGreater(double v) const {
  double p = 0.0;
  for (const ScoreValue& sv : pdf) {
    if (sv.value > v) p += sv.prob;
  }
  return p;
}

double AttrTuple::PrGreaterEqual(double v) const {
  double p = 0.0;
  for (const ScoreValue& sv : pdf) {
    if (sv.value >= v) p += sv.prob;
  }
  return p;
}

double AttrTuple::PrEqual(double v) const {
  double p = 0.0;
  for (const ScoreValue& sv : pdf) {
    if (sv.value == v) p += sv.prob;
  }
  return p;
}

AttrRelation::AttrRelation(std::vector<AttrTuple> tuples)
    : tuples_(std::move(tuples)) {
  std::string error;
  URANK_CHECK_MSG(Validate(tuples_, &error), error.c_str());
}

bool AttrRelation::Validate(const std::vector<AttrTuple>& tuples,
                            std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  std::unordered_set<int> ids;
  for (const AttrTuple& t : tuples) {
    if (!ids.insert(t.id).second) {
      return fail("duplicate tuple id " + std::to_string(t.id));
    }
    if (t.pdf.empty()) {
      return fail("tuple " + std::to_string(t.id) + " has an empty pdf");
    }
    double sum = 0.0;
    std::unordered_set<double> values;
    for (const ScoreValue& sv : t.pdf) {
      if (!(sv.prob > 0.0) || sv.prob > 1.0 + kProbSumTolerance) {
        return fail("tuple " + std::to_string(t.id) +
                    " has a probability outside (0,1]");
      }
      if (!std::isfinite(sv.value)) {
        return fail("tuple " + std::to_string(t.id) +
                    " has a non-finite score value");
      }
      if (!values.insert(sv.value).second) {
        return fail("tuple " + std::to_string(t.id) +
                    " repeats a score value in its pdf");
      }
      sum += sv.prob;
    }
    if (std::fabs(sum - 1.0) > kProbSumTolerance) {
      return fail("tuple " + std::to_string(t.id) +
                  " pdf probabilities sum to " + std::to_string(sum) +
                  ", expected 1");
    }
  }
  return true;
}

int AttrRelation::max_pdf_size() const {
  int s = 0;
  for (const AttrTuple& t : tuples_) {
    s = std::max(s, static_cast<int>(t.pdf.size()));
  }
  return s;
}

long long AttrRelation::NumWorlds() const {
  long long worlds = 1;
  for (const AttrTuple& t : tuples_) {
    const long long s = static_cast<long long>(t.pdf.size());
    if (worlds > std::numeric_limits<long long>::max() / s) {
      return std::numeric_limits<long long>::max();
    }
    worlds *= s;
  }
  return worlds;
}

}  // namespace urank
