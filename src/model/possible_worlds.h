// Exact possible-worlds enumeration (paper Section 3, Figs. 2 and 4).
//
// These are the semantic ground truth for every ranking definition in the
// library: a possible world is a certain relation, so any query can be
// evaluated per world and aggregated by world probability. Enumeration is
// exponential and intended for (a) randomized cross-checking of the
// polynomial algorithms in tests and (b) the reference U-Topk semantics in
// the presence of exclusion rules, where the joint top-k-set probability
// does not factorize per tuple.
//
// All enumeration entry points abort if the world count exceeds
// kMaxEnumerableWorlds; callers can consult AttrRelation::NumWorlds() /
// TupleRelation::NumWorlds() beforehand.

#ifndef URANK_MODEL_POSSIBLE_WORLDS_H_
#define URANK_MODEL_POSSIBLE_WORLDS_H_

#include <functional>
#include <map>
#include <vector>

#include "model/attr_model.h"
#include "model/tuple_model.h"
#include "model/types.h"

namespace urank {

// Upper bound on the number of worlds any enumeration here will visit.
inline constexpr long long kMaxEnumerableWorlds = 1LL << 24;

// Invokes `fn(scores, prob)` once per possible world of an attribute-level
// relation. `scores[i]` is the value drawn for tuple index i; `prob` is the
// world probability. World probabilities sum to 1.
void ForEachAttrWorld(
    const AttrRelation& rel,
    const std::function<void(const std::vector<double>&, double)>& fn);

// Invokes `fn(present, prob)` once per possible world of a tuple-level
// relation. `present[i]` tells whether tuple index i appears. Worlds with
// zero probability (an impossible "none" choice of a saturated rule) are
// not visited.
void ForEachTupleWorld(
    const TupleRelation& rel,
    const std::function<void(const std::vector<bool>&, double)>& fn);

// Rank of tuple index i within an attribute-level world (Definition 6):
// the number of tuples ranked above it under `ties`. Top tuple has rank 0.
int RankInAttrWorld(const std::vector<double>& scores, int i, TiePolicy ties);

// Rank of tuple index i within a tuple-level world. If t_i is absent, its
// rank is |W|, i.e. it follows every appearing tuple (Definition 6).
int RankInTupleWorld(const TupleRelation& rel,
                     const std::vector<bool>& present, int i, TiePolicy ties);

// Exact per-tuple rank distributions by enumeration (Definition 7).
// result[i][r] = Pr[R(t_i) = r]. Rows have size N (attribute-level: every
// rank is in [0, N-1]) or N+1 (tuple-level: an absent tuple in the full
// world has rank N).
std::vector<std::vector<double>> AttrRankDistributionsByEnumeration(
    const AttrRelation& rel, TiePolicy ties);
std::vector<std::vector<double>> TupleRankDistributionsByEnumeration(
    const TupleRelation& rel, TiePolicy ties);

// Exact expected ranks by enumeration (Definition 8).
std::vector<double> AttrExpectedRanksByEnumeration(const AttrRelation& rel,
                                                   TiePolicy ties);
std::vector<double> TupleExpectedRanksByEnumeration(const TupleRelation& rel,
                                                    TiePolicy ties);

// Probability of each distinct top-k *answer* across all worlds, keyed by
// the rank-ordered tuple-id list (U-Topk distinguishes (t2,t3) from
// (t3,t2)). Within a world, tuples are ordered by score descending with
// ties broken by tuple index; if the world has fewer than k tuples the
// whole world forms the answer. Used as the reference for U-Topk.
std::map<std::vector<int>, double> AttrTopKSetProbabilities(
    const AttrRelation& rel, int k);
std::map<std::vector<int>, double> TupleTopKSetProbabilities(
    const TupleRelation& rel, int k);

}  // namespace urank

#endif  // URANK_MODEL_POSSIBLE_WORLDS_H_
