// The attribute-level → tuple-level mapping the paper alludes to when
// arguing the two models need different algorithms (Section 3,
// "Difference of the two models under ranking queries").
//
// Each attribute-level tuple t_i with pdf {(v_l, p_l)} becomes one
// exclusion rule of alternatives {(v_l as score, p_l as existence
// probability)}: exactly one alternative appears per world (the rule's
// mass is 1), so the possible worlds of the image are in probability-
// preserving bijection with the attribute-level worlds.
//
// The mapping is useful for cross-checking world semantics, but — exactly
// as the paper warns — NOT for reducing ranking queries: the image ranks
// the s·N alternatives, not the N logical tuples, so expected ranks,
// top-k probabilities etc. of an alternative are not the statistics of
// its source tuple. The bridge exposes the source mapping so tests can
// demonstrate both the world bijection and the ranking mismatch.

#ifndef URANK_MODEL_MODEL_BRIDGE_H_
#define URANK_MODEL_MODEL_BRIDGE_H_

#include <vector>

#include "model/attr_model.h"
#include "model/tuple_model.h"

namespace urank {

// Result of the mapping. `relation` holds one tuple per (source tuple,
// support value) pair with fresh dense ids 0..sN-1, in source order;
// `source_id[j]` / `source_value[j]` identify alternative j's origin.
struct AttrToTupleBridge {
  TupleRelation relation;
  std::vector<int> source_id;
  std::vector<double> source_value;
};

// Builds the bridge. Every rule's probability mass is exactly 1 (one
// alternative always appears), so E[|W|] = N and every world has N
// appearing alternatives.
AttrToTupleBridge BridgeAttrToTuple(const AttrRelation& rel);

}  // namespace urank

#endif  // URANK_MODEL_MODEL_BRIDGE_H_
