#include "io/csv.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

namespace urank {
namespace {

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

bool FailAtLine(std::string* error, int line, const std::string& message) {
  return Fail(error, "line " + std::to_string(line) + ": " + message);
}

// Trims ASCII whitespace from both ends.
std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::string cur;
  std::istringstream in(s);
  while (std::getline(in, cur, sep)) parts.push_back(cur);
  if (!s.empty() && s.back() == sep) parts.push_back("");
  return parts;
}

bool ParseDouble(const std::string& s, double* out) {
  const std::string t = Trim(s);
  if (t.empty()) return false;
  size_t consumed = 0;
  try {
    *out = std::stod(t, &consumed);
  } catch (...) {
    return false;
  }
  return consumed == t.size();
}

bool ParseInt(const std::string& s, int* out) {
  const std::string t = Trim(s);
  if (t.empty()) return false;
  size_t consumed = 0;
  try {
    *out = std::stoi(t, &consumed);
  } catch (...) {
    return false;
  }
  return consumed == t.size();
}

// Maximum precision round-trippable formatting for doubles.
std::string FormatExact(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

bool ReadAttrRelation(std::istream& in, AttrRelation* out,
                      std::string* error) {
  std::vector<AttrTuple> tuples;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const std::vector<std::string> fields = Split(trimmed, ',');
    if (fields.size() != 2) {
      return FailAtLine(error, line_no, "expected 'id,pdf'");
    }
    AttrTuple t;
    if (!ParseInt(fields[0], &t.id)) {
      return FailAtLine(error, line_no, "bad tuple id '" + fields[0] + "'");
    }
    for (const std::string& entry : Split(fields[1], ';')) {
      const std::vector<std::string> vp = Split(entry, ':');
      ScoreValue sv;
      if (vp.size() != 2 || !ParseDouble(vp[0], &sv.value) ||
          !ParseDouble(vp[1], &sv.prob)) {
        return FailAtLine(error, line_no,
                          "bad pdf entry '" + entry + "' (want value:prob)");
      }
      t.pdf.push_back(sv);
    }
    tuples.push_back(std::move(t));
  }
  std::string validation;
  if (!AttrRelation::Validate(tuples, &validation)) {
    return Fail(error, "invalid relation: " + validation);
  }
  *out = AttrRelation(std::move(tuples));
  return true;
}

void WriteAttrRelation(const AttrRelation& rel, std::ostream& out) {
  out << "# urank attribute-level relation: id,v1:p1;v2:p2;...\n";
  for (const AttrTuple& t : rel.tuples()) {
    out << t.id << ',';
    for (size_t l = 0; l < t.pdf.size(); ++l) {
      if (l > 0) out << ';';
      out << FormatExact(t.pdf[l].value) << ':' << FormatExact(t.pdf[l].prob);
    }
    out << '\n';
  }
}

bool ReadTupleRelation(std::istream& in, TupleRelation* out,
                       std::string* error) {
  std::vector<TLTuple> tuples;
  std::map<int, std::vector<int>> rule_groups;  // label -> tuple indexes
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const std::vector<std::string> fields = Split(trimmed, ',');
    if (fields.size() != 4) {
      return FailAtLine(error, line_no, "expected 'id,score,prob,rule'");
    }
    TLTuple t;
    int rule_label = -1;
    if (!ParseInt(fields[0], &t.id) || !ParseDouble(fields[1], &t.score) ||
        !ParseDouble(fields[2], &t.prob) ||
        !ParseInt(fields[3], &rule_label)) {
      return FailAtLine(error, line_no, "unparsable field");
    }
    const int index = static_cast<int>(tuples.size());
    tuples.push_back(t);
    if (rule_label >= 0) rule_groups[rule_label].push_back(index);
  }
  std::vector<std::vector<int>> rules;
  rules.reserve(rule_groups.size());
  for (auto& [label, members] : rule_groups) {
    rules.push_back(std::move(members));
  }
  std::string validation;
  if (!TupleRelation::Validate(tuples, rules, &validation)) {
    return Fail(error, "invalid relation: " + validation);
  }
  *out = TupleRelation(std::move(tuples), std::move(rules));
  return true;
}

void WriteTupleRelation(const TupleRelation& rel, std::ostream& out) {
  out << "# urank tuple-level relation: id,score,prob,rule (-1 = "
         "independent)\n";
  for (int i = 0; i < rel.size(); ++i) {
    const TLTuple& t = rel.tuple(i);
    const int rule = rel.rule_of(i);
    const bool singleton = rel.rule(rule).size() == 1;
    out << t.id << ',' << FormatExact(t.score) << ',' << FormatExact(t.prob)
        << ',' << (singleton ? -1 : rule) << '\n';
  }
}

bool LoadAttrRelation(const std::string& path, AttrRelation* out,
                      std::string* error) {
  std::ifstream in(path);
  if (!in) return Fail(error, "cannot open '" + path + "' for reading");
  return ReadAttrRelation(in, out, error);
}

bool SaveAttrRelation(const AttrRelation& rel, const std::string& path,
                      std::string* error) {
  std::ofstream out(path);
  if (!out) return Fail(error, "cannot open '" + path + "' for writing");
  WriteAttrRelation(rel, out);
  out.flush();
  if (!out) return Fail(error, "write to '" + path + "' failed");
  return true;
}

bool LoadTupleRelation(const std::string& path, TupleRelation* out,
                       std::string* error) {
  std::ifstream in(path);
  if (!in) return Fail(error, "cannot open '" + path + "' for reading");
  return ReadTupleRelation(in, out, error);
}

bool SaveTupleRelation(const TupleRelation& rel, const std::string& path,
                       std::string* error) {
  std::ofstream out(path);
  if (!out) return Fail(error, "cannot open '" + path + "' for writing");
  WriteTupleRelation(rel, out);
  out.flush();
  if (!out) return Fail(error, "write to '" + path + "' failed");
  return true;
}

}  // namespace urank
