// Plain-text (CSV-style) persistence for uncertain relations.
//
// Attribute-level format — one line per tuple:
//
//   id,v1:p1;v2:p2;...;vs:ps
//
// Tuple-level format — one line per tuple:
//
//   id,score,prob,rule
//
// where `rule` is an arbitrary non-negative label grouping mutually
// exclusive tuples, or -1 for an independent (singleton-rule) tuple.
// Lines starting with '#' and blank lines are ignored. All loaders
// validate through the model constructors' rules and report the first
// problem (with its line number) instead of aborting.

#ifndef URANK_IO_CSV_H_
#define URANK_IO_CSV_H_

#include <iosfwd>
#include <string>

#include "model/attr_model.h"
#include "model/tuple_model.h"

namespace urank {

// Stream-based parsing/serialization (the file helpers wrap these; they
// are exposed for testing and for embedding in other transports).
bool ReadAttrRelation(std::istream& in, AttrRelation* out,
                      std::string* error);
void WriteAttrRelation(const AttrRelation& rel, std::ostream& out);
bool ReadTupleRelation(std::istream& in, TupleRelation* out,
                       std::string* error);
void WriteTupleRelation(const TupleRelation& rel, std::ostream& out);

// File helpers. Return true on success; otherwise false with a
// description (IO failure or parse/validation error) in `error` when
// non-null.
bool LoadAttrRelation(const std::string& path, AttrRelation* out,
                      std::string* error);
bool SaveAttrRelation(const AttrRelation& rel, const std::string& path,
                      std::string* error);
bool LoadTupleRelation(const std::string& path, TupleRelation* out,
                       std::string* error);
bool SaveTupleRelation(const TupleRelation& rel, const std::string& path,
                       std::string* error);

}  // namespace urank

#endif  // URANK_IO_CSV_H_
