// Source-level annotations consumed by tools/analyzer (urank-analyzer).
//
// URANK_KERNEL marks a function as a hot DP kernel or merge entry point.
// The marker carries the repo's three kernel contracts, which the
// analyzer machine-checks over the clang AST (see docs/TOOLING.md):
//
//   determinism   nothing reachable from the kernel may iterate an
//                 unordered container, read wall-clock/rand-family
//                 entropy, or derive values from object addresses — the
//                 result must be a pure function of the inputs so
//                 parallel and SIMD execution stay bit-identical.
//   kernel-alloc  the kernel's steady state performs no heap allocation:
//                 no `new`, no std::vector growth or vector temporaries
//                 inside its loops (scratch comes from the per-worker
//                 KernelArena, whose buffers grow to a high-water mark
//                 once and are exempt).
//   atomics       no relaxed-order atomics (those belong to util/metrics
//                 counters only) and no mutex held across a ParallelFor.
//
// The annotation compiles to a clang `annotate` attribute so it survives
// into the AST the analyzer sees; under other compilers it vanishes, so
// annotating a function never changes codegen or warnings in the normal
// gcc build.
//
// Annotate the definition (free function, member function or file-local
// helper alike):
//
//   URANK_KERNEL void ConvolveSweep(double* pmf, size_t n, double p) { ... }

#ifndef URANK_UTIL_KERNEL_ANNOTATIONS_H_
#define URANK_UTIL_KERNEL_ANNOTATIONS_H_

#if defined(__clang__)
#define URANK_KERNEL [[clang::annotate("urank_kernel")]]
#else
#define URANK_KERNEL
#endif

#endif  // URANK_UTIL_KERNEL_ANNOTATIONS_H_
