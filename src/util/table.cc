#include "util/table.h"

#include <cstdio>
#include <sstream>

#include "util/check.h"

namespace urank {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  URANK_CHECK_MSG(!columns_.empty(), "Table requires at least one column");
}

void Table::AddRow(std::vector<std::string> cells) {
  URANK_CHECK_MSG(cells.size() == columns_.size(),
                  "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::ToString() const {
  std::vector<size_t> width(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream out;
  out << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out << "  ";
      // Right-align each cell within its column width.
      out << std::string(width[c] - cells[c].size(), ' ') << cells[c];
    }
    out << '\n';
  };
  emit_row(columns_);
  size_t total = 0;
  for (size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c > 0 ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatInt(int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  return buf;
}

}  // namespace urank
