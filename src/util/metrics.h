// Low-overhead process-wide metrics: counters, gauges and latency
// histograms with fixed log-spaced buckets, collected in a named registry
// and exportable as a Prometheus-style text page or a compact JSON
// snapshot (consumed by tools/bench_runner.py).
//
// Design constraints, in order:
//   * Zero allocation on the hot path. Registration (the only allocating
//     operation) happens once per call site through a function-local
//     static reference; recording is a handful of relaxed atomics.
//   * Thread-pool safe. Any number of threads may record into the same
//     metric concurrently; snapshots may be rendered while writers are
//     active and see a consistent-enough view (each scalar is read
//     atomically; cross-metric skew is permitted and documented).
//   * Compiled out entirely under -DURANK_METRICS=OFF (which defines
//     URANK_METRICS_DISABLED): the mutation methods become empty inline
//     functions the optimizer erases, so instrumented call sites cost
//     nothing. Registration and rendering still work — exporters emit
//     zeros — so examples and tools link unchanged.
//
// Naming contract (enforced by tools/urank_lint.py, rule metric-name):
// every metric is named urank_<layer>_<name>_<unit>, lower-case snake
// case, where <unit> is one of total (monotonic counts), bytes, us
// (microseconds), count, ratio or info (enum-valued gauges). See
// docs/OBSERVABILITY.md for the full catalogue.
//
// Typical call site:
//
//   static metrics::Counter& queries =
//       metrics::Registry::Global().counter("urank_engine_queries_total");
//   queries.Increment();

#ifndef URANK_UTIL_METRICS_H_
#define URANK_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace urank {
namespace metrics {

namespace internal {
// Master runtime switch, default on. Checked (one relaxed load) by every
// mutation; flipping it off approximates the compiled-out build at
// runtime, which is what bench_metrics_overhead measures against.
inline std::atomic<bool> g_enabled{true};
}  // namespace internal

// True when recording is active (compiled in AND runtime-enabled).
inline bool Enabled() {
#if defined(URANK_METRICS_DISABLED)
  return false;
#else
  return internal::g_enabled.load(std::memory_order_relaxed);
#endif
}

// Runtime master switch. A no-op in compiled-out builds.
inline void SetEnabled(bool enabled) {
#if defined(URANK_METRICS_DISABLED)
  (void)enabled;
#else
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
#endif
}

// Monotonic event count.
class Counter {
 public:
  void Increment(long long delta = 1) {
#if defined(URANK_METRICS_DISABLED)
    (void)delta;
#else
    if (!Enabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
#endif
  }

  long long value() const {
    return value_.load(std::memory_order_relaxed);
  }

  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<long long> value_{0};
};

// Last-written (Set) or high-water (SetMax) scalar.
class Gauge {
 public:
  void Set(double value) {
#if defined(URANK_METRICS_DISABLED)
    (void)value;
#else
    if (!Enabled()) return;
    value_.store(value, std::memory_order_relaxed);
#endif
  }

  // Monotonic high-water update: the gauge only moves up.
  void SetMax(double value) {
#if defined(URANK_METRICS_DISABLED)
    (void)value;
#else
    if (!Enabled()) return;
    double cur = value_.load(std::memory_order_relaxed);
    while (value > cur && !value_.compare_exchange_weak(
                              cur, value, std::memory_order_relaxed)) {
    }
#endif
  }

  double value() const { return value_.load(std::memory_order_relaxed); }

  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Distribution of non-negative samples over fixed log-spaced (power-of-2)
// buckets: bucket i counts samples v with UpperBound(i-1) < v <=
// UpperBound(i), where UpperBound(i) = 2^i for i < kBucketCount - 1 and
// +infinity for the last bucket. With the primary unit being microseconds
// the grid spans 1 us .. ~67 s before overflowing, which covers every
// latency this engine produces. Recording is bucket-index arithmetic plus
// three relaxed atomic updates — no allocation, no locks.
class Histogram {
 public:
  static constexpr int kBucketCount = 28;

  // Upper bound of bucket `i` (inclusive). Requires 0 <= i < kBucketCount.
  static double BucketUpperBound(int i);

  // Index of the bucket a sample lands in. Negative samples clamp to
  // bucket 0 (they indicate a caller bug but must not corrupt the grid).
  static int BucketIndex(double value);

  void Record(double value) {
#if defined(URANK_METRICS_DISABLED)
    (void)value;
#else
    if (!Enabled()) return;
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + value,
                                       std::memory_order_relaxed)) {
    }
#endif
  }

  long long count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

  // Samples in bucket `i` (non-cumulative). Requires 0 <= i <
  // kBucketCount.
  long long bucket_count(int i) const;

  void Reset();

 private:
  std::atomic<long long> buckets_[kBucketCount] = {};
  std::atomic<long long> count_{0};
  std::atomic<double> sum_{0.0};
};

// Named registry. Metric objects are created on first lookup, live for the
// registry's lifetime at stable addresses, and are shared by every caller
// of the same name. Lookup takes a mutex (call-site pattern: cache the
// reference in a function-local static); recording never does.
class Registry {
 public:
  // The process-wide registry used by all library instrumentation.
  static Registry& Global();

  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Finds or creates the metric named `name`. A name registered as one
  // metric type must not be requested as another. Aborts if `name` does
  // not start with "urank_" or is registered under a different type.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  // Prometheus text exposition: # TYPE lines, counter/gauge samples, and
  // cumulative _bucket{le="..."} / _sum / _count series per histogram.
  std::string RenderPrometheus() const;

  // Compact machine-readable snapshot:
  //   {"counters": {name: value, ...},
  //    "gauges": {name: value, ...},
  //    "histograms": {name: {"count": c, "sum": s,
  //                          "buckets": [[le, count], ...]}, ...}}
  // Zero-count histogram buckets are omitted. Safe to call while writers
  // are recording (values are read atomically; cross-metric skew allowed).
  std::string RenderJsonSnapshot() const;

  // Zeroes every registered metric (names stay registered). For tests and
  // benchmark harnesses.
  void ResetAll();

 private:
  struct Impl;
  Impl* impl_;
};

// RAII wall-clock timer recording its lifetime into a latency histogram
// (in microseconds) at destruction. ElapsedUs() works even when metrics
// are disabled or compiled out, so callers can keep per-call statistics
// (QueryStats) flowing through the same code path.
class ScopedHistogramTimer {
 public:
  explicit ScopedHistogramTimer(Histogram& histogram);
  ~ScopedHistogramTimer();
  ScopedHistogramTimer(const ScopedHistogramTimer&) = delete;
  ScopedHistogramTimer& operator=(const ScopedHistogramTimer&) = delete;

  double ElapsedUs() const;

 private:
  Histogram& histogram_;
  std::uint64_t start_ns_;
};

}  // namespace metrics
}  // namespace urank

#endif  // URANK_UTIL_METRICS_H_
