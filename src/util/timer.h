// Wall-clock timing helpers for the benchmark harnesses.

#ifndef URANK_UTIL_TIMER_H_
#define URANK_UTIL_TIMER_H_

#include <algorithm>
#include <chrono>
#include <vector>

namespace urank {

// Simple wall-clock stopwatch. Starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  // Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  // Elapsed time since construction or the last Reset, in milliseconds.
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Runs `fn` `repeats` times and returns the median elapsed time in
// milliseconds. `repeats` must be >= 1; odd values give a true median.
template <typename Fn>
double MedianTimeMs(int repeats, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(repeats));
  for (int r = 0; r < repeats; ++r) {
    Timer t;
    fn();
    samples.push_back(t.ElapsedMs());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace urank

#endif  // URANK_UTIL_TIMER_H_
