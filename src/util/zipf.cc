#include "util/zipf.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace urank {

ZipfDistribution::ZipfDistribution(int64_t n, double theta)
    : n_(n), theta_(theta) {
  URANK_CHECK_MSG(n >= 1, "ZipfDistribution requires n >= 1");
  URANK_CHECK_MSG(theta >= 0.0, "ZipfDistribution requires theta >= 0");
  cdf_.resize(static_cast<size_t>(n));
  double sum = 0.0;
  for (int64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
    cdf_[static_cast<size_t>(i - 1)] = sum;
  }
  for (double& c : cdf_) c /= sum;
  cdf_.back() = 1.0;  // guard against accumulated round-off
}

int64_t ZipfDistribution::Sample(Rng& rng) const {
  double u = rng.Uniform01();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<int64_t>(it - cdf_.begin()) + 1;
}

double ZipfDistribution::Pmf(int64_t i) const {
  URANK_CHECK_MSG(i >= 1 && i <= n_, "Pmf index out of range");
  size_t idx = static_cast<size_t>(i - 1);
  double lo = idx == 0 ? 0.0 : cdf_[idx - 1];
  return cdf_[idx] - lo;
}

}  // namespace urank
