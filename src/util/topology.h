// Machine topology discovery: NUMA nodes and their core lists, read from
// sysfs (/sys/devices/system/node) and intersected with the process
// affinity mask, with a graceful single-node fallback when either is
// unavailable. The execution runtime (util/parallel.h) builds per-node
// worker groups from this; the planning layer (shard homes, thread
// clamping, placement) consults the process-wide topology, which tests
// can replace with a synthetic one.
//
// Topology NEVER affects results — only scheduling and memory placement.
// The determinism contract (docs/PERFORMANCE.md) requires that chunk and
// shard grids stay pure functions of the data; node count, core sets and
// placement policy only decide which thread touches which chunk first.
//
// Override for tests and operators: the URANK_TOPOLOGY environment
// variable holds per-node cpulists separated by ';' in sysfs cpulist
// syntax, e.g. "0-3;4-7" = two nodes with four cores each. A synthetic
// topology is used for planning only; threads are never pinned to cores
// the process does not own.

#ifndef URANK_UTIL_TOPOLOGY_H_
#define URANK_UTIL_TOPOLOGY_H_

#include <string>
#include <string_view>
#include <vector>

namespace urank {

// An ordered set of cpu ids (sorted, unique). Mirrors the sysfs cpulist
// syntax ("0-3,8,10-11") for parsing and formatting.
class CoreSet {
 public:
  CoreSet() = default;
  explicit CoreSet(std::vector<int> cpus);

  // Parses a sysfs cpulist ("0-3,8"). Returns false (and leaves *out
  // untouched) on malformed input; an empty/whitespace list parses to an
  // empty set.
  static bool Parse(std::string_view cpulist, CoreSet* out);

  const std::vector<int>& cpus() const { return cpus_; }
  int size() const { return static_cast<int>(cpus_.size()); }
  bool empty() const { return cpus_.empty(); }
  bool Contains(int cpu) const;

  // Set intersection; keeps this set's order (ascending).
  CoreSet Intersect(const CoreSet& other) const;

  // Formats back to cpulist syntax ("0-3,8"); empty set formats to "".
  std::string ToCpulist() const;

  bool operator==(const CoreSet& other) const { return cpus_ == other.cpus_; }

 private:
  std::vector<int> cpus_;  // sorted, unique
};

struct NumaNode {
  int id = 0;
  CoreSet cores;
};

// A machine (or synthetic) topology: one or more NUMA nodes, each with a
// non-empty core set. Always valid: num_nodes() >= 1, total_cores() >= 1.
class Topology {
 public:
  // Single node 0 with `cores` anonymous cores (ids 0..cores-1). The
  // fallback shape; also what non-Linux builds always see.
  static Topology SingleNode(int cores);

  // Parses a URANK_TOPOLOGY spec: per-node cpulists separated by ';'
  // ("0-3;4-7"). Returns false and fills *error on malformed input or if
  // any node would be empty.
  static bool Parse(std::string_view spec, Topology* out, std::string* error);

  // Reads node directories under `sysfs_node_root` (normally
  // /sys/devices/system/node): the `online` node list, then each
  // node<N>/cpulist. Returns SingleNode(fallback_cores) if the directory
  // or files are missing/malformed or every node comes back empty.
  static Topology FromSysfs(const std::string& sysfs_node_root,
                            int fallback_cores);

  // Full detection precedence: URANK_TOPOLOGY env override (synthetic),
  // else sysfs intersected with the process affinity mask, else a single
  // node sized to the allowed core count.
  static Topology Detect();

  const std::vector<NumaNode>& nodes() const { return nodes_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int total_cores() const;
  // Core count of the widest node (the kNodeLocal thread clamp).
  int max_node_cores() const;
  // Index into nodes() of the node owning `cpu`, or -1 if no node does.
  int NodeOfCpu(int cpu) const;
  // True when this topology was synthesized (env override / fallback)
  // rather than read from the machine: pinning is skipped for these.
  bool synthetic() const { return synthetic_; }

  // Round-trips to URANK_TOPOLOGY syntax, for logs and tests.
  std::string ToSpec() const;

 private:
  Topology(std::vector<NumaNode> nodes, bool synthetic);

  std::vector<NumaNode> nodes_;
  bool synthetic_ = true;
};

// The process-wide topology used for planning (shard homes, thread
// resolution, placement). Detected once on first use and cached.
const Topology& GlobalTopology();

// Replaces the planning topology (tests sweep synthetic shapes through
// this). The previous value is retired, not freed, so concurrent readers
// stay valid for the process lifetime. Execution-side worker groups are
// built once from the topology current at first pool use and are NOT
// rebuilt.
void SetGlobalTopologyForTest(Topology topology);

// Number of cpus the process may run on: sched_getaffinity on Linux,
// hardware_concurrency elsewhere; always >= 1. This is what
// ResolveThreads(<= 0) expands to — NOT hardware_concurrency, which
// overcounts inside container cpusets.
int AllowedCoreCount();

// The affinity mask as a CoreSet (empty when unavailable, e.g. non-Linux).
CoreSet AllowedCores();

// Pins the calling thread to `cores`. Returns true on success; failure
// (non-Linux, empty set, cores outside the mask) is harmless — the thread
// simply stays unpinned, results are unaffected.
bool PinCurrentThreadToCores(const CoreSet& cores);

}  // namespace urank

#endif  // URANK_UTIL_TOPOLOGY_H_
