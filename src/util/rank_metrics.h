// Metrics for comparing rankings and top-k answers.
//
// Used by the cross-semantics comparison experiment (E10) and by the
// pruning-quality experiment (E4): set overlap, precision/recall against a
// reference answer, and Kendall tau distance between two orderings.

#ifndef URANK_UTIL_RANK_METRICS_H_
#define URANK_UTIL_RANK_METRICS_H_

#include <cstdint>
#include <vector>

namespace urank {

// Fraction of `reference` items that also appear in `answer`
// (|answer ∩ reference| / |reference|). Returns 1.0 when reference is empty.
// Items are tuple identifiers; duplicates are not expected.
double RecallAgainst(const std::vector<int>& answer,
                     const std::vector<int>& reference);

// Fraction of `answer` items that appear in `reference`
// (|answer ∩ reference| / |answer|). Returns 1.0 when answer is empty.
double PrecisionAgainst(const std::vector<int>& answer,
                        const std::vector<int>& reference);

// Top-k set overlap |a ∩ b| / max(|a|, |b|). Returns 1.0 when both empty.
double TopKOverlap(const std::vector<int>& a, const std::vector<int>& b);

// Normalized Kendall tau distance between two orderings of the SAME item
// set: the fraction of item pairs ordered differently, in [0, 1]. 0 means
// identical orderings, 1 means exactly reversed. Both inputs must be
// permutations of one another (checked). O(n log n).
double KendallTauDistance(const std::vector<int>& a,
                          const std::vector<int>& b);

// Normalized Spearman footrule distance between two orderings of the SAME
// item set: Σ |pos_a(x) - pos_b(x)| divided by its maximum (⌊n²/2⌋), in
// [0, 1]. The classic companion metric to Kendall tau for comparing
// rankings (Fagin et al.). Both inputs must be permutations of one another
// (checked). O(n).
double SpearmanFootruleDistance(const std::vector<int>& a,
                                const std::vector<int>& b);

}  // namespace urank

#endif  // URANK_UTIL_RANK_METRICS_H_
