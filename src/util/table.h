// Aligned plain-text table printing for the benchmark harnesses.
//
// Every bench binary prints its reproduced figure/table as one of these:
// a header row followed by data rows, columns right-aligned, so the output
// reads like the series reported in the paper.

#ifndef URANK_UTIL_TABLE_H_
#define URANK_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace urank {

// Accumulates rows of stringified cells and prints them aligned.
class Table {
 public:
  // `title` is printed above the table; `columns` is the header row.
  Table(std::string title, std::vector<std::string> columns);

  // Appends one data row. The row must have exactly as many cells as the
  // header.
  void AddRow(std::vector<std::string> cells);

  // Renders the table (title, header, separator, rows) to a string.
  std::string ToString() const;

  // Renders and writes to stdout.
  void Print() const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits);

// Formats an integer count.
std::string FormatInt(int64_t value);

}  // namespace urank

#endif  // URANK_UTIL_TABLE_H_
