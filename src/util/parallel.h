// Deterministic intra-query parallelism: a process-wide cached thread pool
// plus statically-chunked ParallelFor / ParallelReduce helpers.
//
// The determinism contract every parallel kernel in this library is built
// on: the decomposition of a computation into chunks is a pure function of
// the *data* (relation size, run boundaries), never of the thread count or
// of scheduling. Each chunk's arithmetic is self-contained, and reductions
// fold per-chunk partials sequentially in chunk index order. Under that
// discipline the result is bit-identical for any `threads` value,
// including 1 — which is what tests/core/parallel_determinism_test.cc
// asserts and docs/PERFORMANCE.md documents.
//
// One pool serves both inter-query work (QueryEngine::RunBatch) and
// intra-query work (the DP kernels). Nested use cannot deadlock because
// the calling thread always participates: helpers submitted to the pool
// are accelerators, and the caller drains every remaining chunk itself
// before returning.

#ifndef URANK_UTIL_PARALLEL_H_
#define URANK_UTIL_PARALLEL_H_

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace urank {

// Per-query parallelism knob, threaded through QueryEngine / the
// parallel-capable kernel entry points. Affects execution schedule only,
// never results.
struct ParallelismOptions {
  // Worker slots per kernel invocation, the calling thread included.
  // 1 = serial (the default); <= 0 = one slot per hardware thread.
  int threads = 1;
  // Kernels over fewer work items than this stay serial: the pool handoff
  // would cost more than it saves. Never affects the chunk grid.
  long long min_parallel_items = 4096;
};

// What a parallel-capable kernel actually did: how many worker slots
// participated and how many scratch bytes its per-worker arenas held at
// the end of the call. Merged upward into QueryStats.
struct KernelReport {
  int threads_used = 1;
  std::uint64_t arena_bytes = 0;

  void Merge(const KernelReport& other) {
    threads_used = std::max(threads_used, other.threads_used);
    arena_bytes += other.arena_bytes;
  }
};

// Process-wide worker pool. Workers are spawned lazily on first use, kept
// alive for the process lifetime (the singleton is leaked so no destructor
// races static teardown), and shared by every ParallelFor and RunBatch.
class ThreadPool {
 public:
  // The shared pool, sized to the hardware concurrency.
  static ThreadPool& Global();

  // A pool with up to `max_workers` lazily spawned worker threads.
  // Requires max_workers >= 0 (0 means every task waits for the caller —
  // only useful in tests). Aborts if max_workers is negative.
  explicit ThreadPool(int max_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int max_workers() const { return max_workers_; }

  // Enqueues `task` for execution on some worker thread. Tasks must not
  // block waiting for other queued tasks (the ParallelFor protocol never
  // does: the submitting thread drains work itself).
  void Submit(std::function<void()> task);

 private:
  void WorkerLoop();

  const int max_workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;  // guarded by mu_
  bool shutdown_ = false;
};

// Resolves a ParallelismOptions::threads request to a concrete worker
// count: values <= 0 mean "all hardware threads"; the result is >= 1.
int ResolveThreads(int requested);

// Worker slots a kernel processing `items` work items should use under
// `par`: 1 when items < min_parallel_items, otherwise
// min(ResolveThreads(par.threads), items). Purely an execution decision —
// the chunk grid must not depend on it.
int PlannedWorkers(const ParallelismOptions& par, long long items);

// Deterministic chunk count for an n-item kernel: a pure function of n
// (roughly one chunk per `grain` items, capped) so the chunk grid — and
// therefore every per-chunk subproblem — is identical for any thread
// count.
int DeterministicChunkCount(long long n, long long grain = 8192,
                            int max_chunks = 16);

// Evenly-spaced chunk boundaries over [0, n): num_chunks + 1 ascending
// offsets with boundaries[0] = 0 and boundaries[num_chunks] = n. A pure
// function of (n, num_chunks). Aborts if n < 0 or num_chunks < 1.
std::vector<long long> ChunkBoundaries(long long n, int num_chunks);

// Runs fn(chunk, slot) for every chunk in [0, num_chunks), on up to
// `workers` threads including the caller. `slot` is a stable per-worker
// index in [0, workers) for indexing per-worker scratch arenas; slot 0 is
// always the calling thread. fn must be safe to run concurrently for
// distinct chunks; chunks are claimed dynamically, so fn must not depend
// on execution order (per-chunk subproblems are self-contained under the
// determinism contract above). Returns the number of worker slots that
// actually executed at least one chunk (>= 1: the caller always
// participates) — pool helpers that finish without claiming a chunk, e.g.
// because the caller outran them, are not counted. Aborts if num_chunks
// is negative.
int ParallelFor(int num_chunks, int workers,
                const std::function<void(int, int)>& fn);

// Deterministic reduction: computes chunk_fn(chunk, slot) for every chunk
// (in parallel, as ParallelFor) and folds the per-chunk partials
// *sequentially in chunk index order* via fold(acc, partial). The fold
// order is what makes non-commutative merges (argmax with tie-breaks)
// bit-identical across thread counts.
template <typename T, typename ChunkFn, typename FoldFn>
T ParallelReduce(int num_chunks, int workers, T init, const ChunkFn& chunk_fn,
                 const FoldFn& fold) {
  std::vector<T> partials(static_cast<size_t>(std::max(num_chunks, 0)));
  ParallelFor(num_chunks, workers, [&](int chunk, int slot) {
    partials[static_cast<size_t>(chunk)] = chunk_fn(chunk, slot);
  });
  T acc = std::move(init);
  for (T& partial : partials) acc = fold(std::move(acc), std::move(partial));
  return acc;
}

}  // namespace urank

#endif  // URANK_UTIL_PARALLEL_H_
