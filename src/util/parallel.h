// Deterministic intra-query parallelism: a process-wide cached thread pool
// organized as per-NUMA-node worker groups (util/topology.h), plus
// statically-chunked ParallelFor / ParallelReduce helpers with a
// placement policy.
//
// The determinism contract every parallel kernel in this library is built
// on: the decomposition of a computation into chunks is a pure function of
// the *data* (relation size, run boundaries), never of the thread count,
// node count, core set, placement policy, or scheduling. Each chunk's
// arithmetic is self-contained, and reductions fold per-chunk partials
// sequentially in chunk index order. Under that discipline the result is
// bit-identical for any `threads` value and any placement — which is what
// tests/core/parallel_determinism_test.cc asserts and
// docs/PERFORMANCE.md documents. Placement decides which worker touches
// which chunk first; it never decides what the chunk computes.
//
// One pool serves both inter-query work (QueryEngine::RunBatch) and
// intra-query work (the DP kernels). Nested use cannot deadlock because
// the calling thread always participates: helpers submitted to the pool
// are accelerators, and the caller drains every remaining chunk itself
// before returning.

#ifndef URANK_UTIL_PARALLEL_H_
#define URANK_UTIL_PARALLEL_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace urank {

class Topology;

// Where a kernel's chunks should run. Execution schedule only — results
// are bit-identical across all three (see the contract above).
enum class PlacementPolicy : int {
  // Ignore topology: one shared claim counter, helpers on any node.
  // The pre-topology behaviour and the default.
  kFlat = 0,
  // Keep the whole kernel on the caller's node: helpers are submitted to
  // the caller's worker group only, so every chunk touches node-local
  // worker arenas. The engine clamps threads to one node's core count
  // under this policy (EffectiveParallelism).
  kNodeLocal = 1,
  // Spread chunks across nodes: contiguous chunk ranges are assigned
  // round-robin-proportionally to nodes (a pure function of the chunk
  // count and the planning topology), each node drains its own range
  // from a node-local claim queue and steals from other nodes in fixed
  // order only when its range runs dry. Right for sharded prepared
  // relations whose shards live on their home nodes.
  kSpread = 2,
};

// Stable lowercase names ("flat", "node_local", "spread") for wire
// protocols and benchmarks.
const char* ToString(PlacementPolicy placement);
bool PlacementFromString(std::string_view name, PlacementPolicy* out);

// Per-query parallelism knob, threaded through QueryEngine / the
// parallel-capable kernel entry points. Affects execution schedule only,
// never results.
struct ParallelismOptions {
  // Worker slots per kernel invocation, the calling thread included.
  // 1 = serial (the default); <= 0 = one slot per *allowed* core
  // (the process affinity mask, not hardware_concurrency — containers
  // often grant fewer cpus than the machine has).
  int threads = 1;
  // Kernels over fewer work items than this stay serial: the pool handoff
  // would cost more than it saves. Never affects the chunk grid.
  long long min_parallel_items = 4096;
  // Chunk-to-node placement. Never affects results.
  PlacementPolicy placement = PlacementPolicy::kFlat;
};

// What a parallel-capable kernel actually did: how many worker slots
// participated, how many distinct worker groups (NUMA nodes) they came
// from, and how many scratch bytes its per-worker arenas held at the end
// of the call. Merged upward into QueryStats.
struct KernelReport {
  int threads_used = 1;
  int nodes_used = 1;
  std::uint64_t arena_bytes = 0;

  void Merge(const KernelReport& other) {
    threads_used = std::max(threads_used, other.threads_used);
    nodes_used = std::max(nodes_used, other.nodes_used);
    arena_bytes += other.arena_bytes;
  }
};

// What one placed parallel loop observed: worker slots that claimed at
// least one chunk, distinct worker groups among them, and chunks executed
// by a worker outside the chunk's planned node range (kSpread steals).
struct ForRunInfo {
  int participants = 1;
  int nodes_used = 1;
  long long remote_chunks = 0;
};

// Process-wide worker pool, organized as one worker group per NUMA node
// of the topology it was built from. Workers are spawned lazily on first
// use, pinned to their node's core set when the topology is real (pin
// failures are harmless), kept alive for the process lifetime (the
// singleton is leaked so no destructor races static teardown), and shared
// by every ParallelFor and RunBatch.
class ThreadPool {
 public:
  // The shared pool, built from the topology current at first use: one
  // group per node, sized to the node's core count.
  static ThreadPool& Global();

  // A pool with a single unpinned group of up to `max_workers` lazily
  // spawned worker threads. Requires max_workers >= 0 (0 means every task
  // waits for the caller — only useful in tests). Aborts if max_workers
  // is negative.
  explicit ThreadPool(int max_workers);

  // A pool with one group per topology node, each group capped at its
  // node's core count and (for real topologies) pinned to it.
  explicit ThreadPool(const Topology& topology);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total worker capacity across all groups.
  int max_workers() const { return max_workers_; }
  int num_groups() const { return static_cast<int>(groups_.size()); }

  // Enqueues `task` on some group (round-robin across groups). Tasks must
  // not block waiting for other queued tasks (the ParallelFor protocol
  // never does: the submitting thread drains work itself).
  void Submit(std::function<void()> task);

  // Enqueues `task` on group `group % num_groups()` — the node-local
  // submission path. Requires group >= 0.
  void SubmitToGroup(int group, std::function<void()> task);

  // Worker group of the calling thread: its group index when it is a pool
  // worker of *this* pool, otherwise -1 (external threads, the main
  // thread, workers of another pool).
  int CurrentGroup() const;

 private:
  struct Group;
  void WorkerLoop(Group* group, int group_index);

  int max_workers_ = 0;
  std::vector<std::unique_ptr<Group>> groups_;
  std::atomic<unsigned> next_group_{0};
};

// Resolves a ParallelismOptions::threads request to a concrete worker
// count: values <= 0 mean "every allowed core" (the planning topology's
// total, which honours the affinity mask); the result is >= 1.
int ResolveThreads(int requested);

// Applies the runtime's placement constraints to a request: resolves
// threads, then clamps to one node's core count under kNodeLocal (a
// kernel that must stay node-local cannot use more workers than the
// widest node has cores). Sets *clamped (may be null) to whether the
// clamp reduced the resolved request. Pure planning — results never
// depend on it.
ParallelismOptions EffectiveParallelism(const ParallelismOptions& par,
                                        bool* clamped = nullptr);

// Worker slots a kernel processing `items` work items should use under
// `par`: 1 when items < min_parallel_items, otherwise
// min(ResolveThreads(par.threads), items). Purely an execution decision —
// the chunk grid must not depend on it.
int PlannedWorkers(const ParallelismOptions& par, long long items);

// Deterministic chunk count for an n-item kernel: a pure function of n
// (roughly one chunk per `grain` items, capped) so the chunk grid — and
// therefore every per-chunk subproblem — is identical for any thread
// count.
int DeterministicChunkCount(long long n, long long grain = 8192,
                            int max_chunks = 16);

// Evenly-spaced chunk boundaries over [0, n): num_chunks + 1 ascending
// offsets with boundaries[0] = 0 and boundaries[num_chunks] = n. A pure
// function of (n, num_chunks). Aborts if n < 0 or num_chunks < 1.
std::vector<long long> ChunkBoundaries(long long n, int num_chunks);

// Runs fn(chunk, slot) for every chunk in [0, num_chunks), on up to
// `workers` threads including the caller, scheduled under `placement`.
// `slot` is a stable per-worker index in [0, workers) for indexing
// per-worker scratch arenas; slot 0 is always the calling thread. fn must
// be safe to run concurrently for distinct chunks; chunks are claimed
// dynamically, so fn must not depend on execution order (per-chunk
// subproblems are self-contained under the determinism contract above).
// Aborts if num_chunks is negative.
ForRunInfo ParallelForPlaced(int num_chunks, int workers,
                             PlacementPolicy placement,
                             const std::function<void(int, int)>& fn);

// kFlat compatibility wrapper. Returns the number of worker slots that
// actually executed at least one chunk (>= 1: the caller always
// participates) — pool helpers that finish without claiming a chunk,
// e.g. because the caller outran them, are not counted.
int ParallelFor(int num_chunks, int workers,
                const std::function<void(int, int)>& fn);

// Deterministic reduction: computes chunk_fn(chunk, slot) for every chunk
// (in parallel, as ParallelFor) and folds the per-chunk partials
// *sequentially in chunk index order* via fold(acc, partial). The fold
// order is what makes non-commutative merges (argmax with tie-breaks)
// bit-identical across thread counts.
template <typename T, typename ChunkFn, typename FoldFn>
T ParallelReduce(int num_chunks, int workers, T init, const ChunkFn& chunk_fn,
                 const FoldFn& fold) {
  std::vector<T> partials(static_cast<size_t>(std::max(num_chunks, 0)));
  ParallelFor(num_chunks, workers, [&](int chunk, int slot) {
    partials[static_cast<size_t>(chunk)] = chunk_fn(chunk, slot);
  });
  T acc = std::move(init);
  for (T& partial : partials) acc = fold(std::move(acc), std::move(partial));
  return acc;
}

}  // namespace urank

#endif  // URANK_UTIL_PARALLEL_H_
