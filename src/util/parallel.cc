#include "util/parallel.h"

#include <atomic>
#include <memory>

// trace.h lives under core/engine (it instruments the query path) but is
// dependency-free; including it here is the one sanctioned upward include
// so ParallelFor chunks show up in flame charts under the engine spans.
#include "core/engine/trace.h"
#include "util/check.h"
#include "util/metrics.h"

namespace urank {

namespace {

// Scheduling metrics shared by every ParallelFor. Resolved once; the
// per-chunk path is the relaxed atomics documented in util/metrics.h.
struct ForMetrics {
  metrics::Counter& invocations;
  metrics::Counter& chunks;
  metrics::Counter& pool_tasks;
  metrics::Histogram& chunk_latency;

  static const ForMetrics& Get() {
    static const ForMetrics m{
        metrics::Registry::Global().counter(
            "urank_parallel_invocations_total"),
        metrics::Registry::Global().counter("urank_parallel_chunks_total"),
        metrics::Registry::Global().counter(
            "urank_parallel_pool_tasks_total"),
        metrics::Registry::Global().histogram(
            "urank_parallel_chunk_latency_us")};
    return m;
  }
};

void RunChunk(const std::function<void(int, int)>& fn, int chunk, int slot) {
  URANK_TRACE_SPAN_ARG("parallel.chunk", "chunk", chunk);
  metrics::ScopedHistogramTimer timer(ForMetrics::Get().chunk_latency);
  fn(chunk, slot);
}

}  // namespace

ThreadPool& ThreadPool::Global() {
  // Leaked on purpose: worker threads live for the process lifetime, so a
  // destructor running during static teardown would race them.
  static ThreadPool* pool = new ThreadPool(ResolveThreads(0));
  return *pool;
}

ThreadPool::ThreadPool(int max_workers) : max_workers_(max_workers) {
  URANK_CHECK_MSG(max_workers >= 0, "max_workers must be >= 0");
}

ThreadPool::~ThreadPool() {
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    workers.swap(workers_);
  }
  cv_.notify_all();
  for (std::thread& t : workers) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    // Spawn a worker lazily while the queue outnumbers the idle capacity;
    // cheap heuristic: one worker per queued task up to the cap.
    if (static_cast<int>(workers_.size()) < max_workers_ &&
        queue_.size() > 0) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

int ResolveThreads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

int PlannedWorkers(const ParallelismOptions& par, long long items) {
  if (items < par.min_parallel_items) return 1;
  const long long resolved = ResolveThreads(par.threads);
  return static_cast<int>(std::max(1LL, std::min(resolved, items)));
}

int DeterministicChunkCount(long long n, long long grain, int max_chunks) {
  URANK_CHECK_MSG(grain > 0 && max_chunks >= 1,
                  "grain and max_chunks must be positive");
  if (n <= 0) return 1;
  const long long chunks = n / grain;
  return static_cast<int>(
      std::max(1LL, std::min(chunks, static_cast<long long>(max_chunks))));
}

std::vector<long long> ChunkBoundaries(long long n, int num_chunks) {
  URANK_CHECK_MSG(n >= 0, "n must be >= 0");
  URANK_CHECK_MSG(num_chunks >= 1, "num_chunks must be >= 1");
  std::vector<long long> bounds(static_cast<size_t>(num_chunks) + 1, 0);
  for (int c = 0; c <= num_chunks; ++c) {
    bounds[static_cast<size_t>(c)] =
        n * static_cast<long long>(c) / static_cast<long long>(num_chunks);
  }
  return bounds;
}

namespace {

// Shared state of one ParallelFor call. Held by shared_ptr so a helper
// task that the pool dequeues after the caller already finished (having
// drained every chunk itself) still touches valid memory.
struct ForState {
  ForState(int chunks, std::function<void(int, int)> f)
      : num_chunks(chunks), fn(std::move(f)) {}

  void Drain(int slot) {
    bool counted = false;
    for (;;) {
      const int chunk = next.fetch_add(1, std::memory_order_acq_rel);
      if (chunk >= num_chunks) break;
      if (!counted) {
        // Observed participation, not slots made available: a helper the
        // caller outran never claims a chunk and is not counted. Every
        // increment is sequenced before the chunk's done++ below, so the
        // caller's read after done == num_chunks sees the final count.
        participants.fetch_add(1, std::memory_order_acq_rel);
        counted = true;
      }
      RunChunk(fn, chunk, slot);
      std::lock_guard<std::mutex> lock(mu);
      if (++done == num_chunks) cv.notify_all();
    }
  }

  const int num_chunks;
  const std::function<void(int, int)> fn;
  std::atomic<int> next{0};
  std::atomic<int> participants{0};
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;  // guarded by mu
};

}  // namespace

int ParallelFor(int num_chunks, int workers,
                const std::function<void(int, int)>& fn) {
  URANK_CHECK_MSG(num_chunks >= 0, "num_chunks must be >= 0");
  if (num_chunks == 0) return 1;
  const ForMetrics& fm = ForMetrics::Get();
  fm.invocations.Increment();
  fm.chunks.Increment(num_chunks);
  URANK_TRACE_SPAN_ARG("parallel.for", "chunks", num_chunks);
  workers = std::max(1, std::min(workers, num_chunks));
  if (workers == 1) {
    for (int chunk = 0; chunk < num_chunks; ++chunk) RunChunk(fn, chunk, 0);
    return 1;
  }
  auto state = std::make_shared<ForState>(num_chunks, fn);
  ThreadPool& pool = ThreadPool::Global();
  for (int slot = 1; slot < workers; ++slot) {
    pool.Submit([state, slot] { state->Drain(slot); });
  }
  fm.pool_tasks.Increment(workers - 1);
  state->Drain(0);  // the caller always participates — no nested deadlock
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->done == state->num_chunks; });
  // Every chunk has run, so every participating slot has registered
  // itself; the caller is always among them.
  return state->participants.load(std::memory_order_acquire);
}

}  // namespace urank
