#include "util/parallel.h"

#include <atomic>
#include <memory>

// trace.h lives under core/engine (it instruments the query path) but is
// dependency-free; including it here is the one sanctioned upward include
// so ParallelFor chunks show up in flame charts under the engine spans.
#include "core/engine/trace.h"
#include "util/check.h"
#include "util/metrics.h"
#include "util/topology.h"

namespace urank {

namespace {

// Scheduling metrics shared by every ParallelFor. Resolved once; the
// per-chunk path is the relaxed atomics documented in util/metrics.h.
struct ForMetrics {
  metrics::Counter& invocations;
  metrics::Counter& chunks;
  metrics::Counter& pool_tasks;
  metrics::Counter& remote_chunks;
  metrics::Gauge& nodes_used;
  metrics::Histogram& chunk_latency;

  static const ForMetrics& Get() {
    static const ForMetrics m{
        metrics::Registry::Global().counter(
            "urank_parallel_invocations_total"),
        metrics::Registry::Global().counter("urank_parallel_chunks_total"),
        metrics::Registry::Global().counter(
            "urank_parallel_pool_tasks_total"),
        metrics::Registry::Global().counter(
            "urank_parallel_remote_chunks_total"),
        // High-water gauge of distinct worker groups one loop engaged — a
        // dimensionless node count, where any unit suffix would misread as
        // bytes/time; the name is part of the runtime's documented surface
        // (docs/OBSERVABILITY.md).
        // urank-lint: allow(metric-name)
        metrics::Registry::Global().gauge("urank_parallel_nodes_used"),
        metrics::Registry::Global().histogram(
            "urank_parallel_chunk_latency_us")};
    return m;
  }
};

void RunChunk(const std::function<void(int, int)>& fn, int chunk, int slot) {
  URANK_TRACE_SPAN_ARG("parallel.chunk", "chunk", chunk);
  metrics::ScopedHistogramTimer timer(ForMetrics::Get().chunk_latency);
  fn(chunk, slot);
}

// Identity of the current thread within a pool, so SubmitToGroup and the
// kSpread caller can route work to the node the thread already runs on.
thread_local const ThreadPool* tl_worker_pool = nullptr;
thread_local int tl_worker_group = -1;

}  // namespace

const char* ToString(PlacementPolicy placement) {
  switch (placement) {
    case PlacementPolicy::kFlat:
      return "flat";
    case PlacementPolicy::kNodeLocal:
      return "node_local";
    case PlacementPolicy::kSpread:
      return "spread";
  }
  return "flat";
}

bool PlacementFromString(std::string_view name, PlacementPolicy* out) {
  if (name == "flat") {
    *out = PlacementPolicy::kFlat;
  } else if (name == "node_local") {
    *out = PlacementPolicy::kNodeLocal;
  } else if (name == "spread") {
    *out = PlacementPolicy::kSpread;
  } else {
    return false;
  }
  return true;
}

// One worker group: a node-local task queue plus its lazily spawned
// worker threads. Pinning is best-effort and only attempted for groups
// built from a real (non-synthetic) topology.
struct ThreadPool::Group {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::function<void()>> queue;  // guarded by mu
  std::vector<std::thread> workers;         // guarded by mu
  int max_workers = 0;
  CoreSet cores;
  bool pin = false;
  bool shutdown = false;  // guarded by mu
};

ThreadPool& ThreadPool::Global() {
  // Leaked on purpose: worker threads live for the process lifetime, so a
  // destructor running during static teardown would race them. Built from
  // the planning topology current at first use; later topology overrides
  // change planning only, never the already-running groups.
  static ThreadPool* pool = new ThreadPool(GlobalTopology());
  return *pool;
}

ThreadPool::ThreadPool(int max_workers) : max_workers_(max_workers) {
  URANK_CHECK_MSG(max_workers >= 0, "max_workers must be >= 0");
  auto group = std::make_unique<Group>();
  group->max_workers = max_workers;
  groups_.push_back(std::move(group));
}

ThreadPool::ThreadPool(const Topology& topology) {
  for (const NumaNode& node : topology.nodes()) {
    auto group = std::make_unique<Group>();
    group->max_workers = node.cores.size();
    group->cores = node.cores;
    group->pin = !topology.synthetic();
    max_workers_ += group->max_workers;
    groups_.push_back(std::move(group));
  }
  URANK_CHECK_MSG(!groups_.empty(), "topology must have at least one node");
}

ThreadPool::~ThreadPool() {
  std::vector<std::thread> workers;
  for (auto& group : groups_) {
    {
      std::lock_guard<std::mutex> lock(group->mu);
      group->shutdown = true;
      for (std::thread& t : group->workers) workers.push_back(std::move(t));
      group->workers.clear();
    }
    group->cv.notify_all();
  }
  for (std::thread& t : workers) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  const unsigned ticket =
      next_group_.fetch_add(1, std::memory_order_acq_rel);
  SubmitToGroup(static_cast<int>(ticket % groups_.size()), std::move(task));
}

void ThreadPool::SubmitToGroup(int group_index, std::function<void()> task) {
  URANK_CHECK_MSG(group_index >= 0, "group must be >= 0");
  group_index %= static_cast<int>(groups_.size());
  Group& group = *groups_[static_cast<size_t>(group_index)];
  {
    std::lock_guard<std::mutex> lock(group.mu);
    group.queue.push_back(std::move(task));
    // Spawn a worker lazily while the queue outnumbers the idle capacity;
    // cheap heuristic: one worker per queued task up to the group cap.
    if (static_cast<int>(group.workers.size()) < group.max_workers &&
        !group.queue.empty()) {
      group.workers.emplace_back(
          [this, g = &group, group_index] { WorkerLoop(g, group_index); });
    }
  }
  group.cv.notify_one();
}

int ThreadPool::CurrentGroup() const {
  return tl_worker_pool == this ? tl_worker_group : -1;
}

void ThreadPool::WorkerLoop(Group* group, int group_index) {
  tl_worker_pool = this;
  tl_worker_group = group_index;
  if (group->pin) {
    // Best effort: a failed pin (shrunk cpuset, non-Linux) leaves the
    // worker unpinned, which affects locality only, never results.
    (void)PinCurrentThreadToCores(group->cores);
  }
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(group->mu);
      group->cv.wait(lock,
                     [group] { return group->shutdown || !group->queue.empty(); });
      if (group->shutdown && group->queue.empty()) return;
      task = std::move(group->queue.front());
      group->queue.pop_front();
    }
    task();
  }
}

int ResolveThreads(int requested) {
  if (requested > 0) return requested;
  // "All threads" means every core the process is allowed to run on.
  // GlobalTopology() is already intersected with the affinity mask (or is
  // the single-node fallback sized by sched_getaffinity), so this never
  // oversubscribes a container cpuset the way hardware_concurrency does.
  return std::max(1, GlobalTopology().total_cores());
}

ParallelismOptions EffectiveParallelism(const ParallelismOptions& par,
                                        bool* clamped) {
  ParallelismOptions out = par;
  out.threads = ResolveThreads(par.threads);
  bool did_clamp = false;
  if (par.placement == PlacementPolicy::kNodeLocal) {
    const int cap = GlobalTopology().max_node_cores();
    if (out.threads > cap) {
      out.threads = cap;
      did_clamp = true;
    }
  }
  if (clamped != nullptr) *clamped = did_clamp;
  return out;
}

int PlannedWorkers(const ParallelismOptions& par, long long items) {
  if (items < par.min_parallel_items) return 1;
  const long long resolved = ResolveThreads(par.threads);
  return static_cast<int>(std::max(1LL, std::min(resolved, items)));
}

int DeterministicChunkCount(long long n, long long grain, int max_chunks) {
  URANK_CHECK_MSG(grain > 0 && max_chunks >= 1,
                  "grain and max_chunks must be positive");
  if (n <= 0) return 1;
  const long long chunks = n / grain;
  return static_cast<int>(
      std::max(1LL, std::min(chunks, static_cast<long long>(max_chunks))));
}

std::vector<long long> ChunkBoundaries(long long n, int num_chunks) {
  URANK_CHECK_MSG(n >= 0, "n must be >= 0");
  URANK_CHECK_MSG(num_chunks >= 1, "num_chunks must be >= 1");
  std::vector<long long> bounds(static_cast<size_t>(num_chunks) + 1, 0);
  for (int c = 0; c <= num_chunks; ++c) {
    bounds[static_cast<size_t>(c)] =
        n * static_cast<long long>(c) / static_cast<long long>(num_chunks);
  }
  return bounds;
}

namespace {

// Shared state of one placed ParallelFor call. Held by shared_ptr so a
// helper task that the pool dequeues after the caller already finished
// (having drained every chunk itself) still touches valid memory.
//
// Chunks are partitioned into `num_ranges` contiguous ranges (a pure
// function of the chunk count and the planning topology), one node-local
// claim counter per range. A worker drains its home range first, then
// steals from the other ranges in fixed cyclic order — stolen chunks are
// the remote-traffic signal surfaced as urank_parallel_remote_chunks.
// Which worker runs a chunk is scheduling only; the chunk's arithmetic is
// self-contained, so results stay bit-identical.
struct PlacedState {
  PlacedState(int chunks, int ranges, std::function<void(int, int)> f)
      : num_chunks(chunks),
        num_ranges(ranges),
        fn(std::move(f)),
        bounds(ChunkBoundaries(chunks, ranges)),
        next(std::make_unique<std::atomic<int>[]>(
            static_cast<size_t>(ranges))) {
    for (int r = 0; r < ranges; ++r) next[r].store(0, std::memory_order_release);
  }

  // Drains as worker `slot` whose home range is `home`; `group` is the
  // pool worker group the thread belongs to (-1 for external threads),
  // recorded so the loop can report how many distinct groups took part.
  void Drain(int slot, int home, int group) {
    bool counted = false;
    for (int pass = 0; pass < num_ranges; ++pass) {
      const int range = (home + pass) % num_ranges;
      for (;;) {
        const int offset = next[range].fetch_add(1, std::memory_order_acq_rel);
        const long long chunk = bounds[static_cast<size_t>(range)] + offset;
        if (chunk >= bounds[static_cast<size_t>(range) + 1]) break;
        if (!counted) {
          // Observed participation, not slots made available: a helper the
          // caller outran never claims a chunk and is not counted. Every
          // increment is sequenced before the chunk's done++ below, so the
          // caller's read after done == num_chunks sees the final count.
          participants.fetch_add(1, std::memory_order_acq_rel);
          const int bit = group < 0 ? 0 : (group < 63 ? group : 63);
          group_mask.fetch_or(std::uint64_t{1} << bit,
                              std::memory_order_acq_rel);
          counted = true;
        }
        if (pass != 0) remote.fetch_add(1, std::memory_order_acq_rel);
        RunChunk(fn, static_cast<int>(chunk), slot);
        std::lock_guard<std::mutex> lock(mu);
        if (++done == num_chunks) cv.notify_all();
      }
    }
  }

  const int num_chunks;
  const int num_ranges;
  const std::function<void(int, int)> fn;
  const std::vector<long long> bounds;
  const std::unique_ptr<std::atomic<int>[]> next;
  std::atomic<int> participants{0};
  std::atomic<std::uint64_t> group_mask{0};
  std::atomic<long long> remote{0};
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;  // guarded by mu
};

int PopCount(std::uint64_t mask) {
  int count = 0;
  while (mask != 0) {
    mask &= mask - 1;
    ++count;
  }
  return count;
}

}  // namespace

ForRunInfo ParallelForPlaced(int num_chunks, int workers,
                             PlacementPolicy placement,
                             const std::function<void(int, int)>& fn) {
  URANK_CHECK_MSG(num_chunks >= 0, "num_chunks must be >= 0");
  ForRunInfo info;
  if (num_chunks == 0) return info;
  const ForMetrics& fm = ForMetrics::Get();
  fm.invocations.Increment();
  fm.chunks.Increment(num_chunks);
  URANK_TRACE_SPAN_ARG("parallel.for", "chunks", num_chunks);
  workers = std::max(1, std::min(workers, num_chunks));
  if (workers == 1) {
    for (int chunk = 0; chunk < num_chunks; ++chunk) RunChunk(fn, chunk, 0);
    fm.nodes_used.SetMax(1);
    return info;
  }

  ThreadPool& pool = ThreadPool::Global();
  // Under kSpread, chunk ranges map onto the planning topology's nodes;
  // the other policies use a single shared range. The range grid is a
  // pure function of (num_chunks, planning topology) — never of workers'
  // runtime behaviour — but even that only routes scheduling.
  int ranges = 1;
  if (placement == PlacementPolicy::kSpread) {
    ranges = std::max(
        1, std::min(GlobalTopology().num_nodes(),
                    std::min(num_chunks, workers)));
  }
  auto state = std::make_shared<PlacedState>(num_chunks, ranges, fn);

  const int caller_group = pool.CurrentGroup();
  int caller_home = 0;
  if (placement == PlacementPolicy::kSpread && caller_group >= 0) {
    caller_home = caller_group % ranges;
  }
  for (int slot = 1; slot < workers; ++slot) {
    switch (placement) {
      case PlacementPolicy::kFlat: {
        pool.Submit([state, slot, &pool] {
          state->Drain(slot, 0, pool.CurrentGroup());
        });
        break;
      }
      case PlacementPolicy::kNodeLocal: {
        // Every helper joins the caller's group so chunks and per-worker
        // arenas stay on one node.
        const int group = caller_group >= 0 ? caller_group : 0;
        pool.SubmitToGroup(group, [state, slot, &pool] {
          state->Drain(slot, 0, pool.CurrentGroup());
        });
        break;
      }
      case PlacementPolicy::kSpread: {
        // Deal helpers across the ranges; each drains its own node's
        // range before stealing.
        const int home = slot % ranges;
        pool.SubmitToGroup(home, [state, slot, home, &pool] {
          state->Drain(slot, home, pool.CurrentGroup());
        });
        break;
      }
    }
  }
  fm.pool_tasks.Increment(workers - 1);
  // The caller always participates — no nested deadlock.
  state->Drain(0, caller_home, caller_group);
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->done == state->num_chunks; });
  // Every chunk has run, so every participating slot has registered
  // itself; the caller is always among them.
  info.participants = state->participants.load(std::memory_order_acquire);
  info.nodes_used =
      std::max(1, PopCount(state->group_mask.load(std::memory_order_acquire)));
  info.remote_chunks = state->remote.load(std::memory_order_acquire);
  fm.nodes_used.SetMax(info.nodes_used);
  if (info.remote_chunks > 0) fm.remote_chunks.Increment(info.remote_chunks);
  return info;
}

int ParallelFor(int num_chunks, int workers,
                const std::function<void(int, int)>& fn) {
  return ParallelForPlaced(num_chunks, workers, PlacementPolicy::kFlat, fn)
      .participants;
}

}  // namespace urank
