#include "util/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/metrics.h"

namespace urank {
namespace {

std::atomic<int> g_active{-1};  // -1 = not yet resolved

// Enum-valued gauge: the SimdTarget ordinal of the active dispatch target
// (0 scalar, 1 neon, 2 avx2, 3 avx512), published whenever it changes.
void PublishActiveTarget(SimdTarget target) {
  static metrics::Gauge& active =
      metrics::Registry::Global().gauge("urank_simd_active_target_info");
  active.Set(static_cast<double>(static_cast<int>(target)));
}

bool CompiledIn(SimdTarget target) {
  switch (target) {
    case SimdTarget::kScalar:
      return true;
    case SimdTarget::kNeon:
#if defined(URANK_HAVE_NEON)
      return true;
#else
      return false;
#endif
    case SimdTarget::kAvx2:
#if defined(URANK_HAVE_AVX2)
      return true;
#else
      return false;
#endif
    case SimdTarget::kAvx512:
#if defined(URANK_HAVE_AVX512)
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool CpuSupports(SimdTarget target) {
  switch (target) {
    case SimdTarget::kScalar:
      return true;
    case SimdTarget::kNeon:
      // NEON is architecturally guaranteed on AArch64, which is the only
      // platform the NEON translation unit is compiled for.
#if defined(__aarch64__)
      return true;
#else
      return false;
#endif
    case SimdTarget::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case SimdTarget::kAvx512:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx512f") != 0;
#else
      return false;
#endif
  }
  return false;
}

// Widest available target at or below `request` in the SimdTarget order.
SimdTarget ClampToAvailable(SimdTarget request) {
  for (int t = static_cast<int>(request); t > 0; --t) {
    if (SimdTargetAvailable(static_cast<SimdTarget>(t))) {
      return static_cast<SimdTarget>(t);
    }
  }
  return SimdTarget::kScalar;
}

SimdTarget ResolveInitialTarget() {
  const char* env = std::getenv("URANK_SIMD");
  if (env != nullptr && env[0] != '\0') {
    SimdTarget requested;
    if (!ParseSimdTarget(env, &requested)) {
      std::fprintf(stderr,
                   "urank: unknown URANK_SIMD value '%s' "
                   "(expected scalar, neon, avx2 or avx512); "
                   "using CPU detection\n",
                   env);
      return DetectSimdTarget();
    }
    const SimdTarget clamped = ClampToAvailable(requested);
    if (clamped != requested) {
      std::fprintf(stderr,
                   "urank: URANK_SIMD=%s is not available on this "
                   "machine; using %s\n",
                   ToString(requested), ToString(clamped));
    }
    return clamped;
  }
  return DetectSimdTarget();
}

}  // namespace

const char* ToString(SimdTarget target) {
  switch (target) {
    case SimdTarget::kScalar:
      return "scalar";
    case SimdTarget::kNeon:
      return "neon";
    case SimdTarget::kAvx2:
      return "avx2";
    case SimdTarget::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool ParseSimdTarget(const char* name, SimdTarget* out) {
  if (name == nullptr || out == nullptr) return false;
  for (SimdTarget t : {SimdTarget::kScalar, SimdTarget::kNeon,
                       SimdTarget::kAvx2, SimdTarget::kAvx512}) {
    if (std::strcmp(name, ToString(t)) == 0) {
      *out = t;
      return true;
    }
  }
  return false;
}

bool SimdTargetAvailable(SimdTarget target) {
  return CompiledIn(target) && CpuSupports(target);
}

SimdTarget DetectSimdTarget() {
  return ClampToAvailable(SimdTarget::kAvx512);
}

SimdTarget ActiveSimdTarget() {
  int raw = g_active.load(std::memory_order_acquire);
  if (raw >= 0) return static_cast<SimdTarget>(raw);
  // First use: resolve from the environment / CPUID. The resolution is
  // idempotent, so a racing first call simply adopts whichever resolved
  // value was published first.
  const SimdTarget resolved = ResolveInitialTarget();
  int expected = -1;
  if (g_active.compare_exchange_strong(expected, static_cast<int>(resolved),
                                       std::memory_order_acq_rel)) {
    PublishActiveTarget(resolved);
    return resolved;
  }
  return static_cast<SimdTarget>(expected);
}

SimdTarget SetSimdTarget(SimdTarget target) {
  const SimdTarget clamped = ClampToAvailable(target);
  g_active.store(static_cast<int>(clamped), std::memory_order_release);
  PublishActiveTarget(clamped);
  return clamped;
}

}  // namespace urank
