#include "util/rank_metrics.h"

#include <algorithm>
#include <cstddef>
#include <unordered_map>
#include <unordered_set>

#include "util/check.h"

namespace urank {
namespace {

int IntersectionSize(const std::vector<int>& a, const std::vector<int>& b) {
  std::unordered_set<int> sa(a.begin(), a.end());
  int count = 0;
  for (int x : b) {
    if (sa.count(x) > 0) ++count;
  }
  return count;
}

// Counts inversions in `perm` by merge sort. O(n log n).
int64_t CountInversions(std::vector<int>& perm) {
  const size_t n = perm.size();
  if (n < 2) return 0;
  std::vector<int> buf(n);
  int64_t inversions = 0;
  for (size_t width = 1; width < n; width *= 2) {
    for (size_t lo = 0; lo + width < n; lo += 2 * width) {
      const size_t mid = lo + width;
      const size_t hi = std::min(lo + 2 * width, n);
      size_t i = lo, j = mid, k = lo;
      while (i < mid && j < hi) {
        if (perm[i] <= perm[j]) {
          buf[k++] = perm[i++];
        } else {
          inversions += static_cast<int64_t>(mid - i);
          buf[k++] = perm[j++];
        }
      }
      while (i < mid) buf[k++] = perm[i++];
      while (j < hi) buf[k++] = perm[j++];
      std::copy(buf.begin() + static_cast<ptrdiff_t>(lo),
                buf.begin() + static_cast<ptrdiff_t>(hi),
                perm.begin() + static_cast<ptrdiff_t>(lo));
    }
  }
  return inversions;
}

}  // namespace

double RecallAgainst(const std::vector<int>& answer,
                     const std::vector<int>& reference) {
  if (reference.empty()) return 1.0;
  return static_cast<double>(IntersectionSize(answer, reference)) /
         static_cast<double>(reference.size());
}

double PrecisionAgainst(const std::vector<int>& answer,
                        const std::vector<int>& reference) {
  if (answer.empty()) return 1.0;
  return static_cast<double>(IntersectionSize(reference, answer)) /
         static_cast<double>(answer.size());
}

double TopKOverlap(const std::vector<int>& a, const std::vector<int>& b) {
  if (a.empty() && b.empty()) return 1.0;
  const size_t denom = std::max(a.size(), b.size());
  return static_cast<double>(IntersectionSize(a, b)) /
         static_cast<double>(denom);
}

double KendallTauDistance(const std::vector<int>& a,
                          const std::vector<int>& b) {
  URANK_CHECK_MSG(a.size() == b.size(),
                  "KendallTauDistance requires equal-size orderings");
  const size_t n = a.size();
  if (n < 2) return 0.0;
  std::unordered_map<int, size_t> pos_in_a;
  pos_in_a.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto inserted = pos_in_a.emplace(a[i], i);
    URANK_CHECK_MSG(inserted.second, "duplicate item in ordering");
  }
  std::vector<int> perm;
  perm.reserve(n);
  for (int x : b) {
    auto it = pos_in_a.find(x);
    URANK_CHECK_MSG(it != pos_in_a.end(),
                    "orderings must contain the same items");
    perm.push_back(static_cast<int>(it->second));
  }
  const int64_t inv = CountInversions(perm);
  const double pairs = static_cast<double>(n) * (static_cast<double>(n) - 1) / 2.0;
  return static_cast<double>(inv) / pairs;
}

double SpearmanFootruleDistance(const std::vector<int>& a,
                                const std::vector<int>& b) {
  URANK_CHECK_MSG(a.size() == b.size(),
                  "SpearmanFootruleDistance requires equal-size orderings");
  const size_t n = a.size();
  if (n < 2) return 0.0;
  std::unordered_map<int, size_t> pos_in_a;
  pos_in_a.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto inserted = pos_in_a.emplace(a[i], i);
    URANK_CHECK_MSG(inserted.second, "duplicate item in ordering");
  }
  int64_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    auto it = pos_in_a.find(b[i]);
    URANK_CHECK_MSG(it != pos_in_a.end(),
                    "orderings must contain the same items");
    const int64_t diff = static_cast<int64_t>(it->second) -
                         static_cast<int64_t>(i);
    total += diff < 0 ? -diff : diff;
  }
  // Maximum of the footrule sum over permutations is floor(n^2 / 2).
  const double max_total =
      static_cast<double>((static_cast<int64_t>(n) * static_cast<int64_t>(n)) / 2);
  return static_cast<double>(total) / max_total;
}

}  // namespace urank
