// Runtime SIMD dispatch target for the vectorized DP kernels.
//
// The library compiles its hot probability primitives (see
// core/internal/vector_kernels.h) once per instruction-set target —
// portable scalar always, plus AVX2 / AVX-512 on x86-64 and NEON on
// AArch64 when the toolchain supports them — and selects one target at
// runtime. Selection happens once, on first use, in this order:
//
//   1. the URANK_SIMD environment variable ("scalar", "neon", "avx2",
//      "avx512"), when set to an available target;
//   2. otherwise CPUID detection: the widest target both compiled in and
//      supported by the running CPU.
//
// SetSimdTarget() overrides the active target programmatically (tests pin
// a target; services can force the scalar reference path). Requests for a
// target the binary or CPU cannot run are clamped down to the widest
// available target below the request, so callers never have to guard by
// platform. For a fixed active target, every kernel in the library is
// deterministic: bit-identical across thread counts and repeated runs —
// see docs/PERFORMANCE.md ("SIMD dispatch and determinism").

#ifndef URANK_UTIL_SIMD_H_
#define URANK_UTIL_SIMD_H_

namespace urank {

// Instruction-set targets, ordered narrow to wide; clamping a request
// walks down this order. kScalar is always available.
enum class SimdTarget {
  kScalar = 0,
  kNeon = 1,
  kAvx2 = 2,
  kAvx512 = 3,
};

// Lower-case target name ("scalar", "neon", "avx2", "avx512"), as accepted
// by ParseSimdTarget and the URANK_SIMD environment variable.
const char* ToString(SimdTarget target);

// Parses a target name (the ToString spelling). Returns false — leaving
// *out untouched — for any other string.
bool ParseSimdTarget(const char* name, SimdTarget* out);

// True when `target` was both compiled into this binary and is supported
// by the running CPU. kScalar is always true.
bool SimdTargetAvailable(SimdTarget target);

// The widest available target on this machine (CPUID detection; pure —
// ignores URANK_SIMD and SetSimdTarget).
SimdTarget DetectSimdTarget();

// The target the vectorized kernels currently dispatch to. Resolved once
// on first call (URANK_SIMD, else DetectSimdTarget()); later calls return
// the resolved or last Set value. Thread-safe.
SimdTarget ActiveSimdTarget();

// Overrides the active target for all subsequent kernel invocations,
// clamped to the widest available target not above `target`. Thread-safe,
// but callers are expected to set it at startup or around a test block —
// kernels already in flight keep the table they loaded. Returns the
// target actually installed after clamping.
SimdTarget SetSimdTarget(SimdTarget target);

}  // namespace urank

#endif  // URANK_UTIL_SIMD_H_
