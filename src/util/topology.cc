#include "util/topology.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "util/check.h"

#if defined(__linux__)
#include <sched.h>
#endif

namespace urank {

namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

// Parses a non-negative int out of `s` (entire string). Returns false on
// empty input, trailing junk, or overflow.
bool ParseInt(std::string_view s, int* out) {
  if (s.empty()) return false;
  long long value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
    if (value > 1 << 24) return false;  // no machine has 16M cpus
  }
  *out = static_cast<int>(value);
  return true;
}

}  // namespace

CoreSet::CoreSet(std::vector<int> cpus) : cpus_(std::move(cpus)) {
  std::sort(cpus_.begin(), cpus_.end());
  cpus_.erase(std::unique(cpus_.begin(), cpus_.end()), cpus_.end());
}

bool CoreSet::Parse(std::string_view cpulist, CoreSet* out) {
  std::vector<int> cpus;
  std::string_view rest = Trim(cpulist);
  while (!rest.empty()) {
    const size_t comma = rest.find(',');
    std::string_view item = Trim(rest.substr(0, comma));
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (item.empty()) return false;
    const size_t dash = item.find('-');
    int lo = 0;
    int hi = 0;
    if (dash == std::string_view::npos) {
      if (!ParseInt(item, &lo)) return false;
      hi = lo;
    } else {
      if (!ParseInt(Trim(item.substr(0, dash)), &lo)) return false;
      if (!ParseInt(Trim(item.substr(dash + 1)), &hi)) return false;
      if (hi < lo) return false;
    }
    if (hi - lo >= 4096) return false;  // refuse absurd ranges
    for (int cpu = lo; cpu <= hi; ++cpu) cpus.push_back(cpu);
  }
  *out = CoreSet(std::move(cpus));
  return true;
}

bool CoreSet::Contains(int cpu) const {
  return std::binary_search(cpus_.begin(), cpus_.end(), cpu);
}

CoreSet CoreSet::Intersect(const CoreSet& other) const {
  std::vector<int> cpus;
  std::set_intersection(cpus_.begin(), cpus_.end(), other.cpus_.begin(),
                        other.cpus_.end(), std::back_inserter(cpus));
  return CoreSet(std::move(cpus));
}

std::string CoreSet::ToCpulist() const {
  std::ostringstream out;
  size_t i = 0;
  bool first = true;
  while (i < cpus_.size()) {
    size_t j = i;
    while (j + 1 < cpus_.size() && cpus_[j + 1] == cpus_[j] + 1) ++j;
    if (!first) out << ',';
    first = false;
    if (j == i) {
      out << cpus_[i];
    } else {
      out << cpus_[i] << '-' << cpus_[j];
    }
    i = j + 1;
  }
  return out.str();
}

Topology::Topology(std::vector<NumaNode> nodes, bool synthetic)
    : nodes_(std::move(nodes)), synthetic_(synthetic) {
  URANK_CHECK_MSG(!nodes_.empty(), "topology must have at least one node");
  for (const NumaNode& node : nodes_) {
    URANK_CHECK_MSG(!node.cores.empty(), "topology node must have cores");
  }
}

Topology Topology::SingleNode(int cores) {
  cores = std::max(cores, 1);
  std::vector<int> cpus(static_cast<size_t>(cores));
  for (int i = 0; i < cores; ++i) cpus[static_cast<size_t>(i)] = i;
  return Topology({NumaNode{0, CoreSet(std::move(cpus))}}, /*synthetic=*/true);
}

bool Topology::Parse(std::string_view spec, Topology* out,
                     std::string* error) {
  std::vector<NumaNode> nodes;
  std::string_view rest = Trim(spec);
  if (rest.empty()) {
    if (error) *error = "empty topology spec";
    return false;
  }
  int id = 0;
  while (true) {
    const size_t semi = rest.find(';');
    const std::string_view item = Trim(rest.substr(0, semi));
    CoreSet cores;
    if (!CoreSet::Parse(item, &cores) || cores.empty()) {
      if (error) {
        *error = "bad cpulist for node " + std::to_string(id) + ": \"" +
                 std::string(item) + "\"";
      }
      return false;
    }
    nodes.push_back(NumaNode{id, std::move(cores)});
    ++id;
    if (semi == std::string_view::npos) break;
    rest = rest.substr(semi + 1);
  }
  *out = Topology(std::move(nodes), /*synthetic=*/true);
  return true;
}

Topology Topology::FromSysfs(const std::string& sysfs_node_root,
                             int fallback_cores) {
  const Topology fallback = SingleNode(fallback_cores);
  std::ifstream online(sysfs_node_root + "/online");
  if (!online.is_open()) return fallback;
  std::string online_list;
  std::getline(online, online_list);
  CoreSet node_ids;
  if (!CoreSet::Parse(online_list, &node_ids) || node_ids.empty()) {
    return fallback;
  }
  std::vector<NumaNode> nodes;
  for (int id : node_ids.cpus()) {
    std::ifstream cpulist(sysfs_node_root + "/node" + std::to_string(id) +
                          "/cpulist");
    if (!cpulist.is_open()) continue;
    std::string list;
    std::getline(cpulist, list);
    CoreSet cores;
    if (!CoreSet::Parse(list, &cores) || cores.empty()) continue;
    nodes.push_back(NumaNode{id, std::move(cores)});
  }
  if (nodes.empty()) return fallback;
  return Topology(std::move(nodes), /*synthetic=*/false);
}

Topology Topology::Detect() {
  if (const char* spec = std::getenv("URANK_TOPOLOGY");
      spec != nullptr && spec[0] != '\0') {
    Topology parsed = SingleNode(1);
    std::string error;
    if (Parse(spec, &parsed, &error)) return parsed;
    // A malformed override falls through to real detection: scheduling
    // still works, only the synthetic shape is lost.
  }
  const int allowed = AllowedCoreCount();
  Topology sysfs = FromSysfs("/sys/devices/system/node", allowed);
  if (sysfs.synthetic()) return sysfs;  // fallback path already sized right
  // Restrict each node to cpus the process may actually run on; drop nodes
  // the cpuset excludes entirely (common under container pinning).
  const CoreSet allowed_cores = AllowedCores();
  if (allowed_cores.empty()) return sysfs;
  std::vector<NumaNode> nodes;
  for (const NumaNode& node : sysfs.nodes()) {
    CoreSet cores = node.cores.Intersect(allowed_cores);
    if (!cores.empty()) nodes.push_back(NumaNode{node.id, std::move(cores)});
  }
  if (nodes.empty()) return SingleNode(allowed);
  return Topology(std::move(nodes), /*synthetic=*/false);
}

int Topology::total_cores() const {
  int total = 0;
  for (const NumaNode& node : nodes_) total += node.cores.size();
  return total;
}

int Topology::max_node_cores() const {
  int widest = 1;
  for (const NumaNode& node : nodes_) {
    widest = std::max(widest, node.cores.size());
  }
  return widest;
}

int Topology::NodeOfCpu(int cpu) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].cores.Contains(cpu)) return static_cast<int>(i);
  }
  return -1;
}

std::string Topology::ToSpec() const {
  std::string spec;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (i > 0) spec += ';';
    spec += nodes_[i].cores.ToCpulist();
  }
  return spec;
}

namespace {

// The planning topology. Writers (SetGlobalTopologyForTest) retire the
// old value into g_retired instead of freeing it so readers holding a
// reference stay valid for the process lifetime (and the memory stays
// reachable, keeping leak checkers quiet); acquire/release pairs the
// pointer publication with the pointee's construction.
std::atomic<const Topology*> g_topology{nullptr};

std::mutex& RetiredMutex() {
  static std::mutex mu;
  return mu;
}

std::vector<const Topology*>& RetiredTopologies() {
  static auto* retired = new std::vector<const Topology*>();
  return *retired;
}

}  // namespace

const Topology& GlobalTopology() {
  const Topology* cached = g_topology.load(std::memory_order_acquire);
  if (cached != nullptr) return *cached;
  auto* fresh = new Topology(Topology::Detect());
  const Topology* expected = nullptr;
  if (!g_topology.compare_exchange_strong(expected, fresh,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
    delete fresh;
    return *expected;
  }
  return *fresh;
}

void SetGlobalTopologyForTest(Topology topology) {
  auto* fresh = new Topology(std::move(topology));
  const Topology* old =
      g_topology.exchange(fresh, std::memory_order_acq_rel);
  if (old != nullptr) {
    std::lock_guard<std::mutex> lock(RetiredMutex());
    RetiredTopologies().push_back(old);
  }
}

int AllowedCoreCount() {
#if defined(__linux__)
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (sched_getaffinity(0, sizeof(mask), &mask) == 0) {
    const int count = CPU_COUNT(&mask);
    if (count > 0) return count;
  }
#endif
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

CoreSet AllowedCores() {
#if defined(__linux__)
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (sched_getaffinity(0, sizeof(mask), &mask) == 0) {
    std::vector<int> cpus;
    for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
      if (CPU_ISSET(cpu, &mask)) cpus.push_back(cpu);
    }
    return CoreSet(std::move(cpus));
  }
#endif
  return CoreSet{};
}

bool PinCurrentThreadToCores(const CoreSet& cores) {
#if defined(__linux__)
  if (cores.empty()) return false;
  cpu_set_t mask;
  CPU_ZERO(&mask);
  for (int cpu : cores.cpus()) {
    if (cpu >= 0 && cpu < CPU_SETSIZE) CPU_SET(cpu, &mask);
  }
  return sched_setaffinity(0, sizeof(mask), &mask) == 0;
#else
  (void)cores;
  return false;
#endif
}

}  // namespace urank
