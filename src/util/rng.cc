#include "util/rng.h"

#include <algorithm>

#include "util/check.h"

namespace urank {

double Rng::Uniform(double lo, double hi) {
  URANK_CHECK_MSG(lo < hi, "Uniform requires lo < hi");
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  URANK_CHECK_MSG(lo <= hi, "UniformInt requires lo <= hi");
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::Normal(double mean, double stddev) {
  URANK_CHECK_MSG(stddev >= 0.0, "Normal requires stddev >= 0");
  if (stddev == 0.0) return mean;
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform01() < p;
}

std::vector<double> Rng::RandomSimplex(int n, double total) {
  URANK_CHECK_MSG(n >= 1, "RandomSimplex requires n >= 1");
  URANK_CHECK_MSG(total > 0.0, "RandomSimplex requires total > 0");
  // Draw n positive weights and normalize; offset away from zero so each
  // component is strictly positive after normalization.
  std::vector<double> w(static_cast<size_t>(n));
  double sum = 0.0;
  for (double& x : w) {
    x = Uniform01() + 1e-3;
    sum += x;
  }
  for (double& x : w) x = x / sum * total;
  return w;
}

}  // namespace urank
