#include "util/metrics.h"

#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <memory>
#include <mutex>

#include "util/check.h"

namespace urank {
namespace metrics {

namespace {

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Shortest round-trippable formatting for snapshot values; %.17g is exact
// for doubles and %g keeps integers compact.
std::string FormatValue(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

std::string FormatBound(double bound) {
  if (bound == std::numeric_limits<double>::infinity()) return "+Inf";
  return FormatValue(bound);
}

}  // namespace

double Histogram::BucketUpperBound(int i) {
  URANK_CHECK_MSG(i >= 0 && i < kBucketCount, "bucket index out of range");
  if (i == kBucketCount - 1) return std::numeric_limits<double>::infinity();
  return static_cast<double>(1ULL << static_cast<unsigned>(i));
}

int Histogram::BucketIndex(double value) {
  if (!(value > 1.0)) return 0;  // <= 1, negative and NaN all clamp down
  // Smallest i with value <= 2^i: bit_width(ceil(value) - 1). Values past
  // the last finite bound (inclusive) land in the +Inf bucket.
  if (value > static_cast<double>(1ULL << (kBucketCount - 2))) {
    return kBucketCount - 1;
  }
  const auto m = static_cast<std::uint64_t>(std::ceil(value));
  const int i = std::bit_width(m - 1);
  return i < kBucketCount - 1 ? i : kBucketCount - 1;
}

long long Histogram::bucket_count(int i) const {
  URANK_CHECK_MSG(i >= 0 && i < kBucketCount, "bucket index out of range");
  return buckets_[i].load(std::memory_order_relaxed);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

struct Registry::Impl {
  mutable std::mutex mu;
  // Node-based maps: element addresses are stable across insertions, so
  // the references handed out by counter()/gauge()/histogram() stay valid
  // for the registry's lifetime.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;

  void CheckName(std::string_view name) const {
    URANK_CHECK_MSG(name.rfind("urank_", 0) == 0,
                    "metric names must follow urank_<layer>_<name>_<unit>");
  }

  bool NameTaken(const std::string& name,
                 const void* exempt_map) const {
    return (exempt_map != &counters && counters.count(name) > 0) ||
           (exempt_map != &gauges && gauges.count(name) > 0) ||
           (exempt_map != &histograms && histograms.count(name) > 0);
  }
};

Registry::Registry() : impl_(new Impl) {}

// The global registry is leaked (see ThreadPool::Global): instrumented
// worker threads may outlive static destructors.
Registry::~Registry() { delete impl_; }

Registry& Registry::Global() {
  static Registry* registry = new Registry;
  return *registry;
}

Counter& Registry::counter(std::string_view name) {
  impl_->CheckName(name);
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::string key(name);
  URANK_CHECK_MSG(!impl_->NameTaken(key, &impl_->counters),
                  "metric name already registered under another type");
  auto& slot = impl_->counters[key];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(std::string_view name) {
  impl_->CheckName(name);
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::string key(name);
  URANK_CHECK_MSG(!impl_->NameTaken(key, &impl_->gauges),
                  "metric name already registered under another type");
  auto& slot = impl_->gauges[key];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(std::string_view name) {
  impl_->CheckName(name);
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::string key(name);
  URANK_CHECK_MSG(!impl_->NameTaken(key, &impl_->histograms),
                  "metric name already registered under another type");
  auto& slot = impl_->histograms[key];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string Registry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::string out;
  out.reserve(1024);
  for (const auto& [name, c] : impl_->counters) {
    out += "# TYPE " + name + " counter\n";
    out += name + " " + FormatValue(static_cast<double>(c->value())) + "\n";
  }
  for (const auto& [name, g] : impl_->gauges) {
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + FormatValue(g->value()) + "\n";
  }
  for (const auto& [name, h] : impl_->histograms) {
    out += "# TYPE " + name + " histogram\n";
    long long cumulative = 0;
    for (int i = 0; i < Histogram::kBucketCount; ++i) {
      cumulative += h->bucket_count(i);
      out += name + "_bucket{le=\"" +
             FormatBound(Histogram::BucketUpperBound(i)) + "\"} " +
             FormatValue(static_cast<double>(cumulative)) + "\n";
    }
    out += name + "_sum " + FormatValue(h->sum()) + "\n";
    out += name + "_count " +
           FormatValue(static_cast<double>(h->count())) + "\n";
  }
  return out;
}

std::string Registry::RenderJsonSnapshot() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : impl_->counters) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + name +
           "\": " + FormatValue(static_cast<double>(c->value()));
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, g] : impl_->gauges) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + name + "\": " + FormatValue(g->value());
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : impl_->histograms) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + name + "\": {\"count\": " +
           FormatValue(static_cast<double>(h->count())) +
           ", \"sum\": " + FormatValue(h->sum()) + ", \"buckets\": [";
    bool first_bucket = true;
    for (int i = 0; i < Histogram::kBucketCount; ++i) {
      const long long n = h->bucket_count(i);
      if (n == 0) continue;
      if (!first_bucket) out += ", ";
      first_bucket = false;
      out += "[\"" + FormatBound(Histogram::BucketUpperBound(i)) + "\", " +
             FormatValue(static_cast<double>(n)) + "]";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

void Registry::ResetAll() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (const auto& [name, c] : impl_->counters) c->Reset();
  for (const auto& [name, g] : impl_->gauges) g->Reset();
  for (const auto& [name, h] : impl_->histograms) h->Reset();
}

ScopedHistogramTimer::ScopedHistogramTimer(Histogram& histogram)
    : histogram_(histogram), start_ns_(NowNs()) {}

ScopedHistogramTimer::~ScopedHistogramTimer() {
  histogram_.Record(ElapsedUs());
}

double ScopedHistogramTimer::ElapsedUs() const {
  return static_cast<double>(NowNs() - start_ns_) * 1e-3;
}

}  // namespace metrics
}  // namespace urank
