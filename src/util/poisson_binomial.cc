#include "util/poisson_binomial.h"

#include <algorithm>

#include "core/internal/vector_kernels.h"
#include "util/check.h"
#include "util/kernel_annotations.h"

namespace urank {

URANK_KERNEL void PbConvolveTrial(std::vector<double>* pmf, double p) {
  URANK_CHECK_MSG(p > 0.0 && p <= 1.0, "trial probability must be in (0,1]");
  URANK_CHECK_MSG(!pmf->empty(), "pmf must be non-empty");
  const size_t n = pmf->size();
  pmf->push_back(0.0);
  vk::Active().convolve_trial(pmf->data(), n, p);
}

URANK_KERNEL bool PbDeconvolveTrial(const std::vector<double>& src, double p,
                                    std::vector<double>* out) {
  URANK_CHECK_MSG(p > 0.0 && p <= 1.0, "trial probability must be in (0,1]");
  URANK_CHECK_MSG(src.size() >= 2, "src must hold at least one trial");
  const size_t n = src.size() - 1;  // trial count before removal
  out->resize(n);
  return vk::Active().deconvolve_trial(src.data(), n, p, out->data());
}

PoissonBinomial::PoissonBinomial() : pmf_{1.0} {}

PoissonBinomial PoissonBinomial::FromProbs(const std::vector<double>& probs) {
  PoissonBinomial pb;
  for (double p : probs) {
    URANK_CHECK_MSG(p >= 0.0 && p <= 1.0,
                    "trial probability must be in [0,1]");
    if (p == 0.0) {
      ++pb.zero_trials_;
    } else {
      pb.trials_.push_back(p);
    }
  }
  pb.Recompute();
  return pb;
}

URANK_KERNEL void PoissonBinomial::AddTrial(double p) {
  URANK_CHECK_MSG(p >= 0.0 && p <= 1.0, "trial probability must be in [0,1]");
  if (p == 0.0) {
    ++zero_trials_;  // a {1, 0} factor: exact, support unchanged
    return;
  }
  trials_.push_back(p);
  PbConvolveTrial(&pmf_, p);
  URANK_DCHECK_NORMALIZED(pmf_);
}

URANK_KERNEL void PoissonBinomial::RemoveTrial(double p) {
  URANK_CHECK_MSG(p >= 0.0 && p <= 1.0, "trial probability must be in [0,1]");
  URANK_CHECK_MSG(num_trials() > 0, "RemoveTrial with no live trials");
  if (p == 0.0) {
    URANK_CHECK_MSG(zero_trials_ > 0, "RemoveTrial: no matching trial");
    --zero_trials_;
    return;
  }
  auto it = std::find(trials_.begin(), trials_.end(), p);
  URANK_CHECK_MSG(it != trials_.end(), "RemoveTrial: no matching trial");
  trials_.erase(it);

  if (PbDeconvolveTrial(pmf_, p, &scratch_)) {
    pmf_.swap(scratch_);
  } else {
    Recompute();
  }
  URANK_DCHECK_NORMALIZED(pmf_);
}

double PoissonBinomial::Pmf(int c) const {
  if (c < 0 || c >= static_cast<int>(pmf_.size())) return 0.0;
  return pmf_[static_cast<size_t>(c)];
}

URANK_KERNEL double PoissonBinomial::Cdf(int c) const {
  if (c < 0) return 0.0;
  const int hi = std::min(c, static_cast<int>(pmf_.size()) - 1);
  const double sum =
      vk::Active().sum(pmf_.data(), static_cast<size_t>(hi) + 1);
  return std::min(sum, 1.0);
}

double PoissonBinomial::Mean() const {
  double m = 0.0;
  for (double p : trials_) m += p;
  return m;
}

void PoissonBinomial::Recompute() {
  pmf_.assign(1, 1.0);
  for (double p : trials_) PbConvolveTrial(&pmf_, p);
}

}  // namespace urank
