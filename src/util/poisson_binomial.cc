#include "util/poisson_binomial.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace urank {
namespace {

// Relative error beyond which a deconvolution result is considered to have
// lost too much precision and a full recompute is triggered instead.
constexpr double kDeconvTolerance = 1e-9;

}  // namespace

PoissonBinomial::PoissonBinomial() : pmf_{1.0} {}

PoissonBinomial PoissonBinomial::FromProbs(const std::vector<double>& probs) {
  PoissonBinomial pb;
  pb.trials_ = probs;
  pb.Recompute();
  return pb;
}

void PoissonBinomial::AddTrial(double p) {
  URANK_CHECK_MSG(p >= 0.0 && p <= 1.0, "trial probability must be in [0,1]");
  trials_.push_back(p);
  const size_t n = pmf_.size();
  pmf_.push_back(0.0);
  if (p == 0.0) return;  // convolving with {1, 0} only extends the support
  // Convolve with the two-point distribution {1-p, p}, in place, high to low.
  for (size_t c = n; c > 0; --c) {
    pmf_[c] = pmf_[c] * (1.0 - p) + pmf_[c - 1] * p;
  }
  pmf_[0] *= (1.0 - p);
  URANK_DCHECK_NORMALIZED(pmf_);
}

void PoissonBinomial::RemoveTrial(double p) {
  URANK_CHECK_MSG(p >= 0.0 && p <= 1.0, "trial probability must be in [0,1]");
  URANK_CHECK_MSG(!trials_.empty(), "RemoveTrial with no live trials");
  auto it = std::find(trials_.begin(), trials_.end(), p);
  URANK_CHECK_MSG(it != trials_.end(), "RemoveTrial: no matching trial");
  trials_.erase(it);

  if (p == 0.0) {
    // A zero trial never succeeds, so the top count is unreachable and its
    // pmf entry is exactly 0; dropping it undoes AddTrial(0).
    pmf_.pop_back();
    return;
  }

  const size_t n = pmf_.size() - 1;  // trial count before removal
  std::vector<double> out(n);        // pmf over n-1 trials
  bool ok = true;
  if (p <= 0.5) {
    // pmf[c] = out[c]*(1-p) + out[c-1]*p  =>  solve forward by (1-p).
    const double q = 1.0 - p;
    double carry = 0.0;  // out[c-1]
    for (size_t c = 0; c < n; ++c) {
      double v = (pmf_[c] - carry * p) / q;
      if (!std::isfinite(v)) {
        ok = false;
        break;
      }
      out[c] = v;
      carry = v;
    }
    // Consistency check against the top coefficient.
    if (ok && std::fabs(out[n - 1] * p - pmf_[n]) >
                  kDeconvTolerance + kDeconvTolerance * std::fabs(pmf_[n])) {
      ok = false;
    }
  } else {
    // Solve backward by p: pmf[c] = out[c]*(1-p) + out[c-1]*p.
    const double q = 1.0 - p;
    double carry = 0.0;  // out[c]
    for (size_t c = n; c > 0; --c) {
      double v = (pmf_[c] - carry * q) / p;
      if (!std::isfinite(v)) {
        ok = false;
        break;
      }
      out[c - 1] = v;
      carry = v;
    }
    if (ok && std::fabs(out[0] * q - pmf_[0]) >
                  kDeconvTolerance + kDeconvTolerance * std::fabs(pmf_[0])) {
      ok = false;
    }
  }
  // Negative dips beyond round-off also signal cancellation.
  if (ok) {
    for (double v : out) {
      if (v < -1e-9) {
        ok = false;
        break;
      }
    }
  }
  if (ok) {
    for (double& v : out) v = std::max(v, 0.0);
    pmf_ = std::move(out);
  } else {
    Recompute();
  }
  URANK_DCHECK_NORMALIZED(pmf_);
}

double PoissonBinomial::Pmf(int c) const {
  if (c < 0 || c >= static_cast<int>(pmf_.size())) return 0.0;
  return pmf_[static_cast<size_t>(c)];
}

double PoissonBinomial::Cdf(int c) const {
  if (c < 0) return 0.0;
  double sum = 0.0;
  const int hi = std::min(c, static_cast<int>(pmf_.size()) - 1);
  for (int i = 0; i <= hi; ++i) sum += pmf_[static_cast<size_t>(i)];
  return std::min(sum, 1.0);
}

double PoissonBinomial::Mean() const {
  double m = 0.0;
  for (double p : trials_) m += p;
  return m;
}

void PoissonBinomial::Recompute() {
  pmf_.assign(1, 1.0);
  std::vector<double> saved = std::move(trials_);
  trials_.clear();
  trials_.reserve(saved.size());
  for (double p : saved) AddTrial(p);
}

}  // namespace urank
