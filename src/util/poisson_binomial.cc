#include "util/poisson_binomial.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace urank {
namespace {

// Relative error beyond which a deconvolution result is considered to have
// lost too much precision and a full recompute is triggered instead.
constexpr double kDeconvTolerance = 1e-9;

}  // namespace

void PbConvolveTrial(std::vector<double>* pmf, double p) {
  URANK_CHECK_MSG(p > 0.0 && p <= 1.0, "trial probability must be in (0,1]");
  URANK_CHECK_MSG(!pmf->empty(), "pmf must be non-empty");
  const size_t n = pmf->size();
  pmf->push_back(0.0);
  std::vector<double>& v = *pmf;
  // Convolve with the two-point distribution {1-p, p}, in place, high to low.
  const double q = 1.0 - p;
  for (size_t c = n; c > 0; --c) {
    v[c] = v[c] * q + v[c - 1] * p;
  }
  v[0] *= q;
}

bool PbDeconvolveTrial(const std::vector<double>& src, double p,
                       std::vector<double>* out) {
  URANK_CHECK_MSG(p > 0.0 && p <= 1.0, "trial probability must be in (0,1]");
  URANK_CHECK_MSG(src.size() >= 2, "src must hold at least one trial");
  const size_t n = src.size() - 1;  // trial count before removal
  out->resize(n);
  std::vector<double>& o = *out;
  const double q = 1.0 - p;
  bool ok = true;
  if (p <= 0.5) {
    // src[c] = out[c]*(1-p) + out[c-1]*p  =>  solve forward by (1-p).
    double carry = 0.0;  // out[c-1]
    for (size_t c = 0; c < n; ++c) {
      const double v = (src[c] - carry * p) / q;
      if (!std::isfinite(v)) {
        ok = false;
        break;
      }
      o[c] = v;
      carry = v;
    }
    // Consistency check against the top coefficient.
    if (ok && std::fabs(o[n - 1] * p - src[n]) >
                  kDeconvTolerance + kDeconvTolerance * std::fabs(src[n])) {
      ok = false;
    }
  } else {
    // Solve backward by p: src[c] = out[c]*(1-p) + out[c-1]*p.
    double carry = 0.0;  // out[c]
    for (size_t c = n; c > 0; --c) {
      const double v = (src[c] - carry * q) / p;
      if (!std::isfinite(v)) {
        ok = false;
        break;
      }
      o[c - 1] = v;
      carry = v;
    }
    if (ok && std::fabs(o[0] * q - src[0]) >
                  kDeconvTolerance + kDeconvTolerance * std::fabs(src[0])) {
      ok = false;
    }
  }
  // Negative dips beyond round-off also signal cancellation.
  if (ok) {
    for (double v : o) {
      if (v < -1e-9) {
        ok = false;
        break;
      }
    }
  }
  if (ok) {
    for (double& v : o) v = std::max(v, 0.0);
  }
  return ok;
}

PoissonBinomial::PoissonBinomial() : pmf_{1.0} {}

PoissonBinomial PoissonBinomial::FromProbs(const std::vector<double>& probs) {
  PoissonBinomial pb;
  for (double p : probs) {
    URANK_CHECK_MSG(p >= 0.0 && p <= 1.0,
                    "trial probability must be in [0,1]");
    if (p == 0.0) {
      ++pb.zero_trials_;
    } else {
      pb.trials_.push_back(p);
    }
  }
  pb.Recompute();
  return pb;
}

void PoissonBinomial::AddTrial(double p) {
  URANK_CHECK_MSG(p >= 0.0 && p <= 1.0, "trial probability must be in [0,1]");
  if (p == 0.0) {
    ++zero_trials_;  // a {1, 0} factor: exact, support unchanged
    return;
  }
  trials_.push_back(p);
  PbConvolveTrial(&pmf_, p);
  URANK_DCHECK_NORMALIZED(pmf_);
}

void PoissonBinomial::RemoveTrial(double p) {
  URANK_CHECK_MSG(p >= 0.0 && p <= 1.0, "trial probability must be in [0,1]");
  URANK_CHECK_MSG(num_trials() > 0, "RemoveTrial with no live trials");
  if (p == 0.0) {
    URANK_CHECK_MSG(zero_trials_ > 0, "RemoveTrial: no matching trial");
    --zero_trials_;
    return;
  }
  auto it = std::find(trials_.begin(), trials_.end(), p);
  URANK_CHECK_MSG(it != trials_.end(), "RemoveTrial: no matching trial");
  trials_.erase(it);

  if (PbDeconvolveTrial(pmf_, p, &scratch_)) {
    pmf_.swap(scratch_);
  } else {
    Recompute();
  }
  URANK_DCHECK_NORMALIZED(pmf_);
}

double PoissonBinomial::Pmf(int c) const {
  if (c < 0 || c >= static_cast<int>(pmf_.size())) return 0.0;
  return pmf_[static_cast<size_t>(c)];
}

double PoissonBinomial::Cdf(int c) const {
  if (c < 0) return 0.0;
  double sum = 0.0;
  const int hi = std::min(c, static_cast<int>(pmf_.size()) - 1);
  for (int i = 0; i <= hi; ++i) sum += pmf_[static_cast<size_t>(i)];
  return std::min(sum, 1.0);
}

double PoissonBinomial::Mean() const {
  double m = 0.0;
  for (double p : trials_) m += p;
  return m;
}

void PoissonBinomial::Recompute() {
  pmf_.assign(1, 1.0);
  for (double p : trials_) PbConvolveTrial(&pmf_, p);
}

}  // namespace urank
