// Poisson-binomial distribution: the number of successes among independent
// Bernoulli trials with heterogeneous success probabilities.
//
// This is the shared numeric kernel behind every exact rank-distribution
// computation in the library:
//   * attribute-level rank distributions — trials are "tuple j outranks
//     tuple i given X_i = v" events (Section 7.2 of the paper);
//   * tuple-level rank distributions — trials are "rule τ contributes an
//     appearing tuple ranked above t_i" events (Section 7, tuple-level DP);
//   * U-kRanks / PT-k / Global-Topk positional probabilities.
//
// The incremental Add/Remove interface lets callers that sweep a tuple out
// of a shared pool avoid recomputing the full O(n^2) DP from scratch.
// Removal is polynomial deconvolution; it chooses the numerically stable
// division direction based on the trial probability and falls back to a
// full recomputation when cancellation is detected.
//
// The representation is support-aware: zero-probability trials contribute
// only an exact factor {1, 0}, so they are counted but never convolved —
// the stored pmf covers success counts up to the number of *nonzero*
// trials, and Add/Remove cost O(support) instead of O(num_trials). The
// sweeps over sparse rule masses (most rules untouched, probability 0)
// rely on this. Remove ping-pongs an internal scratch buffer, so steady-
// state updates perform no heap allocation.

#ifndef URANK_UTIL_POISSON_BINOMIAL_H_
#define URANK_UTIL_POISSON_BINOMIAL_H_

#include <vector>

namespace urank {

// Flat single-step building blocks, shared between the PoissonBinomial
// class and the chunked rank-distribution kernels that manage raw pmf
// buffers in per-worker arenas.

// In-place convolution of `pmf` with the two-point distribution {1-p, p}:
// afterwards pmf->size() is one larger. Requires p in (0, 1] and a
// non-empty pmf (convolving a zero trial is the identity on the support —
// callers skip it).
void PbConvolveTrial(std::vector<double>* pmf, double p);

// Polynomial deconvolution: writes into `out` the pmf of `src` with one
// factor {1-p, p} divided out (out->size() = src.size() - 1), choosing the
// numerically stable division direction for p. `src` is left untouched —
// this is what makes concurrent read-only deconvolutions of one shared
// pmf safe. Returns false (contents of `out` unspecified) when
// cancellation is detected; the caller must then rebuild the reduced pmf
// from its factor list. Requires p in (0, 1] and src.size() >= 2.
bool PbDeconvolveTrial(const std::vector<double>& src, double p,
                       std::vector<double>* out);

// Running Poisson-binomial DP. Starts with zero trials (Pr[count = 0] = 1).
class PoissonBinomial {
 public:
  PoissonBinomial();

  // Convenience: a distribution over all trials in `probs` at once.
  // Each probability must lie in [0, 1].
  static PoissonBinomial FromProbs(const std::vector<double>& probs);

  // Incorporates one trial with success probability p in [0, 1].
  // O(support) — a zero trial is O(1).
  void AddTrial(double p);

  // Removes one previously added trial with success probability p. The
  // caller must guarantee that a trial with exactly this probability was
  // added and not yet removed; otherwise the result is meaningless.
  // O(support) — a zero trial is O(1); no heap allocation.
  void RemoveTrial(double p);

  // Pr[count = c]; zero outside [0, num_trials].
  double Pmf(int c) const;

  // Pr[count <= c]; clamps c below 0 / above num_trials.
  double Cdf(int c) const;

  // Expected number of successes.
  double Mean() const;

  // Number of trials currently incorporated (zero trials included).
  int num_trials() const {
    return static_cast<int>(trials_.size()) + zero_trials_;
  }

  // Pmf vector indexed by success count, truncated to the reachable
  // support: size() is (number of nonzero trials) + 1. Counts between
  // size() and num_trials() have probability exactly zero (a zero trial
  // never succeeds) and are omitted; Pmf()/Cdf() account for them.
  const std::vector<double>& pmf() const { return pmf_; }

 private:
  // Recomputes pmf_ from trials_ from scratch; used as the numerically safe
  // fallback for RemoveTrial.
  void Recompute();

  std::vector<double> trials_;   // success probabilities of nonzero trials
  int zero_trials_ = 0;          // live trials with p == 0
  std::vector<double> pmf_;      // pmf_[c] = Pr[count = c], c <= support
  std::vector<double> scratch_;  // RemoveTrial ping-pong target
};

}  // namespace urank

#endif  // URANK_UTIL_POISSON_BINOMIAL_H_
