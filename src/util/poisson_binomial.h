// Poisson-binomial distribution: the number of successes among independent
// Bernoulli trials with heterogeneous success probabilities.
//
// This is the shared numeric kernel behind every exact rank-distribution
// computation in the library:
//   * attribute-level rank distributions — trials are "tuple j outranks
//     tuple i given X_i = v" events (Section 7.2 of the paper);
//   * tuple-level rank distributions — trials are "rule τ contributes an
//     appearing tuple ranked above t_i" events (Section 7, tuple-level DP);
//   * U-kRanks / PT-k / Global-Topk positional probabilities.
//
// The incremental Add/Remove interface lets callers that sweep a tuple out
// of a shared pool avoid recomputing the full O(n^2) DP from scratch.
// Removal is polynomial deconvolution; it chooses the numerically stable
// division direction based on the trial probability and falls back to a
// full recomputation when cancellation is detected.

#ifndef URANK_UTIL_POISSON_BINOMIAL_H_
#define URANK_UTIL_POISSON_BINOMIAL_H_

#include <vector>

namespace urank {

// Running Poisson-binomial DP. Starts with zero trials (Pr[count = 0] = 1).
class PoissonBinomial {
 public:
  PoissonBinomial();

  // Convenience: a distribution over all trials in `probs` at once.
  // Each probability must lie in [0, 1].
  static PoissonBinomial FromProbs(const std::vector<double>& probs);

  // Incorporates one trial with success probability p in [0, 1]. O(n).
  void AddTrial(double p);

  // Removes one previously added trial with success probability p. The
  // caller must guarantee that a trial with exactly this probability was
  // added and not yet removed; otherwise the result is meaningless. O(n).
  void RemoveTrial(double p);

  // Pr[count = c]; zero outside [0, num_trials].
  double Pmf(int c) const;

  // Pr[count <= c]; clamps c below 0 / above num_trials.
  double Cdf(int c) const;

  // Expected number of successes.
  double Mean() const;

  // Number of trials currently incorporated.
  int num_trials() const { return static_cast<int>(trials_.size()); }

  // Full pmf vector, indexed by success count (size num_trials() + 1).
  const std::vector<double>& pmf() const { return pmf_; }

 private:
  // Recomputes pmf_ from trials_ from scratch; used as the numerically safe
  // fallback for RemoveTrial.
  void Recompute();

  std::vector<double> trials_;  // success probabilities of live trials
  std::vector<double> pmf_;     // pmf_[c] = Pr[count = c]
};

}  // namespace urank

#endif  // URANK_UTIL_POISSON_BINOMIAL_H_
