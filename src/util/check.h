// Precondition-checking macros for the urank library.
//
// The library does not use exceptions (per the project style). Violated
// preconditions are programming errors: they print a diagnostic to stderr
// and abort. All public functions document their preconditions and enforce
// them with these macros, in both debug and release builds.
//
// Two macro tiers:
//   * URANK_CHECK / URANK_CHECK_MSG — always on. Used for public API
//     preconditions; the cost must be O(1)-ish relative to the call.
//   * URANK_DCHECK / URANK_DCHECK_MSG / URANK_DCHECK_PROB /
//     URANK_DCHECK_NORMALIZED — debug contracts. They guard internal
//     numeric invariants of the DP kernels (probabilities in [0,1], pmfs
//     normalized) whose verification is too expensive for release hot
//     paths. Compiled out (condition not evaluated) when
//     URANK_ENABLE_DCHECKS is 0, which is the default under NDEBUG.

#ifndef URANK_UTIL_CHECK_H_
#define URANK_UTIL_CHECK_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <vector>

// Debug contracts default to "on in Debug builds, off in Release" but can
// be forced either way from the build system (-DURANK_ENABLE_DCHECKS=1 lets
// a sanitizer-instrumented Release build keep the contract layer).
#if !defined(URANK_ENABLE_DCHECKS)
#if defined(NDEBUG)
#define URANK_ENABLE_DCHECKS 0
#else
#define URANK_ENABLE_DCHECKS 1
#endif
#endif

namespace urank {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "URANK_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, (msg != nullptr && msg[0] != '\0') ? " — " : "",
               msg != nullptr ? msg : "");
  std::abort();
}

// Default tolerance for the numeric-contract validators. Matches the
// kProbSumTolerance the model validators use: generators are accurate to
// round-off and the DP kernels accumulate at most O(N) of it.
inline constexpr double kContractTolerance = 1e-9;

// True when `p` is a probability up to `tol` of round-off on either side.
inline bool IsProbability(double p, double tol = kContractTolerance) {
  return std::isfinite(p) && p >= -tol && p <= 1.0 + tol;
}

// True when every entry of `values` is finite and inside [lo - tol,
// hi + tol]. Used to validate whole rank vectors in one debug contract so
// the scan itself compiles out in Release.
inline bool AllFiniteInRange(std::span<const double> values, double lo,
                             double hi, double tol = kContractTolerance) {
  for (double v : values) {
    if (!std::isfinite(v) || v < lo - tol || v > hi + tol) return false;
  }
  return true;
}

// std::vector overload so braced-init call sites keep working (a span
// cannot be formed from an initializer list).
inline bool AllFiniteInRange(const std::vector<double>& values, double lo,
                             double hi, double tol = kContractTolerance) {
  return AllFiniteInRange(std::span<const double>(values), lo, hi, tol);
}

// True when `pmf` is a (sub-)distribution normalized to `target`: every
// entry a probability and the total within `tol * max(1, size)` of target.
// The size-scaled tolerance absorbs one rounding error per accumulation.
inline bool IsNormalized(std::span<const double> pmf, double target = 1.0,
                         double tol = kContractTolerance) {
  if (pmf.empty()) return false;
  double sum = 0.0;
  for (double p : pmf) {
    if (!IsProbability(p, tol)) return false;
    sum += p;
  }
  const double slack = tol * static_cast<double>(pmf.size() > 1 ? pmf.size() : 1);
  return std::fabs(sum - target) <= slack;
}

// std::vector overload for braced-init call sites.
inline bool IsNormalized(const std::vector<double>& pmf, double target = 1.0,
                         double tol = kContractTolerance) {
  return IsNormalized(std::span<const double>(pmf), target, tol);
}

}  // namespace internal
}  // namespace urank

// Aborts with a diagnostic if `cond` is false.
#define URANK_CHECK(cond)                                               \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::urank::internal::CheckFailed(__FILE__, __LINE__, #cond, "");    \
    }                                                                   \
  } while (0)

// Aborts with a diagnostic and an explanatory message if `cond` is false.
#define URANK_CHECK_MSG(cond, msg)                                      \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::urank::internal::CheckFailed(__FILE__, __LINE__, #cond, (msg)); \
    }                                                                   \
  } while (0)

#if URANK_ENABLE_DCHECKS

// Debug-only contract; same semantics as URANK_CHECK when enabled.
#define URANK_DCHECK(cond) URANK_CHECK(cond)

// Debug-only contract with an explanatory message.
#define URANK_DCHECK_MSG(cond, msg) URANK_CHECK_MSG(cond, msg)

// Debug contract: `p` must be a probability within the shared numeric
// tolerance (finite, in [-tol, 1+tol]).
#define URANK_DCHECK_PROB(p)                                        \
  URANK_CHECK_MSG(::urank::internal::IsProbability((p)),            \
                  "probability out of [0,1] beyond tolerance: " #p)

// Debug contract: `pmf` (a std::vector<double>) must be normalized to 1
// within the size-scaled tolerance, with every entry a probability.
#define URANK_DCHECK_NORMALIZED(pmf)                             \
  URANK_CHECK_MSG(::urank::internal::IsNormalized((pmf)),        \
                  "pmf is not normalized within tolerance: " #pmf)

#else  // !URANK_ENABLE_DCHECKS

// Compiled out: the condition is type-checked but never evaluated, so
// contract expressions with side effects or O(n) cost vanish in Release.
#define URANK_DCHECK(cond) \
  do {                     \
    (void)sizeof((cond));  \
  } while (0)
#define URANK_DCHECK_MSG(cond, msg) \
  do {                              \
    (void)sizeof((cond));           \
    (void)sizeof((msg));            \
  } while (0)
#define URANK_DCHECK_PROB(p) \
  do {                       \
    (void)sizeof((p));       \
  } while (0)
#define URANK_DCHECK_NORMALIZED(pmf) \
  do {                               \
    (void)sizeof((pmf));             \
  } while (0)

#endif  // URANK_ENABLE_DCHECKS

#endif  // URANK_UTIL_CHECK_H_
