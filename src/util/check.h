// Precondition-checking macros for the urank library.
//
// The library does not use exceptions (per the project style). Violated
// preconditions are programming errors: they print a diagnostic to stderr
// and abort. All public functions document their preconditions and enforce
// them with these macros, in both debug and release builds.

#ifndef URANK_UTIL_CHECK_H_
#define URANK_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace urank {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "URANK_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, (msg != nullptr && msg[0] != '\0') ? " — " : "",
               msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace internal
}  // namespace urank

// Aborts with a diagnostic if `cond` is false.
#define URANK_CHECK(cond)                                               \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::urank::internal::CheckFailed(__FILE__, __LINE__, #cond, "");    \
    }                                                                   \
  } while (0)

// Aborts with a diagnostic and an explanatory message if `cond` is false.
#define URANK_CHECK_MSG(cond, msg)                                      \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::urank::internal::CheckFailed(__FILE__, __LINE__, #cond, (msg)); \
    }                                                                   \
  } while (0)

#endif  // URANK_UTIL_CHECK_H_
