// Deterministic random number generation for workload synthesis and
// randomized (property-style) tests.
//
// All randomness in the library flows through `Rng`, a thin wrapper around
// std::mt19937_64 with convenience samplers. Seeding is always explicit so
// every experiment and test is reproducible bit-for-bit.

#ifndef URANK_UTIL_RNG_H_
#define URANK_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace urank {

// Deterministic pseudo-random source. Copyable; copies evolve independently.
class Rng {
 public:
  // Constructs a generator with the given seed. Equal seeds produce equal
  // streams on every platform (mt19937_64 is fully specified).
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform double in [lo, hi). Requires lo < hi.
  double Uniform(double lo, double hi);

  // Uniform double in [0, 1).
  double Uniform01() { return Uniform(0.0, 1.0); }

  // Uniform integer in [lo, hi], inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Normal deviate with the given mean and (non-negative) stddev.
  double Normal(double mean, double stddev);

  // Bernoulli trial; returns true with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  // A vector of `n` probabilities that sum to exactly `total` (<= 1.0),
  // each strictly positive. Requires n >= 1 and total > 0.
  std::vector<double> RandomSimplex(int n, double total);

  // Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  // Access to the raw engine for interoperation with <random> distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace urank

#endif  // URANK_UTIL_RNG_H_
