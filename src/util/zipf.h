// Zipf-distributed sampling over a finite universe {1, ..., n}.
//
// Used by the workload generators to produce skewed score universes, as in
// the paper's synthetic data (uniform vs. Zipfian score distributions).
// Sampling is O(log n) per draw via inversion on the precomputed CDF.

#ifndef URANK_UTIL_ZIPF_H_
#define URANK_UTIL_ZIPF_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace urank {

// Samples ranks from a Zipf(theta) distribution over {1, ..., n}:
// Pr[X = i] ∝ 1 / i^theta. theta = 0 is the uniform distribution; larger
// theta concentrates mass on small ranks.
class ZipfDistribution {
 public:
  // Requires n >= 1 and theta >= 0.
  ZipfDistribution(int64_t n, double theta);

  // Draws one sample in [1, n].
  int64_t Sample(Rng& rng) const;

  // Probability of drawing rank i (1-based). Requires 1 <= i <= n.
  double Pmf(int64_t i) const;

  int64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  int64_t n_;
  double theta_;
  std::vector<double> cdf_;  // cdf_[i] = Pr[X <= i+1]
};

}  // namespace urank

#endif  // URANK_UTIL_ZIPF_H_
