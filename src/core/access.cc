#include "core/access.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace urank {

SortedAttrStream::SortedAttrStream(const AttrRelation& rel) : rel_(&rel) {
  order_.resize(static_cast<size_t>(rel.size()));
  std::iota(order_.begin(), order_.end(), 0);
  std::vector<double> expected(order_.size());
  for (size_t i = 0; i < order_.size(); ++i) {
    expected[i] = rel.tuple(static_cast<int>(i)).ExpectedScore();
  }
  std::sort(order_.begin(), order_.end(), [&](int a, int b) {
    const double ea = expected[static_cast<size_t>(a)];
    const double eb = expected[static_cast<size_t>(b)];
    if (ea != eb) return ea > eb;
    return a < b;
  });
}

const AttrTuple& SortedAttrStream::Next() {
  URANK_CHECK_MSG(HasNext(), "Next() past the end of the stream");
  return rel_->tuple(order_[next_++]);
}

SortedTupleStream::SortedTupleStream(const TupleRelation& rel) {
  order_.resize(static_cast<size_t>(rel.size()));
  std::iota(order_.begin(), order_.end(), 0);
  std::sort(order_.begin(), order_.end(), [&](int a, int b) {
    const double sa = rel.tuple(a).score;
    const double sb = rel.tuple(b).score;
    if (sa != sb) return sa > sb;
    return a < b;
  });
  expected_world_size_ = rel.ExpectedWorldSize();
}

int SortedTupleStream::Next() {
  URANK_CHECK_MSG(HasNext(), "Next() past the end of the stream");
  return order_[next_++];
}

}  // namespace urank
