#include "core/semantics/expected_score.h"

#include <limits>

#include "core/engine/prepared_relation.h"
#include "util/check.h"

namespace urank {
namespace {

std::vector<RankedTuple> NegatedTopK(const std::vector<double>& scores,
                                     const std::vector<int>& ids, int k) {
  std::vector<double> neg(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) neg[i] = -scores[i];
  return TopKByStatistic(ids, neg, k);
}

}  // namespace

std::vector<double> AttrExpectedScores(const AttrRelation& rel) {
  std::vector<double> scores(static_cast<size_t>(rel.size()), 0.0);
  for (int i = 0; i < rel.size(); ++i) {
    scores[static_cast<size_t>(i)] = rel.tuple(i).ExpectedScore();
  }
  // Score values are validated finite, so their expectations must be too.
  URANK_DCHECK_MSG(
      internal::AllFiniteInRange(scores,
                                 -std::numeric_limits<double>::infinity(),
                                 std::numeric_limits<double>::infinity()),
      "expected score is not finite");
  return scores;
}

std::vector<double> TupleExpectedScores(const TupleRelation& rel) {
  std::vector<double> scores(static_cast<size_t>(rel.size()), 0.0);
  for (int i = 0; i < rel.size(); ++i) {
    URANK_DCHECK_PROB(rel.tuple(i).prob);
    scores[static_cast<size_t>(i)] = rel.tuple(i).prob * rel.tuple(i).score;
  }
  return scores;
}

std::vector<RankedTuple> AttrExpectedScoreTopK(const AttrRelation& rel,
                                               int k) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  std::vector<int> ids(static_cast<size_t>(rel.size()));
  for (int i = 0; i < rel.size(); ++i) ids[static_cast<size_t>(i)] = rel.tuple(i).id;
  return NegatedTopK(AttrExpectedScores(rel), ids, k);
}

std::vector<RankedTuple> TupleExpectedScoreTopK(const TupleRelation& rel,
                                                int k) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  std::vector<int> ids(static_cast<size_t>(rel.size()));
  for (int i = 0; i < rel.size(); ++i) ids[static_cast<size_t>(i)] = rel.tuple(i).id;
  return NegatedTopK(TupleExpectedScores(rel), ids, k);
}

std::vector<double> AttrExpectedScores(const PreparedAttrRelation& prepared) {
  return prepared.expected_scores();
}

std::vector<double> TupleExpectedScores(
    const PreparedTupleRelation& prepared) {
  const StatKey key{StatKey::Kind::kExpectedScore, 0, 0.0,
                    TiePolicy::kBreakByIndex};
  return *prepared.CachedStat(
      key, [&] { return TupleExpectedScores(prepared.relation()); });
}

std::vector<RankedTuple> AttrExpectedScoreTopK(
    const PreparedAttrRelation& prepared, int k) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  return NegatedTopK(prepared.expected_scores(), prepared.ids(), k);
}

std::vector<RankedTuple> TupleExpectedScoreTopK(
    const PreparedTupleRelation& prepared, int k) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  return NegatedTopK(TupleExpectedScores(prepared), prepared.ids(), k);
}

}  // namespace urank
