#include "core/semantics/u_topk.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <set>
#include <utility>

#include "core/engine/prepared_relation.h"
#include "model/possible_worlds.h"
#include "util/check.h"

namespace urank {
namespace {

UTopKAnswer BestOfSetMap(const std::map<std::vector<int>, double>& sets) {
  UTopKAnswer best;
  for (const auto& [ids, prob] : sets) {
    if (prob > best.probability) {
      best.ids = ids;
      best.probability = prob;
    }
  }
  return best;
}

// Positions sorted by (score desc, index asc) — the shared DP sweep order.
std::vector<int> UTopKRankOrder(const TupleRelation& rel) {
  std::vector<int> order(static_cast<size_t>(rel.size()));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double sa = rel.tuple(a).score;
    const double sb = rel.tuple(b).score;
    if (sa != sb) return sa > sb;
    return a < b;
  });
  return order;
}

bool AllSingletonRules(const TupleRelation& rel) {
  for (int r = 0; r < rel.num_rules(); ++r) {
    if (rel.rule(r).size() > 1) return false;
  }
  return true;
}

UTopKAnswer TupleUTopKIndependentInOrder(const TupleRelation& rel,
                                         const std::vector<int>& order,
                                         int k) {
  const int n = rel.size();

  // g[i][c]: max probability of fixing the presence of the i highest-scored
  // tuples with exactly c of them present (present tuples contribute p,
  // absent ones 1-p). choice[i][c] records whether the i-th tuple is
  // present on the optimal path.
  const int cols = k + 1;
  std::vector<std::vector<double>> g(
      static_cast<size_t>(n) + 1, std::vector<double>(static_cast<size_t>(cols), 0.0));
  std::vector<std::vector<uint8_t>> choice(
      static_cast<size_t>(n) + 1,
      std::vector<uint8_t>(static_cast<size_t>(cols), 0));
  g[0][0] = 1.0;
  for (int i = 1; i <= n; ++i) {
    const double p = rel.tuple(order[static_cast<size_t>(i - 1)]).prob;
    URANK_DCHECK_PROB(p);
    for (int c = 0; c <= std::min(i, k); ++c) {
      const double skip = g[static_cast<size_t>(i - 1)][static_cast<size_t>(c)] * (1.0 - p);
      const double take =
          c > 0 ? g[static_cast<size_t>(i - 1)][static_cast<size_t>(c - 1)] * p : 0.0;
      if (take > skip) {
        g[static_cast<size_t>(i)][static_cast<size_t>(c)] = take;
        choice[static_cast<size_t>(i)][static_cast<size_t>(c)] = 1;
      } else {
        g[static_cast<size_t>(i)][static_cast<size_t>(c)] = skip;
      }
    }
  }

  // Candidate A: the k-th (lowest) member of the set sits at sorted
  // position i; deeper tuples are unconstrained. Candidate B: a world with
  // fewer than k tuples in total, whose entire content is the answer set.
  double best = 0.0;
  int best_i = -1;  // position of the k-th member; -1 encodes candidate B
  int best_c = 0;   // candidate B's set size
  for (int i = 1; i <= n; ++i) {
    const double p = rel.tuple(order[static_cast<size_t>(i - 1)]).prob;
    const double val =
        g[static_cast<size_t>(i - 1)][static_cast<size_t>(k - 1)] * p;
    if (val > best) {
      best = val;
      best_i = i;
    }
  }
  for (int c = 0; c < k; ++c) {
    const double val = g[static_cast<size_t>(n)][static_cast<size_t>(c)];
    if (val > best) {
      best = val;
      best_i = -1;
      best_c = c;
    }
  }

  UTopKAnswer answer;
  answer.probability = best;
  if (best <= 0.0) return answer;  // defensive; unreachable for valid input
  int i, c;
  if (best_i >= 0) {
    answer.ids.push_back(rel.tuple(order[static_cast<size_t>(best_i - 1)]).id);
    i = best_i - 1;
    c = k - 1;
  } else {
    i = n;
    c = best_c;
  }
  while (i > 0) {
    if (choice[static_cast<size_t>(i)][static_cast<size_t>(c)] != 0) {
      answer.ids.push_back(rel.tuple(order[static_cast<size_t>(i - 1)]).id);
      --c;
    }
    --i;
  }
  // The backward walk produced ascending score order; report rank order.
  std::reverse(answer.ids.begin(), answer.ids.end());
  URANK_DCHECK_PROB(answer.probability);
  return answer;
}

// Shared sweep state for TupleUTopKWithRules: per-rule prefix mass and
// best (maximum-probability) prefix member, updated as the cutoff
// advances through the rank order.
struct RuleSweepState {
  explicit RuleSweepState(int num_rules)
      : mass(static_cast<size_t>(num_rules), 0.0),
        best_prob(static_cast<size_t>(num_rules), 0.0),
        best_pos(static_cast<size_t>(num_rules), -1),
        in_prefix(static_cast<size_t>(num_rules), 0) {}

  std::vector<double> mass;
  std::vector<double> best_prob;
  std::vector<int> best_pos;  // rank-order position of the best member
  // Byte-per-rule flags: std::vector<bool>'s proxy bit-packing costs a
  // mask-and-shift on the hot membership test and defeats vectorization.
  std::vector<std::uint8_t> in_prefix;

  // Adds the tuple at rank-order position `pos` (probability p, rule r).
  void Add(int r, int pos, double p) {
    const size_t ri = static_cast<size_t>(r);
    mass[ri] += p;
    in_prefix[ri] = 1;
    if (p > best_prob[ri]) {
      best_prob[ri] = p;
      best_pos[ri] = pos;
    }
  }

  bool saturated(int r) const {
    return 1.0 - mass[static_cast<size_t>(r)] <= 0.0;
  }
};

UTopKAnswer TupleUTopKWithRulesInOrder(const TupleRelation& rel,
                                       const std::vector<int>& order,
                                       int k) {
  const int n = rel.size();
  UTopKAnswer answer;
  if (n == 0) {
    answer.probability = 1.0;  // the empty answer, with certainty
    return answer;
  }

  // Sweep pass: for each cutoff c (the rank-order position of the
  // answer's lowest member), the best achievable log-probability is
  //   B + Σ_{forced rules ≠ ρ} log(best_p)
  //     + (log p(t_c) − [ρ not saturated]·log(1−m_ρ))
  //     + (sum of the `extra` largest w over non-saturated rules ≠ ρ),
  // where B = Σ_{non-saturated prefix rules} log(1−m_r),
  //       w_r = log(best_p_r) − log(1−m_r),
  //       forced = saturated prefix rules (probability-0 answers unless a
  //       member is chosen), ρ = t_c's rule, and
  //       extra = k − 1 − #(forced ≠ ρ).
  RuleSweepState state(rel.num_rules());
  double base = 0.0;         // B
  double forced_sum = 0.0;   // Σ_{saturated} log(best_p)
  int forced_count = 0;
  std::vector<double> rule_w(static_cast<size_t>(rel.num_rules()), 0.0);
  // Non-saturated prefix rules, ordered by w descending.
  std::multiset<std::pair<double, int>, std::greater<>> by_w;

  double best_log = -std::numeric_limits<double>::infinity();
  int best_cutoff = -1;   // rank-order position; -1 = short answer
  int best_short_extra = 0;

  auto top_extra_sum = [&](int extra, int exclude_rule, bool* feasible) {
    double sum = 0.0;
    int taken = 0;
    for (auto it = by_w.begin(); it != by_w.end() && taken < extra; ++it) {
      if (it->second == exclude_rule) continue;
      sum += it->first;
      ++taken;
    }
    *feasible = taken == extra;
    return sum;
  };

  for (int c = 0; c < n; ++c) {
    const int i = order[static_cast<size_t>(c)];
    const TLTuple& t = rel.tuple(i);
    URANK_DCHECK_PROB(t.prob);
    const int rho = rel.rule_of(i);
    const size_t ri = static_cast<size_t>(rho);
    // Move t into the prefix, updating ρ's classification and aggregates.
    const bool was_in_prefix = state.in_prefix[ri];
    const bool was_saturated = was_in_prefix && state.saturated(rho);
    if (was_in_prefix && !was_saturated) {
      base -= std::log(1.0 - state.mass[ri]);
      by_w.erase(by_w.find({rule_w[ri], rho}));
    }
    if (was_saturated) {
      forced_sum -= std::log(state.best_prob[ri]);
      --forced_count;
    }
    state.Add(rho, c, t.prob);
    if (state.saturated(rho)) {
      forced_sum += std::log(state.best_prob[ri]);
      ++forced_count;
    } else {
      base += std::log(1.0 - state.mass[ri]);
      rule_w[ri] =
          std::log(state.best_prob[ri]) - std::log(1.0 - state.mass[ri]);
      by_w.insert({rule_w[ri], rho});
    }

    // Candidate: t_c is the k-th (lowest) member.
    const bool rho_saturated = state.saturated(rho);
    const int forced_other = forced_count - (rho_saturated ? 1 : 0);
    const int extra = k - 1 - forced_other;
    if (extra < 0) continue;
    bool feasible = false;
    const double extra_sum = top_extra_sum(extra, rho, &feasible);
    if (!feasible) continue;
    double log_prob = base + forced_sum + extra_sum + std::log(t.prob);
    if (rho_saturated) {
      // forced_sum counted ρ's best member, but ρ's member must be t_c.
      log_prob -= std::log(state.best_prob[ri]);
    } else {
      // base counted ρ's (1−m) factor; ρ contributes t_c instead.
      log_prob -= std::log(1.0 - state.mass[ri]);
    }
    if (log_prob > best_log) {
      best_log = log_prob;
      best_cutoff = c;
    }
  }

  // Short-answer candidate: the whole relation is the prefix and the
  // answer is every appearing tuple (fewer than k of them). Take the
  // forced rules plus every positive-w rule, capped at k−1 members.
  if (forced_count <= k - 1) {
    double log_prob = base + forced_sum;
    int extra = 0;
    for (auto it = by_w.begin();
         it != by_w.end() && forced_count + extra < k - 1 && it->first > 0.0;
         ++it) {
      log_prob += it->first;
      ++extra;
    }
    if (log_prob > best_log) {
      best_log = log_prob;
      best_cutoff = -1;
      best_short_extra = extra;
    }
  }
  URANK_CHECK_MSG(best_cutoff >= -1 && best_log > -1e300,
                  "U-Topk sweep found no candidate");

  // Reconstruction pass: rebuild the prefix state up to the winning
  // cutoff and materialize the chosen members.
  RuleSweepState rebuild(rel.num_rules());
  const int limit = best_cutoff >= 0 ? best_cutoff : n - 1;
  for (int c = 0; c <= limit; ++c) {
    const int i = order[static_cast<size_t>(c)];
    rebuild.Add(rel.rule_of(i), c, rel.tuple(i).prob);
  }
  std::vector<int> chosen_positions;
  std::vector<std::uint8_t> rule_used(static_cast<size_t>(rel.num_rules()),
                                      0);
  if (best_cutoff >= 0) {
    const int rho = rel.rule_of(order[static_cast<size_t>(best_cutoff)]);
    chosen_positions.push_back(best_cutoff);
    rule_used[static_cast<size_t>(rho)] = 1;
  }
  // Forced (saturated) rules.
  std::vector<std::pair<double, int>> candidates;  // (w, rule)
  for (int r = 0; r < rel.num_rules(); ++r) {
    if (!rebuild.in_prefix[static_cast<size_t>(r)] ||
        rule_used[static_cast<size_t>(r)]) {
      continue;
    }
    if (rebuild.saturated(r)) {
      chosen_positions.push_back(rebuild.best_pos[static_cast<size_t>(r)]);
      rule_used[static_cast<size_t>(r)] = 1;
    } else {
      candidates.emplace_back(
          std::log(rebuild.best_prob[static_cast<size_t>(r)]) -
              std::log(1.0 - rebuild.mass[static_cast<size_t>(r)]),
          r);
    }
  }
  std::sort(candidates.begin(), candidates.end(), std::greater<>());
  const int want = best_cutoff >= 0
                       ? k - static_cast<int>(chosen_positions.size())
                       : best_short_extra;
  for (int e = 0; e < want; ++e) {
    const int r = candidates[static_cast<size_t>(e)].second;
    chosen_positions.push_back(rebuild.best_pos[static_cast<size_t>(r)]);
    rule_used[static_cast<size_t>(r)] = 1;
  }
  std::sort(chosen_positions.begin(), chosen_positions.end());

  // Exact probability in linear space.
  double probability = 1.0;
  for (int pos : chosen_positions) {
    probability *= rel.tuple(order[static_cast<size_t>(pos)]).prob;
    answer.ids.push_back(rel.tuple(order[static_cast<size_t>(pos)]).id);
  }
  for (int r = 0; r < rel.num_rules(); ++r) {
    if (rebuild.in_prefix[static_cast<size_t>(r)] &&
        !rule_used[static_cast<size_t>(r)]) {
      probability *= 1.0 - rebuild.mass[static_cast<size_t>(r)];
    }
  }
  answer.probability = probability;
  URANK_DCHECK_PROB(answer.probability);
  return answer;
}

}  // namespace

UTopKAnswer TupleUTopKIndependent(const TupleRelation& rel, int k) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  for (int r = 0; r < rel.num_rules(); ++r) {
    URANK_CHECK_MSG(rel.rule(r).size() == 1,
                    "TupleUTopKIndependent requires singleton rules");
  }
  return TupleUTopKIndependentInOrder(rel, UTopKRankOrder(rel), k);
}

UTopKAnswer TupleUTopKWithRules(const TupleRelation& rel, int k) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  return TupleUTopKWithRulesInOrder(rel, UTopKRankOrder(rel), k);
}

UTopKAnswer TupleUTopK(const TupleRelation& rel, int k) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  if (AllSingletonRules(rel)) return TupleUTopKIndependent(rel, k);
  return TupleUTopKWithRules(rel, k);
}

UTopKAnswer TupleUTopK(const PreparedTupleRelation& prepared, int k) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  const TupleRelation& rel = prepared.relation();
  if (AllSingletonRules(rel)) {
    return TupleUTopKIndependentInOrder(rel, prepared.rank_order(), k);
  }
  return TupleUTopKWithRulesInOrder(rel, prepared.rank_order(), k);
}

UTopKAnswer AttrUTopK(const AttrRelation& rel, int k) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  return BestOfSetMap(AttrTopKSetProbabilities(rel, k));
}

UTopKAnswer AttrUTopK(const PreparedAttrRelation& prepared, int k) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  return AttrUTopK(prepared.relation(), k);
}

}  // namespace urank
