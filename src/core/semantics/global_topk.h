// Global-Topk semantics (Zhang & Chomicki [48]).
//
// Ranks tuples by their top-k probability and returns the k best. Always
// returns exactly k tuples (when N >= k) but fails containment: the
// probability being ranked against depends on k itself (paper Section 4.2).

#ifndef URANK_CORE_SEMANTICS_GLOBAL_TOPK_H_
#define URANK_CORE_SEMANTICS_GLOBAL_TOPK_H_

#include <vector>

#include "model/attr_model.h"
#include "model/tuple_model.h"
#include "model/types.h"

namespace urank {

class PreparedAttrRelation;   // core/engine/prepared_relation.h
class PreparedTupleRelation;  // core/engine/prepared_relation.h

// Ids of the k tuples with the highest top-k probability, in descending
// probability order (ties by smaller id). Requires k >= 1.
std::vector<int> AttrGlobalTopK(const AttrRelation& rel, int k,
                                TiePolicy ties = TiePolicy::kBreakByIndex);
std::vector<int> TupleGlobalTopK(const TupleRelation& rel, int k,
                                 TiePolicy ties = TiePolicy::kBreakByIndex);

// Prepared-state overloads: the top-k probabilities come from the prepared
// cache (shared with PT-k and any other query at the same k), so only the
// size-k selection runs per call. Identical answers to the one-shot forms.
// Requires k >= 1.
std::vector<int> AttrGlobalTopK(const PreparedAttrRelation& prepared, int k,
                                TiePolicy ties = TiePolicy::kBreakByIndex);
std::vector<int> TupleGlobalTopK(const PreparedTupleRelation& prepared,
                                 int k,
                                 TiePolicy ties = TiePolicy::kBreakByIndex);

// Result of the early-terminating evaluation: the same answer as
// TupleGlobalTopK plus the number of tuples the score-ordered scan
// retrieved.
struct GlobalTopKPruneResult {
  std::vector<int> ids;
  int accessed = 0;
};

// Early-terminating Global-Topk on the tuple-level model (the
// Zhang-Chomicki style scan): consume tuples in decreasing score order
// computing exact top-k probabilities, and stop once no unseen tuple can
// beat the k-th best seen probability — an unseen tuple's top-k
// probability is at most Pr[#appearing seen tuples <= k]. Requires k >= 1;
// the answer always equals TupleGlobalTopK's.
GlobalTopKPruneResult TupleGlobalTopKPruned(
    const TupleRelation& rel, int k,
    TiePolicy ties = TiePolicy::kBreakByIndex);

}  // namespace urank

#endif  // URANK_CORE_SEMANTICS_GLOBAL_TOPK_H_
