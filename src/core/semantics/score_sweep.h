// Shared machinery for the early-terminating ("threshold-style")
// algorithms over the tuple-level model: a score-ordered scan that
// maintains, incrementally, the Poisson-binomial distribution of the
// number of appearing tuples ranked above the scan position.
//
// Invariants exposed to clients:
//   * For the tuple just returned by Next(), the sweep state excludes its
//     own exclusion rule on request, so TopKProbability / positional
//     probabilities are exact.
//   * For every not-yet-returned tuple, each flushed (already swept)
//     appearing tuple outranks it except at most one own-rule sibling, so
//     Pr[unseen tuple in top-k] <= Pr[#appearing flushed <= k]
//     (UnseenTopKBound) and Pr[unseen tuple at rank r] <=
//     Pr[#appearing flushed <= r + 1] (UnseenRankBound). Both bounds are
//     sound under either tie policy.
//
// Used by TuplePTkPruned, TupleGlobalTopKPruned and TupleUKRanksPruned.

#ifndef URANK_CORE_SEMANTICS_SCORE_SWEEP_H_
#define URANK_CORE_SEMANTICS_SCORE_SWEEP_H_

#include <vector>

#include "core/access.h"
#include "model/tuple_model.h"
#include "model/types.h"
#include "util/poisson_binomial.h"

namespace urank {

// Single-pass sweep; construct once per query.
class ScoreOrderSweep {
 public:
  ScoreOrderSweep(const TupleRelation& rel, TiePolicy ties);

  bool HasNext() const { return stream_.HasNext(); }

  // Advances to the next tuple in rank order and returns its index into
  // the relation. Requires HasNext().
  int Next();

  // Exact Pr[current tuple appears among the k highest-ranked appearing
  // tuples]. Requires a preceding Next() and k >= 1.
  double TopKProbability(int k);

  // Exact Pr[current tuple appears at exactly rank r], for r in
  // [0, max_ranks); written into `out` (resized to max_ranks). Requires a
  // preceding Next() and max_ranks >= 1.
  void PositionalProbabilities(int max_ranks, std::vector<double>* out);

  // Upper bound on Pr[t in top-k] for every tuple not yet returned.
  double UnseenTopKBound(int k) const { return pb_.Cdf(k); }

  // Upper bound on Pr[t at rank r] for every tuple not yet returned.
  double UnseenRankBound(int r) const { return pb_.Cdf(r + 1); }

  // Tuples retrieved so far.
  int accessed() const { return stream_.accessed(); }

 private:
  void FlushPending();

  const TupleRelation& rel_;
  TiePolicy ties_;
  SortedTupleStream stream_;
  std::vector<double> cur_;  // per rule: flushed (above-current) mass
  PoissonBinomial pb_;       // one trial per rule, probability cur_[r]
  std::vector<int> pending_;  // current equal-score run, not yet flushed
  double pending_score_ = 0.0;
  int current_ = -1;
};

}  // namespace urank

#endif  // URANK_CORE_SEMANTICS_SCORE_SWEEP_H_
