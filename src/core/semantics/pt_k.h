// Probabilistic threshold top-k (PT-k) semantics (Hua et al. [23]).
//
// Returns every tuple whose top-k probability meets a user threshold p.
// The answer is a set whose size is usually not k (it violates exact-k and
// only weakly satisfies containment — paper Section 4.2).

#ifndef URANK_CORE_SEMANTICS_PT_K_H_
#define URANK_CORE_SEMANTICS_PT_K_H_

#include <vector>

#include "model/attr_model.h"
#include "model/tuple_model.h"
#include "model/types.h"

namespace urank {

class PreparedAttrRelation;   // core/engine/prepared_relation.h
class PreparedTupleRelation;  // core/engine/prepared_relation.h

// Ids of all tuples with Pr[in top-k] >= threshold, ordered by descending
// top-k probability (ties by smaller id). Requires k >= 1 and threshold in
// (0, 1].
std::vector<int> AttrPTk(const AttrRelation& rel, int k, double threshold,
                         TiePolicy ties = TiePolicy::kBreakByIndex);
std::vector<int> TuplePTk(const TupleRelation& rel, int k, double threshold,
                          TiePolicy ties = TiePolicy::kBreakByIndex);

// Prepared-state overloads: the top-k probabilities come from the prepared
// cache (shared with Global-Topk and any other query at the same k), so
// only the threshold selection runs per call. Identical answers to the
// one-shot forms. Requires k >= 1 and threshold in (0, 1].
std::vector<int> AttrPTk(const PreparedAttrRelation& prepared, int k,
                         double threshold,
                         TiePolicy ties = TiePolicy::kBreakByIndex);
std::vector<int> TuplePTk(const PreparedTupleRelation& prepared, int k,
                          double threshold,
                          TiePolicy ties = TiePolicy::kBreakByIndex);

// Result of the early-terminating evaluation: the same answer as
// TuplePTk, plus how many tuples the score-ordered scan retrieved.
struct PTkPruneResult {
  std::vector<int> ids;
  int accessed = 0;
};

// Early-terminating PT-k on the tuple-level model — the access pattern of
// Hua et al. [23]: consume tuples in decreasing score order, maintain each
// seen tuple's exact top-k probability through the shared Poisson-binomial
// sweep, and stop as soon as no unseen tuple can reach the threshold. The
// stop test is sound: an unseen tuple is outranked by every appearing
// tuple scanned so far except at most one own-rule sibling, so its top-k
// probability is at most Pr[#appearing seen tuples <= k]. Requires k >= 1
// and threshold in (0, 1]; the answer always equals TuplePTk's.
PTkPruneResult TuplePTkPruned(const TupleRelation& rel, int k,
                              double threshold,
                              TiePolicy ties = TiePolicy::kBreakByIndex);

}  // namespace urank

#endif  // URANK_CORE_SEMANTICS_PT_K_H_
