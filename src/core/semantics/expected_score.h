// Expected-score semantics (paper Section 4.2, "Expected score").
//
// Ranks tuples by the expectation of their score contribution: E[X_i] in
// the attribute-level model, p(t_i)·v_i in the tuple-level model (an absent
// tuple contributes score 0). Satisfies exact-k, containment, unique
// ranking and stability, but is sensitive to the score magnitudes and so
// fails value invariance.

#ifndef URANK_CORE_SEMANTICS_EXPECTED_SCORE_H_
#define URANK_CORE_SEMANTICS_EXPECTED_SCORE_H_

#include <vector>

#include "core/ranking.h"
#include "model/attr_model.h"
#include "model/tuple_model.h"

namespace urank {

class PreparedAttrRelation;   // core/engine/prepared_relation.h
class PreparedTupleRelation;  // core/engine/prepared_relation.h

// Per-tuple expected scores, indexed by tuple position.
std::vector<double> AttrExpectedScores(const AttrRelation& rel);
std::vector<double> TupleExpectedScores(const TupleRelation& rel);

// Top-k by descending expected score (ties by smaller id). The reported
// statistic is the negated expected score, so lower is better as
// everywhere in the library. Requires k >= 1.
std::vector<RankedTuple> AttrExpectedScoreTopK(const AttrRelation& rel, int k);
std::vector<RankedTuple> TupleExpectedScoreTopK(const TupleRelation& rel,
                                                int k);

// Prepared-state overloads. The attribute-level expected scores are built
// eagerly at preparation time; the tuple-level ones are memoized on first
// use. Identical answers to the one-shot forms.
std::vector<double> AttrExpectedScores(const PreparedAttrRelation& prepared);
std::vector<double> TupleExpectedScores(
    const PreparedTupleRelation& prepared);

// Prepared top-k selections. Requires k >= 1.
std::vector<RankedTuple> AttrExpectedScoreTopK(
    const PreparedAttrRelation& prepared, int k);
std::vector<RankedTuple> TupleExpectedScoreTopK(
    const PreparedTupleRelation& prepared, int k);

}  // namespace urank

#endif  // URANK_CORE_SEMANTICS_EXPECTED_SCORE_H_
