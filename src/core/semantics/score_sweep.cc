#include "core/semantics/score_sweep.h"

#include <algorithm>

#include "core/internal/vector_kernels.h"
#include "util/check.h"
#include "util/kernel_annotations.h"

namespace urank {

ScoreOrderSweep::ScoreOrderSweep(const TupleRelation& rel, TiePolicy ties)
    : rel_(rel),
      ties_(ties),
      stream_(rel),
      cur_(static_cast<size_t>(rel.num_rules()), 0.0),
      pb_(PoissonBinomial::FromProbs(
          std::vector<double>(static_cast<size_t>(rel.num_rules()), 0.0))) {}

URANK_KERNEL
void ScoreOrderSweep::FlushPending() {
  for (int i : pending_) {
    const size_t r = static_cast<size_t>(rel_.rule_of(i));
    pb_.RemoveTrial(cur_[r]);
    // Per-rule trial swap keyed by data-dependent rule ids; the DP work
    // happens inside Add/RemoveTrial, which sit on the vector kernels.
    // urank-lint: allow(kernel-vectorize)
    cur_[r] = std::min(cur_[r] + rel_.tuple(i).prob, 1.0);
    pb_.AddTrial(cur_[r]);
  }
  pending_.clear();
}

URANK_KERNEL
int ScoreOrderSweep::Next() {
  URANK_CHECK_MSG(HasNext(), "Next() past the end of the sweep");
  const int i = stream_.Next();
  const double score = rel_.tuple(i).score;
  if (ties_ == TiePolicy::kBreakByIndex) {
    // Every earlier tuple outranks the new one: flush immediately.
    FlushPending();
  } else if (!pending_.empty() && score < pending_score_) {
    // Strict policy: a run flushes only once the score strictly drops.
    FlushPending();
  }
  pending_.push_back(i);
  pending_score_ = score;
  current_ = i;
  return i;
}

URANK_KERNEL
double ScoreOrderSweep::TopKProbability(int k) {
  URANK_CHECK_MSG(current_ >= 0, "TopKProbability before Next()");
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  const size_t r = static_cast<size_t>(rel_.rule_of(current_));
  pb_.RemoveTrial(cur_[r]);
  const double prob = rel_.tuple(current_).prob * pb_.Cdf(k - 1);
  pb_.AddTrial(cur_[r]);
  URANK_DCHECK_PROB(prob);
  return prob;
}

URANK_KERNEL
void ScoreOrderSweep::PositionalProbabilities(int max_ranks,
                                              std::vector<double>* out) {
  URANK_CHECK_MSG(current_ >= 0, "PositionalProbabilities before Next()");
  URANK_CHECK_MSG(max_ranks >= 1, "max_ranks must be >= 1");
  out->assign(static_cast<size_t>(max_ranks), 0.0);
  const size_t r = static_cast<size_t>(rel_.rule_of(current_));
  const double p = rel_.tuple(current_).prob;
  URANK_DCHECK_PROB(p);
  pb_.RemoveTrial(cur_[r]);
  // pb_'s pmf is zero beyond its support, so scaling its first
  // min(max_ranks, support) entries and leaving the assigned zeros equals
  // the per-rank p * Pmf(rank) products exactly.
  const size_t hi =
      std::min(static_cast<size_t>(max_ranks), pb_.pmf().size());
  vk::Active().scale(out->data(), pb_.pmf().data(), p, hi);
  pb_.AddTrial(cur_[r]);
}

}  // namespace urank
