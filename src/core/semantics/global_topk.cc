#include "core/semantics/global_topk.h"

#include <queue>

#include "core/engine/prepared_relation.h"
#include "core/ranking.h"
#include "core/semantics/score_sweep.h"
#include "core/semantics/semantics.h"
#include "util/check.h"

namespace urank {
namespace {

std::vector<int> BestK(const std::vector<double>& probs,
                       const std::vector<int>& ids, int k) {
  URANK_DCHECK_MSG(internal::AllFiniteInRange(probs, 0.0, 1.0),
                   "top-k membership probability outside [0,1]");
  std::vector<double> neg(probs.size());
  for (size_t i = 0; i < probs.size(); ++i) neg[i] = -probs[i];
  return IdsOf(TopKByStatistic(ids, neg, k));
}

}  // namespace

std::vector<int> AttrGlobalTopK(const AttrRelation& rel, int k,
                                TiePolicy ties) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  std::vector<int> ids(static_cast<size_t>(rel.size()));
  for (int i = 0; i < rel.size(); ++i) ids[static_cast<size_t>(i)] = rel.tuple(i).id;
  return BestK(AttrTopKProbabilities(rel, k, ties), ids, k);
}

std::vector<int> TupleGlobalTopK(const TupleRelation& rel, int k,
                                 TiePolicy ties) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  std::vector<int> ids(static_cast<size_t>(rel.size()));
  for (int i = 0; i < rel.size(); ++i) ids[static_cast<size_t>(i)] = rel.tuple(i).id;
  return BestK(TupleTopKProbabilities(rel, k, ties), ids, k);
}

std::vector<int> AttrGlobalTopK(const PreparedAttrRelation& prepared, int k,
                                TiePolicy ties) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  return BestK(AttrTopKProbabilities(prepared, k, ties), prepared.ids(), k);
}

std::vector<int> TupleGlobalTopK(const PreparedTupleRelation& prepared,
                                 int k, TiePolicy ties) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  return BestK(TupleTopKProbabilities(prepared, k, ties), prepared.ids(),
               k);
}

GlobalTopKPruneResult TupleGlobalTopKPruned(const TupleRelation& rel, int k,
                                            TiePolicy ties) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  ScoreOrderSweep sweep(rel, ties);
  std::vector<int> seen_ids;
  std::vector<double> seen_probs;
  // Max-heap over the k best probabilities seen; top() is the k-th best.
  std::priority_queue<double, std::vector<double>, std::greater<double>>
      best_k;
  while (sweep.HasNext()) {
    const int i = sweep.Next();
    const double prob = sweep.TopKProbability(k);
    seen_ids.push_back(rel.tuple(i).id);
    seen_probs.push_back(prob);
    if (static_cast<int>(best_k.size()) < k) {
      best_k.push(prob);
    } else if (prob > best_k.top()) {
      best_k.pop();
      best_k.push(prob);
    }
    // No unseen tuple can displace the k-th best seen probability (strict
    // comparison: equal-probability unseen tuples cannot enter either,
    // because BestK breaks ties towards smaller ids and the comparison is
    // on the probability value the bound dominates).
    if (static_cast<int>(best_k.size()) == k &&
        sweep.UnseenTopKBound(k) < best_k.top()) {
      break;
    }
  }
  return {BestK(seen_probs, seen_ids, k), sweep.accessed()};
}

}  // namespace urank
