#include "core/semantics/u_kranks.h"

#include <algorithm>

#include "core/engine/prepared_relation.h"
#include "core/rank_distribution_attr.h"
#include "core/rank_distribution_tuple.h"
#include "core/semantics/score_sweep.h"
#include "util/check.h"

namespace urank {
namespace {

// Winner per rank from positional probability rows: rows[i][r] =
// Pr[t_i occupies rank r]. Zero-probability ranks report -1.
std::vector<int> WinnersPerRank(
    const std::vector<std::vector<double>>& rows,
    const std::vector<int>& ids, int k) {
  std::vector<int> winners(static_cast<size_t>(k), -1);
  std::vector<double> best(static_cast<size_t>(k), 0.0);
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    URANK_DCHECK_MSG(internal::AllFiniteInRange(row, 0.0, 1.0),
                     "positional probability outside [0,1]");
    const size_t hi = std::min(static_cast<size_t>(k), row.size());
    for (size_t r = 0; r < hi; ++r) {
      if (row[r] > best[r] ||
          (row[r] == best[r] && row[r] > 0.0 && winners[r] >= 0 &&
           ids[i] < winners[r])) {
        best[r] = row[r];
        winners[r] = ids[i];
      }
    }
  }
  return winners;
}

// Winner ids round-trip the double-valued stat cache exactly (ints are
// exact in double far beyond the id range).
std::vector<double> ToDouble(const std::vector<int>& v) {
  return std::vector<double>(v.begin(), v.end());
}

std::vector<int> ToInt(const std::vector<double>& v) {
  std::vector<int> out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = static_cast<int>(v[i]);
  return out;
}

}  // namespace

std::vector<int> AttrUKRanks(const AttrRelation& rel, int k, TiePolicy ties) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  std::vector<std::vector<double>> rows = AttrRankDistributions(rel, ties);
  std::vector<int> ids(static_cast<size_t>(rel.size()));
  for (int i = 0; i < rel.size(); ++i) ids[static_cast<size_t>(i)] = rel.tuple(i).id;
  return WinnersPerRank(rows, ids, k);
}

std::vector<int> TupleUKRanks(const TupleRelation& rel, int k,
                              TiePolicy ties) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  std::vector<std::vector<double>> rows =
      TuplePositionalProbabilities(rel, ties);
  std::vector<int> ids(static_cast<size_t>(rel.size()));
  for (int i = 0; i < rel.size(); ++i) ids[static_cast<size_t>(i)] = rel.tuple(i).id;
  return WinnersPerRank(rows, ids, k);
}

std::vector<int> AttrUKRanks(const PreparedAttrRelation& prepared, int k,
                             TiePolicy ties) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  const StatKey key{StatKey::Kind::kUKRanksWinners, k, 0.0, ties};
  return ToInt(*prepared.CachedStat(key, [&] {
    const auto rows = prepared.RankDistributions(ties);
    return ToDouble(WinnersPerRank(*rows, prepared.ids(), k));
  }));
}

std::vector<int> TupleUKRanks(const PreparedTupleRelation& prepared, int k,
                              TiePolicy ties) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  const StatKey key{StatKey::Kind::kUKRanksWinners, k, 0.0, ties};
  return ToInt(*prepared.CachedStat(key, [&] {
    // Streamed WinnersPerRank: same argmax/min-id rule applied per row as
    // the rows arrive in score order rather than index order.
    std::vector<int> winners(static_cast<size_t>(k), -1);
    std::vector<double> best(static_cast<size_t>(k), 0.0);
    ForEachTuplePositionalDistribution(
        prepared.relation(), prepared.rank_order(), ties,
        [&](int i, const std::vector<double>& row) {
          URANK_DCHECK_MSG(internal::AllFiniteInRange(row, 0.0, 1.0),
                           "positional probability outside [0,1]");
          const int id = prepared.ids()[static_cast<size_t>(i)];
          const size_t hi = std::min(static_cast<size_t>(k), row.size());
          for (size_t r = 0; r < hi; ++r) {
            if (row[r] > best[r] ||
                (row[r] == best[r] && row[r] > 0.0 && winners[r] >= 0 &&
                 id < winners[r])) {
              best[r] = row[r];
              winners[r] = id;
            }
          }
        });
    return ToDouble(winners);
  }));
}

UKRanksPruneResult TupleUKRanksPruned(const TupleRelation& rel, int k,
                                      TiePolicy ties) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  ScoreOrderSweep sweep(rel, ties);
  std::vector<int> winners(static_cast<size_t>(k), -1);
  std::vector<double> best(static_cast<size_t>(k), 0.0);
  std::vector<double> positional;
  while (sweep.HasNext()) {
    const int i = sweep.Next();
    const int id = rel.tuple(i).id;
    sweep.PositionalProbabilities(k, &positional);
    URANK_DCHECK_MSG(internal::AllFiniteInRange(positional, 0.0, 1.0),
                     "positional probability outside [0,1]");
    for (int r = 0; r < k; ++r) {
      const double p = positional[static_cast<size_t>(r)];
      if (p > best[static_cast<size_t>(r)] ||
          (p == best[static_cast<size_t>(r)] && p > 0.0 &&
           winners[static_cast<size_t>(r)] >= 0 &&
           id < winners[static_cast<size_t>(r)])) {
        best[static_cast<size_t>(r)] = p;
        winners[static_cast<size_t>(r)] = id;
      }
    }
    // Stop once every rank's current winner strictly dominates the bound
    // achievable by any unseen tuple.
    bool done = true;
    for (int r = 0; r < k && done; ++r) {
      if (sweep.UnseenRankBound(r) >= best[static_cast<size_t>(r)]) {
        done = false;
      }
    }
    if (done) break;
  }
  return {winners, sweep.accessed()};
}

}  // namespace urank
