#include "core/semantics/u_kranks.h"

#include "core/rank_distribution_attr.h"
#include "core/rank_distribution_tuple.h"
#include "core/semantics/score_sweep.h"
#include "util/check.h"

namespace urank {
namespace {

// Winner per rank from positional probability rows: rows[i][r] =
// Pr[t_i occupies rank r]. Zero-probability ranks report -1.
std::vector<int> WinnersPerRank(
    const std::vector<std::vector<double>>& rows,
    const std::vector<int>& ids, int k) {
  std::vector<int> winners(static_cast<size_t>(k), -1);
  std::vector<double> best(static_cast<size_t>(k), 0.0);
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    URANK_DCHECK_MSG(internal::AllFiniteInRange(row, 0.0, 1.0),
                     "positional probability outside [0,1]");
    const size_t hi = std::min(static_cast<size_t>(k), row.size());
    for (size_t r = 0; r < hi; ++r) {
      if (row[r] > best[r] ||
          (row[r] == best[r] && row[r] > 0.0 && winners[r] >= 0 &&
           ids[i] < winners[r])) {
        best[r] = row[r];
        winners[r] = ids[i];
      }
    }
  }
  return winners;
}

}  // namespace

std::vector<int> AttrUKRanks(const AttrRelation& rel, int k, TiePolicy ties) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  std::vector<std::vector<double>> rows = AttrRankDistributions(rel, ties);
  std::vector<int> ids(static_cast<size_t>(rel.size()));
  for (int i = 0; i < rel.size(); ++i) ids[static_cast<size_t>(i)] = rel.tuple(i).id;
  return WinnersPerRank(rows, ids, k);
}

std::vector<int> TupleUKRanks(const TupleRelation& rel, int k,
                              TiePolicy ties) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  std::vector<std::vector<double>> rows =
      TuplePositionalProbabilities(rel, ties);
  std::vector<int> ids(static_cast<size_t>(rel.size()));
  for (int i = 0; i < rel.size(); ++i) ids[static_cast<size_t>(i)] = rel.tuple(i).id;
  return WinnersPerRank(rows, ids, k);
}

UKRanksPruneResult TupleUKRanksPruned(const TupleRelation& rel, int k,
                                      TiePolicy ties) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  ScoreOrderSweep sweep(rel, ties);
  std::vector<int> winners(static_cast<size_t>(k), -1);
  std::vector<double> best(static_cast<size_t>(k), 0.0);
  std::vector<double> positional;
  while (sweep.HasNext()) {
    const int i = sweep.Next();
    const int id = rel.tuple(i).id;
    sweep.PositionalProbabilities(k, &positional);
    URANK_DCHECK_MSG(internal::AllFiniteInRange(positional, 0.0, 1.0),
                     "positional probability outside [0,1]");
    for (int r = 0; r < k; ++r) {
      const double p = positional[static_cast<size_t>(r)];
      if (p > best[static_cast<size_t>(r)] ||
          (p == best[static_cast<size_t>(r)] && p > 0.0 &&
           winners[static_cast<size_t>(r)] >= 0 &&
           id < winners[static_cast<size_t>(r)])) {
        best[static_cast<size_t>(r)] = p;
        winners[static_cast<size_t>(r)] = id;
      }
    }
    // Stop once every rank's current winner strictly dominates the bound
    // achievable by any unseen tuple.
    bool done = true;
    for (int r = 0; r < k && done; ++r) {
      if (sweep.UnseenRankBound(r) >= best[static_cast<size_t>(r)]) {
        done = false;
      }
    }
    if (done) break;
  }
  return {winners, sweep.accessed()};
}

}  // namespace urank
