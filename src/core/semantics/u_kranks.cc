#include "core/semantics/u_kranks.h"

#include <algorithm>
#include <span>

#include "core/engine/prepared_relation.h"
#include "core/internal/vector_kernels.h"
#include "core/rank_distribution_attr.h"
#include "core/rank_distribution_tuple.h"
#include "core/semantics/score_sweep.h"
#include "util/check.h"
#include "util/kernel_annotations.h"

namespace urank {
namespace {

// Winner per rank from positional probability rows: rows[i][r] =
// Pr[t_i occupies rank r]. Zero-probability ranks report -1.
URANK_KERNEL
std::vector<int> WinnersPerRank(
    const std::vector<std::vector<double>>& rows,
    const std::vector<int>& ids, int k) {
  const vk::KernelOps& ops = vk::Active();
  std::vector<int> winners(static_cast<size_t>(k), -1);
  std::vector<double> best(static_cast<size_t>(k), 0.0);
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    URANK_DCHECK_MSG(internal::AllFiniteInRange(row, 0.0, 1.0),
                     "positional probability outside [0,1]");
    const size_t hi = std::min(static_cast<size_t>(k), row.size());
    ops.argmax_merge(row.data(), ids[i], best.data(), winners.data(), hi);
  }
  return winners;
}

// Winner ids round-trip the double-valued stat cache exactly (ints are
// exact in double far beyond the id range).
std::vector<double> ToDouble(const std::vector<int>& v) {
  return std::vector<double>(v.begin(), v.end());
}

std::vector<int> ToInt(const std::vector<double>& v) {
  std::vector<int> out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = static_cast<int>(v[i]);
  return out;
}

}  // namespace

std::vector<int> AttrUKRanks(const AttrRelation& rel, int k, TiePolicy ties) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  std::vector<std::vector<double>> rows = AttrRankDistributions(rel, ties);
  std::vector<int> ids(static_cast<size_t>(rel.size()));
  for (int i = 0; i < rel.size(); ++i) ids[static_cast<size_t>(i)] = rel.tuple(i).id;
  return WinnersPerRank(rows, ids, k);
}

std::vector<int> TupleUKRanks(const TupleRelation& rel, int k,
                              TiePolicy ties) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  std::vector<std::vector<double>> rows =
      TuplePositionalProbabilities(rel, ties);
  std::vector<int> ids(static_cast<size_t>(rel.size()));
  for (int i = 0; i < rel.size(); ++i) ids[static_cast<size_t>(i)] = rel.tuple(i).id;
  return WinnersPerRank(rows, ids, k);
}

std::vector<int> AttrUKRanks(const PreparedAttrRelation& prepared, int k,
                             TiePolicy ties) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  return AttrUKRanks(prepared, k, ties, ParallelismOptions{}, nullptr);
}

std::vector<int> AttrUKRanks(const PreparedAttrRelation& prepared, int k,
                             TiePolicy ties, const ParallelismOptions& par,
                             KernelReport* report) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  const StatKey key{StatKey::Kind::kUKRanksWinners, k, 0.0, ties};
  return ToInt(*prepared.CachedStat(key, [&] {
    const auto rows = prepared.RankDistributions(ties, par, report);
    return ToDouble(WinnersPerRank(*rows, prepared.ids(), k));
  }));
}

std::vector<int> TupleUKRanks(const PreparedTupleRelation& prepared, int k,
                              TiePolicy ties) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  return TupleUKRanks(prepared, k, ties, ParallelismOptions{}, nullptr);
}

std::vector<int> TupleUKRanks(const PreparedTupleRelation& prepared, int k,
                              TiePolicy ties, const ParallelismOptions& par,
                              KernelReport* report) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  const StatKey key{StatKey::Kind::kUKRanksWinners, k, 0.0, ties};
  return ToInt(*prepared.CachedStat(key, [&] {
    // Streamed WinnersPerRank with per-chunk partials: each chunk applies
    // the argmax/min-id rule to its own rows, then the partials fold in
    // chunk index order. The rule is associative and order-independent
    // (strictly-greater wins; equal-and-positive prefers the smaller id),
    // so the answer matches the serial one-chunk sweep bit for bit.
    const int chunks = TupleSweepChunkCount(prepared.relation());
    struct Partial {
      std::vector<int> winners;
      std::vector<double> best;
    };
    std::vector<Partial> partials(
        static_cast<size_t>(chunks),
        Partial{std::vector<int>(static_cast<size_t>(k), -1),
                std::vector<double>(static_cast<size_t>(k), 0.0)});
    const vk::KernelOps& ops = vk::Active();
    const auto entries = prepared.SweepEntries(ties);
    ForEachTuplePositionalDistribution(
        prepared.relation(), prepared.rank_order(), ties, par, report,
        [&](int chunk, int i, std::span<const double> row) {
          URANK_DCHECK_MSG(internal::AllFiniteInRange(row, 0.0, 1.0),
                           "positional probability outside [0,1]");
          Partial& part = partials[static_cast<size_t>(chunk)];
          const int id = prepared.ids()[static_cast<size_t>(i)];
          const size_t hi = std::min(static_cast<size_t>(k), row.size());
          ops.argmax_merge(row.data(), id, part.best.data(),
                           part.winners.data(), hi);
        },
        entries.get());
    std::vector<int> winners(static_cast<size_t>(k), -1);
    std::vector<double> best(static_cast<size_t>(k), 0.0);
    for (const Partial& part : partials) {
      for (size_t r = 0; r < static_cast<size_t>(k); ++r) {
        const double b = part.best[r];
        const int w = part.winners[r];
        if (b > best[r] ||
            (b == best[r] && b > 0.0 && winners[r] >= 0 && w >= 0 &&
             w < winners[r])) {
          best[r] = b;
          winners[r] = w;
        }
      }
    }
    return ToDouble(winners);
  }));
}

URANK_KERNEL
UKRanksPruneResult TupleUKRanksPruned(const TupleRelation& rel, int k,
                                      TiePolicy ties) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  ScoreOrderSweep sweep(rel, ties);
  const vk::KernelOps& ops = vk::Active();
  std::vector<int> winners(static_cast<size_t>(k), -1);
  std::vector<double> best(static_cast<size_t>(k), 0.0);
  std::vector<double> positional;
  while (sweep.HasNext()) {
    const int i = sweep.Next();
    const int id = rel.tuple(i).id;
    sweep.PositionalProbabilities(k, &positional);
    URANK_DCHECK_MSG(internal::AllFiniteInRange(positional, 0.0, 1.0),
                     "positional probability outside [0,1]");
    ops.argmax_merge(positional.data(), id, best.data(), winners.data(),
                     static_cast<size_t>(k));
    // Stop once every rank's current winner strictly dominates the bound
    // achievable by any unseen tuple.
    bool done = true;
    for (int r = 0; r < k && done; ++r) {
      if (sweep.UnseenRankBound(r) >= best[static_cast<size_t>(r)]) {
        done = false;
      }
    }
    if (done) break;
  }
  return {winners, sweep.accessed()};
}

}  // namespace urank
