// U-kRanks semantics (Soliman et al. [42]; also PRank of Lian & Chen [30]).
//
// The answer's i-th entry is the tuple most likely to be ranked i-th over
// all possible worlds. The same tuple may win several positions, and a
// position may be unreachable (e.g. a tuple-level world that never holds i
// appearing tuples); both behaviours are exactly why this definition fails
// the unique-ranking and exact-k properties (paper Section 4.2).

#ifndef URANK_CORE_SEMANTICS_U_KRANKS_H_
#define URANK_CORE_SEMANTICS_U_KRANKS_H_

#include <vector>

#include "model/attr_model.h"
#include "model/tuple_model.h"
#include "model/types.h"
#include "util/parallel.h"

namespace urank {

class PreparedAttrRelation;   // core/engine/prepared_relation.h
class PreparedTupleRelation;  // core/engine/prepared_relation.h

// answer[r] (0-based rank r < k) is the id of argmax_i Pr[t_i at rank r],
// with ties broken by smaller id, or -1 when no tuple can occupy rank r.
// Requires k >= 1. In the tuple-level model "at rank r" requires the tuple
// to appear in the world (the original definition).
std::vector<int> AttrUKRanks(const AttrRelation& rel, int k,
                             TiePolicy ties = TiePolicy::kBreakByIndex);
std::vector<int> TupleUKRanks(const TupleRelation& rel, int k,
                              TiePolicy ties = TiePolicy::kBreakByIndex);

// Prepared-state overloads: the attribute-level form reads the shared
// rank-distribution matrix, the tuple-level form streams positional rows
// over the prepared rank order; both memoize the winner list per
// (k, ties). The winner rule (argmax with min-id tie-break) is visit-order
// independent, so answers are identical to the one-shot forms. Requires
// k >= 1.
std::vector<int> AttrUKRanks(const PreparedAttrRelation& prepared, int k,
                             TiePolicy ties = TiePolicy::kBreakByIndex);
std::vector<int> TupleUKRanks(const PreparedTupleRelation& prepared, int k,
                              TiePolicy ties = TiePolicy::kBreakByIndex);

// Parallel-aware prepared forms: a cache miss runs the underlying DP with
// `par` worker slots and Merge()s what the kernel did into `report` when
// non-null; a cache hit leaves `report` untouched. The tuple-level form
// keeps per-chunk (winner, best) partials and folds them in chunk order;
// the argmax/min-id rule is merge-order independent, so answers are
// identical to the serial forms. Requires k >= 1.
std::vector<int> AttrUKRanks(const PreparedAttrRelation& prepared, int k,
                             TiePolicy ties, const ParallelismOptions& par,
                             KernelReport* report);
std::vector<int> TupleUKRanks(const PreparedTupleRelation& prepared, int k,
                              TiePolicy ties, const ParallelismOptions& par,
                              KernelReport* report);

// Result of the early-terminating evaluation: the same answer as
// TupleUKRanks plus the number of tuples the score-ordered scan retrieved.
struct UKRanksPruneResult {
  std::vector<int> ids;
  int accessed = 0;
};

// Early-terminating U-kRanks on the tuple-level model (in the spirit of
// Soliman et al.'s optimized scan): consume tuples in decreasing score
// order, compute each tuple's exact positional probabilities, and stop
// when no unseen tuple can win any of the k positions — an unseen tuple's
// probability at rank r is at most Pr[#appearing seen tuples <= r + 1].
// Positions whose best seen probability is 0 keep the scan alive to the
// end (an unseen tuple might still claim them). Requires k >= 1; the
// answer always equals TupleUKRanks'.
UKRanksPruneResult TupleUKRanksPruned(
    const TupleRelation& rel, int k,
    TiePolicy ties = TiePolicy::kBreakByIndex);

}  // namespace urank

#endif  // URANK_CORE_SEMANTICS_U_KRANKS_H_
