#include "core/semantics/semantics.h"

#include <algorithm>

#include "core/rank_distribution_attr.h"
#include "core/rank_distribution_tuple.h"
#include "util/check.h"

namespace urank {

std::vector<double> AttrTopKProbabilities(const AttrRelation& rel, int k,
                                          TiePolicy ties) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  std::vector<double> probs(static_cast<size_t>(rel.size()), 0.0);
  for (int i = 0; i < rel.size(); ++i) {
    const std::vector<double> dist = AttrRankDistribution(rel, i, ties);
    double cdf = 0.0;
    const int hi = std::min(k, static_cast<int>(dist.size()));
    for (int r = 0; r < hi; ++r) cdf += dist[static_cast<size_t>(r)];
    URANK_DCHECK_PROB(cdf);
    probs[static_cast<size_t>(i)] = std::min(cdf, 1.0);
  }
  return probs;
}

std::vector<double> TupleTopKProbabilities(const TupleRelation& rel, int k,
                                           TiePolicy ties) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  const std::vector<std::vector<double>> pos =
      TuplePositionalProbabilities(rel, ties);
  std::vector<double> probs(static_cast<size_t>(rel.size()), 0.0);
  for (int i = 0; i < rel.size(); ++i) {
    const auto& row = pos[static_cast<size_t>(i)];
    double cdf = 0.0;
    const int hi = std::min(k, static_cast<int>(row.size()));
    for (int r = 0; r < hi; ++r) cdf += row[static_cast<size_t>(r)];
    URANK_DCHECK_PROB(cdf);
    probs[static_cast<size_t>(i)] = std::min(cdf, 1.0);
  }
  return probs;
}

}  // namespace urank
