#include "core/semantics/semantics.h"

#include <algorithm>
#include <span>

#include "core/engine/prepared_relation.h"
#include "core/internal/vector_kernels.h"
#include "core/rank_distribution_attr.h"
#include "core/rank_distribution_tuple.h"
#include "util/check.h"

namespace urank {

std::vector<double> AttrTopKProbabilities(const AttrRelation& rel, int k,
                                          TiePolicy ties) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  std::vector<double> probs(static_cast<size_t>(rel.size()), 0.0);
  // One DP per tuple against pdfs sorted once; the distribution and DP
  // buffers are hoisted out of the loop and reused across tuples.
  const std::vector<internal::SortedPdf> pdfs = BuildSortedPdfs(rel);
  const vk::KernelOps& ops = vk::Active();
  internal::AlignedBuf pmf_scratch;
  std::vector<double> dist;
  for (int i = 0; i < rel.size(); ++i) {
    AttrRankDistributionInto(rel, pdfs, i, ties, &pmf_scratch, &dist);
    const size_t hi =
        std::min(static_cast<size_t>(k), dist.size());
    const double cdf = ops.sum(dist.data(), hi);
    URANK_DCHECK_PROB(cdf);
    probs[static_cast<size_t>(i)] = std::min(cdf, 1.0);
  }
  return probs;
}

std::vector<double> TupleTopKProbabilities(const TupleRelation& rel, int k,
                                           TiePolicy ties) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  const std::vector<std::vector<double>> pos =
      TuplePositionalProbabilities(rel, ties);
  std::vector<double> probs(static_cast<size_t>(rel.size()), 0.0);
  const vk::KernelOps& ops = vk::Active();
  for (int i = 0; i < rel.size(); ++i) {
    const auto& row = pos[static_cast<size_t>(i)];
    const size_t hi = std::min(static_cast<size_t>(k), row.size());
    const double cdf = ops.sum(row.data(), hi);
    URANK_DCHECK_PROB(cdf);
    probs[static_cast<size_t>(i)] = std::min(cdf, 1.0);
  }
  return probs;
}

std::vector<double> AttrTopKProbabilities(
    const PreparedAttrRelation& prepared, int k, TiePolicy ties) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  return AttrTopKProbabilities(prepared, k, ties, ParallelismOptions{},
                               nullptr);
}

std::vector<double> AttrTopKProbabilities(
    const PreparedAttrRelation& prepared, int k, TiePolicy ties,
    const ParallelismOptions& par, KernelReport* report) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  const StatKey key{StatKey::Kind::kTopKProbability, k, 0.0, ties};
  return *prepared.CachedStat(key, [&] {
    const auto dists = prepared.RankDistributions(ties, par, report);
    const vk::KernelOps& ops = vk::Active();
    std::vector<double> probs(static_cast<size_t>(prepared.size()), 0.0);
    for (int i = 0; i < prepared.size(); ++i) {
      const auto& dist = (*dists)[static_cast<size_t>(i)];
      const size_t hi = std::min(static_cast<size_t>(k), dist.size());
      const double cdf = ops.sum(dist.data(), hi);
      URANK_DCHECK_PROB(cdf);
      probs[static_cast<size_t>(i)] = std::min(cdf, 1.0);
    }
    return probs;
  });
}

std::vector<double> TupleTopKProbabilities(
    const PreparedTupleRelation& prepared, int k, TiePolicy ties) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  return TupleTopKProbabilities(prepared, k, ties, ParallelismOptions{},
                                nullptr);
}

std::vector<double> TupleTopKProbabilities(
    const PreparedTupleRelation& prepared, int k, TiePolicy ties,
    const ParallelismOptions& par, KernelReport* report) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  const StatKey key{StatKey::Kind::kTopKProbability, k, 0.0, ties};
  return *prepared.CachedStat(key, [&] {
    // Positional entries at ranks above M are zero, so summing the first
    // min(k, M+1) streamed entries equals the matrix form's first-k sum.
    // Chunk callbacks write disjoint positions, so concurrent chunks need
    // no further coordination.
    std::vector<double> probs(static_cast<size_t>(prepared.size()), 0.0);
    const vk::KernelOps& ops = vk::Active();
    const auto entries = prepared.SweepEntries(ties);
    ForEachTuplePositionalDistribution(
        prepared.relation(), prepared.rank_order(), ties, par, report,
        [&](int /*chunk*/, int i, std::span<const double> row) {
          const size_t hi = std::min(static_cast<size_t>(k), row.size());
          const double cdf = ops.sum(row.data(), hi);
          URANK_DCHECK_PROB(cdf);
          probs[static_cast<size_t>(i)] = std::min(cdf, 1.0);
        },
        entries.get());
    return probs;
  });
}

}  // namespace urank
