#include "core/semantics/semantics.h"

#include <algorithm>

#include "core/engine/prepared_relation.h"
#include "core/rank_distribution_attr.h"
#include "core/rank_distribution_tuple.h"
#include "util/check.h"

namespace urank {

std::vector<double> AttrTopKProbabilities(const AttrRelation& rel, int k,
                                          TiePolicy ties) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  std::vector<double> probs(static_cast<size_t>(rel.size()), 0.0);
  for (int i = 0; i < rel.size(); ++i) {
    const std::vector<double> dist = AttrRankDistribution(rel, i, ties);
    double cdf = 0.0;
    const int hi = std::min(k, static_cast<int>(dist.size()));
    for (int r = 0; r < hi; ++r) cdf += dist[static_cast<size_t>(r)];
    URANK_DCHECK_PROB(cdf);
    probs[static_cast<size_t>(i)] = std::min(cdf, 1.0);
  }
  return probs;
}

std::vector<double> TupleTopKProbabilities(const TupleRelation& rel, int k,
                                           TiePolicy ties) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  const std::vector<std::vector<double>> pos =
      TuplePositionalProbabilities(rel, ties);
  std::vector<double> probs(static_cast<size_t>(rel.size()), 0.0);
  for (int i = 0; i < rel.size(); ++i) {
    const auto& row = pos[static_cast<size_t>(i)];
    double cdf = 0.0;
    const int hi = std::min(k, static_cast<int>(row.size()));
    for (int r = 0; r < hi; ++r) cdf += row[static_cast<size_t>(r)];
    URANK_DCHECK_PROB(cdf);
    probs[static_cast<size_t>(i)] = std::min(cdf, 1.0);
  }
  return probs;
}

std::vector<double> AttrTopKProbabilities(
    const PreparedAttrRelation& prepared, int k, TiePolicy ties) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  const StatKey key{StatKey::Kind::kTopKProbability, k, 0.0, ties};
  return *prepared.CachedStat(key, [&] {
    const auto dists = prepared.RankDistributions(ties);
    std::vector<double> probs(static_cast<size_t>(prepared.size()), 0.0);
    for (int i = 0; i < prepared.size(); ++i) {
      const auto& dist = (*dists)[static_cast<size_t>(i)];
      double cdf = 0.0;
      const int hi = std::min(k, static_cast<int>(dist.size()));
      for (int r = 0; r < hi; ++r) cdf += dist[static_cast<size_t>(r)];
      URANK_DCHECK_PROB(cdf);
      probs[static_cast<size_t>(i)] = std::min(cdf, 1.0);
    }
    return probs;
  });
}

std::vector<double> TupleTopKProbabilities(
    const PreparedTupleRelation& prepared, int k, TiePolicy ties) {
  URANK_CHECK_MSG(k >= 1, "k must be >= 1");
  const StatKey key{StatKey::Kind::kTopKProbability, k, 0.0, ties};
  return *prepared.CachedStat(key, [&] {
    // Positional entries at ranks above M are zero, so summing the first
    // min(k, M+1) streamed entries equals the matrix form's first-k sum.
    std::vector<double> probs(static_cast<size_t>(prepared.size()), 0.0);
    ForEachTuplePositionalDistribution(
        prepared.relation(), prepared.rank_order(), ties,
        [&](int i, const std::vector<double>& row) {
          double cdf = 0.0;
          const int hi = std::min(k, static_cast<int>(row.size()));
          for (int r = 0; r < hi; ++r) cdf += row[static_cast<size_t>(r)];
          URANK_DCHECK_PROB(cdf);
          probs[static_cast<size_t>(i)] = std::min(cdf, 1.0);
        });
    return probs;
  });
}

}  // namespace urank
